// Package floatprint prints and parses floating-point numbers using the
// algorithms of Robert G. Burger and R. Kent Dybvig, "Printing
// Floating-Point Numbers Quickly and Accurately" (PLDI 1996).
//
// # Free format
//
// Shortest and its variants produce the shortest digit string that reads
// back to exactly the same floating-point value — 0.3 prints as "0.3", not
// "0.2999999999999999888…" — under an explicitly chosen model of the
// reader's rounding behavior.  With ReaderNearestEven (the IEEE default
// used by strconv.ParseFloat and virtually every modern parser), 1e23
// prints as "1e23" even though the stored value is 99999999999999991611392:
// the printer knows the reader will land back on the same value.
//
//	floatprint.Shortest(0.3)          // "0.3"
//	floatprint.Shortest(1e23)         // "1e23"
//	floatprint.Shortest(math.Pi)      // "3.141592653589793"
//
// # Fixed format
//
// Fixed and FixedPosition produce correctly rounded output to a requested
// number of digits or to an absolute digit position.  Digits beyond the
// value's actual precision are not invented: they are rendered as '#'
// marks, following the paper.  This matters for denormals and for large
// requested precisions:
//
//	d, _ := floatprint.FixedDigits32(float32(1.0)/3, 10, nil)
//	d.String()                             // "0.33333334##"
//	floatprint.FixedPosition(100.0, -20)   // "100.000000000000000#####"
//
// # Output bases and reader rounding modes
//
// All conversions accept any output base from 2 to 36 and any of four
// reader rounding assumptions (unknown/conservative, nearest-even,
// nearest-away, nearest-toward-zero) via Options.  Parse implements the
// matching correctly rounded reader, so print/parse round-trips hold for
// every mode and base pair.
//
// The low-level digit results (digit values, scale factor K with
// V = 0.d₁d₂…dₙ × Bᴷ, and significant-digit count) are available through
// ShortestDigits, FixedDigits, and FixedPositionDigits for callers that do
// their own rendering.
package floatprint
