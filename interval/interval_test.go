package interval

import (
	"math"
	"strings"
	"testing"

	"floatprint"
)

func mustParse(t *testing.T, s string) Interval {
	t.Helper()
	iv, err := Parse(s, nil)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return iv
}

// TestStringGoldens pins the printed form on hand-checked intervals.
func TestStringGoldens(t *testing.T) {
	negZero := math.Copysign(0, -1)
	cases := []struct {
		iv   Interval
		want string
	}{
		// Degenerate [0.3, 0.3]: the lower bound needs 17 digits (the
		// exact value of float64(0.3) is below decimal 0.3), the upper is
		// "0.3" itself.
		{Interval{0.3, 0.3}, "[0.29999999999999998,0.3]"},
		{Interval{0.1, 0.1}, "[0.1,0.10000000000000001]"},
		{Interval{0.1, 0.3}, "[0.1,0.3]"},
		{Interval{1, 2}, "[1,2]"},
		{Interval{-0.5, 0.25}, "[-0.5,0.25]"},
		// Signed zeros must not collapse: [-0, +0] keeps both signs.
		{Interval{negZero, 0}, "[-0,0]"},
		{Interval{0, 0}, "[0,0]"},
		{Interval{negZero, negZero}, "[-0,-0]"},
		// Infinite endpoints are their own exact bounds.
		{Interval{math.Inf(-1), math.Inf(1)}, "[-Inf,+Inf]"},
		{Interval{math.MaxFloat64, math.Inf(1)}, "[1.7976931348623157e308,+Inf]"},
		// Format frontier.
		{Interval{math.SmallestNonzeroFloat64, math.SmallestNonzeroFloat64}, "[4e-324,5e-324]"},
	}
	for _, c := range cases {
		if got := c.iv.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.iv, got, c.want)
		}
	}
	// An invalid interval renders a diagnostic form rather than lying.
	if got := (Interval{2, 1}).String(); got != "[2,1]" {
		t.Errorf("String of inverted interval = %q", got)
	}
	if got := (Interval{math.NaN(), 1}).String(); !strings.Contains(got, "NaN") {
		t.Errorf("String with NaN endpoint = %q", got)
	}
}

// TestAppendShortestErrors checks that invalid intervals and options are
// rejected with dst untouched.
func TestAppendShortestErrors(t *testing.T) {
	dst := []byte("keep:")
	for _, iv := range []Interval{
		{math.NaN(), 1},
		{1, math.NaN()},
		{2, 1},
		{0, math.Copysign(0, -1)}, // [+0, -0] is inverted in sign-bit order
	} {
		out, err := AppendShortest(dst, iv, nil)
		if err == nil {
			t.Errorf("AppendShortest(%v) succeeded", iv)
		}
		if string(out) != "keep:" {
			t.Errorf("AppendShortest(%v) modified dst: %q", iv, out)
		}
	}
	if _, err := AppendShortest(nil, Interval{1, 2}, &floatprint.Options{Base: 99}); err == nil {
		t.Error("AppendShortest with invalid base succeeded")
	}
}

// TestParseGoldens pins Parse on hand-checked texts, including outward
// rounding of inexact endpoints and whitespace tolerance.
func TestParseGoldens(t *testing.T) {
	up := math.Nextafter(0.3, math.Inf(1))
	down := math.Nextafter(0.1, math.Inf(-1))
	cases := []struct {
		in     string
		lo, hi float64
	}{
		{"[1,2]", 1, 2},
		{"[0.5,0.5]", 0.5, 0.5},
		// Inexact decimals round outward: 0.1 text is below float64(0.1),
		// 0.3 text above float64(0.3).
		{"[0.1,0.3]", down, up},
		{"[0.3,0.3]", 0.3, up},
		{" [ 1 , 2 ] ", 1, 2},
		{"[-Inf,+Inf]", math.Inf(-1), math.Inf(1)},
		{"[1e10,inf]", 1e10, math.Inf(1)},
		// Out-of-range endpoints widen outward without error.
		{"[1e999,2e999]", math.MaxFloat64, math.Inf(1)},
		{"[-1e999,0]", math.Inf(-1), 0},
		{"[-2e308,2e308]", math.Inf(-1), math.Inf(1)},
		// Underflow stops outward at the smallest denormal, inward at zero.
		{"[1e-999,1e-999]", 0, math.SmallestNonzeroFloat64},
		{"[-1e-999,-1e-999]", -math.SmallestNonzeroFloat64, math.Copysign(0, -1)},
	}
	for _, c := range cases {
		iv := mustParse(t, c.in)
		if iv.Lo != c.lo || iv.Hi != c.hi ||
			math.Signbit(iv.Lo) != math.Signbit(c.lo) || math.Signbit(iv.Hi) != math.Signbit(c.hi) {
			t.Errorf("Parse(%q) = [%v,%v], want [%v,%v]", c.in, iv.Lo, iv.Hi, c.lo, c.hi)
		}
	}

	// Signed zeros survive a round trip.
	iv := mustParse(t, "[-0,0]")
	if !math.Signbit(iv.Lo) || math.Signbit(iv.Hi) {
		t.Errorf("Parse([-0,0]) lost zero signs: [%v,%v]", iv.Lo, iv.Hi)
	}
}

// TestParseErrors enumerates the rejection cases.
func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"", "1,2", "[1,2", "1,2]", "[1]", "[1;2]", "[1,2,3]",
		"[,1]", "[1,]", "[a,b]", "[NaN,1]", "[1,nan]", "[2,1]",
		"[0,-0]", // inverted in sign-bit order
		"[1x,2]",
	} {
		if iv, err := Parse(in, nil); err == nil {
			t.Errorf("Parse(%q) = %v, want error", in, iv)
		}
	}
}

// TestContainsEncloses covers the predicate corners, NaN in particular.
func TestContainsEncloses(t *testing.T) {
	iv := Interval{-1, 2}
	for x, want := range map[float64]bool{-1: true, 0: true, 2: true, 2.5: false, -1.5: false} {
		if iv.Contains(x) != want {
			t.Errorf("Contains(%v) = %v", x, !want)
		}
	}
	if iv.Contains(math.NaN()) {
		t.Error("Contains(NaN) = true")
	}
	if !iv.Encloses(Interval{-1, 2}) || !iv.Encloses(Interval{0, 0}) {
		t.Error("Encloses rejects subintervals")
	}
	if iv.Encloses(Interval{-2, 0}) || iv.Encloses(Interval{0, 3}) {
		t.Error("Encloses accepts overhanging intervals")
	}
	all := Interval{math.Inf(-1), math.Inf(1)}
	if !all.Encloses(iv) || !all.Contains(math.Inf(1)) {
		t.Error("[-Inf,+Inf] fails to enclose")
	}
}

// TestNew checks the constructor's validation, including the sign-bit
// ordering of zeros.
func TestNew(t *testing.T) {
	if _, err := New(1, 2); err != nil {
		t.Errorf("New(1,2): %v", err)
	}
	if _, err := New(math.Copysign(0, -1), 0); err != nil {
		t.Errorf("New(-0,+0): %v", err)
	}
	for _, c := range [][2]float64{{2, 1}, {math.NaN(), 1}, {1, math.NaN()}, {0, math.Copysign(0, -1)}} {
		if _, err := New(c[0], c[1]); err == nil {
			t.Errorf("New(%v,%v) succeeded", c[0], c[1])
		}
	}
}

// TestIntervalStats checks the counter contract: one IntervalPrints per
// formatted interval, one IntervalParses per parsed text, visible
// through the public floatprint.Snapshot.
func TestIntervalStats(t *testing.T) {
	floatprint.ResetStats()
	prev := floatprint.SetStatsEnabled(true)
	defer floatprint.SetStatsEnabled(prev)

	before := floatprint.Snapshot()
	if _, err := AppendShortest(nil, Interval{0.1, 0.3}, nil); err != nil {
		t.Fatal(err)
	}
	mustParse(t, "[0.1,0.3]")
	mustParse(t, "[1,2]")
	d := floatprint.Snapshot().Sub(before)
	if d.IntervalPrints != 1 {
		t.Errorf("IntervalPrints = %d, want 1", d.IntervalPrints)
	}
	if d.IntervalParses != 2 {
		t.Errorf("IntervalParses = %d, want 2", d.IntervalParses)
	}
	// Failed operations do not count.
	before = floatprint.Snapshot()
	if _, err := AppendShortest(nil, Interval{2, 1}, nil); err == nil {
		t.Fatal("inverted print succeeded")
	}
	if _, err := Parse("[2,1]", nil); err == nil {
		t.Fatal("inverted parse succeeded")
	}
	d = floatprint.Snapshot().Sub(before)
	if d.IntervalPrints != 0 || d.IntervalParses != 0 {
		t.Errorf("failed operations counted: %+v", d)
	}
}

// TestRoundTripEnclosure is the core contract on a quick hand-picked
// set (the corpus-wide property lives in corpus_test.go): String then
// Parse must enclose the original with at most one ulp of widening per
// endpoint.
func TestRoundTripEnclosure(t *testing.T) {
	values := []float64{0, 0.1, 0.3, 1, 1e-310, 5e-324, math.MaxFloat64, 1e23, math.Pi}
	for _, lo := range values {
		for _, hi := range values {
			if lo > hi {
				continue
			}
			iv := Interval{lo, hi}
			got := mustParse(t, iv.String())
			if !got.Encloses(iv) {
				t.Errorf("Parse(String(%v)) = %v does not enclose", iv, got)
			}
			if got.Lo != iv.Lo && math.Nextafter(got.Lo, math.Inf(1)) != iv.Lo {
				t.Errorf("lo widened beyond one ulp: %v -> %v", iv.Lo, got.Lo)
			}
			if got.Hi != iv.Hi && math.Nextafter(got.Hi, math.Inf(-1)) != iv.Hi {
				t.Errorf("hi widened beyond one ulp: %v -> %v", iv.Hi, got.Hi)
			}
		}
	}
}
