package interval

import (
	"math"
	"strconv"
	"testing"

	"floatprint"
	"floatprint/internal/fpformat"
	"floatprint/internal/reader"
	"floatprint/internal/schryer"
)

// exactAbove reports whether the exact decimal value 0.digits × 10^k
// (positive) is strictly greater than x, and exactBelow whether it is
// strictly less.  Both are decided exactly through the directed reader:
// the smallest float ≥ value exceeds x iff the value does (x itself
// being a float), and symmetrically from below.  Range errors are fine —
// the saturated result still compares correctly.
func exactAbove(t *testing.T, digits []byte, k int, x float64) bool {
	t.Helper()
	v, err := reader.Convert(reader.Number{Digits: digits, Base: 10, K: k}, fpformat.Binary64, reader.TowardPosInf)
	f, ferr := v.Float64()
	if ferr != nil {
		t.Fatalf("Float64 after Convert (err %v): %v", err, ferr)
	}
	return f > x
}

func exactBelow(t *testing.T, digits []byte, k int, x float64) bool {
	t.Helper()
	v, err := reader.Convert(reader.Number{Digits: digits, Base: 10, K: k}, fpformat.Binary64, reader.TowardNegInf)
	f, ferr := v.Float64()
	if ferr != nil {
		t.Fatalf("Float64 after Convert (err %v): %v", err, ferr)
	}
	return f < x
}

// incLast adds one unit in the last place of a digit string, carrying as
// needed; the returned k accounts for a carry out of the first digit.
func incLast(digits []byte, k int) ([]byte, int) {
	out := append([]byte(nil), digits...)
	for i := len(out) - 1; i >= 0; i-- {
		out[i]++
		if out[i] < 10 {
			return out, k
		}
		out[i] = 0
	}
	return append([]byte{1}, out...), k + 1
}

// pathOptions are the two dispatch configurations every corpus suite
// here runs under: nil options let the certified one-sided fast paths
// (Ryū print kernels, directed Eisel–Lemire parsing) serve what they
// can, while BackendExact forces every conversion through the exact
// core and reader.  The properties must hold identically in both — the
// fast paths are supposed to change the path mix, never the output.
var pathOptions = []struct {
	name string
	opts *floatprint.Options
}{
	{"fast", nil},
	{"exact", &floatprint.Options{Backend: floatprint.BackendExact}},
}

// TestCorpusDegenerateEnclosure drives the full printing→parsing chain
// over the paper's 250,680-value corpus: for every x, the printed
// degenerate interval [x, x] must parse back to an enclosure of [x, x]
// that is at most one ulp wider on each side.  Runs with the fast paths
// on and forced off.
func TestCorpusDegenerateEnclosure(t *testing.T) {
	n := schryer.CorpusSize
	if testing.Short() {
		n = 8000
	}
	for _, p := range pathOptions {
		p := p
		t.Run(p.name, func(t *testing.T) {
			buf := make([]byte, 0, 64)
			for _, x := range schryer.CorpusN(n) {
				iv := Interval{x, x}
				var err error
				buf, err = AppendShortest(buf[:0], iv, p.opts)
				if err != nil {
					t.Fatalf("AppendShortest([%x,%x]): %v", x, x, err)
				}
				got, err := Parse(string(buf), p.opts)
				if err != nil {
					t.Fatalf("Parse(%q): %v", buf, err)
				}
				if !got.Encloses(iv) {
					t.Fatalf("Parse(%q) = [%x,%x] does not enclose %x", buf, got.Lo, got.Hi, x)
				}
				if got.Lo != x && math.Nextafter(got.Lo, math.Inf(1)) != x {
					t.Fatalf("%x: lower endpoint widened beyond one ulp to %x (%q)", x, got.Lo, buf)
				}
				if got.Hi != x && math.Nextafter(got.Hi, math.Inf(-1)) != x {
					t.Fatalf("%x: upper endpoint widened beyond one ulp to %x (%q)", x, got.Hi, buf)
				}
			}
		})
	}
}

// TestCorpusFastMatchesExact is the interval-level byte-identity
// differential in both directions: the certified fast paths and the
// forced-exact paths must print identical interval text for every
// corpus value, and must parse that text to identical endpoints.
func TestCorpusFastMatchesExact(t *testing.T) {
	n := schryer.CorpusSize
	if testing.Short() {
		n = 8000
	}
	exact := &floatprint.Options{Backend: floatprint.BackendExact}
	fastBuf := make([]byte, 0, 64)
	exactBuf := make([]byte, 0, 64)
	for _, x := range schryer.CorpusN(n) {
		iv := Interval{-x, x}
		var err error
		fastBuf, err = AppendShortest(fastBuf[:0], iv, nil)
		if err != nil {
			t.Fatalf("AppendShortest(%v, fast): %v", iv, err)
		}
		exactBuf, err = AppendShortest(exactBuf[:0], iv, exact)
		if err != nil {
			t.Fatalf("AppendShortest(%v, exact): %v", iv, err)
		}
		if string(fastBuf) != string(exactBuf) {
			t.Fatalf("print(%v): fast %q, exact %q", iv, fastBuf, exactBuf)
		}
		fgot, ferr := Parse(string(fastBuf), nil)
		egot, eerr := Parse(string(fastBuf), exact)
		if (ferr == nil) != (eerr == nil) {
			t.Fatalf("parse(%q): fast err %v, exact err %v", fastBuf, ferr, eerr)
		}
		if math.Float64bits(fgot.Lo) != math.Float64bits(egot.Lo) ||
			math.Float64bits(fgot.Hi) != math.Float64bits(egot.Hi) {
			t.Fatalf("parse(%q): fast [%x,%x], exact [%x,%x]",
				fastBuf, fgot.Lo, fgot.Hi, egot.Lo, egot.Hi)
		}
	}
}

// TestCorpusReaderModeInvariance pins a design decision: the Reader
// field of the options passed to Parse is overridden per endpoint (lo
// always reads toward −∞, hi toward +∞), so the parsed enclosure is
// identical under every requested reader mode.
func TestCorpusReaderModeInvariance(t *testing.T) {
	n := 30000
	if testing.Short() {
		n = 2000
	}
	modes := []floatprint.ReaderRounding{
		floatprint.ReaderNearestEven,
		floatprint.ReaderUnknown,
		floatprint.ReaderNearestAway,
		floatprint.ReaderNearestTowardZero,
		floatprint.ReaderTowardNegInf,
		floatprint.ReaderTowardPosInf,
	}
	for _, x := range schryer.CorpusN(n) {
		s := Interval{x, x}.String()
		want, err := Parse(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range modes {
			got, err := Parse(s, &floatprint.Options{Reader: m})
			if err != nil || got != want {
				t.Fatalf("Parse(%q, reader %v) = %v, %v; want %v", s, m, got, err, want)
			}
		}
	}
}

// TestCorpusTightness verifies that the printed bounds cannot be
// tightened in place: adding one unit in the last place of the printed
// lower endpoint lifts its exact value above x (so it is no longer a
// lower bound), and subtracting one unit from the printed upper endpoint
// drops it below x.  Together with enclosure this pins both halves of
// the one-sided contract — each endpoint is the tightest digit string of
// its own length.  Runs with the fast paths on and forced off: the
// one-sided Ryū kernels' never-a-trailing-zero and maximal-removal
// claims get checked directly here, against the exact reader oracle.
func TestCorpusTightness(t *testing.T) {
	n := schryer.CorpusSize
	stride := 16
	if testing.Short() {
		n, stride = 8000, 8
	}
	corpus := schryer.CorpusN(n)
	for _, p := range pathOptions {
		p := p
		t.Run(p.name, func(t *testing.T) {
			for i := 0; i < len(corpus); i += stride {
				x := corpus[i]
				lo, err := floatprint.ShortestBelowDigits(x, p.opts)
				if err != nil {
					t.Fatal(err)
				}
				hi, err := floatprint.ShortestAboveDigits(x, p.opts)
				if err != nil {
					t.Fatal(err)
				}
				// Lower bound + 1 ulp(last digit) must overshoot x.
				up, upK := incLast(lo.Digits[:lo.NSig], lo.K)
				if !exactAbove(t, up, upK, x) {
					t.Fatalf("%x: lower bound %v can be tightened: +1 ulp stays ≤ x", x, lo)
				}
				// Upper bound − 1 ulp(last digit) must undershoot x.  The
				// generation loop never emits a trailing zero, so no borrow.
				hd := append([]byte(nil), hi.Digits[:hi.NSig]...)
				if hd[len(hd)-1] == 0 {
					t.Fatalf("%x: upper bound %v has a trailing zero digit", x, hi)
				}
				hd[len(hd)-1]--
				if !exactBelow(t, hd, hi.K, x) {
					t.Fatalf("%x: upper bound %v can be tightened: -1 ulp stays ≥ x", x, hi)
				}
			}
		})
	}
}

// TestCorpusNearestRereadOfEndpoints spot-checks van Emden's dual
// requirement on the printed endpoints: each is still an identifying
// string for its float (a plain strconv round-trip recovers it), so
// consumers that ignore interval semantics read a value inside the
// enclosure, never outside it.
func TestCorpusNearestRereadOfEndpoints(t *testing.T) {
	n := 30000
	if testing.Short() {
		n = 2000
	}
	for _, x := range schryer.CorpusN(n) {
		for _, s := range []string{floatprint.ShortestBelow(x), floatprint.ShortestAbove(x)} {
			f, err := strconv.ParseFloat(s, 64)
			if err != nil || f != x {
				t.Fatalf("strconv.ParseFloat(%q) = %x, %v; want %x", s, f, err, x)
			}
		}
	}
}

// FuzzIntervalEnclosure fuzzes the whole print→parse chain with
// arbitrary bit patterns: any ordered pair of non-NaN floats must print
// to a parseable interval that encloses it within one ulp per side.
func FuzzIntervalEnclosure(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(math.Float64bits(0.1), math.Float64bits(0.3))
	f.Add(math.Float64bits(-0.0), math.Float64bits(0.0))
	f.Add(math.Float64bits(math.Inf(-1)), math.Float64bits(math.Inf(1)))
	f.Add(uint64(1), uint64(2)) // denormals
	f.Add(math.Float64bits(math.MaxFloat64), math.Float64bits(math.Inf(1)))
	f.Add(math.Float64bits(1e23), math.Float64bits(1e23))
	f.Fuzz(func(t *testing.T, aBits, bBits uint64) {
		a, b := math.Float64frombits(aBits), math.Float64frombits(bBits)
		if math.IsNaN(a) || math.IsNaN(b) {
			t.Skip()
		}
		if a > b || (a == b && math.Signbit(b) && !math.Signbit(a)) {
			a, b = b, a
		}
		iv := Interval{a, b}
		out, err := AppendShortest(nil, iv, nil)
		if err != nil {
			t.Fatalf("AppendShortest(%v): %v", iv, err)
		}
		got, err := Parse(string(out), nil)
		if err != nil {
			t.Fatalf("Parse(%q): %v", out, err)
		}
		if !got.Encloses(iv) {
			t.Fatalf("Parse(%q) = %v does not enclose [%x,%x]", out, got, a, b)
		}
		if got.Lo != a && math.Nextafter(got.Lo, math.Inf(1)) != a {
			t.Fatalf("lower endpoint of %q widened beyond one ulp: %x -> %x", out, a, got.Lo)
		}
		if got.Hi != b && math.Nextafter(got.Hi, math.Inf(-1)) != b {
			t.Fatalf("upper endpoint of %q widened beyond one ulp: %x -> %x", out, b, got.Hi)
		}
		// The endpoints also identify their floats for nearest readers.
		if !math.IsInf(a, 0) {
			if f64, err := strconv.ParseFloat(floatprint.ShortestBelow(a), 64); err != nil || f64 != a {
				t.Fatalf("strconv re-read of Below(%x) = %x, %v", a, f64, err)
			}
		}
		if !math.IsInf(b, 0) {
			if f64, err := strconv.ParseFloat(floatprint.ShortestAbove(b), 64); err != nil || f64 != b {
				t.Fatalf("strconv re-read of Above(%x) = %x, %v", b, f64, err)
			}
		}
	})
}
