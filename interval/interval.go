// Package interval provides outward-rounded interval I/O on top of the
// exact conversion core: printing a floating-point interval as the
// shortest decimal interval that encloses it, and reading decimal
// interval text back to the smallest floating-point interval that
// encloses the text's exact value.
//
// The enclosure contract is van Emden's requirement for interval
// arithmetic text I/O: converting in either direction may only widen,
// never narrow, so a chain of print/parse round-trips through logs,
// wires, and spreadsheets still brackets the true value.  Both
// directions are built from the package root's directed conversions:
//
//   - Printing:  [ShortestBelow(Lo), ShortestAbove(Hi)] — each endpoint
//     is the shortest string on its own outward side of the endpoint
//     (the §3 generation loop with a one-sided stopping condition), so
//     the printed interval encloses the value and, endpoint by endpoint,
//     cannot be shortened or tightened without losing enclosure.
//   - Parsing:  the lower endpoint converts under rounding toward −∞ and
//     the upper under rounding toward +∞, so each binary endpoint lands
//     on the outward side of the decimal text's exact value.
//
// Degenerate intervals are the interesting stress case: printing [x, x]
// yields two different strings whenever x is not exactly representable
// in decimal at shortest length, and parsing the text back encloses
// [x, x] with at most one ulp of widening per endpoint — zero exactly
// when the printed endpoint is the decimally exact value of x (an
// endpoint string strictly inside the half-gap necessarily sits between
// two floats, so the outward directed read lands on the outer one).
package interval

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"floatprint"
	"floatprint/internal/stats"
)

// Interval is a closed floating-point interval [Lo, Hi].  The zero value
// is the degenerate interval [0, 0].  An interval is valid when neither
// endpoint is NaN and Lo ≤ Hi; infinite endpoints are allowed and print
// and parse as -Inf / +Inf.
type Interval struct {
	Lo, Hi float64
}

// New returns the interval [lo, hi], or an error if an endpoint is NaN
// or lo > hi.  Note that lo = +0, hi = −0 is rejected as inverted even
// though +0 == −0 numerically: −0 sorts below +0 in the print/parse
// contract, and accepting [+0,−0] would make String produce "[0,-0]",
// which Parse rejects.
func New(lo, hi float64) (Interval, error) {
	if err := check(lo, hi); err != nil {
		return Interval{}, err
	}
	return Interval{Lo: lo, Hi: hi}, nil
}

// check validates an endpoint pair, using the sign bit (not ==) to order
// zeros so that [-0, +0] is valid and [+0, -0] is not.
func check(lo, hi float64) error {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return errors.New("interval: NaN endpoint")
	}
	if lo > hi || (lo == hi && math.Signbit(hi) && !math.Signbit(lo)) {
		return fmt.Errorf("interval: inverted endpoints [%g, %g]", lo, hi)
	}
	return nil
}

// Contains reports whether x lies in iv (endpoints included).  It is
// false for NaN.
func (iv Interval) Contains(x float64) bool {
	return iv.Lo <= x && x <= iv.Hi
}

// Encloses reports whether every point of other lies in iv.
func (iv Interval) Encloses(other Interval) bool {
	return iv.Lo <= other.Lo && other.Hi <= iv.Hi
}

// AppendShortest appends the shortest enclosing decimal form of iv,
// "[lo,hi]", to dst and returns the extended slice.  The lower endpoint
// is printed with floatprint.ShortestBelowDigits and the upper with
// ShortestAboveDigits, so the decimal interval always encloses iv, and
// each printed endpoint is both as short as possible and, at that
// length, as tight as possible.  Invalid intervals (NaN endpoint,
// Lo > Hi) are rejected with dst unchanged.  opts follows the
// floatprint conventions (nil means defaults); only base 10 output can
// be read back by Parse.
func AppendShortest(dst []byte, iv Interval, opts *floatprint.Options) ([]byte, error) {
	if err := check(iv.Lo, iv.Hi); err != nil {
		return dst, err
	}
	lo, err := floatprint.ShortestBelowDigits(iv.Lo, opts)
	if err != nil {
		return dst, err
	}
	hi, err := floatprint.ShortestAboveDigits(iv.Hi, opts)
	if err != nil {
		return dst, err
	}
	out := append(dst, '[')
	if out, err = lo.Append(out, opts); err != nil {
		return dst, err
	}
	out = append(out, ',')
	if out, err = hi.Append(out, opts); err != nil {
		return dst, err
	}
	stats.IntervalPrints.Inc()
	return append(out, ']'), nil
}

// String renders iv under default options.  An invalid interval falls
// back to a diagnostic "[%g,%g]" rendering (which Parse rejects, as it
// rejects the interval itself).
func (iv Interval) String() string {
	out, err := AppendShortest(make([]byte, 0, 48), iv, nil)
	if err != nil {
		return fmt.Sprintf("[%g,%g]", iv.Lo, iv.Hi)
	}
	return string(out)
}

// Parse reads interval text "[lo,hi]" and returns the smallest float64
// interval enclosing the exact decimal values: the lower endpoint is
// converted rounding toward −∞ and the upper toward +∞.  Out-of-range
// endpoints widen outward without error — a lower endpoint below
// −MaxFloat64 becomes −Inf, an upper endpoint whose magnitude underflows
// becomes the smallest denormal — because widening is exactly what the
// enclosure contract asks for there.  NaN endpoints, inverted endpoints,
// and malformed text are errors.  Whitespace around the brackets and
// endpoints is ignored.  opts supplies the base (interval syntax uses
// '[', ',', ']' regardless of base); its Reader field is overridden per
// endpoint.
func Parse(s string, opts *floatprint.Options) (Interval, error) {
	body, ok := strings.CutPrefix(strings.TrimSpace(s), "[")
	if !ok {
		return Interval{}, fmt.Errorf("interval: missing '[' in %q", s)
	}
	body, ok = strings.CutSuffix(body, "]")
	if !ok {
		return Interval{}, fmt.Errorf("interval: missing ']' in %q", s)
	}
	loText, hiText, ok := strings.Cut(body, ",")
	if !ok {
		return Interval{}, fmt.Errorf("interval: missing ',' in %q", s)
	}
	if strings.Contains(hiText, ",") {
		return Interval{}, fmt.Errorf("interval: more than two endpoints in %q", s)
	}

	var o floatprint.Options
	if opts != nil {
		o = *opts
	}
	o.Reader = floatprint.ReaderTowardNegInf
	lo, err := parseEndpoint(strings.TrimSpace(loText), &o)
	if err != nil {
		return Interval{}, err
	}
	o.Reader = floatprint.ReaderTowardPosInf
	hi, err := parseEndpoint(strings.TrimSpace(hiText), &o)
	if err != nil {
		return Interval{}, err
	}
	if err := check(lo, hi); err != nil {
		return Interval{}, err
	}
	stats.IntervalParses.Inc()
	return Interval{Lo: lo, Hi: hi}, nil
}

// parseEndpoint converts one endpoint under the directed mode already
// set in o.  A range error is not an error here: the directed reader's
// saturated result (±Inf when rounding outward, ±MaxFloat64 when
// truncating) is precisely the enclosing endpoint.  NaN text is an
// error — NaN has no position on the line to enclose.
func parseEndpoint(text string, o *floatprint.Options) (float64, error) {
	f, err := floatprint.Parse(text, o)
	if err != nil && !errors.Is(err, floatprint.ErrRange) {
		return 0, fmt.Errorf("interval: %w", err)
	}
	if math.IsNaN(f) {
		return 0, fmt.Errorf("interval: NaN endpoint %q", text)
	}
	return f, nil
}
