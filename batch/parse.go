// The parse side of the batch engine: ParseAll streams separator-
// delimited decimal text in and packed little-endian float64 out, in
// bounded memory, through the same sharded worker shape as the print
// side.  Each block of input is cut at a separator boundary, split into
// contiguous per-shard ranges (boundaries advanced to the next
// separator so no token straddles two shards), scanned by the
// block-at-a-time kernel (floatprint.AppendParseBatch: SWAR-validated
// 8-digit chunks into the Eisel–Lemire certifier, per-value fallback on
// decline), and written as one ordered packed write — so the values are
// bit-identical to a sequential per-value floatprint.Parse loop,
// whatever the shard count or block size.
package batch

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"floatprint"
)

// parseMinShardBytes is the smallest per-shard range worth a goroutine:
// below it, scheduling overhead beats the parallelism.
const parseMinShardBytes = 64 << 10

// ParseAll parses with the default configuration (GOMAXPROCS shards);
// see Pool.ParseAll.
func ParseAll(ctx context.Context, r io.Reader, w io.Writer) (int64, error) {
	return New(Config{}).ParseAll(ctx, r, w)
}

// ParseAll reads separator-delimited base-10 numbers from r (see
// floatprint.BatchSep: newlines, commas, CR, spaces, tabs) and writes
// each value to w as 8 little-endian bytes, in input order.  It returns
// the number of values written.
//
// Memory is bounded by the pool's ParseBlockBytes regardless of input
// length: input is consumed in blocks cut at the last separator, each
// block is sharded across the worker pool, and the block's values reach
// w as one ordered write before the next block is read.  Every value is
// bit-identical to floatprint.Parse on the same token under default
// options, with Parse's IEEE range semantics (out-of-range tokens
// produce ±Inf and parsing continues).
//
// On a malformed token, ParseAll writes the values preceding it and
// returns a *floatprint.BatchParseError whose Record and Offset locate
// the token in the whole stream.  A separator-free run longer than
// MaxTokenBytes is rejected the same way rather than buffering without
// bound.  The writer-side contract matches WriteAll: whatever reached w
// when ParseAll returns — on success, error, or cancellation — is a
// prefix of the full output, ending on a value boundary.
func (p *Pool) ParseAll(ctx context.Context, r io.Reader, w io.Writer) (int64, error) {
	var (
		written int64 // values written to w
		recBase int   // values consumed from the stream (for error coordinates)
		offBase int   // bytes consumed from the stream
		buf     = make([]byte, 0, p.parseBlock)
		out     []byte // packed output, reused across blocks
		eof     bool
	)
	scratch := make([][]float64, p.shards)

	for {
		if err := ctx.Err(); err != nil {
			return written, err
		}
		// Fill until the block holds a separator past the target size (or
		// the stream ends).  The carry never contains a separator — it is
		// the suffix after the previous block's last one — so lastSep only
		// needs to watch newly read bytes.  A single token longer than the
		// block target keeps growing the buffer up to MaxTokenBytes;
		// beyond that the stream is not number-shaped and buffering more
		// cannot fix it.
		lastSep := -1
		for !eof {
			if lastSep >= 0 && len(buf) >= p.parseBlock {
				break
			}
			if lastSep < 0 && len(buf) > p.maxToken {
				break
			}
			if len(buf) == cap(buf) {
				grown := make([]byte, len(buf), 2*cap(buf))
				copy(grown, buf)
				buf = grown
			}
			prev := len(buf)
			n, rerr := r.Read(buf[len(buf):cap(buf)])
			buf = buf[:prev+n]
			for i := len(buf) - 1; i >= prev; i-- {
				if floatprint.BatchSep(buf[i]) {
					lastSep = i
					break
				}
			}
			if rerr == io.EOF {
				eof = true
			} else if rerr != nil {
				return written, rerr
			}
		}
		if len(buf) == 0 {
			return written, nil
		}
		if eof && lastSep < 0 {
			lastSep = lastSepIndex(buf) // fill may have been skipped entirely
		}
		cut := lastSep + 1 // consume through the last separator
		if cut == 0 {
			if !eof {
				return written, &floatprint.BatchParseError{
					Record: recBase, Offset: offBase,
					Err: fmt.Errorf("floatprint: token exceeds %d bytes", p.maxToken),
				}
			}
			cut = len(buf) // final unterminated token
		}
		block := buf[:cut]

		vals, perr := p.parseBlock64(block, scratch)
		// Pack and write everything parsed before any failure: the output
		// prefix contract holds on errors too.
		total := 0
		for _, v := range vals {
			total += len(v)
		}
		if cap(out) < 8*total {
			out = make([]byte, 0, 8*total)
		}
		out = out[:0]
		for _, shard := range vals {
			for _, f := range shard {
				out = binary.LittleEndian.AppendUint64(out, math.Float64bits(f))
			}
		}
		if len(out) > 0 {
			if _, werr := w.Write(out); werr != nil {
				// Count whole values only; Write's partial-byte count is not
				// meaningful at the value granularity the contract promises.
				return written, werr
			}
			written += int64(total)
		}
		if perr != nil {
			perr.Record += recBase
			perr.Offset += offBase
			return written, perr
		}
		recBase += total
		offBase += cut
		buf = append(buf[:0], buf[cut:]...)
		if eof && len(buf) == 0 {
			return written, nil
		}
	}
}

// parseBlock64 scans one separator-terminated block across the pool's
// shards and returns the per-shard value slices in input order.  On a
// malformed token it returns the values preceding it and a
// *floatprint.BatchParseError with Record/Offset relative to the block.
func (p *Pool) parseBlock64(block []byte, scratch [][]float64) ([][]float64, *floatprint.BatchParseError) {
	shards := p.shards
	if max := len(block)/parseMinShardBytes + 1; shards > max {
		shards = max
	}
	// Cut points: each advanced to the next separator so every token is
	// wholly inside one range (a range may begin with separators, which
	// the scanner skips).
	bounds := make([]int, shards+1)
	bounds[shards] = len(block)
	for s := 1; s < shards; s++ {
		c := s * len(block) / shards
		if c < bounds[s-1] {
			c = bounds[s-1]
		}
		for c < len(block) && !floatprint.BatchSep(block[c]) {
			c++
		}
		bounds[s] = c
	}

	errs := make([]*floatprint.BatchParseError, shards)
	if shards <= 1 {
		var err error
		scratch[0], err = floatprint.AppendParseBatch(scratch[0][:0], block)
		return p.collectBlock(scratch[:1], bounds, errs, err)
	}
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var err error
			scratch[s], err = floatprint.AppendParseBatch(scratch[s][:0], block[bounds[s]:bounds[s+1]])
			if err != nil {
				errs[s], _ = err.(*floatprint.BatchParseError)
				if errs[s] == nil {
					errs[s] = &floatprint.BatchParseError{Err: err}
				}
			}
		}(s)
	}
	wg.Wait()
	return p.collectBlock(scratch[:shards], bounds, errs, nil)
}

// collectBlock folds per-shard results into block-order values and the
// first (input-order) error, with Record/Offset adjusted from range- to
// block-relative coordinates.
func (p *Pool) collectBlock(vals [][]float64, bounds []int, errs []*floatprint.BatchParseError, singleErr error) ([][]float64, *floatprint.BatchParseError) {
	if singleErr != nil {
		e, ok := singleErr.(*floatprint.BatchParseError)
		if !ok {
			e = &floatprint.BatchParseError{Err: singleErr}
		}
		errs[0] = e
	}
	records := 0
	for s := range vals {
		if e := errs[s]; e != nil {
			return vals[:s+1], &floatprint.BatchParseError{
				Record: records + e.Record,
				Offset: bounds[s] + e.Offset,
				Err:    e.Err,
			}
		}
		records += len(vals[s])
	}
	return vals, nil
}

// lastSepIndex returns the index of the last separator byte in b, or -1.
func lastSepIndex(b []byte) int {
	for i := len(b) - 1; i >= 0; i-- {
		if floatprint.BatchSep(b[i]) {
			return i
		}
	}
	return -1
}
