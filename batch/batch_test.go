package batch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"floatprint"
	"floatprint/internal/schryer"
)

// referenceConcat renders values one by one through the public
// single-value API: the byte stream every batch configuration must
// reproduce exactly.
func referenceConcat(values []float64) ([]byte, []int) {
	buf := make([]byte, 0, len(values)*perValueBytes)
	offsets := make([]int, len(values)+1)
	for i, v := range values {
		buf = floatprint.AppendShortest(buf, v)
		offsets[i+1] = len(buf)
	}
	return buf, offsets
}

// testCorpus mixes Schryer values with specials and signs so the batch
// path also covers NaN/Inf/±0 and the exact-fallback values.
func testCorpus(n int) []float64 {
	values := schryer.CorpusN(n)
	out := make([]float64, 0, len(values)+8)
	out = append(out, 0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1))
	for i, v := range values {
		if i%3 == 1 {
			v = -v
		}
		out = append(out, v)
	}
	return out
}

// TestConvertMatchesAppendShortestFullCorpus is the acceptance
// differential: over the full 250,680-value Schryer corpus, the batch
// engine's packed output is byte-identical to per-value AppendShortest,
// for one shard and for NumCPU shards.
func TestConvertMatchesAppendShortestFullCorpus(t *testing.T) {
	corpus := schryer.Corpus()
	if testing.Short() {
		corpus = corpus[:20000]
	}
	wantBuf, wantOffsets := referenceConcat(corpus)
	for _, shards := range []int{1, runtime.NumCPU()} {
		p := New(Config{Shards: shards})
		res, err := p.Convert(context.Background(), corpus)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !bytes.Equal(res.Buf, wantBuf) {
			t.Fatalf("shards=%d: packed output differs from per-value AppendShortest", shards)
		}
		if len(res.Offsets) != len(wantOffsets) {
			t.Fatalf("shards=%d: %d offsets, want %d", shards, len(res.Offsets), len(wantOffsets))
		}
		for i := range wantOffsets {
			if res.Offsets[i] != wantOffsets[i] {
				t.Fatalf("shards=%d: offset[%d] = %d, want %d",
					shards, i, res.Offsets[i], wantOffsets[i])
			}
		}
	}
}

func TestConvertShardsSpecialsAndSigns(t *testing.T) {
	values := testCorpus(5000)
	wantBuf, _ := referenceConcat(values)
	for _, shards := range []int{1, 2, 3, 7, runtime.NumCPU(), 64} {
		res, err := New(Config{Shards: shards, ChunkSize: 128}).Convert(context.Background(), values)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !bytes.Equal(res.Buf, wantBuf) {
			t.Fatalf("shards=%d: output differs", shards)
		}
		if res.Len() != len(values) {
			t.Fatalf("shards=%d: Len = %d, want %d", shards, res.Len(), len(values))
		}
		// Value accessor agrees with single-value conversion.
		for _, i := range []int{0, 1, 2, 3, 4, 17, len(values) - 1} {
			want := floatprint.AppendShortest(nil, values[i])
			if got := res.Value(i); !bytes.Equal(got, want) {
				t.Fatalf("shards=%d: Value(%d) = %q, want %q", shards, i, got, want)
			}
		}
		// Shard stats add up to the totals.
		vals, bs := 0, 0
		for _, s := range res.Shards {
			vals += s.Values
			bs += s.Bytes
		}
		if vals != len(values) || bs != len(res.Buf) {
			t.Fatalf("shards=%d: shard stats %d values/%d bytes, want %d/%d",
				shards, vals, bs, len(values), len(res.Buf))
		}
	}
}

func TestConvertEmptyAndTiny(t *testing.T) {
	res, err := Convert(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 || len(res.Buf) != 0 {
		t.Fatalf("empty input: %d values, %d bytes", res.Len(), len(res.Buf))
	}
	res, err = Convert(context.Background(), []float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(res.Value(0)); got != "0.3" {
		t.Fatalf("Value(0) = %q", got)
	}
}

func TestBatchShortestSequentialAPI(t *testing.T) {
	values := testCorpus(2000)
	wantBuf, wantOffsets := referenceConcat(values)
	res := floatprint.BatchShortest(values)
	if !bytes.Equal(res.Buf, wantBuf) {
		t.Fatal("BatchShortest output differs from per-value AppendShortest")
	}
	for i := range wantOffsets {
		if res.Offsets[i] != wantOffsets[i] {
			t.Fatalf("offset[%d] = %d, want %d", i, res.Offsets[i], wantOffsets[i])
		}
	}
	var sink bytes.Buffer
	if _, err := res.WriteTo(&sink); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sink.Bytes(), wantBuf) {
		t.Fatal("WriteTo differs")
	}
}

func TestWriteAllMatchesConvert(t *testing.T) {
	values := testCorpus(30000)
	wantBuf, _ := referenceConcat(values)
	for _, shards := range []int{1, 2, runtime.NumCPU()} {
		for _, chunk := range []int{1, 7, 1024} {
			var sink bytes.Buffer
			p := New(Config{Shards: shards, ChunkSize: chunk})
			n, err := p.WriteAll(context.Background(), values, &sink)
			if err != nil {
				t.Fatalf("shards=%d chunk=%d: %v", shards, chunk, err)
			}
			if n != int64(len(wantBuf)) || !bytes.Equal(sink.Bytes(), wantBuf) {
				t.Fatalf("shards=%d chunk=%d: wrote %d bytes, output differs", shards, chunk, n)
			}
		}
	}
}

func TestWriteAllSeparator(t *testing.T) {
	values := []float64{1, 0.3, 1e23, math.NaN()}
	var sink bytes.Buffer
	p := New(Config{Shards: 2, ChunkSize: 1, Sep: []byte{'\n'}})
	if _, err := p.WriteAll(context.Background(), values, &sink); err != nil {
		t.Fatal(err)
	}
	want := "1\n0.3\n1e23\nNaN\n"
	if sink.String() != want {
		t.Fatalf("got %q, want %q", sink.String(), want)
	}
}

func TestConvertCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Convert(ctx, schryer.CorpusN(10000)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Convert: err = %v", err)
	}

	// Cancel mid-flight: a tiny chunk size makes workers observe it.
	values := schryer.CorpusN(200000)
	ctx, cancel = context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := New(Config{Shards: 2, ChunkSize: 16}).Convert(ctx, values)
		done <- err
	}()
	cancel()
	if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancel: err = %v", err)
	}
}

func TestWriteAllCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sink bytes.Buffer
	if _, err := New(Config{Shards: 4}).WriteAll(ctx, schryer.CorpusN(50000), &sink); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled WriteAll: err = %v", err)
	}
}

// cancelAfterWriter cancels its context once n writes have landed,
// then keeps accepting: the mid-stream cancellation a network peer
// disconnect produces, with the sink still healthy.
type cancelAfterWriter struct {
	bytes.Buffer
	n      int
	cancel context.CancelFunc
}

func (c *cancelAfterWriter) Write(p []byte) (int, error) {
	if c.n--; c.n == 0 {
		c.cancel()
	}
	return c.Buffer.Write(p)
}

// TestWriteAllCancelMidStreamPrefix pins the writer-side cancel
// contract: whatever a canceled WriteAll wrote is byte-identical to a
// prefix of the sequential per-value output, the returned count equals
// the bytes that reached the writer, and no worker goroutines outlive
// the call.
func TestWriteAllCancelMidStreamPrefix(t *testing.T) {
	values := testCorpus(120000)
	want, _ := referenceConcat(values)

	baseline := runtime.NumGoroutine()
	for _, shards := range []int{1, 2, runtime.NumCPU()} {
		for _, after := range []int{1, 3, 7} {
			ctx, cancel := context.WithCancel(context.Background())
			sink := &cancelAfterWriter{n: after, cancel: cancel}
			p := New(Config{Shards: shards, ChunkSize: 512})
			n, err := p.WriteAll(ctx, values, sink)
			cancel()

			got := sink.Bytes()
			if n != int64(len(got)) {
				t.Fatalf("shards=%d after=%d: returned %d bytes, writer saw %d", shards, after, n, len(got))
			}
			if !bytes.HasPrefix(want, got) {
				t.Fatalf("shards=%d after=%d: canceled output is not a prefix of sequential output", shards, after)
			}
			// The cancel lands mid-stream (120000 values / 512 per chunk
			// leaves plenty unwritten), so WriteAll must report it.
			if len(got) == len(want) {
				t.Fatalf("shards=%d after=%d: whole stream written despite cancel", shards, after)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("shards=%d after=%d: err = %v, want context.Canceled", shards, after, err)
			}
		}
	}

	// Leak check: every worker and closer goroutine spawned by the
	// canceled calls must be gone (sync.Pool buffers may linger; live
	// goroutines may not).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // flush any goroutines parked in finalizer states
		if g := runtime.NumGoroutine(); g <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after canceled WriteAll: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// failingWriter fails after the first write, exercising the writer-error
// shutdown path (cancel, drain, no deadlock).
type failingWriter struct{ writes int }

func (f *failingWriter) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > 1 {
		return 0, errors.New("sink full")
	}
	return len(p), nil
}

func TestWriteAllWriterError(t *testing.T) {
	values := schryer.CorpusN(50000)
	for _, shards := range []int{1, runtime.NumCPU()} {
		fw := &failingWriter{}
		_, err := New(Config{Shards: shards, ChunkSize: 512}).WriteAll(context.Background(), values, fw)
		if err == nil || err.Error() != "sink full" {
			t.Fatalf("shards=%d: err = %v, want sink full", shards, err)
		}
	}
}

// TestConcurrentBatchRace is the -race twin: several goroutines run
// Convert and WriteAll on one shared Pool at once, with telemetry
// enabled so the counter hooks race-test too.
func TestConcurrentBatchRace(t *testing.T) {
	prev := floatprint.SetStatsEnabled(true)
	defer floatprint.SetStatsEnabled(prev)

	values := testCorpus(8000)
	wantBuf, _ := referenceConcat(values)
	p := New(Config{Shards: 4, ChunkSize: 256})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				res, err := p.Convert(context.Background(), values)
				if err != nil {
					t.Errorf("Convert: %v", err)
					return
				}
				if !bytes.Equal(res.Buf, wantBuf) {
					t.Error("concurrent Convert output differs")
				}
			} else {
				var sink bytes.Buffer
				if _, err := p.WriteAll(context.Background(), values, &sink); err != nil {
					t.Errorf("WriteAll: %v", err)
					return
				}
				if !bytes.Equal(sink.Bytes(), wantBuf) {
					t.Error("concurrent WriteAll output differs")
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestBatchTelemetry(t *testing.T) {
	floatprint.ResetStats()
	prev := floatprint.SetStatsEnabled(true)
	defer floatprint.SetStatsEnabled(prev)

	values := schryer.CorpusN(4000)
	before := floatprint.Snapshot()
	res, err := New(Config{Shards: 4}).Convert(context.Background(), values)
	if err != nil {
		t.Fatal(err)
	}
	d := floatprint.Snapshot().Sub(before)
	if d.BatchValues != uint64(len(values)) {
		t.Fatalf("BatchValues = %d, want %d", d.BatchValues, len(values))
	}
	if d.BatchBytes != uint64(len(res.Buf)) {
		t.Fatalf("BatchBytes = %d, want %d", d.BatchBytes, len(res.Buf))
	}
	if d.GrisuHits+d.GrisuMisses+d.RyuHits+d.RyuMisses < uint64(len(values)) {
		t.Fatalf("path telemetry below corpus size: %+v", d)
	}
}

// Parallel benchmarks: batch throughput by shard count.  Run with
// -cpu=1,2,4,... or read the per-shard rows directly.
func BenchmarkBatchConvert(b *testing.B) {
	values := schryer.CorpusN(65536)
	for _, shards := range []int{1, 2, 4, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p := New(Config{Shards: shards})
			b.SetBytes(int64(len(values) * 8))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Convert(context.Background(), values); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(values))*float64(b.N)/b.Elapsed().Seconds(), "values/s")
		})
	}
}

// discard is io.Discard without the interface-dispatch noise.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func BenchmarkBatchWriteAll(b *testing.B) {
	values := schryer.CorpusN(65536)
	for _, shards := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p := New(Config{Shards: shards, Sep: []byte{'\n'}})
			b.SetBytes(int64(len(values) * 8))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.WriteAll(context.Background(), values, discard{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(values))*float64(b.N)/b.Elapsed().Seconds(), "values/s")
		})
	}
}

func BenchmarkBatchSequentialReference(b *testing.B) {
	values := schryer.CorpusN(65536)
	b.SetBytes(int64(len(values) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		floatprint.BatchShortest(values)
	}
	b.ReportMetric(float64(len(values))*float64(b.N)/b.Elapsed().Seconds(), "values/s")
}
