package batch

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"

	"floatprint"
	"floatprint/internal/schryer"
)

// corpusNDJSON renders vals as the shortest NDJSON stream the print
// side would produce — the canonical round-trip input.
func corpusNDJSON(vals []float64) []byte {
	var buf []byte
	for _, v := range vals {
		buf = floatprint.AppendShortest(buf, v)
		buf = append(buf, '\n')
	}
	return buf
}

// unpackLE decodes ParseAll's packed little-endian output.
func unpackLE(t *testing.T, b []byte) []float64 {
	t.Helper()
	if len(b)%8 != 0 {
		t.Fatalf("packed output is %d bytes, not a multiple of 8", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// TestParseAllFullCorpusDifferential is the acceptance test from the
// issue: every corpus value rendered shortest, streamed through the
// sharded block engine, and required bit-identical to per-value Parse —
// which for shortest output means bit-identical to the original value.
func TestParseAllFullCorpusDifferential(t *testing.T) {
	vals := schryer.Corpus()
	if testing.Short() {
		vals = schryer.CorpusN(20000)
	}
	// Specials and signed zero ride along: they exercise the per-value
	// fallback inside the block scanner.
	vals = append(vals, math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 0)
	in := corpusNDJSON(vals)

	// A small block size forces many carry/refill rounds over the corpus.
	p := New(Config{Shards: 4, ParseBlockBytes: 64 << 10})
	var out bytes.Buffer
	n, err := p.ParseAll(context.Background(), bytes.NewReader(in), &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(vals)) {
		t.Fatalf("ParseAll wrote %d values, want %d", n, len(vals))
	}
	got := unpackLE(t, out.Bytes())
	for i, v := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(v) {
			s := floatprint.Shortest(v)
			t.Fatalf("value %d (%q): got %x, want %x",
				i, s, math.Float64bits(got[i]), math.Float64bits(v))
		}
	}
}

// TestParseAllShardCountInvariance pins ordered output: every shard
// count and block size produces the identical packed stream.
func TestParseAllShardCountInvariance(t *testing.T) {
	in := corpusNDJSON(schryer.CorpusN(30000))
	var want bytes.Buffer
	if _, err := New(Config{Shards: 1}).ParseAll(context.Background(), bytes.NewReader(in), &want); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Shards: 2, ParseBlockBytes: 32 << 10},
		{Shards: 7, ParseBlockBytes: 100_000},
		{Shards: 16, ParseBlockBytes: 1 << 10},
	} {
		var got bytes.Buffer
		if _, err := New(cfg).ParseAll(context.Background(), bytes.NewReader(in), &got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("shards=%d block=%d: output differs from single-shard", cfg.Shards, cfg.ParseBlockBytes)
		}
	}
}

// TestParseAllErrorCoordinates pins stream-level Record/Offset across
// block boundaries: the malformed token sits far enough in that earlier
// blocks were already consumed.
func TestParseAllErrorCoordinates(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 10000; i++ {
		sb.WriteString(strconv.Itoa(i))
		sb.WriteByte('\n')
	}
	prefixLen := sb.Len()
	sb.WriteString("bogus\n")
	sb.WriteString("1\n2\n")
	in := sb.String()

	p := New(Config{Shards: 3, ParseBlockBytes: 4 << 10})
	var out bytes.Buffer
	n, err := p.ParseAll(context.Background(), strings.NewReader(in), &out)
	var be *floatprint.BatchParseError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BatchParseError", err)
	}
	if be.Record != 10000 || be.Offset != prefixLen {
		t.Fatalf("error at record %d offset %d, want record 10000 offset %d", be.Record, be.Offset, prefixLen)
	}
	// The prefix contract: everything before the failure was written.
	if n != 10000 {
		t.Fatalf("wrote %d values before the error, want 10000", n)
	}
	got := unpackLE(t, out.Bytes())
	for i := 0; i < 10000; i++ {
		if got[i] != float64(i) {
			t.Fatalf("value %d = %v before the error", i, got[i])
		}
	}
}

// TestParseAllRangeSemantics: out-of-range tokens parse to ±Inf and the
// stream continues, exactly as per-value Parse's ErrRange contract.
func TestParseAllRangeSemantics(t *testing.T) {
	var out bytes.Buffer
	n, err := ParseAll(context.Background(), strings.NewReader("1e999\n-1e999\n0.5\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("wrote %d values, want 3", n)
	}
	got := unpackLE(t, out.Bytes())
	if !math.IsInf(got[0], 1) || !math.IsInf(got[1], -1) || got[2] != 0.5 {
		t.Fatalf("got %v, want [+Inf -Inf 0.5]", got)
	}
}

// TestParseAllMaxTokenBytes: a separator-free run past the cap is a
// positioned error, not unbounded buffering.
func TestParseAllMaxTokenBytes(t *testing.T) {
	long := strings.Repeat("1", 4096)
	p := New(Config{ParseBlockBytes: 512, MaxTokenBytes: 1024})
	var out bytes.Buffer
	_, err := p.ParseAll(context.Background(), strings.NewReader("7\n"+long), &out)
	var be *floatprint.BatchParseError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BatchParseError", err)
	}
	if be.Record != 1 || be.Offset != 2 {
		t.Fatalf("cap error at record %d offset %d, want record 1 offset 2", be.Record, be.Offset)
	}
	if !strings.Contains(err.Error(), "exceeds 1024 bytes") {
		t.Fatalf("error text %q missing cap", err)
	}
	// A long-but-capped token still parses when the cap allows it.
	p = New(Config{ParseBlockBytes: 512, MaxTokenBytes: 1 << 20})
	out.Reset()
	n, err := p.ParseAll(context.Background(), strings.NewReader("7\n"+long+"\n"), &out)
	if err != nil || n != 2 {
		t.Fatalf("capped parse: n=%d err=%v", n, err)
	}
}

// TestParseAllUnterminatedFinalToken: EOF without a trailing separator
// still parses the last token.
func TestParseAllUnterminatedFinalToken(t *testing.T) {
	var out bytes.Buffer
	n, err := ParseAll(context.Background(), strings.NewReader("1.5\n2.5"), &out)
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	got := unpackLE(t, out.Bytes())
	if got[0] != 1.5 || got[1] != 2.5 {
		t.Fatalf("got %v", got)
	}
}

func TestParseAllEmpty(t *testing.T) {
	for _, in := range []string{"", "\n\n", " \t\r\n,"} {
		var out bytes.Buffer
		n, err := ParseAll(context.Background(), strings.NewReader(in), &out)
		if err != nil || n != 0 || out.Len() != 0 {
			t.Fatalf("ParseAll(%q): n=%d err=%v len=%d", in, n, err, out.Len())
		}
	}
}

func TestParseAllCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	in := corpusNDJSON(schryer.CorpusN(10000))
	if _, err := ParseAll(ctx, bytes.NewReader(in), &out); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestParseAllWriterError: a failing writer stops the stream with its
// error and the returned count stays at the values that reached it.
func TestParseAllWriterError(t *testing.T) {
	in := corpusNDJSON(schryer.CorpusN(50000))
	wantErr := errors.New("sink full")
	w := &failAfterWriter{limit: 1, err: wantErr}
	p := New(Config{Shards: 4, ParseBlockBytes: 16 << 10})
	n, err := p.ParseAll(context.Background(), bytes.NewReader(in), w)
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if n != int64(w.values) {
		t.Fatalf("returned %d values, writer accepted %d", n, w.values)
	}
}

// failAfterWriter accepts limit writes, then fails.
type failAfterWriter struct {
	writes int
	limit  int
	values int
	err    error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.writes >= w.limit {
		return 0, w.err
	}
	w.writes++
	w.values += len(p) / 8
	return len(p), nil
}

// TestParseAllSmallReads: a reader that trickles one byte at a time
// exercises every refill path without changing the output.
func TestParseAllSmallReads(t *testing.T) {
	in := corpusNDJSON(schryer.CorpusN(500))
	var want, got bytes.Buffer
	if _, err := ParseAll(context.Background(), bytes.NewReader(in), &want); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseAll(context.Background(), iotest(bytes.NewReader(in)), &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("one-byte reads change the output")
	}
}

// iotest wraps r to return one byte per Read (stdlib iotest.OneByteReader
// shape, local to avoid the extra import).
func iotest(r io.Reader) io.Reader { return &oneByte{r} }

type oneByte struct{ r io.Reader }

func (o *oneByte) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	return o.r.Read(p[:1])
}

// TestConcurrentParseAllRace is the -race twin: one pool, many
// concurrent ParseAll calls, telemetry enabled, identical outputs.
func TestConcurrentParseAllRace(t *testing.T) {
	prev := floatprint.SetStatsEnabled(true)
	defer floatprint.SetStatsEnabled(prev)

	vals := schryer.CorpusN(8000)
	in := corpusNDJSON(vals)
	var want bytes.Buffer
	p := New(Config{Shards: 4, ParseBlockBytes: 8 << 10})
	if _, err := p.ParseAll(context.Background(), bytes.NewReader(in), &want); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out bytes.Buffer
			if _, err := p.ParseAll(context.Background(), bytes.NewReader(in), &out); err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(want.Bytes(), out.Bytes()) {
				t.Error("concurrent ParseAll output differs")
			}
		}()
	}
	wg.Wait()
}

// TestParseAllTelemetry checks the batch-parse counters advance through
// the root Snapshot when enabled.
func TestParseAllTelemetry(t *testing.T) {
	floatprint.ResetStats()
	prev := floatprint.SetStatsEnabled(true)
	defer func() {
		floatprint.SetStatsEnabled(prev)
		floatprint.ResetStats()
	}()

	in := corpusNDJSON(schryer.CorpusN(4000))
	before := floatprint.Snapshot()
	var out bytes.Buffer
	if _, err := New(Config{Shards: 2}).ParseAll(context.Background(), bytes.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	d := floatprint.Snapshot().Sub(before)
	if d.BatchParseValues != 4000 {
		t.Errorf("BatchParseValues = %d, want 4000", d.BatchParseValues)
	}
	if d.BatchParseBlocks == 0 {
		t.Errorf("BatchParseBlocks = 0, want > 0")
	}
	if d.BatchParseBytes != uint64(len(in)) {
		t.Errorf("BatchParseBytes = %d, want %d", d.BatchParseBytes, len(in))
	}
}

func BenchmarkParseAll(b *testing.B) {
	in := corpusNDJSON(schryer.CorpusN(65536))
	p := New(Config{})
	b.SetBytes(int64(len(in)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ParseAll(context.Background(), bytes.NewReader(in), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
