// Package batch is the bulk-conversion engine: it turns a []float64
// into shortest decimal renderings across a sharded worker pool,
// producing either a packed buffer with offsets (Convert) or an ordered
// stream into an io.Writer (WriteAll).
//
// The design target is the corpus-scale regime of the paper's
// evaluation — millions of conversions measured end to end — where the
// costs that matter are amortizable: output-buffer growth, offset
// bookkeeping, and scheduling.  Each shard owns one append buffer for
// its whole range, reuses the process-wide pooled conversion state
// (grisu stack buffers, pooled bignat limbs) through
// floatprint.AppendShortest, and tallies its telemetry locally, folding
// it into the global counters with one atomic add per shard.  Output is
// byte-identical to calling floatprint.AppendShortest on each value in
// order, whatever the shard count.
package batch

import (
	"context"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"floatprint"
	"floatprint/internal/stats"
)

// perValueBytes is the output capacity estimate per value (the longest
// shortest-form float64 rendering is 24 bytes).
const perValueBytes = 24

// Config tunes a Pool.  The zero value is ready to use.
type Config struct {
	// Shards is the worker count.  Zero or negative means
	// runtime.GOMAXPROCS(0).
	Shards int
	// ChunkSize is the number of values per unit of work: the
	// cancellation-check granularity in Convert and the write granularity
	// in WriteAll.  Zero or negative means 4096.
	ChunkSize int
	// Sep, when non-nil, terminates every value written by WriteAll
	// (e.g. []byte{'\n'} for line-oriented output).  Convert never
	// inserts separators: its packed buffer is delimited by offsets.
	Sep []byte
	// Backend selects the shortest-digit backend every shard uses
	// (floatprint.BackendAuto, the zero value, picks the fastest
	// applicable fast path per value).  The packed output is
	// byte-identical for every choice; only the path mix and the
	// throughput change.
	Backend floatprint.Backend
	// ParseBlockBytes is ParseAll's input block target: how many bytes
	// are buffered (and sharded) per scan-and-write round.  Zero or
	// negative means 1 MiB.
	ParseBlockBytes int
	// MaxTokenBytes caps a single separator-free token in ParseAll; a
	// longer run is a malformed stream, not a number, and is rejected
	// rather than buffered without bound.  Zero or negative means 1 MiB.
	MaxTokenBytes int
}

// Pool is a reusable batch-conversion engine.  A Pool carries no
// per-call state, so one Pool may run any number of concurrent Convert
// and WriteAll calls.
type Pool struct {
	shards     int
	chunk      int
	sep        []byte
	parseBlock int
	maxToken   int
	// opts is non-nil only for a non-default backend selection, so the
	// default path stays on the argument-free AppendShortest fast call.
	opts *floatprint.Options
}

// New builds a Pool from cfg, applying defaults.
func New(cfg Config) *Pool {
	shards := cfg.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	chunk := cfg.ChunkSize
	if chunk <= 0 {
		chunk = 4096
	}
	parseBlock := cfg.ParseBlockBytes
	if parseBlock <= 0 {
		parseBlock = 1 << 20
	}
	maxToken := cfg.MaxTokenBytes
	if maxToken <= 0 {
		maxToken = 1 << 20
	}
	p := &Pool{shards: shards, chunk: chunk, sep: cfg.Sep, parseBlock: parseBlock, maxToken: maxToken}
	if cfg.Backend != floatprint.BackendAuto {
		p.opts = &floatprint.Options{Backend: cfg.Backend}
	}
	return p
}

// appendShortest is the per-value conversion every shard runs: the plain
// fast call under the default backend, the options-carrying variant when
// the pool pins one.
func (p *Pool) appendShortest(dst []byte, v float64) []byte {
	if p.opts == nil {
		return floatprint.AppendShortest(dst, v)
	}
	return floatprint.AppendShortestWith(dst, v, p.opts)
}

// Shards returns the pool's effective worker count.
func (p *Pool) Shards() int { return p.shards }

// Convert converts values with the default configuration
// (GOMAXPROCS shards); see Pool.Convert.
func Convert(ctx context.Context, values []float64) (*floatprint.BatchResult, error) {
	return New(Config{}).Convert(ctx, values)
}

// Convert renders every value to its shortest form and packs the
// results into one BatchResult.  The input is split into contiguous
// per-shard ranges; each shard converts its range into a private buffer
// (checking ctx every ChunkSize values) and the buffers are stitched in
// input order, so the output is byte-identical to sequential per-value
// AppendShortest calls.  On cancellation the partial work is discarded
// and ctx.Err() returned.
func (p *Pool) Convert(ctx context.Context, values []float64) (*floatprint.BatchResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := len(values)
	shards := p.shards
	if shards > n {
		shards = n
	}
	if n == 0 {
		return &floatprint.BatchResult{Offsets: []int{0}}, nil
	}

	type shardOut struct {
		buf  []byte
		ends []int // per-value end positions, local to buf
		err  error
	}
	outs := make([]shardOut, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			lo, hi := s*n/shards, (s+1)*n/shards
			buf := make([]byte, 0, (hi-lo)*perValueBytes)
			ends := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				if (i-lo)%p.chunk == 0 && ctx.Err() != nil {
					outs[s].err = ctx.Err()
					return
				}
				buf = p.appendShortest(buf, values[i])
				ends = append(ends, len(buf))
			}
			outs[s].buf, outs[s].ends = buf, ends
		}(s)
	}
	wg.Wait()

	total := 0
	for s := range outs {
		if outs[s].err != nil {
			return nil, outs[s].err
		}
		total += len(outs[s].buf)
	}

	buf := make([]byte, 0, total)
	offsets := make([]int, n+1)
	shardStats := make([]floatprint.BatchShardStats, shards)
	idx := 1
	for s := range outs {
		shift := len(buf)
		buf = append(buf, outs[s].buf...)
		for _, end := range outs[s].ends {
			offsets[idx] = shift + end
			idx++
		}
		shardStats[s] = floatprint.BatchShardStats{
			Values: len(outs[s].ends), Bytes: len(outs[s].buf),
		}
	}
	stats.BatchValues.Add(uint64(n))
	stats.BatchBytes.Add(uint64(total))
	return &floatprint.BatchResult{Buf: buf, Offsets: offsets, Shards: shardStats}, nil
}

// chunkOut is one converted chunk in flight between a WriteAll worker
// and the ordering writer.
type chunkOut struct {
	idx int
	buf []byte
}

// WriteAll streams the shortest renderings of values to w in input
// order, each followed by the pool's Sep.  Values are converted in
// ChunkSize chunks by the worker pool while the calling goroutine
// writes completed chunks in order; at most 2×Shards chunks are in
// flight, so memory stays bounded regardless of input length and chunk
// buffers are recycled.  It returns the byte count written to w and the
// first error (a write error, or ctx.Err() on cancellation).
//
// Writer-side cancel contract: chunks reach w strictly in input order,
// so whatever WriteAll has written when it returns — on success,
// cancellation, or a write error — is a prefix of the full sequential
// output, ending on a chunk boundary; w never sees reordered,
// interleaved, or partial-chunk bytes.  On cancellation every worker
// goroutine exits before WriteAll returns (nothing keeps converting
// into a dead stream), which is what lets a network front end abort a
// response mid-stream and trust both the bytes already sent and its
// goroutine budget.  The byte count returned is exactly what reached w.
func (p *Pool) WriteAll(ctx context.Context, values []float64, w io.Writer) (int64, error) {
	n := len(values)
	if n == 0 {
		return 0, ctx.Err()
	}
	nchunks := (n + p.chunk - 1) / p.chunk
	shards := p.shards
	if shards > nchunks {
		shards = nchunks
	}

	convertChunk := func(ci int, buf []byte) []byte {
		lo := ci * p.chunk
		hi := min(lo+p.chunk, n)
		for i := lo; i < hi; i++ {
			buf = p.appendShortest(buf, values[i])
			buf = append(buf, p.sep...)
		}
		return buf
	}

	var written int64
	if shards <= 1 {
		buf := make([]byte, 0, p.chunk*perValueBytes)
		for ci := 0; ci < nchunks; ci++ {
			if err := ctx.Err(); err != nil {
				return written, err
			}
			buf = convertChunk(ci, buf[:0])
			nw, err := w.Write(buf)
			written += int64(nw)
			if err != nil {
				return written, err
			}
		}
		stats.BatchValues.Add(uint64(n))
		stats.BatchBytes.Add(uint64(written))
		return written, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	bufPool := sync.Pool{New: func() any {
		b := make([]byte, 0, p.chunk*perValueBytes)
		return &b
	}}
	var next atomic.Int64
	resCh := make(chan chunkOut, shards)
	// sem bounds chunks in flight (converting or awaiting their turn at
	// the writer).  Workers take a slot before claiming a chunk and the
	// writer releases it after the chunk is written; because chunk
	// indices are claimed in increasing order, the lowest unwritten
	// chunk always holds a slot, so the writer can always make progress.
	sem := make(chan struct{}, 2*shards)

	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case sem <- struct{}{}:
				case <-ctx.Done():
					return
				}
				ci := int(next.Add(1) - 1)
				if ci >= nchunks {
					<-sem
					return
				}
				bp := bufPool.Get().(*[]byte)
				*bp = convertChunk(ci, (*bp)[:0])
				select {
				case resCh <- chunkOut{idx: ci, buf: *bp}:
					// The writer owns the buffer now and re-pools it after
					// writing.
				case <-ctx.Done():
					<-sem
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(resCh)
	}()

	pending := make(map[int][]byte, 2*shards)
	nextWrite := 0
	release := func(buf []byte) {
		<-sem
		b := buf
		bufPool.Put(&b)
	}
	var firstErr error
	for res := range resCh {
		if firstErr != nil {
			release(res.buf) // drain so no worker blocks on resCh
			continue
		}
		pending[res.idx] = res.buf
		for {
			buf, ok := pending[nextWrite]
			if !ok {
				break
			}
			delete(pending, nextWrite)
			nextWrite++
			nw, err := w.Write(buf)
			written += int64(nw)
			release(buf)
			if err != nil {
				firstErr = err
				cancel()
				break
			}
		}
	}
	if firstErr != nil {
		return written, firstErr
	}
	if err := ctx.Err(); err != nil && nextWrite < nchunks {
		return written, err
	}
	stats.BatchValues.Add(uint64(n))
	stats.BatchBytes.Add(uint64(written))
	return written, nil
}
