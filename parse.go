package floatprint

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"floatprint/internal/fpformat"
	"floatprint/internal/reader"
)

// ErrRange reports that a parsed value is outside the float64 range; the
// accompanying result is ±Inf, as IEEE arithmetic would produce.
var ErrRange = errors.New("floatprint: value out of range")

// Parse reads a number in the options' base with correct rounding under
// the options' reader mode and returns the nearest float64.  It is the
// exact inverse of this package's printing: Parse(Shortest(v)) == v, and
// the same holds for every base and reader mode pair when the options
// match.  '#' marks in the input are read as zeros, so fixed-format output
// parses back directly.  The strings "NaN", "Inf", "Infinity" (any case,
// optional sign) are accepted like strconv.ParseFloat.
func Parse(s string, opts *Options) (float64, error) {
	o, err := opts.norm()
	if err != nil {
		return 0, err
	}
	if f, ok := parseSpecial(s); ok {
		return f, nil
	}
	v, err := reader.Parse(s, o.Base, fpformat.Binary64, o.Reader.reader())
	if err != nil {
		if errors.Is(err, reader.ErrRange) {
			return infFor(v.Neg), ErrRange
		}
		return 0, fmt.Errorf("floatprint: %w", err)
	}
	return v.Float64()
}

// Parse32 is Parse targeting float32: rounding happens once, directly to
// single precision (no double-rounding through float64).
func Parse32(s string, opts *Options) (float32, error) {
	o, err := opts.norm()
	if err != nil {
		return 0, err
	}
	if f, ok := parseSpecial(s); ok {
		return float32(f), nil
	}
	v, err := reader.Parse(s, o.Base, fpformat.Binary32, o.Reader.reader())
	if err != nil {
		if errors.Is(err, reader.ErrRange) {
			return float32(infFor(v.Neg)), ErrRange
		}
		return 0, fmt.Errorf("floatprint: %w", err)
	}
	return v.Float32()
}

// parseDigits converts an already-split Digits value back to a float64.
func parseDigits(d Digits) (float64, error) {
	// Dropping the insignificant tail (zeros) does not change the value or
	// the scale: 0.d₁…d_NSig × Bᴷ.
	v, err := reader.Convert(reader.Number{
		Neg:    d.Neg,
		Digits: d.Digits[:d.NSig],
		Base:   d.Base,
		K:      d.K,
	}, fpformat.Binary64, reader.NearestEven)
	if err != nil {
		if errors.Is(err, reader.ErrRange) {
			return infFor(d.Neg), ErrRange
		}
		return 0, err
	}
	return v.Float64()
}

func parseSpecial(s string) (float64, bool) {
	t := s
	neg := false
	switch {
	case strings.HasPrefix(t, "+"):
		t = t[1:]
	case strings.HasPrefix(t, "-"):
		neg = true
		t = t[1:]
	}
	switch strings.ToLower(t) {
	case "nan":
		return math.NaN(), true
	case "inf", "infinity":
		return infFor(neg), true
	}
	return 0, false
}

func infFor(neg bool) float64 {
	if neg {
		return math.Inf(-1)
	}
	return math.Inf(1)
}
