package floatprint

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"floatprint/internal/fastparse"
	"floatprint/internal/fpformat"
	"floatprint/internal/reader"
	"floatprint/internal/stats"
)

// ErrRange reports that a parsed value is outside the float64 range; the
// accompanying result is ±Inf, as IEEE arithmetic would produce.  Parse
// and Parse32 return it wrapped with the offending input, so test with
// errors.Is(err, ErrRange).
var ErrRange = errors.New("floatprint: value out of range")

// Parse reads a number in the options' base with correct rounding under
// the options' reader mode and returns the nearest float64.  It is the
// exact inverse of this package's printing: Parse(Shortest(v)) == v, and
// the same holds for every base and reader mode pair when the options
// match.  '#' marks in the input are read as zeros, so fixed-format output
// parses back directly.  The strings "NaN", "Inf", "Infinity" (any case,
// optional sign) are accepted like strconv.ParseFloat — except in bases
// where every letter is itself a valid digit (base ≥ 24 for "inf"/"nan",
// ≥ 35 for "infinity"), where the string reads as the number it spells.
//
// Base-10 inputs take a certified Eisel–Lemire fast path
// (internal/fastparse): the classic nearest-even variant under the
// default reader, and a directed variant proving the truncated quotient
// under ReaderTowardNegInf/ReaderTowardPosInf.  Everything neither can
// certify — other bases, the remaining tie modes, exact ties, subnormal
// or out-of-range magnitudes — falls back to the exact big-integer
// reader with identical results and errors.  BackendExact in the options
// forces the exact reader for every input.
func Parse(s string, opts *Options) (float64, error) {
	o, err := opts.norm()
	if err != nil {
		return 0, err
	}
	if !stats.Enabled() {
		return parse64(s, o, nil)
	}
	var tr Trace
	f, err := parse64(s, o, &tr)
	if err == nil || errors.Is(err, ErrRange) {
		recordAggregate(&tr)
	}
	return f, err
}

// ParseTraced is Parse recording which path certified the result into tr:
// Backend is TraceBackendFastParse for a certified fast-path parse and
// TraceBackendExactParse (with FastPathMiss set when the fast path was
// attempted first) for the exact reader.  A nil tr is allowed and makes it
// exactly Parse.  Like the print-side *Traced twins, a traced parse is
// bit-identical to its untraced twin and is not folded into the global
// aggregate — the record belongs to the caller.
func ParseTraced(s string, opts *Options, tr *Trace) (float64, error) {
	o, err := opts.norm()
	if err != nil {
		return 0, err
	}
	return parse64(s, o, tr)
}

// parse64 is the common Parse/ParseTraced core under already-normalized
// options.
func parse64(s string, o Options, tr *Trace) (float64, error) {
	if f, ok := parseSpecial(s, o.Base); ok {
		traceSpecial(tr, o.Base)
		return f, nil
	}
	// Certified fast paths, one per reader family; BackendExact pins the
	// exact reader (the documented forced-off knob for differential tests).
	fastMiss := false
	if o.Base == 10 && o.Backend != BackendExact {
		switch mode := o.Reader.reader(); mode {
		case reader.NearestEven:
			if f, nd, ok := fastparse.Parse64(s); ok {
				stats.ParseFastHits.Inc()
				traceFastParse(tr, o, nd)
				return f, nil
			}
			stats.ParseFastMisses.Inc()
			fastMiss = true
		case reader.TowardNegInf, reader.TowardPosInf:
			// The directed variant certifies error identity too: any input
			// the exact reader would pair with ErrRange (saturated overflow
			// included) is declined, so the error text below never forks.
			if f, nd, ok := fastparse.ParseDirected64(s, mode == reader.TowardPosInf); ok {
				stats.DirectedFastHits.Inc()
				traceFastParse(tr, o, nd)
				return f, nil
			}
			stats.DirectedFastMisses.Inc()
			fastMiss = true
		}
	}
	n, err := reader.ParseText(s, o.Base)
	if err != nil {
		// Text errors carry no value: sign and magnitude are unknown, so
		// nothing Inf-shaped may be derived here.
		return 0, fmt.Errorf("floatprint: %w", err)
	}
	v, err := reader.Convert(n, fpformat.Binary64, o.Reader.reader())
	stats.ParseExact.Inc()
	traceExactParse(tr, o, n, fastMiss)
	if err != nil {
		if errors.Is(err, reader.ErrRange) {
			// Only the conversion's own range error carries a saturated
			// result, and only here is v populated: ±Inf under the nearest
			// modes, ±MaxFloat64 under the directed mode truncating that
			// sign (the reader sets class, sign, and mantissa accordingly).
			f, ferr := v.Float64()
			if ferr != nil {
				return infFor(v.Neg), fmt.Errorf("%w (parsing %q)", ErrRange, s)
			}
			return f, fmt.Errorf("%w (parsing %q)", ErrRange, s)
		}
		return 0, fmt.Errorf("floatprint: %w", err)
	}
	return v.Float64()
}

// Parse32 is Parse targeting float32: rounding happens once, directly to
// single precision (no double-rounding through float64).
func Parse32(s string, opts *Options) (float32, error) {
	o, err := opts.norm()
	if err != nil {
		return 0, err
	}
	if f, ok := parseSpecial(s, o.Base); ok {
		return float32(f), nil
	}
	// Only the nearest fast path exists at single precision; the directed
	// modes go straight to the exact reader (the 64-bit directed kernel's
	// certificate does not transfer across the narrowing).
	if o.Base == 10 && o.Backend != BackendExact && o.Reader.reader() == reader.NearestEven {
		if f, nd, ok := fastparse.Parse32(s); ok {
			stats.ParseFastHits.Inc()
			if stats.Enabled() {
				stats.Traces.RecordFast(TraceBackendFastParse, nd)
			}
			return f, nil
		}
		stats.ParseFastMisses.Inc()
	}
	n, err := reader.ParseText(s, o.Base)
	if err != nil {
		return 0, fmt.Errorf("floatprint: %w", err)
	}
	v, err := reader.Convert(n, fpformat.Binary32, o.Reader.reader())
	stats.ParseExact.Inc()
	if stats.Enabled() {
		stats.Traces.RecordFast(TraceBackendExactParse, len(n.Digits))
	}
	if err != nil {
		if errors.Is(err, reader.ErrRange) {
			// As in parse64: the reader's saturated result (±Inf, or the
			// largest finite float32 under a truncating directed mode)
			// rides along with ErrRange.
			f, ferr := v.Float32()
			if ferr != nil {
				return float32(infFor(v.Neg)), fmt.Errorf("%w (parsing %q)", ErrRange, s)
			}
			return f, fmt.Errorf("%w (parsing %q)", ErrRange, s)
		}
		return 0, fmt.Errorf("floatprint: %w", err)
	}
	return v.Float32()
}

// traceFastParse fills tr for a parse certified by the Eisel–Lemire fast
// path: nd significant decimal digits in, one 128-bit multiply, no exact
// arithmetic.
func traceFastParse(tr *Trace, o Options, nd int) {
	if tr == nil {
		return
	}
	tr.Reset()
	tr.Backend = TraceBackendFastParse
	tr.Base = 10
	tr.Mode = o.Reader.String()
	tr.Digits = nd
	tr.NSig = nd
	tr.Iterations = nd
}

// traceExactParse fills tr for a parse decided by the exact big-integer
// reader.
func traceExactParse(tr *Trace, o Options, n reader.Number, fastMiss bool) {
	if tr == nil {
		return
	}
	tr.Reset()
	tr.Backend = TraceBackendExactParse
	tr.FastPathMiss = fastMiss
	tr.Base = o.Base
	tr.Mode = o.Reader.String()
	tr.Digits = len(n.Digits)
	tr.NSig = len(n.Digits)
	tr.K = n.K
}

// parseDigits converts an already-split Digits value back to a float64.
func parseDigits(d Digits) (float64, error) {
	// Dropping the insignificant tail (zeros) does not change the value or
	// the scale: 0.d₁…d_NSig × Bᴷ.
	v, err := reader.Convert(reader.Number{
		Neg:    d.Neg,
		Digits: d.Digits[:d.NSig],
		Base:   d.Base,
		K:      d.K,
	}, fpformat.Binary64, reader.NearestEven)
	if err != nil {
		if errors.Is(err, reader.ErrRange) {
			return infFor(d.Neg), ErrRange
		}
		return 0, err
	}
	return v.Float64()
}

// parseSpecial recognizes the textual specials "nan", "inf", and
// "infinity" (any case, optional sign) — but only when the word could not
// be a digit string in the requested base.  From base 24 up, every letter
// of "inf" and "nan" is a valid digit (i=18, n=23, f=15), and from base
// 35 up so is all of "infinity" (t=29, y=34); there the positional parse
// must win, exactly as the reader grammar defines it.
func parseSpecial(s string, base int) (float64, bool) {
	t := s
	neg := false
	switch {
	case strings.HasPrefix(t, "+"):
		t = t[1:]
	case strings.HasPrefix(t, "-"):
		neg = true
		t = t[1:]
	}
	lower := strings.ToLower(t)
	switch lower {
	case "nan", "inf", "infinity":
	default:
		return 0, false
	}
	if digitsInBase(lower, base) {
		return 0, false
	}
	if lower == "nan" {
		return math.NaN(), true
	}
	return infFor(neg), true
}

// digitsInBase reports whether every byte of s (lowercase letters here)
// is a valid digit in the given base.
func digitsInBase(s string, base int) bool {
	for i := 0; i < len(s); i++ {
		if int(s[i]-'a')+10 >= base {
			return false
		}
	}
	return true
}

func infFor(neg bool) float64 {
	if neg {
		return math.Inf(-1)
	}
	return math.Inf(1)
}
