package floatprint

import (
	"math"
	"strconv"
	"testing"

	"floatprint/internal/schryer"
)

// TestDirectedWrappersNeverError pins the "unreachable with default
// options" claim the ShortestBelow/ShortestAbove panic paths make: under
// nil options the digits entry points return a nil error for every value
// class — finite across the whole exponent range, denormals, the format
// extremes, both signs, and the specials — so the wrappers can never
// reach their panic.  CeilFormat/FloorFormat only fail on invalid
// base/scaling or non-finite input, and norm() plus the specials filter
// rule both out before the core runs; this test keeps that audit honest
// if either layer changes.
func TestDirectedWrappersNeverError(t *testing.T) {
	values := []float64{
		0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(),
		1, -1, 0.1, -0.3, 1.5, math.Pi, -math.E,
		math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		0x1p-1022, math.Nextafter(0x1p-1022, 0), // normal floor and below
		1e308, 1e-308, 5e-324, 1e23, 1 << 53, -(1<<53 - 1),
	}
	for _, v := range values {
		if _, err := ShortestBelowDigits(v, nil); err != nil {
			t.Errorf("ShortestBelowDigits(%x, nil) error: %v", math.Float64bits(v), err)
		}
		if _, err := ShortestAboveDigits(v, nil); err != nil {
			t.Errorf("ShortestAboveDigits(%x, nil) error: %v", math.Float64bits(v), err)
		}
		// The string wrappers must complete, not panic.
		_ = ShortestBelow(v)
		_ = ShortestAbove(v)
	}
}

// TestDirectedPrintFastMatchesExact is the root-level dispatch
// differential: the default (fast-eligible) options and the forced-exact
// backend must render byte-identical one-sided bounds, and the telemetry
// must attribute each run to the right path.
func TestDirectedPrintFastMatchesExact(t *testing.T) {
	ResetStats()
	prev := SetStatsEnabled(true)
	defer SetStatsEnabled(prev)

	exact := &Options{Backend: BackendExact}
	n := 20000
	if testing.Short() {
		n = 2000
	}
	checked := 0
	for _, v := range schryer.CorpusN(n) {
		for _, w := range []float64{v, -v} {
			fb, err := ShortestBelowDigits(w, nil)
			if err != nil {
				t.Fatal(err)
			}
			eb, err := ShortestBelowDigits(w, exact)
			if err != nil {
				t.Fatal(err)
			}
			if fb.String() != eb.String() {
				t.Fatalf("Below(%x): fast %q, exact %q", math.Float64bits(w), fb.String(), eb.String())
			}
			fa, err := ShortestAboveDigits(w, nil)
			if err != nil {
				t.Fatal(err)
			}
			ea, err := ShortestAboveDigits(w, exact)
			if err != nil {
				t.Fatal(err)
			}
			if fa.String() != ea.String() {
				t.Fatalf("Above(%x): fast %q, exact %q", math.Float64bits(w), fa.String(), ea.String())
			}
			checked += 2
		}
	}
	d := Snapshot()
	if got := d.DirectedRyuHits + d.DirectedRyuMisses; got != uint64(checked) {
		t.Errorf("directed ryu attempts = %d, want %d (one per fast-eligible call)", got, checked)
	}
	if d.DirectedRyuMisses != 0 {
		t.Errorf("DirectedRyuMisses = %d, want 0 (the kernels serve every finite value)", d.DirectedRyuMisses)
	}
	// The forced-exact twin runs never touch the directed fast counters.
	if got := d.ExactFree; got != uint64(checked) {
		t.Errorf("ExactFree = %d, want %d (one per forced-exact call)", got, checked)
	}
}

// TestDirectedDispatchGuards pins the static guards in front of the
// one-sided kernels: requests the base-10 decimal kernels cannot serve —
// other bases, non-default scaling, an explicit grisu or exact backend —
// must go to the exact core without so much as an attempted fast call
// (the kernels would produce well-formed garbage for base 16, so the
// guard must fire before, not inside, the kernel).
func TestDirectedDispatchGuards(t *testing.T) {
	guarded := []*Options{
		{Base: 16},
		{Base: 2},
		{Scaling: ScalingIterative},
		{Scaling: ScalingFloatLog},
		{Backend: BackendGrisu},
		{Backend: BackendExact},
	}
	for _, o := range guarded {
		ResetStats()
		prev := SetStatsEnabled(true)
		for _, v := range []float64{0.3, math.Pi, 1e23, 5e-324} {
			if _, err := ShortestBelowDigits(v, o); err != nil {
				t.Fatalf("ShortestBelowDigits(%g, %+v): %v", v, *o, err)
			}
			if _, err := ShortestAboveDigits(v, o); err != nil {
				t.Fatalf("ShortestAboveDigits(%g, %+v): %v", v, *o, err)
			}
		}
		d := Snapshot()
		SetStatsEnabled(prev)
		if d.DirectedRyuHits != 0 || d.DirectedRyuMisses != 0 {
			t.Errorf("options %+v reached the directed kernels: hits=%d misses=%d",
				*o, d.DirectedRyuHits, d.DirectedRyuMisses)
		}
		if d.ExactFree != 8 {
			t.Errorf("options %+v: ExactFree = %d, want 8", *o, d.ExactFree)
		}
	}
	// And the complementary pin: eligible options do attempt the kernel.
	ResetStats()
	prev := SetStatsEnabled(true)
	defer SetStatsEnabled(prev)
	for _, o := range []*Options{nil, {Backend: BackendRyu}, {Backend: BackendAuto}} {
		if _, err := ShortestBelowDigits(0.3, o); err != nil {
			t.Fatal(err)
		}
	}
	if d := Snapshot(); d.DirectedRyuHits != 3 {
		t.Errorf("eligible options: DirectedRyuHits = %d, want 3", d.DirectedRyuHits)
	}
}

// TestShortestBelowAboveGoldens pins the directed printers on values
// whose one-sided forms are known by hand.
func TestShortestBelowAboveGoldens(t *testing.T) {
	cases := []struct {
		v            float64
		below, above string
	}{
		// float64(0.1) is above decimal 0.1: "0.1" itself is the lower
		// bound, the upper needs the full 17 digits.  float64(0.3) mirrors.
		{0.1, "0.1", "0.10000000000000001"},
		{0.3, "0.29999999999999998", "0.3"},
		// Exactly representable decimals are their own bounds.
		{0.5, "0.5", "0.5"},
		{1, "1", "1"},
		{-2.5, "-2.5", "-2.5"},
		// float64(1e23) sits exactly on the decimal 1e23 midpoint with its
		// upper neighbor, so "1e23" is in the closed upper gap but NOT the
		// half-open one: a nearest-away reader would send it to the
		// neighbor.  The directed printer must refuse the tie string.
		{1e23, "9.999999999999999e22", "9.9999999999999992e22"},
		// Format boundaries.
		{math.MaxFloat64, "1.7976931348623157e308", "1.7976931348623158e308"},
		{math.SmallestNonzeroFloat64, "4e-324", "5e-324"},
		// Specials are their own exact bounds.
		{0, "0", "0"},
		{math.Copysign(0, -1), "-0", "-0"},
		{math.Inf(1), "+Inf", "+Inf"},
		{math.Inf(-1), "-Inf", "-Inf"},
	}
	for _, c := range cases {
		if got := ShortestBelow(c.v); got != c.below {
			t.Errorf("ShortestBelow(%g) = %q, want %q", c.v, got, c.below)
		}
		if got := ShortestAbove(c.v); got != c.above {
			t.Errorf("ShortestAbove(%g) = %q, want %q", c.v, got, c.above)
		}
	}
	if got := ShortestBelow(math.NaN()); got != "NaN" {
		t.Errorf("ShortestBelow(NaN) = %q", got)
	}
}

// TestDirectedReaderOption pins the Options.Reader plumbing: a directed
// reader assumption routes the shortest conversion through the matching
// one-sided core (TowardNegInf readers need the upper-gap string to
// recover v; TowardPosInf readers the lower-gap string), on both the
// digits and append entry points.
func TestDirectedReaderOption(t *testing.T) {
	negOpts := &Options{Reader: ReaderTowardNegInf}
	posOpts := &Options{Reader: ReaderTowardPosInf}
	if got := string(AppendShortestWith(nil, 0.3, negOpts)); got != "0.3" {
		t.Errorf("AppendShortestWith(0.3, TowardNegInf) = %q, want %q", got, "0.3")
	}
	if got := string(AppendShortestWith(nil, 0.3, posOpts)); got != "0.29999999999999998" {
		t.Errorf("AppendShortestWith(0.3, TowardPosInf) = %q, want %q", got, "0.29999999999999998")
	}
	d, err := ShortestDigits(0.1, negOpts)
	if err != nil || d.String() != "0.10000000000000001" {
		t.Errorf("ShortestDigits(0.1, TowardNegInf) = %q, %v", d.String(), err)
	}
}

// TestDirectedRoundTrip checks the identification property across a
// corpus slice: the Below string parses back to exactly v under every
// nearest mode AND under a toward-+∞ reader (it lies strictly inside the
// lower half-gap, above the previous float); symmetrically for Above.
// Directed re-reads on the bound's own side may step one ulp outward —
// never inward, and never more than one.
func TestDirectedRoundTrip(t *testing.T) {
	n := schryer.CorpusSize
	if testing.Short() {
		n = 4000
	}
	nearest := []*Options{
		nil,
		{Reader: ReaderNearestAway},
		{Reader: ReaderNearestTowardZero},
	}
	up := &Options{Reader: ReaderTowardPosInf}
	down := &Options{Reader: ReaderTowardNegInf}
	for _, v := range schryer.CorpusN(n) {
		below, above := ShortestBelow(v), ShortestAbove(v)
		if f, err := strconv.ParseFloat(below, 64); err != nil || f != v {
			t.Fatalf("strconv(Below(%x) = %q) = %v, %v", v, below, f, err)
		}
		if f, err := strconv.ParseFloat(above, 64); err != nil || f != v {
			t.Fatalf("strconv(Above(%x) = %q) = %v, %v", v, above, f, err)
		}
		for _, o := range nearest {
			if f, err := Parse(below, o); err != nil || f != v {
				t.Fatalf("Parse(Below(%x) = %q, %v) = %v, %v", v, below, o, f, err)
			}
			if f, err := Parse(above, o); err != nil || f != v {
				t.Fatalf("Parse(Above(%x) = %q, %v) = %v, %v", v, above, o, f, err)
			}
		}
		// The inward-pointing directed re-reads recover v exactly.
		if f, err := Parse(below, up); err != nil || f != v {
			t.Fatalf("Parse(Below(%x), up) = %v, %v; want exact", v, f, err)
		}
		if f, err := Parse(above, down); err != nil || f != v {
			t.Fatalf("Parse(Above(%x), down) = %v, %v; want exact", v, f, err)
		}
	}
}

// TestDirectedNegationMirror checks Below(-v) == "-" + Above(v): the
// one-sided bounds commute with negation.
func TestDirectedNegationMirror(t *testing.T) {
	n := 20000
	if testing.Short() {
		n = 2000
	}
	for _, v := range schryer.CorpusN(n) {
		if got, want := ShortestBelow(-v), "-"+ShortestAbove(v); got != want {
			t.Fatalf("Below(-%x) = %q, want %q", v, got, want)
		}
		if got, want := ShortestAbove(-v), "-"+ShortestBelow(v); got != want {
			t.Fatalf("Above(-%x) = %q, want %q", v, got, want)
		}
	}
}

// TestDirectedLengthBounds: a one-sided bound is never shorter than the
// unconstrained shortest form (its half-gap is a subset of the full
// rounding range) and never needs more than 18 significant digits (the
// half-gap is half the width of the full range, for which 17 digits
// always suffice — the same density argument gives 18 for half the
// width).  It CAN be more than one digit longer than the shortest form:
// the full range may contain a lucky round number the half-gap misses.
func TestDirectedLengthBounds(t *testing.T) {
	n := 20000
	if testing.Short() {
		n = 2000
	}
	for _, v := range schryer.CorpusN(n) {
		s, err := ShortestDigits(v, nil)
		if err != nil {
			t.Fatal(err)
		}
		below, err := ShortestBelowDigits(v, nil)
		if err != nil {
			t.Fatal(err)
		}
		above, err := ShortestAboveDigits(v, nil)
		if err != nil {
			t.Fatal(err)
		}
		for side, d := range map[string]Digits{"below": below, "above": above} {
			if d.NSig < s.NSig || d.NSig > 18 {
				t.Fatalf("%x %s bound has %d digits, shortest has %d", v, side, d.NSig, s.NSig)
			}
		}
	}
}
