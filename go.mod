module floatprint

go 1.22
