package floatprint

import (
	"errors"
	"fmt"

	"floatprint/internal/fastparse"
	"floatprint/internal/stats"
)

// BatchSep reports whether c separates tokens in a batch parse stream.
// The batch engine treats newlines (NDJSON), commas (CSV rows of
// numbers), carriage returns (CRLF input), spaces, and tabs uniformly:
// any run of separators delimits tokens, and empty fields are skipped
// rather than errors, so `1,2\r\n3 4\n` parses as four values.
func BatchSep(c byte) bool { return fastparse.IsSep(c) }

// BatchParseError reports the first malformed token in a batch parse:
// Record is its zero-based index among the tokens of the scanned range,
// Offset is the byte offset of its first byte within that range, and
// Err is the per-value parse error for the token (so the message is
// identical to what Parse would report for the same text).
type BatchParseError struct {
	Record int
	Offset int
	Err    error
}

func (e *BatchParseError) Error() string {
	return fmt.Sprintf("batch parse: record %d (byte offset %d): %v", e.Record, e.Offset, e.Err)
}

func (e *BatchParseError) Unwrap() error { return e.Err }

// ParseBatch scans one contiguous byte range of separator-delimited
// base-10 numbers (see BatchSep) and returns the parsed float64 values
// in input order.  Each token goes through the block-at-a-time fast
// scanner — digit runs validated eight bytes per SWAR test and folded
// into the significand eight digits per multiply, then certified by the
// Eisel–Lemire kernel — and any token the block scanner declines falls
// back to the per-value parser, so every value is bit-identical to
// Parse(token) under default options.  Out-of-range tokens follow
// Parse's IEEE semantics: the value is ±Inf and scanning continues.
//
// On a malformed token, ParseBatch returns the values parsed before it
// along with a *BatchParseError locating the failure; the error text
// for the token itself matches Parse's.
func ParseBatch(data []byte) ([]float64, error) {
	return AppendParseBatch(nil, data)
}

// AppendParseBatch is ParseBatch appending to dst (the zero-alloc form
// the sharded batch.Pool engine calls with reused scratch slices).  On
// error it returns the values successfully parsed before the failure.
func AppendParseBatch(dst []float64, data []byte) ([]float64, error) {
	stats.BatchParseBlocks.Inc()
	records := 0
	fallbacks := uint64(0)
	var err error
	i := 0
	for {
		for i < len(data) && fastparse.IsSep(data[i]) {
			i++
		}
		if i >= len(data) {
			break
		}
		if f, n, ok := fastparse.ParseToken64(data[i:]); ok {
			// The fused scanner consumed the token through its separator
			// boundary and certified the value — the whole hot path is one
			// pass over the bytes.
			dst = append(dst, f)
			records++
			i += n
			continue
		}
		// The block scanner declined: specials, '#' marks, '@' exponents,
		// unresolved ties, out-of-range magnitudes, or genuine garbage.
		// Delimit the token the general way and hand it to the per-value
		// path, the oracle for all of them.
		start := i
		for i < len(data) && !fastparse.IsSep(data[i]) {
			i++
		}
		fallbacks++
		f, perr := parse64(string(data[start:i]), defaultOptions(), nil)
		if perr != nil && !errors.Is(perr, ErrRange) {
			err = &BatchParseError{Record: records, Offset: start, Err: perr}
			break
		}
		dst = append(dst, f) // ±Inf under IEEE semantics when perr is ErrRange
		records++
	}
	if stats.Enabled() {
		stats.BatchParseValues.Add(uint64(records))
		stats.BatchParseBytes.Add(uint64(i))
		stats.BatchParseFallbacks.Add(fallbacks)
	}
	return dst, err
}
