package floatprint

import (
	"fmt"
	"math"

	"floatprint/internal/core"
	"floatprint/internal/fastpath"
	"floatprint/internal/fpformat"
	"floatprint/internal/grisu"
	"floatprint/internal/stats"
)

// Class labels what a Digits value represents.
type Class int

const (
	// Finite is an ordinary nonzero number.
	Finite Class = iota
	// IsZero is ±0.
	IsZero
	// IsInf is ±infinity.
	IsInf
	// IsNaN is not-a-number.
	IsNaN
)

// Digits is a converted number: ±0.d₁d₂…dₙ × BaseᴷK when Class is Finite.
// Digits[i] holds digit *values* (0..Base-1), not ASCII.  Digits[NSig:]
// are insignificant: the paper's '#' marks, replaceable by any digits
// without changing the value read back.  Free-format results always have
// NSig == len(Digits).
//
// A Digits value is immutable by convention and safe to share between
// goroutines; all conversion entry points in this package are themselves
// goroutine-safe.
type Digits struct {
	Class  Class
	Neg    bool
	Digits []byte
	K      int
	NSig   int
	Base   int
}

// ShortestDigits converts v to the shortest digit string that reads back
// to v under the options' reader rounding assumption (free format).
func ShortestDigits(v float64, opts *Options) (Digits, error) {
	o, err := opts.norm()
	if err != nil {
		return Digits{}, err
	}
	return shortestValue(fpformat.DecodeFloat64(v), o)
}

// ShortestDigits32 is ShortestDigits for float32 values; the shorter
// mantissa yields shorter output (e.g. float32 0.1 prints as "0.1" with
// far fewer digits than its float64 widening would need).
func ShortestDigits32(v float32, opts *Options) (Digits, error) {
	o, err := opts.norm()
	if err != nil {
		return Digits{}, err
	}
	val := fpformat.DecodeFloat32(v)
	// Specials are classified before any fast path runs, exactly as in
	// shortestValue: the grisu guards are an internal defense, not the
	// API's ±0/Inf/NaN semantics.
	if d, done := specialDigits(val, o.Base); done {
		return d, nil
	}
	// Ryū here is float64-only, so the float32 fast path is Grisu3 under
	// BackendAuto or BackendGrisu; an explicit BackendRyu or BackendExact
	// request routes to the exact core (decline-don't-error: a backend
	// that cannot serve the format falls through, it never approximates).
	if o.Base == 10 && o.Scaling == ScalingEstimate &&
		(o.Backend == BackendAuto || o.Backend == BackendGrisu) {
		if digits, k, ok := grisu.Shortest32(float32(math.Abs(float64(v)))); ok {
			stats.GrisuHits.Inc()
			if stats.Enabled() {
				stats.Traces.RecordFast(TraceBackendGrisu, len(digits))
			}
			return Digits{
				Class: Finite, Neg: math.Signbit(float64(v)),
				Digits: digits, K: k, NSig: len(digits), Base: 10,
			}, nil
		}
	}
	return shortestValue(val, o)
}

// shortestValue runs the free-format conversion under already-normalized
// options.  When telemetry collection is enabled, a stack-allocated trace
// rides along and is folded into the global aggregate; otherwise the
// traced twin runs with a nil record, which is the zero-cost path.
func shortestValue(val fpformat.Value, o Options) (Digits, error) {
	if !stats.Enabled() {
		return shortestValueTraced(val, o, nil)
	}
	var tr Trace
	d, err := shortestValueTraced(val, o, &tr)
	if err == nil {
		recordAggregate(&tr)
	}
	return d, err
}

// shortestValueTraced is shortestValue filling tr (nil allowed) with the
// conversion's execution record.
func shortestValueTraced(val fpformat.Value, o Options, tr *Trace) (Digits, error) {
	if d, done := specialDigits(val, o.Base); done {
		traceSpecial(tr, o.Base)
		return d, nil
	}
	if o.Reader.directed() {
		// A toward-negative reader truncates every inexact value, so only
		// a string in [v, v+m⁺) reads back as v: print the upper one-sided
		// bound (and the mirror for toward-positive).  directedValue runs
		// the one-sided Ryū kernels where they apply and the exact core's
		// one-sided loops otherwise.
		d, fast, err := directedValue(val, o, o.Reader == ReaderTowardNegInf)
		if err == nil && tr != nil {
			tr.Reset()
			tr.Backend = TraceBackendExactFree
			if fast {
				tr.Backend = TraceBackendRyu
			}
			tr.Base = o.Base
			tr.Mode = o.Reader.String()
			tr.K = d.K
			tr.Digits = len(d.Digits)
			tr.NSig = d.NSig
		}
		return d, err
	}
	// Fast-path dispatch through the backend registry (see backend.go):
	// Ryū for base-10 nearest-even binary64 requests, certified Grisu3
	// for the other reader modes (its certificate is valid under all
	// four), honoring an explicit Options.Backend selection.  Both follow
	// the decline-don't-error contract — the rare declines (Ryū's
	// exact-halfway ties, ~0.5% Grisu3 certification failures) take the
	// exact path below, so the output never depends on the backend.
	fastMiss := false
	if fb := shortestFastpath(o, val); fb != TraceBackendNone {
		if v, verr := abs(val).Float64(); verr == nil {
			var buf [fastBufLen]byte
			if n, k, ok := shortestFastAttempt(fb, buf[:], v); ok {
				digits := make([]byte, n)
				for i := 0; i < n; i++ {
					digits[i] = buf[i] - '0' // ASCII back to digit values
				}
				if tr != nil {
					tr.Reset()
					tr.Backend = fb
					tr.Base = 10
					tr.Mode = o.Reader.String()
					tr.Iterations = n
					tr.K = k
					tr.Digits = n
					tr.NSig = n
				}
				return Digits{
					Class: Finite, Neg: val.Neg,
					Digits: digits, K: k, NSig: n, Base: 10,
				}, nil
			}
			fastMiss = true
		}
	}
	res, err := core.FreeFormatTraced(abs(val), o.Base, o.Scaling.core(), o.Reader.core(), tr)
	if err != nil {
		return Digits{}, err
	}
	if tr != nil {
		// Set after the core call: the traced core entry resets the record.
		tr.FastPathMiss = fastMiss
	}
	stats.ExactFree.Inc()
	return fromResult(res, val.Neg, o.Base), nil
}

// FixedDigits converts v to exactly n significant digit positions,
// correctly rounded, with insignificant trailing positions counted out of
// NSig (fixed format, relative position).  n must be positive.
func FixedDigits(v float64, n int, opts *Options) (Digits, error) {
	o, err := opts.norm()
	if err != nil {
		return Digits{}, err
	}
	return fixedValue(fpformat.DecodeFloat64(v), n, o)
}

// FixedDigits32 is FixedDigits for float32 values.
func FixedDigits32(v float32, n int, opts *Options) (Digits, error) {
	o, err := opts.norm()
	if err != nil {
		return Digits{}, err
	}
	return fixedValue(fpformat.DecodeFloat32(v), n, o)
}

// fixedValue runs the fixed-format conversion under already-normalized
// options, with the same enabled-gated aggregate tracing as shortestValue.
func fixedValue(val fpformat.Value, n int, o Options) (Digits, error) {
	if !stats.Enabled() {
		return fixedValueTraced(val, n, o, nil)
	}
	var tr Trace
	d, err := fixedValueTraced(val, n, o, &tr)
	if err == nil {
		recordAggregate(&tr)
	}
	return d, err
}

// fixedValueTraced runs the fixed-format conversion under
// already-normalized options, filling tr (nil allowed).  The digit count
// is validated here, at the public boundary, for every value class —
// including ±0, whose zero-padding path would otherwise silently accept a
// nonsensical count.
func fixedValueTraced(val fpformat.Value, n int, o Options, tr *Trace) (Digits, error) {
	if n <= 0 {
		return Digits{}, fmt.Errorf("floatprint: digit count %d must be positive", n)
	}
	if d, done := specialDigits(val, o.Base); done {
		traceSpecial(tr, o.Base)
		if d.Class == IsZero {
			d.Digits = make([]byte, n)
			d.K = 1
			d.NSig = n
		}
		return d, nil
	}
	// Gay's fast-path heuristic (paper §5): when the digit count is small
	// and extended-float arithmetic can *certify* its result, skip the
	// exact algorithm.  The certificate guarantees identical output; the
	// exact path below handles everything the fast path declines.
	fastMiss := false
	if o.Base == 10 && val.Fmt == fpformat.Binary64 {
		v, verr := abs(val).Float64()
		if verr == nil {
			if digits, k, ok := fastpath.TryFixed(v, n); ok {
				stats.GayHits.Inc()
				if tr != nil {
					tr.Reset()
					tr.Backend = TraceBackendGay
					tr.Base = 10
					tr.Mode = o.Reader.String()
					tr.RelativeN = n
					tr.Iterations = len(digits)
					tr.K = k
					tr.Digits = len(digits)
					tr.NSig = n
				}
				return Digits{
					Class: Finite, Neg: val.Neg,
					Digits: digits, K: k, NSig: n, Base: 10,
				}, nil
			}
			stats.GayMisses.Inc()
			fastMiss = true
		}
	}
	res, err := core.FixedFormatRelativeTraced(abs(val), o.Base, o.Reader.core(), n, tr)
	if err != nil {
		return Digits{}, err
	}
	if tr != nil {
		tr.FastPathMiss = fastMiss
	}
	stats.ExactFixed.Inc()
	return fromResult(res, val.Neg, o.Base), nil
}

// FixedPositionDigits converts v rounded at the absolute digit position
// pos: the last digit has weight Base^pos, so pos = -2 stops at the
// hundredths digit and pos = 3 at the thousands digit.
func FixedPositionDigits(v float64, pos int, opts *Options) (Digits, error) {
	o, err := opts.norm()
	if err != nil {
		return Digits{}, err
	}
	return fixedPositionValue(fpformat.DecodeFloat64(v), pos, o)
}

func fixedPositionValue(val fpformat.Value, pos int, o Options) (Digits, error) {
	if !stats.Enabled() {
		return fixedPositionValueTraced(val, pos, o, nil)
	}
	var tr Trace
	d, err := fixedPositionValueTraced(val, pos, o, &tr)
	if err == nil {
		recordAggregate(&tr)
	}
	return d, err
}

func fixedPositionValueTraced(val fpformat.Value, pos int, o Options, tr *Trace) (Digits, error) {
	if d, done := specialDigits(val, o.Base); done {
		traceSpecial(tr, o.Base)
		if d.Class == IsZero {
			d.Digits = []byte{0}
			d.K = pos + 1
			d.NSig = 1
		}
		return d, nil
	}
	res, err := core.FixedFormatTraced(abs(val), o.Base, o.Reader.core(), pos, tr)
	if err != nil {
		return Digits{}, err
	}
	stats.ExactFixed.Inc()
	return fromResult(res, val.Neg, o.Base), nil
}

// abs strips the sign: the core algorithms operate on positive values.
func abs(v fpformat.Value) fpformat.Value {
	v.Neg = false
	return v
}

func specialDigits(v fpformat.Value, base int) (Digits, bool) {
	switch v.Class {
	case fpformat.Zero:
		return Digits{Class: IsZero, Neg: v.Neg, Base: base}, true
	case fpformat.Inf:
		return Digits{Class: IsInf, Neg: v.Neg, Base: base}, true
	case fpformat.NaN:
		return Digits{Class: IsNaN, Base: base}, true
	}
	return Digits{}, false
}

func fromResult(res core.Result, neg bool, base int) Digits {
	class := Finite
	if allZero(res.Digits) {
		// A coarse fixed position can round a nonzero value to zero
		// (FixedPosition(5, 2) is 0); classify so rendering says "0"
		// rather than position-padded zeros.
		class = IsZero
	}
	return Digits{
		Class:  class,
		Neg:    neg,
		Digits: res.Digits,
		K:      res.K,
		NSig:   res.NSig,
		Base:   base,
	}
}

func allZero(digits []byte) bool {
	for _, d := range digits {
		if d != 0 {
			return false
		}
	}
	return true
}

// Shortest returns the shortest base-10 string that strconv.ParseFloat
// (or any IEEE nearest-even reader) parses back to exactly v.
func Shortest(v float64) string {
	d, err := ShortestDigits(v, nil)
	if err != nil {
		panic("floatprint: " + err.Error()) // unreachable with default options
	}
	return d.String()
}

// Shortest32 is Shortest for float32.
func Shortest32(v float32) string {
	d, err := ShortestDigits32(v, nil)
	if err != nil {
		panic("floatprint: " + err.Error())
	}
	return d.String()
}

// AppendShortest appends the Shortest rendering of v to dst and returns
// the extended slice.  On the fast path (Ryū, serving all but a handful
// of exact-halfway ties) it performs no heap allocation beyond growing
// dst: the digits are generated into a stack buffer and rendered directly
// into dst, so a caller that reuses dst serializes floats with zero
// allocations per call.  Use AppendShortestWith to select a backend or
// rendering options explicitly.
func AppendShortest(dst []byte, v float64) []byte {
	return appendShortestOpts(dst, v, defaultOptions())
}

// Fixed returns v correctly rounded to n significant digits in base 10,
// with '#' marks past the point of significance.  It panics if n is not
// positive; use FixedDigits to handle the error instead.
func Fixed(v float64, n int) string {
	d, err := FixedDigits(v, n, nil)
	if err != nil {
		panic("floatprint: " + err.Error())
	}
	return d.String()
}

// AppendFixed appends the Fixed rendering of v at n significant digits to
// dst and returns the extended slice.  Like Fixed it panics when n is not
// positive.
func AppendFixed(dst []byte, v float64, n int) []byte {
	d, err := FixedDigits(v, n, nil)
	if err != nil {
		panic("floatprint: " + err.Error())
	}
	return d.appendRender(dst, defaultOptions())
}

// FixedPosition returns v correctly rounded at absolute digit position pos
// in base 10 (pos = -2 rounds at hundredths), with '#' marks past the
// point of significance.
func FixedPosition(v float64, pos int) string {
	d, err := FixedPositionDigits(v, pos, nil)
	if err != nil {
		panic("floatprint: " + err.Error())
	}
	return d.String()
}

// Format renders v under the given options (free format).
func Format(v float64, opts *Options) (string, error) {
	o, err := opts.norm()
	if err != nil {
		return "", err
	}
	d, err := shortestValue(fpformat.DecodeFloat64(v), o)
	if err != nil {
		return "", err
	}
	return d.render(o), nil
}

// FormatFixed renders v to n significant digits under the given options.
func FormatFixed(v float64, n int, opts *Options) (string, error) {
	o, err := opts.norm()
	if err != nil {
		return "", err
	}
	d, err := fixedValue(fpformat.DecodeFloat64(v), n, o)
	if err != nil {
		return "", err
	}
	return d.render(o), nil
}

// FormatFixedPosition renders v rounded at absolute position pos under the
// given options.
func FormatFixedPosition(v float64, pos int, opts *Options) (string, error) {
	o, err := opts.norm()
	if err != nil {
		return "", err
	}
	d, err := fixedPositionValue(fpformat.DecodeFloat64(v), pos, o)
	if err != nil {
		return "", err
	}
	return d.render(o), nil
}

// Value reconstructs the float64 nearest to the digits (a convenience for
// verifying round-trips; equivalent to Parse of the rendering).
func (d Digits) Value() (float64, error) {
	switch d.Class {
	case IsZero:
		if d.Neg {
			return math.Copysign(0, -1), nil
		}
		return 0, nil
	case IsInf:
		if d.Neg {
			return math.Inf(-1), nil
		}
		return math.Inf(1), nil
	case IsNaN:
		return math.NaN(), nil
	}
	return parseDigits(d)
}
