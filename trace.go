package floatprint

import (
	"io"

	"floatprint/internal/fpformat"
	"floatprint/internal/stats"
	"floatprint/internal/trace"
)

// Trace is a per-conversion execution record: which backend produced the
// digits (certified Grisu3, Gay's fixed fast path, or the exact
// big-integer algorithm), the Table-1 case, the §3.2 scale estimate
// versus the final scale (whether the penalty-free fixup fired), the
// generate-loop iteration count, and the final rounding decision.
//
// Pass a Trace to the *Traced entry points to have it filled (the record
// is reset first, so one value can be reused across calls).  Tracing
// never perturbs the result: a traced conversion is byte-identical to its
// untraced twin, and the untraced path's only cost is a nil check at each
// instrumentation point.
type Trace = trace.Conversion

// Backend constants for Trace.Backend, re-exported for callers matching
// on the deciding algorithm.
const (
	TraceBackendNone       = trace.BackendNone
	TraceBackendGrisu      = trace.BackendGrisu
	TraceBackendGay        = trace.BackendGay
	TraceBackendExactFree  = trace.BackendExactFree
	TraceBackendExactFixed = trace.BackendExactFixed
	TraceBackendFastParse  = trace.BackendFastParse
	TraceBackendExactParse = trace.BackendExactParse
	TraceBackendRyu        = trace.BackendRyu
)

// ShortestDigitsTraced is ShortestDigits recording the conversion's
// execution trace into tr.  A nil tr is allowed and makes it exactly
// ShortestDigits.
func ShortestDigitsTraced(v float64, opts *Options, tr *Trace) (Digits, error) {
	o, err := opts.norm()
	if err != nil {
		return Digits{}, err
	}
	return shortestValueTraced(fpformat.DecodeFloat64(v), o, tr)
}

// FixedDigitsTraced is FixedDigits recording the conversion's execution
// trace into tr (nil allowed).
func FixedDigitsTraced(v float64, n int, opts *Options, tr *Trace) (Digits, error) {
	o, err := opts.norm()
	if err != nil {
		return Digits{}, err
	}
	return fixedValueTraced(fpformat.DecodeFloat64(v), n, o, tr)
}

// FixedPositionDigitsTraced is FixedPositionDigits recording the
// conversion's execution trace into tr (nil allowed).
func FixedPositionDigitsTraced(v float64, pos int, opts *Options, tr *Trace) (Digits, error) {
	o, err := opts.norm()
	if err != nil {
		return Digits{}, err
	}
	return fixedPositionValueTraced(fpformat.DecodeFloat64(v), pos, o, tr)
}

// WriteTraceMetrics writes the trace aggregate's labeled backend mix and
// the digit-length histogram in Prometheus text exposition format — the
// parts of the conversion trace telemetry that do not fit the flat Stats
// snapshot.  It complements Stats.WritePrometheus on the same scrape; the
// serving layer's /metrics calls both.  The aggregate only advances while
// collection is enabled (SetStatsEnabled).
func WriteTraceMetrics(w io.Writer) error {
	return stats.Traces.WritePrometheus(w)
}

// traceSpecial fills tr for a value that never reaches digit generation
// (±0, Inf, NaN): backend "none", everything else zero.
func traceSpecial(tr *Trace, base int) {
	if tr != nil {
		tr.Reset()
		tr.Base = base
	}
}

// recordAggregate folds a finished conversion's trace into the global
// aggregate.  Callers only build traces for aggregation when collection
// is enabled, so this is unconditional.
func recordAggregate(tr *Trace) { stats.Traces.Record(tr) }
