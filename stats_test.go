package floatprint

import (
	"strings"
	"testing"
)

func TestStatsDisabledByDefault(t *testing.T) {
	ResetStats()
	Shortest(0.3)
	if s := Snapshot(); s != (Stats{}) {
		t.Fatalf("counters advanced while disabled: %+v", s)
	}
}

func TestStatsPathMix(t *testing.T) {
	ResetStats()
	prev := SetStatsEnabled(true)
	defer SetStatsEnabled(prev)

	before := Snapshot()
	// 0.3 under the default (auto) backend serves on Ryū; an explicit
	// grisu backend certifies on Grisu3; FixedDigits(0.3, 6) certifies on
	// Gay's fast path; a base-16 conversion can only take the exact path.
	Shortest(0.3)
	if _, err := Format(0.3, &Options{Backend: BackendGrisu}); err != nil {
		t.Fatal(err)
	}
	if _, err := FixedDigits(0.3, 6, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Format(0.3, &Options{Base: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := FixedPositionDigits(123.456, -2, nil); err != nil {
		t.Fatal(err)
	}
	d := Snapshot().Sub(before)
	if d.RyuHits != 1 {
		t.Errorf("RyuHits = %d, want 1", d.RyuHits)
	}
	if d.GrisuHits != 1 {
		t.Errorf("GrisuHits = %d, want 1", d.GrisuHits)
	}
	if d.GayHits != 1 {
		t.Errorf("GayHits = %d, want 1", d.GayHits)
	}
	if d.ExactFree != 1 {
		t.Errorf("ExactFree = %d, want 1 (base-16 format)", d.ExactFree)
	}
	if d.ExactFixed != 1 {
		t.Errorf("ExactFixed = %d, want 1 (fixed position)", d.ExactFixed)
	}

	out := d.String()
	for _, want := range []string{"grisu hit rate", "ryu hit rate", "gay fast-path hits", "exact free-format"} {
		if !strings.Contains(out, want) {
			t.Errorf("Stats.String() missing %q:\n%s", want, out)
		}
	}
}

func TestStatsFallbackCounting(t *testing.T) {
	ResetStats()
	prev := SetStatsEnabled(true)
	defer SetStatsEnabled(prev)

	// Find a grisu-uncertified value (~0.5% of the corpus) and convert it
	// through the explicit grisu backend: one miss, one exact conversion,
	// no double-counting from the fallback re-entering shortestValue.
	floats, _ := benchCorpus()
	grisuOpts := &Options{Backend: BackendGrisu}
	var hard float64
	for _, f := range floats {
		ResetStats()
		AppendShortestWith(nil, f, grisuOpts)
		if s := Snapshot(); s.GrisuMisses == 1 {
			hard = f
			break
		}
	}
	if hard == 0 {
		t.Skip("no uncertified value in the bench corpus prefix")
	}
	ResetStats()
	AppendShortestWith(nil, hard, grisuOpts)
	d := Snapshot()
	if d.GrisuMisses != 1 || d.ExactFree != 1 || d.GrisuHits != 0 {
		t.Fatalf("fallback for %x counted %+v, want 1 miss + 1 exact", hard, d)
	}

	// The same single-count contract for the default (Ryū) backend, on a
	// value whose shortest form is an exact halfway tie (a genuine Ryū
	// decline, found by scanning the corpus).
	tie := findRyuDecline(t)
	ResetStats()
	AppendShortest(nil, tie)
	d = Snapshot()
	if d.RyuMisses != 1 || d.ExactFree != 1 || d.RyuHits != 0 {
		t.Fatalf("ryu fallback for %x counted %+v, want 1 miss + 1 exact", tie, d)
	}
}

// TestStatsWritePrometheus pins the exposition format byte for byte:
// the /metrics endpoint of the serving layer and any scraping config
// built against it depend on these exact metric names and line shapes.
func TestStatsWritePrometheus(t *testing.T) {
	s := Stats{
		GrisuHits: 995, GrisuMisses: 5,
		RyuHits: 900, RyuMisses: 3,
		GayHits: 80, GayMisses: 20,
		ExactFree: 25, ExactFixed: 30,
		BatchValues: 1000, BatchBytes: 17500,
		ParseFastHits: 970, ParseFastMisses: 30, ParseExact: 45,
		BatchParseBlocks: 12, BatchParseValues: 5000,
		BatchParseBytes: 90000, BatchParseFallbacks: 7,
		DirectedRyuHits: 40, DirectedRyuMisses: 2,
		DirectedFastHits: 36, DirectedFastMisses: 4,
		IntervalPrints: 21, IntervalParses: 19,
		TraceConversions: 1050, TraceEstimates: 55, TraceFixups: 17,
		TraceIterations: 16000, TraceDigits: 15800, TraceRoundUps: 500,
	}
	var sb strings.Builder
	if err := s.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP floatprint_grisu_hits_total Shortest conversions certified by the Grisu3 fast path.
# TYPE floatprint_grisu_hits_total counter
floatprint_grisu_hits_total 995
# HELP floatprint_grisu_misses_total Shortest conversions where Grisu3 failed certification.
# TYPE floatprint_grisu_misses_total counter
floatprint_grisu_misses_total 5
# HELP floatprint_ryu_hits_total Shortest conversions served by the Ryu fast path.
# TYPE floatprint_ryu_hits_total counter
floatprint_ryu_hits_total 900
# HELP floatprint_ryu_misses_total Shortest conversions where Ryu declined (exact-halfway ties).
# TYPE floatprint_ryu_misses_total counter
floatprint_ryu_misses_total 3
# HELP floatprint_gay_hits_total Fixed conversions certified by Gay's fast path.
# TYPE floatprint_gay_hits_total counter
floatprint_gay_hits_total 80
# HELP floatprint_gay_misses_total Fixed conversions where Gay's fast path declined.
# TYPE floatprint_gay_misses_total counter
floatprint_gay_misses_total 20
# HELP floatprint_exact_free_total Exact free-format (shortest) conversions.
# TYPE floatprint_exact_free_total counter
floatprint_exact_free_total 25
# HELP floatprint_exact_fixed_total Exact fixed-format conversions.
# TYPE floatprint_exact_fixed_total counter
floatprint_exact_fixed_total 30
# HELP floatprint_batch_values_total Values converted by the batch engine.
# TYPE floatprint_batch_values_total counter
floatprint_batch_values_total 1000
# HELP floatprint_batch_bytes_total Bytes produced by the batch engine.
# TYPE floatprint_batch_bytes_total counter
floatprint_batch_bytes_total 17500
# HELP floatprint_parse_fast_hits_total Parses certified by the Eisel-Lemire fast path.
# TYPE floatprint_parse_fast_hits_total counter
floatprint_parse_fast_hits_total 970
# HELP floatprint_parse_fast_misses_total Parses where the fast path declined to the exact reader.
# TYPE floatprint_parse_fast_misses_total counter
floatprint_parse_fast_misses_total 30
# HELP floatprint_parse_exact_total Parses decided by the exact big-integer reader.
# TYPE floatprint_parse_exact_total counter
floatprint_parse_exact_total 45
# HELP floatprint_batch_parse_blocks_total Contiguous byte ranges scanned by the batch parse engine.
# TYPE floatprint_batch_parse_blocks_total counter
floatprint_batch_parse_blocks_total 12
# HELP floatprint_batch_parse_values_total Values parsed by the batch parse engine.
# TYPE floatprint_batch_parse_values_total counter
floatprint_batch_parse_values_total 5000
# HELP floatprint_batch_parse_bytes_total Input bytes consumed by the batch parse engine.
# TYPE floatprint_batch_parse_bytes_total counter
floatprint_batch_parse_bytes_total 90000
# HELP floatprint_batch_parse_fallbacks_total Batch-parse tokens declined to the per-value parser.
# TYPE floatprint_batch_parse_fallbacks_total counter
floatprint_batch_parse_fallbacks_total 7
# HELP floatprint_directed_ryu_hits_total Directed shortest conversions served by the one-sided Ryu kernels.
# TYPE floatprint_directed_ryu_hits_total counter
floatprint_directed_ryu_hits_total 40
# HELP floatprint_directed_ryu_misses_total Directed shortest conversions where a one-sided kernel declined.
# TYPE floatprint_directed_ryu_misses_total counter
floatprint_directed_ryu_misses_total 2
# HELP floatprint_directed_fast_hits_total Directed parses certified by the directed Eisel-Lemire fast path.
# TYPE floatprint_directed_fast_hits_total counter
floatprint_directed_fast_hits_total 36
# HELP floatprint_directed_fast_misses_total Directed parses where the fast path declined to the exact reader.
# TYPE floatprint_directed_fast_misses_total counter
floatprint_directed_fast_misses_total 4
# HELP floatprint_interval_prints_total Intervals formatted by the interval package.
# TYPE floatprint_interval_prints_total counter
floatprint_interval_prints_total 21
# HELP floatprint_interval_parses_total Intervals read by the interval package.
# TYPE floatprint_interval_parses_total counter
floatprint_interval_parses_total 19
# HELP floatprint_trace_conversions_total Conversions folded into the trace aggregate.
# TYPE floatprint_trace_conversions_total counter
floatprint_trace_conversions_total 1050
# HELP floatprint_trace_estimates_total Exact conversions that ran the scale estimator.
# TYPE floatprint_trace_estimates_total counter
floatprint_trace_estimates_total 55
# HELP floatprint_trace_fixups_total Scale estimates one low, corrected by the fixup loop.
# TYPE floatprint_trace_fixups_total counter
floatprint_trace_fixups_total 17
# HELP floatprint_trace_iterations_total Summed digit-generation loop iterations.
# TYPE floatprint_trace_iterations_total counter
floatprint_trace_iterations_total 16000
# HELP floatprint_trace_digits_total Summed significant output digits.
# TYPE floatprint_trace_digits_total counter
floatprint_trace_digits_total 15800
# HELP floatprint_trace_roundups_total Conversions whose last digit rounded up.
# TYPE floatprint_trace_roundups_total counter
floatprint_trace_roundups_total 500
`
	if sb.String() != want {
		t.Fatalf("WritePrometheus output:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// BenchmarkAppendShortestStatsEnabled quantifies the telemetry tax:
// compare with BenchmarkAppendShortest to see the cost of one atomic
// increment per conversion when collection is on (it is off by
// default, where the hook is only a branch on an atomic bool).
func BenchmarkAppendShortestStatsEnabled(b *testing.B) {
	floats, _ := benchCorpus()
	prev := SetStatsEnabled(true)
	defer SetStatsEnabled(prev)
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendShortest(buf[:0], floats[i%len(floats)])
	}
}
