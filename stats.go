package floatprint

import (
	"fmt"
	"io"
	"strings"

	"floatprint/internal/stats"
)

// Stats is a snapshot of the package's conversion-path telemetry: how
// many conversions each algorithm actually decided.  The paper's
// evaluation is a throughput table; the path mix is what makes such a
// number interpretable (a corpus where the certified Grisu3 fast path
// hits ~99.5% measures fixed-point arithmetic, one where it misses
// measures the exact big-integer algorithm).
//
// Hit/miss pairs count conversions where the fast path was attempted
// (base 10, binary64, default scaling); ExactFree and ExactFixed count
// every run of the exact algorithm, including conversions where no fast
// path applied at all (other bases, benchmark scalings, absolute
// positions).  BatchValues and BatchBytes total the batch engine's
// output.
type Stats struct {
	GrisuHits   uint64 // shortest conversions certified by Grisu3
	GrisuMisses uint64 // Grisu3 attempted, failed certification
	GayHits     uint64 // fixed conversions certified by Gay's fast path
	GayMisses   uint64 // Gay fast path attempted, declined
	ExactFree   uint64 // exact free-format (shortest) conversions
	ExactFixed  uint64 // exact fixed-format conversions
	BatchValues uint64 // values converted by the batch engine
	BatchBytes  uint64 // bytes produced by the batch engine
}

// Snapshot returns the current telemetry counters.  Counters only
// advance while collection is enabled (SetStatsEnabled); a snapshot
// taken during concurrent conversions is per-field atomic.
func Snapshot() Stats { return fromSnap(stats.Read()) }

// SetStatsEnabled turns telemetry collection on or off, returning the
// previous setting.  Collection is off by default: when disabled every
// instrumentation point is a single branch on an atomic bool, so the
// hot path pays nothing.  When enabled, each conversion adds one
// cache-line-padded atomic increment.
func SetStatsEnabled(on bool) bool { return stats.Enable(on) }

// ResetStats zeroes all telemetry counters.
func ResetStats() { stats.Reset() }

// Sub returns the per-field difference s − prev: the path mix of the
// work done between two Snapshot calls.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		GrisuHits:   s.GrisuHits - prev.GrisuHits,
		GrisuMisses: s.GrisuMisses - prev.GrisuMisses,
		GayHits:     s.GayHits - prev.GayHits,
		GayMisses:   s.GayMisses - prev.GayMisses,
		ExactFree:   s.ExactFree - prev.ExactFree,
		ExactFixed:  s.ExactFixed - prev.ExactFixed,
		BatchValues: s.BatchValues - prev.BatchValues,
		BatchBytes:  s.BatchBytes - prev.BatchBytes,
	}
}

// String renders the path mix as a small report, one counter per line,
// with fast-path hit rates where a ratio is meaningful.
func (s Stats) String() string {
	var sb strings.Builder
	line := func(name string, v uint64) {
		fmt.Fprintf(&sb, "  %-22s %12d\n", name, v)
	}
	rate := func(name string, hits, misses uint64) {
		line(name+" hits", hits)
		line(name+" misses", misses)
		if total := hits + misses; total > 0 {
			fmt.Fprintf(&sb, "  %-22s %11.2f%%\n", name+" hit rate",
				100*float64(hits)/float64(total))
		}
	}
	rate("grisu", s.GrisuHits, s.GrisuMisses)
	rate("gay fast-path", s.GayHits, s.GayMisses)
	line("exact free-format", s.ExactFree)
	line("exact fixed-format", s.ExactFixed)
	line("batch values", s.BatchValues)
	line("batch bytes", s.BatchBytes)
	return sb.String()
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format (one `floatprint_*_total` counter per field, with HELP and
// TYPE lines).  It is the library half of the serving layer's /metrics
// endpoint — fpserved appends its server counters to the same scrape —
// but works against any io.Writer, so an application embedding this
// package can bolt the conversion path mix onto its own metrics
// handler with one call.
func (s Stats) WritePrometheus(w io.Writer) error {
	for _, m := range []struct {
		name, help string
		v          uint64
	}{
		{"floatprint_grisu_hits_total", "Shortest conversions certified by the Grisu3 fast path.", s.GrisuHits},
		{"floatprint_grisu_misses_total", "Shortest conversions where Grisu3 failed certification.", s.GrisuMisses},
		{"floatprint_gay_hits_total", "Fixed conversions certified by Gay's fast path.", s.GayHits},
		{"floatprint_gay_misses_total", "Fixed conversions where Gay's fast path declined.", s.GayMisses},
		{"floatprint_exact_free_total", "Exact free-format (shortest) conversions.", s.ExactFree},
		{"floatprint_exact_fixed_total", "Exact fixed-format conversions.", s.ExactFixed},
		{"floatprint_batch_values_total", "Values converted by the batch engine.", s.BatchValues},
		{"floatprint_batch_bytes_total", "Bytes produced by the batch engine.", s.BatchBytes},
	} {
		if err := stats.WriteCounter(w, m.name, m.help, m.v); err != nil {
			return err
		}
	}
	return nil
}

func fromSnap(s stats.Snapshot) Stats {
	return Stats{
		GrisuHits:   s.GrisuHits,
		GrisuMisses: s.GrisuMisses,
		GayHits:     s.GayHits,
		GayMisses:   s.GayMisses,
		ExactFree:   s.ExactFree,
		ExactFixed:  s.ExactFixed,
		BatchValues: s.BatchValues,
		BatchBytes:  s.BatchBytes,
	}
}
