package floatprint

import (
	"fmt"
	"io"
	"strings"

	"floatprint/internal/stats"
)

// Stats is a snapshot of the package's conversion-path telemetry: how
// many conversions each algorithm actually decided.  The paper's
// evaluation is a throughput table; the path mix is what makes such a
// number interpretable (a corpus where the certified Grisu3 fast path
// hits ~99.5% measures fixed-point arithmetic, one where it misses
// measures the exact big-integer algorithm).
//
// Hit/miss pairs count conversions where the fast path was attempted
// (base 10, binary64, default scaling); ExactFree and ExactFixed count
// every run of the exact algorithm, including conversions where no fast
// path applied at all (other bases, benchmark scalings, absolute
// positions).  BatchValues and BatchBytes total the batch engine's
// output.
type Stats struct {
	GrisuHits   uint64 // shortest conversions certified by Grisu3
	GrisuMisses uint64 // Grisu3 attempted, failed certification
	RyuHits     uint64 // shortest conversions served by Ryū
	RyuMisses   uint64 // Ryū attempted, declined (exact-halfway ties)
	GayHits     uint64 // fixed conversions certified by Gay's fast path
	GayMisses   uint64 // Gay fast path attempted, declined
	ExactFree   uint64 // exact free-format (shortest) conversions
	ExactFixed  uint64 // exact fixed-format conversions
	BatchValues uint64 // values converted by the batch engine
	BatchBytes  uint64 // bytes produced by the batch engine

	// Read-side counters (Parse/Parse32).  ParseFastHits and
	// ParseFastMisses count parses where the Eisel–Lemire fast path was
	// attempted (base 10, nearest-even reader); ParseExact counts every
	// run of the exact big-integer reader, including parses where no
	// fast path applied (other bases, directed rounding modes) and
	// parses that ended in ErrRange.
	ParseFastHits   uint64 // parses certified by the fast path
	ParseFastMisses uint64 // fast path attempted, declined to the reader
	ParseExact      uint64 // parses decided by the exact reader

	// Batch-parse counters (ParseBatch / batch.Pool.ParseAll).  Blocks
	// counts contiguous byte ranges scanned; Fallbacks counts tokens the
	// chunked block scanner declined and routed through the per-value
	// parser (those also advance the ParseFast*/ParseExact counters
	// above, exactly as a direct Parse call would).
	BatchParseBlocks    uint64 // contiguous byte ranges scanned
	BatchParseValues    uint64 // values parsed by the batch engine
	BatchParseBytes     uint64 // input bytes consumed by the batch engine
	BatchParseFallbacks uint64 // tokens declined to the per-value parser

	// Directed-rounding fast paths (floor/ceil printing and parsing, the
	// interval package's workhorses).  DirectedRyu* count one-sided
	// shortest conversions where a directed Ryū kernel was attempted;
	// DirectedFast* count directed-mode parses where the directed
	// Eisel–Lemire path was attempted.  Misses fall back to the exact
	// core/reader and also advance ExactFree / ParseExact.
	DirectedRyuHits    uint64 // directed prints served by one-sided Ryū
	DirectedRyuMisses  uint64 // one-sided Ryū attempted, declined
	DirectedFastHits   uint64 // directed parses certified by the fast path
	DirectedFastMisses uint64 // directed fast parse attempted, declined

	// Interval counters (the interval package).  Each counts whole
	// [lo,hi] operations; the per-endpoint directed conversions behind
	// them also advance the directed fast-path counters above (hits) or
	// ExactFree / ParseExact (misses and forced-exact runs).
	IntervalPrints uint64 // intervals formatted by interval.AppendShortest
	IntervalParses uint64 // intervals read by interval.Parse

	// Conversion-trace aggregates (the algorithm-level telemetry fed by
	// the tracing subsystem; see Trace).  TraceEstimates and TraceFixups
	// measure the §3.2 scale estimator on the exact path: the fixup rate
	// TraceFixups/TraceEstimates is the fraction of conversions where the
	// estimate came in one low and the penalty-free fixup fired.
	// TraceIterations and TraceDigits are summed over conversions, so
	// dividing by TraceConversions gives the mean generate-loop length and
	// mean output digits.  The per-backend mix and the digit-length
	// histogram are exposed via WriteTraceMetrics.
	TraceConversions uint64 // traced conversions folded into the aggregate
	TraceEstimates   uint64 // exact conversions that ran the §3.2 estimator
	TraceFixups      uint64 // estimator low by one: scale fixup fired
	TraceIterations  uint64 // summed digit-generation loop iterations
	TraceDigits      uint64 // summed significant output digits
	TraceRoundUps    uint64 // conversions whose last digit rounded up
}

// Snapshot returns the current telemetry counters.  Counters only
// advance while collection is enabled (SetStatsEnabled); a snapshot
// taken during concurrent conversions is per-field atomic.
func Snapshot() Stats {
	s := fromSnap(stats.Read())
	t := stats.Traces.Snapshot()
	s.TraceConversions = t.Conversions
	s.TraceEstimates = t.Estimates
	s.TraceFixups = t.Fixups
	s.TraceIterations = t.Iterations
	s.TraceDigits = t.Digits
	s.TraceRoundUps = t.RoundUps
	return s
}

// SetStatsEnabled turns telemetry collection on or off, returning the
// previous setting.  Collection is off by default: when disabled every
// instrumentation point is a single branch on an atomic bool, so the
// hot path pays nothing.  When enabled, each conversion adds one
// cache-line-padded atomic increment.
func SetStatsEnabled(on bool) bool { return stats.Enable(on) }

// ResetStats zeroes all telemetry counters.
func ResetStats() { stats.Reset() }

// Sub returns the per-field difference s − prev: the path mix of the
// work done between two Snapshot calls.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		GrisuHits:   s.GrisuHits - prev.GrisuHits,
		GrisuMisses: s.GrisuMisses - prev.GrisuMisses,
		RyuHits:     s.RyuHits - prev.RyuHits,
		RyuMisses:   s.RyuMisses - prev.RyuMisses,
		GayHits:     s.GayHits - prev.GayHits,
		GayMisses:   s.GayMisses - prev.GayMisses,
		ExactFree:   s.ExactFree - prev.ExactFree,
		ExactFixed:  s.ExactFixed - prev.ExactFixed,
		BatchValues: s.BatchValues - prev.BatchValues,
		BatchBytes:  s.BatchBytes - prev.BatchBytes,

		ParseFastHits:   s.ParseFastHits - prev.ParseFastHits,
		ParseFastMisses: s.ParseFastMisses - prev.ParseFastMisses,
		ParseExact:      s.ParseExact - prev.ParseExact,

		BatchParseBlocks:    s.BatchParseBlocks - prev.BatchParseBlocks,
		BatchParseValues:    s.BatchParseValues - prev.BatchParseValues,
		BatchParseBytes:     s.BatchParseBytes - prev.BatchParseBytes,
		BatchParseFallbacks: s.BatchParseFallbacks - prev.BatchParseFallbacks,

		DirectedRyuHits:    s.DirectedRyuHits - prev.DirectedRyuHits,
		DirectedRyuMisses:  s.DirectedRyuMisses - prev.DirectedRyuMisses,
		DirectedFastHits:   s.DirectedFastHits - prev.DirectedFastHits,
		DirectedFastMisses: s.DirectedFastMisses - prev.DirectedFastMisses,

		IntervalPrints: s.IntervalPrints - prev.IntervalPrints,
		IntervalParses: s.IntervalParses - prev.IntervalParses,

		TraceConversions: s.TraceConversions - prev.TraceConversions,
		TraceEstimates:   s.TraceEstimates - prev.TraceEstimates,
		TraceFixups:      s.TraceFixups - prev.TraceFixups,
		TraceIterations:  s.TraceIterations - prev.TraceIterations,
		TraceDigits:      s.TraceDigits - prev.TraceDigits,
		TraceRoundUps:    s.TraceRoundUps - prev.TraceRoundUps,
	}
}

// String renders the path mix as a small report, one counter per line,
// with fast-path hit rates where a ratio is meaningful.
func (s Stats) String() string {
	var sb strings.Builder
	line := func(name string, v uint64) {
		fmt.Fprintf(&sb, "  %-22s %12d\n", name, v)
	}
	rate := func(name string, hits, misses uint64) {
		line(name+" hits", hits)
		line(name+" misses", misses)
		if total := hits + misses; total > 0 {
			fmt.Fprintf(&sb, "  %-22s %11.2f%%\n", name+" hit rate",
				100*float64(hits)/float64(total))
		}
	}
	rate("grisu", s.GrisuHits, s.GrisuMisses)
	rate("ryu", s.RyuHits, s.RyuMisses)
	rate("gay fast-path", s.GayHits, s.GayMisses)
	line("exact free-format", s.ExactFree)
	line("exact fixed-format", s.ExactFixed)
	line("batch values", s.BatchValues)
	line("batch bytes", s.BatchBytes)
	rate("parse fast-path", s.ParseFastHits, s.ParseFastMisses)
	line("exact parses", s.ParseExact)
	line("batch-parse blocks", s.BatchParseBlocks)
	line("batch-parse values", s.BatchParseValues)
	line("batch-parse bytes", s.BatchParseBytes)
	line("batch-parse fallbacks", s.BatchParseFallbacks)
	if s.BatchParseValues > 0 {
		fmt.Fprintf(&sb, "  %-22s %11.4f%%\n", "batch-parse fb rate",
			100*float64(s.BatchParseFallbacks)/float64(s.BatchParseValues))
	}
	rate("directed ryu", s.DirectedRyuHits, s.DirectedRyuMisses)
	rate("directed parse", s.DirectedFastHits, s.DirectedFastMisses)
	line("interval prints", s.IntervalPrints)
	line("interval parses", s.IntervalParses)
	if s.TraceConversions > 0 {
		line("traced conversions", s.TraceConversions)
		line("scale estimates", s.TraceEstimates)
		line("scale fixups", s.TraceFixups)
		if s.TraceEstimates > 0 {
			fmt.Fprintf(&sb, "  %-22s %11.2f%%\n", "fixup rate",
				100*float64(s.TraceFixups)/float64(s.TraceEstimates))
		}
		fmt.Fprintf(&sb, "  %-22s %12.2f\n", "mean loop iterations",
			float64(s.TraceIterations)/float64(s.TraceConversions))
		fmt.Fprintf(&sb, "  %-22s %12.2f\n", "mean output digits",
			float64(s.TraceDigits)/float64(s.TraceConversions))
		line("round-ups", s.TraceRoundUps)
	}
	return sb.String()
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format (one `floatprint_*_total` counter per field, with HELP and
// TYPE lines).  It is the library half of the serving layer's /metrics
// endpoint — fpserved appends its server counters to the same scrape —
// but works against any io.Writer, so an application embedding this
// package can bolt the conversion path mix onto its own metrics
// handler with one call.
func (s Stats) WritePrometheus(w io.Writer) error {
	for _, m := range []struct {
		name, help string
		v          uint64
	}{
		{"floatprint_grisu_hits_total", "Shortest conversions certified by the Grisu3 fast path.", s.GrisuHits},
		{"floatprint_grisu_misses_total", "Shortest conversions where Grisu3 failed certification.", s.GrisuMisses},
		{"floatprint_ryu_hits_total", "Shortest conversions served by the Ryu fast path.", s.RyuHits},
		{"floatprint_ryu_misses_total", "Shortest conversions where Ryu declined (exact-halfway ties).", s.RyuMisses},
		{"floatprint_gay_hits_total", "Fixed conversions certified by Gay's fast path.", s.GayHits},
		{"floatprint_gay_misses_total", "Fixed conversions where Gay's fast path declined.", s.GayMisses},
		{"floatprint_exact_free_total", "Exact free-format (shortest) conversions.", s.ExactFree},
		{"floatprint_exact_fixed_total", "Exact fixed-format conversions.", s.ExactFixed},
		{"floatprint_batch_values_total", "Values converted by the batch engine.", s.BatchValues},
		{"floatprint_batch_bytes_total", "Bytes produced by the batch engine.", s.BatchBytes},
		{"floatprint_parse_fast_hits_total", "Parses certified by the Eisel-Lemire fast path.", s.ParseFastHits},
		{"floatprint_parse_fast_misses_total", "Parses where the fast path declined to the exact reader.", s.ParseFastMisses},
		{"floatprint_parse_exact_total", "Parses decided by the exact big-integer reader.", s.ParseExact},
		{"floatprint_batch_parse_blocks_total", "Contiguous byte ranges scanned by the batch parse engine.", s.BatchParseBlocks},
		{"floatprint_batch_parse_values_total", "Values parsed by the batch parse engine.", s.BatchParseValues},
		{"floatprint_batch_parse_bytes_total", "Input bytes consumed by the batch parse engine.", s.BatchParseBytes},
		{"floatprint_batch_parse_fallbacks_total", "Batch-parse tokens declined to the per-value parser.", s.BatchParseFallbacks},
		{"floatprint_directed_ryu_hits_total", "Directed shortest conversions served by the one-sided Ryu kernels.", s.DirectedRyuHits},
		{"floatprint_directed_ryu_misses_total", "Directed shortest conversions where a one-sided kernel declined.", s.DirectedRyuMisses},
		{"floatprint_directed_fast_hits_total", "Directed parses certified by the directed Eisel-Lemire fast path.", s.DirectedFastHits},
		{"floatprint_directed_fast_misses_total", "Directed parses where the fast path declined to the exact reader.", s.DirectedFastMisses},
		{"floatprint_interval_prints_total", "Intervals formatted by the interval package.", s.IntervalPrints},
		{"floatprint_interval_parses_total", "Intervals read by the interval package.", s.IntervalParses},
		{"floatprint_trace_conversions_total", "Conversions folded into the trace aggregate.", s.TraceConversions},
		{"floatprint_trace_estimates_total", "Exact conversions that ran the scale estimator.", s.TraceEstimates},
		{"floatprint_trace_fixups_total", "Scale estimates one low, corrected by the fixup loop.", s.TraceFixups},
		{"floatprint_trace_iterations_total", "Summed digit-generation loop iterations.", s.TraceIterations},
		{"floatprint_trace_digits_total", "Summed significant output digits.", s.TraceDigits},
		{"floatprint_trace_roundups_total", "Conversions whose last digit rounded up.", s.TraceRoundUps},
	} {
		if err := stats.WriteCounter(w, m.name, m.help, m.v); err != nil {
			return err
		}
	}
	return nil
}

func fromSnap(s stats.Snapshot) Stats {
	return Stats{
		GrisuHits:   s.GrisuHits,
		GrisuMisses: s.GrisuMisses,
		RyuHits:     s.RyuHits,
		RyuMisses:   s.RyuMisses,
		GayHits:     s.GayHits,
		GayMisses:   s.GayMisses,
		ExactFree:   s.ExactFree,
		ExactFixed:  s.ExactFixed,
		BatchValues: s.BatchValues,
		BatchBytes:  s.BatchBytes,

		ParseFastHits:   s.ParseFastHits,
		ParseFastMisses: s.ParseFastMisses,
		ParseExact:      s.ParseExact,

		BatchParseBlocks:    s.BatchParseBlocks,
		BatchParseValues:    s.BatchParseValues,
		BatchParseBytes:     s.BatchParseBytes,
		BatchParseFallbacks: s.BatchParseFallbacks,

		DirectedRyuHits:    s.DirectedRyuHits,
		DirectedRyuMisses:  s.DirectedRyuMisses,
		DirectedFastHits:   s.DirectedFastHits,
		DirectedFastMisses: s.DirectedFastMisses,

		IntervalPrints: s.IntervalPrints,
		IntervalParses: s.IntervalParses,
	}
}
