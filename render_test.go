package floatprint

import (
	"math"
	"strings"
	"testing"
)

func TestRenderNotationBand(t *testing.T) {
	// The auto band: positional for K in [-3, 21], scientific outside.
	cases := []struct {
		v    float64
		want string
	}{
		{1e-4, "0.0001"},                // K=-3 boundary (inside)
		{1e-5, "1e-5"},                  // K=-4 (outside)
		{1e20, "100000000000000000000"}, // K=21 boundary (inside)
		{1e21, "1e21"},                  // K=22 (outside)
	}
	for _, c := range cases {
		if got := Shortest(c.v); got != c.want {
			t.Errorf("Shortest(%g) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestRenderNegativeForms(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{-0.25, "-0.25"},
		{-1e30, "-1e30"},
		{-1234.5, "-1234.5"},
	}
	for _, c := range cases {
		if got := Shortest(c.v); got != c.want {
			t.Errorf("Shortest(%g) = %q, want %q", c.v, got, c.want)
		}
	}
	if got := FixedPosition(-1234.5678, -1); got != "-1234.6" {
		t.Errorf("negative fixed = %q", got)
	}
}

func TestRenderScientificSingleDigit(t *testing.T) {
	// No decimal point when there is only one digit.
	if got := Shortest(5e-324); got != "5e-324" {
		t.Errorf("single-digit scientific = %q", got)
	}
	s, err := Format(4, &Options{Notation: NotationScientific})
	if err != nil || s != "4e0" {
		t.Errorf("Format(4, sci) = %q (%v)", s, err)
	}
}

func TestRenderZeroWithPositions(t *testing.T) {
	// Fixed zeros carry their digit positions into the rendering.
	if got := Fixed(0, 1); got != "0" {
		t.Errorf("Fixed(0,1) = %q", got)
	}
	if got := Fixed(0, 5); got != "0.0000" {
		t.Errorf("Fixed(0,5) = %q", got)
	}
	if got := FixedPosition(0, -3); got != "0.000" {
		t.Errorf("FixedPosition(0,-3) = %q", got)
	}
	if got := FixedPosition(0, 2); got != "0" {
		t.Errorf("FixedPosition(0,2) = %q", got)
	}
	if got := Shortest(math.Copysign(0, -1)); got != "-0" {
		t.Errorf("Shortest(-0) = %q", got)
	}
	// A nonzero value rounded away to zero keeps its sign.
	if got := FixedPosition(-5, 2); got != "-0" {
		t.Errorf("FixedPosition(-5, 2) = %q", got)
	}
}

func TestRenderMarksInScientific(t *testing.T) {
	d, err := FixedDigits(5e-324, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := d.String()
	if !strings.HasPrefix(s, "5.") || !strings.Contains(s, "#") || !strings.HasSuffix(s, "e-324") {
		t.Errorf("denormal marked rendering = %q", s)
	}
	if strings.Count(s, "#") != 8-d.NSig {
		t.Errorf("mark count mismatch in %q (NSig=%d)", s, d.NSig)
	}
}

func TestRenderMarksForcedPositional(t *testing.T) {
	// Forcing positional on a marked result keeps marks in fractional
	// positions.
	s, err := FormatFixedPosition(100, -20, &Options{Notation: NotationPositional})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(s, "100.") || strings.Count(s, "#") != 5 {
		t.Errorf("positional marked = %q", s)
	}
}

func TestRenderAutoAvoidsMarkPadding(t *testing.T) {
	// When a marked result's digits end above the radix point, positional
	// rendering would need value padding after '#'; auto must choose
	// scientific instead.
	d := Digits{
		Class: Finite, Digits: []byte{1, 2, 3}, K: 6, NSig: 2, Base: 10,
	}
	s := d.String()
	if !strings.Contains(s, "e") {
		t.Errorf("marked K>len result should render scientific, got %q", s)
	}
}

func TestRenderBase36AtMarker(t *testing.T) {
	d := Digits{Class: Finite, Digits: []byte{35, 35}, K: 40, NSig: 2, Base: 36}
	s := d.String()
	if !strings.Contains(s, "@39") || !strings.HasPrefix(s, "z.z") {
		t.Errorf("base-36 scientific = %q", s)
	}
}

func TestRenderSpecials(t *testing.T) {
	for v, want := range map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
	} {
		d, err := ShortestDigits(v, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.String(); got != want {
			t.Errorf("String(%v) = %q, want %q", v, got, want)
		}
	}
	d, _ := ShortestDigits(math.NaN(), nil)
	if d.String() != "NaN" {
		t.Errorf("NaN renders %q", d.String())
	}
}

func TestRenderPaddingAboveLastPosition(t *testing.T) {
	// FixedPosition at a positive position pads with value zeros up to the
	// units place.
	if got := FixedPosition(987654, 3); got != "988000" {
		t.Errorf("FixedPosition(987654, 3) = %q", got)
	}
	if got := FixedPosition(999999, 3); got != "1000000" {
		t.Errorf("FixedPosition(999999, 3) = %q (carry into new digit)", got)
	}
}

func TestRenderNoMarksOption(t *testing.T) {
	s, err := FormatFixed(5e-324, 6, &Options{NoMarks: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(s, "#") {
		t.Errorf("NoMarks rendering still has marks: %q", s)
	}
	if s != "5.00000e-324" {
		t.Errorf("NoMarks denormal = %q", s)
	}
}
