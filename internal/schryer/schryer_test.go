package schryer

import (
	"math"
	"testing"
)

func TestCorpusSizeMatchesPaper(t *testing.T) {
	c := Corpus()
	if len(c) != 250_680 {
		t.Fatalf("corpus size %d, want 250680", len(c))
	}
}

func TestCorpusAllPositiveNormalized(t *testing.T) {
	for i, v := range Corpus() {
		if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("corpus[%d] = %v is not positive finite", i, v)
		}
		if v < 0x1p-1022 {
			t.Fatalf("corpus[%d] = %v is denormal", i, v)
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a, b := Corpus(), Corpus()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("corpus differs at %d", i)
		}
	}
}

func TestCorpusNoDuplicates(t *testing.T) {
	seen := make(map[float64]int, CorpusSize)
	for i, v := range Corpus() {
		if j, dup := seen[v]; dup {
			t.Fatalf("corpus[%d] duplicates corpus[%d]: %v", i, j, v)
		}
		seen[v] = i
	}
}

func TestCorpusNPrefixBehavior(t *testing.T) {
	full := Corpus()
	for _, n := range []int{0, 1, 100, 5000, CorpusSize, CorpusSize + 5, -3} {
		got := CorpusN(n)
		want := n
		if want < 0 {
			want = 0
		}
		if want > CorpusSize {
			want = CorpusSize
		}
		if len(got) != want {
			t.Fatalf("CorpusN(%d) len = %d, want %d", n, len(got), want)
		}
		for i := range got {
			if got[i] != full[i] {
				t.Fatalf("CorpusN(%d)[%d] != Corpus()[%d]", n, i, i)
			}
		}
	}
}

func TestCorpusPrefixSpansExponents(t *testing.T) {
	// Even a small prefix must cover the full exponent range, so truncated
	// benchmark runs still exercise extreme scaling factors.
	prefix := CorpusN(4092) // two full pattern sweeps
	sawTiny, sawHuge := false, false
	for _, v := range prefix {
		if v < 1e-300 {
			sawTiny = true
		}
		if v > 1e300 {
			sawHuge = true
		}
	}
	if !sawTiny || !sawHuge {
		t.Fatalf("prefix lacks exponent diversity: tiny=%v huge=%v", sawTiny, sawHuge)
	}
}

func TestPatternShapes(t *testing.T) {
	pats := mantissaPatterns()
	const top = uint64(1) << 52
	for i, p := range pats {
		if p < top || p >= top<<1 {
			t.Fatalf("pattern %d = %x is not a normalized 53-bit mantissa", i, p)
		}
	}
	// Spot-check the three families.
	if pats[0] != top {
		t.Errorf("first leading-ones pattern should be 2^52, got %x", pats[0])
	}
	if pats[40] != (uint64(1)<<41-1)<<12 {
		t.Errorf("41-leading-ones pattern wrong: %x", pats[40])
	}
	if pats[41] != top|1 {
		t.Errorf("first trailing-ones pattern wrong: %x", pats[41])
	}
}
