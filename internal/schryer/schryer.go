// Package schryer generates the floating-point test corpus used in the
// paper's measurements: "a set of 250,680 positive normalized IEEE
// double-precision floating-point numbers ... generated according to the
// forms Schryer developed for testing floating-point units" (N. L.
// Schryer, "A Test of a Computer's Floating-Point Arithmetic Unit", 1981 —
// reference [4] of Burger & Dybvig).
//
// Schryer's original test tape is not available, so this package builds a
// deterministic synthetic equivalent following his published approach:
// structured mantissa bit patterns (runs of ones at either end, isolated
// bits) crossed with a sweep of every binade of the double
// format.  The corpus has exactly 250,680 values, is fully deterministic,
// and — like Schryer's — concentrates on the mantissa/exponent extremes
// that stress conversion algorithms.  See DESIGN.md for the substitution
// rationale.
package schryer

import "math"

// CorpusSize is the number of values in the full corpus, matching the
// paper's count exactly.
const CorpusSize = 250_680

// binades is the count of normalized double-precision exponents
// (2^-1022 .. 2^1023).
const binades = 2046

// patternsPerBinade is the number of structured mantissa patterns applied
// in every binade; together with the extras this yields CorpusSize values.
const patternsPerBinade = 122

// extraBinades is the number of leading binades that receive one
// additional mixed-bit pattern so the corpus size matches the paper's
// 250,680 exactly: 2046×122 + 1068 = 250,680.
const extraBinades = CorpusSize - binades*patternsPerBinade

// Corpus returns the full 250,680-value test set.  Values are positive,
// normalized, and deterministic (the same slice on every call).
func Corpus() []float64 {
	return CorpusN(CorpusSize)
}

// CorpusN returns the first n values of the corpus (n <= CorpusSize), for
// quicker tests and benchmark warm-ups.  The values interleave binades so
// any prefix still spans the full exponent range.
func CorpusN(n int) []float64 {
	if n < 0 {
		n = 0
	}
	if n > CorpusSize {
		n = CorpusSize
	}
	out := make([]float64, 0, n)
	pats := mantissaPatterns()
	// Interleave: for each pattern, sweep all binades.  This keeps small
	// prefixes exponent-diverse (important when benchmarking scaling
	// algorithms, whose cost depends on the exponent).
	for pi := 0; pi < patternsPerBinade && len(out) < n; pi++ {
		for e2 := -1022; e2 <= 1023 && len(out) < n; e2++ {
			out = append(out, math.Ldexp(float64(pats[pi]), e2-52))
		}
	}
	// The extra mixed pattern over the first binades brings the total to
	// exactly CorpusSize.
	mixed := mixedPattern()
	for e2 := -1022; e2 < -1022+extraBinades && len(out) < n; e2++ {
		out = append(out, math.Ldexp(float64(mixed), e2-52))
	}
	return out
}

// mantissaPatterns returns the 122 structured 53-bit mantissas (hidden bit
// included, so every value is in [2^52, 2^53)).
func mantissaPatterns() []uint64 {
	const top = uint64(1) << 52
	var pats []uint64
	// Runs of k ones at the most-significant end: 111…1000…0.
	for k := 1; k <= 41; k++ {
		pats = append(pats, (uint64(1)<<k-1)<<(53-k))
	}
	// The leading one plus a run of k ones at the least-significant end:
	// 100…0111…1.
	for k := 1; k <= 41; k++ {
		pats = append(pats, top|(uint64(1)<<k-1))
	}
	// The leading one plus a single isolated bit k positions below it:
	// 100…010…0.  (k starts at 2: k = 1 would duplicate the two-leading-
	// ones pattern.)
	for k := 2; k <= 41; k++ {
		pats = append(pats, top|uint64(1)<<(52-k))
	}
	if len(pats) != patternsPerBinade {
		panic("schryer: pattern construction out of sync with patternsPerBinade")
	}
	return pats
}

// mixedPattern is the single additional pattern (an isolated-bits form)
// used to reach the exact corpus size.
func mixedPattern() uint64 {
	const top = uint64(1) << 52
	return top | 1<<40 | 1<<26 | 1<<13 | 1
}
