package core

import (
	"floatprint/internal/bignat"
	"floatprint/internal/fpformat"
)

// This file implements the directed variants of the paper's free-format
// loop for interval I/O: instead of the shortest string inside the full
// rounding range (low, high), FloorFormat produces the shortest string in
// the lower half-gap (v − m⁻, v] and CeilFormat the shortest in the upper
// half-gap [v, v + m⁺).  One-sided output is what outward-rounded interval
// endpoints need — a printed lower bound must not exceed the value it
// bounds — and the half-gap constraint keeps the output *identifying*:
// because it stays strictly nearer v than either neighbor's midpoint, any
// round-to-nearest reader recovers exactly v from it, and a directed
// reader recovers v or the adjacent value on the bound's own side, so
// enclosure survives every reader mode.
//
// The loops are the §3 digit loop with a one-sided stopping condition.
// Where the nearest loop stops when rₙ < m⁻ₙ *or* rₙ + m⁺ₙ > sₙ and then
// picks the closer side, the floor loop may only ever truncate, so it
// stops at the smallest n with rₙ < m⁻ₙ (strict: the midpoint itself is
// excluded, keeping the output tie-free under every nearest tie rule);
// the ceil loop may only ever round up, so it stops at the smallest n
// with rₙ + m⁺ₙ > sₙ and increments the last digit — or at rₙ = 0, where
// v's own digits are exact and already the tightest value ≥ v.

// FloorFormat converts the positive finite value v to the shortest digit
// string whose exact value lies in (v − m⁻, v]: the largest-valued
// shortest truncation that still identifies v from below.  The last digit
// is never incremented, so the result never exceeds v; reading it back
// under any round-to-nearest mode yields exactly v, and under a
// toward-positive reader it yields v as well (the value is within v's
// lower half-gap).  Only a toward-negative reader can move it, and then
// only down to v's predecessor — the direction an interval lower bound is
// allowed to move.
func FloorFormat(v fpformat.Value, base int, method Scaling) (Result, error) {
	return directedFormat(v, base, method, false)
}

// CeilFormat converts the positive finite value v to the shortest digit
// string whose exact value lies in [v, v + m⁺): the smallest-valued
// shortest string that identifies v from above.  It is the mirror image
// of FloorFormat for interval upper bounds.
func CeilFormat(v fpformat.Value, base int, method Scaling) (Result, error) {
	return directedFormat(v, base, method, true)
}

func directedFormat(v fpformat.Value, base int, method Scaling, up bool) (Result, error) {
	if err := checkArgs(v, base); err != nil {
		return Result{}, err
	}
	// lowOK/highOK are irrelevant here: the one-sided conditions below are
	// strict by construction, which corresponds to the conservative
	// ReaderUnknown bounds in the scale search.
	st := newState(v, base, false, false)
	defer st.release()
	k := st.scale(method, v)
	var digits []byte
	if up {
		digits, k = st.generateCeil(k)
	} else {
		digits, k = st.generateFloor(k)
	}
	return Result{Digits: digits, K: k, NSig: len(digits)}, nil
}

// generateFloor runs the truncating digit loop: emit digits of v until the
// remainder drops strictly below m⁻, i.e. until the truncated prefix is
// within v's lower half-gap.  The stopping digit is never 0 (a zero digit
// leaves r and m⁻ scaled by the same factor B, so the condition would
// already have held one position earlier), which is why no trailing-zero
// trim is needed; a leading zero can appear when the conservative scale
// overshoots (v just below a power of B that is not itself representable),
// and is trimmed with its K adjustment.
func (st *state) generateFloor(k int) ([]byte, int) {
	digits := make([]byte, 0, 24)
	for {
		digits = append(digits, st.nextDigit())
		if bignat.Cmp(st.r, st.mm) < 0 {
			return trimLeadingZeros(digits, k)
		}
		st.stepMul()
	}
}

// generateCeil runs the rounding-up digit loop: emit digits of v until
// either the remainder is exactly zero (v's digits terminate — v itself is
// the tightest value ≥ v) or incrementing the last digit lands inside the
// upper half-gap (r + m⁺ > s strictly, the upper §3 stopping condition
// made one-sided).  Exactness is checked first: at equal length the exact
// prefix is tighter than the incremented one.
func (st *state) generateCeil(k int) ([]byte, int) {
	digits := make([]byte, 0, 24)
	for {
		digits = append(digits, st.nextDigit())
		if st.r.IsZero() {
			return trimLeadingZeros(digits, k)
		}
		st.hn = bignat.AddInto(st.hn, st.r, st.mp)
		if bignat.Cmp(st.hn, st.s) > 0 {
			digits, k = incrementLast(digits, st.base, k)
			return trimLeadingZeros(trimTrailingZeros(digits), k)
		}
		st.stepMul()
	}
}

// trimLeadingZeros drops leading zero digits, lowering the scale K in
// step.  The two-sided nearest loop cannot produce them (its first emitted
// digit is always significant by the minimality of k against the full
// range), but the one-sided loops track v itself, which can sit a digit
// position below the conservative scale: the largest float64 under 10^23,
// for instance, has high > 10^23 and so k = 24, yet its own first digit at
// that scale is 0.
func trimLeadingZeros(digits []byte, k int) ([]byte, int) {
	for len(digits) > 1 && digits[0] == 0 {
		digits = digits[1:]
		k--
	}
	return digits, k
}
