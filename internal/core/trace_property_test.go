package core

import (
	"testing"

	"floatprint/internal/fpformat"
	"floatprint/internal/schryer"
	"floatprint/internal/trace"
)

// TestScaleEstimatePropertySchryer verifies the paper's §3.2 claim over
// the Schryer workload: the two-flop estimate is never above the true
// scale and never more than one below it, so the traced record must
// always show EstimateK <= ScaleK <= EstimateK+1 (FixupSteps 0 or 1).
// The same must hold for the fixed path's widened-range estimate, where
// the fixup can legitimately run further only when the requested
// position dominates the value (covered by the floor; steps stay 0/1
// when it does not).
func TestScaleEstimatePropertySchryer(t *testing.T) {
	n := schryer.CorpusSize
	if testing.Short() {
		n = 20000
	}
	corpus := schryer.CorpusN(n)
	var tr trace.Conversion
	fixups := 0
	for _, f := range corpus {
		v := fpformat.DecodeFloat64(f)
		if _, err := FreeFormatTraced(v, 10, ScalingEstimate, ReaderNearestEven, &tr); err != nil {
			t.Fatal(err)
		}
		if tr.FixupSteps != 0 && tr.FixupSteps != 1 {
			t.Fatalf("v=%x: estimate k=%d, final k=%d: fixup steps %d, want 0 or 1 (paper §3.2)",
				f, tr.EstimateK, tr.ScaleK, tr.FixupSteps)
		}
		if tr.ScaleK-tr.EstimateK != tr.FixupSteps {
			t.Fatalf("v=%x: inconsistent trace: estimate %d, final %d, steps %d",
				f, tr.EstimateK, tr.ScaleK, tr.FixupSteps)
		}
		fixups += tr.FixupSteps
	}
	if fixups == 0 {
		t.Error("no fixups over the whole corpus: the paper says the estimate is 'frequently one too small'")
	}
	t.Logf("corpus %d values: %d fixups (%.2f%%)", len(corpus), fixups,
		100*float64(fixups)/float64(len(corpus)))
}

// TestScaleEstimatePropertyOtherBases spot-checks the same bound for
// non-decimal bases on a corpus sample: the estimator's error analysis
// (log_B over float64 logs) is base-independent.
func TestScaleEstimatePropertyOtherBases(t *testing.T) {
	corpus := schryer.CorpusN(8000)
	var tr trace.Conversion
	for _, base := range []int{2, 3, 8, 16, 36} {
		for _, f := range corpus {
			v := fpformat.DecodeFloat64(f)
			if _, err := FreeFormatTraced(v, base, ScalingEstimate, ReaderNearestEven, &tr); err != nil {
				t.Fatal(err)
			}
			if tr.FixupSteps != 0 && tr.FixupSteps != 1 {
				t.Fatalf("base %d v=%x: estimate k=%d, final k=%d: fixup steps %d, want 0 or 1",
					base, f, tr.EstimateK, tr.ScaleK, tr.FixupSteps)
			}
		}
	}
}

// TestFreeFormatTraceShape pins the trace record's core fields for known
// values, so the explain plan's vocabulary stays tied to the paper.
func TestFreeFormatTraceShape(t *testing.T) {
	var tr trace.Conversion
	// 1.0 is a binade boundary with e<0 (f=2^52, e=-52): Table-1 case 4,
	// the classic estimate-one-low value (estimate 0, true scale 1).
	if _, err := FreeFormatTraced(fpformat.DecodeFloat64(1), 10, ScalingEstimate, ReaderNearestEven, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Backend != trace.BackendExactFree || tr.Table1Case != 4 ||
		tr.FixupSteps != 1 || tr.ScaleK != 1 || tr.Iterations != 1 || tr.Digits != 1 {
		t.Errorf("trace for 1.0 = %+v, want case 4, one fixup to k=1, one digit", tr)
	}
	// 5e-324 (min subnormal) generates one digit and rounds up on a tie.
	if _, err := FreeFormatTraced(fpformat.DecodeFloat64(5e-324), 10, ScalingEstimate, ReaderNearestEven, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Backend != trace.BackendExactFree || !tr.TieBreak || !tr.RoundedUp || tr.Digits != 1 {
		t.Errorf("trace for 5e-324 = %+v, want tie-break round-up to one digit", tr)
	}
}
