package core

import (
	"math"
	"math/big"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"floatprint/internal/fpformat"
	"floatprint/internal/reader"
)

func mustFixed(t *testing.T, v float64, j int) Result {
	t.Helper()
	res, err := FixedFormat(fpformat.DecodeFloat64(v), 10, ReaderUnknown, j)
	if err != nil {
		t.Fatalf("FixedFormat(%g, j=%d): %v", v, j, err)
	}
	return res
}

// checkFixedInvariants verifies the structural contract of every fixed
// result: len == K − j, digit values in range, NSig sane, and all
// insignificant digits zero.
func checkFixedInvariants(t *testing.T, res Result, base, j int) {
	t.Helper()
	if len(res.Digits) != res.K-j {
		t.Fatalf("len(Digits)=%d != K-j = %d-%d", len(res.Digits), res.K, j)
	}
	if res.NSig < 1 || res.NSig > len(res.Digits) {
		t.Fatalf("NSig %d out of range [1,%d]", res.NSig, len(res.Digits))
	}
	for i, d := range res.Digits {
		if int(d) >= base {
			t.Fatalf("digit %d at index %d out of range for base %d", d, i, base)
		}
	}
	for _, d := range res.Digits[res.NSig:] {
		if d != 0 {
			t.Fatalf("insignificant digit %d nonzero", d)
		}
	}
}

func TestFixedFormatPaper100Example(t *testing.T) {
	// "Suppose 100 were printed to absolute position 0 ... the remaining
	// digit positions are significant and must therefore be zero, not #."
	res := mustFixed(t, 100, 0)
	checkFixedInvariants(t, res, 10, 0)
	if digitsString(res.Digits) != "100" || res.K != 3 || res.NSig != 3 {
		t.Errorf("100@j=0: %q K=%d NSig=%d, want \"100\" K=3 NSig=3",
			digitsString(res.Digits), res.K, res.NSig)
	}

	// "when printing 100 in IEEE double-precision to digit position 20,
	// the algorithm prints 100.00000000000000#####" — 3 integer digits, 14
	// significant zero decimals (the last decimal whose increment escapes
	// v + 2⁻⁴⁷), then marks.
	res = mustFixed(t, 100, -20)
	checkFixedInvariants(t, res, 10, -20)
	if res.K != 3 || len(res.Digits) != 23 {
		t.Fatalf("100@j=-20: K=%d len=%d", res.K, len(res.Digits))
	}
	if got := digitsString(res.Digits[:3]); got != "100" {
		t.Errorf("100@j=-20 leading digits %q", got)
	}
	for _, d := range res.Digits[3:] {
		if d != 0 {
			t.Errorf("100@j=-20 has nonzero fraction digit")
		}
	}
	// The half-gap above 100 is 2⁻⁴⁷ ≈ 7.105e-15.  Decimal position d is
	// insignificant when 10^(1-d) <= 2⁻⁴⁷, i.e. from d = 16 onward, so the
	// paper prints 15 significant zero decimals and 5 marks:
	// 100.000000000000000#####.
	if res.NSig != 18 {
		t.Errorf("100@j=-20 NSig = %d, want 18 (3 integer digits + 15 zeros)", res.NSig)
	}
	sigDecimals := res.NSig - 3
	if res.NSig >= len(res.Digits) {
		t.Fatalf("expected # marks for 100@j=-20, NSig=%d", res.NSig)
	}
	// Any completion of the insignificant tail reads back as 100.
	tail := strings.Repeat("9", len(res.Digits)-res.NSig)
	s := "100." + strings.Repeat("0", sigDecimals) + tail
	if back, err := strconv.ParseFloat(s, 64); err != nil || back != 100 {
		t.Errorf("completion %q reads back as %v (%v), want 100", s, back, err)
	}
}

func TestFixedFormatThirdFloat32(t *testing.T) {
	// The abstract's example: single-precision ⅓ printed to 10 digits has
	// only its leading digits significant; the rest are # marks.
	third := fpformat.DecodeFloat32(float32(1.0) / 3)
	res, err := FixedFormatRelative(third, 10, ReaderUnknown, 10)
	if err != nil {
		t.Fatal(err)
	}
	checkFixedInvariants(t, res, 10, res.K-10)
	if len(res.Digits) != 10 || res.K != 0 {
		t.Fatalf("third@10 digits: len=%d K=%d", len(res.Digits), res.K)
	}
	if res.NSig >= 10 {
		t.Fatalf("expected insignificant digits, NSig=%d", res.NSig)
	}
	// The significant prefix must read back (with any tail) to the value.
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var sb strings.Builder
		sb.WriteString("0.")
		sb.Write([]byte(digitsString(res.Digits[:res.NSig])))
		for i := res.NSig; i < 10; i++ {
			sb.WriteByte(byte('0' + r.Intn(10)))
		}
		back, err := strconv.ParseFloat(sb.String(), 32)
		if err != nil {
			t.Fatal(err)
		}
		if float32(back) != float32(1.0)/3 {
			t.Fatalf("completion %q reads back as %g", sb.String(), back)
		}
	}
}

func TestFixedFormatDenormalMarks(t *testing.T) {
	// Denormals have very little precision: most requested digits are #.
	res, err := FixedFormatRelative(fpformat.DecodeFloat64(5e-324), 10, ReaderUnknown, 10)
	if err != nil {
		t.Fatal(err)
	}
	checkFixedInvariants(t, res, 10, res.K-10)
	if res.NSig != 1 {
		t.Errorf("smallest denormal NSig = %d, want 1", res.NSig)
	}
	if res.Digits[0] != 5 || res.K != -323 {
		t.Errorf("smallest denormal leading digit %d K=%d, want 5 K=-323", res.Digits[0], res.K)
	}
}

// fixedOracle computes the correctly rounded digits of v at position j with
// math/big, returning the digit string (no leading zeros beyond position
// handling), the tie flag, and whether the round was upward on a tie.
func fixedOracle(v float64, j int) (digits string, k int, tie bool) {
	r := new(big.Rat).SetFloat64(v)
	pow := new(big.Rat).SetFrac(big.NewInt(1), big.NewInt(1))
	ten := big.NewRat(10, 1)
	if j >= 0 {
		for i := 0; i < j; i++ {
			pow.Mul(pow, ten)
		}
	} else {
		for i := 0; i < -j; i++ {
			pow.Quo(pow, ten)
		}
	}
	scaled := new(big.Rat).Quo(r, pow) // v / 10^j
	floor := new(big.Int).Quo(scaled.Num(), scaled.Denom())
	frac := new(big.Rat).Sub(scaled, new(big.Rat).SetInt(floor))
	half := big.NewRat(1, 2)
	switch frac.Cmp(half) {
	case 1:
		floor.Add(floor, big.NewInt(1))
	case 0:
		tie = true
		floor.Add(floor, big.NewInt(1)) // match the paper's tie-up rule
	}
	digits = floor.String()
	k = len(digits) + j
	if floor.Sign() == 0 {
		digits = "0"
		k = j + 1
	}
	return digits, k, tie
}

// outputGrainDominates reports whether the requested half-ulp 10ʲ/2 is at
// least as large as both of v's half-gaps.  In that regime the paper's
// expanded rounding range *is* the output precision, so the algorithm
// performs exact decimal rounding; when the float gap is wider, the paper
// deliberately accepts any output inside the float's own rounding range
// ("the algorithm uses the larger range"), which need not equal the exact
// decimal rounding.
func halfUlpComparisons(v float64, j int) (outGEHigh, outGELow, ok bool) {
	val := fpformat.DecodeFloat64(v)
	exact := new(big.Rat).SetFloat64(v)
	nextF, err := fpformat.Next(val).Float64()
	if err != nil || math.IsInf(nextF, 0) {
		return false, false, false
	}
	prevF, err := fpformat.Prev(val).Float64()
	if err != nil {
		return false, false, false
	}
	halfHigh := new(big.Rat).Sub(new(big.Rat).SetFloat64(nextF), exact)
	halfHigh.Mul(halfHigh, big.NewRat(1, 2))
	halfLow := new(big.Rat).Sub(exact, new(big.Rat).SetFloat64(prevF))
	halfLow.Mul(halfLow, big.NewRat(1, 2))
	halfOut := big.NewRat(1, 2)
	ten := big.NewRat(10, 1)
	for i := 0; i < j; i++ {
		halfOut.Mul(halfOut, ten)
	}
	for i := 0; i < -j; i++ {
		halfOut.Quo(halfOut, ten)
	}
	return halfOut.Cmp(halfHigh) >= 0, halfOut.Cmp(halfLow) >= 0, true
}

func outputGrainDominates(v float64, j int) bool {
	geHigh, geLow, ok := halfUlpComparisons(v, j)
	return ok && geHigh && geLow
}

// floatGrainDominates reports that the value's own rounding range strictly
// contains the output precision on both sides, the regime in which every
// fixed output's significant prefix must read back to v exactly.
func floatGrainDominates(v float64, j int) bool {
	geHigh, geLow, ok := halfUlpComparisons(v, j)
	return ok && !geHigh && !geLow
}

func TestFixedFormatAgainstBigRatOracle(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	compared := 0
	for trial := 0; trial < 12000 || compared < 200; trial++ {
		// Values in a range where positions -25..5 are interesting.
		v := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 || v > 1e12 || v < 1e-12 {
			continue
		}
		j := r.Intn(18) - 15
		res := mustFixed(t, v, j)
		checkFixedInvariants(t, res, 10, j)
		if !outputGrainDominates(v, j) {
			continue // paper semantics: only reads-back correctness is promised
		}
		compared++
		wantDigits, wantK, tie := fixedOracle(v, j)
		raw := digitsString(res.Digits)
		got := strings.TrimLeft(raw, "0")
		gotK := res.K - (len(raw) - len(got)) // leading zeros shift K
		if got == "" {
			got, gotK = "0", j+1
		}
		if got != wantDigits || gotK != wantK {
			if tie {
				continue // both roundings acceptable on an exact tie
			}
			t.Fatalf("FixedFormat(%g, j=%d) = %q K=%d (raw %q K=%d), oracle %q K=%d",
				v, j, got, gotK, digitsString(res.Digits), res.K, wantDigits, wantK)
		}
	}
	if compared < 200 {
		t.Fatalf("too few exact-rounding cases compared: %d", compared)
	}
}

func TestFixedFormatAgainstStrconvF(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		v := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 || v > 1e15 || v < 1e-6 {
			continue
		}
		prec := r.Intn(12)
		j := -prec
		res := mustFixed(t, v, j)
		if !outputGrainDominates(v, j) {
			continue // paper semantics diverge from plain decimal rounding
		}
		if _, _, tie := fixedOracle(v, j); tie {
			continue // tie-breaking rules differ (paper: up, Go: even)
		}
		want := strconv.FormatFloat(v, 'f', prec, 64)
		got := renderFixedDecimal(res, j)
		if got != want {
			t.Fatalf("FixedFormat(%v, j=%d) rendered %q, strconv %%f says %q", v, j, got, want)
		}
	}
}

// TestFixedFormatWideGapCharacterization pins the paper's "larger range"
// semantics on a concrete value: with the float gap wider than the output
// ulp, the algorithm may stop early and zero-fill, emitting a string that
// reads back exactly but differs from plain decimal rounding in its final
// significant digit.  Every emitted output must still read back to v.
func TestFixedFormatWideGapCharacterization(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 1500; trial++ {
		v := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 || v > 1e15 || v < 1e-15 {
			continue
		}
		j := r.Intn(18) - 15
		if !floatGrainDominates(v, j) {
			continue
		}
		res := mustFixed(t, v, j)
		s := "0." + digitsString(res.Digits[:res.NSig]) + "e" + strconv.Itoa(res.K)
		back, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("ParseFloat(%q): %v", s, err)
		}
		if back != v {
			t.Fatalf("FixedFormat(%g, j=%d) significant prefix %q reads back %g", v, j, s, back)
		}
	}
}

// renderFixedDecimal renders a fixed result as a plain decimal string with
// prec = -j fractional digits, for comparison with strconv.
func renderFixedDecimal(res Result, j int) string {
	var sb strings.Builder
	d := res.Digits
	k := res.K
	if k <= 0 {
		sb.WriteString("0")
	} else {
		for i := 0; i < k; i++ {
			if i < len(d) {
				sb.WriteByte('0' + d[i])
			} else {
				sb.WriteByte('0')
			}
		}
	}
	if j >= 0 {
		return sb.String()
	}
	sb.WriteByte('.')
	for pos := 0; pos < -j; pos++ {
		idx := k + pos
		if idx < 0 || idx >= len(d) {
			sb.WriteByte('0')
		} else {
			sb.WriteByte('0' + d[idx])
		}
	}
	return sb.String()
}

func TestFixedFormatCoarsePositions(t *testing.T) {
	cases := []struct {
		v      float64
		j      int
		digits string
		k      int
	}{
		{5, 2, "0", 3},   // 5 rounded to hundreds: 0
		{50, 2, "1", 3},  // exactly half: ties up to 100
		{80, 2, "1", 3},  // closer to 100
		{449, 2, "4", 3}, // 449 to hundreds: 400
		{500, 2, "5", 3},
		{949, 3, "1", 4},  // 949 to thousands: 1000
		{0.04, 0, "0", 1}, // rounds to 0 at the units position
		{0.6, 0, "1", 1},  // rounds to 1
	}
	for _, c := range cases {
		res := mustFixed(t, c.v, c.j)
		checkFixedInvariants(t, res, 10, c.j)
		if digitsString(res.Digits) != c.digits || res.K != c.k {
			t.Errorf("FixedFormat(%g, j=%d) = %q K=%d, want %q K=%d",
				c.v, c.j, digitsString(res.Digits), res.K, c.digits, c.k)
		}
	}
}

func TestFixedFormatRelativeCarry(t *testing.T) {
	// Rounding 9.97 to two digits carries into a new leading digit; the
	// relative driver must still deliver exactly two digits ("10" × 10⁰).
	res, err := FixedFormatRelative(fpformat.DecodeFloat64(9.97), 10, ReaderUnknown, 2)
	if err != nil {
		t.Fatal(err)
	}
	if digitsString(res.Digits) != "10" || res.K != 2 {
		t.Errorf("9.97@2 = %q K=%d, want \"10\" K=2", digitsString(res.Digits), res.K)
	}
	res, err = FixedFormatRelative(fpformat.DecodeFloat64(9.97), 10, ReaderUnknown, 1)
	if err != nil {
		t.Fatal(err)
	}
	if digitsString(res.Digits) != "1" || res.K != 2 {
		t.Errorf("9.97@1 = %q K=%d, want \"1\" K=2", digitsString(res.Digits), res.K)
	}
	// 9.9999999999 to various counts.
	for n := 1; n <= 8; n++ {
		res, err := FixedFormatRelative(fpformat.DecodeFloat64(9.9999999999), 10, ReaderUnknown, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Digits) != n {
			t.Errorf("9.9999999999@%d returned %d digits", n, len(res.Digits))
		}
		want := "1" + strings.Repeat("0", n-1)
		if digitsString(res.Digits) != want || res.K != 2 {
			t.Errorf("9.9999999999@%d = %q K=%d, want %q K=2", n, digitsString(res.Digits), res.K, want)
		}
	}
}

func TestFixedFormatRelativeCountAlwaysExact(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 2000; trial++ {
		v := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		n := 1 + r.Intn(25)
		res, err := FixedFormatRelative(fpformat.DecodeFloat64(v), 10, ReaderUnknown, n)
		if err != nil {
			t.Fatalf("relative(%g, %d): %v", v, n, err)
		}
		if len(res.Digits) != n {
			t.Fatalf("relative(%g, %d) returned %d digits", v, n, len(res.Digits))
		}
		checkFixedInvariants(t, res, 10, res.K-n)
	}
}

func TestFixedFormatRelative17RoundTrips(t *testing.T) {
	// 17 significant digits always distinguish doubles, so the rendered
	// string must parse back exactly (when fully significant).
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		v := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		res, err := FixedFormatRelative(fpformat.DecodeFloat64(v), 10, ReaderUnknown, 17)
		if err != nil {
			t.Fatal(err)
		}
		s := "0." + digitsString(res.Digits[:res.NSig]) + "e" + strconv.Itoa(res.K)
		back, err := strconv.ParseFloat(s, 64)
		if err != nil {
			continue // subnormal edges can overflow the exponent syntax
		}
		if back != v {
			t.Fatalf("17-digit output %q (NSig=%d) reads back %g, want %g", s, res.NSig, back, v)
		}
	}
}

func TestFixedFormatInsignificantTailCompletions(t *testing.T) {
	// For results with marks, ANY completion of the tail must read back to
	// the original value — the definition of insignificance.
	r := rand.New(rand.NewSource(6))
	tested := 0
	for trial := 0; trial < 4000 && tested < 400; trial++ {
		v := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 || v > 1e30 || v < 1e-30 {
			continue
		}
		n := 19 + r.Intn(10)
		res, err := FixedFormatRelative(fpformat.DecodeFloat64(v), 10, ReaderUnknown, n)
		if err != nil {
			t.Fatal(err)
		}
		if res.NSig == len(res.Digits) {
			continue
		}
		tested++
		for _, tail := range []string{
			strings.Repeat("0", n-res.NSig),
			strings.Repeat("9", n-res.NSig),
			randomDigits(r, n-res.NSig),
		} {
			s := "0." + digitsString(res.Digits[:res.NSig]) + tail + "e" + strconv.Itoa(res.K)
			back, err := strconv.ParseFloat(s, 64)
			if err != nil {
				t.Fatalf("ParseFloat(%q): %v", s, err)
			}
			if back != v {
				t.Fatalf("insignificant completion %q of %g reads back %g (NSig=%d)",
					s, v, back, res.NSig)
			}
		}
	}
	if tested < 50 {
		t.Fatalf("too few mark-bearing cases exercised: %d", tested)
	}
}

func randomDigits(r *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('0' + r.Intn(10))
	}
	return string(b)
}

func TestFixedFormatModesWidenRange(t *testing.T) {
	// With a nearest-even reader and an even mantissa, the fixed algorithm
	// may stop at an endpoint; the completions property must still hold.
	v := 1e23 // even mantissa, endpoint exactly 10^23
	res, err := FixedFormatRelative(fpformat.DecodeFloat64(v), 10, ReaderNearestEven, 25)
	if err != nil {
		t.Fatal(err)
	}
	checkFixedInvariants(t, res, 10, res.K-25)
	s := "0." + digitsString(res.Digits[:res.NSig]) + "e" + strconv.Itoa(res.K)
	back, err := strconv.ParseFloat(s, 64)
	if err != nil || back != v {
		t.Errorf("1e23 fixed output %q reads back %g (%v)", s, back, err)
	}
}

func TestFixedFormatErrors(t *testing.T) {
	good := fpformat.DecodeFloat64(1.5)
	if _, err := FixedFormat(good, 1, ReaderUnknown, 0); err == nil {
		t.Errorf("base 1 accepted")
	}
	if _, err := FixedFormatRelative(good, 10, ReaderUnknown, 0); err == nil {
		t.Errorf("zero digit count accepted")
	}
	if _, err := FixedFormatRelative(good, 10, ReaderUnknown, -3); err == nil {
		t.Errorf("negative digit count accepted")
	}
	if _, err := FixedFormat(fpformat.DecodeFloat64(0), 10, ReaderUnknown, 0); err == nil {
		t.Errorf("zero accepted")
	}
	if _, err := FixedFormatRelative(fpformat.DecodeFloat64(math.NaN()), 10, ReaderUnknown, 3); err == nil {
		t.Errorf("NaN accepted")
	}
}

func TestFixedFormatOtherBases(t *testing.T) {
	// 0.5 in base 2 at position -3 is exactly 0.100; all significant.
	res, err := FixedFormat(fpformat.DecodeFloat64(0.5), 2, ReaderUnknown, -3)
	if err != nil {
		t.Fatal(err)
	}
	checkFixedInvariants(t, res, 2, -3)
	if digitsString(res.Digits) != "100" || res.K != 0 || res.NSig != 3 {
		t.Errorf("0.5 base 2 j=-3: %q K=%d NSig=%d", digitsString(res.Digits), res.K, res.NSig)
	}
	// 255 in base 16 at position 0: "ff".
	res, err = FixedFormat(fpformat.DecodeFloat64(255), 16, ReaderUnknown, 0)
	if err != nil {
		t.Fatal(err)
	}
	if digitsString(res.Digits) != "ff" || res.K != 2 {
		t.Errorf("255 base 16: %q K=%d", digitsString(res.Digits), res.K)
	}
	// Base 36, relative.
	res, err = FixedFormatRelative(fpformat.DecodeFloat64(1295.0), 36, ReaderUnknown, 2)
	if err != nil {
		t.Fatal(err)
	}
	if digitsString(res.Digits) != "zz" || res.K != 2 {
		t.Errorf("1295 base 36: %q K=%d, want \"zz\" K=2", digitsString(res.Digits), res.K)
	}
}

func TestFixedVersusFreeConsistency(t *testing.T) {
	// Fixing the position at the free-format length must reproduce the
	// free-format digits (same value, same rounding target).
	for _, v := range interestingFloats(500, 7) {
		val := fpformat.DecodeFloat64(v)
		free, err := FreeFormat(val, 10, ScalingEstimate, ReaderUnknown)
		if err != nil {
			t.Fatal(err)
		}
		fixed, err := FixedFormat(val, 10, ReaderUnknown, free.K-len(free.Digits))
		if err != nil {
			t.Fatal(err)
		}
		if digitsString(fixed.Digits) != digitsString(free.Digits) || fixed.K != free.K {
			t.Fatalf("fixed@freelen(%g) = %q K=%d, free = %q K=%d",
				v, digitsString(fixed.Digits), fixed.K, digitsString(free.Digits), free.K)
		}
	}
}

// TestFixedBaseModeMatrixReadBack: fixed-format output in every base and
// reader mode, at a digit count that always pins a double in that base,
// must read back exactly through the matching correctly rounded reader
// (marks read as zeros).
func TestFixedBaseModeMatrixReadBack(t *testing.T) {
	modePairs := []struct {
		pm ReaderMode
		rm reader.RoundMode
	}{
		{ReaderUnknown, reader.NearestEven},
		{ReaderNearestEven, reader.NearestEven},
		{ReaderNearestAway, reader.NearestAway},
		{ReaderNearestTowardZero, reader.NearestTowardZero},
	}
	bases := []int{2, 3, 10, 16, 36}
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 250; i++ {
		v := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		val := fpformat.DecodeFloat64(v)
		for _, base := range bases {
			// Enough digits to pin any double in this base.
			n := int(54.0/math.Log2(float64(base))) + 2
			for _, mp := range modePairs {
				res, err := FixedFormatRelative(val, base, mp.pm, n)
				if err != nil {
					t.Fatalf("fixed(%g, base %d, %v): %v", v, base, mp.pm, err)
				}
				back, err := reader.Convert(reader.Number{
					Base: base, Digits: res.Digits[:res.NSig], K: res.K,
				}, fpformat.Binary64, mp.rm)
				if err != nil {
					t.Fatalf("convert back: %v", err)
				}
				f, err := back.Float64()
				if err != nil || f != v {
					t.Fatalf("fixed(%g, base %d, %v) = %v K=%d NSig=%d reads back %v",
						v, base, mp.pm, res.Digits, res.K, res.NSig, f)
				}
			}
		}
	}
}
