// Package core implements the floating-point printing algorithms of
// Burger & Dybvig, "Printing Floating-Point Numbers Quickly and
// Accurately" (PLDI 1996).
//
// The package provides:
//
//   - FreeFormat: the paper's free-format algorithm (Section 3), which
//     emits the shortest, correctly rounded digit string that reads back to
//     the original value under the reader's rounding mode.
//   - FixedFormat / FixedFormatRelative: the fixed-format algorithm
//     (Section 4), correctly rounded to an absolute digit position or a
//     digit count, with '#' marks for insignificant trailing digits.
//   - BasicFreeFormat: the Section 2 reference algorithm in exact rational
//     arithmetic, used as a test oracle for the optimized implementation.
//   - Three scaling strategies (Section 3.2): the Steele & White iterative
//     search, a floating-point-logarithm estimate with adjustment, and the
//     paper's two-flop estimator with a penalty-free fixup.
//
// All digit strings are produced as raw digit values (0..B-1) plus a scale
// factor K, representing V = 0.d₁d₂…dₙ × Bᴷ exactly as in the paper;
// rendering to text is left to callers.
package core

import (
	"fmt"

	"floatprint/internal/bignat"
	"floatprint/internal/fpformat"
)

// ReaderMode describes the rounding behavior of the floating-point *input*
// routine that will eventually read the printed digits back in.  It decides
// whether the exact endpoints of the rounding range (the midpoints between
// v and its neighbors) themselves round to v, which in turn lets the
// printer stop one digit earlier in boundary cases (Section 3: "If the
// input routine's rounding algorithm is known, V may be allowed to equal
// low or high or both").
type ReaderMode int

const (
	// ReaderUnknown makes no assumption about the reader: neither endpoint
	// may be produced.  This is the conservative default of Section 2.
	ReaderUnknown ReaderMode = iota
	// ReaderNearestEven assumes IEEE unbiased rounding (round half to
	// even): both endpoints round to v exactly when v's mantissa is even.
	ReaderNearestEven
	// ReaderNearestAway assumes the reader rounds ties away from zero:
	// for positive v the low endpoint rounds up to v, the high endpoint
	// rounds up past v.
	ReaderNearestAway
	// ReaderNearestTowardZero assumes the reader rounds ties toward zero:
	// for positive v the high endpoint rounds down to v, the low endpoint
	// rounds down past v.
	ReaderNearestTowardZero
)

func (m ReaderMode) String() string {
	switch m {
	case ReaderUnknown:
		return "unknown"
	case ReaderNearestEven:
		return "nearest-even"
	case ReaderNearestAway:
		return "nearest-away"
	case ReaderNearestTowardZero:
		return "nearest-toward-zero"
	}
	return fmt.Sprintf("ReaderMode(%d)", int(m))
}

// boundaryOK returns the low-ok?/high-ok? flags of the paper's Figure 1 for
// a positive value v under reader mode m.
func (m ReaderMode) boundaryOK(v fpformat.Value) (lowOK, highOK bool) {
	switch m {
	case ReaderNearestEven:
		even := v.MantissaEven()
		return even, even
	case ReaderNearestAway:
		return true, false
	case ReaderNearestTowardZero:
		return false, true
	default:
		return false, false
	}
}

// Scaling selects the strategy used to find the scale factor k
// (Section 3.2 and Table 2 of the paper).
type Scaling int

const (
	// ScalingEstimate is the paper's contribution: a two-flop logarithm
	// estimate that is within one of the correct k, combined with a fixup
	// step that makes the off-by-one case cost nothing.
	ScalingEstimate Scaling = iota
	// ScalingIterative is Steele & White's O(|log v|) search, the slow
	// baseline of Table 2.
	ScalingIterative
	// ScalingFloatLog computes k with a full floating-point logarithm and
	// adjusts by one if needed, the middle row of Table 2 (and the
	// approach David Gay's estimator refines).
	ScalingFloatLog
)

func (s Scaling) String() string {
	switch s {
	case ScalingEstimate:
		return "estimate"
	case ScalingIterative:
		return "iterative"
	case ScalingFloatLog:
		return "floatlog"
	}
	return fmt.Sprintf("Scaling(%d)", int(s))
}

// Result is a converted number V = 0.d₁d₂…dₙ × Bᴷ.
type Result struct {
	// Digits holds the digit values d₁…dₙ (each 0..B-1, not ASCII).
	Digits []byte
	// K is the scale: the radix point sits K digits to the right of the
	// start of Digits (negative K means leading zeros after the point).
	K int
	// NSig is the number of leading significant digits.  Digits[NSig:]
	// are insignificant placeholders (printed as '#' marks) that may be
	// replaced by any digits without changing the value read back.
	// Free-format results always have NSig == len(Digits).
	NSig int
}

// powCaches holds one lock-free power cache per supported base, the analog
// of the paper's expt-t lookup table (Figure 2).  Reads are a single atomic
// snapshot load (see bignat.PowCache); the caches below are preloaded past
// the largest exponent a binary64 conversion can request, so steady-state
// traffic in the common bases never takes the grow lock at all.
var powCaches [37]*bignat.PowCache

// Preload spans: binary64 denormals put e >= -1074, so the input side needs
// 2^(1-e) up to 2^1075; on the output side |k| <= ~343 for base 10 (the
// paper's table stops at 10^325 for the narrower K&R double range), with
// margin for fixed-format positions beyond the value's own scale.
const (
	preloadPow2  = 1100
	preloadPow10 = 400
	preloadPow16 = 300
)

func init() {
	for b := 2; b <= 36; b++ {
		powCaches[b] = bignat.NewPowCache(uint64(b))
	}
	powCaches[2].Preload(preloadPow2)
	powCaches[10].Preload(preloadPow10)
	powCaches[16].Preload(preloadPow16)
}

// powersOf returns the shared power cache for base (2..36, the range
// checkArgs admits for output bases and fpformat defines for input bases).
func powersOf(base int) *bignat.PowCache {
	if base < 2 || base > 36 {
		panic(fmt.Sprintf("core: no power cache for base %d", base))
	}
	return powCaches[base]
}

// PowersOf exposes the shared lock-free power cache for base to sibling
// packages (the evaluation baselines use it so that timing comparisons
// measure algorithmic work, not redundant power recomputation).
func PowersOf(base int) *bignat.PowCache {
	return powersOf(base)
}

// checkArgs validates the common preconditions of the conversion entry
// points: a positive finite value and an output base in range.  The paper's
// algorithms are defined for positive v; callers handle sign, zero, Inf,
// and NaN (the public floatprint package does this).
func checkArgs(v fpformat.Value, base int) error {
	if base < 2 || base > 36 {
		return fmt.Errorf("core: output base %d out of range [2,36]", base)
	}
	if v.Class != fpformat.Normal && v.Class != fpformat.Denormal {
		return fmt.Errorf("core: value class %v is not a positive finite number", v.Class)
	}
	if v.Neg {
		return fmt.Errorf("core: value must be positive; handle sign in the caller")
	}
	if v.F.IsZero() {
		return fmt.Errorf("core: finite value with zero mantissa")
	}
	return nil
}
