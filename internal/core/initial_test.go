package core

import (
	"math"
	"math/rand"
	"testing"

	"floatprint/internal/bignat"
	"floatprint/internal/bigrat"
	"floatprint/internal/fpformat"
)

// TestTable1InitialValues validates the paper's Table 1 directly: for each
// of the four (e sign × boundary) rows, the constructed integers must
// satisfy r/s = v, m⁺/s = (v⁺−v)/2, and m⁻/s = (v−v⁻)/2 exactly, where v⁺
// is the virtual successor (f+1)·bᵉ and v⁻ follows the narrowed-gap rule.
func TestTable1InitialValues(t *testing.T) {
	check := func(v fpformat.Value, label string) {
		t.Helper()
		st := newState(v, 10, false, false)

		vr := valueRat(v)
		if bigrat.Cmp(bigrat.New(st.r, st.s), vr) != 0 {
			t.Fatalf("%s: r/s != v (r=%v s=%v)", label, st.r, st.s)
		}

		b := v.Fmt.Base
		gapHigh := ratPow(b, v.E)
		if bigrat.Cmp(bigrat.New(st.mp, st.s), bigrat.Half(gapHigh)) != 0 {
			t.Fatalf("%s: m+/s != (v+ - v)/2", label)
		}
		gapLow := gapHigh
		if v.IsBoundary() && v.E > v.Fmt.MinExp {
			gapLow = ratPow(b, v.E-1)
		}
		if bigrat.Cmp(bigrat.New(st.mm, st.s), bigrat.Half(gapLow)) != 0 {
			t.Fatalf("%s: m-/s != (v - v-)/2", label)
		}
	}

	// Row 1: e >= 0, not a boundary.
	check(fpformat.DecodeFloat64(float64(3<<53)), "row1")
	// Row 2: e >= 0, boundary (power of two with a large exponent).
	check(fpformat.DecodeFloat64(0x1p60), "row2")
	if !fpformat.DecodeFloat64(0x1p60).IsBoundary() {
		t.Fatal("2^60 should be a boundary case")
	}
	// Row 3: e < 0, not a boundary (includes denormals).
	check(fpformat.DecodeFloat64(0.3), "row3")
	check(fpformat.DecodeFloat64(5e-324), "row3-denormal")
	// Row 4: e < 0, boundary.
	check(fpformat.DecodeFloat64(1.0), "row4")
	check(fpformat.DecodeFloat64(0x1p-1022), "row4-min-normal-boundary")

	// Randomized sweep over all rows.
	r := rand.New(rand.NewSource(40))
	for i := 0; i < 500; i++ {
		v := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		check(fpformat.DecodeFloat64(v), "random")
	}
}

// TestTable1DenormalBoundaryExclusion: the smallest normal (f = b^(p-1),
// e = MinExp) must NOT take the narrow-gap row, since its predecessor is
// the top denormal at the same exponent.
func TestTable1DenormalBoundaryExclusion(t *testing.T) {
	v := fpformat.DecodeFloat64(math.Ldexp(1, -1022)) // smallest normal: f = 2^52, e = MinExp
	if v.E != v.Fmt.MinExp {
		t.Fatalf("unexpected decode of smallest normal: e=%d", v.E)
	}
	st := newState(v, 10, false, false)
	// Equal gaps on both sides: m+ == m-.
	if bignat.Cmp(st.mp, st.mm) != 0 {
		t.Fatalf("smallest normal should have symmetric gaps: m+=%v m-=%v", st.mp, st.mm)
	}
}

func TestOwnedCopyIsolation(t *testing.T) {
	// The power cache must never be corrupted by in-place digit-loop
	// mutation: convert the same value twice and require identical output.
	v := fpformat.DecodeFloat64(1e100)
	a, err := FreeFormat(v, 10, ScalingEstimate, ReaderNearestEven)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FreeFormat(v, 10, ScalingEstimate, ReaderNearestEven)
	if err != nil {
		t.Fatal(err)
	}
	if digitsString(a.Digits) != digitsString(b.Digits) || a.K != b.K {
		t.Fatalf("repeated conversion differs: power cache corrupted")
	}
	// And the cache still holds the true power.
	p := powersOf(10).Pow(100)
	if bignat.Cmp(p, bignat.PowUint(10, 100)) != 0 {
		t.Fatalf("10^100 cache entry corrupted")
	}
}

func TestScaleOpsCounts(t *testing.T) {
	// The estimator must be O(1) ops regardless of magnitude; the
	// iterative search must grow linearly with |log v|.
	for _, v := range []float64{1.5, 1e50, 1e-50, 1e300, 1e-300, 5e-324} {
		val := fpformat.DecodeFloat64(v)
		_, estOps, err := ScaleOps(val, 10, ScalingEstimate, ReaderNearestEven)
		if err != nil {
			t.Fatal(err)
		}
		if estOps > 12 {
			t.Errorf("estimate scaling of %g used %d ops; want O(1)", v, estOps)
		}
		_, iterOps, err := ScaleOps(val, 10, ScalingIterative, ReaderNearestEven)
		if err != nil {
			t.Fatal(err)
		}
		wantMin := int(math.Abs(math.Log10(math.Abs(v)))) // ≈ |k| steps at 2+ ops each
		if v == 5e-324 {
			wantMin = 300 // math.Log10 flushes subnormals on some platforms
		}
		if iterOps < wantMin {
			t.Errorf("iterative scaling of %g used only %d ops; expected >= %d", v, iterOps, wantMin)
		}
	}
}

func TestScaleOpsErrors(t *testing.T) {
	if _, _, err := ScaleOps(fpformat.DecodeFloat64(-1), 10, ScalingEstimate, ReaderNearestEven); err == nil {
		t.Errorf("negative value accepted")
	}
	if _, _, err := ScaleOps(fpformat.DecodeFloat64(1.5), 99, ScalingEstimate, ReaderNearestEven); err == nil {
		t.Errorf("bad base accepted")
	}
}

// TestEstimateScaleNeverOvershoots verifies the load-bearing property of
// the paper's estimator across magnitudes, formats, and bases: the
// estimate is k or k−1, never above k.
func TestEstimateScaleNeverOvershoots(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	bases := []int{2, 3, 10, 16, 36}
	for i := 0; i < 4000; i++ {
		v := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		val := fpformat.DecodeFloat64(v)
		base := bases[i%len(bases)]
		trueK, err := ExactScale(val, base, ReaderNearestEven)
		if err != nil {
			t.Fatal(err)
		}
		est := EstimateScale(val, base)
		if est > trueK {
			t.Fatalf("estimate %d overshoots true k %d for %g base %d", est, trueK, v, base)
		}
		if trueK-est > 1 {
			t.Fatalf("estimate %d undershoots true k %d by more than one for %g base %d",
				est, trueK, v, base)
		}
	}
}

func TestDigitLength(t *testing.T) {
	cases := []struct {
		n    uint64
		base int
		want int
	}{
		{1, 10, 1}, {9, 10, 1}, {10, 10, 2}, {99, 10, 2}, {100, 10, 3},
		{1, 3, 1}, {2, 3, 1}, {3, 3, 2}, {8, 3, 2}, {9, 3, 3},
		{255, 16, 2}, {256, 16, 3},
	}
	for _, c := range cases {
		if got := digitLength(bignat.FromUint64(c.n), c.base); got != c.want {
			t.Errorf("digitLength(%d, base %d) = %d, want %d", c.n, c.base, got, c.want)
		}
	}
	// Wide value.
	if got := digitLength(bignat.PowUint(10, 100), 10); got != 101 {
		t.Errorf("digitLength(10^100) = %d, want 101", got)
	}
}

func TestIncrementLastAndTrim(t *testing.T) {
	d, k := incrementLast([]byte{1, 2, 3}, 10, 5)
	if digitsString(d) != "124" || k != 5 {
		t.Errorf("simple increment wrong: %q %d", digitsString(d), k)
	}
	d, k = incrementLast([]byte{1, 9, 9}, 10, 5)
	if digitsString(d) != "200" || k != 5 {
		t.Errorf("ripple increment wrong: %q %d", digitsString(d), k)
	}
	d, k = incrementLast([]byte{9, 9}, 10, 5)
	if digitsString(d) != "100" || k != 6 {
		t.Errorf("carry-out increment wrong: %q %d", digitsString(d), k)
	}
	d, k = incrementLast([]byte{1, 1}, 2, 0)
	if digitsString(d) != "100" || k != 1 {
		t.Errorf("base-2 carry-out wrong: %q %d", digitsString(d), k)
	}
	if got := trimTrailingZeros([]byte{1, 0, 0}); digitsString(got) != "1" {
		t.Errorf("trim wrong: %q", digitsString(got))
	}
	if got := trimTrailingZeros([]byte{0}); digitsString(got) != "0" {
		t.Errorf("trim of single zero should keep one digit: %q", digitsString(got))
	}
}

// ratPowRoundTrip sanity for the helpers the reference algorithm uses.
func TestRatHelpers(t *testing.T) {
	if bigrat.Cmp(ratPow(10, 3), bigrat.FromUint64(1000)) != 0 {
		t.Errorf("ratPow(10,3) wrong")
	}
	neg := ratPow(10, -2)
	if bigrat.Cmp(bigrat.MulWord(neg, 100), bigrat.FromUint64(1)) != 0 {
		t.Errorf("ratPow(10,-2) wrong")
	}
	v := fpformat.DecodeFloat64(0.5)
	if bigrat.Cmp(valueRat(v), bigrat.New(bignat.FromUint64(1), bignat.FromUint64(2))) != 0 {
		t.Errorf("valueRat(0.5) != 1/2")
	}
}
