package core

import (
	"testing"

	"floatprint/internal/fpformat"
	"floatprint/internal/reader"
)

// TestBinary16ExhaustiveRoundTrip proves the paper's claim of format
// generality by brute force: EVERY positive finite binary16 value is
// printed in shortest base-10 form and read back with the matching
// correctly rounded reader, and must recover the exact bit pattern.
func TestBinary16ExhaustiveRoundTrip(t *testing.T) {
	count := 0
	for bits := uint64(1); bits < 0x7c00; bits++ { // positive finites
		v, err := fpformat.Binary16.DecodeBits(bits)
		if err != nil {
			t.Fatal(err)
		}
		res, err := FreeFormat(v, 10, ScalingEstimate, ReaderNearestEven)
		if err != nil {
			t.Fatalf("bits %04x: %v", bits, err)
		}
		back, err := reader.Convert(reader.Number{
			Base: 10, Digits: res.Digits, K: res.K,
		}, fpformat.Binary16, reader.NearestEven)
		if err != nil {
			t.Fatalf("bits %04x: convert: %v", bits, err)
		}
		gotBits, err := fpformat.EncodeBits(back)
		if err != nil || gotBits != bits {
			t.Fatalf("bits %04x -> %q K=%d -> bits %04x (%v)",
				bits, digitsString(res.Digits), res.K, gotBits, err)
		}
		count++
	}
	if count != 0x7c00-1 {
		t.Fatalf("covered %d values, want %d", count, 0x7c00-1)
	}
}

// TestBinary16ExhaustiveMinimality: for every positive finite binary16,
// no shorter digit string can round-trip (Theorem 5, verified by brute
// force against the matching reader).
func TestBinary16ExhaustiveMinimality(t *testing.T) {
	for bits := uint64(1); bits < 0x7c00; bits += 7 { // stride for speed
		v, err := fpformat.Binary16.DecodeBits(bits)
		if err != nil {
			t.Fatal(err)
		}
		res, err := FreeFormat(v, 10, ScalingEstimate, ReaderNearestEven)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Digits) == 1 {
			continue
		}
		// Truncate and round both ways; neither may round-trip.
		for _, cand := range [][]byte{
			append([]byte(nil), res.Digits[:len(res.Digits)-1]...),
			roundedPrefix(res.Digits, len(res.Digits)-1),
		} {
			k := res.K
			if cand == nil {
				continue
			}
			back, err := reader.Convert(reader.Number{Base: 10, Digits: cand, K: k},
				fpformat.Binary16, reader.NearestEven)
			if err != nil {
				continue
			}
			gotBits, err := fpformat.EncodeBits(back)
			if err == nil && gotBits == bits {
				t.Fatalf("bits %04x: shorter string %v×10^%d also round-trips (full %v)",
					bits, cand, k, res.Digits)
			}
		}
	}
}

// roundedPrefix returns the first n digits rounded up (carry-aware),
// or nil when the carry would change the digit count bookkeeping.
func roundedPrefix(digits []byte, n int) []byte {
	out := append([]byte(nil), digits[:n]...)
	for i := n - 1; i >= 0; i-- {
		if out[i] != 9 {
			out[i]++
			return out
		}
		out[i] = 0
	}
	return nil // carry out: same digit count only with K+1, covered above
}

// TestBinary16KnownValues spot-checks half-precision printing.
func TestBinary16KnownValues(t *testing.T) {
	cases := []struct {
		bits   uint64
		digits string
		k      int
	}{
		{0x3c00, "1", 1},    // 1.0
		{0x3555, "3333", 0}, // nearest half to 1/3 prints as 0.3333
		{0x0001, "6", -7},   // smallest denormal 5.9604645e-8 -> 6e-8
		{0x7bff, "655", 5},  // largest finite 65504 prints as 65500 (ulp is 32)
	}
	for _, c := range cases {
		v, err := fpformat.Binary16.DecodeBits(c.bits)
		if err != nil {
			t.Fatal(err)
		}
		res, err := FreeFormat(v, 10, ScalingEstimate, ReaderNearestEven)
		if err != nil {
			t.Fatal(err)
		}
		want := c.digits
		if got := digitsString(res.Digits); got != want || res.K != c.k {
			t.Errorf("binary16 %04x = %q K=%d, want %q K=%d", c.bits, got, res.K, want, c.k)
		}
	}
}
