package core

import (
	"floatprint/internal/bigrat"
	"floatprint/internal/fpformat"

	"floatprint/internal/bignat"
)

// BasicFreeFormat is a direct transliteration of the paper's Section 2.2
// basic algorithm, using exact (unreduced) rational arithmetic throughout.
// It exists as an executable specification: internal tests require
// FreeFormat, under every scaling strategy, to produce identical output.
// It is far slower than FreeFormat and should not be used for production
// printing.
func BasicFreeFormat(v fpformat.Value, base int, mode ReaderMode) (Result, error) {
	if err := checkArgs(v, base); err != nil {
		return Result{}, err
	}
	lowOK, highOK := mode.boundaryOK(v)

	// Step 1: the rounding range (low, high) from v's neighbors.  The
	// successor gap is always bᵉ; the predecessor gap narrows to bᵉ⁻¹ just
	// above a binade boundary.
	vr := valueRat(v)
	b := v.Fmt.Base
	gapHigh := ratPow(b, v.E)
	gapLow := gapHigh
	if v.IsBoundary() && v.E > v.Fmt.MinExp {
		gapLow = ratPow(b, v.E-1)
	}
	low := bigrat.Sub(vr, bigrat.Half(gapLow))
	high := bigrat.Add(vr, bigrat.Half(gapHigh))

	// Step 2: the smallest k with high <= B^k (strict when the endpoint is
	// itself admissible), found by brute iteration as in Steele & White.
	k := 0
	cmpHigh := func(k int) int { return bigrat.Cmp(high, ratPow(base, k)) }
	for tooLow(cmpHigh(k), highOK) {
		k++
	}
	for !tooLow(cmpHigh(k-1), highOK) {
		k--
	}

	// Steps 3 and 4: generate digits of q = v/Bᵏ, stopping as soon as the
	// emitted prefix (or the prefix with its last digit incremented) falls
	// strictly inside the rounding range.
	q := bigrat.Mul(vr, ratPow(base, -k))
	prefix := bigrat.FromUint64(0) // value of 0.d₁…dₙ × Bᵏ so far
	var digits []byte
	for {
		q = bigrat.MulWord(q, bignat.Word(base))
		dNat, frac := q.FloorFrac()
		q = frac
		d, _ := dNat.Uint64()
		digits = append(digits, byte(d))

		weight := ratPow(base, k-len(digits))
		prefix = bigrat.Add(prefix, bigrat.MulNat(weight, bignat.FromUint64(d)))
		upper := bigrat.Add(prefix, weight)

		cond1 := ratGreater(prefix, low, lowOK) // prefix rounds up to v
		cond2 := ratLess(upper, high, highOK)   // incremented prefix rounds down to v
		if !cond1 && !cond2 {
			continue
		}
		up := false
		switch {
		case cond1 && cond2:
			// Return whichever is closer to v; ties round up as in Figure 1.
			distDown := bigrat.Sub(vr, prefix)
			distUp := bigrat.Sub(upper, vr)
			up = bigrat.Cmp(distUp, distDown) <= 0
		case cond2:
			up = true
		}
		if up {
			digits, k = incrementLast(digits, base, k)
		}
		digits = trimTrailingZeros(digits)
		return Result{Digits: digits, K: k, NSig: len(digits)}, nil
	}
}

// tooLow interprets a comparison of high against Bᵏ: the scale is too low
// when high > Bᵏ, or high == Bᵏ with the endpoint admissible.
func tooLow(cmp int, highOK bool) bool {
	if highOK {
		return cmp >= 0
	}
	return cmp > 0
}

func ratGreater(a, b bigrat.Rat, orEqual bool) bool {
	c := bigrat.Cmp(a, b)
	return c > 0 || (orEqual && c == 0)
}

func ratLess(a, b bigrat.Rat, orEqual bool) bool {
	c := bigrat.Cmp(a, b)
	return c < 0 || (orEqual && c == 0)
}

// valueRat returns the exact rational value of a finite v = f × bᵉ.
func valueRat(v fpformat.Value) bigrat.Rat {
	b := v.Fmt.Base
	if v.E >= 0 {
		return bigrat.FromNat(bignat.Mul(v.F, powersOf(b).Pow(uint(v.E))))
	}
	return bigrat.New(v.F, powersOf(b).Pow(uint(-v.E)))
}

// ratPow returns baseᵏ as an exact rational, k of either sign.
func ratPow(base, k int) bigrat.Rat {
	if k >= 0 {
		return bigrat.FromNat(powersOf(base).Pow(uint(k)))
	}
	return bigrat.New(bignat.Nat{1}, powersOf(base).Pow(uint(-k)))
}
