package core

import (
	"floatprint/internal/bignat"
	"floatprint/internal/fpformat"
)

// state carries the integer-arithmetic representation of the conversion:
// the scaled value v = r/s and the half-gap widths m⁺/s = (v⁺−v)/2 and
// m⁻/s = (v−v⁻)/2, all sharing the explicit common denominator s
// (Section 3.1 of the paper).
type state struct {
	r, s, mp, mm  bignat.Nat
	hn            bignat.Nat // scratch for the r+m⁺ comparisons
	lowOK, highOK bool
	base          int       // output base B
	pows          *powTable // powers of B
	ops           int       // high-precision operations performed (Table 2 metric)
}

// ownedCopy clones a Nat that may be shared with a power cache, with slack
// capacity so the in-place ×B steps rarely reallocate.
func ownedCopy(n bignat.Nat) bignat.Nat {
	c := make(bignat.Nat, len(n), len(n)+4)
	copy(c, n)
	return c
}

// newState initializes r, s, m⁺, and m⁻ from the mantissa and exponent of v
// according to Table 1 of the paper.  The four rows are distinguished by
// the sign of e and by whether v sits just above a binade boundary
// (f = b^(p−1) with e above the minimum exponent), where the gap to the
// predecessor is one b-th of the gap to the successor.
func newState(v fpformat.Value, base int, lowOK, highOK bool) *state {
	f := v.F
	e := v.E
	b := v.Fmt.Base
	bPows := powersOf(b)
	boundary := v.IsBoundary() && v.E > v.Fmt.MinExp

	st := &state{lowOK: lowOK, highOK: highOK, base: base, pows: powersOf(base)}
	// m⁺ and m⁻ are copied out of the power cache (never shared) because
	// the digit loop multiplies them in place.
	switch {
	case e >= 0 && !boundary:
		// r = f·bᵉ·2, s = 2, m⁺ = m⁻ = bᵉ
		be := bPows.pow(uint(e))
		st.r = bignat.Shl(bignat.Mul(f, be), 1)
		st.s = bignat.FromUint64(2)
		st.mp = ownedCopy(be)
		st.mm = ownedCopy(be)
	case e >= 0 && boundary:
		// r = f·bᵉ⁺¹·2, s = b·2, m⁺ = bᵉ⁺¹, m⁻ = bᵉ
		be := bPows.pow(uint(e))
		be1 := bPows.pow(uint(e) + 1)
		st.r = bignat.Shl(bignat.Mul(f, be1), 1)
		st.s = bignat.FromUint64(uint64(2 * b))
		st.mp = ownedCopy(be1)
		st.mm = ownedCopy(be)
	case !boundary:
		// e < 0: r = f·2, s = b⁻ᵉ·2, m⁺ = m⁻ = 1
		st.r = bignat.Shl(f, 1)
		st.s = bignat.Shl(bPows.pow(uint(-e)), 1)
		st.mp = ownedCopy(bignat.Nat{1})
		st.mm = ownedCopy(bignat.Nat{1})
	default:
		// e < 0 at a boundary: r = f·b·2, s = b¹⁻ᵉ·2, m⁺ = b, m⁻ = 1
		st.r = bignat.Shl(bignat.MulWord(f, bignat.Word(b)), 1)
		st.s = bignat.Shl(bPows.pow(uint(1-e)), 1)
		st.mp = ownedCopy(bignat.FromUint64(uint64(b)))
		st.mm = ownedCopy(bignat.Nat{1})
	}
	return st
}

// tooLow reports whether the current scale underestimates k: the high
// endpoint v + m⁺/s reaches or exceeds 1 (i.e. Bᵏ at the current scale).
// When the high endpoint is an admissible output (highOK) the comparison is
// inclusive, matching "k is the smallest integer such that high < Bᵏ".
func (st *state) tooLow() bool {
	st.ops += 2 // add + compare
	st.hn = bignat.AddInto(st.hn, st.r, st.mp)
	if st.highOK {
		return bignat.Cmp(st.hn, st.s) >= 0
	}
	return bignat.Cmp(st.hn, st.s) > 0
}

// tooHigh reports whether the current scale overestimates k: even after
// one more digit position the high endpoint stays below 1/B.
func (st *state) tooHigh() bool {
	st.ops += 3 // add + multiply + compare
	st.hn = bignat.AddInto(st.hn, st.r, st.mp)
	st.hn = bignat.MulWordInPlace(st.hn, bignat.Word(st.base))
	if st.highOK {
		return bignat.Cmp(st.hn, st.s) < 0
	}
	return bignat.Cmp(st.hn, st.s) <= 0
}

// scaleByPow multiplies the state for a scale estimate est: a non-negative
// est multiplies the denominator by B^est, a negative one multiplies the
// numerators by B^(−est) (step 3 of the Section 3.1 procedure).
func (st *state) scaleByPow(est int) {
	if est != 0 {
		st.ops++ // one multiplication by a (cached) power
	}
	if est >= 0 {
		st.s = bignat.Mul(st.s, st.pows.pow(uint(est)))
		return
	}
	st.ops += 2 // two more multiplications on the numerator side
	scale := st.pows.pow(uint(-est))
	st.r = bignat.Mul(st.r, scale)
	st.mp = bignat.Mul(st.mp, scale)
	st.mm = bignat.Mul(st.mm, scale)
}

// stepMul advances the numerators one digit position: r, m⁺, m⁻ ×= B,
// mutating in place (the state owns these values exclusively).
func (st *state) stepMul() {
	st.ops += 3
	w := bignat.Word(st.base)
	st.r = bignat.MulWordInPlace(st.r, w)
	st.mp = bignat.MulWordInPlace(st.mp, w)
	st.mm = bignat.MulWordInPlace(st.mm, w)
}
