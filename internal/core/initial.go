package core

import (
	"sync"

	"floatprint/internal/bignat"
	"floatprint/internal/fpformat"
	"floatprint/internal/trace"
)

// state carries the integer-arithmetic representation of the conversion:
// the scaled value v = r/s and the half-gap widths m⁺/s = (v⁺−v)/2 and
// m⁻/s = (v−v⁻)/2, all sharing the explicit common denominator s
// (Section 3.1 of the paper).
//
// States are pooled: a conversion obtains one from newState and returns it
// via release, so the limb buffers behind r, s, m⁺, m⁻ and the scratch
// values are reused across conversions instead of reallocated.  Nothing in
// a Result may alias state storage (digit slices are always fresh).
type state struct {
	r, s, mp, mm  bignat.Nat
	hn            bignat.Nat // scratch for the r+m⁺ comparisons
	t1            bignat.Nat // scratch for ping-pong products (scaleByPow)
	lowOK, highOK bool
	base          int              // output base B
	pows          *bignat.PowCache // powers of B
	ops           int              // high-precision operations performed (Table 2 metric)
	// tr, when non-nil, receives the execution trace of this conversion.
	// Every instrumentation point below is guarded by a nil check, so the
	// untraced hot path pays one predicted branch per recording site and
	// nothing else.
	tr *trace.Conversion
}

var statePool = sync.Pool{New: func() any { return new(state) }}

// release returns st to the pool.  The limb buffers stay attached so the
// next conversion starts with warmed capacity; the trace pointer must not
// be (a pooled state may surface on another goroutine).
func (st *state) release() {
	st.pows = nil
	st.tr = nil
	statePool.Put(st)
}

// newState initializes r, s, m⁺, and m⁻ from the mantissa and exponent of v
// according to Table 1 of the paper.  The four rows are distinguished by
// the sign of e and by whether v sits just above a binade boundary
// (f = b^(p−1) with e above the minimum exponent), where the gap to the
// predecessor is one b-th of the gap to the successor.
func newState(v fpformat.Value, base int, lowOK, highOK bool) *state {
	f := v.F
	e := v.E
	b := v.Fmt.Base
	bPows := powersOf(b)
	boundary := v.IsBoundary() && v.E > v.Fmt.MinExp

	st := statePool.Get().(*state)
	st.lowOK, st.highOK = lowOK, highOK
	st.base = base
	st.pows = powersOf(base)
	st.ops = 0
	st.tr = nil
	// m⁺ and m⁻ are copied out of the power cache (never shared) because
	// the digit loop multiplies them in place; the copies land in the
	// pooled buffers.
	switch {
	case e >= 0 && !boundary:
		// r = f·bᵉ·2, s = 2, m⁺ = m⁻ = bᵉ
		be := bPows.Pow(uint(e))
		st.r = bignat.MulWordInPlace(bignat.MulInto(st.r, f, be), 2)
		st.s = append(st.s[:0], 2)
		st.mp = bignat.CopyInto(st.mp, be)
		st.mm = bignat.CopyInto(st.mm, be)
	case e >= 0 && boundary:
		// r = f·bᵉ⁺¹·2, s = b·2, m⁺ = bᵉ⁺¹, m⁻ = bᵉ
		be := bPows.Pow(uint(e))
		be1 := bPows.Pow(uint(e) + 1)
		st.r = bignat.MulWordInPlace(bignat.MulInto(st.r, f, be1), 2)
		st.s = append(st.s[:0], bignat.Word(2*b))
		st.mp = bignat.CopyInto(st.mp, be1)
		st.mm = bignat.CopyInto(st.mm, be)
	case !boundary:
		// e < 0: r = f·2, s = b⁻ᵉ·2, m⁺ = m⁻ = 1
		st.r = bignat.MulWordInPlace(bignat.CopyInto(st.r, f), 2)
		st.s = bignat.MulWordInPlace(bignat.CopyInto(st.s, bPows.Pow(uint(-e))), 2)
		st.mp = append(st.mp[:0], 1)
		st.mm = append(st.mm[:0], 1)
	default:
		// e < 0 at a boundary: r = f·b·2, s = b¹⁻ᵉ·2, m⁺ = b, m⁻ = 1
		st.r = bignat.MulWordInPlace(bignat.CopyInto(st.r, f), bignat.Word(2*b))
		st.s = bignat.MulWordInPlace(bignat.CopyInto(st.s, bPows.Pow(uint(1-e))), 2)
		st.mp = append(st.mp[:0], bignat.Word(b))
		st.mm = append(st.mm[:0], 1)
	}
	return st
}

// table1Case reports which row of the paper's Table 1 initializes the
// state for v, mirroring the branch structure of newState: 1 (e ≥ 0),
// 2 (e ≥ 0 at a binade boundary), 3 (e < 0), 4 (e < 0 at a boundary).
func table1Case(v fpformat.Value) int {
	boundary := v.IsBoundary() && v.E > v.Fmt.MinExp
	switch {
	case v.E >= 0 && !boundary:
		return 1
	case v.E >= 0:
		return 2
	case !boundary:
		return 3
	}
	return 4
}

// tooLow reports whether the current scale underestimates k: the high
// endpoint v + m⁺/s reaches or exceeds 1 (i.e. Bᵏ at the current scale).
// When the high endpoint is an admissible output (highOK) the comparison is
// inclusive, matching "k is the smallest integer such that high < Bᵏ".
func (st *state) tooLow() bool {
	st.ops += 2 // add + compare
	st.hn = bignat.AddInto(st.hn, st.r, st.mp)
	if st.highOK {
		return bignat.Cmp(st.hn, st.s) >= 0
	}
	return bignat.Cmp(st.hn, st.s) > 0
}

// tooHigh reports whether the current scale overestimates k: even after
// one more digit position the high endpoint stays below 1/B.
func (st *state) tooHigh() bool {
	st.ops += 3 // add + multiply + compare
	st.hn = bignat.AddInto(st.hn, st.r, st.mp)
	st.hn = bignat.MulWordInPlace(st.hn, bignat.Word(st.base))
	if st.highOK {
		return bignat.Cmp(st.hn, st.s) < 0
	}
	return bignat.Cmp(st.hn, st.s) <= 0
}

// scaleByPow multiplies the state for a scale estimate est: a non-negative
// est multiplies the denominator by B^est, a negative one multiplies the
// numerators by B^(−est) (step 3 of the Section 3.1 procedure).  Products
// ping-pong through the t1 scratch so the pooled buffers are reused.
func (st *state) scaleByPow(est int) {
	if est == 0 {
		return // B^0 = 1: multiplying through would only copy
	}
	st.ops++ // one multiplication by a (cached) power
	if est > 0 {
		st.s, st.t1 = bignat.MulInto(st.t1, st.s, st.pows.Pow(uint(est))), st.s
		return
	}
	st.ops += 2 // two more multiplications on the numerator side
	scale := st.pows.Pow(uint(-est))
	st.r, st.t1 = bignat.MulInto(st.t1, st.r, scale), st.r
	st.mp, st.t1 = bignat.MulInto(st.t1, st.mp, scale), st.mp
	st.mm, st.t1 = bignat.MulInto(st.t1, st.mm, scale), st.mm
}

// stepMul advances the numerators one digit position: r, m⁺, m⁻ ×= B,
// mutating in place (the state owns these values exclusively).
func (st *state) stepMul() {
	st.ops += 3
	w := bignat.Word(st.base)
	st.r = bignat.MulWordInPlace(st.r, w)
	st.mp = bignat.MulWordInPlace(st.mp, w)
	st.mm = bignat.MulWordInPlace(st.mm, w)
}
