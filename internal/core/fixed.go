package core

import (
	"fmt"

	"floatprint/internal/bignat"
	"floatprint/internal/fpformat"
	"floatprint/internal/trace"
)

// FixedFormat converts the positive finite value v to a correctly rounded
// digit string in the given base whose last digit has weight Bʲ (an
// *absolute* digit position in the paper's terms: j = 0 stops at the units
// digit, j = −2 at the hundredths digit).  Digits beyond the value's
// precision are reported as insignificant via Result.NSig and rendered as
// '#' marks (Section 4 of the paper).  The result always satisfies
// len(Digits) == K − j.
//
// The reader mode plays the same endpoint-admissibility role as in free
// format; ReaderUnknown reproduces the paper exactly.
func FixedFormat(v fpformat.Value, base int, mode ReaderMode, j int) (Result, error) {
	return FixedFormatTraced(v, base, mode, j, nil)
}

// FixedFormatTraced is FixedFormat recording the conversion's execution
// trace into tr when non-nil (reset first); with tr nil it is exactly
// FixedFormat.
func FixedFormatTraced(v fpformat.Value, base int, mode ReaderMode, j int, tr *trace.Conversion) (Result, error) {
	if err := checkArgs(v, base); err != nil {
		return Result{}, err
	}
	lowOK, highOK := mode.boundaryOK(v)
	st := newState(v, base, lowOK, highOK)
	st.tr = tr
	defer st.release()
	if tr != nil {
		tr.Reset()
		tr.Backend = trace.BackendExactFixed
		tr.Base = base
		tr.Mode = mode.String()
		tr.LowOK, tr.HighOK = lowOK, highOK
		tr.Table1Case = table1Case(v)
		tr.Position = j
	}

	// Compute the output half-ulp Bʲ/2 as a numerator over the common
	// denominator s.  For negative j every quantity is pre-scaled by B⁻ʲ
	// so the half-ulp stays an integer (s always carries a factor of 2).
	var mOut bignat.Nat
	if j >= 0 {
		mOut = bignat.Mul(bignat.Shr(st.s, 1), st.pows.Pow(uint(j)))
	} else {
		mOut = bignat.Shr(st.s, 1)
		factor := st.pows.Pow(uint(-j))
		st.r = bignat.Mul(st.r, factor)
		st.s = bignat.Mul(st.s, factor)
		st.mp = bignat.Mul(st.mp, factor)
		st.mm = bignat.Mul(st.mm, factor)
	}

	// Widen the rounding range to the union of the value's own range and
	// the requested precision ("let low be the lesser of (v+v⁻)/2 and
	// v − Bʲ/2, and let high be the greater of (v+v⁺)/2 and v + Bʲ/2").
	// An endpoint contributed by the output precision is itself a valid
	// correctly rounded output, so the corresponding termination condition
	// becomes inclusive.
	if bignat.Cmp(mOut, st.mp) >= 0 {
		st.mp = mOut.Clone() // cloned: m⁺ and m⁻ are mutated independently
		st.highOK = true
	}
	if bignat.Cmp(mOut, st.mm) >= 0 {
		st.mm = mOut.Clone()
		st.lowOK = true
	}

	// Scale.  The expanded high endpoint can dwarf v (tiny value printed
	// to a coarse position), which the value-based estimate cannot see, so
	// the estimate is floored at j−1; the fixup loop does the rest.
	floorK := j - 1
	k := st.scaleEstimate(v, &floorK)
	if tr != nil {
		tr.ScaleMethod = ScalingEstimate.String()
		tr.ScaleK = k
		tr.FixupSteps = k - tr.EstimateK
	}

	if k <= j {
		res, err := fixedAllRounded(st, j, k)
		if tr == nil || err != nil {
			return res, err
		}
		tr.K = res.K
		tr.Digits = len(res.Digits)
		tr.NSig = res.NSig
		tr.RoundedUp = res.Digits[0] == 1
		tr.Ops = st.ops
		return res, nil
	}

	maxDigits := k - j
	digits := make([]byte, 0, maxDigits)
	var up bool
	term := termination{}
	for {
		d := st.nextDigit()
		digits = append(digits, d)
		term = st.conditions()
		if term.tc1 || term.tc2 {
			up = st.roundUp(term)
			st.recordLoop(len(digits), term, up)
			break
		}
		if len(digits) == maxDigits {
			// Unreachable: with m± at least Bʲ/2 a termination condition
			// must hold by position k−j (see DESIGN.md); guard anyway.
			return Result{}, fmt.Errorf("core: fixed-format loop overran position %d (internal bug)", j)
		}
		st.stepMul()
	}
	if up {
		// A rippling carry can grow the digit string by one and raise K,
		// which also moves the final position: len stays == K − j.
		var carried int
		digits, carried = incrementLast(digits, base, k)
		if tr != nil {
			tr.CarriedK = carried != k
		}
		k = carried
		maxDigits = k - j
	}

	// Fill the remaining positions: zeros while the digit position is
	// still significant, then insignificance marks.  Position t > n is
	// insignificant when incrementing the digit at position t−1 — adding
	// B^(k−(t−1)) to the output value P — yields a number that still reads
	// back within the rounding range: P + B^(k−(t−1)) <= high, which in
	// the scaled integers is (r + m⁺ − up·s)·B^(t−1−n) >= s.  (Inclusive
	// comparison: the bound is the unattained supremum of the possible
	// tails, so equality keeps every tail strictly inside.)
	nsig := len(digits)
	if len(digits) < maxDigits {
		acc := bignat.Add(st.r, st.mp)
		if up {
			acc = bignat.Sub(acc, st.s)
		}
		marking := false
		for m := len(digits); m < maxDigits; m++ {
			if !marking && bignat.Cmp(acc, st.s) >= 0 {
				marking = true
				nsig = m
			}
			digits = append(digits, 0)
			if !marking {
				acc = bignat.MulWordInPlace(acc, bignat.Word(st.base))
			}
		}
		if !marking {
			nsig = len(digits)
		}
	}
	if tr != nil {
		tr.K = k
		tr.Digits = len(digits)
		tr.NSig = nsig
		tr.Ops = st.ops
	}
	return Result{Digits: digits, K: k, NSig: nsig}, nil
}

// fixedAllRounded handles k == j, where the requested position is at or
// above the leading digit of high and the output is a single digit at
// position j: 0 when v < Bʲ/2, 1 (i.e. the value Bʲ) when v > Bʲ/2, ties
// rounding up.  After scaling, v·B^(1−k) = r/s, so the comparison
// v ≷ Bʲ/2 = Bᵏ/2 becomes 2r ≷ B·s.
func fixedAllRounded(st *state, j, k int) (Result, error) {
	if k < j {
		return Result{}, fmt.Errorf("core: scale k=%d below requested position j=%d (internal bug)", k, j)
	}
	c := bignat.Cmp(bignat.Shl(st.r, 1), bignat.MulWord(st.s, bignat.Word(st.base)))
	d := byte(0)
	if c >= 0 {
		d = 1
	}
	return Result{Digits: []byte{d}, K: j + 1, NSig: 1}, nil
}

// FixedFormatRelative converts v to exactly n significant digit positions
// (a *relative* digit position: the count of digits to print).  The
// absolute position j = K − n depends on K, which itself can depend on j
// when rounding at the requested precision carries into a new leading
// digit (9.97 printed to two digits is "10"); the paper resolves the cycle
// by estimating K from v alone and refining once, which the loop below
// performs (it converges in at most two passes).
func FixedFormatRelative(v fpformat.Value, base int, mode ReaderMode, n int) (Result, error) {
	return FixedFormatRelativeTraced(v, base, mode, n, nil)
}

// FixedFormatRelativeTraced is FixedFormatRelative recording the
// conversion's execution trace into tr when non-nil.  Each refinement pass
// overwrites the record, so the trace describes the pass that produced the
// returned digits, with Refinements counting the passes taken.
func FixedFormatRelativeTraced(v fpformat.Value, base int, mode ReaderMode, n int, tr *trace.Conversion) (Result, error) {
	if n <= 0 {
		return Result{}, fmt.Errorf("core: digit count %d must be positive", n)
	}
	if err := checkArgs(v, base); err != nil {
		return Result{}, err
	}
	j := estimateK(v, base) - n
	for iter := 0; iter < 4; iter++ {
		res, err := FixedFormatTraced(v, base, mode, j, tr)
		if err != nil {
			return Result{}, err
		}
		if len(res.Digits) == n {
			if tr != nil {
				tr.RelativeN = n
				tr.Refinements = iter + 1
			}
			return res, nil
		}
		j = res.K - n
	}
	return Result{}, fmt.Errorf("core: relative position failed to converge for n=%d (internal bug)", n)
}
