package core

import (
	"fmt"

	"floatprint/internal/bignat"
	"floatprint/internal/fpformat"
	"floatprint/internal/trace"
)

// termination captures which of the paper's two stopping conditions held at
// the final digit.
type termination struct {
	tc1 bool // r ≤ m⁻ (or <): the digits as generated round up to v
	tc2 bool // r + m⁺ ≥ s (or >): incrementing the last digit rounds down to v
}

// conditions evaluates the termination conditions against the current
// remainder (Section 3.1: "Stop at the smallest n for which rₙ < m⁻ₙ or
// rₙ + m⁺ₙ > sₙ", with the inequalities made inclusive when the
// corresponding endpoint itself rounds to v).
func (st *state) conditions() termination {
	var t termination
	if st.lowOK {
		t.tc1 = bignat.Cmp(st.r, st.mm) <= 0
	} else {
		t.tc1 = bignat.Cmp(st.r, st.mm) < 0
	}
	st.hn = bignat.AddInto(st.hn, st.r, st.mp)
	if st.highOK {
		t.tc2 = bignat.Cmp(st.hn, st.s) >= 0
	} else {
		t.tc2 = bignat.Cmp(st.hn, st.s) > 0
	}
	return t
}

// nextDigit extracts one digit: d = ⌊r/s⌋, r = r mod s.  The scale
// invariant guarantees 0 <= d < B; a violation means a scaling bug, which
// is worth crashing loudly over rather than emitting wrong digits.
func (st *state) nextDigit() byte {
	d, r := bignat.DivModSmallQuotientInPlace(st.r, st.s)
	if d >= bignat.Word(st.base) {
		panic(fmt.Sprintf("core: digit %d out of range for base %d (scaling bug)", d, st.base))
	}
	st.r = r
	return byte(d)
}

// roundUp decides, once a termination condition holds, whether the last
// digit must be incremented: condition (2) alone forces rounding up,
// condition (1) alone forces rounding down, and when both hold the closer
// candidate wins, rounding up on a tie as in the paper's Figure 1.
func (st *state) roundUp(t termination) bool {
	switch {
	case t.tc1 && !t.tc2:
		return false
	case t.tc2 && !t.tc1:
		return true
	}
	return st.mulBy2Cmp() >= 0
}

// generate runs the free-format digit loop, returning the digits and
// whether the final digit is to be incremented.  The digit slice is always
// freshly allocated (it escapes into the Result, never back into the pool);
// 24 positions cover every binary64 shortest form (at most 17 digits) and
// most other formats without regrowth.
func (st *state) generate() (digits []byte, up bool) {
	digits = make([]byte, 0, 24)
	for {
		d := st.nextDigit()
		digits = append(digits, d)
		t := st.conditions()
		if t.tc1 || t.tc2 {
			up = st.roundUp(t)
			st.recordLoop(len(digits), t, up)
			return digits, up
		}
		st.stepMul()
	}
}

// recordLoop fills the generate-loop portion of the trace: iteration
// count, the termination condition(s) that fired, and the final rounding
// decision.  One call per conversion, after the loop — the loop body
// itself carries no instrumentation.
func (st *state) recordLoop(iterations int, t termination, up bool) {
	if st.tr == nil {
		return
	}
	st.tr.Iterations = iterations
	st.tr.TC1, st.tr.TC2 = t.tc1, t.tc2
	st.tr.TieBreak = t.tc1 && t.tc2
	st.tr.RoundedUp = up
}

// incrementLast adds one to the final digit, propagating carries.  If the
// carry ripples past the first digit the result gains a leading 1 and the
// scale K rises by one (footnote 2 of the paper).  The returned slice may
// be the input slice modified in place.
func incrementLast(digits []byte, base int, k int) ([]byte, int) {
	for i := len(digits) - 1; i >= 0; i-- {
		if digits[i] != byte(base-1) {
			digits[i]++
			return digits, k
		}
		digits[i] = 0
	}
	return append([]byte{1}, digits...), k + 1
}

// trimTrailingZeros removes trailing zero digits (free format only, where
// a trailing zero would contradict minimality except transiently after a
// rippling carry).
func trimTrailingZeros(digits []byte) []byte {
	n := len(digits)
	for n > 1 && digits[n-1] == 0 {
		n--
	}
	return digits[:n]
}

// FreeFormat converts the positive finite value v to the shortest digit
// string in the given output base that reads back as v under the given
// reader rounding mode, using the selected scaling strategy.  The result
// is correctly rounded: |V − v| is at most half the weight of the last
// digit (output conditions (1) and (2) of Section 2.2).
func FreeFormat(v fpformat.Value, base int, method Scaling, mode ReaderMode) (Result, error) {
	return FreeFormatTraced(v, base, method, mode, nil)
}

// FreeFormatTraced is FreeFormat recording the conversion's execution
// trace into tr when non-nil: the Table-1 case, scale estimate versus
// final scale (whether the penalty-free fixup fired), generate-loop
// iteration count, and the final rounding decision.  The record is reset
// before filling.  Tracing never changes the digits: with tr nil this is
// exactly FreeFormat, and every instrumentation point is a nil check.
func FreeFormatTraced(v fpformat.Value, base int, method Scaling, mode ReaderMode, tr *trace.Conversion) (Result, error) {
	if err := checkArgs(v, base); err != nil {
		return Result{}, err
	}
	lowOK, highOK := mode.boundaryOK(v)
	st := newState(v, base, lowOK, highOK)
	st.tr = tr
	defer st.release()
	if tr != nil {
		tr.Reset()
		tr.Backend = trace.BackendExactFree
		tr.Base = base
		tr.Mode = mode.String()
		tr.LowOK, tr.HighOK = lowOK, highOK
		tr.Table1Case = table1Case(v)
	}
	k := st.scale(method, v)
	digits, up := st.generate()
	if up {
		var carried int
		digits, carried = incrementLast(digits, base, k)
		if tr != nil {
			tr.CarriedK = carried != k
		}
		k = carried
	}
	digits = trimTrailingZeros(digits)
	if tr != nil {
		tr.K = k
		tr.Digits = len(digits)
		tr.NSig = len(digits)
		tr.Ops = st.ops
	}
	return Result{Digits: digits, K: k, NSig: len(digits)}, nil
}
