package core

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"floatprint/internal/bignat"
	"floatprint/internal/fpformat"
)

// fpformatNat builds a mantissa for synthetic-format tests.
func fpformatNat(x uint64) bignat.Nat { return bignat.FromUint64(x) }

// digitsString renders raw digit values as text for comparison.
func digitsString(digits []byte) string {
	var sb strings.Builder
	for _, d := range digits {
		sb.WriteByte("0123456789abcdefghijklmnopqrstuvwxyz"[d])
	}
	return sb.String()
}

// strconvShortest returns Go's shortest digits and K (V = 0.ddd × 10ᴷ) for
// a positive float64, via strconv's scientific format.
func strconvShortest(t *testing.T, v float64) (string, int) {
	t.Helper()
	s := strconv.FormatFloat(v, 'e', -1, 64)
	mant, expStr, ok := strings.Cut(s, "e")
	if !ok {
		t.Fatalf("unexpected strconv output %q", s)
	}
	exp, err := strconv.Atoi(expStr)
	if err != nil {
		t.Fatalf("bad exponent in %q: %v", s, err)
	}
	digits := strings.Replace(mant, ".", "", 1)
	digits = strings.TrimRight(digits, "0")
	if digits == "" {
		digits = "0"
	}
	return digits, exp + 1
}

// interestingFloats is a corpus of structurally varied positive doubles.
func interestingFloats(n int, seed int64) []float64 {
	vs := []float64{
		1, 2, 3, 10, 100, 0.5, 0.1, 0.3, 1.0 / 3.0, 2.0 / 3.0,
		math.Pi, math.E, math.Sqrt2,
		1e23, 9.109383632e-31, 6.02214076e23, 5e-324,
		math.SmallestNonzeroFloat64, math.MaxFloat64,
		0x1p-1022,                    // smallest normal
		math.Nextafter(0x1p-1022, 0), // largest denormal
		math.Nextafter(1, 2),         // 1 + ulp
		math.Nextafter(1, 0),         // 1 - ulp/2 (boundary case)
		math.Nextafter(2, 1),         // boundary from above
		123456789012345680000, 1e300, 1e-300, 7.038531e-26,
		8.98846567431158e307, 2.2250738585072014e-308,
		// Values that famously stress float printing/parsing.
		2.2250738585072011e-308, 0.69314718055994531,
	}
	r := rand.New(rand.NewSource(seed))
	for len(vs) < n {
		x := math.Float64frombits(r.Uint64())
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
			continue
		}
		vs = append(vs, math.Abs(x))
	}
	return vs
}

// acceptableTie reports whether got differs from strconv's choice only by
// an exact-tie rounding decision: same digit count, and the rendered string
// still parses back to v.  The paper breaks ties upward (Figure 1) while
// Go's Ryu breaks them to even; both outputs are correct shortest forms.
func acceptableTie(gotDigits string, gotK int, wantDigits string, v float64, bitSize int) bool {
	if len(gotDigits) != len(wantDigits) {
		return false
	}
	s := "0." + gotDigits + "e" + strconv.Itoa(gotK)
	back, err := strconv.ParseFloat(s, bitSize)
	return err == nil && back == v
}

func TestFreeFormatAgainstStrconv(t *testing.T) {
	for _, method := range []Scaling{ScalingEstimate, ScalingIterative, ScalingFloatLog} {
		for _, v := range interestingFloats(4000, 10) {
			res, err := FreeFormat(fpformat.DecodeFloat64(v), 10, method, ReaderNearestEven)
			if err != nil {
				t.Fatalf("%s: FreeFormat(%g): %v", method, v, err)
			}
			wantDigits, wantK := strconvShortest(t, v)
			gotDigits := digitsString(res.Digits)
			if (gotDigits != wantDigits || res.K != wantK) &&
				!acceptableTie(gotDigits, res.K, wantDigits, v, 64) {
				t.Fatalf("%s: FreeFormat(%g) = %q K=%d, strconv says %q K=%d",
					method, v, gotDigits, res.K, wantDigits, wantK)
			}
			if res.NSig != len(res.Digits) {
				t.Fatalf("free format NSig %d != len %d", res.NSig, len(res.Digits))
			}
		}
	}
}

func TestFreeFormatExhaustiveFloat32Sample(t *testing.T) {
	// A deterministic stratified sweep across the whole float32 range:
	// every exponent appears, with varying mantissa patterns.
	for bits := uint32(0); bits < 1<<31; bits += 0x000937 {
		v := math.Float32frombits(bits)
		if v != v || math.IsInf(float64(v), 0) || v == 0 {
			continue
		}
		res, err := FreeFormat(fpformat.DecodeFloat32(v), 10, ScalingEstimate, ReaderNearestEven)
		if err != nil {
			t.Fatalf("FreeFormat(%g): %v", v, err)
		}
		s := strconv.FormatFloat(float64(v), 'e', -1, 32)
		mant, expStr, _ := strings.Cut(s, "e")
		exp, _ := strconv.Atoi(expStr)
		wantDigits := strings.TrimRight(strings.Replace(mant, ".", "", 1), "0")
		if wantDigits == "" {
			wantDigits = "0"
		}
		got := digitsString(res.Digits)
		if (got != wantDigits || res.K != exp+1) &&
			!acceptableTie(got, res.K, wantDigits, float64(v), 32) {
			t.Fatalf("float32 %b: got %q K=%d, want %q K=%d", bits, got, res.K, wantDigits, exp+1)
		}
	}
}

func TestFreeFormatMatchesBasicAlgorithm(t *testing.T) {
	modes := []ReaderMode{ReaderUnknown, ReaderNearestEven, ReaderNearestAway, ReaderNearestTowardZero}
	bases := []int{2, 3, 10, 16, 36}
	vs := interestingFloats(120, 11)
	for _, v := range vs {
		val := fpformat.DecodeFloat64(v)
		for _, base := range bases {
			for _, mode := range modes {
				want, err := BasicFreeFormat(val, base, mode)
				if err != nil {
					t.Fatalf("BasicFreeFormat(%g, %d, %v): %v", v, base, mode, err)
				}
				for _, method := range []Scaling{ScalingEstimate, ScalingIterative, ScalingFloatLog} {
					got, err := FreeFormat(val, base, method, mode)
					if err != nil {
						t.Fatalf("FreeFormat(%g, %d, %v, %v): %v", v, base, method, mode, err)
					}
					if digitsString(got.Digits) != digitsString(want.Digits) || got.K != want.K {
						t.Fatalf("FreeFormat(%g, base %d, %v, %v) = %q K=%d; basic algorithm says %q K=%d",
							v, base, method, mode, digitsString(got.Digits), got.K,
							digitsString(want.Digits), want.K)
					}
				}
			}
		}
	}
}

func TestFreeFormatBinary32MatchesBasic(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 150; i++ {
		v := math.Float32frombits(r.Uint32())
		if v != v || math.IsInf(float64(v), 0) || v == 0 {
			continue
		}
		val := fpformat.DecodeFloat32(float32(math.Abs(float64(v))))
		for _, base := range []int{10, 7} {
			want, err := BasicFreeFormat(val, base, ReaderNearestEven)
			if err != nil {
				t.Fatal(err)
			}
			got, err := FreeFormat(val, base, ScalingEstimate, ReaderNearestEven)
			if err != nil {
				t.Fatal(err)
			}
			if digitsString(got.Digits) != digitsString(want.Digits) || got.K != want.K {
				t.Fatalf("binary32 %g base %d mismatch", v, base)
			}
		}
	}
}

func TestFreeFormatRoundTrips(t *testing.T) {
	// Output read back with Go's correctly rounding parser must recover the
	// value exactly — the paper's information-preservation theorem — for
	// every reader mode whose assumptions ParseFloat (nearest-even) meets.
	// ReaderUnknown is valid for any reader; ReaderNearestEven matches
	// ParseFloat exactly.  (Away/TowardZero modes assume a different
	// reader, so they are excluded here and covered by the basic-algorithm
	// equivalence test.)
	for _, mode := range []ReaderMode{ReaderUnknown, ReaderNearestEven} {
		for _, v := range interestingFloats(3000, 13) {
			res, err := FreeFormat(fpformat.DecodeFloat64(v), 10, ScalingEstimate, mode)
			if err != nil {
				t.Fatal(err)
			}
			s := "0." + digitsString(res.Digits) + "e" + strconv.Itoa(res.K)
			back, err := strconv.ParseFloat(s, 64)
			if err != nil {
				t.Fatalf("ParseFloat(%q): %v", s, err)
			}
			if back != v {
				t.Fatalf("mode %v: %q parsed back to %g, want %g", mode, s, back, v)
			}
		}
	}
}

func TestFreeFormatShortestProperty(t *testing.T) {
	// No (n-1)-digit number can round-trip (Theorem 5): truncating the
	// output and rounding it either way must yield a different float.
	for _, v := range interestingFloats(1500, 14) {
		res, err := FreeFormat(fpformat.DecodeFloat64(v), 10, ScalingEstimate, ReaderNearestEven)
		if err != nil {
			t.Fatal(err)
		}
		n := len(res.Digits)
		if n == 1 {
			continue
		}
		trunc := digitsString(res.Digits[:n-1])
		down := "0." + trunc + "e" + strconv.Itoa(res.K)
		upDigits, upK := incrementLast(append([]byte(nil), res.Digits[:n-1]...), 10, res.K)
		up := "0." + digitsString(upDigits) + "e" + strconv.Itoa(upK)
		for _, s := range []string{down, up} {
			back, err := strconv.ParseFloat(s, 64)
			if err != nil {
				// Rounding the prefix of MaxFloat64 upward overflows,
				// which certainly does not round-trip.
				continue
			}
			if back == v {
				t.Fatalf("shorter string %q also round-trips to %g; output %q was not minimal",
					s, v, digitsString(res.Digits))
			}
		}
	}
}

func TestFreeFormatReaderModes1e23(t *testing.T) {
	// The paper's flagship example: 10²³ falls exactly on the midpoint
	// above the double 99999999999999991611392, whose mantissa is even, so
	// a round-to-even reader maps "1e23" to it.
	v := fpformat.DecodeFloat64(1e23)

	even, err := FreeFormat(v, 10, ScalingEstimate, ReaderNearestEven)
	if err != nil {
		t.Fatal(err)
	}
	if digitsString(even.Digits) != "1" || even.K != 24 {
		t.Errorf("nearest-even 1e23 = %q K=%d, want \"1\" K=24", digitsString(even.Digits), even.K)
	}

	// Ties-toward-zero also accepts the high endpoint.
	tz, err := FreeFormat(v, 10, ScalingEstimate, ReaderNearestTowardZero)
	if err != nil {
		t.Fatal(err)
	}
	if digitsString(tz.Digits) != "1" || tz.K != 24 {
		t.Errorf("toward-zero 1e23 = %q K=%d, want \"1\" K=24", digitsString(tz.Digits), tz.K)
	}

	// A ties-away reader would push 10²³ up to the *next* double, so the
	// printer must not emit "1e23"; same for an unknown reader.
	for _, mode := range []ReaderMode{ReaderNearestAway, ReaderUnknown} {
		res, err := FreeFormat(v, 10, ScalingEstimate, mode)
		if err != nil {
			t.Fatal(err)
		}
		if digitsString(res.Digits) == "1" {
			t.Errorf("mode %v printed 1e23 despite inadmissible endpoint", mode)
		}
		s := "0." + digitsString(res.Digits) + "e" + strconv.Itoa(res.K)
		back, _ := strconv.ParseFloat(s, 64)
		if back != 1e23 {
			t.Errorf("mode %v output %q does not round-trip", mode, s)
		}
	}
}

func TestFreeFormatUnknownNeverShorterThanEven(t *testing.T) {
	// The conservative mode can only require more digits.
	for _, v := range interestingFloats(800, 15) {
		val := fpformat.DecodeFloat64(v)
		e, err := FreeFormat(val, 10, ScalingEstimate, ReaderNearestEven)
		if err != nil {
			t.Fatal(err)
		}
		u, err := FreeFormat(val, 10, ScalingEstimate, ReaderUnknown)
		if err != nil {
			t.Fatal(err)
		}
		if len(u.Digits) < len(e.Digits) {
			t.Fatalf("unknown mode shorter than nearest-even for %g: %d < %d",
				v, len(u.Digits), len(e.Digits))
		}
	}
}

func TestFreeFormatKnownValues(t *testing.T) {
	cases := []struct {
		v      float64
		base   int
		digits string
		k      int
	}{
		{0.3, 10, "3", 0}, // the paper's 0.3-not-0.2999999 example
		{1.0, 10, "1", 1},
		{100.0, 10, "1", 3},
		{0.5, 10, "5", 0},
		{0.1, 10, "1", 0},
		{5e-324, 10, "5", -323}, // smallest denormal
		{0.5, 2, "1", 0},
		{0.75, 2, "11", 0},
		{10.0, 16, "a", 1},
		{255.0, 16, "ff", 2},
		{1.0 / 3.0, 10, "3333333333333333", 0},
	}
	for _, c := range cases {
		res, err := FreeFormat(fpformat.DecodeFloat64(c.v), c.base, ScalingEstimate, ReaderNearestEven)
		if err != nil {
			t.Fatalf("FreeFormat(%g, %d): %v", c.v, c.base, err)
		}
		if got := digitsString(res.Digits); got != c.digits || res.K != c.k {
			t.Errorf("FreeFormat(%g, base %d) = %q K=%d, want %q K=%d",
				c.v, c.base, got, res.K, c.digits, res.K)
		}
	}
}

func TestFreeFormatPowersOfTwoBase2(t *testing.T) {
	// In base 2 every float prints with its own mantissa digits; powers of
	// two are a single 1.
	for e := -50; e <= 50; e++ {
		v := math.Ldexp(1, e)
		res, err := FreeFormat(fpformat.DecodeFloat64(v), 2, ScalingEstimate, ReaderNearestEven)
		if err != nil {
			t.Fatal(err)
		}
		if digitsString(res.Digits) != "1" || res.K != e+1 {
			t.Fatalf("2^%d in base 2 = %q K=%d", e, digitsString(res.Digits), res.K)
		}
	}
}

func TestFreeFormatErrors(t *testing.T) {
	good := fpformat.DecodeFloat64(1.5)
	if _, err := FreeFormat(good, 1, ScalingEstimate, ReaderNearestEven); err == nil {
		t.Errorf("base 1 accepted")
	}
	if _, err := FreeFormat(good, 37, ScalingEstimate, ReaderNearestEven); err == nil {
		t.Errorf("base 37 accepted")
	}
	if _, err := FreeFormat(fpformat.DecodeFloat64(-1.5), 10, ScalingEstimate, ReaderNearestEven); err == nil {
		t.Errorf("negative value accepted")
	}
	for _, bad := range []float64{0, math.Inf(1), math.NaN()} {
		if _, err := FreeFormat(fpformat.DecodeFloat64(bad), 10, ScalingEstimate, ReaderNearestEven); err == nil {
			t.Errorf("non-finite/zero value %v accepted", bad)
		}
	}
	if _, err := BasicFreeFormat(good, 37, ReaderNearestEven); err == nil {
		t.Errorf("basic algorithm accepted base 37")
	}
}

func TestFreeFormatWideFormats(t *testing.T) {
	// binary128-width values exercise the logarithm paths that cannot
	// represent v as a float64.  Round-trip through the basic algorithm.
	f := fpformat.Binary128
	mant := fpformat.DecodeFloat64(1.0 / 3.0).F
	for _, e := range []int{-16494, -12000, -52, 0, 5000, 16000} {
		v, err := f.FromParts(false, mant, e)
		if err != nil {
			t.Fatalf("FromParts(e=%d): %v", e, err)
		}
		want, err := BasicFreeFormat(v, 10, ReaderNearestEven)
		if err != nil {
			t.Fatal(err)
		}
		for _, method := range []Scaling{ScalingEstimate, ScalingFloatLog} {
			got, err := FreeFormat(v, 10, method, ReaderNearestEven)
			if err != nil {
				t.Fatal(err)
			}
			if digitsString(got.Digits) != digitsString(want.Digits) || got.K != want.K {
				t.Fatalf("binary128 e=%d method %v mismatch", e, method)
			}
		}
	}
}

func TestFreeFormatNonBinaryInputBase(t *testing.T) {
	// A synthetic decimal input format: v = f × 10^e, printed in base 7 and
	// base 10; the optimized path must match the rational specification.
	f, err := fpformat.New("dec9", 10, 9, -60, 60)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(16))
	for i := 0; i < 60; i++ {
		mant := uint64(r.Int63n(999999999) + 1)
		e := r.Intn(80) - 40
		v, err := f.FromParts(false, fpformatNat(mant), e)
		if err != nil {
			continue
		}
		for _, base := range []int{7, 10, 16} {
			want, err := BasicFreeFormat(v, base, ReaderNearestEven)
			if err != nil {
				t.Fatal(err)
			}
			got, err := FreeFormat(v, base, ScalingEstimate, ReaderNearestEven)
			if err != nil {
				t.Fatal(err)
			}
			if digitsString(got.Digits) != digitsString(want.Digits) || got.K != want.K {
				t.Fatalf("dec9 f=%d e=%d base %d: got %q K=%d want %q K=%d",
					mant, e, base, digitsString(got.Digits), got.K,
					digitsString(want.Digits), want.K)
			}
		}
	}
}

func TestReaderModeStrings(t *testing.T) {
	for m, want := range map[ReaderMode]string{
		ReaderUnknown: "unknown", ReaderNearestEven: "nearest-even",
		ReaderNearestAway: "nearest-away", ReaderNearestTowardZero: "nearest-toward-zero",
		ReaderMode(9): "ReaderMode(9)",
	} {
		if m.String() != want {
			t.Errorf("ReaderMode string %q != %q", m.String(), want)
		}
	}
	for s, want := range map[Scaling]string{
		ScalingEstimate: "estimate", ScalingIterative: "iterative",
		ScalingFloatLog: "floatlog", Scaling(9): "Scaling(9)",
	} {
		if s.String() != want {
			t.Errorf("Scaling string %q != %q", s.String(), want)
		}
	}
}
