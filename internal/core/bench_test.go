package core

import (
	"math"
	"math/rand"
	"testing"

	"floatprint/internal/bignat"
	"floatprint/internal/fpformat"
)

// corpusValues builds a deterministic value set with full exponent spread
// for the core-internal benchmarks.
func corpusValues(n int) []fpformat.Value {
	r := rand.New(rand.NewSource(99))
	vals := make([]fpformat.Value, 0, n)
	for len(vals) < n {
		v := math.Float64frombits(r.Uint64())
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		vals = append(vals, fpformat.DecodeFloat64(math.Abs(v)))
	}
	return vals
}

// offByOneValues filters to the values whose scale estimate is k−1 — the
// only cases where the fixup strategy matters at all.
func offByOneValues(n int) []fpformat.Value {
	var out []fpformat.Value
	for _, v := range corpusValues(n * 6) {
		k, err := ExactScale(v, 10, ReaderNearestEven)
		if err != nil {
			continue
		}
		if EstimateScale(v, 10) == k-1 {
			out = append(out, v)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// scaleEstimateNaiveFixup mirrors scaleEstimate but repairs an off-by-one
// estimate the expensive way the paper's Figure 2 does: multiply s by B and
// let the generate loop's entry multiplication run as usual — one extra
// big-number multiplication per conversion (four ×B steps instead of none).
func (st *state) scaleEstimateNaiveFixup(v fpformat.Value) int {
	k := estimateK(v, st.base)
	st.scaleByPow(k)
	if st.tooLow() {
		k++
		st.s = bignat.MulWord(st.s, bignat.Word(st.base))
	}
	st.stepMul()
	return k
}

// convertWith runs a full conversion with the chosen fixup strategy.
func convertWith(v fpformat.Value, naive bool) Result {
	lowOK, highOK := ReaderNearestEven.boundaryOK(v)
	st := newState(v, 10, lowOK, highOK)
	var k int
	if naive {
		k = st.scaleEstimateNaiveFixup(v)
	} else {
		k = st.scaleEstimate(v, nil)
	}
	digits, up := st.generate()
	if up {
		digits, k = incrementLast(digits, 10, k)
	}
	return Result{Digits: trimTrailingZeros(digits), K: k, NSig: len(digits)}
}

// TestNaiveFixupMatchesPenaltyFree guards the benchmark's premise: the two
// fixups are interchangeable in output, differing only in cost.
func TestNaiveFixupMatchesPenaltyFree(t *testing.T) {
	for _, v := range corpusValues(3000) {
		a := convertWith(v, false)
		b := convertWith(v, true)
		if a.K != b.K || digitsString(a.Digits) != digitsString(b.Digits) {
			t.Fatalf("fixup strategies disagree: %q K=%d vs %q K=%d",
				digitsString(a.Digits), a.K, digitsString(b.Digits), b.K)
		}
	}
}

// BenchmarkAblationFixupPenaltyFree and ...Naive reproduce DESIGN.md
// Ablation B on exactly the off-by-one population: the paper's claim is
// that "there is no penalty for an estimate that is off by one".
func BenchmarkAblationFixupPenaltyFree(b *testing.B) {
	vals := offByOneValues(2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		convertWith(vals[i%len(vals)], false)
	}
}

func BenchmarkAblationFixupNaive(b *testing.B) {
	vals := offByOneValues(2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		convertWith(vals[i%len(vals)], true)
	}
}

func BenchmarkFreeFormatByBase(b *testing.B) {
	vals := corpusValues(2048)
	for _, base := range []int{2, 10, 16, 36} {
		b.Run(map[int]string{2: "base2", 10: "base10", 16: "base16", 36: "base36"}[base],
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := FreeFormat(vals[i%len(vals)], base, ScalingEstimate, ReaderNearestEven); err != nil {
						b.Fatal(err)
					}
				}
			})
	}
}

func BenchmarkFixedFormatPositions(b *testing.B) {
	vals := corpusValues(2048)
	for _, n := range []int{5, 17, 40} {
		b.Run(map[int]string{5: "digits5", 17: "digits17", 40: "digits40"}[n],
			func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := FixedFormatRelative(vals[i%len(vals)], 10, ReaderUnknown, n); err != nil {
						b.Fatal(err)
					}
				}
			})
	}
}

func BenchmarkBasicAlgorithmReference(b *testing.B) {
	// The Section 2 rational-arithmetic specification, for scale: this is
	// what "unacceptably slow for practical use" looks like.
	vals := corpusValues(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BasicFreeFormat(vals[i%len(vals)], 10, ReaderNearestEven); err != nil {
			b.Fatal(err)
		}
	}
}
