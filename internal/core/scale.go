package core

import (
	"math"

	"floatprint/internal/bignat"
	"floatprint/internal/fpformat"
)

// estimateSlack is the constant subtracted from floating-point logarithm
// estimates so that rounding error can never push the estimate above the
// true value ("a small constant (chosen to be slightly greater than the
// largest possible error) is subtracted ... so that the ceiling of the
// result will be either k or k−1").
const estimateSlack = 1e-10

// scale determines the scale factor k and adjusts the state so digit
// generation can begin, using the selected strategy.  On return the state
// is positioned for generate: the first digit is ⌊r/s⌋ (the initial ×B
// multiplication of the paper's Figure 1 generate has already been folded
// in, or skipped when the penalty-free fixup made it unnecessary).
func (st *state) scale(method Scaling, v fpformat.Value) (k int) {
	switch method {
	case ScalingIterative:
		k = st.scaleIterative()
		if st.tr != nil {
			// Iterative search has no estimate to be wrong; record the
			// found k so FixupSteps reads 0 rather than nonsense.
			st.tr.EstimateK = k
		}
	case ScalingFloatLog:
		k = st.scaleFloatLog(v)
	default:
		k = st.scaleEstimate(v, nil)
	}
	if st.tr != nil {
		st.tr.ScaleMethod = method.String()
		st.tr.ScaleK = k
		st.tr.FixupSteps = k - st.tr.EstimateK
	}
	return k
}

// scaleIterative is Steele & White's search: repeatedly multiply one side
// by B until the scale is correct.  It performs O(|log_B v|)
// high-precision operations — the first row of Table 2.
func (st *state) scaleIterative() int {
	k := 0
	for st.tooLow() {
		k++
		st.ops++
		st.s = bignat.MulWordInPlace(st.s, bignat.Word(st.base))
	}
	for st.tooHigh() {
		k--
		st.stepMul()
	}
	st.stepMul() // fold in generate's entry multiplication
	return k
}

// scaleFloatLog estimates k with a floating-point logarithm of v itself,
// then verifies and adjusts by one if necessary — the middle row of
// Table 2.  Unlike the penalty-free fixup below, an off-by-one estimate
// here pays an extra multiplication of s by B, as in the paper's Figure 2.
func (st *state) scaleFloatLog(v fpformat.Value) int {
	logB := logBValue(v, st.base)
	k := int(math.Ceil(logB - estimateSlack))
	if st.tr != nil {
		st.tr.EstimateK = k
	}
	st.scaleByPow(k)
	for st.tooLow() {
		k++
		st.ops++
		st.s = bignat.MulWordInPlace(st.s, bignat.Word(st.base))
	}
	for st.tooHigh() {
		k--
		st.stepMul()
	}
	st.stepMul()
	return k
}

// scaleEstimate is the paper's fast scaling (Section 3.2): a two-flop
// estimate that never overshoots and undershoots by less than one, plus a
// fixup that charges nothing when the estimate is k−1 (the entry
// multiplication of generate is simply skipped, since r·B/(s·B) = r/s).
//
// floorK, when non-nil, lower-bounds the estimate; the fixed-format driver
// passes j−1 because its expanded high endpoint can exceed v by many
// orders of magnitude, which the value-based estimate knows nothing about.
func (st *state) scaleEstimate(v fpformat.Value, floorK *int) int {
	k := estimateK(v, st.base)
	if floorK != nil && *floorK > k {
		k = *floorK
	}
	if st.tr != nil {
		st.tr.EstimateK = k
	}
	st.scaleByPow(k)

	if st.tooLow() {
		// Penalty-free fixup: k was one too low.  Rather than multiplying
		// s by B and then having generate multiply r, m⁺, m⁻ by B (which
		// would cancel), skip both; the state is now implicitly one digit
		// position "folded in" (r/s = v·B^(1−k)).
		k++
		// When the input base exceeds the output base, or a floorK pushed
		// the estimate away from the value-derived one, the estimate can be
		// short by more than one; each further step costs a multiplication
		// of s, restoring correctness at iterative cost.  In the common
		// case (b <= B, no floor) the paper's bound guarantees the estimate
		// is within one, so no re-check runs at all — that absence is what
		// makes the fixup penalty-free.
		if v.Fmt.Base > st.base || floorK != nil {
			for {
				st.ops += 3 // add + multiply + compare
				st.hn = bignat.AddInto(st.hn, st.r, st.mp)
				st.t1 = bignat.MulWordInPlace(bignat.CopyInto(st.t1, st.s), bignat.Word(st.base))
				c := bignat.Cmp(st.hn, st.t1)
				if !(c > 0 || (c == 0 && st.highOK)) {
					break
				}
				k++
				st.ops++
				st.s = bignat.MulWordInPlace(st.s, bignat.Word(st.base))
			}
		}
		return k
	}
	for st.tooHigh() {
		// Unreachable for the paper's estimator (it never overshoots) but
		// kept so that a deliberately wrong floorK or a future estimator
		// bug degrades to extra work instead of wrong digits.
		k--
		st.stepMul()
	}
	st.stepMul()
	return k
}

// estimateK computes the paper's estimate ⌈(e + len_b(f) − 1)·log_B(b) − ε⌉
// of ⌈log_B v⌉.  Because (e + len_b(f) − 1) is ⌊log_b v⌋, the estimate
// never exceeds ⌈log_B v⌉ and (for b = 2, B > 2) undershoots by less than
// log_B 2 + ε < 1, so fixup needs at most one step.
func estimateK(v fpformat.Value, base int) int {
	b := v.Fmt.Base
	var l int
	if b == 2 {
		l = v.F.BitLen()
	} else {
		l = digitLength(v.F, b)
	}
	est := float64(v.E+l-1)*logOf(b, base) - estimateSlack
	return int(math.Ceil(est))
}

// logOf returns log_base2(base1) ≈ ln b / ln B, memoized for the 35×35
// grid of small bases the way Figure 2 memoizes 1/log(B).
func logOf(b, B int) float64 {
	return logTable[b] / logTable[B]
}

// logTable[i] = ln i for 2 <= i <= 36.
var logTable = func() [37]float64 {
	var t [37]float64
	for i := 2; i <= 36; i++ {
		t[i] = math.Log(float64(i))
	}
	return t
}()

// digitLength returns the length of f in base-b digits (f > 0).
func digitLength(f bignat.Nat, b int) int {
	// Estimate from the bit length, then correct by comparing against
	// b^(l-1) and b^l.
	pows := powersOf(b)
	l := int(float64(f.BitLen())*logOf(2, b)) + 1
	if l < 1 {
		l = 1
	}
	for l > 1 && bignat.Cmp(f, pows.Pow(uint(l-1))) < 0 {
		l--
	}
	for bignat.Cmp(f, pows.Pow(uint(l))) >= 0 {
		l++
	}
	return l
}

// logBValue approximates log_B(v) = (ln f + e·ln b)/ln B using only the top
// word of the mantissa, so it works even for formats (binary128, synthetic
// wide formats) whose values overflow float64.
func logBValue(v fpformat.Value, base int) float64 {
	f := v.F
	bl := f.BitLen()
	var top float64
	var shift int
	if bl <= 64 {
		u, _ := f.Uint64()
		top, shift = float64(u), 0
	} else {
		shift = bl - 64
		u, _ := bignat.Shr(f, uint(shift)).Uint64()
		top = float64(u)
	}
	lnF := math.Log(top) + float64(shift)*logTable[2]
	return (lnF + float64(v.E)*logTable[v.Fmt.Base]) / logTable[base]
}

// mulBy2Cmp reports whether 2r > s, 2r == s, or 2r < s as +1, 0, -1: the
// "which candidate is closer to v" comparison at termination.  The doubled
// remainder lands in the t1 scratch, so the comparison allocates nothing.
func (st *state) mulBy2Cmp() int {
	st.t1 = bignat.MulWordInPlace(bignat.CopyInto(st.t1, st.r), 2)
	return bignat.Cmp(st.t1, st.s)
}

// EstimateScale exposes the paper's two-flop scale-factor estimate
// (Section 3.2) for the estimator-accuracy ablation: it returns
// ⌈(e + len_b(f) − 1)·log_B(b) − ε⌉ without any fixup.
func EstimateScale(v fpformat.Value, base int) int {
	return estimateK(v, base)
}

// ExactScale returns the true scale factor k for free-format conversion of
// v (the smallest k with high <= Bᵏ under the given reader mode), computed
// by the exact iterative search.  It serves as ground truth when measuring
// estimator accuracy.
func ExactScale(v fpformat.Value, base int, mode ReaderMode) (int, error) {
	if err := checkArgs(v, base); err != nil {
		return 0, err
	}
	lowOK, highOK := mode.boundaryOK(v)
	st := newState(v, base, lowOK, highOK)
	defer st.release()
	return st.scaleIterative(), nil
}

// ScaleOps runs only the scaling phase of a conversion and reports the
// scale factor together with the number of high-precision integer
// operations it performed — the quantity behind the paper's Table 2 claim
// that iterative scaling needs O(|log v|) operations while the estimator
// needs O(1).
func ScaleOps(v fpformat.Value, base int, method Scaling, mode ReaderMode) (k, ops int, err error) {
	if err := checkArgs(v, base); err != nil {
		return 0, 0, err
	}
	lowOK, highOK := mode.boundaryOK(v)
	st := newState(v, base, lowOK, highOK)
	defer st.release()
	k = st.scale(method, v)
	return k, st.ops, nil
}
