// Package extfloat implements a software model of x87 80-bit extended
// floating point: a 64-bit mantissa with an unconstrained exponent and
// round-to-nearest-even multiplication.
//
// Its role in this reproduction is to back the NaivePrintf baseline: the
// 1990s C libraries whose printf the paper benchmarks in Table 3 performed
// binary-to-decimal scaling in hardware long double (or plain double).
// With 64 mantissa bits, scaling by a correctly rounded power of ten and
// peeling 17 digits leaves a relative error of a few units in 2⁻⁶⁴, which
// flips the 17th digit on a small fraction of inputs — the "Incorrect"
// column of Table 3.  Reproducing that failure mode requires exactly this
// arithmetic, since modern libraries (and Go's strconv) round correctly.
package extfloat

import (
	"math"
	"math/bits"

	"floatprint/internal/bignat"
)

// Ext is a non-negative extended float: value = M × 2ᴱ with the mantissa
// normalized (top bit set) unless the value is zero (M == 0).
type Ext struct {
	M uint64
	E int
}

// Zero is the zero value.
var Zero = Ext{}

// FromFloat64 converts a non-negative finite float64 exactly.
func FromFloat64(v float64) Ext {
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		panic("extfloat: FromFloat64 requires a non-negative finite value")
	}
	if v == 0 {
		return Zero
	}
	frac, exp := math.Frexp(v) // v = frac·2^exp, frac ∈ [0.5, 1)
	m := uint64(frac * (1 << 53))
	return normalize(m, exp-53)
}

// FromUint64 converts an integer exactly if it fits 64 mantissa bits
// (all uint64 values do).
func FromUint64(u uint64) Ext {
	if u == 0 {
		return Zero
	}
	return normalize(u, 0)
}

// normalize shifts m up until its top bit is set, adjusting e.
func normalize(m uint64, e int) Ext {
	s := bits.LeadingZeros64(m)
	return Ext{M: m << s, E: e - s}
}

// Float64 rounds to the nearest float64 (ties to even).  Exponent overflow
// and subnormal rounding are not handled — callers stay in range.
func (x Ext) Float64() float64 {
	if x.M == 0 {
		return 0
	}
	// Keep 53 bits, round on the lower 11.
	keep := x.M >> 11
	rem := x.M & (1<<11 - 1)
	half := uint64(1) << 10
	if rem > half || (rem == half && keep&1 == 1) {
		keep++
	}
	return math.Ldexp(float64(keep), x.E+11)
}

// Mul returns x*y rounded to nearest even.
func Mul(x, y Ext) Ext {
	if x.M == 0 || y.M == 0 {
		return Zero
	}
	hi, lo := bits.Mul64(x.M, y.M)
	e := x.E + y.E + 64
	// Product of two normalized mantissas is in [2^126, 2^128): at most
	// one left shift renormalizes.
	if hi&(1<<63) == 0 {
		hi = hi<<1 | lo>>63
		lo <<= 1
		e--
	}
	// Round hi by the discarded low word.
	if lo > 1<<63 || (lo == 1<<63 && hi&1 == 1) {
		hi++
		if hi == 0 { // mantissa overflowed to 2^64
			hi = 1 << 63
			e++
		}
	}
	return Ext{M: hi, E: e}
}

// Cmp compares x with the small non-negative integer n.
func (x Ext) Cmp(n uint64) int {
	y := FromUint64(n)
	switch {
	case x.M == 0 && y.M == 0:
		return 0
	case x.M == 0:
		return -1
	case y.M == 0:
		return 1
	case x.E != y.E:
		if x.E < y.E {
			return -1
		}
		return 1
	case x.M < y.M:
		return -1
	case x.M > y.M:
		return 1
	}
	return 0
}

// DigitBelow returns the integer part d of x (which must be < 2⁶³ in
// magnitude and is below the base for digit peeling) and the exact
// fractional remainder.
func (x Ext) DigitBelow() (d uint64, rest Ext) {
	if x.M == 0 || x.E <= -64 {
		return 0, x
	}
	if x.E >= 0 {
		panic("extfloat: DigitBelow integer part out of range")
	}
	shift := uint(-x.E)
	d = x.M >> shift
	frac := x.M & (1<<shift - 1)
	if frac == 0 {
		return d, Zero
	}
	return d, normalize(frac, x.E)
}

// MulPow10 returns x·10ᵏ using one multiplication by a correctly rounded
// extended-precision power of ten, as an x87-era printf's long-double
// power table would.
func (x Ext) MulPow10(k int) Ext {
	if k == 0 || x.M == 0 {
		return x
	}
	return Mul(x, Pow10(k))
}

const pow10Range = 360

var pow10Table = buildPow10Table()

// Pow10 returns the correctly rounded extended-precision value of 10ᵏ for
// |k| <= 360, covering the double range with margin.
func Pow10(k int) Ext {
	if k < -pow10Range || k > pow10Range {
		panic("extfloat: Pow10 exponent out of range")
	}
	return pow10Table[k+pow10Range]
}

// buildPow10Table computes each power exactly with bignat and rounds it
// once to 64 bits, so every table entry has at most half an ulp of error —
// matching a correctly rounded long-double constant table.
func buildPow10Table() []Ext {
	table := make([]Ext, 2*pow10Range+1)
	for k := -pow10Range; k <= pow10Range; k++ {
		table[k+pow10Range] = roundedPow10(k)
	}
	return table
}

func roundedPow10(k int) Ext {
	if k >= 0 {
		return roundNatSticky(bignat.PowUint(10, uint(k)), 0, false)
	}
	// 10ᵏ for k < 0: compute floor(2ᴺ / 10⁻ᵏ) with N chosen so the
	// quotient has at least 65 bits, keeping a guard bit; any nonzero
	// division remainder supplies the sticky bit.
	den := bignat.PowUint(10, uint(-k))
	shift := den.BitLen() + 65
	q, rem := bignat.DivMod(bignat.Shl(bignat.Nat{1}, uint(shift)), den)
	return roundNatSticky(q, -shift, !rem.IsZero())
}

func roundNatSticky(n bignat.Nat, e int, sticky bool) Ext {
	bl := n.BitLen()
	if bl <= 64 {
		// Sticky bits strictly below a mantissa that already fits cannot
		// change the rounding of an exact 64-bit value.
		u, _ := n.Uint64()
		return normalize(u, e)
	}
	shift := uint(bl - 64)
	top := bignat.Shr(n, shift)
	u, _ := top.Uint64()
	rem := bignat.Sub(n, bignat.Shl(top, shift))
	half := bignat.Shl(bignat.Nat{1}, shift-1)
	c := bignat.Cmp(rem, half)
	roundUp := c > 0 || (c == 0 && (sticky || u&1 == 1))
	if roundUp {
		u++
		if u == 0 {
			return Ext{M: 1 << 63, E: e + int(shift) + 1}
		}
	}
	return Ext{M: u, E: e + int(shift)}
}
