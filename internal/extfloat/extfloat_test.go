package extfloat

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

func TestFromFloat64RoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	vals := []float64{0, 1, 0.5, 10, math.MaxFloat64, math.SmallestNonzeroFloat64, 0x1p-1022}
	for i := 0; i < 5000; i++ {
		v := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		vals = append(vals, v)
	}
	for _, v := range vals {
		x := FromFloat64(v)
		if got := x.Float64(); got != v {
			t.Fatalf("round trip %g -> %g", v, got)
		}
		if v != 0 && x.M>>63 != 1 {
			t.Fatalf("mantissa of %g not normalized: %x", v, x.M)
		}
	}
}

func TestFromFloat64PanicsOnBadInput(t *testing.T) {
	for _, v := range []float64{-1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FromFloat64(%v) did not panic", v)
				}
			}()
			FromFloat64(v)
		}()
	}
}

func TestMulExactSmallProducts(t *testing.T) {
	// Products that fit in 64 bits must be exact.
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a := uint64(r.Int63n(1 << 31))
		b := uint64(r.Int63n(1 << 31))
		got := Mul(FromUint64(a), FromUint64(b))
		want := FromUint64(a * b)
		if got != want {
			t.Fatalf("Mul(%d, %d) = %+v, want %+v", a, b, got, want)
		}
	}
}

func TestMulZero(t *testing.T) {
	if Mul(Zero, FromUint64(5)) != Zero || Mul(FromUint64(5), Zero) != Zero {
		t.Errorf("multiplication by zero should be zero")
	}
}

// TestMulCorrectlyRounded checks Mul against exact big.Int arithmetic.
func TestMulCorrectlyRounded(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		a := Ext{M: r.Uint64() | 1<<63, E: r.Intn(100) - 50}
		b := Ext{M: r.Uint64() | 1<<63, E: r.Intn(100) - 50}
		got := Mul(a, b)
		prod := new(big.Int).Mul(new(big.Int).SetUint64(a.M), new(big.Int).SetUint64(b.M))
		bl := prod.BitLen()
		shift := uint(bl - 64)
		top := new(big.Int).Rsh(prod, shift)
		rem := new(big.Int).Sub(prod, new(big.Int).Lsh(top, shift))
		half := new(big.Int).Lsh(big.NewInt(1), shift-1)
		u := top.Uint64()
		c := rem.Cmp(half)
		if c > 0 || (c == 0 && u&1 == 1) {
			u++
		}
		wantE := a.E + b.E + int(shift)
		wantM := u
		if u == 0 { // carry out of 64 bits
			wantM = 1 << 63
			wantE++
		}
		if got.M != wantM || got.E != wantE {
			t.Fatalf("Mul(%+v, %+v) = %+v, want M=%x E=%d", a, b, got, wantM, wantE)
		}
	}
}

func TestDigitBelow(t *testing.T) {
	x := FromFloat64(7.25)
	d, rest := x.DigitBelow()
	if d != 7 {
		t.Fatalf("int part of 7.25 = %d", d)
	}
	if got := rest.Float64(); got != 0.25 {
		t.Fatalf("frac part of 7.25 = %g", got)
	}
	// Exact integer leaves zero.
	d, rest = FromUint64(9).DigitBelow()
	if d != 9 || rest != Zero {
		t.Fatalf("DigitBelow(9) = %d, %+v", d, rest)
	}
	// Pure fraction.
	d, rest = FromFloat64(0.75).DigitBelow()
	if d != 0 || rest.Float64() != 0.75 {
		t.Fatalf("DigitBelow(0.75) = %d, %g", d, rest.Float64())
	}
	// Tiny values (E <= -64).
	d, rest = FromFloat64(0x1p-100).DigitBelow()
	if d != 0 || rest.Float64() != 0x1p-100 {
		t.Fatalf("DigitBelow(2^-100) wrong")
	}
}

func TestCmp(t *testing.T) {
	if FromFloat64(9.5).Cmp(10) != -1 || FromFloat64(10).Cmp(10) != 0 || FromFloat64(10.5).Cmp(10) != 1 {
		t.Errorf("Cmp around 10 wrong")
	}
	if Zero.Cmp(0) != 0 || Zero.Cmp(1) != -1 || FromUint64(1).Cmp(0) != 1 {
		t.Errorf("Cmp with zero wrong")
	}
	if FromFloat64(1e-30).Cmp(1) != -1 || FromFloat64(1e30).Cmp(1) != 1 {
		t.Errorf("Cmp across exponents wrong")
	}
}

// TestPow10CorrectlyRounded verifies each table entry against math/big.
func TestPow10CorrectlyRounded(t *testing.T) {
	for k := -pow10Range; k <= pow10Range; k++ {
		got := Pow10(k)
		// Exact 10^|k| as big.Int; for negative k compare
		// got.M·10^-k·2^-got.E against 2^0 bounds:
		// correctly rounded means |got − 10^k| <= ulp/2 = 2^(E-1).
		exact := new(big.Float).SetPrec(200)
		exact.SetInt(new(big.Int).Exp(big.NewInt(10), big.NewInt(int64(abs(k))), nil))
		if k < 0 {
			exact.Quo(big.NewFloat(1).SetPrec(200), exact)
		}
		approx := new(big.Float).SetPrec(200).SetUint64(got.M)
		approx.SetMantExp(approx, got.E) // approx = M × 2^E
		diff := new(big.Float).SetPrec(200).Sub(exact, approx)
		diff.Abs(diff)
		halfUlp := new(big.Float).SetMantExp(big.NewFloat(1), got.E-1)
		if diff.Cmp(halfUlp) > 0 {
			t.Fatalf("Pow10(%d) not correctly rounded: diff %v > half ulp %v", k, diff, halfUlp)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestPow10RangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Pow10 out of range did not panic")
		}
	}()
	Pow10(pow10Range + 1)
}

func TestMulPow10Identity(t *testing.T) {
	x := FromFloat64(3.5)
	if x.MulPow10(0) != x {
		t.Errorf("MulPow10(0) should be identity")
	}
	if Zero.MulPow10(5) != Zero {
		t.Errorf("MulPow10 of zero should be zero")
	}
	// 3.5 × 10² == 350 exactly (representable, correctly rounded table).
	if got := x.MulPow10(2).Float64(); got != 350 {
		t.Errorf("3.5e2 = %g", got)
	}
}

func TestScalePeelAccuracy(t *testing.T) {
	// Scaling π by 10^k then back must stay within a few ulps; and digit
	// peeling must recover the leading digits of simple constants.
	x := FromFloat64(math.Pi).MulPow10(5)
	if got := x.Float64(); math.Abs(got-314159.26535897932) > 1e-6 {
		t.Fatalf("π·10⁵ = %v", got)
	}
	digits := ""
	y := FromFloat64(math.Pi)
	for i := 0; i < 15; i++ {
		d, rest := y.DigitBelow()
		digits += string(rune('0' + d))
		y = Mul(rest, FromUint64(10))
	}
	if digits != "314159265358979" {
		t.Fatalf("peeled digits of π = %q", digits)
	}
}
