// Package trace defines the per-conversion execution record of the
// printing algorithms: which Table-1 case initialized the state, what the
// two-flop scale estimate guessed versus what scaling settled on (did the
// penalty-free fixup fire?), how many digit-loop iterations ran, how the
// final digit was rounded, and which backend actually produced the digits
// (certified Grisu3, Gay's fixed fast path, or the exact big-integer
// algorithm).
//
// The record turns the paper's headline behavioral claims — "the estimate
// is never more than one too low" (§3.2), "the loop emits the minimal
// digit count" (§2) — into observable, continuously measurable events
// instead of comments.  It is filled by the algorithm layers when the
// caller supplies a non-nil *Conversion and costs nothing otherwise: every
// instrumentation point in the hot path is a nil check on a pooled state
// field, taken only in the traced case.
//
// The package sits below everything: it imports nothing from the
// repository, so internal/core, internal/stats, and the public package can
// all share the record without cycles.
package trace

// Backend identifies which algorithm produced a conversion's digits.
type Backend uint8

const (
	// BackendNone marks a record that never reached digit generation
	// (specials: ±0, Inf, NaN).  Aggregators skip it.
	BackendNone Backend = iota
	// BackendGrisu is the certified Grisu3 free-format fast path.
	BackendGrisu
	// BackendGay is Gay's certified fixed-format fast path.
	BackendGay
	// BackendExactFree is the exact big-integer free-format algorithm.
	BackendExactFree
	// BackendExactFixed is the exact big-integer fixed-format algorithm.
	BackendExactFixed
	// BackendFastParse is the certified Eisel–Lemire read-side fast path.
	BackendFastParse
	// BackendExactParse is the exact big-integer reader (read side).
	BackendExactParse
	// BackendRyu is the Ryū free-format fast path (appended after the
	// original constants so existing values and labels stay stable).
	BackendRyu

	// NumBackends sizes per-backend aggregate arrays.
	NumBackends = int(BackendRyu) + 1
)

func (b Backend) String() string {
	switch b {
	case BackendGrisu:
		return "grisu3"
	case BackendGay:
		return "gay-fixed"
	case BackendExactFree:
		return "exact-free"
	case BackendExactFixed:
		return "exact-fixed"
	case BackendFastParse:
		return "fastparse"
	case BackendExactParse:
		return "exact-parse"
	case BackendRyu:
		return "ryu"
	}
	return "none"
}

// Conversion is one conversion's execution trace.  The algorithm that
// fills it resets the record first, so a value can be reused across calls;
// nothing in the record aliases algorithm state.  Fields that a given
// backend does not exercise stay zero (the Grisu3 fast path has no scale
// estimate; free format has no Position).
type Conversion struct {
	// Backend is the algorithm that produced the digits.
	Backend Backend
	// FastPathMiss reports that a certified fast path was attempted first
	// and failed certification, so Backend is the exact fallback.
	FastPathMiss bool

	// Base is the output base B.
	Base int
	// Mode is the reader rounding assumption ("nearest-even", ...).
	Mode string
	// LowOK and HighOK are the endpoint-admissibility flags the mode
	// implies for this value (the paper's Figure 1 low-ok?/high-ok?).
	LowOK, HighOK bool

	// Table1Case is the row of the paper's Table 1 that initialized
	// r, s, m⁺, m⁻: 1 (e ≥ 0), 2 (e ≥ 0 at a binade boundary), 3 (e < 0),
	// 4 (e < 0 at a boundary).  Exact backends only.
	Table1Case int

	// ScaleMethod is the Table-2 scaling strategy that ran ("estimate",
	// "iterative", "floatlog").  Exact backends only.
	ScaleMethod string
	// EstimateK is the initial scale guess: the paper's two-flop estimate
	// for "estimate", the logarithm for "floatlog", and the found k itself
	// for "iterative" (which has no estimate to be wrong).
	EstimateK int
	// ScaleK is the scale factor scaling settled on, before any rounding
	// carry.  §3.2's envelope is ScaleK − EstimateK ∈ {0, 1} for the
	// estimate strategy on binary inputs.
	ScaleK int
	// FixupSteps is ScaleK − EstimateK: 0 when the estimate was exact,
	// 1 when the penalty-free fixup fired.
	FixupSteps int

	// Iterations counts digit-generation loop iterations (digits emitted
	// before trimming/rounding) — the §2 minimality metric.
	Iterations int
	// TC1 and TC2 are the termination conditions at the final digit:
	// TC1 means r < m⁻ (the digits as generated read back to v), TC2 means
	// r + m⁺ > s (the incremented last digit reads back to v).
	TC1, TC2 bool
	// TieBreak reports that both conditions held and the closer-candidate
	// comparison (2r vs s) decided the final rounding.
	TieBreak bool
	// RoundedUp reports the final digit was incremented.
	RoundedUp bool
	// CarriedK reports the round-up carry rippled past the first digit,
	// gaining a leading 1 and raising K (footnote 2 of the paper).
	CarriedK bool

	// Position is the absolute digit position j of a fixed-format
	// conversion; RelativeN the requested significant-digit count, and
	// Refinements how many position-estimate passes the relative driver
	// needed (9.97 → "10" takes two).
	Position    int
	RelativeN   int
	Refinements int

	// K, Digits, and NSig describe the result: V = 0.d₁…d_Digits × Bᴷ
	// with NSig significant positions.
	K      int
	Digits int
	NSig   int
	// Ops is the high-precision operation count (the Table-2 cost metric),
	// exact backends only.
	Ops int
}

// Reset zeroes the record in place (allocation-free reuse).
func (c *Conversion) Reset() { *c = Conversion{} }

// Summary renders the record as one compact key=value line — the form
// a request span or a log field carries when the full struct is too
// wide.  Fields a backend does not exercise are omitted, so a fast
// path summary reads "backend=ryu digits=17 k=0" while an exact
// conversion adds its Table-1 case, scaling story, and loop counts.
func (c *Conversion) Summary() string {
	var b []byte
	b = append(b, "backend="...)
	b = append(b, c.Backend.String()...)
	if c.FastPathMiss {
		b = append(b, " fastpath=miss"...)
	}
	if c.Table1Case != 0 {
		b = appendKV(b, "case", c.Table1Case)
	}
	if c.ScaleMethod != "" {
		b = append(b, " scale="...)
		b = append(b, c.ScaleMethod...)
		b = appendKV(b, "estimate_k", c.EstimateK)
		b = appendKV(b, "fixup", c.FixupSteps)
	}
	if c.Iterations != 0 {
		b = appendKV(b, "iterations", c.Iterations)
	}
	switch {
	case c.TieBreak:
		b = append(b, " term=tie"...)
	case c.TC1 && c.TC2:
		b = append(b, " term=tc1+tc2"...)
	case c.TC1:
		b = append(b, " term=tc1"...)
	case c.TC2:
		b = append(b, " term=tc2"...)
	}
	if c.RoundedUp {
		b = append(b, " rounded=up"...)
		if c.CarriedK {
			b = append(b, " carried=k"...)
		}
	}
	b = appendKV(b, "digits", c.Digits)
	b = appendKV(b, "k", c.K)
	return string(b)
}

// appendKV appends " key=value" with a minimal signed-int formatter
// (the package imports nothing, strconv included).
func appendKV(b []byte, key string, v int) []byte {
	b = append(b, ' ')
	b = append(b, key...)
	b = append(b, '=')
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var d [20]byte
	i := len(d)
	for {
		i--
		d[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(b, d[i:]...)
}

// Recorder consumes conversion records.  Implementations must tolerate
// concurrent Record calls when shared across goroutines (the aggregate
// recorder in internal/stats is the canonical shared implementation); the
// record is only valid for the duration of the call.
type Recorder interface {
	Record(*Conversion)
}
