package trace

import "testing"

func TestBackendStrings(t *testing.T) {
	for b, want := range map[Backend]string{
		BackendNone:       "none",
		BackendGrisu:      "grisu3",
		BackendGay:        "gay-fixed",
		BackendExactFree:  "exact-free",
		BackendExactFixed: "exact-fixed",
		BackendFastParse:  "fastparse",
		BackendExactParse: "exact-parse",
		BackendRyu:        "ryu",
	} {
		if got := b.String(); got != want {
			t.Errorf("Backend(%d).String() = %q, want %q", b, got, want)
		}
	}
}

// TestSummary pins the compact line the serving layer attaches to
// conversion spans: field presence follows what the backend actually
// exercised.
func TestSummary(t *testing.T) {
	exact := &Conversion{
		Backend:     BackendExactFree,
		Table1Case:  3,
		ScaleMethod: "estimate",
		EstimateK:   -1,
		ScaleK:      0,
		FixupSteps:  1,
		Iterations:  17,
		TC1:         true,
		RoundedUp:   true,
		Digits:      17,
		K:           0,
	}
	want := "backend=exact-free case=3 scale=estimate estimate_k=-1 fixup=1" +
		" iterations=17 term=tc1 rounded=up digits=17 k=0"
	if got := exact.Summary(); got != want {
		t.Errorf("exact Summary = %q, want %q", got, want)
	}

	fast := &Conversion{Backend: BackendRyu, Digits: 3, K: 24}
	if got, want := fast.Summary(), "backend=ryu digits=3 k=24"; got != want {
		t.Errorf("fast Summary = %q, want %q", got, want)
	}

	miss := &Conversion{Backend: BackendExactParse, FastPathMiss: true, TieBreak: true, Digits: 1, K: 24}
	if got, want := miss.Summary(), "backend=exact-parse fastpath=miss term=tie digits=1 k=24"; got != want {
		t.Errorf("miss Summary = %q, want %q", got, want)
	}
}

// TestResetClears: a reused record carries nothing over.
func TestResetClears(t *testing.T) {
	c := &Conversion{Backend: BackendGrisu, Iterations: 9, Mode: "nearest-even"}
	c.Reset()
	if *c != (Conversion{}) {
		t.Fatalf("Reset left %+v", *c)
	}
}
