// Package ryu implements the Ryū shortest float64-to-decimal conversion
// (Ulf Adams, PLDI 2018) — the second-generation successor to Burger &
// Dybvig's algorithm and the one inside Go's strconv today.
//
// Where Burger & Dybvig run an exact big-integer digit loop and Grisu runs
// a certified-or-fail fixed-point loop, Ryū precomputes 128-bit slices of
// the powers of five so that the three scaled values (the number and its
// rounding-range boundaries) come out of a single 64×128-bit
// multiplication each, exactly; the shortest digits then fall out of a
// small division loop with explicit trailing-zero bookkeeping.  It
// assumes the IEEE round-to-nearest-even reader, i.e. the paper's
// ReaderNearestEven mode — under any other reader assumption its output
// would be wrong-but-plausible, so dispatch layers must guard the mode.
//
// Like the other fast paths in this repository (grisu, fastparse), the
// entry points follow the decline-don't-error contract: out-of-domain
// inputs (v <= 0, Inf, NaN) and the rare exact-halfway values where Ryū's
// round-to-even tie policy would diverge from the exact Burger & Dybvig
// core's round-up policy return ok == false, and the caller falls back to
// the exact algorithm.  A result with ok == true is byte-identical to the
// exact core's nearest-even free-format output.
//
// The power tables are generated at package init with this repository's
// own bignat arithmetic rather than embedded as literals, and every value
// path is differentially tested against both strconv and the exact
// Burger & Dybvig implementation.
package ryu

import (
	"math"
	"math/bits"

	"floatprint/internal/bignat"
)

const (
	mantBits = 52
	expBits  = 11
	bias     = 1023

	pow5InvBitCount = 125
	pow5BitCount    = 125

	maxPow5Inv = 291
	maxPow5    = 326
)

// pow5Split[i] holds the top 125 bits of 5^i; pow5InvSplit[q] holds
// floor(2^(pow5bits(q)+124)/5^q)+1.  Each entry is {lo, hi}.
var (
	pow5Split    [maxPow5][2]uint64
	pow5InvSplit [maxPow5Inv][2]uint64
)

func init() {
	for i := 0; i < maxPow5; i++ {
		p := bignat.PowUint(5, uint(i))
		shift := p.BitLen() - pow5BitCount
		var top bignat.Nat
		if shift >= 0 {
			top = bignat.Shr(p, uint(shift))
		} else {
			top = bignat.Shl(p, uint(-shift))
		}
		pow5Split[i] = split128(top)
	}
	for q := 0; q < maxPow5Inv; q++ {
		den := bignat.PowUint(5, uint(q))
		num := bignat.Shl(bignat.Nat{1}, uint(pow5bits(q)+pow5InvBitCount-1))
		quo, _ := bignat.DivMod(num, den)
		quo = bignat.AddWord(quo, 1)
		pow5InvSplit[q] = split128(quo)
	}
}

func split128(n bignat.Nat) [2]uint64 {
	hiNat := bignat.Shr(n, 64)
	hi, ok := hiNat.Uint64()
	if !ok {
		panic("ryu: table entry exceeds 128 bits")
	}
	lo, _ := bignat.Sub(n, bignat.Shl(hiNat, 64)).Uint64() // n mod 2^64
	return [2]uint64{lo, hi}
}

// pow5bits returns ceil(log2(5^e)) + 1... precisely the bit count used by
// Ryū: floor(e·log2(5)) + 1 for 0 <= e <= 3528.
func pow5bits(e int) int {
	return int((uint64(e)*1217359)>>19) + 1
}

// log10Pow2 returns floor(e·log10(2)) for 0 <= e <= 1650.
func log10Pow2(e int) int {
	return int((uint64(e) * 78913) >> 18)
}

// log10Pow5 returns floor(e·log10(5)) for 0 <= e <= 2620.
func log10Pow5(e int) int {
	return int((uint64(e) * 732923) >> 20)
}

// mulShift64 returns (m × mul) >> j for a 128-bit mul, 64 < j−64 < 64+64.
func mulShift64(m uint64, mul [2]uint64, j int) uint64 {
	b0hi, _ := bits.Mul64(m, mul[0])
	b2hi, b2lo := bits.Mul64(m, mul[1])
	sumLo, carry := bits.Add64(b0hi, b2lo, 0)
	sumHi := b2hi + carry
	shift := uint(j - 64)
	return sumLo>>shift | sumHi<<(64-shift)
}

func multipleOfPowerOf5(value uint64, p int) bool {
	count := 0
	for {
		q := value / 5
		r := value - 5*q
		if r != 0 {
			break
		}
		value = q
		count++
		if count >= p {
			return true
		}
	}
	return count >= p
}

func multipleOfPowerOf2(value uint64, p int) bool {
	return bits.TrailingZeros64(value) >= p
}

// BufLen is the smallest digit buffer ShortestInto accepts: the digit
// loop emits at most 17 significant decimal digits for a binary64 value,
// with slack for the pre-trim intermediate.
const BufLen = 20

// Shortest converts a positive finite v to its shortest decimal form under
// a round-to-nearest-even reader, returning digit values and K with
// V = 0.d₁…dₙ × 10ᴷ.  ok is false when the input is out of domain
// (v <= 0, Inf, NaN) or the value is an exact halfway case where Ryū's
// tie policy diverges from the exact core's; callers must treat a decline
// as fall-through to the exact algorithm, never as a result.
func Shortest(v float64) (digits []byte, k int, ok bool) {
	var buf [BufLen]byte
	n, k, ok := ShortestInto(buf[:], v)
	if !ok {
		return nil, 0, false
	}
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = buf[i] - '0' // digit values, not ASCII
	}
	return out, k, true
}

// ShortestInto is Shortest writing the digits into buf — as ASCII bytes
// '0'..'9', ready to print — which must hold at least BufLen bytes.  It
// performs no heap allocation, which makes it the substrate for the
// public package's zero-allocation append path (and ASCII is what that
// path wants: the bytes go to output verbatim, so emitting them printable
// here saves a conversion pass per call).
func ShortestInto(buf []byte, v float64) (n, k int, ok bool) {
	// The guard condenses the domain check: !(v > 0) rejects zero,
	// negatives, and NaN in one compare, and the only positive
	// non-finite left is +Inf.
	if len(buf) < BufLen || !(v > 0) || v > math.MaxFloat64 {
		return 0, 0, false
	}
	b := math.Float64bits(v)
	ieeeMantissa := b & (1<<mantBits - 1)
	ieeeExponent := int(b >> mantBits & (1<<expBits - 1))

	var m2 uint64
	var e2 int
	if ieeeExponent == 0 {
		e2 = 1 - bias - mantBits - 2
		m2 = ieeeMantissa
	} else {
		e2 = ieeeExponent - bias - mantBits - 2
		m2 = 1<<mantBits | ieeeMantissa
	}
	even := m2&1 == 0
	acceptBounds := even

	// Step 2: boundaries as quarter-ulp integers.
	mv := 4 * m2
	mmShift := uint64(0)
	if ieeeMantissa != 0 || ieeeExponent <= 1 {
		mmShift = 1
	}

	// Step 3: scale to decimal with one table multiplication per value.
	var vr, vp, vm uint64
	var e10 int
	vmIsTrailingZeros := false
	vrIsTrailingZeros := false
	if e2 >= 0 {
		q := log10Pow2(e2)
		if e2 > 3 {
			q--
		}
		e10 = q
		kk := pow5InvBitCount + pow5bits(q) - 1
		i := -e2 + q + kk
		vr = mulShift64(mv, pow5InvSplit[q], i)
		vp = mulShift64(mv+2, pow5InvSplit[q], i)
		vm = mulShift64(mv-1-mmShift, pow5InvSplit[q], i)
		if q <= 21 {
			switch {
			case mv%5 == 0:
				vrIsTrailingZeros = multipleOfPowerOf5(mv, q)
			case acceptBounds:
				vmIsTrailingZeros = multipleOfPowerOf5(mv-1-mmShift, q)
			default:
				if multipleOfPowerOf5(mv+2, q) {
					vp--
				}
			}
		}
	} else {
		q := log10Pow5(-e2)
		if -e2 > 1 {
			q--
		}
		e10 = q + e2
		i := -e2 - q
		kk := pow5bits(i) - pow5BitCount
		j := q - kk
		vr = mulShift64(mv, pow5Split[i], j)
		vp = mulShift64(mv+2, pow5Split[i], j)
		vm = mulShift64(mv-1-mmShift, pow5Split[i], j)
		if q <= 1 {
			vrIsTrailingZeros = true
			if acceptBounds {
				vmIsTrailingZeros = mmShift == 1
			} else {
				vp--
			}
		} else if q < 63 {
			vrIsTrailingZeros = multipleOfPowerOf2(mv, q)
		}
	}

	// Step 4: find the shortest representation in (vm, vp).
	removed := 0
	var lastRemovedDigit uint8
	var out uint64
	if vmIsTrailingZeros || vrIsTrailingZeros {
		for vp/10 > vm/10 {
			vmIsTrailingZeros = vmIsTrailingZeros && vm%10 == 0
			vrIsTrailingZeros = vrIsTrailingZeros && lastRemovedDigit == 0
			lastRemovedDigit = uint8(vr % 10)
			vr /= 10
			vp /= 10
			vm /= 10
			removed++
		}
		if vmIsTrailingZeros {
			for vm%10 == 0 {
				vrIsTrailingZeros = vrIsTrailingZeros && lastRemovedDigit == 0
				lastRemovedDigit = uint8(vr % 10)
				vr /= 10
				vp /= 10
				vm /= 10
				removed++
			}
		}
		if vrIsTrailingZeros && lastRemovedDigit == 5 && vr%2 == 0 &&
			(vr != vm || (acceptBounds && vmIsTrailingZeros)) {
			// Exact halfway with an even candidate that is admissible
			// output: Ryū would round the digits to even (keep vr) but the
			// exact Burger & Dybvig core rounds ties up, so the two outputs
			// diverge here — and only here.  Decline and let the exact
			// algorithm decide.  (An odd candidate rounds up under both
			// policies, and when vr equals an inadmissible lower bound the
			// forced increment below settles the digit the same way for
			// both, so those cases are served normally.)
			return 0, 0, false
		}
		out = vr
		if (vr == vm && (!acceptBounds || !vmIsTrailingZeros)) || lastRemovedDigit >= 5 {
			out++
		}
	} else {
		roundUp := false
		if vp/100 > vm/100 {
			roundUp = vr%100 >= 50
			vr /= 100
			vp /= 100
			vm /= 100
			removed += 2
		}
		for vp/10 > vm/10 {
			roundUp = vr%10 >= 5
			vr /= 10
			vp /= 10
			vm /= 10
			removed++
		}
		out = vr
		if vr == vm || roundUp {
			out++
		}
	}
	exp := e10 + removed

	// Emit ASCII digits into the caller's buffer.  The length is known up
	// front (decimalLen), so digits land in their final positions — no
	// reversal pass — and they come off two at a time through the pair
	// table, so a 17-digit result costs nine 64-bit divisions instead of
	// seventeen with no per-digit split arithmetic.  The emitter is shared
	// with the one-sided kernels (directed.go).
	n = writeDecimal(buf, out)
	return n, exp + n, true
}

// digitPairs holds the two-digit ASCII renderings "00".."99" back to
// back, so one table load replaces a div/mod pair per two digits.
const digitPairs = "00010203040506070809" +
	"10111213141516171819" +
	"20212223242526272829" +
	"30313233343536373839" +
	"40414243444546474849" +
	"50515253545556575859" +
	"60616263646566676869" +
	"70717273747576777879" +
	"80818283848586878889" +
	"90919293949596979899"

// pow10 holds the powers of ten representable in a uint64.
var pow10 = [20]uint64{
	1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9,
	1e10, 1e11, 1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19,
}

// decimalLen returns the decimal digit count of u >= 1: a bit-length
// estimate of log10 (1233/4096 ≈ log10(2)), corrected by one table
// compare.
func decimalLen(u uint64) int {
	t := bits.Len64(u) * 1233 >> 12
	if u >= pow10[t] {
		t++
	}
	return t
}
