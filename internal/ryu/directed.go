// One-sided ("directed") shortest kernels: the Ryū machinery with one
// bound dropped from the interval acceptance test.
//
// The nearest kernel finds the shortest decimal in (vm, vp), the open
// range between the neighbor midpoints.  The directed printers need the
// shortest decimal in a *half*-gap instead: ShortestBelowInto confines
// the output to (v−m⁻, v] — the largest decimals not exceeding v that
// still identify it — and ShortestAboveInto to [v, v+m⁺).  Both reuse
// the scaling step unchanged (the same exact 64×128-bit floors of the
// value and one midpoint); only the digit-removal loop differs:
//
//   - Below: the candidate at every length is the plain truncation of
//     the scaled value, which lies in (lowermid, v] exactly when
//     floor(vr/10ʲ) > floor(vm/10ʲ).  Both sides of that test are exact
//     integer floors, so no trailing-zero bookkeeping is needed at all —
//     remove digits while the next truncation still clears the midpoint.
//   - Above: the candidate is the ceiling of the scaled value, valid
//     while it stays strictly below the upper midpoint.  Ceilings and
//     the strict bound both hinge on integrality, so this side carries
//     the exactness flags the nearest kernel tracks for vr and vp: the
//     ceiling is vr+1 unless the scaled value is exactly the integer vr,
//     and the largest admissible integer is vp−1 when the scaled
//     midpoint is exactly vp.
//
// Output is byte-identical to the exact core's FloorFormat/CeilFormat
// (the §3 loop with a one-sided exit): both sides produce the unique
// shortest admissible candidate, and at the shortest length that
// candidate is unique.  Like every fast path here, the kernels follow
// the decline-don't-error contract — out-of-domain input and the
// (provably unreachable, but still guarded) case of an empty candidate
// range return ok == false for the exact core to handle.
package ryu

import "math"

// decompose64 splits a positive finite v into Ryū's step-1/2 quantities:
// the quarter-ulp significand mv = 4·m2, its binary exponent e2, and the
// lower-boundary shift (1 except at the uneven power-of-two gap).
func decompose64(v float64) (mv uint64, e2 int, mmShift uint64) {
	b := math.Float64bits(v)
	ieeeMantissa := b & (1<<mantBits - 1)
	ieeeExponent := int(b >> mantBits & (1<<expBits - 1))
	var m2 uint64
	if ieeeExponent == 0 {
		e2 = 1 - bias - mantBits - 2
		m2 = ieeeMantissa
	} else {
		e2 = ieeeExponent - bias - mantBits - 2
		m2 = 1<<mantBits | ieeeMantissa
	}
	mmShift = 0
	if ieeeMantissa != 0 || ieeeExponent <= 1 {
		mmShift = 1
	}
	return 4 * m2, e2, mmShift
}

// ShortestBelowInto converts a positive finite v to the shortest decimal
// in its lower half-gap (v−m⁻, v], writing ASCII digits into buf (at
// least BufLen bytes) and returning the digit count and K with
// value = 0.d₁…dₙ × 10ᴷ.  A decline (ok == false) means the caller must
// fall back to the exact core's FloorFormat.
func ShortestBelowInto(buf []byte, v float64) (n, k int, ok bool) {
	if len(buf) < BufLen || !(v > 0) || v > math.MaxFloat64 {
		return 0, 0, false
	}
	mv, e2, mmShift := decompose64(v)

	// Scale the value and the lower midpoint to decimal, exactly as the
	// nearest kernel does: vr = floor(v·10^−e10), vm = floor(lowermid·10^−e10).
	var vr, vm uint64
	var e10 int
	if e2 >= 0 {
		q := log10Pow2(e2)
		if e2 > 3 {
			q--
		}
		e10 = q
		i := -e2 + q + pow5InvBitCount + pow5bits(q) - 1
		vr = mulShift64(mv, pow5InvSplit[q], i)
		vm = mulShift64(mv-1-mmShift, pow5InvSplit[q], i)
	} else {
		q := log10Pow5(-e2)
		if -e2 > 1 {
			q--
		}
		e10 = q + e2
		i := -e2 - q
		j := q - (pow5bits(i) - pow5BitCount)
		vr = mulShift64(mv, pow5Split[i], j)
		vm = mulShift64(mv-1-mmShift, pow5Split[i], j)
	}

	// Remove digits while the shorter truncation still clears the lower
	// midpoint.  floor(vr/10) > floor(vm/10) is exactly "the truncation
	// of v at the next length is still > v−m⁻": the truncation equals
	// vr₁·10 (scaled), and an integer vr₁ exceeds the real midpoint iff
	// it exceeds the midpoint's floor vm₁.  No exactness flags needed —
	// the test is the same whether or not the midpoint is an integer.
	removed := 0
	for vr/10 > vm/10 {
		vr /= 10
		vm /= 10
		removed++
	}
	if vr <= vm {
		// The scaled half-gap (vm, vr] always contains an integer before
		// any removal (the gap spans at least one scaled quarter-ulp
		// unit, which is ≥ 1 in every q branch), so this is unreachable;
		// guarded per the decline-don't-error contract.
		return 0, 0, false
	}
	// vr cannot end in 0 here: vr = 10a > vm with vm/10 == a would force
	// vm ≥ 10a = vr, so the loop above would have kept removing.
	n = writeDecimal(buf, vr)
	return n, e10 + removed + n, true
}

// ShortestAboveInto converts a positive finite v to the shortest decimal
// in its upper half-gap [v, v+m⁺), with the same contract as
// ShortestBelowInto; a decline falls back to the exact core's CeilFormat.
func ShortestAboveInto(buf []byte, v float64) (n, k int, ok bool) {
	if len(buf) < BufLen || !(v > 0) || v > math.MaxFloat64 {
		return 0, 0, false
	}
	mv, e2, _ := decompose64(v)

	// Scale the value and the upper midpoint, tracking integrality: the
	// ceiling candidate needs to know whether the scaled value is exactly
	// vr, and the strict upper bound whether the scaled midpoint is
	// exactly vp.  The divisibility windows are the nearest kernel's.
	var vr, vp uint64
	var e10 int
	vrExact, vpExact := false, false
	if e2 >= 0 {
		q := log10Pow2(e2)
		if e2 > 3 {
			q--
		}
		e10 = q
		i := -e2 + q + pow5InvBitCount + pow5bits(q) - 1
		vr = mulShift64(mv, pow5InvSplit[q], i)
		vp = mulShift64(mv+2, pow5InvSplit[q], i)
		if q <= 21 {
			// x·2^(e2−q)/5^q is an integer iff 5^q divides x (e2 ≥ q holds
			// for every e2 in this branch).
			vrExact = multipleOfPowerOf5(mv, q)
			vpExact = multipleOfPowerOf5(mv+2, q)
		}
	} else {
		q := log10Pow5(-e2)
		if -e2 > 1 {
			q--
		}
		e10 = q + e2
		i := -e2 - q
		j := q - (pow5bits(i) - pow5BitCount)
		vr = mulShift64(mv, pow5Split[i], j)
		vp = mulShift64(mv+2, pow5Split[i], j)
		// x·5^i/2^q is an integer iff 2^q divides x: mv = 4·m2 always has
		// two factors of two, mv+2 = 2(2·m2+1) exactly one.
		if q <= 1 {
			vrExact = true
			vpExact = true
		} else if q < 63 {
			vrExact = multipleOfPowerOf2(mv, q)
		}
	}

	// vpAdj is the largest integer strictly below the scaled upper
	// midpoint; dividing it by 10 per removed digit preserves that role
	// (floor((u−1)/10ʲ) is the largest integer below u/10ʲ for integer u,
	// and floor(u/10ʲ) is when u is not a multiple of 10ʲ — both are what
	// floor division of vpAdj computes).
	vpAdj := vp
	if vpExact {
		vpAdj--
	}
	ceil := vr
	if !vrExact {
		ceil++
	}
	if ceil > vpAdj {
		// Unreachable: the scaled half-gap [v, uppermid) spans at least
		// two quarter-ulp units, so it always contains an integer at full
		// length.  Guarded per the decline-don't-error contract.
		return 0, 0, false
	}
	removed := 0
	for {
		vr2 := vr / 10
		exact2 := vrExact && vr%10 == 0
		c2 := vr2
		if !exact2 {
			c2++
		}
		if c2 > vpAdj/10 {
			break
		}
		vr, vrExact = vr2, exact2
		vpAdj /= 10
		removed++
	}
	out := vr
	if !vrExact {
		out++
	}
	// out cannot end in 0: a ceiling ending in 0 would stay admissible
	// with one more digit removed (its value is unchanged by the
	// removal), contradicting the loop's maximality.  That includes the
	// carry cases (…999+1): the loop keeps removing until the trailing
	// zeros produced by the carry are gone.
	n = writeDecimal(buf, out)
	return n, e10 + removed + n, true
}

// writeDecimal renders out ≥ 1 as ASCII into buf and returns the digit
// count.  Same emission scheme as the nearest kernel: length known up
// front, digits land in final position two at a time via the pair table.
func writeDecimal(buf []byte, out uint64) int {
	n := decimalLen(out)
	i := n
	for out >= 100 {
		q := out / 100
		j := (out - q*100) * 2
		i -= 2
		buf[i] = digitPairs[j]
		buf[i+1] = digitPairs[j+1]
		out = q
	}
	if out >= 10 {
		j := out * 2
		buf[i-2] = digitPairs[j]
		buf[i-1] = digitPairs[j+1]
	} else {
		buf[i-1] = '0' + byte(out)
	}
	return n
}
