package ryu

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"floatprint/internal/core"
	"floatprint/internal/fpformat"
	"floatprint/internal/schryer"
)

func digitsString(digits []byte) string {
	var sb strings.Builder
	for _, d := range digits {
		sb.WriteByte('0' + d)
	}
	return sb.String()
}

// strconvDigits extracts Go's (also Ryū-based) shortest digits and K.
func strconvDigits(v float64) (string, int) {
	s := strconv.FormatFloat(v, 'e', -1, 64)
	mant, expStr, _ := strings.Cut(s, "e")
	exp, _ := strconv.Atoi(expStr)
	d := strings.Replace(mant, ".", "", 1)
	d = strings.TrimRight(d, "0")
	if d == "" {
		d = "0"
	}
	return d, exp + 1
}

// TestMatchesStrconvExactly: both are Ryū, so every served (ok) result must
// agree bit-for-bit with strconv.  Declines are the exact-halfway tie cases
// ceded to the Burger & Dybvig core; they must stay rare.
func TestMatchesStrconvExactly(t *testing.T) {
	declines, total := 0, 0
	check := func(v float64) {
		t.Helper()
		total++
		digits, k, ok := Shortest(v)
		if !ok {
			declines++
			return
		}
		wantD, wantK := strconvDigits(v)
		if digitsString(digits) != wantD || k != wantK {
			t.Fatalf("ryu(%g [%x]) = %q K=%d, strconv = %q K=%d",
				v, math.Float64bits(v), digitsString(digits), k, wantD, wantK)
		}
	}
	for _, v := range []float64{
		1, 2, 0.5, 0.1, 0.3, 1.0 / 3.0, math.Pi, math.E,
		1e23, 9.109383632e-31, 5e-324, math.MaxFloat64,
		0x1p-1022, math.Nextafter(0x1p-1022, 0),
		math.Nextafter(1, 2), math.Nextafter(1, 0), math.Nextafter(2, 1),
		123456789012345680000, 1e300, 1e-300,
		2.2250738585072011e-308, 4.35, 123e45, 1.2e-5,
		// The float32-derived tie value from the core tests.
		float64(math.Float32frombits(0b1000011001111010101010000000000)),
	} {
		check(v)
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 300000; i++ {
		v := math.Float64frombits(r.Uint64())
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		check(math.Abs(v))
	}
	for _, v := range schryer.CorpusN(50000) {
		check(v)
	}
	if declines*100 > total {
		t.Errorf("implausibly many tie declines: %d of %d", declines, total)
	}
}

func TestMatchesStrconvDenormals(t *testing.T) {
	for bits := uint64(1); bits < 1<<52; bits = bits*3 + 1 {
		v := math.Float64frombits(bits)
		digits, k, ok := Shortest(v)
		if !ok {
			continue // exact-halfway tie ceded to the exact core
		}
		wantD, wantK := strconvDigits(v)
		if digitsString(digits) != wantD || k != wantK {
			t.Fatalf("denormal %x: ryu %q K=%d, strconv %q K=%d",
				bits, digitsString(digits), k, wantD, wantK)
		}
	}
}

func TestMatchesStrconvExponentSweep(t *testing.T) {
	// Every binade, several mantissas: exercises both e2 branches and all
	// table rows.
	r := rand.New(rand.NewSource(2))
	for be := 1; be <= 2046; be++ {
		for trial := 0; trial < 10; trial++ {
			mant := r.Uint64() & (1<<52 - 1)
			v := math.Float64frombits(uint64(be)<<52 | mant)
			digits, k, ok := Shortest(v)
			if !ok {
				continue
			}
			wantD, wantK := strconvDigits(v)
			if digitsString(digits) != wantD || k != wantK {
				t.Fatalf("be=%d mant=%x: ryu %q K=%d, strconv %q K=%d",
					be, mant, digitsString(digits), k, wantD, wantK)
			}
		}
	}
}

// TestMatchesBurgerDybvigNearestEven ties the successor back to the paper:
// every result Ryū serves (ok == true) must be byte-identical to the exact
// Burger-Dybvig free format under the nearest-even reader.  The exact
// halfway ties where the two tie policies diverge (paper: up; Ryū: to even)
// are exactly the inputs Ryū declines, so no tolerance remains.
func TestMatchesBurgerDybvigNearestEven(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	declines := 0
	for i := 0; i < 20000; i++ {
		v := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		digits, k, ok := Shortest(v)
		if !ok {
			declines++
			continue
		}
		exact, err := core.FreeFormat(fpformat.DecodeFloat64(v), 10, core.ScalingEstimate, core.ReaderNearestEven)
		if err != nil {
			t.Fatal(err)
		}
		if digitsString(digits) != digitsString(exact.Digits) || k != exact.K {
			t.Fatalf("ryu(%g [%x]) = %q K=%d, exact = %q K=%d",
				v, math.Float64bits(v),
				digitsString(digits), k, digitsString(exact.Digits), exact.K)
		}
	}
	if declines > 40 {
		t.Errorf("implausibly many tie declines: %d", declines)
	}
}

// TestTieValuesDecline pins the decline contract on values whose shortest
// form is an exact halfway case with an even candidate: Ryū must cede these
// to the exact core rather than emit its round-to-even answer.
func TestTieValuesDecline(t *testing.T) {
	found := 0
	for _, v := range schryer.CorpusN(schryer.CorpusSize) {
		_, _, ok := Shortest(v)
		if ok {
			continue
		}
		found++
		// The declined value must be a genuine divergence: strconv's
		// round-to-even output differs from the exact core's round-up.
		wantD, wantK := strconvDigits(v)
		exact, err := core.FreeFormat(fpformat.DecodeFloat64(v), 10, core.ScalingEstimate, core.ReaderNearestEven)
		if err != nil {
			t.Fatal(err)
		}
		if digitsString(exact.Digits) == wantD && exact.K == wantK {
			t.Errorf("ryu declined %g [%x] but strconv and the exact core agree (%q K=%d): spurious decline",
				v, math.Float64bits(v), wantD, wantK)
		}
		if found > 100 {
			t.Fatalf("decline rate over the corpus is implausibly high")
		}
	}
	t.Logf("corpus declines: %d of %d", found, schryer.CorpusSize)
}

func TestSpecialsDecline(t *testing.T) {
	for _, v := range []float64{0, math.Copysign(0, -1), -1, -0.5,
		math.Inf(1), math.Inf(-1), math.NaN()} {
		if d, k, ok := Shortest(v); ok || d != nil || k != 0 {
			t.Errorf("Shortest(%v) = (%v, %d, %v), want decline", v, d, k, ok)
		}
		var buf [BufLen]byte
		if n, k, ok := ShortestInto(buf[:], v); ok || n != 0 || k != 0 {
			t.Errorf("ShortestInto(%v) = (%d, %d, %v), want decline", v, n, k, ok)
		}
	}
}

func TestShortestIntoShortBuffer(t *testing.T) {
	var buf [BufLen - 1]byte
	if n, k, ok := ShortestInto(buf[:], 1.5); ok || n != 0 || k != 0 {
		t.Errorf("ShortestInto(short buf) = (%d, %d, %v), want decline", n, k, ok)
	}
}

// TestShortestIntoMatchesShortest: the allocating wrapper and the in-place
// entry point must agree on every path — Shortest returns digit values,
// ShortestInto the same digits as ASCII.
func TestShortestIntoMatchesShortest(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var buf [BufLen]byte
	for i := 0; i < 50000; i++ {
		v := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		digits, k1, ok1 := Shortest(v)
		n, k2, ok2 := ShortestInto(buf[:], v)
		if ok1 != ok2 || k1 != k2 || len(digits) != n {
			t.Fatalf("Shortest(%g) = (%v, %d, %v) vs ShortestInto (%d, %d, %v)",
				v, digits, k1, ok1, n, k2, ok2)
		}
		for j := 0; j < n; j++ {
			if digits[j] != buf[j]-'0' {
				t.Fatalf("digit %d mismatch for %g: %v vs %q", j, v, digits, buf[:n])
			}
		}
	}
}

func TestNoTrailingZeros(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 50000; i++ {
		v := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		digits, _, ok := Shortest(v)
		if ok && len(digits) > 0 && digits[len(digits)-1] == 0 {
			t.Fatalf("trailing zero digit for %g: %v", v, digits)
		}
	}
}

func TestHelperFunctions(t *testing.T) {
	// pow5bits against the definition.
	for e := 0; e <= 3000; e++ {
		want := int(math.Floor(float64(e)*math.Log2(5))) + 1
		if e == 0 {
			want = 1
		}
		if got := pow5bits(e); got != want {
			t.Fatalf("pow5bits(%d) = %d, want %d", e, got, want)
		}
	}
	for e := 0; e <= 1650; e++ {
		if got, want := log10Pow2(e), int(math.Floor(float64(e)*math.Log10(2))); got != want {
			t.Fatalf("log10Pow2(%d) = %d, want %d", e, got, want)
		}
	}
	for e := 0; e <= 2620; e++ {
		if got, want := log10Pow5(e), int(math.Floor(float64(e)*math.Log10(5))); got != want {
			t.Fatalf("log10Pow5(%d) = %d, want %d", e, got, want)
		}
	}
	if !multipleOfPowerOf5(125, 3) || multipleOfPowerOf5(124, 1) || !multipleOfPowerOf5(7, 0) {
		t.Errorf("multipleOfPowerOf5 wrong")
	}
	if !multipleOfPowerOf2(8, 3) || multipleOfPowerOf2(8, 4) {
		t.Errorf("multipleOfPowerOf2 wrong")
	}
}

func BenchmarkRyuShortest(b *testing.B) {
	corpus := schryer.CorpusN(4096)
	var buf [BufLen]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ShortestInto(buf[:], corpus[i%len(corpus)])
	}
}
