package ryu

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"floatprint/internal/core"
	"floatprint/internal/fpformat"
	"floatprint/internal/schryer"
)

func digitsString(digits []byte) string {
	var sb strings.Builder
	for _, d := range digits {
		sb.WriteByte('0' + d)
	}
	return sb.String()
}

// strconvDigits extracts Go's (also Ryū-based) shortest digits and K.
func strconvDigits(v float64) (string, int) {
	s := strconv.FormatFloat(v, 'e', -1, 64)
	mant, expStr, _ := strings.Cut(s, "e")
	exp, _ := strconv.Atoi(expStr)
	d := strings.Replace(mant, ".", "", 1)
	d = strings.TrimRight(d, "0")
	if d == "" {
		d = "0"
	}
	return d, exp + 1
}

// TestMatchesStrconvExactly: both are Ryū with identical tie handling, so
// the outputs must agree bit-for-bit — no tie tolerance needed.
func TestMatchesStrconvExactly(t *testing.T) {
	check := func(v float64) {
		t.Helper()
		digits, k := Shortest(v)
		wantD, wantK := strconvDigits(v)
		if digitsString(digits) != wantD || k != wantK {
			t.Fatalf("ryu(%g [%x]) = %q K=%d, strconv = %q K=%d",
				v, math.Float64bits(v), digitsString(digits), k, wantD, wantK)
		}
	}
	for _, v := range []float64{
		1, 2, 0.5, 0.1, 0.3, 1.0 / 3.0, math.Pi, math.E,
		1e23, 9.109383632e-31, 5e-324, math.MaxFloat64,
		0x1p-1022, math.Nextafter(0x1p-1022, 0),
		math.Nextafter(1, 2), math.Nextafter(1, 0), math.Nextafter(2, 1),
		123456789012345680000, 1e300, 1e-300,
		2.2250738585072011e-308, 4.35, 123e45, 1.2e-5,
		// The float32-derived tie value from the core tests.
		float64(math.Float32frombits(0b1000011001111010101010000000000)),
	} {
		check(v)
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 300000; i++ {
		v := math.Float64frombits(r.Uint64())
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		check(math.Abs(v))
	}
	for _, v := range schryer.CorpusN(50000) {
		check(v)
	}
}

func TestMatchesStrconvDenormals(t *testing.T) {
	for bits := uint64(1); bits < 1<<52; bits = bits*3 + 1 {
		v := math.Float64frombits(bits)
		digits, k := Shortest(v)
		wantD, wantK := strconvDigits(v)
		if digitsString(digits) != wantD || k != wantK {
			t.Fatalf("denormal %x: ryu %q K=%d, strconv %q K=%d",
				bits, digitsString(digits), k, wantD, wantK)
		}
	}
}

func TestMatchesStrconvExponentSweep(t *testing.T) {
	// Every binade, several mantissas: exercises both e2 branches and all
	// table rows.
	r := rand.New(rand.NewSource(2))
	for be := 1; be <= 2046; be++ {
		for trial := 0; trial < 10; trial++ {
			mant := r.Uint64() & (1<<52 - 1)
			v := math.Float64frombits(uint64(be)<<52 | mant)
			digits, k := Shortest(v)
			wantD, wantK := strconvDigits(v)
			if digitsString(digits) != wantD || k != wantK {
				t.Fatalf("be=%d mant=%x: ryu %q K=%d, strconv %q K=%d",
					be, mant, digitsString(digits), k, wantD, wantK)
			}
		}
	}
}

// TestMatchesBurgerDybvigNearestEven ties the successor back to the paper:
// Ryū's output must equal the exact Burger-Dybvig free format under the
// nearest-even reader, except on exact ties where the two round
// differently (paper: up; Ryū: to even) — both being valid shortest forms.
func TestMatchesBurgerDybvigNearestEven(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ties := 0
	for i := 0; i < 20000; i++ {
		v := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		digits, k := Shortest(v)
		exact, err := core.FreeFormat(fpformat.DecodeFloat64(v), 10, core.ScalingEstimate, core.ReaderNearestEven)
		if err != nil {
			t.Fatal(err)
		}
		if digitsString(digits) == digitsString(exact.Digits) && k == exact.K {
			continue
		}
		// Tolerated only for exact ties: same length and both round-trip.
		if len(digits) != len(exact.Digits) {
			t.Fatalf("ryu and Burger-Dybvig disagree beyond tie for %g", v)
		}
		s := "0." + digitsString(digits) + "e" + strconv.Itoa(k)
		back, err := strconv.ParseFloat(s, 64)
		if err != nil || back != v {
			t.Fatalf("ryu output %q does not round-trip for %g", s, v)
		}
		ties++
	}
	if ties > 40 {
		t.Errorf("implausibly many tie divergences: %d", ties)
	}
}

func TestSpecialsReturnNil(t *testing.T) {
	for _, v := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if d, _ := Shortest(v); d != nil {
			t.Errorf("Shortest(%v) = %v, want nil", v, d)
		}
	}
}

func TestNoTrailingZeros(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 50000; i++ {
		v := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		digits, _ := Shortest(v)
		if len(digits) > 0 && digits[len(digits)-1] == 0 {
			t.Fatalf("trailing zero digit for %g: %v", v, digits)
		}
	}
}

func TestHelperFunctions(t *testing.T) {
	// pow5bits against the definition.
	for e := 0; e <= 3000; e++ {
		want := int(math.Floor(float64(e)*math.Log2(5))) + 1
		if e == 0 {
			want = 1
		}
		if got := pow5bits(e); got != want {
			t.Fatalf("pow5bits(%d) = %d, want %d", e, got, want)
		}
	}
	for e := 0; e <= 1650; e++ {
		if got, want := log10Pow2(e), int(math.Floor(float64(e)*math.Log10(2))); got != want {
			t.Fatalf("log10Pow2(%d) = %d, want %d", e, got, want)
		}
	}
	for e := 0; e <= 2620; e++ {
		if got, want := log10Pow5(e), int(math.Floor(float64(e)*math.Log10(5))); got != want {
			t.Fatalf("log10Pow5(%d) = %d, want %d", e, got, want)
		}
	}
	if !multipleOfPowerOf5(125, 3) || multipleOfPowerOf5(124, 1) || !multipleOfPowerOf5(7, 0) {
		t.Errorf("multipleOfPowerOf5 wrong")
	}
	if !multipleOfPowerOf2(8, 3) || multipleOfPowerOf2(8, 4) {
		t.Errorf("multipleOfPowerOf2 wrong")
	}
}

func BenchmarkRyuShortest(b *testing.B) {
	corpus := schryer.CorpusN(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Shortest(corpus[i%len(corpus)])
	}
}
