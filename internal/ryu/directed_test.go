package ryu

import (
	"math"
	"math/rand"
	"testing"

	"floatprint/internal/core"
	"floatprint/internal/fpformat"
	"floatprint/internal/schryer"
)

// coreDirected runs the exact one-sided core on |v| and returns its
// digit string and K — the oracle both kernels must match byte for byte.
func coreDirected(t *testing.T, v float64, above bool) (string, int) {
	t.Helper()
	val := fpformat.DecodeFloat64(v)
	val.Neg = false
	var (
		res core.Result
		err error
	)
	if above {
		res, err = core.CeilFormat(val, 10, core.ScalingEstimate)
	} else {
		res, err = core.FloorFormat(val, 10, core.ScalingEstimate)
	}
	if err != nil {
		t.Fatalf("exact directed core(%x, above=%v): %v", math.Float64bits(v), above, err)
	}
	return digitsString(res.Digits), res.K
}

// checkDirected runs both kernels on v and fails on any decline or any
// byte of divergence from the exact core.  The kernels are expected to
// serve every positive finite value: unlike the nearest kernel there is
// no tie case to cede, so a decline is itself a bug.
func checkDirected(t *testing.T, v float64) {
	t.Helper()
	var buf [BufLen]byte
	for _, above := range []bool{false, true} {
		var n, k int
		var ok bool
		if above {
			n, k, ok = ShortestAboveInto(buf[:], v)
		} else {
			n, k, ok = ShortestBelowInto(buf[:], v)
		}
		if !ok {
			t.Fatalf("directed kernel declined %g [%x] above=%v", v, math.Float64bits(v), above)
		}
		got := string(buf[:n])
		wantD, wantK := coreDirected(t, v, above)
		if got != wantD || k != wantK {
			t.Fatalf("directed(%g [%x], above=%v) = %q K=%d, exact core = %q K=%d",
				v, math.Float64bits(v), above, got, k, wantD, wantK)
		}
	}
}

// TestDirectedEdgeValues pins the boundary inventory: format extremes,
// power-of-two gap changes (where mmShift differs), denormals, and
// values on both sides of the e2 sign split.
func TestDirectedEdgeValues(t *testing.T) {
	values := []float64{
		1, 2, 3, 0.5, 0.1, 0.3, 1.0 / 3.0, math.Pi, math.E,
		1e23, 1e22, 9.109383632e-31, 5e-324, math.MaxFloat64,
		0x1p-1022, math.Nextafter(0x1p-1022, 0), math.Nextafter(0x1p-1022, 1),
		math.Nextafter(1, 2), math.Nextafter(1, 0), math.Nextafter(2, 1),
		123456789012345680000, 1e300, 1e-300, 2.2250738585072011e-308,
		1.5, 1024, 1 << 52, 1<<53 - 1, 4.9406564584124654e-324,
		7.2057594037927933e16, 0x1p1023, math.Nextafter(0x1p1023, 0),
	}
	for _, v := range values {
		checkDirected(t, v)
	}
}

// TestDirectedMatchesExactCorpus sweeps the full 250,680-value corpus
// (both kernels, both signs of the magnitude handled by the caller, so
// magnitudes only here): byte identity with the exact one-sided core and
// zero declines.
func TestDirectedMatchesExactCorpus(t *testing.T) {
	n := schryer.CorpusSize
	if testing.Short() {
		n = 8000
	}
	for _, v := range schryer.CorpusN(n) {
		checkDirected(t, math.Abs(v))
	}
}

// TestDirectedRandomBits hammers random bit patterns, including the
// denormal band the corpus undersamples.
func TestDirectedRandomBits(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	iters := 200000
	if testing.Short() {
		iters = 5000
	}
	for i := 0; i < iters; i++ {
		v := math.Float64frombits(rng.Uint64())
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		checkDirected(t, math.Abs(v))
	}
	// Dense denormal sweep: tiny mantissas have the degenerate mmShift
	// and the deepest e2.
	for m := uint64(1); m < 3000; m++ {
		checkDirected(t, math.Float64frombits(m))
	}
}

// TestDirectedDomainDeclines pins the decline contract on out-of-domain
// input: non-positive, non-finite, and undersized buffers must return
// ok == false, never garbage.
func TestDirectedDomainDeclines(t *testing.T) {
	var buf [BufLen]byte
	bad := []float64{0, math.Copysign(0, -1), -1, math.Inf(1), math.Inf(-1), math.NaN()}
	for _, v := range bad {
		if _, _, ok := ShortestBelowInto(buf[:], v); ok {
			t.Errorf("ShortestBelowInto accepted out-of-domain %v", v)
		}
		if _, _, ok := ShortestAboveInto(buf[:], v); ok {
			t.Errorf("ShortestAboveInto accepted out-of-domain %v", v)
		}
	}
	short := make([]byte, BufLen-1)
	if _, _, ok := ShortestBelowInto(short, 1.5); ok {
		t.Error("ShortestBelowInto accepted an undersized buffer")
	}
	if _, _, ok := ShortestAboveInto(short, 1.5); ok {
		t.Error("ShortestAboveInto accepted an undersized buffer")
	}
}
