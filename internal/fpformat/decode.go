package fpformat

import (
	"fmt"
	"math"

	"floatprint/internal/bignat"
)

// DecodeFloat64 decodes v into the paper's (f, e) form under Binary64.
func DecodeFloat64(v float64) Value {
	return decodeBits64(math.Float64bits(v), Binary64)
}

// DecodeFloat32 decodes v into the paper's (f, e) form under Binary32.
func DecodeFloat32(v float32) Value {
	return decodeBits64(uint64(math.Float32bits(v)), Binary32)
}

// DecodeBits decodes an IEEE interchange bit pattern of at most 64 bits
// (binary16, binary32, binary64) for the given format.
func (f *Format) DecodeBits(bits uint64) (Value, error) {
	if f.ExpBits == 0 || !f.HiddenBit || f.ExpBits+f.MantBits+1 > 64 {
		return Value{}, fmt.Errorf("fpformat: %s has no 64-bit IEEE encoding", f.Name)
	}
	return decodeBits64(bits, f), nil
}

// decodeBits64 splits a hidden-bit IEEE encoding into sign, biased exponent,
// and mantissa, then applies the paper's Section 2.1 rules:
//
//	1 <= be <= maxBE-1: normalized, v = ±(2^mantBits + m) × 2^(be-bias)
//	be == 0:            denormalized (including ±0), v = ±m × 2^MinExp
//	be == maxBE:        ±Inf if m == 0, NaN otherwise
func decodeBits64(bits uint64, f *Format) Value {
	mantMask := uint64(1)<<f.MantBits - 1
	expMask := uint64(1)<<f.ExpBits - 1
	m := bits & mantMask
	be := (bits >> f.MantBits) & expMask
	neg := bits>>(f.MantBits+f.ExpBits)&1 == 1

	switch {
	case be == expMask:
		if m == 0 {
			return Value{Fmt: f, Class: Inf, Neg: neg}
		}
		return Value{Fmt: f, Class: NaN, Neg: neg}
	case be == 0:
		if m == 0 {
			return Value{Fmt: f, Class: Zero, Neg: neg}
		}
		return Value{Fmt: f, Class: Denormal, Neg: neg, F: bignat.FromUint64(m), E: f.MinExp}
	}
	frac := m | 1<<f.MantBits // restore the hidden bit
	// be == 1 corresponds to e == MinExp for normalized values.
	e := f.MinExp + int(be) - 1
	return Value{Fmt: f, Class: Normal, Neg: neg, F: bignat.FromUint64(frac), E: e}
}

// EncodeBits is the inverse of DecodeBits for finite values; it returns the
// IEEE bit pattern for v, which must belong to a hidden-bit format of at
// most 64 bits.
func EncodeBits(v Value) (uint64, error) {
	f := v.Fmt
	if f.ExpBits == 0 || !f.HiddenBit || f.ExpBits+f.MantBits+1 > 64 {
		return 0, fmt.Errorf("fpformat: %s has no 64-bit IEEE encoding", f.Name)
	}
	var bits uint64
	if v.Neg {
		bits = 1 << (f.MantBits + f.ExpBits)
	}
	switch v.Class {
	case Zero:
		return bits, nil
	case Inf:
		return bits | (uint64(1)<<f.ExpBits-1)<<f.MantBits, nil
	case NaN:
		return bits | (uint64(1)<<f.ExpBits-1)<<f.MantBits | 1<<(f.MantBits-1), nil
	}
	fu, ok := v.F.Uint64()
	if !ok {
		return 0, fmt.Errorf("fpformat: mantissa too wide for %s", f.Name)
	}
	if v.Class == Denormal || (v.E == f.MinExp && fu < 1<<f.MantBits) {
		if v.E != f.MinExp {
			return 0, fmt.Errorf("fpformat: denormal with e=%d != MinExp", v.E)
		}
		return bits | fu, nil
	}
	be := uint64(v.E - f.MinExp + 1)
	if be >= uint64(1)<<f.ExpBits-1 {
		return 0, fmt.Errorf("fpformat: exponent %d overflows %s", v.E, f.Name)
	}
	return bits | be<<f.MantBits | fu&(1<<f.MantBits-1), nil
}

// Float64 converts a finite Binary64 Value back to a float64.
func (v Value) Float64() (float64, error) {
	if v.Fmt != Binary64 {
		return 0, fmt.Errorf("fpformat: Float64 on %s value", v.Fmt.Name)
	}
	bits, err := EncodeBits(v)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(bits), nil
}

// Float32 converts a finite Binary32 Value back to a float32.
func (v Value) Float32() (float32, error) {
	if v.Fmt != Binary32 {
		return 0, fmt.Errorf("fpformat: Float32 on %s value", v.Fmt.Name)
	}
	bits, err := EncodeBits(v)
	if err != nil {
		return 0, err
	}
	return math.Float32frombits(uint32(bits)), nil
}
