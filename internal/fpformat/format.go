// Package fpformat describes floating-point formats and decodes values into
// the (f, e) mantissa/exponent form used throughout Burger & Dybvig's
// algorithm: v = f × b^e with 0 <= f < b^p, where b is the input base and p
// the precision in base-b digits.
//
// The package models IEEE 754 binary interchange formats (binary16/32/64,
// the x87 80-bit extended format, and binary128) as instances of a single
// generic Format descriptor, and also admits arbitrary synthetic formats in
// any base 2..36 so the printing algorithm's base-b generality can be
// exercised and tested.
package fpformat

import (
	"fmt"

	"floatprint/internal/bignat"
)

// Format describes a floating-point format in the paper's terms.
// A finite value of the format is v = f × Base^e where f and e are
// integers, 0 <= f < Base^Precision, and MinExp <= e <= MaxExp.
// Normalized values have f >= Base^(Precision-1); values with
// e == MinExp may be denormalized (f below that bound).
type Format struct {
	// Name identifies the format in diagnostics, e.g. "binary64".
	Name string
	// Base is b, the radix of the mantissa (2 for all IEEE formats).
	Base int
	// Precision is p, the mantissa size in base-b digits (53 for binary64,
	// counting the hidden bit).
	Precision int
	// MinExp and MaxExp bound the exponent e of v = f × b^e.
	// For binary64, e ranges over [-1074, 971].
	MinExp, MaxExp int

	// ExpBits and MantBits give the IEEE interchange encoding widths when
	// the format has one (ExpBits > 0); synthetic formats leave them zero.
	ExpBits, MantBits int
	// HiddenBit reports whether the encoding omits the leading mantissa
	// bit (true for all IEEE interchange formats, false for x87 80-bit).
	HiddenBit bool
}

// Predefined IEEE 754 formats.
var (
	Binary16 = &Format{
		Name: "binary16", Base: 2, Precision: 11,
		MinExp: -24, MaxExp: 5,
		ExpBits: 5, MantBits: 10, HiddenBit: true,
	}
	Binary32 = &Format{
		Name: "binary32", Base: 2, Precision: 24,
		MinExp: -149, MaxExp: 104,
		ExpBits: 8, MantBits: 23, HiddenBit: true,
	}
	Binary64 = &Format{
		Name: "binary64", Base: 2, Precision: 53,
		MinExp: -1074, MaxExp: 971,
		ExpBits: 11, MantBits: 52, HiddenBit: true,
	}
	// X87Extended is the x87 80-bit format with an explicit integer bit.
	X87Extended = &Format{
		Name: "x87ext", Base: 2, Precision: 64,
		MinExp: -16445, MaxExp: 16320,
		ExpBits: 15, MantBits: 64, HiddenBit: false,
	}
	Binary128 = &Format{
		Name: "binary128", Base: 2, Precision: 113,
		MinExp: -16494, MaxExp: 16271,
		ExpBits: 15, MantBits: 112, HiddenBit: true,
	}
	// BFloat16 is the truncated-float32 format used by ML accelerators:
	// float32's exponent range with an 8-bit significand.
	BFloat16 = &Format{
		Name: "bfloat16", Base: 2, Precision: 8,
		MinExp: -133, MaxExp: 120,
		ExpBits: 8, MantBits: 7, HiddenBit: true,
	}
)

// New returns a synthetic format with the given base, precision, and
// exponent range.  It has no IEEE bit-level encoding (Encode/DecodeBits do
// not apply) but fully supports decoding from parts, neighbor computation,
// and printing.
func New(name string, base, precision, minExp, maxExp int) (*Format, error) {
	switch {
	case base < 2 || base > 36:
		return nil, fmt.Errorf("fpformat: base %d out of range [2,36]", base)
	case precision < 1:
		return nil, fmt.Errorf("fpformat: precision %d < 1", precision)
	case minExp > maxExp:
		return nil, fmt.Errorf("fpformat: MinExp %d > MaxExp %d", minExp, maxExp)
	}
	return &Format{Name: name, Base: base, Precision: precision, MinExp: minExp, MaxExp: maxExp}, nil
}

// Class labels the kind of a decoded value.
type Class int

const (
	// Zero is ±0.
	Zero Class = iota
	// Denormal is a finite value with e == MinExp and f < b^(p-1).
	Denormal
	// Normal is any other finite nonzero value.
	Normal
	// Inf is ±infinity.
	Inf
	// NaN is not-a-number.
	NaN
)

func (c Class) String() string {
	switch c {
	case Zero:
		return "zero"
	case Denormal:
		return "denormal"
	case Normal:
		return "normal"
	case Inf:
		return "inf"
	case NaN:
		return "nan"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Value is a decoded floating-point datum: v = ±F × Base^E when finite.
type Value struct {
	Fmt   *Format
	Class Class
	Neg   bool
	// F is the integer mantissa, 0 <= F < Base^Precision.
	// It is nil (zero) for Zero, Inf, and NaN.
	F bignat.Nat
	// E is the exponent of v = F × Base^E.  Zero for non-finite classes.
	E int
}

// IsFinite reports whether v is a finite number (including zero).
func (v Value) IsFinite() bool { return v.Class == Zero || v.Class == Denormal || v.Class == Normal }

// MantissaEven reports whether the integer mantissa F is even, which
// determines boundary ownership under the reader's round-to-even rule.
func (v Value) MantissaEven() bool {
	if v.Fmt.Base%2 == 0 {
		return len(v.F) == 0 || v.F[0]&1 == 0
	}
	// For odd bases, evenness of f must be computed mod 2 explicitly.
	_, r := bignat.DivModWord(v.F, 2)
	return r == 0
}

// IsBoundary reports whether v sits just above a binade boundary
// (f == b^(p-1)), where the gap to the predecessor is narrower than the gap
// to the successor — the special case in the paper's v⁻ computation and in
// rows 2 and 4 of Table 1.
func (v Value) IsBoundary() bool {
	if v.Class != Normal {
		return false
	}
	return bignat.Cmp(v.F, v.Fmt.minNormalMantissa()) == 0
}

// minNormalMantissa returns b^(p-1), the smallest normalized mantissa.
func (f *Format) minNormalMantissa() bignat.Nat {
	return bignat.PowUint(uint64(f.Base), uint(f.Precision-1))
}

// maxMantissa returns b^p - 1, the largest mantissa.
func (f *Format) maxMantissa() bignat.Nat {
	return bignat.SubWord(bignat.PowUint(uint64(f.Base), uint(f.Precision)), 1)
}

// FromParts builds a finite Value from a sign, mantissa, and exponent,
// classifying it and validating the ranges.  The mantissa is normalized
// upward when possible (shifted so that f >= b^(p-1)) to produce the
// canonical representation; f == 0 yields Zero regardless of e.
func (f *Format) FromParts(neg bool, mant bignat.Nat, e int) (Value, error) {
	if mant.IsZero() {
		return Value{Fmt: f, Class: Zero, Neg: neg}, nil
	}
	if bignat.Cmp(mant, f.maxMantissa()) > 0 {
		return Value{}, fmt.Errorf("fpformat: mantissa exceeds %d base-%d digits", f.Precision, f.Base)
	}
	// Normalize: multiply mantissa by base while it stays below b^p and the
	// exponent stays above MinExp.
	minNorm := f.minNormalMantissa()
	for bignat.Cmp(mant, minNorm) < 0 && e > f.MinExp {
		mant = bignat.MulWord(mant, bignat.Word(f.Base))
		e--
	}
	if e < f.MinExp || e > f.MaxExp {
		return Value{}, fmt.Errorf("fpformat: exponent %d out of range [%d,%d]", e, f.MinExp, f.MaxExp)
	}
	class := Normal
	if bignat.Cmp(mant, minNorm) < 0 {
		class = Denormal
	}
	return Value{Fmt: f, Class: class, Neg: neg, F: mant, E: e}, nil
}
