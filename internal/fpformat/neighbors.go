package fpformat

import "floatprint/internal/bignat"

// Next returns the floating-point successor v⁺ of a finite, non-negative
// value, following Section 2.1 of the paper: for most v, v⁺ = (f+1) × b^e;
// when f+1 == b^p the mantissa wraps to b^(p-1) and the exponent rises; at
// the maximum exponent the successor is +Inf.  Next(+0) is the smallest
// positive denormal.
func Next(v Value) Value {
	f := v.Fmt
	switch v.Class {
	case Inf, NaN:
		return v
	case Zero:
		return Value{Fmt: f, Class: Denormal, F: bignat.Nat{1}, E: f.MinExp}
	}
	nf := bignat.AddWord(v.F, 1)
	e := v.E
	if bignat.Cmp(nf, f.maxMantissa()) > 0 { // nf == b^p
		if e == f.MaxExp {
			return Value{Fmt: f, Class: Inf, Neg: v.Neg}
		}
		nf = f.minNormalMantissa()
		e++
	}
	class := Normal
	if e == f.MinExp && bignat.Cmp(nf, f.minNormalMantissa()) < 0 {
		class = Denormal
	}
	return Value{Fmt: f, Class: class, Neg: v.Neg, F: nf, E: e}
}

// Prev returns the floating-point predecessor v⁻ of a finite, positive
// value: for most v, v⁻ = (f−1) × b^e; when f == b^(p-1) and e is above the
// minimum exponent the gap narrows and v⁻ = (b^p − 1) × b^(e−1).
// Prev of the smallest positive denormal is +0.
func Prev(v Value) Value {
	f := v.Fmt
	switch v.Class {
	case Inf, NaN, Zero:
		return v
	}
	if v.IsBoundary() && v.E > f.MinExp {
		return Value{Fmt: f, Class: Normal, Neg: v.Neg, F: f.maxMantissa(), E: v.E - 1}
	}
	nf := bignat.SubWord(v.F, 1)
	if nf.IsZero() {
		return Value{Fmt: f, Class: Zero, Neg: v.Neg}
	}
	class := Normal
	if bignat.Cmp(nf, f.minNormalMantissa()) < 0 {
		class = Denormal
	}
	return Value{Fmt: f, Class: class, Neg: v.Neg, F: nf, E: v.E}
}
