package fpformat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"floatprint/internal/bignat"
)

func TestDecodeFloat64Known(t *testing.T) {
	cases := []struct {
		v     float64
		class Class
		f     uint64
		e     int
	}{
		{1.0, Normal, 1 << 52, -52},
		{2.0, Normal, 1 << 52, -51},
		{0.5, Normal, 1 << 52, -53},
		{1.5, Normal, 3 << 51, -52},
		{math.MaxFloat64, Normal, 1<<53 - 1, 971},
		{math.SmallestNonzeroFloat64, Denormal, 1, -1074},
		{0x1p-1022, Normal, 1 << 52, -1074},
	}
	for _, c := range cases {
		v := DecodeFloat64(c.v)
		fu, _ := v.F.Uint64()
		if v.Class != c.class || fu != c.f || v.E != c.e {
			t.Errorf("DecodeFloat64(%g) = {%v, f=%d, e=%d}, want {%v, f=%d, e=%d}",
				c.v, v.Class, fu, v.E, c.class, c.f, c.e)
		}
		if v.Neg {
			t.Errorf("DecodeFloat64(%g).Neg = true", c.v)
		}
	}
}

func TestDecodeSpecials(t *testing.T) {
	if v := DecodeFloat64(math.Inf(1)); v.Class != Inf || v.Neg {
		t.Errorf("+Inf decoded as %v neg=%v", v.Class, v.Neg)
	}
	if v := DecodeFloat64(math.Inf(-1)); v.Class != Inf || !v.Neg {
		t.Errorf("-Inf decoded as %v neg=%v", v.Class, v.Neg)
	}
	if v := DecodeFloat64(math.NaN()); v.Class != NaN {
		t.Errorf("NaN decoded as %v", v.Class)
	}
	if v := DecodeFloat64(0); v.Class != Zero || v.Neg {
		t.Errorf("+0 decoded as %v neg=%v", v.Class, v.Neg)
	}
	if v := DecodeFloat64(math.Copysign(0, -1)); v.Class != Zero || !v.Neg {
		t.Errorf("-0 decoded as %v neg=%v", v.Class, v.Neg)
	}
	if !DecodeFloat64(1.0).IsFinite() || DecodeFloat64(math.Inf(1)).IsFinite() {
		t.Errorf("IsFinite wrong")
	}
}

func TestDecodeValueIdentity(t *testing.T) {
	// f × 2^e must equal the original float, checked in exact arithmetic by
	// scaling both sides to integers.
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		x := math.Float64frombits(r.Uint64())
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		v := DecodeFloat64(x)
		back, err := v.Float64()
		if err != nil {
			t.Fatalf("Float64 round-trip error for %x: %v", math.Float64bits(x), err)
		}
		if math.Float64bits(back) != math.Float64bits(x) {
			t.Fatalf("decode/encode mismatch: %x -> %x", math.Float64bits(x), math.Float64bits(back))
		}
	}
}

func TestDecodeFloat32RoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		x := math.Float32frombits(r.Uint32())
		if x != x || math.IsInf(float64(x), 0) {
			continue
		}
		v := DecodeFloat32(x)
		back, err := v.Float32()
		if err != nil {
			t.Fatalf("Float32 round-trip error: %v", err)
		}
		if math.Float32bits(back) != math.Float32bits(x) {
			t.Fatalf("decode/encode mismatch: %x -> %x", math.Float32bits(x), math.Float32bits(back))
		}
	}
}

func TestEncodeBitsErrors(t *testing.T) {
	if _, err := EncodeBits(Value{Fmt: Binary128}); err == nil {
		t.Errorf("EncodeBits on binary128 should fail")
	}
	if _, err := EncodeBits(Value{Fmt: X87Extended}); err == nil {
		t.Errorf("EncodeBits on x87ext should fail")
	}
	v := DecodeFloat32(1.5)
	if _, err := v.Float64(); err == nil {
		t.Errorf("Float64 on a binary32 value should fail")
	}
	if _, err := DecodeFloat64(1.5).Float32(); err == nil {
		t.Errorf("Float32 on a binary64 value should fail")
	}
}

func TestEncodeSpecials(t *testing.T) {
	for _, c := range []struct {
		v    Value
		want uint64
	}{
		{Value{Fmt: Binary64, Class: Zero}, 0},
		{Value{Fmt: Binary64, Class: Zero, Neg: true}, 1 << 63},
		{Value{Fmt: Binary64, Class: Inf}, math.Float64bits(math.Inf(1))},
		{Value{Fmt: Binary64, Class: Inf, Neg: true}, math.Float64bits(math.Inf(-1))},
	} {
		got, err := EncodeBits(c.v)
		if err != nil || got != c.want {
			t.Errorf("EncodeBits(%v %v) = %x, %v; want %x", c.v.Class, c.v.Neg, got, err, c.want)
		}
	}
	nan, err := EncodeBits(Value{Fmt: Binary64, Class: NaN})
	if err != nil || !math.IsNaN(math.Float64frombits(nan)) {
		t.Errorf("EncodeBits(NaN) = %x, %v", nan, err)
	}
}

func TestNextPrevAgainstNextafter(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	samples := []float64{
		1.0, 2.0, 0.1, math.SmallestNonzeroFloat64, 0x1p-1022, math.MaxFloat64,
		0x1.fffffffffffffp0, // just below 2: Next crosses a binade boundary
	}
	for i := 0; i < 3000; i++ {
		samples = append(samples, math.Abs(math.Float64frombits(r.Uint64())))
	}
	for _, x := range samples {
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
			continue
		}
		v := DecodeFloat64(x)

		next := Next(v)
		wantNext := math.Nextafter(x, math.Inf(1))
		if math.IsInf(wantNext, 1) {
			if next.Class != Inf {
				t.Fatalf("Next(%g) should be Inf", x)
			}
		} else {
			got, err := next.Float64()
			if err != nil || got != wantNext {
				t.Fatalf("Next(%g) = %g (%v), want %g", x, got, err, wantNext)
			}
		}

		prev := Prev(v)
		wantPrev := math.Nextafter(x, 0)
		got, err := prev.Float64()
		if err != nil || got != wantPrev {
			t.Fatalf("Prev(%g) = %g (%v), want %g", x, got, err, wantPrev)
		}
	}
}

func TestNextPrevInverse(t *testing.T) {
	f := func(bits uint64) bool {
		x := math.Abs(math.Float64frombits(bits))
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 || x == math.MaxFloat64 {
			return true
		}
		v := DecodeFloat64(x)
		back, err := Prev(Next(v)).Float64()
		return err == nil && back == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNextOfZeroAndSpecials(t *testing.T) {
	z := Value{Fmt: Binary64, Class: Zero}
	n := Next(z)
	got, err := n.Float64()
	if err != nil || got != math.SmallestNonzeroFloat64 {
		t.Errorf("Next(0) = %g, want %g", got, math.SmallestNonzeroFloat64)
	}
	if Next(Value{Fmt: Binary64, Class: Inf}).Class != Inf {
		t.Errorf("Next(Inf) should stay Inf")
	}
	if Prev(Value{Fmt: Binary64, Class: Zero}).Class != Zero {
		t.Errorf("Prev(0) should stay Zero")
	}
	// Prev of the smallest denormal is zero.
	tiny := DecodeFloat64(math.SmallestNonzeroFloat64)
	if Prev(tiny).Class != Zero {
		t.Errorf("Prev(smallest denormal) should be Zero")
	}
	// Next at MaxExp overflows to Inf.
	if Next(DecodeFloat64(math.MaxFloat64)).Class != Inf {
		t.Errorf("Next(MaxFloat64) should be Inf")
	}
}

func TestIsBoundary(t *testing.T) {
	if !DecodeFloat64(1.0).IsBoundary() {
		t.Errorf("1.0 (f = 2^52) should be a boundary")
	}
	if DecodeFloat64(1.5).IsBoundary() {
		t.Errorf("1.5 should not be a boundary")
	}
	if DecodeFloat64(math.SmallestNonzeroFloat64).IsBoundary() {
		t.Errorf("denormals are never boundaries")
	}
}

func TestMantissaEven(t *testing.T) {
	if !DecodeFloat64(1.0).MantissaEven() {
		t.Errorf("f(1.0) = 2^52 is even")
	}
	if DecodeFloat64(math.Nextafter(1.0, 2)).MantissaEven() {
		t.Errorf("f(nextafter(1)) = 2^52+1 is odd")
	}
	// Even non-binary base uses the low-limb fast path.
	dec, err := New("dec7", 10, 7, -30, 30)
	if err != nil {
		t.Fatal(err)
	}
	v, err := dec.FromParts(false, bignat.FromUint64(1234567), 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.MantissaEven() {
		t.Errorf("1234567 should be odd")
	}
	// An odd base exercises the explicit mod-2 path.
	b3, err := New("tern", 3, 5, -10, 10)
	if err != nil {
		t.Fatal(err)
	}
	v3, err := b3.FromParts(false, bignat.FromUint64(100), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !v3.MantissaEven() {
		t.Errorf("100 should be even in any base")
	}
}

func TestNewValidation(t *testing.T) {
	for _, c := range []struct{ base, prec, lo, hi int }{
		{1, 5, -5, 5}, {37, 5, -5, 5}, {10, 0, -5, 5}, {10, 5, 5, -5},
	} {
		if _, err := New("bad", c.base, c.prec, c.lo, c.hi); err == nil {
			t.Errorf("New(%+v) should fail", c)
		}
	}
	if _, err := New("ok", 10, 7, -40, 40); err != nil {
		t.Errorf("New valid format failed: %v", err)
	}
}

func TestFromParts(t *testing.T) {
	f := Binary64
	// Normalization: 1 × 2^0 becomes 2^52 × 2^-52.
	v, err := f.FromParts(false, bignat.FromUint64(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	fu, _ := v.F.Uint64()
	if fu != 1<<52 || v.E != -52 || v.Class != Normal {
		t.Errorf("FromParts(1, 0) = f=%d e=%d %v", fu, v.E, v.Class)
	}
	x, err := v.Float64()
	if err != nil || x != 1.0 {
		t.Errorf("FromParts(1,0).Float64() = %g, %v", x, err)
	}
	// Zero regardless of exponent.
	z, err := f.FromParts(true, nil, 100)
	if err != nil || z.Class != Zero || !z.Neg {
		t.Errorf("FromParts(0) wrong: %v %v", z, err)
	}
	// Denormal: cannot normalize below MinExp.
	d, err := f.FromParts(false, bignat.FromUint64(3), f.MinExp)
	if err != nil || d.Class != Denormal {
		t.Errorf("FromParts(3, MinExp) = %v, %v", d.Class, err)
	}
	// Mantissa too wide.
	if _, err := f.FromParts(false, bignat.PowUint(2, 53), 0); err == nil {
		t.Errorf("oversized mantissa accepted")
	}
	// Exponent too large.
	if _, err := f.FromParts(false, bignat.PowUint(2, 52), f.MaxExp+1); err == nil {
		t.Errorf("oversized exponent accepted")
	}
	// Exponent too small even after normalization.
	if _, err := f.FromParts(false, bignat.PowUint(2, 52), f.MinExp-1); err == nil {
		t.Errorf("undersized exponent accepted")
	}
}

func TestFromPartsRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		x := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
			continue
		}
		v := DecodeFloat64(x)
		re, err := Binary64.FromParts(v.Neg, v.F, v.E)
		if err != nil {
			t.Fatalf("FromParts(decode(%g)): %v", x, err)
		}
		back, err := re.Float64()
		if err != nil || back != x {
			t.Fatalf("FromParts round-trip: %g -> %g (%v)", x, back, err)
		}
	}
}

func TestClassString(t *testing.T) {
	want := map[Class]string{Zero: "zero", Denormal: "denormal", Normal: "normal", Inf: "inf", NaN: "nan"}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), c.String(), s)
		}
	}
	if Class(99).String() != "Class(99)" {
		t.Errorf("unknown class string = %q", Class(99).String())
	}
}

func TestDecodeBitsUnsupported(t *testing.T) {
	if _, err := Binary128.DecodeBits(0); err == nil {
		t.Errorf("DecodeBits on binary128 should fail")
	}
	if _, err := X87Extended.DecodeBits(0); err == nil {
		t.Errorf("DecodeBits on x87ext (no hidden bit) should fail")
	}
	v, err := Binary16.DecodeBits(0x3C00) // 1.0 in binary16
	if err != nil || v.Class != Normal {
		t.Fatalf("DecodeBits(binary16 1.0): %v %v", v.Class, err)
	}
	fu, _ := v.F.Uint64()
	if fu != 1<<10 || v.E != -10 {
		t.Errorf("binary16 1.0 = f=%d e=%d", fu, v.E)
	}
}

func TestBFloat16Exhaustive(t *testing.T) {
	// Every positive finite bfloat16 decodes, re-encodes, and equals the
	// truncated float32 it represents.
	for bits := uint64(1); bits < 0x7f80; bits++ {
		v, err := BFloat16.DecodeBits(bits)
		if err != nil {
			t.Fatal(err)
		}
		back, err := EncodeBits(v)
		if err != nil || back != bits {
			t.Fatalf("bfloat16 %04x re-encodes to %04x (%v)", bits, back, err)
		}
		// Value identity: a bfloat16 is the float32 with the same top bits
		// (classification may differ — small bfloat16 normals are float32
		// denormals-range values and vice versa is impossible here — so
		// compare the exact values f·2^e).
		f32 := math.Float32frombits(uint32(bits) << 16)
		want := DecodeFloat32(f32)
		lhs, rhs := v.F, want.F
		if d := v.E - want.E; d >= 0 {
			lhs = bignat.Shl(lhs, uint(d))
		} else {
			rhs = bignat.Shl(rhs, uint(-d))
		}
		if bignat.Cmp(lhs, rhs) != 0 {
			t.Fatalf("bfloat16 %04x: value %v·2^%d != float32 %v·2^%d",
				bits, v.F, v.E, want.F, want.E)
		}
	}
}

func TestBFloat16SpecialsAndBounds(t *testing.T) {
	if v, _ := BFloat16.DecodeBits(0x7f80); v.Class != Inf {
		t.Errorf("bfloat16 inf pattern decoded as %v", v.Class)
	}
	if v, _ := BFloat16.DecodeBits(0x7fc0); v.Class != NaN {
		t.Errorf("bfloat16 nan pattern decoded as %v", v.Class)
	}
	// Max finite bfloat16 = 0x7f7f = 3.3895314e38.
	v, _ := BFloat16.DecodeBits(0x7f7f)
	f, err := valueApprox(v)
	if err != nil || math.Abs(f-3.3895314e38) > 1e31 {
		t.Errorf("bfloat16 max = %g (%v)", f, err)
	}
}

// valueApprox converts any small-format Value to float64 for sanity checks.
func valueApprox(v Value) (float64, error) {
	u, ok := v.F.Uint64()
	if !ok {
		return 0, nil
	}
	return float64(u) * math.Pow(2, float64(v.E)), nil
}
