package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestRawIgnoresGate(t *testing.T) {
	prev := Enable(false)
	defer Enable(prev)

	var c Raw
	c.Inc()
	c.Add(9)
	if got := c.Load(); got != 10 {
		t.Fatalf("Raw counter = %d with gate off, want 10", got)
	}
}

func TestRawConcurrent(t *testing.T) {
	var c Raw
	const workers, each = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*each {
		t.Fatalf("Raw = %d, want %d", got, workers*each)
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1)
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.05, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	var sb strings.Builder
	if err := h.WritePrometheus(&sb, "x_seconds", "help text"); err != nil {
		t.Fatal(err)
	}
	want := `# HELP x_seconds help text
# TYPE x_seconds histogram
x_seconds_bucket{le="0.001"} 1
x_seconds_bucket{le="0.01"} 3
x_seconds_bucket{le="0.1"} 4
x_seconds_bucket{le="+Inf"} 5
x_seconds_sum 5.0605
x_seconds_count 5
`
	if sb.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(1, 10)
	const workers, each = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(float64(i % 20))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*each {
		t.Fatalf("Count = %d, want %d", got, workers*each)
	}
}

// TestLabeledFamilyExposition pins the split-family format: one
// HELP/TYPE head, then labeled samples — counters via WriteSample,
// histograms via WriteBuckets with the le label appended after the
// caller's labels.
func TestLabeledFamilyExposition(t *testing.T) {
	var sb strings.Builder
	if err := WriteMetricHead(&sb, "r_total", "counter", "requests by route."); err != nil {
		t.Fatal(err)
	}
	if err := WriteSample(&sb, "r_total", `route="/a"`, 3); err != nil {
		t.Fatal(err)
	}
	if err := WriteSample(&sb, "r_total", `route="/b",class="4xx"`, 0); err != nil {
		t.Fatal(err)
	}

	h := NewHistogram(0.001, 0.01)
	h.Observe(0.0005)
	h.Observe(0.5)
	if err := WriteMetricHead(&sb, "r_seconds", "histogram", "latency by route."); err != nil {
		t.Fatal(err)
	}
	if err := h.WriteBuckets(&sb, "r_seconds", `route="/a"`); err != nil {
		t.Fatal(err)
	}

	if err := WriteGaugeFloat(&sb, "up_seconds", "uptime.", 1.5); err != nil {
		t.Fatal(err)
	}

	want := `# HELP r_total requests by route.
# TYPE r_total counter
r_total{route="/a"} 3
r_total{route="/b",class="4xx"} 0
# HELP r_seconds latency by route.
# TYPE r_seconds histogram
r_seconds_bucket{route="/a",le="0.001"} 1
r_seconds_bucket{route="/a",le="0.01"} 1
r_seconds_bucket{route="/a",le="+Inf"} 2
r_seconds_sum{route="/a"} 0.5005
r_seconds_count{route="/a"} 2
# HELP up_seconds uptime.
# TYPE up_seconds gauge
up_seconds 1.5
`
	if sb.String() != want {
		t.Fatalf("got:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestWriteCounterAndGauge(t *testing.T) {
	var sb strings.Builder
	if err := WriteCounter(&sb, "a_total", "a help", 7); err != nil {
		t.Fatal(err)
	}
	if err := WriteGauge(&sb, "b", "b help", -3); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_total a help
# TYPE a_total counter
a_total 7
# HELP b b help
# TYPE b gauge
b -3
`
	if sb.String() != want {
		t.Fatalf("got:\n%s\nwant:\n%s", sb.String(), want)
	}
}
