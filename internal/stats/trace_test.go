package stats

import (
	"strings"
	"testing"

	"floatprint/internal/trace"
)

func TestTraceAggRecord(t *testing.T) {
	a := NewTraceAgg()
	a.Record(&trace.Conversion{
		Backend: trace.BackendExactFree, ScaleMethod: "estimate",
		EstimateK: 0, ScaleK: 1, FixupSteps: 1,
		Iterations: 17, Digits: 17, RoundedUp: true,
	})
	a.Record(&trace.Conversion{
		Backend: trace.BackendExactFree, ScaleMethod: "estimate",
		EstimateK: 1, ScaleK: 1, FixupSteps: 0,
		Iterations: 3, Digits: 3, TieBreak: true, FastPathMiss: true,
	})
	a.Record(&trace.Conversion{Backend: trace.BackendNone}) // special: skipped
	a.RecordFast(trace.BackendGrisu, 7)

	s := a.Snapshot()
	want := TraceSnapshot{
		Conversions: 3, Estimates: 2, Fixups: 1,
		Iterations: 27, Digits: 27, RoundUps: 1, Ties: 1, FastMisses: 1,
	}
	want.Backends[trace.BackendExactFree] = 2
	want.Backends[trace.BackendGrisu] = 1
	if s != want {
		t.Fatalf("Snapshot = %+v, want %+v", s, want)
	}

	a.Reset()
	if s := a.Snapshot(); s != (TraceSnapshot{}) {
		t.Fatalf("after Reset: %+v", s)
	}
	if n := a.digitLen.Count(); n != 0 {
		t.Fatalf("histogram count after Reset = %d", n)
	}
}

// TestTraceAggWritePrometheus pins the labeled backend-mix and histogram
// exposition byte for byte: scrapes and dashboards depend on these exact
// metric names, label values, and line shapes.
func TestTraceAggWritePrometheus(t *testing.T) {
	a := NewTraceAgg()
	a.RecordFast(trace.BackendGrisu, 3)
	a.RecordFast(trace.BackendGrisu, 17)
	a.Record(&trace.Conversion{Backend: trace.BackendExactFixed, Iterations: 20, Digits: 20})

	var sb strings.Builder
	if err := a.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE floatprint_trace_backend_total counter\n",
		"floatprint_trace_backend_total{backend=\"grisu3\"} 2\n",
		"floatprint_trace_backend_total{backend=\"exact-fixed\"} 1\n",
		"# TYPE floatprint_digit_length histogram\n",
		"floatprint_digit_length_bucket{le=\"3\"} 1\n",
		"floatprint_digit_length_bucket{le=\"17\"} 2\n",
		"floatprint_digit_length_bucket{le=\"+Inf\"} 3\n",
		"floatprint_digit_length_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "backend=\"none\"") {
		t.Errorf("exposition should skip the none backend:\n%s", out)
	}
}
