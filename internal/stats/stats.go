// Package stats is the conversion-path telemetry layer: a handful of
// process-global atomic counters that record which algorithm actually
// produced each result — the certified Grisu3 fast path, Gay's
// fixed-format fast path, or the exact big-integer fallback — plus the
// aggregate value/byte totals of the batch engine.
//
// The counters exist to make the paper's Table-2/3 style measurements
// self-describing: a throughput number is only meaningful alongside the
// path mix that produced it (~99.5% of shortest conversions should be
// certified Grisu3 hits; a corpus that drives the exact path harder is
// measuring a different algorithm).
//
// Collection is off by default and enabled with Enable(true): when
// disabled, every hot-path hook is a single predictable branch on an
// atomic bool load (a plain MOV on x86), so the telemetry layer costs
// nothing unless someone is looking.  When enabled, each hook is one
// uncontended atomic add on a counter padded to its own cache line, so
// concurrent shards never false-share.
package stats

import "sync/atomic"

// enabled gates all Counter increments.  It is atomic so Enable can be
// called while conversions are in flight (fpbench toggles it between
// experiment phases).
var enabled atomic.Bool

// Enable turns collection on or off and returns the previous setting.
func Enable(on bool) bool { return enabled.Swap(on) }

// Enabled reports whether collection is on.
func Enabled() bool { return enabled.Load() }

// Counter is one telemetry counter, padded so that adjacent counters in
// the package-level block sit on distinct cache lines (the hooks run on
// every conversion from every shard; false sharing between, say, the
// grisu-hit and batch-bytes counters would serialize unrelated workers).
type Counter struct {
	n atomic.Uint64
	_ [56]byte
}

// Inc adds one when collection is enabled.
func (c *Counter) Inc() {
	if enabled.Load() {
		c.n.Add(1)
	}
}

// Add adds n when collection is enabled.  Batch shards use it to fold a
// whole chunk's tally into the global counter with one atomic op.
func (c *Counter) Add(n uint64) {
	if enabled.Load() {
		c.n.Add(n)
	}
}

// Load returns the current count regardless of the enabled gate.
func (c *Counter) Load() uint64 { return c.n.Load() }

// The counters.  Hit/miss pairs count only conversions where the fast
// path was *attempted* (base 10, binary64, default scaling); ExactFree
// and ExactFixed count every conversion that ran the exact big-integer
// algorithm, including those where no fast path applied (other bases,
// non-default scaling, explicit positions).
var (
	// GrisuHits counts shortest conversions certified by the Grisu3 fast
	// path.
	GrisuHits Counter
	// GrisuMisses counts shortest conversions where Grisu3 was attempted
	// but failed certification and the exact algorithm decided.
	GrisuMisses Counter
	// RyuHits counts shortest conversions served by the Ryū fast path.
	RyuHits Counter
	// RyuMisses counts shortest conversions where Ryū was attempted but
	// declined (exact-halfway ties) and a fallback decided.
	RyuMisses Counter
	// GayHits counts fixed-format conversions certified by Gay's
	// extended-float fast path.
	GayHits Counter
	// GayMisses counts fixed-format conversions where the fast path was
	// attempted but declined.
	GayMisses Counter
	// ExactFree counts exact free-format (shortest) conversions.
	ExactFree Counter
	// ExactFixed counts exact fixed-format conversions (relative or
	// absolute position).
	ExactFixed Counter
	// BatchValues counts values converted by the batch engine.
	BatchValues Counter
	// BatchBytes counts output bytes produced by the batch engine.
	BatchBytes Counter
	// ParseFastHits counts parses certified by the Eisel–Lemire fast
	// path.
	ParseFastHits Counter
	// ParseFastMisses counts parses where the fast path was attempted
	// (base 10, nearest-even) but declined and the exact reader decided.
	ParseFastMisses Counter
	// ParseExact counts parses decided by the exact big-integer reader,
	// including those where no fast path applied (other bases, directed
	// modes) and those that ended in a range error.
	ParseExact Counter
	// BatchParseBlocks counts contiguous byte ranges scanned by the
	// block-at-a-time batch parse engine.
	BatchParseBlocks Counter
	// BatchParseValues counts values parsed by the batch parse engine.
	BatchParseValues Counter
	// BatchParseBytes counts input bytes consumed by the batch parse
	// engine.
	BatchParseBytes Counter
	// BatchParseFallbacks counts batch-parse tokens the chunked block
	// scanner declined and routed through the per-value parser (specials,
	// '#' marks, '@' exponents, ties, out-of-range magnitudes).
	BatchParseFallbacks Counter
	// DirectedRyuHits counts directed (floor/ceil) shortest conversions
	// served by the one-sided Ryū kernels.
	DirectedRyuHits Counter
	// DirectedRyuMisses counts directed shortest conversions where a
	// one-sided kernel was attempted but declined and the exact core
	// decided.
	DirectedRyuMisses Counter
	// DirectedFastHits counts directed-rounding parses certified by the
	// directed Eisel–Lemire fast path.
	DirectedFastHits Counter
	// DirectedFastMisses counts directed-rounding parses where the fast
	// path was attempted (base 10, binary64) but declined and the exact
	// reader decided.
	DirectedFastMisses Counter
	// IntervalPrints counts intervals formatted by the interval package
	// (one per [lo,hi] pair, not per endpoint; the endpoints' exact
	// conversions also appear in ExactFree).
	IntervalPrints Counter
	// IntervalParses counts intervals read by the interval package (one
	// per [lo,hi] text; the endpoints' exact conversions also appear in
	// ParseExact).
	IntervalParses Counter
)

// Snapshot is a coherent-enough copy of every counter: each field is an
// atomic load, so a snapshot taken while conversions are in flight may
// straddle an individual conversion but never tears a counter.
type Snapshot struct {
	GrisuHits, GrisuMisses         uint64
	RyuHits, RyuMisses             uint64
	GayHits, GayMisses             uint64
	ExactFree, ExactFixed          uint64
	BatchValues, BatchBytes        uint64
	ParseFastHits, ParseFastMisses uint64
	ParseExact                     uint64

	BatchParseBlocks, BatchParseValues   uint64
	BatchParseBytes, BatchParseFallbacks uint64

	DirectedRyuHits, DirectedRyuMisses   uint64
	DirectedFastHits, DirectedFastMisses uint64

	IntervalPrints, IntervalParses uint64
}

// Read snapshots all counters.
func Read() Snapshot {
	return Snapshot{
		GrisuHits:   GrisuHits.Load(),
		GrisuMisses: GrisuMisses.Load(),
		RyuHits:     RyuHits.Load(),
		RyuMisses:   RyuMisses.Load(),
		GayHits:     GayHits.Load(),
		GayMisses:   GayMisses.Load(),
		ExactFree:   ExactFree.Load(),
		ExactFixed:  ExactFixed.Load(),
		BatchValues: BatchValues.Load(),
		BatchBytes:  BatchBytes.Load(),

		ParseFastHits:   ParseFastHits.Load(),
		ParseFastMisses: ParseFastMisses.Load(),
		ParseExact:      ParseExact.Load(),

		BatchParseBlocks:    BatchParseBlocks.Load(),
		BatchParseValues:    BatchParseValues.Load(),
		BatchParseBytes:     BatchParseBytes.Load(),
		BatchParseFallbacks: BatchParseFallbacks.Load(),

		DirectedRyuHits:    DirectedRyuHits.Load(),
		DirectedRyuMisses:  DirectedRyuMisses.Load(),
		DirectedFastHits:   DirectedFastHits.Load(),
		DirectedFastMisses: DirectedFastMisses.Load(),

		IntervalPrints: IntervalPrints.Load(),
		IntervalParses: IntervalParses.Load(),
	}
}

// Sub returns the per-field difference s − prev, the path mix of the
// work done between two Read calls.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	return Snapshot{
		GrisuHits:   s.GrisuHits - prev.GrisuHits,
		GrisuMisses: s.GrisuMisses - prev.GrisuMisses,
		RyuHits:     s.RyuHits - prev.RyuHits,
		RyuMisses:   s.RyuMisses - prev.RyuMisses,
		GayHits:     s.GayHits - prev.GayHits,
		GayMisses:   s.GayMisses - prev.GayMisses,
		ExactFree:   s.ExactFree - prev.ExactFree,
		ExactFixed:  s.ExactFixed - prev.ExactFixed,
		BatchValues: s.BatchValues - prev.BatchValues,
		BatchBytes:  s.BatchBytes - prev.BatchBytes,

		ParseFastHits:   s.ParseFastHits - prev.ParseFastHits,
		ParseFastMisses: s.ParseFastMisses - prev.ParseFastMisses,
		ParseExact:      s.ParseExact - prev.ParseExact,

		BatchParseBlocks:    s.BatchParseBlocks - prev.BatchParseBlocks,
		BatchParseValues:    s.BatchParseValues - prev.BatchParseValues,
		BatchParseBytes:     s.BatchParseBytes - prev.BatchParseBytes,
		BatchParseFallbacks: s.BatchParseFallbacks - prev.BatchParseFallbacks,

		DirectedRyuHits:    s.DirectedRyuHits - prev.DirectedRyuHits,
		DirectedRyuMisses:  s.DirectedRyuMisses - prev.DirectedRyuMisses,
		DirectedFastHits:   s.DirectedFastHits - prev.DirectedFastHits,
		DirectedFastMisses: s.DirectedFastMisses - prev.DirectedFastMisses,

		IntervalPrints: s.IntervalPrints - prev.IntervalPrints,
		IntervalParses: s.IntervalParses - prev.IntervalParses,
	}
}

// Reset zeroes every counter and the global trace aggregate (tests and
// benchmark phases).
func Reset() {
	for _, c := range []*Counter{
		&GrisuHits, &GrisuMisses, &RyuHits, &RyuMisses, &GayHits, &GayMisses,
		&ExactFree, &ExactFixed, &BatchValues, &BatchBytes,
		&ParseFastHits, &ParseFastMisses, &ParseExact,
		&BatchParseBlocks, &BatchParseValues, &BatchParseBytes, &BatchParseFallbacks,
		&DirectedRyuHits, &DirectedRyuMisses, &DirectedFastHits, &DirectedFastMisses,
		&IntervalPrints, &IntervalParses,
	} {
		c.n.Store(0)
	}
	Traces.Reset()
}
