package stats

import (
	"io"

	"floatprint/internal/trace"
)

// TraceAgg is the shared aggregate recorder for conversion traces: it
// folds per-conversion execution records (internal/trace.Conversion) into
// cache-line-padded atomic counters and a digit-length histogram, so the
// paper's behavioral claims — fixup rate of the §3.2 estimator, §2 minimal
// digit counts, the fast-path/exact backend mix — become continuously
// measured quantities that /metrics and fpbench -stats can report.
//
// Record is safe for concurrent use from any number of conversion
// goroutines; every fold is an uncontended atomic on its own cache line.
// The gate lives at the caller (the floatprint dispatch layer only builds
// a trace when collection is enabled), so Record itself is unconditional.
type TraceAgg struct {
	conversions Raw // records folded (specials excluded)
	estimates   Raw // exact conversions that ran the §3.2 estimator
	fixups      Raw // estimator one too low: penalty-free fixup fired
	iterations  Raw // summed generate-loop iterations
	digits      Raw // summed significant output digits
	roundUps    Raw // conversions whose final digit was incremented
	ties        Raw // both termination conditions held (closest-candidate tie-break)
	fastMisses  Raw // fast path attempted, fell back to exact
	backends    [trace.NumBackends]Raw
	digitLen    *Histogram
}

// digitLenBounds covers every binary64 shortest form (1..17 significant
// digits); longer fixed-format outputs land in +Inf.
var digitLenBounds = []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17}

// NewTraceAgg returns an empty aggregate.
func NewTraceAgg() *TraceAgg {
	return &TraceAgg{digitLen: NewHistogram(digitLenBounds...)}
}

// Traces is the process-global aggregate fed by the floatprint dispatch
// layer whenever collection is enabled (Enable).  Reset clears it along
// with the plain counters.
var Traces = NewTraceAgg()

// Record folds one conversion record.  Specials (BackendNone) never
// reached digit generation and are skipped.
func (a *TraceAgg) Record(c *trace.Conversion) {
	if c.Backend == trace.BackendNone {
		return
	}
	a.conversions.Inc()
	a.backends[c.Backend].Inc()
	a.iterations.Add(uint64(c.Iterations))
	a.digits.Add(uint64(c.Digits))
	a.digitLen.Observe(float64(c.Digits))
	if c.RoundedUp {
		a.roundUps.Inc()
	}
	if c.TieBreak {
		a.ties.Inc()
	}
	if c.FastPathMiss {
		a.fastMisses.Inc()
	}
	if (c.Backend == trace.BackendExactFree || c.Backend == trace.BackendExactFixed) &&
		c.ScaleMethod == "estimate" {
		a.estimates.Inc()
		if c.FixupSteps > 0 {
			a.fixups.Inc()
		}
	}
}

// RecordFast folds a certified fast-path conversion without building a
// full record: the fast paths have no Table-1 state or scale estimate, so
// backend, digit count, and loop iterations (== digits for Grisu3's digit
// generator) are the whole story.
func (a *TraceAgg) RecordFast(b trace.Backend, digits int) {
	a.conversions.Inc()
	a.backends[b].Inc()
	a.iterations.Add(uint64(digits))
	a.digits.Add(uint64(digits))
	a.digitLen.Observe(float64(digits))
}

// TraceSnapshot is an atomic-per-field copy of the aggregate's scalar
// counters (the digit-length histogram is exposed via WritePrometheus).
type TraceSnapshot struct {
	Conversions uint64
	Estimates   uint64
	Fixups      uint64
	Iterations  uint64
	Digits      uint64
	RoundUps    uint64
	Ties        uint64
	FastMisses  uint64
	Backends    [trace.NumBackends]uint64
}

// Snapshot copies the scalar counters.
func (a *TraceAgg) Snapshot() TraceSnapshot {
	s := TraceSnapshot{
		Conversions: a.conversions.Load(),
		Estimates:   a.estimates.Load(),
		Fixups:      a.fixups.Load(),
		Iterations:  a.iterations.Load(),
		Digits:      a.digits.Load(),
		RoundUps:    a.roundUps.Load(),
		Ties:        a.ties.Load(),
		FastMisses:  a.fastMisses.Load(),
	}
	for i := range s.Backends {
		s.Backends[i] = a.backends[i].Load()
	}
	return s
}

// Reset zeroes the aggregate, histogram included.
func (a *TraceAgg) Reset() {
	for _, r := range []*Raw{
		&a.conversions, &a.estimates, &a.fixups, &a.iterations,
		&a.digits, &a.roundUps, &a.ties, &a.fastMisses,
	} {
		r.n.Store(0)
	}
	for i := range a.backends {
		a.backends[i].n.Store(0)
	}
	a.digitLen.reset()
}

// WritePrometheus emits the aggregate's labeled backend mix and the
// digit-length histogram in Prometheus text exposition format.  The
// scalar counters travel through the public floatprint.Stats snapshot
// instead, so one scrape never reports the same number twice.
func (a *TraceAgg) WritePrometheus(w io.Writer) error {
	if _, err := io.WriteString(w,
		"# HELP floatprint_trace_backend_total Conversions by deciding backend.\n"+
			"# TYPE floatprint_trace_backend_total counter\n"); err != nil {
		return err
	}
	for i := 0; i < trace.NumBackends; i++ {
		b := trace.Backend(i)
		if b == trace.BackendNone {
			continue
		}
		if err := writeLabeled(w, "floatprint_trace_backend_total", "backend", b.String(),
			a.backends[i].Load()); err != nil {
			return err
		}
	}
	return a.digitLen.WritePrometheus(w, "floatprint_digit_length",
		"Significant digits per conversion (the paper's Section 5 statistic).")
}
