package stats

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// Raw is a cache-line-padded atomic counter without the Enable gate.
// The gated Counter exists so the conversion hot path costs nothing
// when nobody is looking; the serving layer is the opposite regime —
// its request accounting must always be live, because a /metrics
// scrape that reads zeros during an incident is worse than no metrics
// at all.  Same padding discipline as Counter: adjacent counters in a
// declaration block never false-share.
type Raw struct {
	n atomic.Uint64
	_ [56]byte
}

// Inc adds one.
func (c *Raw) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Raw) Add(n uint64) { c.n.Add(n) }

// Load returns the current count.
func (c *Raw) Load() uint64 { return c.n.Load() }

// Histogram is a fixed-bucket cumulative histogram with atomic
// counters, shaped for Prometheus exposition: Observe records a value,
// WritePrometheus emits the classic `_bucket`/`_sum`/`_count` triplet.
// Buckets are upper bounds in ascending order; values above the last
// bound land only in the implicit +Inf bucket.  The zero Histogram is
// unusable — construct with NewHistogram.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound, plus +Inf at the end
	sum    atomic.Uint64   // math.Float64bits-encoded running sum, CAS-updated
}

// NewHistogram builds a histogram over the given ascending upper
// bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records v into the first bucket whose bound is >= v.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// reset zeroes every bucket and the running sum (tests and benchmark
// phases, alongside the counter Reset).
func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// WritePrometheus emits the histogram under the given metric name in
// Prometheus text exposition format.
func (h *Histogram) WritePrometheus(w io.Writer, name, help string) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(bound), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
		name, cum, name, math.Float64frombits(h.sum.Load()), name, cum)
	return err
}

// WriteBuckets emits the histogram's samples — cumulative buckets,
// sum, count — under the given preformatted label set, for families
// declared once with WriteMetricHead and populated per label set
// (the per-route latency histograms).  The le label is appended after
// the caller's labels, matching Prometheus convention.
func (h *Histogram) WriteBuckets(w io.Writer, name, labels string) error {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, labels, formatBound(bound), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	_, err := fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n%s_sum{%s} %g\n%s_count{%s} %d\n",
		name, labels, cum, name, labels, math.Float64frombits(h.sum.Load()), name, labels, cum)
	return err
}

// formatBound renders a bucket bound the way Prometheus clients
// conventionally do: shortest decimal that round-trips.
func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

// WriteCounter emits one counter metric in Prometheus text exposition
// format, shared by the library exposition (floatprint.Stats) and the
// serving layer so both tell one consistent story on a scrape.
func WriteCounter(w io.Writer, name, help string, v uint64) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	return err
}

// WriteGauge emits one gauge metric in Prometheus text exposition
// format.
func WriteGauge(w io.Writer, name, help string, v int64) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	return err
}

// WriteGaugeFloat is WriteGauge for non-integer quantities (uptime
// seconds, cumulative GC pause seconds).
func WriteGaugeFloat(w io.Writer, name, help string, v float64) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	return err
}

// WriteMetricHead emits the HELP/TYPE preamble of a labeled metric
// family; the samples follow via WriteSample (counters/gauges) or
// Histogram.WriteBuckets.  Splitting the preamble from the samples is
// what lets one family carry several label sets — the per-route
// request metrics are the canonical user.
func WriteMetricHead(w io.Writer, name, typ, help string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}

// WriteSample emits one sample of an already-declared metric family
// under a preformatted label set (`route="/v1/shortest"` — the caller
// owns quoting and comma-joining).
func WriteSample(w io.Writer, name, labels string, v uint64) error {
	_, err := fmt.Fprintf(w, "%s{%s} %d\n", name, labels, v)
	return err
}

// writeLabeled emits one sample of an already-declared metric with a
// single label (HELP/TYPE lines are written once by the caller).
func writeLabeled(w io.Writer, name, label, value string, v uint64) error {
	_, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, value, v)
	return err
}
