package stats

import (
	"sync"
	"testing"
)

func TestDisabledByDefault(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("collection enabled at package init")
	}
	GrisuHits.Inc()
	GrisuHits.Add(10)
	if got := GrisuHits.Load(); got != 0 {
		t.Fatalf("disabled counter advanced to %d", got)
	}
}

func TestEnableIncAndSnapshot(t *testing.T) {
	Reset()
	prev := Enable(true)
	defer Enable(prev)

	before := Read()
	GrisuHits.Inc()
	GrisuMisses.Add(2)
	BatchValues.Add(100)
	BatchBytes.Add(2400)
	d := Read().Sub(before)
	if d.GrisuHits != 1 || d.GrisuMisses != 2 || d.BatchValues != 100 || d.BatchBytes != 2400 {
		t.Fatalf("delta = %+v", d)
	}
	if d.GayHits != 0 || d.ExactFree != 0 {
		t.Fatalf("untouched counters moved: %+v", d)
	}

	Reset()
	if s := Read(); s != (Snapshot{}) {
		t.Fatalf("Reset left %+v", s)
	}
}

// TestConcurrentCounters is the -race twin: many goroutines hammer the
// same counters while another toggles the gate and snapshots.
func TestConcurrentCounters(t *testing.T) {
	Reset()
	prev := Enable(true)
	defer Enable(prev)

	const workers, each = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				GrisuHits.Inc()
				BatchBytes.Add(3)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			_ = Read()
		}
	}()
	wg.Wait()
	<-done
	if got := GrisuHits.Load(); got != workers*each {
		t.Fatalf("GrisuHits = %d, want %d", got, workers*each)
	}
	if got := BatchBytes.Load(); got != 3*workers*each {
		t.Fatalf("BatchBytes = %d, want %d", got, 3*workers*each)
	}
}
