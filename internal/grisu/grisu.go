// Package grisu implements a Grisu3-style certified fast path for
// free-format (shortest) printing of float64 values in base 10.
//
// Grisu (Loitsch, PLDI 2010) is the best-known successor to Burger &
// Dybvig's algorithm: it generates the shortest digits using only 64-bit
// fixed-point arithmetic scaled by a precomputed power of ten, tracking
// explicit error bounds; when the bounds cannot certify that the digits
// are the correct shortest form it *fails*, and the caller falls back to
// the exact big-integer algorithm — here, internal/core.FreeFormat.  This
// package exists as the repository's "follow-on work" chapter: the same
// shortest-output specification, two implementations, one fast and
// partial, one exact and total.
//
// A certified result is the shortest digit string lying strictly inside
// the rounding range with margin, which makes it valid — and identical to
// the exact algorithm's output — under every reader rounding mode: any
// case where an endpoint-exact (shorter or tie) answer exists fails
// certification by construction.
package grisu

import (
	"math"
	"math/bits"

	"floatprint/internal/extfloat"
)

// Target binary exponent window for the scaled values, as in Grisu3: with
// e in [-60, -32] the integral part of the scaled boundary fits 32 bits
// and the fixed-point arithmetic below cannot overflow.
const (
	minTargetExp = -60
	maxTargetExp = -32
)

// BufLen is the smallest digit buffer ShortestInto accepts: the digit
// generator emits at most 18 significant decimal digits plus slack.
const BufLen = 20

// Shortest attempts the shortest base-10 conversion of v > 0.
// On ok, digits are the digit values and K the scale (V = 0.d₁…dₙ × 10ᴷ).
func Shortest(v float64) (digits []byte, k int, ok bool) {
	var buf [BufLen]byte
	n, k, ok := ShortestInto(buf[:], v)
	if !ok {
		return nil, 0, false
	}
	out := make([]byte, n)
	copy(out, buf[:n]) // digit values, not ASCII
	return out, k, true
}

// ShortestInto is Shortest writing the digit values into buf, which must
// hold at least BufLen bytes.  It performs no heap allocation, which makes
// it the substrate for the public package's zero-allocation append path.
func ShortestInto(buf []byte, v float64) (n, k int, ok bool) {
	if len(buf) < BufLen || v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return 0, 0, false
	}
	w, low, high := normalizedBoundaries(v)
	return shortestInto(buf, w, low, high)
}

// shortestInto runs the scaled digit generation for pre-computed aligned
// boundaries (shared by the float64 and float32 entry points), writing the
// digits into buf (len >= BufLen) and returning how many were produced.
func shortestInto(buf []byte, w, low, high extfloat.Ext) (n, k int, ok bool) {
	// Pick a power of ten whose product lands in the target window.
	mk, c, ok := cachedPowerFor(high.E + 64)
	if !ok {
		return 0, 0, false
	}
	scaledW := times(w, c)
	scaledLow := times(low, c)
	scaledHigh := times(high, c)

	length, kappa, ok := digitGen(scaledLow, scaledW, scaledHigh, buf[:BufLen])
	if !ok {
		return 0, 0, false
	}
	de := -mk + kappa // value = buffer × 10^de
	// The shortest form never needs trailing zeros; defensively trim any
	// (K is unaffected: 0.d₁…dₙ0 × 10ᴷ = 0.d₁…dₙ × 10ᴷ).
	n = length
	for n > 1 && buf[n-1] == 0 {
		n--
	}
	return n, length + de, true
}

// Shortest32 is Shortest for float32 values: the narrower rounding range
// (half a float32 ulp) yields correspondingly shorter digits.
func Shortest32(v float32) (digits []byte, k int, ok bool) {
	if v <= 0 || math.IsInf(float64(v), 0) || v != v {
		return nil, 0, false
	}
	bits32 := math.Float32bits(v)
	mant := uint64(bits32 & (1<<23 - 1))
	be := int(bits32 >> 23 & 0xff)
	var f uint64
	var e int
	if be == 0 {
		f, e = mant, -149
	} else {
		f, e = mant|1<<23, be-150
	}
	w, low, high := boundariesFromParts(f, e, mant == 0 && be > 1)
	var buf [BufLen]byte
	n, k, ok := shortestInto(buf[:], w, low, high)
	if !ok {
		return nil, 0, false
	}
	out := make([]byte, n)
	copy(out, buf[:n])
	return out, k, true
}

// normalizedBoundaries decodes v into the normalized significand w and the
// rounding-range endpoints low = (v⁻+v)/2 and high = (v+v⁺)/2, all three
// exact and sharing one binary exponent.
func normalizedBoundaries(v float64) (w, low, high extfloat.Ext) {
	bits64 := math.Float64bits(v)
	mant := bits64 & (1<<52 - 1)
	be := int(bits64 >> 52 & 0x7ff)

	var f uint64
	var e int
	if be == 0 { // denormal
		f, e = mant, -1074
	} else {
		f, e = mant|1<<52, be-1075
	}
	return boundariesFromParts(f, e, mant == 0 && be > 1)
}

// boundariesFromParts builds w and the aligned boundaries for any binary
// format's (f, e) pair; lowerIsCloser marks binade-boundary values whose
// predecessor gap is half-size.
func boundariesFromParts(f uint64, e int, lowerIsCloser bool) (w, low, high extfloat.Ext) {
	// high = (2f+1)·2^(e−1).
	plus := normalize(2*f+1, e-1)
	var minus extfloat.Ext
	if lowerIsCloser {
		minus = extfloat.Ext{M: 4*f - 1, E: e - 2}
	} else {
		minus = extfloat.Ext{M: 2*f - 1, E: e - 1}
	}
	// Align everything to plus's exponent (exact: the values are within a
	// factor of two of each other).
	minus.M <<= uint(minus.E - plus.E)
	minus.E = plus.E
	w = normalize(f, e)
	w.M <<= uint(w.E - plus.E)
	w.E = plus.E
	return w, minus, plus
}

func normalize(f uint64, e int) extfloat.Ext {
	s := bits.LeadingZeros64(f)
	return extfloat.Ext{M: f << s, E: e - s}
}

// times is the DiyFp product: round the 128-bit product to its top word
// WITHOUT renormalizing, so operands with equal exponents keep equal
// result exponents (required by the fixed-point comparisons in digitGen).
func times(a, b extfloat.Ext) extfloat.Ext {
	hi, lo := bits.Mul64(a.M, b.M)
	return extfloat.Ext{M: hi + lo>>63, E: a.E + b.E + 64}
}

// cachedPowerFor returns k and the rounded power 10ᵏ whose binary
// exponent puts scaledExp + e(10ᵏ) into the target window.
func cachedPowerFor(scaledExp int) (k int, c extfloat.Ext, ok bool) {
	// e(10^k) ≈ k·log2(10) − 63; solve for the window floor and adjust.
	k = int(math.Ceil(float64(minTargetExp-scaledExp+63) / 3.3219280948873626))
	for i := 0; i < 4; i++ {
		if k < -340 || k > 340 {
			return 0, extfloat.Ext{}, false
		}
		c = extfloat.Pow10(k)
		// scaledExp already carries the +64 of the product.
		got := scaledExp + c.E
		switch {
		case got < minTargetExp:
			k++
		case got > maxTargetExp:
			k--
		default:
			return k, c, true
		}
	}
	return 0, extfloat.Ext{}, false
}

// digitGen generates the shortest digits of a value in (low, high) as
// close to w as certifiable, following Grisu3's DigitGen.  All inputs
// share one exponent in the target window.  It writes digit values into
// buf and reports the length and the decimal exponent offset kappa.
func digitGen(low, w, high extfloat.Ext, buf []byte) (length, kappa int, ok bool) {
	unit := uint64(1)
	tooLowF := low.M - unit
	tooHighF := high.M + unit
	// unsafeInterval spans (tooLow, tooHigh): anything strictly inside is
	// guaranteed inside the true rounding range.
	unsafeInterval := tooHighF - tooLowF
	oneF := uint64(1) << uint(-w.E)
	oneMask := oneF - 1
	integrals := uint32(tooHighF >> uint(-w.E))
	fractionals := tooHighF & oneMask

	divisor, kappa := biggestPowerTen(integrals)
	distanceTooHighW := tooHighF - w.M

	for kappa > 0 {
		digit := integrals / divisor
		buf[length] = byte(digit)
		length++
		integrals %= divisor
		kappa--
		rest := uint64(integrals)<<uint(-w.E) + fractionals
		if rest < unsafeInterval {
			return length, kappa, roundWeed(buf, length, distanceTooHighW,
				unsafeInterval, rest, uint64(divisor)<<uint(-w.E), unit)
		}
		divisor /= 10
	}

	for {
		fractionals *= 10
		unit *= 10
		unsafeInterval *= 10
		digit := byte(fractionals >> uint(-w.E))
		buf[length] = digit
		length++
		fractionals &= oneMask
		kappa--
		if fractionals < unsafeInterval {
			return length, kappa, roundWeed(buf, length, distanceTooHighW*unit,
				unsafeInterval, fractionals, oneF, unit)
		}
		if length >= len(buf) || unit > 1<<58 {
			return 0, 0, false // cannot certify within the margin budget
		}
	}
}

// roundWeed adjusts the last digit toward w and certifies the result: it
// returns false whenever the ±unit error margins could change either the
// digit choice or the in-range property (Grisu3's RoundWeed).
func roundWeed(buf []byte, length int, distanceTooHighW, unsafeInterval, rest, tenKappa, unit uint64) bool {
	smallDistance := distanceTooHighW - unit
	bigDistance := distanceTooHighW + unit
	// Walk the candidate down toward w while it provably gets closer and
	// stays above the low boundary.
	for rest < smallDistance && unsafeInterval-rest >= tenKappa &&
		(rest+tenKappa < smallDistance ||
			smallDistance-rest >= rest+tenKappa-smallDistance) {
		buf[length-1]--
		rest += tenKappa
	}
	// If the enlarged margin would have walked further, the choice is
	// ambiguous: fail.
	if rest < bigDistance && unsafeInterval-rest >= tenKappa &&
		(rest+tenKappa < bigDistance ||
			bigDistance-rest > rest+tenKappa-bigDistance) {
		return false
	}
	// Keep safely inside the unsafe interval: 2 units off the high end
	// (we started from tooHigh) and 4 off the low end.
	return 2*unit <= rest && rest <= unsafeInterval-4*unit
}

// biggestPowerTen returns the largest power of ten not exceeding number
// (a 32-bit integral part) and its exponent plus one.
func biggestPowerTen(number uint32) (power uint32, exponentPlusOne int) {
	switch {
	case number >= 1000000000:
		return 1000000000, 10
	case number >= 100000000:
		return 100000000, 9
	case number >= 10000000:
		return 10000000, 8
	case number >= 1000000:
		return 1000000, 7
	case number >= 100000:
		return 100000, 6
	case number >= 10000:
		return 10000, 5
	case number >= 1000:
		return 1000, 4
	case number >= 100:
		return 100, 3
	case number >= 10:
		return 10, 2
	default:
		return 1, 1
	}
}
