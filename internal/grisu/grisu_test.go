package grisu

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"floatprint/internal/core"
	"floatprint/internal/fpformat"
	"floatprint/internal/schryer"
)

func digitsString(digits []byte) string {
	var sb strings.Builder
	for _, d := range digits {
		sb.WriteByte('0' + d)
	}
	return sb.String()
}

// TestCertifiedMatchesExactEveryMode is the central safety property: when
// Shortest certifies, its output must be byte-identical to the exact
// Burger-Dybvig result under EVERY reader mode (certification implies no
// endpoint-exact shorter form exists, so all modes agree).
func TestCertifiedMatchesExactEveryMode(t *testing.T) {
	modes := []core.ReaderMode{
		core.ReaderUnknown, core.ReaderNearestEven,
		core.ReaderNearestAway, core.ReaderNearestTowardZero,
	}
	certified, tried := 0, 0
	check := func(v float64) {
		if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			return
		}
		tried++
		digits, k, ok := Shortest(v)
		if !ok {
			return
		}
		certified++
		val := fpformat.DecodeFloat64(v)
		for _, mode := range modes {
			exact, err := core.FreeFormat(val, 10, core.ScalingEstimate, mode)
			if err != nil {
				t.Fatal(err)
			}
			if digitsString(digits) != digitsString(exact.Digits) || k != exact.K {
				t.Fatalf("grisu(%g) = %q K=%d; exact (%v) = %q K=%d",
					v, digitsString(digits), k, mode, digitsString(exact.Digits), exact.K)
			}
		}
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 30000; i++ {
		check(math.Abs(math.Float64frombits(r.Uint64())))
	}
	for _, v := range schryer.CorpusN(20000) {
		check(v)
	}
	for _, v := range []float64{
		1, 0.5, 0.1, 0.3, math.Pi, 1e23, 5e-324, math.MaxFloat64,
		0x1p-1022, math.Nextafter(1, 2), math.Nextafter(1, 0),
	} {
		check(v)
	}
	if certified == 0 {
		t.Fatal("grisu never certified anything")
	}
	rate := float64(certified) / float64(tried)
	if rate < 0.95 {
		t.Errorf("grisu certification rate %.2f%% is too low", 100*rate)
	}
	t.Logf("certified %d of %d (%.2f%%)", certified, tried, 100*rate)
}

func TestEndpointCasesFail(t *testing.T) {
	// 1e23 sits exactly on its high midpoint: the nearest-even answer is
	// the one-digit endpoint form, which grisu cannot certify.
	if _, _, ok := Shortest(1e23); ok {
		t.Errorf("grisu certified 1e23, which requires endpoint handling")
	}
}

func TestRoundTripFloat32Sweep(t *testing.T) {
	// Certified results must round-trip; sweep float64 values derived from
	// a float32 stratification for exponent coverage.
	for bits := uint32(1); bits < 1<<31; bits += 0x20011 {
		v := float64(math.Float32frombits(bits))
		if math.IsInf(v, 0) || math.IsNaN(v) || v <= 0 {
			continue
		}
		digits, k, ok := Shortest(v)
		if !ok {
			continue
		}
		s := "0." + digitsString(digits) + "e" + strconv.Itoa(k)
		back, err := strconv.ParseFloat(s, 64)
		if err != nil || back != v {
			t.Fatalf("grisu(%g) = %q does not round-trip (%v)", v, s, err)
		}
	}
}

func TestRejectsNonPositive(t *testing.T) {
	for _, v := range []float64{0, -1, math.Inf(1), math.Inf(-1), math.NaN()} {
		if _, _, ok := Shortest(v); ok {
			t.Errorf("Shortest(%v) certified", v)
		}
	}
}

func TestKnownValues(t *testing.T) {
	cases := []struct {
		v      float64
		digits string
		k      int
	}{
		{0.3, "3", 0},
		{math.Pi, "3141592653589793", 1},
		{1234.5678, "12345678", 4},
	}
	for _, c := range cases {
		digits, k, ok := Shortest(c.v)
		if !ok {
			t.Errorf("Shortest(%g) failed to certify", c.v)
			continue
		}
		if digitsString(digits) != c.digits || k != c.k {
			t.Errorf("Shortest(%g) = %q K=%d, want %q K=%d",
				c.v, digitsString(digits), k, c.digits, c.k)
		}
	}
}

func TestBiggestPowerTen(t *testing.T) {
	cases := []struct {
		n    uint32
		pow  uint32
		expP int
	}{
		{0, 1, 1}, {1, 1, 1}, {9, 1, 1}, {10, 10, 2}, {99, 10, 2},
		{100, 100, 3}, {4294967295, 1000000000, 10},
	}
	for _, c := range cases {
		p, e := biggestPowerTen(c.n)
		if p != c.pow || e != c.expP {
			t.Errorf("biggestPowerTen(%d) = %d, %d; want %d, %d", c.n, p, e, c.pow, c.expP)
		}
	}
}

func TestDenormalsEitherCertifyCorrectlyOrFail(t *testing.T) {
	for bitsv := uint64(1); bitsv < 1<<52; bitsv = bitsv*7 + 5 {
		v := math.Float64frombits(bitsv)
		digits, k, ok := Shortest(v)
		if !ok {
			continue
		}
		want := strconv.FormatFloat(v, 'e', -1, 64)
		s := "0." + digitsString(digits) + "e" + strconv.Itoa(k)
		back, err := strconv.ParseFloat(s, 64)
		if err != nil || back != v {
			t.Fatalf("denormal grisu(%g) = %q (strconv %q) round-trip failed", v, s, want)
		}
	}
}

func BenchmarkGrisuShortest(b *testing.B) {
	corpus := schryer.CorpusN(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Shortest(corpus[i%len(corpus)])
	}
}

// BenchmarkShortestWithFallback is the deployment configuration: grisu
// when certified, exact Burger-Dybvig otherwise.
func BenchmarkShortestWithFallback(b *testing.B) {
	corpus := schryer.CorpusN(4096)
	values := make([]fpformat.Value, len(corpus))
	for i, f := range corpus {
		values[i] = fpformat.DecodeFloat64(f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := Shortest(corpus[i%len(corpus)]); !ok {
			if _, err := core.FreeFormat(values[i%len(values)], 10, core.ScalingEstimate, core.ReaderNearestEven); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkShortestExactOnly(b *testing.B) {
	corpus := schryer.CorpusN(4096)
	values := make([]fpformat.Value, len(corpus))
	for i, f := range corpus {
		values[i] = fpformat.DecodeFloat64(f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FreeFormat(values[i%len(values)], 10, core.ScalingEstimate, core.ReaderNearestEven); err != nil {
			b.Fatal(err)
		}
	}
}

// TestShortest32MatchesStrconv sweeps the float32 space stratified and
// requires certified results to equal strconv's 32-bit shortest form
// (tolerating exact-tie divergence, where both forms are valid).
func TestShortest32MatchesStrconv(t *testing.T) {
	certified, tried := 0, 0
	for bits := uint32(1); bits < 1<<31; bits += 0x0611 {
		v := math.Float32frombits(bits)
		if v != v || math.IsInf(float64(v), 0) || v <= 0 {
			continue
		}
		tried++
		digits, k, ok := Shortest32(v)
		if !ok {
			continue
		}
		certified++
		s := strconv.FormatFloat(float64(v), 'e', -1, 32)
		mant, expStr, _ := strings.Cut(s, "e")
		exp, _ := strconv.Atoi(expStr)
		want := strings.TrimRight(strings.Replace(mant, ".", "", 1), "0")
		if want == "" {
			want = "0"
		}
		if digitsString(digits) == want && k == exp+1 {
			continue
		}
		// Exact ties: both must round-trip and have equal length.
		ours := "0." + digitsString(digits) + "e" + strconv.Itoa(k)
		back, err := strconv.ParseFloat(ours, 32)
		if err != nil || float32(back) != v || len(digitsString(digits)) != len(want) {
			t.Fatalf("grisu32(%g) = %q K=%d, strconv %q K=%d", v, digitsString(digits), k, want, exp+1)
		}
	}
	if certified*100 < tried*95 {
		t.Errorf("float32 certification rate too low: %d/%d", certified, tried)
	}
	t.Logf("float32: certified %d of %d (%.2f%%)", certified, tried, 100*float64(certified)/float64(tried))
}

func TestShortest32MatchesExactCore(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 20000; i++ {
		v := math.Float32frombits(r.Uint32())
		if v != v || math.IsInf(float64(v), 0) || v <= 0 {
			continue
		}
		digits, k, ok := Shortest32(v)
		if !ok {
			continue
		}
		exact, err := core.FreeFormat(fpformat.DecodeFloat32(v), 10, core.ScalingEstimate, core.ReaderNearestEven)
		if err != nil {
			t.Fatal(err)
		}
		if digitsString(digits) != digitsString(exact.Digits) || k != exact.K {
			t.Fatalf("grisu32(%g) = %q K=%d, exact %q K=%d",
				v, digitsString(digits), k, digitsString(exact.Digits), exact.K)
		}
	}
}

func TestShortest32Rejects(t *testing.T) {
	for _, v := range []float32{0, -1, float32(math.Inf(1)), float32(math.NaN())} {
		if _, _, ok := Shortest32(v); ok {
			t.Errorf("Shortest32(%v) certified", v)
		}
	}
}
