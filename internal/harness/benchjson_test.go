package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: floatprint
cpu: Some CPU
BenchmarkShortest-8             13817valuesXX
BenchmarkShortest-8      5000000               100.0 ns/op            24 B/op          1 allocs/op
BenchmarkShortest-8      5000000               120.0 ns/op            24 B/op          1 allocs/op
BenchmarkShortest-8      5000000               110.0 ns/op            24 B/op          1 allocs/op
BenchmarkAppendShortestCertified-8      20000000                41.5 ns/op             0 B/op          0 allocs/op
BenchmarkBatchConvert/shards=1-8             100          11000000 ns/op        47.67 MB/s       6471672 values/s
BenchmarkBatchConvert/shards=1-8             100          12000000 ns/op        45.00 MB/s       6000000 values/s
PASS
ok      floatprint      12.345s
`

func TestParseBenchOutput(t *testing.T) {
	art, err := ParseBenchOutput(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(art.Benchmarks))
	}
	b := art.Benchmarks[0]
	if b.Name != "BenchmarkShortest" || b.Runs != 3 {
		t.Fatalf("first = %s runs=%d, want BenchmarkShortest runs=3", b.Name, b.Runs)
	}
	if b.MedianNsPerOp != 110.0 {
		t.Fatalf("median = %v, want 110", b.MedianNsPerOp)
	}
	if got := b.Metrics["B/op"]; len(got) != 3 || got[0] != 24 {
		t.Fatalf("B/op metric = %v", got)
	}
	sub := art.Benchmarks[2]
	if sub.Name != "BenchmarkBatchConvert/shards=1" {
		t.Fatalf("sub-benchmark name = %q", sub.Name)
	}
	if sub.MedianNsPerOp != 11500000 {
		t.Fatalf("sub median = %v, want 11.5e6", sub.MedianNsPerOp)
	}
	if got := sub.Metrics["values/s"]; len(got) != 2 {
		t.Fatalf("values/s metric = %v", got)
	}
}

func TestParseBenchOutputRejectsEmpty(t *testing.T) {
	if _, err := ParseBenchOutput(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("empty input parsed without error")
	}
}

func TestAppendAndWriteJSONRoundTrip(t *testing.T) {
	var art Artifact
	art.Append("fpbench/Batch/shards=4", []float64{120, 100, 110},
		map[string][]float64{"values/s": {9e6, 1.1e7, 1e7}})
	art.Append("fpbench/Table3/free", []float64{250}, nil)

	if got := art.Benchmarks[0]; got.Runs != 3 || got.MedianNsPerOp != 110 {
		t.Fatalf("appended entry = %+v, want runs=3 median=110", got)
	}
	if got := art.Benchmarks[1]; got.Metrics != nil {
		t.Fatalf("empty metrics should marshal away, got %v", got.Metrics)
	}

	var buf bytes.Buffer
	if err := art.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Artifact
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("written JSON does not parse back: %v", err)
	}
	if len(back.Benchmarks) != 2 || back.Benchmarks[0].MedianNsPerOp != 110 {
		t.Fatalf("round-trip = %+v", back.Benchmarks)
	}
	// Appended artifacts must be comparable against parsed ones — it is
	// the whole point of the shared schema.
	if regress, _ := CompareArtifacts(&art, &back, 10); regress != 0 {
		t.Fatalf("identical artifacts compare with %d regressions", regress)
	}
}

func art(nameNs ...any) *Artifact {
	a := &Artifact{}
	for i := 0; i+1 < len(nameNs); i += 2 {
		a.Benchmarks = append(a.Benchmarks, Benchmark{
			Name:          nameNs[i].(string),
			Runs:          1,
			MedianNsPerOp: nameNs[i+1].(float64),
		})
	}
	return a
}

func TestCompareArtifactsWithinThreshold(t *testing.T) {
	base := art("A", 100.0, "B", 200.0, "Gone", 5.0)
	head := art("A", 108.0, "B", 150.0, "New", 7.0)
	regressions, report := CompareArtifacts(base, head, 10)
	if regressions != 0 {
		t.Fatalf("regressions = %d, want 0\n%s", regressions, report)
	}
	for _, want := range []string{"(new)", "(removed)", "ok: no benchmark regressed"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestCompareArtifactsFlagsRegression(t *testing.T) {
	base := art("A", 100.0, "B", 200.0)
	head := art("A", 111.0, "B", 200.0)
	regressions, report := CompareArtifacts(base, head, 10)
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", regressions, report)
	}
	if !strings.Contains(report, "REGRESSION") || !strings.Contains(report, "FAIL: 1 benchmark") {
		t.Errorf("report:\n%s", report)
	}
}

func TestParseFloorSpec(t *testing.T) {
	substr, metric, min, err := ParseFloorSpec("BatchParse/block:MB/s:300")
	if err != nil || substr != "BatchParse/block" || metric != "MB/s" || min != 300 {
		t.Fatalf("ParseFloorSpec = (%q, %q, %v, %v)", substr, metric, min, err)
	}
	for _, bad := range []string{"", "a", "a:b", ":MB/s:300", "a::300", "a:b:nope"} {
		if _, _, _, err := ParseFloorSpec(bad); err == nil {
			t.Fatalf("ParseFloorSpec(%q) accepted, want error", bad)
		}
	}
}

func TestCheckFloor(t *testing.T) {
	art := &Artifact{}
	art.Append("BatchParse/block", []float64{50}, map[string][]float64{"MB/s": {420, 431, 405}})
	art.Append("BatchParse/strconv", []float64{110}, map[string][]float64{"MB/s": {190}})
	art.Append("Shortest", []float64{100}, nil)

	failures, report, err := CheckFloor(art, "BatchParse", "MB/s", 300)
	if err != nil || failures != 1 {
		t.Fatalf("CheckFloor(300) = %d failures, err %v; want 1 (strconv below)", failures, err)
	}
	if !strings.Contains(report, "FAIL") || !strings.Contains(report, "420.0") {
		t.Fatalf("report lacks FAIL mark or median:\n%s", report)
	}

	failures, _, err = CheckFloor(art, "BatchParse/block", "MB/s", 300)
	if err != nil || failures != 0 {
		t.Fatalf("CheckFloor(block, 300) = %d failures, err %v; want 0", failures, err)
	}

	// A floor that matches nothing is an error, not a silent pass: the
	// metric-less Shortest entry must not satisfy an MB/s floor either.
	if _, _, err := CheckFloor(art, "Shortest", "MB/s", 1); err == nil {
		t.Fatal("vacuous floor passed, want error")
	}
}
