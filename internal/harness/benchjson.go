// Benchmark-JSON schema and comparison: the single source of truth for
// the BENCH_*.json artifacts behind the CI bench gate.  Two CLIs speak
// it — cmd/fpbenchjson converts `go test -bench` output and compares
// artifacts, and cmd/fpbench -json emits its experiment tables in the
// same shape — so a regression gate can consume either without caring
// which produced the file.

package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's aggregated runs.
type Benchmark struct {
	Name          string               `json:"name"` // GOMAXPROCS suffix stripped
	Runs          int                  `json:"runs"`
	NsPerOp       []float64            `json:"ns_per_op"`
	MedianNsPerOp float64              `json:"median_ns_per_op"`
	Metrics       map[string][]float64 `json:"metrics,omitempty"` // B/op, allocs/op, custom units
}

// Artifact is the JSON file layout (BENCH_*.json).
type Artifact struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Append adds one aggregated entry built from raw per-run ns/op
// samples, computing the median — how fpbench folds its experiment
// timings into the shared schema.
func (a *Artifact) Append(name string, nsPerOp []float64, metrics map[string][]float64) {
	if len(metrics) == 0 {
		metrics = nil
	}
	a.Benchmarks = append(a.Benchmarks, Benchmark{
		Name:          name,
		Runs:          len(nsPerOp),
		NsPerOp:       nsPerOp,
		MedianNsPerOp: median(nsPerOp),
		Metrics:       metrics,
	})
}

// WriteJSON writes the artifact as indented JSON.
func (a *Artifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// procSuffix matches the trailing -N GOMAXPROCS tag on benchmark names.
var procSuffix = regexp.MustCompile(`-\d+$`)

// ParseBenchOutput reads `go test -bench` output and aggregates
// per-benchmark runs.  Lines that are not benchmark results (headers,
// PASS, ok) are ignored, so raw `go test` output pipes straight in.
func ParseBenchOutput(r io.Reader) (*Artifact, error) {
	byName := map[string]*Benchmark{}
	var order []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count: some other Benchmark-prefixed text
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		b := byName[name]
		if b == nil {
			b = &Benchmark{Name: name, Metrics: map[string][]float64{}}
			byName[name] = b
			order = append(order, name)
		}
		b.Runs++
		// The rest of the line is value/unit pairs: `123 ns/op 0 allocs/op ...`.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q", name, fields[i])
			}
			if unit := fields[i+1]; unit == "ns/op" {
				b.NsPerOp = append(b.NsPerOp, v)
			} else {
				b.Metrics[unit] = append(b.Metrics[unit], v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	art := &Artifact{}
	for _, name := range order {
		b := byName[name]
		b.MedianNsPerOp = median(b.NsPerOp)
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		art.Benchmarks = append(art.Benchmarks, *b)
	}
	if len(art.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return art, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// CompareArtifacts matches benchmarks by name and reports every pair
// whose head median ns/op exceeds the base median by more than
// maxRegress percent.  Benchmarks present on only one side are listed
// but never fail the gate (new benchmarks have no baseline; removed
// ones have no head).
func CompareArtifacts(base, head *Artifact, maxRegress float64) (regressions int, report string) {
	baseBy := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-52s %14s %14s %9s\n", "benchmark", "base ns/op", "head ns/op", "delta")
	for _, h := range head.Benchmarks {
		b, ok := baseBy[h.Name]
		if !ok {
			fmt.Fprintf(&sb, "%-52s %14s %14.1f %9s\n", h.Name, "(new)", h.MedianNsPerOp, "")
			continue
		}
		delete(baseBy, h.Name)
		if b.MedianNsPerOp == 0 {
			continue
		}
		deltaPct := 100 * (h.MedianNsPerOp - b.MedianNsPerOp) / b.MedianNsPerOp
		mark := ""
		if deltaPct > maxRegress {
			regressions++
			mark = "  REGRESSION"
		}
		fmt.Fprintf(&sb, "%-52s %14.1f %14.1f %+8.1f%%%s\n",
			h.Name, b.MedianNsPerOp, h.MedianNsPerOp, deltaPct, mark)
	}
	for _, b := range base.Benchmarks {
		if _, still := baseBy[b.Name]; still {
			fmt.Fprintf(&sb, "%-52s %14.1f %14s %9s\n", b.Name, b.MedianNsPerOp, "(removed)", "")
		}
	}
	if regressions > 0 {
		fmt.Fprintf(&sb, "FAIL: %d benchmark(s) regressed more than %.0f%%\n", regressions, maxRegress)
	} else {
		fmt.Fprintf(&sb, "ok: no benchmark regressed more than %.0f%%\n", maxRegress)
	}
	return regressions, sb.String()
}

// CheckFloor enforces an absolute throughput floor on an artifact:
// every benchmark whose name contains substr must report a median for
// the named metric of at least min.  Unlike CompareArtifacts this needs
// no baseline, so it holds even when base and head regress together —
// the shape of an acceptance bar like "the batch parser sustains 300
// MB/s", not "no slower than yesterday".  It returns the number of
// failures, and errors when no benchmark matches (a silently vacuous
// gate is a disabled gate).
func CheckFloor(art *Artifact, substr, metric string, min float64) (failures int, report string, err error) {
	var sb strings.Builder
	matched := 0
	for _, b := range art.Benchmarks {
		if !strings.Contains(b.Name, substr) {
			continue
		}
		samples := b.Metrics[metric]
		if len(samples) == 0 {
			continue
		}
		matched++
		got := median(samples)
		mark := "ok"
		if got < min {
			failures++
			mark = "FAIL"
		}
		fmt.Fprintf(&sb, "%-52s %s %12.1f >= %.1f  %s\n", b.Name, metric, got, min, mark)
	}
	if matched == 0 {
		return 0, "", fmt.Errorf("floor %q:%s: no benchmark matched", substr, metric)
	}
	return failures, sb.String(), nil
}

// ParseFloorSpec parses a -floor flag value of the form
// "substr:metric:min" (e.g. "BatchParse/block:MB/s:300").  The metric
// may itself contain colons-free slashes; the split is at the first and
// last colon so "MB/s" survives intact.
func ParseFloorSpec(spec string) (substr, metric string, min float64, err error) {
	first := strings.Index(spec, ":")
	last := strings.LastIndex(spec, ":")
	if first < 0 || first == last {
		return "", "", 0, fmt.Errorf("floor spec %q: want substr:metric:min", spec)
	}
	substr, metric = spec[:first], spec[first+1:last]
	min, err = strconv.ParseFloat(spec[last+1:], 64)
	if err != nil || substr == "" || metric == "" {
		return "", "", 0, fmt.Errorf("floor spec %q: want substr:metric:min", spec)
	}
	return substr, metric, min, nil
}

// LoadArtifact reads a BENCH_*.json file.
func LoadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &art, nil
}

// CompareArtifactFiles loads two artifacts and compares them.
func CompareArtifactFiles(basePath, headPath string, maxRegress float64) (int, string, error) {
	base, err := LoadArtifact(basePath)
	if err != nil {
		return 0, "", err
	}
	head, err := LoadArtifact(headPath)
	if err != nil {
		return 0, "", err
	}
	regressions, report := CompareArtifacts(base, head, maxRegress)
	return regressions, report, nil
}
