// Package harness drives the paper's experiments (Tables 2 and 3 and the
// §5 digit-count statistic) over the Schryer corpus, shared by the
// fpbench command and the repository's benchmark suite.  It measures
// wall-clock conversion time exactly as the paper does — digits are
// generated and discarded, so I/O never enters the measurement ("the
// numbers were printed to /dev/null in order to factor out I/O
// performance").
package harness

import (
	"bytes"
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"floatprint"
	"floatprint/batch"
	"floatprint/internal/baseline"
	"floatprint/internal/core"
	"floatprint/internal/fpformat"
	"floatprint/internal/gay"
	"floatprint/internal/grisu"
	"floatprint/internal/ryu"
)

// Table2Row is one scaling algorithm's measurement.
type Table2Row struct {
	Name     string
	Scaling  core.Scaling
	Elapsed  time.Duration
	Relative float64 // CPU time relative to the fast estimator
	// MeanScaleOps is the mean number of high-precision integer operations
	// the scaling phase performs per conversion — the asymptotic quantity
	// behind the paper's two-orders-of-magnitude gap (O(|log v|) vs O(1)).
	MeanScaleOps float64
	// RelativeOps is MeanScaleOps relative to the fast estimator.
	RelativeOps float64
}

// RunTable2 reproduces Table 2: relative CPU time of the three scaling
// algorithms converting the corpus to shortest base-10 form, plus the
// operation-count view of the same comparison.
func RunTable2(corpus []float64) ([]Table2Row, error) {
	rows := []Table2Row{
		{Name: "Steele & White iterative", Scaling: core.ScalingIterative},
		{Name: "Floating-point logarithm", Scaling: core.ScalingFloatLog},
		{Name: "Our estimate (fixup)", Scaling: core.ScalingEstimate},
	}
	values := decode(corpus)
	for i := range rows {
		start := time.Now()
		for _, v := range values {
			if _, err := core.FreeFormat(v, 10, rows[i].Scaling, core.ReaderNearestEven); err != nil {
				return nil, err
			}
		}
		rows[i].Elapsed = time.Since(start)

		// Operation counts on a stride sample (they are exact per value,
		// so a sample suffices and keeps the harness fast).
		totalOps, counted := 0, 0
		stride := max(1, len(values)/20000)
		for j := 0; j < len(values); j += stride {
			_, ops, err := core.ScaleOps(values[j], 10, rows[i].Scaling, core.ReaderNearestEven)
			if err != nil {
				return nil, err
			}
			totalOps += ops
			counted++
		}
		rows[i].MeanScaleOps = float64(totalOps) / float64(counted)
	}
	base := rows[2].Elapsed.Seconds()
	baseOps := rows[2].MeanScaleOps
	for i := range rows {
		rows[i].Relative = rows[i].Elapsed.Seconds() / base
		rows[i].RelativeOps = rows[i].MeanScaleOps / baseOps
	}
	return rows, nil
}

// RenderTable2 formats rows the way the paper prints Table 2, with the
// operation-count column alongside.
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %12s %10s %12s %10s\n",
		"Scaling Algorithm", "Time", "Relative", "Scale ops", "Rel. ops")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-28s %12s %9.2fx %12.1f %9.1fx\n",
			r.Name, r.Elapsed.Round(time.Millisecond), r.Relative, r.MeanScaleOps, r.RelativeOps)
	}
	return sb.String()
}

// Table3Result aggregates the Table 3 measurements: free-format versus the
// straightforward 17-digit fixed-format algorithm, fixed-format versus the
// simulated printf, the printf mis-rounding count, and the paper's §5
// average-digit statistic.
type Table3Result struct {
	Corpus        int
	Free          time.Duration
	Fixed17       time.Duration
	Printf        time.Duration
	FreeVsFixed   float64 // paper geometric mean: 1.66
	FixedVsPrintf float64 // paper geometric mean: 1.51
	Incorrect     int     // paper: 0 .. 6280 depending on the system
	MeanDigits    float64 // paper: 15.2
}

// RunTable3 reproduces Table 3 on the given corpus.
func RunTable3(corpus []float64) (Table3Result, error) {
	values := decode(corpus)
	res := Table3Result{Corpus: len(corpus)}

	start := time.Now()
	totalDigits := 0
	for _, v := range values {
		r, err := core.FreeFormat(v, 10, core.ScalingEstimate, core.ReaderNearestEven)
		if err != nil {
			return res, err
		}
		totalDigits += len(r.Digits)
	}
	res.Free = time.Since(start)
	res.MeanDigits = float64(totalDigits) / float64(len(values))

	start = time.Now()
	for _, v := range values {
		if _, err := baseline.FixedDigits(v, 10, 17); err != nil {
			return res, err
		}
	}
	res.Fixed17 = time.Since(start)

	start = time.Now()
	for _, f := range corpus {
		baseline.NaivePrintf(f, 17)
	}
	res.Printf = time.Since(start)

	// Count printf mis-roundings against the exact fixed-format digits.
	for i, f := range corpus {
		nd, nk := baseline.NaivePrintf(f, 17)
		exact, err := baseline.FixedDigits(values[i], 10, 17)
		if err != nil {
			return res, err
		}
		if nk != exact.K || !bytesEqual(nd, exact.Digits) {
			res.Incorrect++
		}
	}

	res.FreeVsFixed = res.Free.Seconds() / res.Fixed17.Seconds()
	res.FixedVsPrintf = res.Fixed17.Seconds() / res.Printf.Seconds()
	return res, nil
}

// RenderTable3 formats the result in the shape of the paper's Table 3.
func RenderTable3(r Table3Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "corpus size: %d values\n", r.Corpus)
	fmt.Fprintf(&sb, "%-34s %12s\n", "Conversion", "Time")
	fmt.Fprintf(&sb, "%-34s %12s\n", "free format (shortest)", r.Free.Round(time.Millisecond))
	fmt.Fprintf(&sb, "%-34s %12s\n", "fixed format (17 digits)", r.Fixed17.Round(time.Millisecond))
	fmt.Fprintf(&sb, "%-34s %12s\n", "simulated printf (17 digits)", r.Printf.Round(time.Millisecond))
	fmt.Fprintf(&sb, "free/fixed ratio:    %6.2f   (paper geometric mean: 1.66)\n", r.FreeVsFixed)
	fmt.Fprintf(&sb, "fixed/printf ratio:  %6.2f   (paper geometric mean: 1.51)\n", r.FixedVsPrintf)
	fmt.Fprintf(&sb, "printf incorrect:    %6d   (paper: 0..6280 of 250680 by system)\n", r.Incorrect)
	fmt.Fprintf(&sb, "mean shortest digits: %5.2f  (paper: 15.2)\n", r.MeanDigits)
	return sb.String()
}

// EstimatorStats tallies how often a scale estimator hits the exact k.
type EstimatorStats struct {
	Name            string
	Exact, Low, Off int // exact, one short (free fixup), anything else
}

// RunEstimatorAblation compares the paper's estimator with Gay's and with
// the floating-point logarithm over the corpus (DESIGN.md Ablation A).
// The true k is taken from the conversion result itself.
func RunEstimatorAblation(corpus []float64) []EstimatorStats {
	stats := []EstimatorStats{
		{Name: "Burger-Dybvig 2-flop"},
		{Name: "Gay 5-flop Taylor"},
	}
	for _, f := range corpus {
		v := fpformat.DecodeFloat64(f)
		trueK, err := core.ExactScale(v, 10, core.ReaderNearestEven)
		if err != nil {
			continue
		}
		tally(&stats[0], core.EstimateScale(v, 10), trueK)
		tally(&stats[1], gay.EstimateCeilLog10(f), trueK)
	}
	return stats
}

func tally(s *EstimatorStats, est, trueK int) {
	switch est - trueK {
	case 0:
		s.Exact++
	case -1:
		s.Low++
	default:
		s.Off++
	}
}

// RenderEstimatorStats formats ablation results.
func RenderEstimatorStats(stats []EstimatorStats, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %10s %10s %10s\n", "Estimator", "exact", "off-by-1", "other")
	for _, s := range stats {
		fmt.Fprintf(&sb, "%-24s %9.2f%% %9.2f%% %9.2f%%\n", s.Name,
			pct(s.Exact, n), pct(s.Low, n), pct(s.Off, n))
	}
	return sb.String()
}

func pct(x, n int) float64 {
	if n == 0 {
		return 0
	}
	return 100 * float64(x) / float64(n)
}

func decode(corpus []float64) []fpformat.Value {
	values := make([]fpformat.Value, len(corpus))
	for i, f := range corpus {
		values[i] = fpformat.DecodeFloat64(f)
	}
	return values
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SuccessorRow is one algorithm generation's measurement in the
// follow-on-work comparison.
type SuccessorRow struct {
	Name      string
	Elapsed   time.Duration
	Relative  float64 // vs the paper's exact algorithm
	Fallbacks int     // Grisu-only: certification failures
}

// RunSuccessors compares three generations of shortest-form printing on
// the corpus: the paper's exact algorithm (1996), Grisu3 with exact
// fallback (2010), and Ryū (2018), plus Go's strconv for reference.
func RunSuccessors(corpus []float64) ([]SuccessorRow, error) {
	values := decode(corpus)
	rows := make([]SuccessorRow, 0, 4)

	start := time.Now()
	for _, v := range values {
		if _, err := core.FreeFormat(v, 10, core.ScalingEstimate, core.ReaderNearestEven); err != nil {
			return nil, err
		}
	}
	rows = append(rows, SuccessorRow{Name: "Burger-Dybvig exact (1996)", Elapsed: time.Since(start)})

	start = time.Now()
	fallbacks := 0
	for i, f := range corpus {
		if _, _, ok := grisu.Shortest(f); !ok {
			fallbacks++
			if _, err := core.FreeFormat(values[i], 10, core.ScalingEstimate, core.ReaderNearestEven); err != nil {
				return nil, err
			}
		}
	}
	rows = append(rows, SuccessorRow{Name: "Grisu3 + exact fallback (2010)", Elapsed: time.Since(start), Fallbacks: fallbacks})

	start = time.Now()
	ryuFallbacks := 0
	var ryuBuf [ryu.BufLen]byte
	for i, f := range corpus {
		if _, _, ok := ryu.ShortestInto(ryuBuf[:], f); !ok {
			ryuFallbacks++
			if _, err := core.FreeFormat(values[i], 10, core.ScalingEstimate, core.ReaderNearestEven); err != nil {
				return nil, err
			}
		}
	}
	rows = append(rows, SuccessorRow{Name: "Ryu + exact fallback (2018)", Elapsed: time.Since(start), Fallbacks: ryuFallbacks})

	start = time.Now()
	for _, f := range corpus {
		strconv.FormatFloat(f, 'e', -1, 64)
	}
	rows = append(rows, SuccessorRow{Name: "Go strconv (reference)", Elapsed: time.Since(start)})

	base := rows[0].Elapsed.Seconds()
	for i := range rows {
		rows[i].Relative = rows[i].Elapsed.Seconds() / base
	}
	return rows, nil
}

// BatchRow is one shard-count measurement of the batch engine's corpus
// throughput.
type BatchRow struct {
	Shards       int
	Elapsed      time.Duration // best of batchRuns passes
	ValuesPerSec float64
	MBPerSec     float64 // output bytes per second
	Speedup      float64 // vs the first row
}

// batchRuns is how many times each configuration converts the corpus;
// the fastest pass is reported (standard practice for throughput
// numbers, since stray scheduling noise only ever slows a run down).
const batchRuns = 3

// RunBatch measures batch-engine corpus throughput for each shard
// count, in the spirit of the paper's Table 2/3 timing methodology
// (convert the whole corpus, discard the output, report wall time).
func RunBatch(corpus []float64, shardCounts []int) ([]BatchRow, error) {
	rows := make([]BatchRow, 0, len(shardCounts))
	for _, shards := range shardCounts {
		p := batch.New(batch.Config{Shards: shards})
		var best time.Duration
		var bytesOut int
		for run := 0; run < batchRuns; run++ {
			start := time.Now()
			res, err := p.Convert(context.Background(), corpus)
			elapsed := time.Since(start)
			if err != nil {
				return nil, err
			}
			bytesOut = len(res.Buf)
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		rows = append(rows, BatchRow{
			Shards:       shards,
			Elapsed:      best,
			ValuesPerSec: float64(len(corpus)) / best.Seconds(),
			MBPerSec:     float64(bytesOut) / 1e6 / best.Seconds(),
		})
	}
	if len(rows) > 0 {
		base := rows[0].ValuesPerSec
		for i := range rows {
			rows[i].Speedup = rows[i].ValuesPerSec / base
		}
	}
	return rows, nil
}

// RenderBatch formats the batch throughput rows.
func RenderBatch(rows []BatchRow, corpus int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "corpus size: %d values (best of %d passes per row)\n", corpus, batchRuns)
	fmt.Fprintf(&sb, "%8s %12s %14s %10s %9s\n", "shards", "time", "values/s", "MB/s", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%8d %12s %14.0f %10.1f %8.2fx\n",
			r.Shards, r.Elapsed.Round(time.Microsecond), r.ValuesPerSec, r.MBPerSec, r.Speedup)
	}
	return sb.String()
}

// VerifyBatch checks the acceptance invariant behind the throughput
// numbers: the batch engine's packed output is byte-identical to
// per-value AppendShortest over the corpus, for every given shard
// count.
func VerifyBatch(corpus []float64, shardCounts []int) error {
	want := make([]byte, 0, len(corpus)*24)
	for _, v := range corpus {
		want = floatprint.AppendShortest(want, v)
	}
	for _, shards := range shardCounts {
		res, err := batch.New(batch.Config{Shards: shards}).Convert(context.Background(), corpus)
		if err != nil {
			return fmt.Errorf("batch convert (shards=%d): %w", shards, err)
		}
		if !bytes.Equal(res.Buf, want) {
			return fmt.Errorf("batch output (shards=%d) differs from per-value AppendShortest", shards)
		}
	}
	return nil
}

// RenderSuccessors formats the generational comparison.
func RenderSuccessors(rows []SuccessorRow, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-32s %12s %10s %12s\n", "Algorithm", "Time", "Relative", "Fallbacks")
	for _, r := range rows {
		fb := ""
		if r.Fallbacks > 0 {
			fb = fmt.Sprintf("%d (%.2f%%)", r.Fallbacks, 100*float64(r.Fallbacks)/float64(n))
		}
		fmt.Fprintf(&sb, "%-32s %12s %9.3fx %12s\n", r.Name, r.Elapsed.Round(time.Millisecond), r.Relative, fb)
	}
	return sb.String()
}
