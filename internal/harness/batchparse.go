// The ingestion experiment: batch-parse throughput in bytes per second,
// the figure of merit Lemire's "Number Parsing at a Gigabyte per
// Second" reports.  Three contenders scan the same NDJSON rendering of
// the corpus — the block-at-a-time engine (SWAR digit chunks into the
// Eisel–Lemire certifier, sharded by batch.Pool.ParseAll), a per-value
// floatprint.Parse loop over the same tokens, and a strconv.ParseFloat
// loop as the standard-library baseline — so the table isolates what
// block scanning buys over an already-fast per-value kernel.

package harness

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"runtime"
	"strconv"
	"strings"
	"time"

	"floatprint"
	"floatprint/batch"
)

// BatchParseRow is one contender's measurement over the NDJSON corpus.
type BatchParseRow struct {
	Name     string
	Elapsed  time.Duration // best of batchRuns passes
	MBPerSec float64       // input bytes per second (the Lemire metric)
	Speedup  float64       // vs the per-value Parse loop
}

// BatchParseNDJSON renders the corpus as the batch engine's canonical
// input: one shortest rendering per line.
func BatchParseNDJSON(corpus []float64) []byte {
	in := make([]byte, 0, len(corpus)*24)
	for _, v := range corpus {
		in = floatprint.AppendShortest(in, v)
		in = append(in, '\n')
	}
	return in
}

// RunBatchParse measures ingestion throughput over the corpus's NDJSON
// rendering: the block engine, a per-value Parse loop, and a strconv
// loop, each timed as the best of batchRuns passes (the same
// methodology as RunBatch).
func RunBatchParse(corpus []float64) ([]BatchParseRow, error) {
	in := BatchParseNDJSON(corpus)
	rows := make([]BatchParseRow, 0, 3)

	p := batch.New(batch.Config{})
	row, err := timeBatchParse("block engine (ParseAll)", in, func() error {
		n, err := p.ParseAll(context.Background(), bytes.NewReader(in), io.Discard)
		if err == nil && n != int64(len(corpus)) {
			err = fmt.Errorf("block engine parsed %d values, want %d", n, len(corpus))
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	row, err = timeBatchParse("per-value Parse loop", in, func() error {
		return eachToken(in, func(tok string) error {
			_, err := floatprint.Parse(tok, nil)
			return err
		})
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	row, err = timeBatchParse("strconv.ParseFloat loop", in, func() error {
		return eachToken(in, func(tok string) error {
			_, err := strconv.ParseFloat(tok, 64)
			return err
		})
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	base := rows[1].MBPerSec
	for i := range rows {
		rows[i].Speedup = rows[i].MBPerSec / base
	}
	return rows, nil
}

// eachToken walks newline-delimited tokens without allocating a slice
// of lines, so the per-value baselines pay tokenization but not
// splitting overhead the block engine never pays either.
func eachToken(in []byte, f func(string) error) error {
	for i := 0; i < len(in); {
		j := i
		for j < len(in) && in[j] != '\n' {
			j++
		}
		if j > i {
			if err := f(string(in[i:j])); err != nil {
				return err
			}
		}
		i = j + 1
	}
	return nil
}

func timeBatchParse(name string, in []byte, pass func() error) (BatchParseRow, error) {
	var best time.Duration
	for run := 0; run < batchRuns; run++ {
		start := time.Now()
		if err := pass(); err != nil {
			return BatchParseRow{}, fmt.Errorf("%s: %w", name, err)
		}
		if elapsed := time.Since(start); best == 0 || elapsed < best {
			best = elapsed
		}
	}
	return BatchParseRow{
		Name:     name,
		Elapsed:  best,
		MBPerSec: float64(len(in)) / 1e6 / best.Seconds(),
	}, nil
}

// RenderBatchParse formats the ingestion table.
func RenderBatchParse(rows []BatchParseRow, inputBytes, values int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "input: %d bytes, %d values (best of %d passes per row)\n",
		inputBytes, values, batchRuns)
	fmt.Fprintf(&sb, "%-28s %12s %10s %9s\n", "Parser", "time", "MB/s", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-28s %12s %10.1f %8.2fx\n",
			r.Name, r.Elapsed.Round(time.Microsecond), r.MBPerSec, r.Speedup)
	}
	return sb.String()
}

// VerifyBatchParse checks the acceptance invariant behind the
// throughput table: the block engine's packed output decodes to exactly
// the bits per-value floatprint.Parse produces for each token, in input
// order, for one shard and NumCPU shards.
func VerifyBatchParse(corpus []float64) error {
	in := BatchParseNDJSON(corpus)
	want := make([]uint64, 0, len(corpus))
	err := eachToken(in, func(tok string) error {
		v, err := floatprint.Parse(tok, nil)
		if err != nil {
			return err
		}
		want = append(want, math.Float64bits(v))
		return nil
	})
	if err != nil {
		return fmt.Errorf("per-value reference: %w", err)
	}

	shardCounts := []int{1}
	if cpus := runtime.NumCPU(); cpus > 1 {
		shardCounts = append(shardCounts, cpus)
	}
	for _, shards := range shardCounts {
		var out bytes.Buffer
		p := batch.New(batch.Config{Shards: shards})
		n, err := p.ParseAll(context.Background(), bytes.NewReader(in), &out)
		if err != nil {
			return fmt.Errorf("batch parse (shards=%d): %w", shards, err)
		}
		if n != int64(len(want)) || out.Len() != 8*len(want) {
			return fmt.Errorf("batch parse (shards=%d): %d values / %d bytes, want %d / %d",
				shards, n, out.Len(), len(want), 8*len(want))
		}
		packed := out.Bytes()
		for i, w := range want {
			if got := binary.LittleEndian.Uint64(packed[8*i:]); got != w {
				return fmt.Errorf("batch parse (shards=%d): value %d is %#x, per-value Parse says %#x",
					shards, i, got, w)
			}
		}
	}
	return nil
}
