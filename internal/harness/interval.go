// The interval-I/O experiment: throughput of outward-rounded interval
// printing and enclosure-guaranteed interval reading, the served
// workload behind /v1/interval.  Each corpus value x becomes the
// degenerate interval [x, x] — the hardest case, since both endpoints
// need a one-sided conversion of the same float and any slack in either
// direction shows up as widening — and the verification pass checks the
// enclosure contract end to end.
//
// Both directions are measured twice: under default options, where the
// certified one-sided fast paths (the directed Ryū print kernels and
// the directed Eisel–Lemire parser) serve nearly all traffic, and with
// BackendExact forcing the original big-integer paths — the before/after
// pair the EXPERIMENTS.md table reports.  The verification pass checks
// the two configurations byte-identical in both directions before any
// timing runs.

package harness

import (
	"fmt"
	"math"
	"strings"
	"time"

	"floatprint"
	"floatprint/internal/stats"
	"floatprint/interval"
)

// intervalExactOpts forces every endpoint conversion through the exact
// core and reader (the documented fast-path kill switch).
var intervalExactOpts = &floatprint.Options{Backend: floatprint.BackendExact}

// IntervalRow is one configuration of one direction's measurement over
// the corpus.
type IntervalRow struct {
	Name            string
	Elapsed         time.Duration // best of batchRuns passes
	IntervalsPerSec float64
	// FastHits and FastMisses are the directed fast-path attempts during
	// one (untimed) counting pass: per-endpoint directed Ryū attempts for
	// the print rows, directed Eisel–Lemire attempts for the parse rows.
	// Both stay zero for the forced-exact rows.
	FastHits, FastMisses uint64
}

// IntervalTexts renders every corpus value as degenerate interval text,
// the parse direction's input.
func IntervalTexts(corpus []float64) ([]string, error) {
	texts := make([]string, len(corpus))
	buf := make([]byte, 0, 64)
	for i, x := range corpus {
		var err error
		buf, err = interval.AppendShortest(buf[:0], interval.Interval{Lo: x, Hi: x}, nil)
		if err != nil {
			return nil, fmt.Errorf("interval print %x: %w", x, err)
		}
		texts[i] = string(buf)
	}
	return texts, nil
}

// RunInterval measures interval print and parse throughput over the
// corpus — fast-path and forced-exact configurations of each direction,
// every row the best of batchRuns passes.
func RunInterval(corpus []float64) ([]IntervalRow, error) {
	texts, err := IntervalTexts(corpus)
	if err != nil {
		return nil, err
	}
	printPass := func(opts *floatprint.Options) func() error {
		return func() error {
			buf := make([]byte, 0, 64)
			for _, x := range corpus {
				var err error
				buf, err = interval.AppendShortest(buf[:0], interval.Interval{Lo: x, Hi: x}, opts)
				if err != nil {
					return err
				}
			}
			return nil
		}
	}
	parsePass := func(opts *floatprint.Options) func() error {
		return func() error {
			for _, s := range texts {
				if _, err := interval.Parse(s, opts); err != nil {
					return err
				}
			}
			return nil
		}
	}

	rows := make([]IntervalRow, 0, 4)
	for _, cfg := range []struct {
		name  string
		pass  func() error
		print bool // selects which fast-path counters the counting pass reads
		fast  bool
	}{
		{"print (AppendShortest)", printPass(nil), true, true},
		{"print (exact core)", printPass(intervalExactOpts), true, false},
		{"parse (outward read)", parsePass(nil), false, true},
		{"parse (exact reader)", parsePass(intervalExactOpts), false, false},
	} {
		row, err := timeInterval(cfg.name, len(corpus), cfg.pass)
		if err != nil {
			return nil, err
		}
		if cfg.fast {
			row.FastHits, row.FastMisses, err = countDirected(cfg.pass, cfg.print)
			if err != nil {
				return nil, err
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// countDirected runs one untimed pass with telemetry enabled and returns
// the directed fast-path hit/miss delta it produced.  Counting is kept
// out of the timed passes so the throughput numbers never include the
// per-conversion atomic increments.
func countDirected(pass func() error, print bool) (hits, misses uint64, err error) {
	prev := stats.Enable(true)
	defer stats.Enable(prev)
	before := stats.Read()
	if err := pass(); err != nil {
		return 0, 0, err
	}
	d := stats.Read().Sub(before)
	if print {
		return d.DirectedRyuHits, d.DirectedRyuMisses, nil
	}
	return d.DirectedFastHits, d.DirectedFastMisses, nil
}

func timeInterval(name string, n int, pass func() error) (IntervalRow, error) {
	var best time.Duration
	for run := 0; run < batchRuns; run++ {
		start := time.Now()
		if err := pass(); err != nil {
			return IntervalRow{}, fmt.Errorf("%s: %w", name, err)
		}
		if elapsed := time.Since(start); best == 0 || elapsed < best {
			best = elapsed
		}
	}
	return IntervalRow{
		Name:            name,
		Elapsed:         best,
		IntervalsPerSec: float64(n) / best.Seconds(),
	}, nil
}

// RenderInterval formats the interval throughput table: time and rate
// per row, the directed fast-path hit rate where one applies, and the
// fast-vs-exact speedup per direction when both rows are present.
func RenderInterval(rows []IntervalRow, values int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "degenerate intervals over %d corpus values (best of %d passes per row)\n",
		values, batchRuns)
	fmt.Fprintf(&sb, "%-28s %12s %14s %10s\n", "Direction", "time", "intervals/s", "fast-hit%")
	rates := map[string]float64{}
	for _, r := range rows {
		hitRate := ""
		if attempts := r.FastHits + r.FastMisses; attempts > 0 {
			hitRate = fmt.Sprintf("%.3f%%", 100*float64(r.FastHits)/float64(attempts))
		}
		fmt.Fprintf(&sb, "%-28s %12s %14.0f %10s\n",
			r.Name, r.Elapsed.Round(time.Microsecond), r.IntervalsPerSec, hitRate)
		rates[r.Name] = r.IntervalsPerSec
	}
	if fast, exact := rates["print (AppendShortest)"], rates["print (exact core)"]; fast > 0 && exact > 0 {
		fmt.Fprintf(&sb, "print speedup (fast vs exact): %.1fx\n", fast/exact)
	}
	if fast, exact := rates["parse (outward read)"], rates["parse (exact reader)"]; fast > 0 && exact > 0 {
		fmt.Fprintf(&sb, "parse speedup (fast vs exact): %.1fx\n", fast/exact)
	}
	return sb.String()
}

// VerifyInterval checks the acceptance invariants behind the table.
// For every corpus value: Parse(print([x, x])) encloses [x, x] and
// widens by at most one ulp per endpoint; the fast-path and forced-exact
// configurations print byte-identical text; and both parse that text to
// bit-identical endpoints.
func VerifyInterval(corpus []float64) error {
	buf := make([]byte, 0, 64)
	exactBuf := make([]byte, 0, 64)
	for _, x := range corpus {
		iv := interval.Interval{Lo: x, Hi: x}
		var err error
		buf, err = interval.AppendShortest(buf[:0], iv, nil)
		if err != nil {
			return err
		}
		exactBuf, err = interval.AppendShortest(exactBuf[:0], iv, intervalExactOpts)
		if err != nil {
			return err
		}
		if string(buf) != string(exactBuf) {
			return fmt.Errorf("print divergence for x=%x: fast %q, exact %q", x, buf, exactBuf)
		}
		got, err := interval.Parse(string(buf), nil)
		if err != nil {
			return fmt.Errorf("interval parse %q: %w", buf, err)
		}
		exactGot, err := interval.Parse(string(buf), intervalExactOpts)
		if err != nil {
			return fmt.Errorf("exact interval parse %q: %w", buf, err)
		}
		if math.Float64bits(got.Lo) != math.Float64bits(exactGot.Lo) ||
			math.Float64bits(got.Hi) != math.Float64bits(exactGot.Hi) {
			return fmt.Errorf("parse divergence for %q: fast [%x,%x], exact [%x,%x]",
				buf, got.Lo, got.Hi, exactGot.Lo, exactGot.Hi)
		}
		if !got.Encloses(iv) {
			return fmt.Errorf("enclosure violated: Parse(%q) = [%x,%x] for x=%x", buf, got.Lo, got.Hi, x)
		}
		if (got.Lo != x && math.Nextafter(got.Lo, math.Inf(1)) != x) ||
			(got.Hi != x && math.Nextafter(got.Hi, math.Inf(-1)) != x) {
			return fmt.Errorf("widened beyond one ulp: Parse(%q) = [%x,%x] for x=%x", buf, got.Lo, got.Hi, x)
		}
	}
	return nil
}
