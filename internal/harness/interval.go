// The interval-I/O experiment: throughput of outward-rounded interval
// printing and enclosure-guaranteed interval reading, the served
// workload behind /v1/interval.  Each corpus value x becomes the
// degenerate interval [x, x] — the hardest case, since both endpoints
// need a one-sided conversion of the same float and any slack in either
// direction shows up as widening — and the verification pass checks the
// enclosure contract end to end.

package harness

import (
	"fmt"
	"math"
	"strings"
	"time"

	"floatprint/interval"
)

// IntervalRow is one direction's measurement over the corpus.
type IntervalRow struct {
	Name            string
	Elapsed         time.Duration // best of batchRuns passes
	IntervalsPerSec float64
}

// IntervalTexts renders every corpus value as degenerate interval text,
// the parse direction's input.
func IntervalTexts(corpus []float64) ([]string, error) {
	texts := make([]string, len(corpus))
	buf := make([]byte, 0, 64)
	for i, x := range corpus {
		var err error
		buf, err = interval.AppendShortest(buf[:0], interval.Interval{Lo: x, Hi: x}, nil)
		if err != nil {
			return nil, fmt.Errorf("interval print %x: %w", x, err)
		}
		texts[i] = string(buf)
	}
	return texts, nil
}

// RunInterval measures interval print and parse throughput over the
// corpus, each as the best of batchRuns passes.
func RunInterval(corpus []float64) ([]IntervalRow, error) {
	texts, err := IntervalTexts(corpus)
	if err != nil {
		return nil, err
	}
	rows := make([]IntervalRow, 0, 2)

	row, err := timeInterval("print (AppendShortest)", len(corpus), func() error {
		buf := make([]byte, 0, 64)
		for _, x := range corpus {
			var err error
			buf, err = interval.AppendShortest(buf[:0], interval.Interval{Lo: x, Hi: x}, nil)
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	row, err = timeInterval("parse (outward read)", len(texts), func() error {
		for _, s := range texts {
			if _, err := interval.Parse(s, nil); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return append(rows, row), nil
}

func timeInterval(name string, n int, pass func() error) (IntervalRow, error) {
	var best time.Duration
	for run := 0; run < batchRuns; run++ {
		start := time.Now()
		if err := pass(); err != nil {
			return IntervalRow{}, fmt.Errorf("%s: %w", name, err)
		}
		if elapsed := time.Since(start); best == 0 || elapsed < best {
			best = elapsed
		}
	}
	return IntervalRow{
		Name:            name,
		Elapsed:         best,
		IntervalsPerSec: float64(n) / best.Seconds(),
	}, nil
}

// RenderInterval formats the interval throughput table.
func RenderInterval(rows []IntervalRow, values int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "degenerate intervals over %d corpus values (best of %d passes per row)\n",
		values, batchRuns)
	fmt.Fprintf(&sb, "%-28s %12s %14s\n", "Direction", "time", "intervals/s")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-28s %12s %14.0f\n",
			r.Name, r.Elapsed.Round(time.Microsecond), r.IntervalsPerSec)
	}
	return sb.String()
}

// VerifyInterval checks the acceptance invariant behind the table: for
// every corpus value, Parse(print([x, x])) encloses [x, x] and widens by
// at most one ulp per endpoint.
func VerifyInterval(corpus []float64) error {
	buf := make([]byte, 0, 64)
	for _, x := range corpus {
		iv := interval.Interval{Lo: x, Hi: x}
		var err error
		buf, err = interval.AppendShortest(buf[:0], iv, nil)
		if err != nil {
			return err
		}
		got, err := interval.Parse(string(buf), nil)
		if err != nil {
			return fmt.Errorf("interval parse %q: %w", buf, err)
		}
		if !got.Encloses(iv) {
			return fmt.Errorf("enclosure violated: Parse(%q) = [%x,%x] for x=%x", buf, got.Lo, got.Hi, x)
		}
		if (got.Lo != x && math.Nextafter(got.Lo, math.Inf(1)) != x) ||
			(got.Hi != x && math.Nextafter(got.Hi, math.Inf(-1)) != x) {
			return fmt.Errorf("widened beyond one ulp: Parse(%q) = [%x,%x] for x=%x", buf, got.Lo, got.Hi, x)
		}
	}
	return nil
}
