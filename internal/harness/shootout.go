// The backend shootout: a head-to-head of every registered shortest-path
// backend plus Go's strconv over the same corpus, in the style of Gareau
// & Lemire's experimental review of shortest-decimal converters.  Each
// contender runs the same append-style loop the serving and batch layers
// use, so the numbers measure the production path, not a stripped kernel.

package harness

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"floatprint"
)

// ShootoutRow is one contender's measurement: per-pass ns/op samples
// (medianable by the bench-JSON schema), the decline mix of its fast
// path, and whether its output was verified byte-identical to the exact
// core.
type ShootoutRow struct {
	Name     string
	NsPerOp  []float64 // one sample per timed pass
	Median   float64
	Declines uint64  // fast-path declines over one pass (exact fallbacks)
	Rate     float64 // Declines / corpus size
	Verified bool    // byte-identical to the exact backend over the corpus
}

// shootoutContender is one row's driver: a per-value append loop plus
// the snapshot field that counts its declines.
type shootoutContender struct {
	name     string
	opts     *floatprint.Options // nil for the strconv reference
	declines func(floatprint.Stats) uint64
}

// RunShootout measures every backend over the corpus with `passes` timed
// passes each (after one warm-up), plus a non-timed telemetry pass for
// decline rates and a verification pass pinning byte-identity of the
// floatprint rows against the exact backend.  The strconv row is Go's
// own Ryū via AppendFloat, the natural external reference.
func RunShootout(corpus []float64, passes int) ([]ShootoutRow, error) {
	if passes <= 0 {
		passes = 5
	}
	contenders := []shootoutContender{
		{"grisu", &floatprint.Options{Backend: floatprint.BackendGrisu},
			func(s floatprint.Stats) uint64 { return s.GrisuMisses }},
		{"ryu", &floatprint.Options{Backend: floatprint.BackendRyu},
			func(s floatprint.Stats) uint64 { return s.RyuMisses }},
		{"exact", &floatprint.Options{Backend: floatprint.BackendExact},
			func(floatprint.Stats) uint64 { return 0 }},
		{"strconv", nil, func(floatprint.Stats) uint64 { return 0 }},
	}

	// Exact reference output for verification, rendered once.
	exactOpts := &floatprint.Options{Backend: floatprint.BackendExact}
	ref := make([][]byte, len(corpus))
	for i, v := range corpus {
		ref[i] = floatprint.AppendShortestWith(nil, v, exactOpts)
	}

	rows := make([]ShootoutRow, len(contenders))
	buf := make([]byte, 0, 64)
	runs := make([]func([]byte, float64) []byte, len(contenders))
	for ci, c := range contenders {
		rows[ci] = ShootoutRow{Name: c.name}
		opts := c.opts
		if opts == nil {
			runs[ci] = func(dst []byte, v float64) []byte {
				return strconv.AppendFloat(dst, v, 'g', -1, 64)
			}
		} else {
			runs[ci] = func(dst []byte, v float64) []byte {
				return floatprint.AppendShortestWith(dst, v, opts)
			}
		}

		// Verification pass (floatprint rows only: strconv's 'g'
		// rendering differs in shape, not digits, so it is not compared
		// byte-for-byte here — the differential tests own that).
		if c.opts != nil {
			rows[ci].Verified = true
			for i, v := range corpus {
				buf = runs[ci](buf[:0], v)
				if string(buf) != string(ref[i]) {
					return nil, fmt.Errorf("shootout: backend %s diverges from exact for %g: %q vs %q",
						c.name, v, buf, ref[i])
				}
			}
		}

		// Telemetry pass: decline mix with collection enabled.
		prev := floatprint.SetStatsEnabled(true)
		before := floatprint.Snapshot()
		for _, v := range corpus {
			buf = runs[ci](buf[:0], v)
		}
		rows[ci].Declines = c.declines(floatprint.Snapshot().Sub(before))
		floatprint.SetStatsEnabled(prev)
		rows[ci].Rate = float64(rows[ci].Declines) / float64(len(corpus))

		// Warm-up with collection off (also primes caches before timing).
		for _, v := range corpus {
			buf = runs[ci](buf[:0], v)
		}
	}

	// Timed passes, interleaved round-robin so slow machine-level drift
	// (frequency scaling, a noisy CI neighbor) lands on every contender
	// alike instead of biasing whichever ran last; a per-contender block
	// design can easily swing a head-to-head by 20% on shared runners.
	for p := 0; p < passes; p++ {
		for ci := range contenders {
			start := time.Now()
			for _, v := range corpus {
				buf = runs[ci](buf[:0], v)
			}
			elapsed := time.Since(start)
			rows[ci].NsPerOp = append(rows[ci].NsPerOp, float64(elapsed.Nanoseconds())/float64(len(corpus)))
		}
	}
	for ci := range rows {
		rows[ci].Median = median(rows[ci].NsPerOp)
	}
	return rows, nil
}

// RenderShootout renders the head-to-head as a table with each row's
// median ns/op, speed relative to the exact core, and decline rate.
func RenderShootout(rows []ShootoutRow, corpusSize, passes int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "backend shootout: %d values, best-of-%d medians (AppendShortest path)\n",
		corpusSize, passes)
	var exact float64
	for _, r := range rows {
		if r.Name == "exact" {
			exact = r.Median
		}
	}
	fmt.Fprintf(&sb, "  %-10s %12s %10s %12s %10s\n", "backend", "ns/op", "vs exact", "declines", "verified")
	for _, r := range rows {
		rel := "-"
		if exact > 0 {
			rel = fmt.Sprintf("%.2fx", exact/r.Median)
		}
		verified := "-"
		if r.Verified {
			verified = "yes"
		}
		fmt.Fprintf(&sb, "  %-10s %12.1f %10s %7d (%.4f%%) %7s\n",
			r.Name, r.Median, rel, r.Declines, 100*r.Rate, verified)
	}
	return sb.String()
}
