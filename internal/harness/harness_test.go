package harness

import (
	"strings"
	"testing"

	"floatprint/internal/schryer"
)

func TestRunTable2ShapeHolds(t *testing.T) {
	// The paper's Table 2 shape: iterative scaling is dramatically slower
	// than either estimate-based algorithm.  On a corpus slice the ratio
	// will not match the paper's 145x (different bignum substrate), but
	// iterative must clearly lose and the estimator must win or tie.
	rows, err := RunTable2(schryer.CorpusN(6000))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	iter, flog, est := rows[0], rows[1], rows[2]
	if est.Relative != 1.0 {
		t.Errorf("estimator row should be the 1.0 baseline, got %v", est.Relative)
	}
	if iter.Relative < 3 {
		t.Errorf("iterative scaling only %.2fx the estimator; expected a large gap", iter.Relative)
	}
	if flog.Relative > iter.Relative {
		t.Errorf("float-log (%.2fx) should not be slower than iterative (%.2fx)",
			flog.Relative, iter.Relative)
	}
	// The paper's asymptotic claim shows up directly in operation counts:
	// O(|log v|) vs O(1) is well over an order of magnitude on a corpus
	// that sweeps all binades.
	if iter.RelativeOps < 20 {
		t.Errorf("iterative scaling ops only %.1fx the estimator's", iter.RelativeOps)
	}
	if est.MeanScaleOps > 15 {
		t.Errorf("estimator scaling used %.1f ops on average; should be O(1)", est.MeanScaleOps)
	}
	out := RenderTable2(rows)
	for _, want := range []string{"Steele & White", "logarithm", "estimate", "Relative"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderTable2 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable3ShapeHolds(t *testing.T) {
	res, err := RunTable3(schryer.CorpusN(8000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Corpus != 8000 {
		t.Errorf("corpus count %d", res.Corpus)
	}
	// Free format does strictly more work than straightforward fixed; the
	// paper's geometric mean is 1.66.  Allow a broad band for machine and
	// corpus-slice variation, but the direction must hold.
	if res.FreeVsFixed < 1.0 {
		t.Errorf("free format faster than fixed (%.2f); shape violated", res.FreeVsFixed)
	}
	if res.FreeVsFixed > 6 {
		t.Errorf("free/fixed ratio %.2f implausibly large", res.FreeVsFixed)
	}
	// The float-arithmetic printf must beat the exact fixed conversion.
	if res.FixedVsPrintf < 1.0 {
		t.Errorf("exact fixed format faster than naive printf (%.2f)", res.FixedVsPrintf)
	}
	// Mis-rounding exists but is rare (paper: 0..2.5% by system).
	if res.Incorrect == 0 {
		t.Errorf("printf simulation produced no incorrect roundings")
	}
	if res.Incorrect*20 > res.Corpus {
		t.Errorf("printf incorrect on %d/%d: more than 5%%", res.Incorrect, res.Corpus)
	}
	// Mean shortest digits for doubles is near the paper's 15.2.
	if res.MeanDigits < 13 || res.MeanDigits > 17.5 {
		t.Errorf("mean digits %.2f outside plausible band", res.MeanDigits)
	}
	out := RenderTable3(res)
	for _, want := range []string{"free format", "fixed format", "printf", "15.2", "1.66"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderTable3 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunEstimatorAblation(t *testing.T) {
	corpus := schryer.CorpusN(20000)
	stats := RunEstimatorAblation(corpus)
	if len(stats) != 2 {
		t.Fatalf("want 2 estimators, got %d", len(stats))
	}
	bd, g := stats[0], stats[1]
	// The paper: our estimate never overshoots and is within one, so
	// exact+low must cover everything.
	if bd.Off != 0 {
		t.Errorf("Burger-Dybvig estimator off by more than one on %d values", bd.Off)
	}
	if bd.Exact+bd.Low != len(corpus) {
		t.Errorf("Burger-Dybvig tallies %d+%d != %d", bd.Exact, bd.Low, len(corpus))
	}
	// "our simpler estimate is frequently k−1" — the off-by-one bucket is
	// substantial, unlike Gay's.
	if bd.Low == 0 {
		t.Errorf("Burger-Dybvig estimator never off by one; not matching the paper's description")
	}
	// Gay's estimate is more accurate: higher exact rate.
	if g.Exact <= bd.Exact {
		t.Errorf("Gay exact %d should exceed Burger-Dybvig exact %d", g.Exact, bd.Exact)
	}
	out := RenderEstimatorStats(stats, len(corpus))
	if !strings.Contains(out, "Gay") || !strings.Contains(out, "exact") {
		t.Errorf("RenderEstimatorStats output malformed:\n%s", out)
	}
}

func TestRunSuccessorsShape(t *testing.T) {
	rows, err := RunSuccessors(schryer.CorpusN(8000))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	dragon, grisuRow, ryuRow := rows[0], rows[1], rows[2]
	if dragon.Relative != 1.0 {
		t.Errorf("exact algorithm should be the baseline")
	}
	// Each successor generation is faster than the last.
	if grisuRow.Elapsed >= dragon.Elapsed {
		t.Errorf("Grisu (%v) should beat the exact algorithm (%v)", grisuRow.Elapsed, dragon.Elapsed)
	}
	if ryuRow.Elapsed >= dragon.Elapsed {
		t.Errorf("Ryu (%v) should beat the exact algorithm (%v)", ryuRow.Elapsed, dragon.Elapsed)
	}
	// Grisu's fallback rate stays small.
	if grisuRow.Fallbacks == 0 || grisuRow.Fallbacks > 8000/20 {
		t.Errorf("implausible Grisu fallback count %d", grisuRow.Fallbacks)
	}
	out := RenderSuccessors(rows, 8000)
	for _, want := range []string{"Burger-Dybvig", "Grisu3", "Ryu", "strconv", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderSuccessors missing %q:\n%s", want, out)
		}
	}
}
