package reader

import (
	"math"
	"math/big"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"floatprint/internal/fpformat"
)

// convert64 parses s in base 10 and converts under mode, returning the
// float64 and the conversion error (range errors carry a value).
func convert64(t *testing.T, s string, mode RoundMode) (float64, error) {
	t.Helper()
	n, err := ParseText(s, 10)
	if err != nil {
		t.Fatalf("ParseText(%q): %v", s, err)
	}
	v, cerr := Convert(n, fpformat.Binary64, mode)
	f, err := v.Float64()
	if err != nil {
		t.Fatalf("Float64 of Convert(%q, %v): %v", s, mode, err)
	}
	return f, cerr
}

// TestDirectedRounding pins the two directed modes on inexact values:
// the result is the representable neighbor on the requested side of the
// exact decimal value.
func TestDirectedRounding(t *testing.T) {
	down := math.Nextafter // toward the first argument's lower neighbor
	cases := []struct {
		in       string
		neg, pos float64
	}{
		// Decimal 0.1 lies below float64(0.1); decimal 0.3 lies above
		// float64(0.3).  The directed results straddle accordingly.
		{"0.1", down(0.1, math.Inf(-1)), 0.1},
		{"0.3", 0.3, down(0.3, math.Inf(1))},
		{"-0.1", -0.1, -down(0.1, math.Inf(-1))},
		{"-0.3", -down(0.3, math.Inf(1)), -0.3},
		// Exactly representable values are fixed points of every mode.
		{"0.5", 0.5, 0.5},
		{"-0.25", -0.25, -0.25},
		{"1e22", 1e22, 1e22},
		{"123456789", 123456789, 123456789},
		// 2^53+1 needs 54 bits: neighbors are 2^53 and 2^53+2.
		{"9007199254740993", 9007199254740992, 9007199254740994},
	}
	for _, c := range cases {
		if got, err := convert64(t, c.in, TowardNegInf); err != nil || got != c.neg {
			t.Errorf("Convert(%q, TowardNegInf) = %v, %v; want %v", c.in, got, err, c.neg)
		}
		if got, err := convert64(t, c.in, TowardPosInf); err != nil || got != c.pos {
			t.Errorf("Convert(%q, TowardPosInf) = %v, %v; want %v", c.in, got, err, c.pos)
		}
	}
}

// TestDirectedSignedZero pins the signed-zero contract: zero inputs keep
// their sign under every mode, and a nonzero magnitude rounding toward
// zero underflows to the zero of its own sign — it must not jump the
// origin.
func TestDirectedSignedZero(t *testing.T) {
	modes := []RoundMode{NearestEven, NearestAway, NearestTowardZero, TowardNegInf, TowardPosInf}
	for _, m := range modes {
		for _, in := range []string{"0", "0.000", "0e99"} {
			if f, err := convert64(t, in, m); err != nil || f != 0 || math.Signbit(f) {
				t.Errorf("Convert(%q, %v) = %v, %v; want +0", in, f, err, m)
			}
		}
		for _, in := range []string{"-0", "-0.000", "-0e99"} {
			if f, err := convert64(t, in, m); err != nil || f != 0 || !math.Signbit(f) {
				t.Errorf("Convert(%q, %v) = %v, %v; want -0", in, f, err, m)
			}
		}
	}
	// Tiny magnitudes truncating toward zero: +tiny under TowardNegInf is
	// +0, -tiny under TowardPosInf is -0.  Both the O(1) magnitude
	// pre-check ("1e-999") and the exact rational path ("2e-324", which is
	// below half the smallest denormal but within its decimal exponent
	// range) must agree.
	for _, in := range []string{"1e-999", "2e-324"} {
		if f, err := convert64(t, in, TowardNegInf); err != nil || f != 0 || math.Signbit(f) {
			t.Errorf("Convert(%q, TowardNegInf) = %v, %v; want +0", in, f, err)
		}
		if f, err := convert64(t, "-"+in, TowardPosInf); err != nil || f != 0 || !math.Signbit(f) {
			t.Errorf("Convert(-%q, TowardPosInf) = %v, %v; want -0", in, f, err)
		}
	}
}

// TestDirectedSubnormalFrontier pins behavior around the smallest
// denormal d = 4.94…e-324: any nonzero magnitude rounding outward stops
// at ±d (IEEE gradual underflow has no smaller nonzero value), with no
// range error.
func TestDirectedSubnormalFrontier(t *testing.T) {
	d := math.SmallestNonzeroFloat64
	cases := []struct {
		in   string
		mode RoundMode
		want float64
	}{
		// Magnitude pre-check path (decimal exponent far below range).
		{"1e-999", TowardPosInf, d},
		{"-1e-999", TowardNegInf, -d},
		// Exact rational path, below and above half of d.
		{"2e-324", TowardPosInf, d},
		{"3e-324", TowardPosInf, d},
		{"-2e-324", TowardNegInf, -d},
		// Between d and 2d: directed modes pick the two denormal
		// neighbors, nearest picks the closer (5e-324 is nearer d).
		{"5e-324", TowardNegInf, d},
		{"5e-324", TowardPosInf, 2 * d},
		{"5e-324", NearestEven, d},
	}
	for _, c := range cases {
		if got, err := convert64(t, c.in, c.mode); err != nil || got != c.want {
			t.Errorf("Convert(%q, %v) = %g, %v; want %g", c.in, c.mode, got, err, c.want)
		}
	}
}

// TestDirectedOverflow pins the IEEE §4.3.2 overflow contract: rounding
// in the truncating direction saturates at the largest finite value,
// rounding outward produces the infinity; both report ErrRange.
func TestDirectedOverflow(t *testing.T) {
	maxF := math.MaxFloat64
	cases := []struct {
		in   string
		mode RoundMode
		want float64
	}{
		{"1e999", TowardNegInf, maxF},
		{"1e999", TowardPosInf, math.Inf(1)},
		{"-1e999", TowardNegInf, math.Inf(-1)},
		{"-1e999", TowardPosInf, -maxF},
		{"1e999", NearestEven, math.Inf(1)},
		// Just past the largest finite value (max + 1 ulp is ~1.79769e308;
		// this is between max and the overflow midpoint, exercising the
		// exact rational path rather than the magnitude pre-check).
		{"1.7976931348623159e308", TowardNegInf, maxF},
		{"1.7976931348623159e308", TowardPosInf, math.Inf(1)},
		{"-1.7976931348623159e308", TowardPosInf, -maxF},
	}
	for _, c := range cases {
		got, err := convert64(t, c.in, c.mode)
		if got != c.want || err == nil || !strings.Contains(err.Error(), "range") {
			t.Errorf("Convert(%q, %v) = %g, %v; want %g with range error", c.in, c.mode, got, err, c.want)
		}
	}
}

// TestDirectedAgainstBigFloat cross-checks the directed modes against
// math/big's correctly-rounded directed parsing on random inputs kept
// well inside the normal range (big.Float knows nothing of gradual
// underflow or float64 saturation).
func TestDirectedAgainstBigFloat(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		var sb strings.Builder
		if r.Intn(2) == 0 {
			sb.WriteByte('-')
		}
		sb.WriteByte(byte('1' + r.Intn(9)))
		for j := r.Intn(24); j > 0; j-- {
			sb.WriteByte(byte('0' + r.Intn(10)))
		}
		sb.WriteByte('.')
		for j := 1 + r.Intn(12); j > 0; j-- {
			sb.WriteByte(byte('0' + r.Intn(10)))
		}
		sb.WriteString("e")
		sb.WriteString(strconv.Itoa(r.Intn(560) - 280))
		s := sb.String()

		for mode, bigMode := range map[RoundMode]big.RoundingMode{
			TowardNegInf: big.ToNegativeInf,
			TowardPosInf: big.ToPositiveInf,
		} {
			want, _, err := big.ParseFloat(s, 10, 53, bigMode)
			if err != nil {
				t.Fatalf("big.ParseFloat(%q): %v", s, err)
			}
			wf, acc := want.Float64()
			if acc != big.Exact {
				t.Fatalf("oracle for %q not exact at 53 bits", s)
			}
			if got, cerr := convert64(t, s, mode); cerr != nil || got != wf {
				t.Fatalf("Convert(%q, %v) = %v (err %v), big wants %v", s, mode, got, cerr, wf)
			}
		}
	}
}

// TestDirectedBracketsNearest checks the ordering invariant on random
// inputs: down ≤ nearest ≤ up, the directed results are at most one ulp
// apart, and they coincide exactly when the input is exactly
// representable (in which case all modes agree).
func TestDirectedBracketsNearest(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 4000; i++ {
		var sb strings.Builder
		for j := 1 + r.Intn(20); j > 0; j-- {
			sb.WriteByte(byte('0' + r.Intn(10)))
		}
		sb.WriteString("e")
		sb.WriteString(strconv.Itoa(r.Intn(600) - 320))
		s := sb.String()

		lo, _ := convert64(t, s, TowardNegInf)
		hi, _ := convert64(t, s, TowardPosInf)
		mid, _ := convert64(t, s, NearestEven)
		if !(lo <= mid && mid <= hi) {
			t.Fatalf("%q: ordering violated: down %v, nearest %v, up %v", s, lo, mid, hi)
		}
		if lo != hi && math.Nextafter(lo, math.Inf(1)) != hi {
			t.Fatalf("%q: directed results more than one ulp apart: %v .. %v", s, lo, hi)
		}
	}
}
