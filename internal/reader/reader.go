// Package reader implements correctly rounded floating-point *input*: the
// inverse of the printing algorithm, in the spirit of Clinger's "How to
// Read Floating-Point Numbers Accurately" (reference [1] of Burger &
// Dybvig).  Given a digit string in any base 2..36 it produces the
// floating-point value of a target format nearest the exact rational value
// of the string, under a selectable tie-breaking rule.
//
// The printing paper leans on the existence of such a reader twice: the
// free-format output is defined by what an accurate reader recovers, and
// the reader's rounding mode determines whether the rounding-range
// endpoints are admissible outputs.  This package lets the tests close
// that loop for every mode without relying on strconv (which only reads
// base 10 with ties-to-even).
//
// The implementation uses exact big-integer arithmetic throughout — the
// scaled comparison approach of Clinger's AlgorithmM — so results are
// correctly rounded for all inputs, at the cost of speed on huge
// exponents.  Exponents so large the value provably overflows (or so
// small it provably rounds to zero) are decided by an O(1) magnitude
// bound instead, so no input costs big-integer work beyond its own
// digit count.
package reader

import (
	"errors"
	"fmt"
	"math"

	"floatprint/internal/bignat"
	"floatprint/internal/fpformat"
)

// RoundMode selects how an inexact value — one that falls between two
// representable numbers — is rounded.  The three nearest modes differ only
// on exact halfway ties; the two directed modes move every inexact value
// toward the named infinity (IEEE 754 roundTowardNegative and
// roundTowardPositive), which is what interval endpoints need: a lower
// bound read under TowardNegInf can only move down, an upper bound read
// under TowardPosInf can only move up, so the machine interval always
// encloses the written one.  The nearest names correspond to the printer's
// ReaderMode values: a printer told the reader uses mode M is only honest
// if the reader really does.
type RoundMode int

const (
	// NearestEven rounds ties to the candidate with an even mantissa
	// (IEEE 754 round-to-nearest default).
	NearestEven RoundMode = iota
	// NearestAway rounds ties away from zero.
	NearestAway
	// NearestTowardZero rounds ties toward zero.
	NearestTowardZero
	// TowardNegInf rounds every inexact value toward −∞ (IEEE 754
	// roundTowardNegative): positive magnitudes truncate, negative ones
	// grow.  Positive overflow saturates at the largest finite value,
	// negative overflow goes to −Inf.
	TowardNegInf
	// TowardPosInf rounds every inexact value toward +∞ (IEEE 754
	// roundTowardPositive), the mirror image of TowardNegInf.
	TowardPosInf
)

func (m RoundMode) String() string {
	switch m {
	case NearestEven:
		return "nearest-even"
	case NearestAway:
		return "nearest-away"
	case NearestTowardZero:
		return "nearest-toward-zero"
	case TowardNegInf:
		return "toward-neg-inf"
	case TowardPosInf:
		return "toward-pos-inf"
	}
	return fmt.Sprintf("RoundMode(%d)", int(m))
}

// directed reports whether m is one of the two directed modes.
func directed(m RoundMode) bool { return m == TowardNegInf || m == TowardPosInf }

// magnitudeUp reports whether mode rounds an inexact value of the given
// sign away from zero in magnitude: TowardPosInf pushes positive values up
// and TowardNegInf pushes negative values down, both of which grow |v|.
// The nearest modes answer false; their ties are resolved in roundQuotient.
func magnitudeUp(mode RoundMode, neg bool) bool {
	return (mode == TowardPosInf && !neg) || (mode == TowardNegInf && neg)
}

// ErrRange reports that a parsed value overflows the target format.  Under
// the nearest modes (and the directed mode pointing past the overflow) the
// returned value is ±Inf as IEEE prescribes; under the directed mode
// pointing back toward zero it is the largest finite value of the format
// (IEEE 754 §4.3.2: roundTowardNegative carries positive overflow to the
// most positive finite number, not to +Inf), still with ErrRange so
// callers can observe the saturation.
var ErrRange = errors.New("reader: value out of range")

// maxFinite is the largest finite value of f: (b^p − 1) × b^MaxExp, where
// the truncating directed modes saturate on overflow.
func maxFinite(f *fpformat.Format, neg bool) fpformat.Value {
	m := bignat.SubWord(bignat.PowUint(uint64(f.Base), uint(f.Precision)), 1)
	return fpformat.Value{Fmt: f, Class: fpformat.Normal, Neg: neg, F: m, E: f.MaxExp}
}

// minDenormal is the smallest positive value of f, 1 × b^MinExp.  The
// magnitude-growing directed modes land here instead of underflowing to
// zero: a nonzero value must never round below its own magnitude when the
// mode pushes outward, or interval enclosure would break at the origin.
func minDenormal(f *fpformat.Format, neg bool) fpformat.Value {
	return fpformat.Value{Fmt: f, Class: fpformat.Denormal, Neg: neg, F: bignat.Nat{1}, E: f.MinExp}
}

// overflow resolves a magnitude above the finite range of f: ±Inf for the
// nearest modes and the outward-pointing directed mode, the largest finite
// value for the truncating one.  Either way the result is out of range.
func overflow(f *fpformat.Format, neg bool, mode RoundMode) (fpformat.Value, error) {
	if directed(mode) && !magnitudeUp(mode, neg) {
		return maxFinite(f, neg), ErrRange
	}
	return fpformat.Value{Fmt: f, Class: fpformat.Inf, Neg: neg}, ErrRange
}

// Number is an unrounded textual number: ±0.d₁…dₙ × Bᴷ, mirroring the
// printer's Result so printed output can be fed straight back in.
type Number struct {
	Neg    bool
	Digits []byte // digit values 0..Base-1
	Base   int
	K      int
}

// Convert rounds the exact rational value of n to the value of format f
// prescribed by the rounding mode: the nearest representable value under
// the three nearest modes, the nearest value in the rounding direction
// under the two directed modes.  Overflow returns ErrRange alongside ±Inf
// or, for the directed mode truncating that sign, the largest finite
// value; underflow rounds through the denormal range to ±0, except that a
// directed mode pushing a nonzero magnitude outward stops at the smallest
// denormal rather than crossing zero.
func Convert(n Number, f *fpformat.Format, mode RoundMode) (fpformat.Value, error) {
	if n.Base < 2 || n.Base > 36 {
		return fpformat.Value{}, fmt.Errorf("reader: base %d out of range [2,36]", n.Base)
	}
	// Accumulate the digits into one integer D, so the value is
	// D × Base^(K−len).
	d := bignat.Nat(nil)
	for _, dig := range n.Digits {
		if int(dig) >= n.Base {
			return fpformat.Value{}, fmt.Errorf("reader: digit %d out of range for base %d", dig, n.Base)
		}
		d = bignat.MulAddWord(d, bignat.Word(n.Base), bignat.Word(dig))
	}
	if d.IsZero() {
		return fpformat.Value{Fmt: f, Class: fpformat.Zero, Neg: n.Neg}, nil
	}
	exp := n.K - len(n.Digits)

	// Magnitude pre-check: the value is d × Base^exp, and d.BitLen()
	// pins log2(d) within one bit, so log2(value) is known to ±1 here
	// in O(1).  Astronomical exponents must be decided now — without
	// this, a stray "1e20000000" spends minutes raising the base to a
	// multi-megabit power on its way to the same ±Inf or ±0, a denial
	// of service every caller (and the batch parse engine especially)
	// would inherit.  The 16-bit margin keeps any case a float bound
	// cannot decide on the exact path; such borderline exponents are
	// small, so the exact path stays cheap for them.
	log2In := math.Log2(float64(n.Base))
	log2Out := math.Log2(float64(f.Base))
	log2Lo := float64(d.BitLen()-1) + float64(exp)*log2In // <= log2(value)
	log2Hi := float64(d.BitLen()) + float64(exp)*log2In   // >= log2(value)
	if log2Lo > float64(f.MaxExp+f.Precision)*log2Out+16 {
		return overflow(f, n.Neg, mode)
	}
	if log2Hi < float64(f.MinExp)*log2Out-16 {
		// Below half the smallest denormal by a wide margin: every
		// nearest mode takes it to zero, as roundRational would.  An
		// outward-pointing directed mode instead lands on the smallest
		// denormal, exactly as the exact path does for any nonzero
		// magnitude that floors to zero.
		if magnitudeUp(mode, n.Neg) {
			return minDenormal(f, n.Neg), nil
		}
		return fpformat.Value{Fmt: f, Class: fpformat.Zero, Neg: n.Neg}, nil
	}

	// Exact rational x = num/den.
	num, den := d, bignat.Nat{1}
	if exp >= 0 {
		num = bignat.Mul(num, bignat.PowUint(uint64(n.Base), uint(exp)))
	} else {
		den = bignat.PowUint(uint64(n.Base), uint(-exp))
	}
	return roundRational(num, den, n.Neg, f, mode)
}

// roundRational returns the value of format f that num/den (> 0) rounds
// to under mode; neg carries the sign, which the directed modes need to
// orient their magnitude rounding.
func roundRational(num, den bignat.Nat, neg bool, f *fpformat.Format, mode RoundMode) (fpformat.Value, error) {
	b := uint64(f.Base)
	// Estimate e with floor(log_b(x)) − (p−1) from the bit lengths, then
	// correct by iteration; the estimate is within a couple of units.
	logBx := float64(num.BitLen()-den.BitLen()) * math.Ln2 / math.Log(float64(f.Base))
	e := int(math.Floor(logBx)) - (f.Precision - 1)
	if e < f.MinExp {
		e = f.MinExp
	}

	lo := bignat.PowUint(b, uint(f.Precision-1))
	hi := bignat.PowUint(b, uint(f.Precision))
	for {
		// q = floor(x / bᵉ), computed exactly.  The binade — and therefore
		// the rounding grain — is chosen from the floor, NOT the rounded
		// value: a number just below b^(p−1)·bᵉ lives in the finer-grained
		// binade below even if rounding would carry it up.
		sNum, sDen := num, den
		if e > 0 {
			sDen = bignat.Mul(sDen, bignat.PowUint(b, uint(e)))
		} else if e < 0 {
			sNum = bignat.Mul(sNum, bignat.PowUint(b, uint(-e)))
		}
		q, rem := bignat.DivMod(sNum, sDen)
		if bignat.Cmp(q, hi) >= 0 {
			// Floor at or above b^p: grain too fine, raise e.
			e++
			if e > f.MaxExp {
				return overflow(f, neg, mode)
			}
			continue
		}
		if bignat.Cmp(q, lo) < 0 && e > f.MinExp {
			// Floor below b^(p−1): the value belongs to a finer binade.
			e--
			continue
		}

		m := roundQuotient(q, rem, sDen, mode, neg)
		if bignat.Cmp(m, hi) >= 0 {
			// Rounding carried into the next binade: the value is exactly
			// bᵖ·bᵉ = b^(p−1)·b^(e+1).
			m = lo
			e++
		}
		if m.IsZero() {
			// Underflow to zero (only possible at e == MinExp, and never
			// under an outward-pointing directed mode, whose roundQuotient
			// lifts any nonzero remainder to at least 1).
			return fpformat.Value{Fmt: f, Class: fpformat.Zero, Neg: neg}, nil
		}
		if e > f.MaxExp {
			return overflow(f, neg, mode)
		}
		if e == f.MaxExp && !rem.IsZero() && directed(mode) && !magnitudeUp(mode, neg) &&
			bignat.Cmp(bignat.AddWord(m, 1), hi) == 0 {
			// IEEE signals overflow from the unbounded-exponent result: a
			// value strictly above the largest finite number truncates onto
			// it under an inward directed mode, but still overflows.
			return overflow(f, neg, mode)
		}
		class := fpformat.Normal
		if bignat.Cmp(m, lo) < 0 {
			class = fpformat.Denormal
		}
		return fpformat.Value{Fmt: f, Class: class, Neg: neg, F: m, E: e}, nil
	}
}

// roundQuotient rounds q + rem/den to an integer under mode; neg is the
// sign of the value, which orients the directed modes.
func roundQuotient(q, rem, den bignat.Nat, mode RoundMode, neg bool) bignat.Nat {
	if rem.IsZero() {
		return q
	}
	if directed(mode) {
		// Directed rounding has no ties: any nonzero remainder moves away
		// from zero when the mode points outward for this sign, and
		// truncates otherwise.
		if magnitudeUp(mode, neg) {
			return bignat.AddWord(q, 1)
		}
		return q
	}
	switch bignat.Cmp(bignat.Shl(rem, 1), den) {
	case -1:
		return q
	case 1:
		return bignat.AddWord(q, 1)
	}
	// Exact tie.
	switch mode {
	case NearestAway:
		return bignat.AddWord(q, 1)
	case NearestTowardZero:
		return q
	default: // NearestEven
		if q.Bit(0) == 0 {
			return q
		}
		return bignat.AddWord(q, 1)
	}
}
