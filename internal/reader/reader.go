// Package reader implements correctly rounded floating-point *input*: the
// inverse of the printing algorithm, in the spirit of Clinger's "How to
// Read Floating-Point Numbers Accurately" (reference [1] of Burger &
// Dybvig).  Given a digit string in any base 2..36 it produces the
// floating-point value of a target format nearest the exact rational value
// of the string, under a selectable tie-breaking rule.
//
// The printing paper leans on the existence of such a reader twice: the
// free-format output is defined by what an accurate reader recovers, and
// the reader's rounding mode determines whether the rounding-range
// endpoints are admissible outputs.  This package lets the tests close
// that loop for every mode without relying on strconv (which only reads
// base 10 with ties-to-even).
//
// The implementation uses exact big-integer arithmetic throughout — the
// scaled comparison approach of Clinger's AlgorithmM — so results are
// correctly rounded for all inputs, at the cost of speed on huge
// exponents.  Exponents so large the value provably overflows (or so
// small it provably rounds to zero) are decided by an O(1) magnitude
// bound instead, so no input costs big-integer work beyond its own
// digit count.
package reader

import (
	"errors"
	"fmt"
	"math"

	"floatprint/internal/bignat"
	"floatprint/internal/fpformat"
)

// RoundMode selects how a value exactly halfway between two representable
// numbers is rounded.  The names correspond to the printer's ReaderMode
// values: a printer told the reader uses mode M is only honest if the
// reader really does.
type RoundMode int

const (
	// NearestEven rounds ties to the candidate with an even mantissa
	// (IEEE 754 round-to-nearest default).
	NearestEven RoundMode = iota
	// NearestAway rounds ties away from zero.
	NearestAway
	// NearestTowardZero rounds ties toward zero.
	NearestTowardZero
)

func (m RoundMode) String() string {
	switch m {
	case NearestEven:
		return "nearest-even"
	case NearestAway:
		return "nearest-away"
	case NearestTowardZero:
		return "nearest-toward-zero"
	}
	return fmt.Sprintf("RoundMode(%d)", int(m))
}

// ErrRange reports that a parsed value overflows the target format; the
// returned value is ±Inf as IEEE prescribes.
var ErrRange = errors.New("reader: value out of range")

// Number is an unrounded textual number: ±0.d₁…dₙ × Bᴷ, mirroring the
// printer's Result so printed output can be fed straight back in.
type Number struct {
	Neg    bool
	Digits []byte // digit values 0..Base-1
	Base   int
	K      int
}

// Convert rounds the exact rational value of n to the nearest value of
// format f under the given rounding mode.  Overflow returns ±Inf and
// ErrRange; underflow rounds through the denormal range to ±0.
func Convert(n Number, f *fpformat.Format, mode RoundMode) (fpformat.Value, error) {
	if n.Base < 2 || n.Base > 36 {
		return fpformat.Value{}, fmt.Errorf("reader: base %d out of range [2,36]", n.Base)
	}
	// Accumulate the digits into one integer D, so the value is
	// D × Base^(K−len).
	d := bignat.Nat(nil)
	for _, dig := range n.Digits {
		if int(dig) >= n.Base {
			return fpformat.Value{}, fmt.Errorf("reader: digit %d out of range for base %d", dig, n.Base)
		}
		d = bignat.MulAddWord(d, bignat.Word(n.Base), bignat.Word(dig))
	}
	if d.IsZero() {
		return fpformat.Value{Fmt: f, Class: fpformat.Zero, Neg: n.Neg}, nil
	}
	exp := n.K - len(n.Digits)

	// Magnitude pre-check: the value is d × Base^exp, and d.BitLen()
	// pins log2(d) within one bit, so log2(value) is known to ±1 here
	// in O(1).  Astronomical exponents must be decided now — without
	// this, a stray "1e20000000" spends minutes raising the base to a
	// multi-megabit power on its way to the same ±Inf or ±0, a denial
	// of service every caller (and the batch parse engine especially)
	// would inherit.  The 16-bit margin keeps any case a float bound
	// cannot decide on the exact path; such borderline exponents are
	// small, so the exact path stays cheap for them.
	log2In := math.Log2(float64(n.Base))
	log2Out := math.Log2(float64(f.Base))
	log2Lo := float64(d.BitLen()-1) + float64(exp)*log2In // <= log2(value)
	log2Hi := float64(d.BitLen()) + float64(exp)*log2In   // >= log2(value)
	if log2Lo > float64(f.MaxExp+f.Precision)*log2Out+16 {
		return fpformat.Value{Fmt: f, Class: fpformat.Inf, Neg: n.Neg}, ErrRange
	}
	if log2Hi < float64(f.MinExp)*log2Out-16 {
		// Below half the smallest denormal by a wide margin: every
		// rounding mode takes it to zero, as roundRational would.
		return fpformat.Value{Fmt: f, Class: fpformat.Zero, Neg: n.Neg}, nil
	}

	// Exact rational x = num/den.
	num, den := d, bignat.Nat{1}
	if exp >= 0 {
		num = bignat.Mul(num, bignat.PowUint(uint64(n.Base), uint(exp)))
	} else {
		den = bignat.PowUint(uint64(n.Base), uint(-exp))
	}
	return roundRational(num, den, n.Neg, f, mode)
}

// roundRational returns the value of format f nearest num/den (> 0).
func roundRational(num, den bignat.Nat, neg bool, f *fpformat.Format, mode RoundMode) (fpformat.Value, error) {
	b := uint64(f.Base)
	// Estimate e with floor(log_b(x)) − (p−1) from the bit lengths, then
	// correct by iteration; the estimate is within a couple of units.
	logBx := float64(num.BitLen()-den.BitLen()) * math.Ln2 / math.Log(float64(f.Base))
	e := int(math.Floor(logBx)) - (f.Precision - 1)
	if e < f.MinExp {
		e = f.MinExp
	}

	lo := bignat.PowUint(b, uint(f.Precision-1))
	hi := bignat.PowUint(b, uint(f.Precision))
	for {
		// q = floor(x / bᵉ), computed exactly.  The binade — and therefore
		// the rounding grain — is chosen from the floor, NOT the rounded
		// value: a number just below b^(p−1)·bᵉ lives in the finer-grained
		// binade below even if rounding would carry it up.
		sNum, sDen := num, den
		if e > 0 {
			sDen = bignat.Mul(sDen, bignat.PowUint(b, uint(e)))
		} else if e < 0 {
			sNum = bignat.Mul(sNum, bignat.PowUint(b, uint(-e)))
		}
		q, rem := bignat.DivMod(sNum, sDen)
		if bignat.Cmp(q, hi) >= 0 {
			// Floor at or above b^p: grain too fine, raise e.
			e++
			if e > f.MaxExp {
				return fpformat.Value{Fmt: f, Class: fpformat.Inf, Neg: neg}, ErrRange
			}
			continue
		}
		if bignat.Cmp(q, lo) < 0 && e > f.MinExp {
			// Floor below b^(p−1): the value belongs to a finer binade.
			e--
			continue
		}

		m := roundQuotient(q, rem, sDen, mode)
		if bignat.Cmp(m, hi) >= 0 {
			// Rounding carried into the next binade: the value is exactly
			// bᵖ·bᵉ = b^(p−1)·b^(e+1).
			m = lo
			e++
		}
		if m.IsZero() {
			// Underflow to zero (only possible at e == MinExp).
			return fpformat.Value{Fmt: f, Class: fpformat.Zero, Neg: neg}, nil
		}
		if e > f.MaxExp {
			return fpformat.Value{Fmt: f, Class: fpformat.Inf, Neg: neg}, ErrRange
		}
		class := fpformat.Normal
		if bignat.Cmp(m, lo) < 0 {
			class = fpformat.Denormal
		}
		return fpformat.Value{Fmt: f, Class: class, Neg: neg, F: m, E: e}, nil
	}
}

// roundQuotient rounds q + rem/den to an integer under mode.
func roundQuotient(q, rem, den bignat.Nat, mode RoundMode) bignat.Nat {
	if rem.IsZero() {
		return q
	}
	switch bignat.Cmp(bignat.Shl(rem, 1), den) {
	case -1:
		return q
	case 1:
		return bignat.AddWord(q, 1)
	}
	// Exact tie.
	switch mode {
	case NearestAway:
		return bignat.AddWord(q, 1)
	case NearestTowardZero:
		return q
	default: // NearestEven
		if q.Bit(0) == 0 {
			return q
		}
		return bignat.AddWord(q, 1)
	}
}
