package reader

import (
	"math"
	"math/big"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"

	"floatprint/internal/core"
	"floatprint/internal/fpformat"
)

func TestParseFloat64AgainstStrconv(t *testing.T) {
	cases := []string{
		"0", "1", "-1", "0.5", "3.14159265358979", "1e0", "1e1", "1e-1",
		"2.2250738585072014e-308", // smallest normal
		"2.2250738585072011e-308", // the famous PHP/Java hang value
		"4.9406564584124654e-324", // smallest denormal
		"2.4703282292062327e-324", // just below half the smallest denormal
		"2.4703282292062328e-324", // just above: rounds up to the denormal
		"1.7976931348623157e308",  // max double
		"1e23", "8.98846567431158e307", "0.000001", "123456789012345678901234567890",
		"9007199254740993",          // 2^53+1: exactly between two doubles
		"9007199254740993.00000001", // just above the midpoint
		"1.00000000000000011102230246251565404236316680908203125", // 1+2^-53 exactly (midpoint)
		"-0.0", "+17", "1.", ".25", "31415926535897932384626433832795e-31",
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 4000; i++ {
		// Random digit strings with random exponents.
		nd := 1 + r.Intn(25)
		var sb strings.Builder
		if r.Intn(2) == 0 {
			sb.WriteByte('-')
		}
		for j := 0; j < nd; j++ {
			sb.WriteByte(byte('0' + r.Intn(10)))
		}
		if r.Intn(2) == 0 {
			sb.WriteByte('.')
			for j := 0; j < 1+r.Intn(10); j++ {
				sb.WriteByte(byte('0' + r.Intn(10)))
			}
		}
		sb.WriteString("e")
		sb.WriteString(strconv.Itoa(r.Intn(640) - 320))
		cases = append(cases, sb.String())
	}
	for _, s := range cases {
		got, gotErr := ParseFloat64(s)
		want, wantErr := strconv.ParseFloat(s, 64)
		if math.IsInf(want, 0) {
			if !math.IsInf(got, int(math.Copysign(1, want))) || gotErr != ErrRange || wantErr == nil {
				t.Errorf("ParseFloat64(%q) = %v, %v; strconv = %v, %v", s, got, gotErr, want, wantErr)
			}
			continue
		}
		if gotErr != nil {
			t.Errorf("ParseFloat64(%q) error: %v", s, gotErr)
			continue
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("ParseFloat64(%q) = %v (%x), strconv = %v (%x)",
				s, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

func TestParseFloat64Denormals(t *testing.T) {
	// Sweep the whole denormal range: print with strconv, read back.
	for i := uint64(1); i < 1<<52; i = i*3 + 1 {
		v := math.Float64frombits(i)
		s := strconv.FormatFloat(v, 'e', -1, 64)
		got, err := ParseFloat64(s)
		if err != nil || got != v {
			t.Fatalf("denormal %x: ParseFloat64(%q) = %v, %v", i, s, got, err)
		}
	}
}

func TestParseTextSyntaxErrors(t *testing.T) {
	bad := []struct {
		s    string
		base int
	}{
		{"", 10}, {"-", 10}, {".", 10}, {"1.2.3", 10}, {"1e", 10}, {"1e+", 10},
		{"abc", 10}, {"1e5x", 10}, {"12@@3", 16}, {"1#2", 10}, {"g", 16},
		{"1e999999999999", 10}, {"5", 1}, {"5", 37},
	}
	for _, c := range bad {
		if _, err := ParseText(c.s, c.base); err == nil {
			t.Errorf("ParseText(%q, %d) unexpectedly succeeded", c.s, c.base)
		}
	}
}

func TestParseTextForms(t *testing.T) {
	cases := []struct {
		s    string
		base int
		neg  bool
		k    int
		num  string // digits as values, rendered 0-9a-z
	}{
		{"123", 10, false, 3, "123"},
		{"12.5", 10, false, 2, "125"},
		{"-0.001", 10, true, 1, "0001"}, // 0.0001 × 10¹
		{"1.5e3", 10, false, 4, "15"},
		{"1.5E-3", 10, false, -2, "15"},
		{"ff.8", 16, false, 2, "ff8"},
		{"FF.8@1", 16, false, 3, "ff8"},
		{"101.1", 2, false, 3, "1011"},
		{"3.33###", 10, false, 1, "333000"},
		{"+7", 10, false, 1, "7"},
		{"1.", 10, false, 1, "1"},
		{".25", 10, false, 0, "25"},
	}
	for _, c := range cases {
		n, err := ParseText(c.s, c.base)
		if err != nil {
			t.Errorf("ParseText(%q, %d): %v", c.s, c.base, err)
			continue
		}
		var sb strings.Builder
		for _, d := range n.Digits {
			sb.WriteByte("0123456789abcdefghijklmnopqrstuvwxyz"[d])
		}
		if n.Neg != c.neg || n.K != c.k || sb.String() != c.num {
			t.Errorf("ParseText(%q, %d) = neg=%v K=%d digits=%q, want neg=%v K=%d digits=%q",
				c.s, c.base, n.Neg, n.K, sb.String(), c.neg, c.k, c.num)
		}
	}
}

func TestConvertZeroAndErrors(t *testing.T) {
	v, err := Convert(Number{Base: 10, Digits: []byte{0, 0}, K: 5}, fpformat.Binary64, NearestEven)
	if err != nil || v.Class != fpformat.Zero {
		t.Errorf("zero digits: %v, %v", v.Class, err)
	}
	if _, err := Convert(Number{Base: 1}, fpformat.Binary64, NearestEven); err == nil {
		t.Errorf("base 1 accepted")
	}
	if _, err := Convert(Number{Base: 10, Digits: []byte{11}}, fpformat.Binary64, NearestEven); err == nil {
		t.Errorf("digit 11 accepted in base 10")
	}
}

func TestConvertOverflowUnderflow(t *testing.T) {
	v, err := Parse("1e309", 10, fpformat.Binary64, NearestEven)
	if err != ErrRange || v.Class != fpformat.Inf || v.Neg {
		t.Errorf("1e309: %v, %v", v.Class, err)
	}
	v, err = Parse("-1e309", 10, fpformat.Binary64, NearestEven)
	if err != ErrRange || v.Class != fpformat.Inf || !v.Neg {
		t.Errorf("-1e309: %v, %v", v.Class, err)
	}
	v, err = Parse("1e-400", 10, fpformat.Binary64, NearestEven)
	if err != nil || v.Class != fpformat.Zero {
		t.Errorf("1e-400: %v, %v", v.Class, err)
	}
	// Exactly half the smallest denormal (2⁻¹⁰⁷⁵, generated exactly) ties
	// to even, which is zero.
	half := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), 1075)).FloatString(1100)
	v, err = Parse(half, 10, fpformat.Binary64, NearestEven)
	if err != nil || v.Class != fpformat.Zero {
		t.Errorf("half smallest denormal (tie to even): %v, %v", v.Class, err)
	}
	// The same tie rounds up under ties-away.
	v, err = Parse(half, 10, fpformat.Binary64, NearestAway)
	if err != nil || v.Class != fpformat.Denormal {
		t.Errorf("half smallest denormal under ties-away: %v, %v", v.Class, err)
	}
}

func TestRoundModesAtMidpoint(t *testing.T) {
	// 1 + 2^-53 is exactly between 1 and 1+2^-52.
	mid := "1.00000000000000011102230246251565404236316680908203125"
	even, err := ParseFloat64(mid)
	if err != nil || even != 1.0 {
		t.Errorf("midpoint nearest-even = %v (%v), want 1", even, err)
	}
	v, err := Parse(mid, 10, fpformat.Binary64, NearestAway)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := v.Float64()
	if f != math.Nextafter(1, 2) {
		t.Errorf("midpoint nearest-away = %v, want 1+ulp", f)
	}
	v, err = Parse(mid, 10, fpformat.Binary64, NearestTowardZero)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ = v.Float64(); f != 1.0 {
		t.Errorf("midpoint toward-zero = %v, want 1", f)
	}
	// Midpoint between 1-ulp/2 and 1 (odd lower mantissa): even rounds up.
	mid2 := "0.999999999999999944488848768742172978818416595458984375"
	f, err = ParseFloat64(mid2)
	if err != nil || f != 1.0 {
		t.Errorf("lower midpoint nearest-even = %v, want 1", f)
	}
}

// TestPrintParseRoundTripAllModes closes the paper's loop: printing with
// reader mode M and parsing with the matching rounding mode M must recover
// the value exactly, for all modes and several bases — including the cases
// where the printer deliberately lands on a rounding-range endpoint.
func TestPrintParseRoundTripAllModes(t *testing.T) {
	pairs := []struct {
		pm core.ReaderMode
		rm RoundMode
	}{
		{core.ReaderNearestEven, NearestEven},
		{core.ReaderNearestAway, NearestAway},
		{core.ReaderNearestTowardZero, NearestTowardZero},
		// Conservative printing round-trips under every reader.
		{core.ReaderUnknown, NearestEven},
		{core.ReaderUnknown, NearestAway},
		{core.ReaderUnknown, NearestTowardZero},
	}
	bases := []int{2, 3, 10, 16, 36}
	r := rand.New(rand.NewSource(2))
	values := []float64{1, 0.1, 1e23, 5e-324, math.MaxFloat64, 0x1p-1022, math.Pi}
	for i := 0; i < 400; i++ {
		x := math.Float64frombits(r.Uint64())
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
			continue
		}
		values = append(values, math.Abs(x))
	}
	for _, x := range values {
		val := fpformat.DecodeFloat64(x)
		for _, base := range bases {
			for _, pair := range pairs {
				res, err := core.FreeFormat(val, base, core.ScalingEstimate, pair.pm)
				if err != nil {
					t.Fatal(err)
				}
				back, err := Convert(Number{Base: base, Digits: res.Digits, K: res.K}, fpformat.Binary64, pair.rm)
				if err != nil {
					t.Fatalf("Convert(%g, base %d): %v", x, base, err)
				}
				f, err := back.Float64()
				if err != nil {
					t.Fatal(err)
				}
				if f != x {
					t.Fatalf("print(%v)/parse(%v) base %d: %g -> %g", pair.pm, pair.rm, base, x, f)
				}
			}
		}
	}
}

// TestReaderRejectsNonMatchingMode demonstrates why the printer must know
// the reader: 1e23 printed for a nearest-even reader does NOT survive a
// ties-away reader.
func TestReaderRejectsNonMatchingMode(t *testing.T) {
	x := 1e23
	res, err := core.FreeFormat(fpformat.DecodeFloat64(x), 10, core.ScalingEstimate, core.ReaderNearestEven)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Convert(Number{Base: 10, Digits: res.Digits, K: res.K}, fpformat.Binary64, NearestAway)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := back.Float64()
	if f == x {
		t.Fatalf("expected mismatch reading %q with ties-away", "1e23")
	}
	if f != math.Nextafter(x, math.Inf(1)) {
		t.Fatalf("ties-away read of 1e23 = %g, want the next double up", f)
	}
}

func TestParseOtherFormats(t *testing.T) {
	// binary32 via our reader matches strconv's 32-bit parsing.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1500; i++ {
		var sb strings.Builder
		for j := 0; j < 1+r.Intn(12); j++ {
			sb.WriteByte(byte('0' + r.Intn(10)))
		}
		sb.WriteString("e")
		sb.WriteString(strconv.Itoa(r.Intn(90) - 45))
		s := sb.String()
		want, werr := strconv.ParseFloat(s, 32)
		v, err := Parse(s, 10, fpformat.Binary32, NearestEven)
		if werr != nil {
			if err == nil {
				t.Errorf("Parse(%q) should overflow", s)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", s, err)
			continue
		}
		f, err := v.Float32()
		if err != nil {
			t.Fatal(err)
		}
		if f != float32(want) {
			t.Errorf("Parse(%q) binary32 = %v, strconv = %v", s, f, float32(want))
		}
	}
	// binary16: 65504 is the max; 65520 rounds to +Inf.
	v, err := Parse("65504", 10, fpformat.Binary16, NearestEven)
	if err != nil || v.Class != fpformat.Normal {
		t.Errorf("65504 binary16: %v %v", v.Class, err)
	}
	if _, err := Parse("65520", 10, fpformat.Binary16, NearestEven); err != ErrRange {
		t.Errorf("65520 binary16 should overflow, got %v", err)
	}
}

func TestRoundModeString(t *testing.T) {
	for m, want := range map[RoundMode]string{
		NearestEven: "nearest-even", NearestAway: "nearest-away",
		NearestTowardZero: "nearest-toward-zero", RoundMode(7): "RoundMode(7)",
	} {
		if m.String() != want {
			t.Errorf("RoundMode(%d).String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

func TestParseHashMarksReadAsZeros(t *testing.T) {
	f1, err := ParseFloat64("100.000000000000000#####")
	if err != nil || f1 != 100 {
		t.Errorf("hash-marked 100 = %v (%v)", f1, err)
	}
	f2, err := ParseFloat64("3.33###e2")
	if err != nil || f2 != 333 {
		t.Errorf("3.33###e2 = %v (%v), want 333", f2, err)
	}
}

// TestBinadeBoundaryRoundUp is the regression test for a bug found by
// cmd/fpfuzz: a decimal string denoting a value just below a binade
// boundary (mantissa all ones) whose correctly rounded result is the
// all-ones mantissa must not be quantized at the coarser grain of the
// binade above.  0x093fffffffffffff is one such double.
func TestBinadeBoundaryRoundUp(t *testing.T) {
	cases := []uint64{
		0x093fffffffffffff, 0x0eafffffffffffff,
		0x000fffffffffffff, // largest denormal: boundary with the normals
		0x7fefffffffffffff, // largest finite
	}
	for _, bits := range cases {
		v := math.Float64frombits(bits)
		s := strconv.FormatFloat(v, 'e', -1, 64)
		got, err := ParseFloat64(s)
		if err != nil || math.Float64bits(got) != bits {
			t.Errorf("ParseFloat64(%q) = %x (%v), want %x", s, math.Float64bits(got), err, bits)
		}
		// And one ulp above, which lands exactly on the boundary.
		up := math.Nextafter(v, math.Inf(1))
		if math.IsInf(up, 0) {
			continue
		}
		su := strconv.FormatFloat(up, 'e', -1, 64)
		gotUp, err := ParseFloat64(su)
		if err != nil || gotUp != up {
			t.Errorf("ParseFloat64(%q) = %v (%v), want %v", su, gotUp, err, up)
		}
	}
}

// TestAllOnesMantissaSweep covers every binade's top value, the shape the
// fuzzer used to find the boundary bug.
func TestAllOnesMantissaSweep(t *testing.T) {
	for be := uint64(0); be <= 2046; be += 13 {
		bits := be<<52 | (1<<52 - 1)
		v := math.Float64frombits(bits)
		if v == 0 || math.IsInf(v, 0) {
			continue
		}
		s := strconv.FormatFloat(v, 'e', -1, 64)
		got, err := ParseFloat64(s)
		if err != nil || math.Float64bits(got) != bits {
			t.Fatalf("all-ones be=%d: ParseFloat64(%q) = %x, want %x",
				be, s, math.Float64bits(got), bits)
		}
	}
}

// TestAstronomicalExponents pins the O(1) magnitude pre-check: inputs
// whose exponent alone decides the result must finish in bounded time
// with the same ±Inf/±0 the exact path would reach, instead of raising
// the base to a multi-megabit power first (a 4-minute stall at
// e=16777215 before the check existed — a denial of service the batch
// parse engine would have inherited from a single hostile token).
func TestAstronomicalExponents(t *testing.T) {
	deadline := time.Now().Add(5 * time.Second)
	for _, c := range []struct {
		in    string
		class fpformat.Class
		neg   bool
		err   error
	}{
		{"1e16777215", fpformat.Inf, false, ErrRange},
		{"-2.01e16777215", fpformat.Inf, true, ErrRange},
		{"9e2250738", fpformat.Inf, false, ErrRange},
		{"1e-16777215", fpformat.Zero, false, nil},
		{"-1e-2250738", fpformat.Zero, true, nil},
		{"0.00000001e16000000", fpformat.Inf, false, ErrRange},
	} {
		v, err := Parse(c.in, 10, fpformat.Binary64, NearestEven)
		if err != c.err || v.Class != c.class || v.Neg != c.neg {
			t.Errorf("Parse(%q) = class %v neg %v err %v, want %v %v %v",
				c.in, v.Class, v.Neg, err, c.class, c.neg, c.err)
		}
	}
	if time.Now().After(deadline) {
		t.Fatal("astronomical exponents took seconds: the magnitude pre-check is not engaging")
	}
	// Near-threshold exponents still go through the exact path and keep
	// their precise boundary behavior.
	for _, c := range []struct {
		in    string
		class fpformat.Class
		err   error
	}{
		{"1.7976931348623157e308", fpformat.Normal, nil},
		{"1.7976931348623159e308", fpformat.Inf, ErrRange},
		{"1e309", fpformat.Inf, ErrRange},
		{"4.9e-324", fpformat.Denormal, nil},
		{"1e-324", fpformat.Zero, nil},
	} {
		v, err := Parse(c.in, 10, fpformat.Binary64, NearestEven)
		if err != c.err || v.Class != c.class {
			t.Errorf("Parse(%q) = class %v err %v, want %v %v", c.in, v.Class, err, c.class, c.err)
		}
	}
}
