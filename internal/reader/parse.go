package reader

import (
	"fmt"
	"math"
	"strings"

	"floatprint/internal/fpformat"
)

// ParseText parses a positional number in the given base into a Number.
//
// Syntax: [+|-] digits [ "." digits ] [ exp ], where exp is "@" (any base)
// or "e"/"E" (bases up to 10, where they cannot be digits) followed by an
// optional sign and one or more *decimal* digits; the exponent scales by a
// power of the number's own base, as in GMP.  Digit letters are accepted
// in either case.  '#' marks — the paper's insignificance placeholders —
// are accepted in trailing positions and read as zeros, so fixed-format
// output can be fed back in.
func ParseText(s string, base int) (Number, error) {
	if base < 2 || base > 36 {
		return Number{}, fmt.Errorf("reader: base %d out of range [2,36]", base)
	}
	orig := s
	n := Number{Base: base}
	if s == "" {
		return Number{}, fmt.Errorf("reader: empty input")
	}
	switch s[0] {
	case '+':
		s = s[1:]
	case '-':
		n.Neg = true
		s = s[1:]
	}

	// Split off the exponent part.
	expVal := 0
	expIdx := strings.IndexByte(s, '@')
	if expIdx < 0 && base <= 10 {
		if i := strings.IndexAny(s, "eE"); i >= 0 {
			expIdx = i
		}
	}
	if expIdx >= 0 {
		es := s[expIdx+1:]
		s = s[:expIdx]
		neg := false
		switch {
		case strings.HasPrefix(es, "+"):
			es = es[1:]
		case strings.HasPrefix(es, "-"):
			neg = true
			es = es[1:]
		}
		if es == "" {
			return Number{}, fmt.Errorf("reader: missing exponent digits in %q", orig)
		}
		for _, c := range []byte(es) {
			if c < '0' || c > '9' {
				return Number{}, fmt.Errorf("reader: bad exponent digit %q in %q", c, orig)
			}
			expVal = expVal*10 + int(c-'0')
			if expVal > 1<<24 {
				return Number{}, fmt.Errorf("reader: exponent overflow in %q", orig)
			}
		}
		if neg {
			expVal = -expVal
		}
	}

	// Mantissa: digits with at most one point; count integer digits.
	intDigits := -1
	sawDigit := false
	marksStarted := false
	for _, c := range []byte(s) {
		switch {
		case c == '.':
			if intDigits >= 0 {
				return Number{}, fmt.Errorf("reader: multiple points in %q", orig)
			}
			intDigits = len(n.Digits)
			continue
		case c == '#':
			marksStarted = true
			n.Digits = append(n.Digits, 0)
			sawDigit = true
			continue
		case marksStarted:
			return Number{}, fmt.Errorf("reader: digit after # mark in %q", orig)
		}
		d, ok := digitVal(c)
		if !ok || d >= base {
			return Number{}, fmt.Errorf("reader: invalid digit %q for base %d in %q", c, base, orig)
		}
		n.Digits = append(n.Digits, byte(d))
		sawDigit = true
	}
	if !sawDigit {
		return Number{}, fmt.Errorf("reader: no digits in %q", orig)
	}
	if intDigits < 0 {
		intDigits = len(n.Digits)
	}
	// Value = 0.d₁…dₙ × B^(intDigits + exp).
	n.K = intDigits + expVal
	return n, nil
}

func digitVal(c byte) (int, bool) {
	switch {
	case '0' <= c && c <= '9':
		return int(c - '0'), true
	case 'a' <= c && c <= 'z':
		return int(c-'a') + 10, true
	case 'A' <= c && c <= 'Z':
		return int(c-'A') + 10, true
	}
	return 0, false
}

// ParseFloat64 parses a base-10 string to the nearest float64 with IEEE
// ties-to-even, like strconv.ParseFloat but via this package's exact
// arithmetic.  Overflow returns ±Inf and ErrRange.
func ParseFloat64(s string) (float64, error) {
	n, err := ParseText(s, 10)
	if err != nil {
		return 0, err
	}
	v, err := Convert(n, fpformat.Binary64, NearestEven)
	if err != nil {
		if v.Class == fpformat.Inf {
			if v.Neg {
				return math.Inf(-1), err
			}
			return math.Inf(1), err
		}
		return 0, err
	}
	return v.Float64()
}

// Parse parses a base-B string directly to a value of format f.
func Parse(s string, base int, f *fpformat.Format, mode RoundMode) (fpformat.Value, error) {
	n, err := ParseText(s, base)
	if err != nil {
		return fpformat.Value{}, err
	}
	return Convert(n, f, mode)
}
