// Package bigrat provides exact non-negative rational arithmetic on top of
// bignat, for the reference implementation of Burger & Dybvig's *basic*
// algorithm (Section 2 of the paper), which is specified in terms of exact
// rational arithmetic.
//
// As the paper observes in Section 3, the printing algorithm "does not need
// the full generality of rational arithmetic (i.e., there is no need to
// reduce fractions to lowest terms or to maintain separate denominators)".
// Accordingly this package never reduces fractions; it exists to express
// the specification as directly as possible so the optimized integer
// implementation in internal/core can be tested against it.
package bigrat

import (
	"fmt"

	"floatprint/internal/bignat"
)

// A Rat is a non-negative rational number Num/Den with Den > 0.
// Fractions are never reduced.  The zero value is not valid; use the
// constructors.
type Rat struct {
	Num, Den bignat.Nat
}

// New returns num/den.  It panics if den == 0.
func New(num, den bignat.Nat) Rat {
	if den.IsZero() {
		panic("bigrat: zero denominator")
	}
	return Rat{Num: num, Den: den}
}

// FromNat returns n/1.
func FromNat(n bignat.Nat) Rat {
	return Rat{Num: n, Den: bignat.Nat{1}}
}

// FromUint64 returns n/1.
func FromUint64(n uint64) Rat {
	return FromNat(bignat.FromUint64(n))
}

// IsZero reports whether r == 0.
func (r Rat) IsZero() bool { return r.Num.IsZero() }

// Cmp compares r and s by cross-multiplication: -1, 0, or +1.
func Cmp(r, s Rat) int {
	return bignat.Cmp(bignat.Mul(r.Num, s.Den), bignat.Mul(s.Num, r.Den))
}

// Add returns r + s using the product denominator (no reduction).
func Add(r, s Rat) Rat {
	return Rat{
		Num: bignat.Add(bignat.Mul(r.Num, s.Den), bignat.Mul(s.Num, r.Den)),
		Den: bignat.Mul(r.Den, s.Den),
	}
}

// Sub returns r - s; it panics if r < s.
func Sub(r, s Rat) Rat {
	return Rat{
		Num: bignat.Sub(bignat.Mul(r.Num, s.Den), bignat.Mul(s.Num, r.Den)),
		Den: bignat.Mul(r.Den, s.Den),
	}
}

// Mul returns r * s.
func Mul(r, s Rat) Rat {
	return Rat{Num: bignat.Mul(r.Num, s.Num), Den: bignat.Mul(r.Den, s.Den)}
}

// MulWord returns r * w.
func MulWord(r Rat, w bignat.Word) Rat {
	return Rat{Num: bignat.MulWord(r.Num, w), Den: r.Den}
}

// DivNat returns r / n for a natural n > 0 by scaling the denominator.
func DivNat(r Rat, n bignat.Nat) Rat {
	if n.IsZero() {
		panic("bigrat: division by zero")
	}
	return Rat{Num: r.Num, Den: bignat.Mul(r.Den, n)}
}

// MulNat returns r * n.
func MulNat(r Rat, n bignat.Nat) Rat {
	return Rat{Num: bignat.Mul(r.Num, n), Den: r.Den}
}

// Half returns r / 2.
func Half(r Rat) Rat {
	return Rat{Num: r.Num, Den: bignat.MulWord(r.Den, 2)}
}

// FloorFrac returns ⌊r⌋ as a natural number together with the fractional
// part {r} = r − ⌊r⌋.
func (r Rat) FloorFrac() (bignat.Nat, Rat) {
	q, rem := bignat.DivMod(r.Num, r.Den)
	return q, Rat{Num: rem, Den: r.Den}
}

// Floor returns ⌊r⌋.
func (r Rat) Floor() bignat.Nat {
	q, _ := r.FloorFrac()
	return q
}

// Ceil returns ⌈r⌉.
func (r Rat) Ceil() bignat.Nat {
	q, rem := bignat.DivMod(r.Num, r.Den)
	if !rem.IsZero() {
		q = bignat.AddWord(q, 1)
	}
	return q
}

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool {
	_, rem := bignat.DivMod(r.Num, r.Den)
	return rem.IsZero()
}

// String renders r as "num/den" (unreduced) for diagnostics.
func (r Rat) String() string {
	return fmt.Sprintf("%s/%s", r.Num, r.Den)
}
