package bigrat

import (
	"math/big"
	"math/rand"
	"testing"

	"floatprint/internal/bignat"
)

func toBigRat(r Rat) *big.Rat {
	num, ok1 := r.Num.Uint64()
	den, ok2 := r.Den.Uint64()
	if !ok1 || !ok2 {
		// Fall back through decimal strings for wide values.
		n, _ := new(big.Int).SetString(r.Num.String(), 10)
		d, _ := new(big.Int).SetString(r.Den.String(), 10)
		return new(big.Rat).SetFrac(n, d)
	}
	return new(big.Rat).SetFrac(new(big.Int).SetUint64(num), new(big.Int).SetUint64(den))
}

func randRat(r *rand.Rand) Rat {
	num := bignat.FromUint64(r.Uint64() % 1_000_000)
	den := bignat.FromUint64(r.Uint64()%999_999 + 1)
	return New(num, den)
}

func TestNewPanicsOnZeroDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("New with zero denominator did not panic")
		}
	}()
	New(bignat.FromUint64(1), nil)
}

func TestArithmeticOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := randRat(rng), randRat(rng)
		if got, want := Cmp(a, b), toBigRat(a).Cmp(toBigRat(b)); got != want {
			t.Fatalf("Cmp(%v, %v) = %d, want %d", a, b, got, want)
		}
		sum := Add(a, b)
		if toBigRat(sum).Cmp(new(big.Rat).Add(toBigRat(a), toBigRat(b))) != 0 {
			t.Fatalf("Add(%v, %v) = %v wrong", a, b, sum)
		}
		prod := Mul(a, b)
		if toBigRat(prod).Cmp(new(big.Rat).Mul(toBigRat(a), toBigRat(b))) != 0 {
			t.Fatalf("Mul(%v, %v) = %v wrong", a, b, prod)
		}
		if Cmp(a, b) >= 0 {
			diff := Sub(a, b)
			if toBigRat(diff).Cmp(new(big.Rat).Sub(toBigRat(a), toBigRat(b))) != 0 {
				t.Fatalf("Sub(%v, %v) wrong", a, b)
			}
		}
	}
}

func TestSubPanicsWhenNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Sub going negative did not panic")
		}
	}()
	Sub(FromUint64(1), FromUint64(2))
}

func TestFloorFrac(t *testing.T) {
	r := New(bignat.FromUint64(22), bignat.FromUint64(7))
	q, frac := r.FloorFrac()
	if q.String() != "3" {
		t.Errorf("floor(22/7) = %s", q)
	}
	if frac.Num.String() != "1" || frac.Den.String() != "7" {
		t.Errorf("frac(22/7) = %v", frac)
	}
	if r.Floor().String() != "3" || r.Ceil().String() != "4" {
		t.Errorf("Floor/Ceil(22/7) = %s/%s", r.Floor(), r.Ceil())
	}
	exact := New(bignat.FromUint64(21), bignat.FromUint64(7))
	if !exact.IsInt() || exact.Ceil().String() != "3" {
		t.Errorf("21/7 should be the integer 3")
	}
	if r.IsInt() {
		t.Errorf("22/7 is not an integer")
	}
}

func TestHalfMulWordDivNat(t *testing.T) {
	r := FromUint64(10)
	if Cmp(Half(r), FromUint64(5)) != 0 {
		t.Errorf("Half(10) != 5")
	}
	if Cmp(MulWord(r, 3), FromUint64(30)) != 0 {
		t.Errorf("10*3 != 30")
	}
	if Cmp(DivNat(r, bignat.FromUint64(4)), New(bignat.FromUint64(5), bignat.FromUint64(2))) != 0 {
		t.Errorf("10/4 != 5/2")
	}
	if Cmp(MulNat(r, bignat.FromUint64(7)), FromUint64(70)) != 0 {
		t.Errorf("10*7 != 70")
	}
}

func TestDivNatZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("DivNat by zero did not panic")
		}
	}()
	DivNat(FromUint64(1), nil)
}

func TestIsZeroAndString(t *testing.T) {
	if !FromUint64(0).IsZero() || FromUint64(3).IsZero() {
		t.Errorf("IsZero wrong")
	}
	if got := New(bignat.FromUint64(3), bignat.FromUint64(4)).String(); got != "3/4" {
		t.Errorf("String = %q", got)
	}
	if Cmp(FromNat(bignat.FromUint64(9)), FromUint64(9)) != 0 {
		t.Errorf("FromNat != FromUint64")
	}
}

// Unreduced fractions must still compare equal when equivalent.
func TestCmpUnreducedEquivalence(t *testing.T) {
	a := New(bignat.FromUint64(2), bignat.FromUint64(4))
	b := New(bignat.FromUint64(50), bignat.FromUint64(100))
	if Cmp(a, b) != 0 {
		t.Errorf("2/4 != 50/100")
	}
}
