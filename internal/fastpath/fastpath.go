// Package fastpath implements the fixed-format fast path that the paper's
// conclusion attributes to David Gay: "he showed that floating-point
// arithmetic is sufficiently accurate in most cases when the requested
// number of digits is small.  The fixed-format printing algorithm
// described in this paper is useful when these heuristics fail."
//
// TryFixed prints n significant decimal digits using the 64-bit-mantissa
// extended floats of internal/extfloat while tracking a rigorous error
// bound.  If, at rounding time, the computed remainder is provably on one
// side of every digit and rounding boundary — and the requested precision
// provably lies within the value's own precision, so no '#' marks are
// needed — the result is certified correct and returned.  Otherwise the
// caller falls back to the exact big-integer algorithm.  The certificate
// makes the fast path *safe*: it can decline, never lie.
package fastpath

import (
	"math"

	"floatprint/internal/extfloat"
)

// maxDigits bounds the fast path: beyond 17 digits the accumulated error
// reaches whole units of the last digit and certification always fails.
const maxDigits = 17

// TryFixed attempts to produce the first n correctly rounded significant
// decimal digits of v > 0 together with the scale K (V = 0.d₁…dₙ × 10ᴷ).
// ok reports whether the result is certified; on ok == false the other
// results are meaningless and the exact algorithm must be used.
//
// A certified result is identical to the exact fixed-format algorithm's:
// all n digits significant, ties impossible (they fail certification).
func TryFixed(v float64, n int) (digits []byte, k int, ok bool) {
	if n <= 0 || n > maxDigits || v <= 0 ||
		math.IsInf(v, 0) || math.IsNaN(v) {
		return nil, 0, false
	}

	// Normalize x into [1, 10) with one table multiplication; count the
	// roundings for the error bound.
	frac, e2 := math.Frexp(v)
	k = int(math.Floor(float64(e2)*0.30102999566398120 + math.Log10(frac)))
	if k < -340 || k > 340 {
		return nil, 0, false // outside the Pow10 table with margin
	}
	x := extfloat.FromFloat64(v).MulPow10(-k)
	muls := 1
	for x.Cmp(10) >= 0 {
		x = x.MulPow10(-1)
		k++
		muls++
	}
	for x.Cmp(1) < 0 {
		x = x.MulPow10(1)
		k--
		muls++
	}
	k++ // 0.d₁…dₙ × 10ᴷ convention

	// Error bound in current-value units: each multiplication contributes
	// at most 1 ulp (0.5 for the correctly rounded table entry + 0.5 for
	// the product rounding is already counted per-operand as one), with an
	// extra 1.25 safety factor on the whole budget.
	const ulp = 1.0 / (1 << 31) / (1 << 31) / 4 // 2⁻⁶⁴
	err := float64(muls+1) * 2 * ulp * 10 * 1.25

	// The requested precision must sit strictly inside the value's own:
	// output ulp 10^(k-n) at least 4× the larger neighbor gap, otherwise
	// '#' marks (or the paper's wide-range semantics) come into play and
	// only the exact algorithm handles those.
	gapHigh := math.Nextafter(v, math.Inf(1)) - v
	gapLow := v - math.Nextafter(v, 0)
	if math.IsInf(gapHigh, 0) || gapLow <= 0 {
		return nil, 0, false
	}
	outUlp := math.Pow(10, float64(k-n))
	if math.IsInf(outUlp, 0) || outUlp == 0 || outUlp < 4*math.Max(gapHigh, gapLow) {
		return nil, 0, false
	}

	// Peel n digits; the subtraction in DigitBelow is exact, the ×10
	// rounds once.
	ten := extfloat.FromUint64(10)
	digits = make([]byte, n)
	for i := 0; i < n; i++ {
		d, rest := x.DigitBelow()
		if d > 9 {
			return nil, 0, false // error already visible at the digit level
		}
		digits[i] = byte(d)
		x = extfloat.Mul(rest, ten)
		err = err*10 + 2*ulp*10*1.25
	}

	// Certify: the true remainder lies in [y-err, y+err]; that interval
	// must avoid 0, 10 (digit-lattice crossings anywhere in the string
	// surface here) and 5 (the rounding boundary).
	y := x.Float64()
	if y-err < 0 || y+err > 10 || math.Abs(y-5) <= err {
		return nil, 0, false
	}
	if y >= 5 {
		digits, k = roundUp(digits, k)
	}
	return digits, k, true
}

// roundUp increments the final digit with carry; a ripple past the front
// yields 1 followed by zeros with K raised, still n digits.
func roundUp(digits []byte, k int) ([]byte, int) {
	for i := len(digits) - 1; i >= 0; i-- {
		if digits[i] != 9 {
			digits[i]++
			return digits, k
		}
		digits[i] = 0
	}
	digits[0] = 1
	return digits, k + 1
}
