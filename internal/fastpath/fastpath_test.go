package fastpath

import (
	"math"
	"math/rand"
	"testing"

	"floatprint/internal/baseline"
	"floatprint/internal/core"
	"floatprint/internal/fpformat"
	"floatprint/internal/schryer"
)

// TestCertifiedResultsMatchExact is the safety property: whenever TryFixed
// certifies a result it must equal the exact algorithms' output exactly —
// both the straightforward FixedDigits baseline (pure decimal rounding)
// and the paper's FixedFormatRelative (which coincides with it in the
// certified regime).
func TestCertifiedResultsMatchExact(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	certified, tried := 0, 0
	checkOne := func(v float64, n int) {
		tried++
		digits, k, ok := TryFixed(v, n)
		if !ok {
			return
		}
		certified++
		val := fpformat.DecodeFloat64(v)
		exact, err := core.FixedFormatRelative(val, 10, core.ReaderUnknown, n)
		if err != nil {
			t.Fatal(err)
		}
		if exact.NSig != n {
			t.Fatalf("TryFixed(%g, %d) certified but exact algorithm marks digits (NSig=%d)",
				v, n, exact.NSig)
		}
		if k != exact.K || !equal(digits, exact.Digits) {
			t.Fatalf("TryFixed(%g, %d) = %v K=%d, exact = %v K=%d",
				v, n, digits, k, exact.Digits, exact.K)
		}
		straight, err := baseline.FixedDigits(val, 10, n)
		if err != nil {
			t.Fatal(err)
		}
		if k != straight.K || !equal(digits, straight.Digits) {
			t.Fatalf("TryFixed(%g, %d) = %v K=%d, straightforward = %v K=%d",
				v, n, digits, k, straight.Digits, straight.K)
		}
	}
	for i := 0; i < 20000; i++ {
		v := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		checkOne(v, 1+r.Intn(17))
	}
	for _, v := range schryer.CorpusN(10000) {
		checkOne(v, 1+r.Intn(17))
	}
	if certified == 0 {
		t.Fatal("fast path never certified anything")
	}
	t.Logf("certified %d of %d (%.1f%%)", certified, tried, 100*float64(certified)/float64(tried))
}

func TestSuccessRateIsHighForFewDigits(t *testing.T) {
	// Gay: "floating-point arithmetic is sufficiently accurate in most
	// cases when the requested number of digits is small."
	corpus := schryer.CorpusN(20000)
	for _, n := range []int{6, 10, 15} {
		okCount := 0
		for _, v := range corpus {
			if _, _, ok := TryFixed(v, n); ok {
				okCount++
			}
		}
		rate := float64(okCount) / float64(len(corpus))
		if rate < 0.80 {
			t.Errorf("fast path certifies only %.1f%% at %d digits", 100*rate, n)
		}
		t.Logf("n=%2d: %.2f%% certified", n, 100*rate)
	}
}

func TestDeclinesWhereMarksNeeded(t *testing.T) {
	// Wide-precision requests and denormals must be declined, not guessed.
	if _, _, ok := TryFixed(5e-324, 10); ok {
		t.Errorf("fast path certified a denormal at 10 digits")
	}
	if _, _, ok := TryFixed(100, 17); ok {
		// 10^(3-17) = 1e-14 is within 4x of 100's half-gap 7.1e-15.
		t.Errorf("fast path certified 100@17, which needs marks territory")
	}
	if _, _, ok := TryFixed(1, 18); ok {
		t.Errorf("fast path accepted n beyond its limit")
	}
	for _, v := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, _, ok := TryFixed(v, 5); ok {
			t.Errorf("fast path accepted %v", v)
		}
	}
}

func TestKnownValues(t *testing.T) {
	digits, k, ok := TryFixed(math.Pi, 6)
	if !ok || k != 1 || string(digitsText(digits)) != "314159" {
		t.Errorf("pi@6 = %s K=%d ok=%v", digitsText(digits), k, ok)
	}
	digits, k, ok = TryFixed(9.97, 2)
	if !ok || k != 2 || string(digitsText(digits)) != "10" {
		t.Errorf("9.97@2 = %s K=%d ok=%v (carry case)", digitsText(digits), k, ok)
	}
	digits, k, ok = TryFixed(999.999, 3)
	if !ok || k != 4 || string(digitsText(digits)) != "100" {
		t.Errorf("999.999@3 = %s K=%d ok=%v (ripple carry)", digitsText(digits), k, ok)
	}
}

func digitsText(d []byte) []byte {
	out := make([]byte, len(d))
	for i, x := range d {
		out[i] = '0' + x
	}
	return out
}

func equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkTryFixed10(b *testing.B) {
	corpus := schryer.CorpusN(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TryFixed(corpus[i%len(corpus)], 10)
	}
}

// BenchmarkFixedWithFallback measures the blended cost: fast path when
// certified, exact algorithm otherwise — the §5 deployment strategy.
func BenchmarkFixedWithFallback(b *testing.B) {
	corpus := schryer.CorpusN(4096)
	values := make([]fpformat.Value, len(corpus))
	for i, f := range corpus {
		values[i] = fpformat.DecodeFloat64(f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := corpus[i%len(corpus)]
		if _, _, ok := TryFixed(v, 10); !ok {
			if _, err := baseline.FixedDigits(values[i%len(values)], 10, 10); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFixedExactOnly(b *testing.B) {
	corpus := schryer.CorpusN(4096)
	values := make([]fpformat.Value, len(corpus))
	for i, f := range corpus {
		values[i] = fpformat.DecodeFloat64(f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.FixedDigits(values[i%len(values)], 10, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDeclineBranches(t *testing.T) {
	// Out-of-table exponents.
	if _, _, ok := TryFixed(math.MaxFloat64, 5); ok {
		// MaxFloat64 is within the table; this may legitimately certify.
		_ = ok
	}
	// k estimate outside the Pow10 range cannot occur for float64, but the
	// guard is exercised by values near the extremes with big n.
	if _, _, ok := TryFixed(math.SmallestNonzeroFloat64, 17); ok {
		t.Errorf("smallest denormal at 17 digits certified")
	}
	// Values needing upward normalization (estimate one low).
	for _, v := range []float64{9.999999999999998, 0.9999999999999999, 1.0000000000000002} {
		digits, k, ok := TryFixed(v, 8)
		if !ok {
			continue
		}
		exact, err := baseline.FixedDigits(fpformat.DecodeFloat64(v), 10, 8)
		if err != nil {
			t.Fatal(err)
		}
		if k != exact.K || !equal(digits, exact.Digits) {
			t.Fatalf("normalization edge %g: %v K=%d vs %v K=%d", v, digits, k, exact.Digits, exact.K)
		}
	}
	// Near-tie values must decline rather than guess: construct a value
	// whose 3-digit rounding is an exact tie (x.xx5 exactly).
	if digits, k, ok := TryFixed(1.125, 3); ok {
		// 1.125 is exactly representable; its half-way 3-digit rounding is
		// a true tie and certification must have rejected it...
		t.Errorf("exact tie certified: %v K=%d", digits, k)
	}
}

func TestTinyAndHugeN(t *testing.T) {
	// n = 1 certifies broadly and agrees with the exact algorithm.
	for _, v := range []float64{1, 2, 9.5, 0.55, 123456.789} {
		digits, k, ok := TryFixed(v, 1)
		if !ok {
			continue
		}
		exact, err := core.FixedFormatRelative(fpformat.DecodeFloat64(v), 10, core.ReaderUnknown, 1)
		if err != nil {
			t.Fatal(err)
		}
		if exact.NSig == 1 && (k != exact.K || !equal(digits, exact.Digits)) {
			t.Fatalf("n=1 mismatch for %g", v)
		}
	}
}
