// Directed (interval) fast parsing: the Eisel–Lemire machinery with the
// certificate window asked a different question.  The nearest-even path
// needs to prove the *rounded* quotient's digit — where the truncated
// 128-bit product sits relative to the halfway point — and declines the
// thin band where truncation hides the answer.  A directed read needs
// the *truncated* quotient (the 53-bit floor of the true product) plus a
// single bit: is the discarded remainder exactly zero?  Mushtak &
// Lemire's analysis answers both from the same product:
//
//   - 0 ≤ q ≤ 55: the tabulated 128-bit significand of 10^q is 5^q
//     exactly (bitlen ≤ 128), so the full 192-bit product is the exact
//     scaled value — floor and remainder are simply read off.
//   - q ≥ 56: the table truncates, so the product underestimates by less
//     than one (normalized) multiplicand; the floor is still exact
//     unless the low bits sit within one multiplicand of carrying across
//     the 53-bit cut (decline), and the remainder is *always* nonzero —
//     the value's odd part carries 5^q ≥ 5⁵⁶ > 2⁵³, so it can never be a
//     binary64.
//   - q < 0: the table rounds up, so the product *over*estimates by less
//     than one multiplicand.  When the low bits are at least one
//     multiplicand above zero, the floor is exact and the remainder
//     provably nonzero in one test.  Below that the value may be exactly
//     representable: that happens only for dyadic inputs (5^−q divides
//     the significand, possible only for −q ≤ 27), which are finished
//     exactly with integer bit arithmetic; anything else declines.
//
// The caller-facing contract is the package's usual decline-don't-error,
// with one addition for error identity: any result the exact reader
// would accompany with a range error (overflow saturating at MaxFloat64
// under the truncating direction, ±Inf under the outward one, and the
// whole subnormal band) is declined, so the exact reader alone decides
// both the value and the error text.

package fastparse

import (
	"math"
	"math/bits"
)

// pow5 holds 5^0..5^27, every power of five representable in a uint64.
// 5^27 < 2^64 ≤ 5^28, so a 19-digit significand divisible by 5^k forces
// k ≤ 27 — the complete dyadic window for q < 0.
var pow5 = [28]uint64{
	1, 5, 25, 125, 625, 3125, 15625, 78125, 390625, 1953125, 9765625,
	48828125, 244140625, 1220703125, 6103515625, 30517578125,
	152587890625, 762939453125, 3814697265625, 19073486328125,
	95367431640625, 476837158203125, 2384185791015625, 11920928955078125,
	59604644775390625, 298023223876953125, 1490116119384765625,
	7450580596923828125,
}

// ParseDirected64 converts a base-10 literal to binary64 under IEEE
// directed rounding toward +∞ (towardPos) or −∞, or declines.  digits is
// the significant-digit count for telemetry.  ok == true certifies the
// result identical to the exact reader's — including that the exact
// reader would report no error for this input; every range condition
// declines so the reader's saturation value and ErrRange text stay
// byte-identical to the pre-fast-path behavior.
func ParseDirected64(s string, towardPos bool) (f float64, digits int, ok bool) {
	d, ok := scan(s)
	if !ok {
		return 0, 0, false
	}
	if d.man == 0 {
		// Every digit was zero: exactly ±0 at any scale, in any direction.
		return math.Float64frombits(signBit(d.neg)), d.nd, true
	}
	// Directed modes are specified on the signed value; on the magnitude
	// they become round-away-from-zero or truncate-toward-zero.
	up := towardPos != d.neg
	f, ok = eiselLemireDirected64(d.man, d.exp10, d.neg, up)
	if !ok {
		return 0, 0, false
	}
	if d.trunc {
		// The true significand lies strictly inside (man, man+1) × 10^exp10.
		// Directed rounding is monotone, so if both endpoints certify to
		// the same binary64, every value between them rounds there too.
		g, gok := eiselLemireDirected64(d.man+1, d.exp10, d.neg, up)
		if !gok || math.Float64bits(f) != math.Float64bits(g) {
			return 0, 0, false
		}
	}
	return f, d.nd, true
}

// eiselLemireDirected64 rounds nonzero man × 10^exp10 to binary64 in the
// given magnitude direction (up = away from zero), or declines.
func eiselLemireDirected64(man uint64, exp10 int, neg, up bool) (float64, bool) {
	if exp10 < minExp10 || exp10 > maxExp10 {
		return 0, false
	}
	clz := bits.LeadingZeros64(man)
	nman := man << uint(clz)
	// Same fixed-point exponent estimate as the nearest path; the final
	// msb fold below keeps the two in lockstep.
	retExp2 := uint64(217706*exp10>>16+64+1023) - uint64(clz)

	// Full 192-bit product nman × (tHi·2⁶⁴ + tLo): unlike the nearest
	// path's lazy second multiply, the directed certificate always wants
	// every known low bit — they are the remainder.
	t := pow10[exp10-minExp10]
	aHi, aLo := bits.Mul64(nman, t[0])
	bHi, bLo := bits.Mul64(nman, t[1])
	p0 := aLo
	p1, carry := bits.Add64(bLo, aHi, 0)
	p2 := bHi + carry

	msb := p2 >> 63
	mant := p2 >> (msb + 10) // the truncated 53-bit significand estimate
	low2 := p2 & (1<<(msb+10) - 1)
	retExp2 -= 1 ^ msb

	var remNonzero bool
	switch {
	case exp10 >= 0 && exp10 <= 55:
		// Exact table entry, exact product: the bits below the cut are
		// the whole remainder.
		remNonzero = low2 != 0 || p1 != 0 || p0 != 0
	case exp10 >= 56:
		// Truncated table: true = product + tail, tail ∈ [0, nman).  The
		// floor is exact unless the tail could carry across the cut.
		if low2 == 1<<(msb+10)-1 && p1 == ^uint64(0) && p0+nman < p0 {
			return 0, false
		}
		// The value's odd part contains 5^exp10 ≥ 5⁵⁶ > 2⁵³: never a
		// binary64, so the remainder is nonzero unconditionally.
		remNonzero = true
	default: // exp10 < 0
		// Rounded-up table: true = product − tail, tail ∈ (0, nman).
		if low2 == 0 && p1 == 0 && p0 < nman {
			// The known low bits are within one multiplicand of zero: the
			// floor may borrow, or the value may be exactly representable.
			// Only dyadic inputs can be exact; settle those with integer
			// arithmetic, decline the rest of this (vanishing) band.
			if k := -exp10; k < len(pow5) && man%pow5[k] == 0 {
				return dyadicDirected64(man/pow5[k], exp10, neg, up)
			}
			return 0, false
		}
		// Low bits ≥ nman > tail: the subtraction never reaches the cut
		// (floor exact) and leaves a nonzero remainder.
		remNonzero = true
	}

	if up && remNonzero {
		mant++
		if mant>>53 != 0 {
			mant >>= 1
			retExp2++
		}
	}
	// Decline Inf/NaN territory and the subnormal range in one unsigned
	// compare, as the nearest path does: the exact reader owns both the
	// saturated values and the ErrRange signalling there.
	if retExp2-1 >= 0x7FF-1 {
		return 0, false
	}
	// Error identity at the top of the range: a value strictly above
	// MaxFloat64 truncates onto it under the inward direction, but the
	// exact reader still reports ErrRange (IEEE overflow is signalled on
	// the exact value, not the truncated result).  Serving it here would
	// return the right float with the wrong (missing) error — decline.
	if !up && remNonzero && retExp2 == 0x7FE && mant == 1<<53-1 {
		return 0, false
	}
	retBits := mant&(1<<52-1) | retExp2<<52 | signBit(neg)
	return math.Float64frombits(retBits), true
}

// dyadicDirected64 finishes man2 × 2^exp2 for the dyadic q < 0 band
// (man2 = man/5^−q ≥ 1, −27 ≤ exp2 ≤ −1) with exact bit arithmetic.
// The biased exponent lands in [996, 1086] ⊂ [1, 2046] — always a
// normal, never a range condition.
func dyadicDirected64(man2 uint64, exp2 int, neg, up bool) (float64, bool) {
	bitlen := 64 - bits.LeadingZeros64(man2)
	biased := uint64(exp2 + bitlen - 1 + 1023)
	var mant, rem uint64
	if bitlen <= 53 {
		mant = man2 << uint(53-bitlen)
	} else {
		sh := uint(bitlen - 53)
		mant = man2 >> sh
		rem = man2 & (1<<sh - 1)
	}
	if up && rem != 0 {
		mant++
		if mant>>53 != 0 {
			mant >>= 1
			biased++
		}
	}
	retBits := mant&(1<<52-1) | biased<<52 | signBit(neg)
	return math.Float64frombits(retBits), true
}
