package fastparse

import "floatprint/internal/bignat"

// The table covers 10^q for q ∈ [minExp10, maxExp10] — the same span as
// the canonical Eisel–Lemire implementations.  Outside it a decimal
// input is guaranteed to overflow or underflow a binary64 (|exp10| near
// 348 is already past the subnormal floor for any 19-digit significand),
// and the fast path declines to the exact reader anyway.
const (
	minExp10 = -348
	maxExp10 = 347
)

// pow10 holds, for each q, the first 128 bits of the binary expansion of
// 10^q as a fixed-point significand in [2⁶³, 2⁶⁴) × 2⁶⁴: entry [1] is the
// high 64 bits, entry [0] the low 64.  For q ≥ 0 the infinite expansion
// is truncated toward zero; for q < 0 (where 10^q is a non-terminating
// binary fraction) it is rounded *up*, which is what makes the
// Mushtak–Lemire uncertainty test sound: the true product always lies in
// [approx·m − m, approx·m), a half-open interval one multiplicand wide.
var pow10 [maxExp10 - minExp10 + 1][2]uint64

// The table is generated at init from this repository's own big-integer
// arithmetic rather than pasted as a 22 KB literal: the build produces
// exactly the constants the papers tabulate (spot-checked against a
// math/big oracle in the tests), and the generation rule — not 696
// opaque numbers — is what gets reviewed.
func init() {
	// q ≥ 0: 10^q = 5^q · 2^q, and the power of two only shifts the
	// binary point, so the 128-bit significand of 10^q is the top 128
	// bits of 5^q (truncated).
	p := bignat.FromUint64(1)
	for q := 0; q <= maxExp10; q++ {
		pow10[q-minExp10] = top128(p)
		p = bignat.MulWord(p, 5)
	}
	// q < 0: 10^q = 2^-q / 5^-q up to binary-point placement, so the
	// significand is the reciprocal of 5^-q, normalized to 128 bits and
	// rounded up: ceil(2^(127+L) / 5^-q) with L = bitlen(5^-q), which
	// lands in [2¹²⁷, 2¹²⁸) because 2^(L-1) ≤ 5^-q < 2^L.
	p = bignat.FromUint64(5)
	for q := -1; q >= minExp10; q-- {
		l := uint(p.BitLen())
		quo, rem := bignat.DivMod(bignat.Shl(bignat.FromUint64(1), 127+l), p)
		if !rem.IsZero() {
			quo = bignat.AddWord(quo, 1)
		}
		pow10[q-minExp10] = split128(quo)
		p = bignat.MulWord(p, 5)
	}
}

// top128 normalizes p to exactly 128 bits — shifting up when short,
// truncating when long — and splits it into (lo, hi) words.
func top128(p bignat.Nat) [2]uint64 {
	l := p.BitLen()
	if l <= 128 {
		return split128(bignat.Shl(p, uint(128-l)))
	}
	return split128(bignat.Shr(p, uint(l-128)))
}

// split128 splits a value known to fit 128 bits into its two 64-bit
// halves, independent of the platform limb width.
func split128(c bignat.Nat) [2]uint64 {
	hiNat := bignat.Shr(c, 64)
	hi, _ := hiNat.Uint64()
	lo, _ := bignat.Sub(c, bignat.Shl(hiNat, 64)).Uint64()
	return [2]uint64{lo, hi}
}
