package fastparse

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"floatprint/internal/fpformat"
	"floatprint/internal/reader"
	"floatprint/internal/schryer"
)

// checkDirectedAgainstReader certifies one input against the exact
// directed reader in both directions.  A served (ok) result must match
// the reader's bits exactly AND the reader must report no error for that
// input — the fast path's contract includes error identity, so anything
// the reader would flag (ErrRange saturation in particular) must have
// been declined.  Returns how many of the two directions declined.
func checkDirectedAgainstReader(t *testing.T, s string) int {
	t.Helper()
	declines := 0
	for _, towardPos := range []bool{false, true} {
		mode := reader.TowardNegInf
		if towardPos {
			mode = reader.TowardPosInf
		}
		f, _, ok := ParseDirected64(s, towardPos)
		if !ok {
			declines++
			continue
		}
		n, perr := reader.ParseText(s, 10)
		if perr != nil {
			t.Fatalf("ParseDirected64(%q, %v) certified input the reader rejects: %v", s, towardPos, perr)
		}
		v, cerr := reader.Convert(n, fpformat.Binary64, mode)
		if cerr != nil {
			t.Fatalf("ParseDirected64(%q, %v) = %x certified, but the exact reader signals %v — error identity broken",
				s, towardPos, math.Float64bits(f), cerr)
		}
		want, ferr := v.Float64()
		if ferr != nil {
			t.Fatalf("reader.Convert(%q) Float64: %v", s, ferr)
		}
		if math.Float64bits(f) != math.Float64bits(want) {
			t.Fatalf("ParseDirected64(%q, %v) = %x, exact reader = %x", s, towardPos, math.Float64bits(f), math.Float64bits(want))
		}
	}
	return declines
}

// TestDirectedParseEdgeInputs sweeps the range frontier, the dyadic
// band, zeros, truncated significands, and syntax the scanner declines.
func TestDirectedParseEdgeInputs(t *testing.T) {
	inputs := []string{
		"0", "-0", "+0", "0.000e5", "-0e-999",
		"1", "-1", "0.5", "-0.5", "0.25", "0.125", "1.5", "2.5", "3.75",
		"0.1", "0.3", "-0.1", "3.1415926535897932384626433832795028841971",
		"3.0517578125e-05",        // 2^-15: dyadic via 5^5 | 30517578125
		"7450580596923828125e-27", // 5^27·10^-27 = 2^-27: the deepest dyadic window
		"7450580596923828125e-28", // 5^27·10^-28: not dyadic (one extra 5 in the denominator)
		"1.7976931348623157e308",  // MaxFloat64 exactly
		"1.7976931348623158e308",  // above MaxFloat64: saturates with ErrRange, must decline
		"-1.7976931348623158e308", //
		"1e308", "1e309", "-1e309", "2e308",
		"1e999", "1e-999", "-1e-999", "1e999999999",
		"4.9406564584124654e-324", // smallest denormal
		"2.2250738585072014e-308", // smallest normal
		"2.2250738585072011e-308", // just below the normal floor
		"2.2250738585072013e-308", //
		"1e-323", "9.9e-324", "1e-350",
		"9007199254740993",                    // 2^53+1: exactly between representables
		"9007199254740992.5",                  //
		"123456789012345678901234567890",      // truncated significand
		"1234567890123456789012345678901e-35", //
		"99999999999999999999999999999999e10", //
		"0.000000000000000000001234567890123456789012345",
		"1e", "e5", "..1", "1.2.3", "nan", "inf", " 1", "1 ", "1#2",
		"12#", "12#.#e2", "1@5", "1@-5",
	}
	for _, s := range inputs {
		checkDirectedAgainstReader(t, s)
	}
}

// TestDirectedParseCorpus certifies the fast path over the shortest
// decimal strings of the full corpus — the served interval workload's
// exact input distribution — in both directions, and pins the hit rate:
// the kernel exists to serve this traffic, so wholesale declining
// (a wrong-but-safe implementation) fails loudly.
func TestDirectedParseCorpus(t *testing.T) {
	n := schryer.CorpusSize
	if testing.Short() {
		n = 8000
	}
	declines, total := 0, 0
	for _, v := range schryer.CorpusN(n) {
		s := strconv.FormatFloat(v, 'g', -1, 64)
		declines += checkDirectedAgainstReader(t, s)
		total += 2
	}
	if rate := float64(declines) / float64(total); rate > 0.001 {
		t.Fatalf("directed fast path declined %d/%d corpus parses (%.4f%%); expected a near-zero decline rate",
			declines, total, 100*rate)
	}
}

// TestDirectedParseRandom hammers random significand/exponent
// combinations, weighted toward the table edges and high digit counts.
func TestDirectedParseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	iters := 60000
	if testing.Short() {
		iters = 3000
	}
	for i := 0; i < iters; i++ {
		man := rng.Uint64() >> uint(rng.Intn(40))
		exp := rng.Intn(700) - 360
		var s string
		switch rng.Intn(4) {
		case 0:
			s = fmt.Sprintf("%de%d", man, exp)
		case 1:
			s = fmt.Sprintf("%d.%de%d", man, rng.Uint64()%1000000, exp)
		case 2:
			s = fmt.Sprintf("-%de%d", man, exp)
		default:
			s = fmt.Sprintf("%d%d.%de%d", man, rng.Uint64(), rng.Uint64(), exp)
		}
		checkDirectedAgainstReader(t, s)
	}
	// Dense sweep of the dyadic window: man = k·5^j at small negative
	// exponents, where the exact-integer path and its neighbors live.
	for j := 0; j <= 27; j++ {
		for k := uint64(1); k <= 6; k++ {
			if pow5[j] > math.MaxUint64/k {
				continue
			}
			for e := -30; e <= 0; e++ {
				checkDirectedAgainstReader(t, fmt.Sprintf("%de%d", k*pow5[j], e))
			}
		}
	}
}
