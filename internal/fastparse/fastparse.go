// Package fastparse is the read-side analogue of the print-side fast
// paths: an Eisel–Lemire conversion that turns a base-10 literal into a
// correctly rounded binary64 (or binary32) with one 128-bit multiply,
// certifying its own result and declining whenever it cannot.
//
// The structure mirrors the printing paper's estimate-then-verify shape
// (§3.2's two-flop scale estimate with a cheap fixup): a truncated
// 128-bit product of the decimal significand with a precomputed power of
// ten *estimates* the binary significand, and the bits below the
// rounding cut certify whether the estimate is beyond doubt.  Following
// Mushtak & Lemire ("Fast Number Parsing Without Fallback"), the only
// inputs the certificate cannot decide are genuine round-to-even ties
// and a provably thin band of truncated products — everything else is
// exact without any big-integer arithmetic.
//
// The contract with the caller is decline-don't-error: Parse64/Parse32
// either certify a correctly rounded result (ok=true) or report ok=false
// for *any* reason — unsupported syntax, uncertainty, ties, overflow
// into Inf, underflow into the subnormal range, an exponent outside the
// table.  The caller falls back to the exact big-integer reader, which
// also keeps every error message and range condition byte-identical to
// the pre-fast-path behavior.
package fastparse

import (
	"math"
	"math/bits"
)

// maxExponent mirrors internal/reader's exponent-literal cap.  An
// exponent whose digits accumulate past it makes ParseText fail, so the
// scanner declines there and lets the exact reader produce the error.
const maxExponent = 1 << 24

// decimal is the scanned form of a literal: a 19-digit-or-fewer
// significand with the remembered base-10 scale, value = man × 10^exp10
// (negated when neg).  trunc records that at least one nonzero digit
// beyond the 19th was dropped, so man underestimates the true
// significand by less than one unit in its last place.
type decimal struct {
	man   uint64
	exp10 int
	nd    int
	neg   bool
	trunc bool
}

// scan reads s against the subset of internal/reader's base-10 grammar
// the fast path accepts: [+|-] digits-and-#-marks with at most one
// point, then an optional '@'/'e'/'E' exponent with optional sign and
// decimal digits.  '#' marks read as zeros and, as in the reader, no
// digit may follow a mark.  Any deviation — including an exponent
// literal past the reader's cap — returns ok=false.
func scan(s string) (d decimal, ok bool) {
	i := 0
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		d.neg = s[i] == '-'
		i++
	}
	sawDigit := false
	sawDot := false
	marks := false
	dp := 0 // scale correction: digits after the point each shift by -1
scanMantissa:
	for ; i < len(s); i++ {
		c := s[i]
		var dig byte
		switch {
		case c == '.':
			if sawDot {
				return decimal{}, false
			}
			sawDot = true
			continue
		case c == '#':
			marks = true
			dig = 0
		case '0' <= c && c <= '9':
			if marks {
				return decimal{}, false // reader: "digit after # mark"
			}
			dig = c - '0'
		case c == 'e' || c == 'E' || c == '@':
			break scanMantissa
		default:
			return decimal{}, false
		}
		sawDigit = true
		if dig == 0 && d.nd == 0 {
			// Leading zero: contributes no significand, only scale.
			if sawDot {
				dp--
			}
			continue
		}
		if d.nd < 19 {
			// 19 digits always fit: 10¹⁹−1 < 2⁶⁴.
			d.man = d.man*10 + uint64(dig)
			d.nd++
			if sawDot {
				dp--
			}
		} else {
			// Dropped digit: left of the point it still scales the
			// value; anywhere, a nonzero drop marks man as truncated.
			if !sawDot {
				dp++
			}
			if dig != 0 {
				d.trunc = true
			}
		}
	}
	if !sawDigit {
		return decimal{}, false
	}
	exp := 0
	if i < len(s) {
		i++ // the exponent marker
		eneg := false
		if i < len(s) && (s[i] == '+' || s[i] == '-') {
			eneg = s[i] == '-'
			i++
		}
		if i == len(s) {
			return decimal{}, false // reader: "missing exponent digits"
		}
		for ; i < len(s); i++ {
			c := s[i]
			if c < '0' || c > '9' {
				return decimal{}, false
			}
			exp = exp*10 + int(c-'0')
			if exp > maxExponent {
				return decimal{}, false // reader: "exponent overflow"
			}
		}
		if eneg {
			exp = -exp
		}
	}
	d.exp10 = dp + exp
	return d, true
}

// Parse64 converts a base-10 literal to the binary64 nearest to its
// value under round-to-nearest-even.  digits is the number of
// significant decimal digits consumed (for telemetry).  ok=false means
// the fast path declines — for any reason — and the caller must use the
// exact reader; when ok=true the result is certified identical to the
// exact reader's.
func Parse64(s string) (f float64, digits int, ok bool) {
	d, ok := scan(s)
	if !ok {
		return 0, 0, false
	}
	if d.man == 0 {
		// Every digit was zero: the value is exactly ±0 at any scale.
		return math.Float64frombits(signBit(d.neg)), d.nd, true
	}
	f, ok = eiselLemire64(d.man, d.exp10, d.neg)
	if !ok {
		return 0, 0, false
	}
	if d.trunc {
		// man truncates the true significand, which lies in the open
		// interval (man, man+1) × 10^exp10.  Rounding is monotone, so if
		// both endpoints certify and round to the same binary64, every
		// value between them does too.
		g, gok := eiselLemire64(d.man+1, d.exp10, d.neg)
		if !gok || math.Float64bits(f) != math.Float64bits(g) {
			return 0, 0, false
		}
	}
	return f, d.nd, true
}

// Parse32 is Parse64 targeting binary32: one rounding, directly to
// single precision.
func Parse32(s string) (f float32, digits int, ok bool) {
	d, ok := scan(s)
	if !ok {
		return 0, 0, false
	}
	if d.man == 0 {
		return math.Float32frombits(uint32(signBit(d.neg) >> 32)), d.nd, true
	}
	f, ok = eiselLemire32(d.man, d.exp10, d.neg)
	if !ok {
		return 0, 0, false
	}
	if d.trunc {
		g, gok := eiselLemire32(d.man+1, d.exp10, d.neg)
		if !gok || math.Float32bits(f) != math.Float32bits(g) {
			return 0, 0, false
		}
	}
	return f, d.nd, true
}

func signBit(neg bool) uint64 {
	if neg {
		return 1 << 63
	}
	return 0
}

// eiselLemire64 rounds man × 10^exp10 to binary64, or declines.  man
// must be nonzero.  The shape follows the published algorithm (Lemire,
// "Number Parsing at a Gigabyte per Second", with the Mushtak–Lemire
// tightening): normalize man, take the 128-bit truncated product with
// the tabulated significand of 10^exp10, and read the answer off the top
// bits — declining only when the truncated tail could straddle the
// rounding cut or the value leaves the normal range.
func eiselLemire64(man uint64, exp10 int, neg bool) (float64, bool) {
	if exp10 < minExp10 || exp10 > maxExp10 {
		return 0, false
	}
	clz := bits.LeadingZeros64(man)
	man <<= uint(clz)
	// The binary exponent estimate: floor(exp10·log₂10) computed in
	// fixed point (217706/2¹⁶ ≈ log₂10), plus the float64 bias and the
	// 64 bits the normalized product carries above the binary point.
	retExp2 := uint64(217706*exp10>>16+64+1023) - uint64(clz)

	xHi, xLo := bits.Mul64(man, pow10[exp10-minExp10][1])
	if xHi&0x1FF == 0x1FF && xLo+man < xLo {
		// The 9 bits below the widest possible rounding cut are all
		// ones and the low half is within one man of carrying into
		// them: the truncated tail of the infinite product could flip
		// the rounded result.  Refine with the next 64 table bits.
		yHi, yLo := bits.Mul64(man, pow10[exp10-minExp10][0])
		mergedHi, mergedLo := xHi, xLo+yHi
		if mergedLo < xLo {
			mergedHi++
		}
		// Mushtak & Lemire prove 10^q significands never sit close
		// enough to a 128-bit boundary for this second test to fail on
		// real table entries — it is kept as a safety net.
		if mergedHi&0x1FF == 0x1FF && mergedLo+1 == 0 && yLo+man < yLo {
			return 0, false
		}
		xHi, xLo = mergedHi, mergedLo
	}

	// The product's top bit decides whether 53+1 result bits start at
	// bit 63 or 62; fold that into the exponent.
	msb := xHi >> 63
	retMantissa := xHi >> (msb + 9)
	retExp2 -= 1 ^ msb

	// Exact tie: the discarded bits are exactly half an ulp and the
	// kept bits end in 01 — round-to-even cannot be decided from a
	// truncated product, so decline (the tie band is the one case the
	// no-fallback tightening leaves to the exact reader).
	if xLo == 0 && xHi&0x1FF == 0 && retMantissa&3 == 1 {
		return 0, false
	}

	// Round half-up (ties were declined above, so this is half-even).
	retMantissa += retMantissa & 1
	retMantissa >>= 1
	if retMantissa>>53 > 0 {
		retMantissa >>= 1
		retExp2++
	}
	// Decline Inf/NaN territory and the subnormal range in one unsigned
	// compare (retExp2 ≤ 0 wraps); subnormals round at a different bit
	// position than this code computed.
	if retExp2-1 >= 0x7FF-1 {
		return 0, false
	}
	retBits := retMantissa&(1<<52-1) | retExp2<<52 | signBit(neg)
	return math.Float64frombits(retBits), true
}

// eiselLemire32 is eiselLemire64 with binary32 geometry: 24 significand
// bits, bias 127, and a 38-bit uncertainty band below the rounding cut.
func eiselLemire32(man uint64, exp10 int, neg bool) (float32, bool) {
	if exp10 < minExp10 || exp10 > maxExp10 {
		return 0, false
	}
	clz := bits.LeadingZeros64(man)
	man <<= uint(clz)
	retExp2 := uint64(217706*exp10>>16+64+127) - uint64(clz)

	xHi, xLo := bits.Mul64(man, pow10[exp10-minExp10][1])
	if xHi&0x3FFFFFFFFF == 0x3FFFFFFFFF && xLo+man < xLo {
		yHi, yLo := bits.Mul64(man, pow10[exp10-minExp10][0])
		mergedHi, mergedLo := xHi, xLo+yHi
		if mergedLo < xLo {
			mergedHi++
		}
		if mergedHi&0x3FFFFFFFFF == 0x3FFFFFFFFF && mergedLo+1 == 0 && yLo+man < yLo {
			return 0, false
		}
		xHi, xLo = mergedHi, mergedLo
	}

	msb := xHi >> 63
	retMantissa := xHi >> (msb + 38)
	retExp2 -= 1 ^ msb

	if xLo == 0 && xHi&0x3FFFFFFFFF == 0 && retMantissa&3 == 1 {
		return 0, false
	}

	retMantissa += retMantissa & 1
	retMantissa >>= 1
	if retMantissa>>24 > 0 {
		retMantissa >>= 1
		retExp2++
	}
	if retExp2-1 >= 0xFF-1 {
		return 0, false
	}
	retBits := uint32(retMantissa&(1<<23-1)) | uint32(retExp2)<<23 | uint32(signBit(neg)>>32)
	return math.Float32frombits(retBits), true
}
