// Block-at-a-time parsing support: the byte-stream twin of the string
// scanner, built for the batch ingestion engine (Lemire, "Number
// Parsing at a Gigabyte per Second").  Three costs dominate a bulk
// parse that a per-value loop pays in full for every number: finding
// the token boundary, validating that bytes are digits, and folding
// digits into the significand one multiply at a time.  ParseToken64
// amortizes all three the way the paper prescribes — it consumes the
// leading number directly out of the stream (no separate tokenization
// pass), validates digit runs eight bytes per 64-bit SWAR test, folds
// eight validated digits into the significand with one multiply-by-10⁸,
// and accumulates optimistically in the same pass (a wrap is impossible
// while the significant digit count stays ≤ 19; longer runs take a rare
// recompute) — then hands the scanned decimal to the same certified
// Eisel–Lemire kernel as the per-value path, so a block result can
// never differ from a per-value result.
//
// The grammar here is the chunked common case only: [+|-] digits with
// at most one point, then an optional e/E exponent, terminated by a
// separator or the end of input.  Everything the per-value scanner
// additionally accepts ('#' marks, '@' exponents) is declined, keeping
// the decline-don't-error contract: the caller falls back to the
// per-value parser, which is the bit-identity oracle anyway.

package fastparse

import (
	"encoding/binary"
	"math"
)

// sepTable marks the separator bytes of the batch grammar: newline,
// carriage return, comma, space, tab.  floatprint.BatchSep is defined
// in terms of IsSep, so the two layers cannot drift.
var sepTable = [256]bool{'\n': true, '\r': true, ',': true, ' ': true, '\t': true}

// IsSep reports whether c separates tokens in a batch parse stream.
func IsSep(c byte) bool { return sepTable[c] }

// isEightDigits reports whether all eight bytes of v (a little-endian
// load of eight input bytes) are ASCII digits, in five 64-bit ops: the
// high nibble of a digit is 3 and its low nibble must not carry past 9
// when 6 is added.
func isEightDigits(v uint64) bool {
	return (v&0xF0F0F0F0F0F0F0F0)|((v+0x0606060606060606)&0xF0F0F0F0F0F0F0F0)>>4 ==
		0x3333333333333333
}

// eightDigitsValue converts eight ASCII digits (little-endian load,
// first digit in the low byte) to their base-10 value with three
// multiplies: bytes pair into two-digit groups, groups into four-digit
// groups, and one widening multiply-accumulate merges the two halves.
func eightDigitsValue(v uint64) uint64 {
	const mask = 0x000000FF000000FF
	const mul1 = 0x000F424000000064 // 100 + (1000000 << 32)
	const mul2 = 0x0000271000000001 // 1 + (10000 << 32)
	v -= 0x3030303030303030
	v = v*10 + v>>8
	return ((v&mask)*mul1 + (v>>16&mask)*mul2) >> 32
}

// scanToken scans the number at the head of b in one fused pass:
// validation and accumulation happen together, eight digits per SWAR
// test and multiply while a full chunk remains.  The accumulation is
// optimistic — digits fold into man as they are read, which cannot wrap
// while the significant digit count stays ≤ 19 (10¹⁹−1 < 2⁶⁴) — and
// the rare longer token is recomputed by scanLong under scan()'s exact
// 19-digit cap and dp/trunc bookkeeping.  n is the number of bytes
// consumed; the token must end at a separator or the end of input.
// The decimal produced is identical to scan()'s on every accepted
// token; anything outside the subset grammar returns ok=false.
func scanToken(b []byte) (d decimal, n int, ok bool) {
	i := 0
	if i < len(b) && (b[i] == '+' || b[i] == '-') {
		d.neg = b[i] == '-'
		i++
	}
	var man uint64
	intStart := i
	for i+8 <= len(b) {
		v := binary.LittleEndian.Uint64(b[i:])
		if !isEightDigits(v) {
			break
		}
		man = man*100000000 + eightDigitsValue(v)
		i += 8
	}
	for i < len(b) {
		c := b[i] - '0'
		if c > 9 {
			break
		}
		man = man*10 + uint64(c)
		i++
	}
	intLen := i - intStart
	fracStart, fracLen := i, 0
	if i < len(b) && b[i] == '.' {
		i++
		fracStart = i
		for i+8 <= len(b) {
			v := binary.LittleEndian.Uint64(b[i:])
			if !isEightDigits(v) {
				break
			}
			man = man*100000000 + eightDigitsValue(v)
			i += 8
		}
		for i < len(b) {
			c := b[i] - '0'
			if c > 9 {
				break
			}
			man = man*10 + uint64(c)
			i++
		}
		fracLen = i - fracStart
	}
	if intLen == 0 && fracLen == 0 {
		return decimal{}, 0, false
	}
	exp := 0
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		eneg := false
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			eneg = b[i] == '-'
			i++
		}
		edStart := i
		for i < len(b) {
			c := b[i] - '0'
			if c > 9 {
				break
			}
			exp = exp*10 + int(c)
			if exp > maxExponent {
				return decimal{}, 0, false // reader: "exponent overflow"
			}
			i++
		}
		if i == edStart {
			return decimal{}, 0, false // reader: "missing exponent digits"
		}
		if eneg {
			exp = -exp
		}
	}
	if i != len(b) && !sepTable[b[i]] {
		// Anything else before the separator — '#' marks, '@' exponents,
		// a second point, junk — declines to the per-value path.
		return decimal{}, 0, false
	}

	// Leading zeros carry no significance; sig is the true significant
	// digit count, deciding whether the optimistic man is exact.
	lz := 0
	for lz < intLen && b[intStart+lz] == '0' {
		lz++
	}
	sig := intLen - lz + fracLen
	if lz == intLen {
		flz := 0
		for flz < fracLen && b[fracStart+flz] == '0' {
			flz++
		}
		sig = fracLen - flz
	}
	if sig <= 19 {
		// The common case: every significant digit is already in man, and
		// the value is man × 10^(exp − fracLen) regardless of where the
		// leading zeros sat.
		d.man = man
		d.nd = sig
		d.exp10 = exp - fracLen
		return d, i, true
	}
	return scanLong(b, d.neg, intStart, intLen, fracStart, fracLen, exp, i)
}

// scanLong recomputes a >19-significant-digit token under scan()'s
// exact bookkeeping: at most 19 digits fold into man, dropped integer
// digits still scale the value, and any nonzero drop marks man as
// truncated.
func scanLong(b []byte, neg bool, intStart, intLen, fracStart, fracLen, exp, n int) (decimal, int, bool) {
	intRun := b[intStart : intStart+intLen]
	fracRun := b[fracStart : fracStart+fracLen]
	for len(intRun) > 0 && intRun[0] == '0' {
		intRun = intRun[1:]
	}
	dp := 0
	if len(intRun) == 0 {
		for len(fracRun) > 0 && fracRun[0] == '0' {
			fracRun = fracRun[1:]
			dp--
		}
	}
	d := decimal{neg: neg}
	take := min(19, len(intRun))
	d.man = accumDigits(d.man, intRun[:take])
	d.nd = take
	for _, c := range intRun[take:] {
		dp++
		if c != '0' {
			d.trunc = true
		}
	}
	ftake := min(19-d.nd, len(fracRun))
	d.man = accumDigits(d.man, fracRun[:ftake])
	d.nd += ftake
	dp -= ftake
	for _, c := range fracRun[ftake:] {
		if c != '0' {
			d.trunc = true
		}
	}
	d.exp10 = dp + exp
	return d, n, true
}

// accumDigits folds an already-validated digit run into man, eight
// digits per multiply while a full chunk remains.  The caller caps the
// total digit count at 19, so man never overflows.
func accumDigits(man uint64, run []byte) uint64 {
	i := 0
	for ; i+8 <= len(run); i += 8 {
		man = man*100000000 + eightDigitsValue(binary.LittleEndian.Uint64(run[i:]))
	}
	for ; i < len(run); i++ {
		man = man*10 + uint64(run[i]-'0')
	}
	return man
}

// finish64 runs the scanned decimal through the certified Eisel–Lemire
// kernel, with Parse64's truncation re-verification.
func finish64(d decimal) (float64, bool) {
	if d.man == 0 {
		// Every digit was zero: the value is exactly ±0 at any scale.
		return math.Float64frombits(signBit(d.neg)), true
	}
	f, ok := eiselLemire64(d.man, d.exp10, d.neg)
	if !ok {
		return 0, false
	}
	if d.trunc {
		// As in Parse64: both endpoints of (man, man+1) × 10^exp10 must
		// certify and round identically, or the truncation is in doubt.
		g, gok := eiselLemire64(d.man+1, d.exp10, d.neg)
		if !gok || math.Float64bits(f) != math.Float64bits(g) {
			return 0, false
		}
	}
	return f, true
}

// ParseToken64 parses the number token at the head of b, stopping at
// the first separator (see IsSep) or the end of input, and reports the
// bytes consumed.  The contract is the same decline-don't-error as
// Parse64: ok=true certifies a result bit-identical to the exact
// reader's for the consumed token; ok=false means the caller must
// delimit the token itself and use the per-value parser (which also
// covers the grammar this scanner deliberately omits — specials, '#'
// marks, '@' exponents).
func ParseToken64(b []byte) (f float64, n int, ok bool) {
	d, n, ok := scanToken(b)
	if !ok {
		return 0, 0, false
	}
	f, ok = finish64(d)
	if !ok {
		return 0, 0, false
	}
	return f, n, true
}

// ParseBytes64 is Parse64 over a whole byte token: the fused scanner
// must consume every byte of b.
func ParseBytes64(b []byte) (f float64, ok bool) {
	d, n, ok := scanToken(b)
	if !ok || n != len(b) {
		return 0, false
	}
	return finish64(d)
}
