package fastparse

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// TestPow10TableOracle regenerates the table with math/big and compares
// every entry: for q ≥ 0 the top 128 bits of 5^q truncated, for q < 0
// the rounded-up 128-bit reciprocal of 5^-q.
func TestPow10TableOracle(t *testing.T) {
	for q := minExp10; q <= maxExp10; q++ {
		five := new(big.Int).Exp(big.NewInt(5), big.NewInt(int64(abs(q))), nil)
		want := new(big.Int)
		if q >= 0 {
			l := five.BitLen()
			if l <= 128 {
				want.Lsh(five, uint(128-l))
			} else {
				want.Rsh(five, uint(l-128))
			}
		} else {
			num := new(big.Int).Lsh(big.NewInt(1), uint(127+five.BitLen()))
			rem := new(big.Int)
			want.DivMod(num, five, rem)
			if rem.Sign() != 0 {
				want.Add(want, big.NewInt(1))
			}
		}
		var got big.Int
		got.Lsh(new(big.Int).SetUint64(pow10[q-minExp10][1]), 64)
		got.Add(&got, new(big.Int).SetUint64(pow10[q-minExp10][0]))
		if got.Cmp(want) != 0 {
			t.Fatalf("pow10[%d]: got %s, want %s", q, got.Text(16), want.Text(16))
		}
		if pow10[q-minExp10][1]>>63 != 1 {
			t.Fatalf("pow10[%d] not normalized: hi=%#x", q, pow10[q-minExp10][1])
		}
	}
}

func abs(q int) int {
	if q < 0 {
		return -q
	}
	return q
}

// TestPow10KnownEntries pins the canonical spot values every published
// table shares.
func TestPow10KnownEntries(t *testing.T) {
	for _, tc := range []struct {
		q      int
		lo, hi uint64
	}{
		{0, 0x0000000000000000, 0x8000000000000000},
		{1, 0x0000000000000000, 0xA000000000000000},
		{-1, 0xCCCCCCCCCCCCCCCD, 0xCCCCCCCCCCCCCCCC},
		{23, 0x0000000000000000, 0xA968163F0A57B400},
		{-27, 0x775EA264CF55347E, 0x9E74D1B791E07E48},
	} {
		got := pow10[tc.q-minExp10]
		if got[0] != tc.lo || got[1] != tc.hi {
			t.Errorf("pow10[%d] = {%#x, %#x}, want {%#x, %#x}",
				tc.q, got[0], got[1], tc.lo, tc.hi)
		}
	}
}

// TestParse64VsStrconv runs the certified fast path against
// strconv.ParseFloat on handpicked and random literals.  Whenever the
// fast path claims ok, the bits must match; known-easy inputs must not
// decline.
func TestParse64VsStrconv(t *testing.T) {
	mustHit := []string{
		"0", "-0", "1", "-1", "10", "0.5", "0.1", "-0.3", "3.14159",
		"9.999999999999999e22", "1.0000000000000001e23",
		"2.2250738585072014e-308", "1.7976931348623157e308",
		"123456789012345678", "1.8446744073709552e19",
		"100.000000000000000#####", "1#", "12.5##", "#",
		"6.62607015e-34", "+42",
	}
	for _, s := range mustHit {
		f, _, ok := Parse64(s)
		if !ok {
			t.Errorf("Parse64(%q) declined, want certify", s)
			continue
		}
		want, err := strconv.ParseFloat(strings.Map(dropMarks, s), 64)
		if err != nil {
			t.Fatalf("oracle rejects %q: %v", s, err)
		}
		if math.Float64bits(f) != math.Float64bits(want) {
			t.Errorf("Parse64(%q) = %v (%#x), want %v (%#x)",
				s, f, math.Float64bits(f), want, math.Float64bits(want))
		}
	}

	rng := rand.New(rand.NewSource(5))
	certified := 0
	const n = 200000
	for i := 0; i < n; i++ {
		s := randomLiteral(rng)
		f, _, ok := Parse64(s)
		if !ok {
			continue
		}
		certified++
		want, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("Parse64(%q) certified but oracle rejects: %v", s, err)
		}
		if math.Float64bits(f) != math.Float64bits(want) {
			t.Fatalf("Parse64(%q) = %v (%#x), want %v (%#x)",
				s, f, math.Float64bits(f), want, math.Float64bits(want))
		}
	}
	if certified < n/2 {
		t.Errorf("fast path certified only %d/%d random literals", certified, n)
	}
}

// TestParse32VsStrconv mirrors the 64-bit differential at single
// precision, where double rounding through float64 would show.
func TestParse32VsStrconv(t *testing.T) {
	mustHit := []string{
		"0", "-0", "1", "0.1", "3.4028235e38", "1.1754944e-38",
		"7.038531e-26", // the classic float32 double-rounding witness
		"1.5", "-2.5e-1",
	}
	for _, s := range mustHit {
		f, _, ok := Parse32(s)
		if !ok {
			t.Errorf("Parse32(%q) declined, want certify", s)
			continue
		}
		want64, err := strconv.ParseFloat(s, 32)
		if err != nil {
			t.Fatalf("oracle rejects %q: %v", s, err)
		}
		if math.Float32bits(f) != math.Float32bits(float32(want64)) {
			t.Errorf("Parse32(%q) = %v (%#x), want %v (%#x)",
				s, f, math.Float32bits(f), float32(want64), math.Float32bits(float32(want64)))
		}
	}

	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100000; i++ {
		s := randomLiteral(rng)
		f, _, ok := Parse32(s)
		if !ok {
			continue
		}
		want64, err := strconv.ParseFloat(s, 32)
		if err != nil {
			t.Fatalf("Parse32(%q) certified but oracle rejects: %v", s, err)
		}
		if math.Float32bits(f) != math.Float32bits(float32(want64)) {
			t.Fatalf("Parse32(%q) = %#x, want %#x",
				s, math.Float32bits(f), math.Float32bits(float32(want64)))
		}
	}
}

// TestParseDeclines pins the decline contract: syntax the exact reader
// would reject, exponents past its cap or outside the table, subnormal
// and overflowing magnitudes, and exact round-to-even ties must all come
// back ok=false, never a wrong certify.
func TestParseDeclines(t *testing.T) {
	for _, s := range []string{
		"", "+", "-", ".", "+.", "e5", ".e5", "1e", "1e+", "1e-",
		"1..2", "1.2.3", "#1", "1#2", "0x12", "1_000", " 1", "1 ",
		"abc", "inf", "nan", "1e2e3", "1@2@3", "1e99999999",
		"1e400", "1e-400", // out of table: exact reader decides range
		"1e16777217", // past the reader's exponent cap
		"5e-324",     // subnormal: rounds at a shifted bit position
		"1.9e308",    // overflow into +Inf
		"2.5e-1#x",
	} {
		if _, _, ok := Parse64(s); ok {
			t.Errorf("Parse64(%q) certified, want decline", s)
		}
		if _, _, ok := Parse32(s); ok {
			t.Errorf("Parse32(%q) certified, want decline", s)
		}
	}
	// Exact round-to-even ties decline at the precision where they are
	// ties: 2⁵³+1 and the famous 1e23 are halfway between two binary64
	// values (2⁵³+1 rounds cleanly at binary32 geometry), and 2²⁴+1 is
	// the binary32 twin.
	for _, s := range []string{"9007199254740993", "1e23", "-1e23"} {
		if _, _, ok := Parse64(s); ok {
			t.Errorf("Parse64(%q) certified, want tie decline", s)
		}
	}
	if _, _, ok := Parse32("16777217"); ok {
		t.Error(`Parse32("16777217") certified, want tie decline`)
	}
}

// TestParseTruncatedLongInputs drives >19-digit significands, where the
// fast path must prove both truncation endpoints round identically.
func TestParseTruncatedLongInputs(t *testing.T) {
	cases := []string{
		"123456789012345678901234567890",
		"0.33333333333333333333333333333333",
		"9999999999999999999999999999e-10",
		"10000000000000000000000000000000001",
		"2.5000000000000000000000000000000001",
		"7.2057594037927933e16",
		"0.000000000000000000000000000000000000000000001234567890123456789012345",
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		var sb strings.Builder
		for j := 0; j < 25+rng.Intn(15); j++ {
			sb.WriteByte(byte('0' + rng.Intn(10)))
		}
		cases = append(cases, fmt.Sprintf("%s.%de%d", sb.String(), rng.Intn(1000), rng.Intn(60)-30))
	}
	for _, s := range cases {
		f, _, ok := Parse64(s)
		if !ok {
			continue
		}
		want, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("oracle rejects %q: %v", s, err)
		}
		if math.Float64bits(f) != math.Float64bits(want) {
			t.Fatalf("Parse64(%q) = %#x, want %#x", s, math.Float64bits(f), math.Float64bits(want))
		}
	}
}

// TestNegativeZero checks the sign of zero survives every zero spelling.
func TestNegativeZero(t *testing.T) {
	for _, s := range []string{"-0", "-0.0", "-0e10", "-0.00000e-20", "-.0", "-0.#"} {
		f, _, ok := Parse64(s)
		if !ok {
			t.Errorf("Parse64(%q) declined", s)
			continue
		}
		if math.Float64bits(f) != 1<<63 {
			t.Errorf("Parse64(%q) = %#x, want negative zero", s, math.Float64bits(f))
		}
		f32, _, ok := Parse32(s)
		if !ok {
			t.Errorf("Parse32(%q) declined", s)
			continue
		}
		if math.Float32bits(f32) != 1<<31 {
			t.Errorf("Parse32(%q) = %#x, want negative zero", s, math.Float32bits(f32))
		}
	}
}

// dropMarks maps '#' to '0' so strconv can act as an oracle for marked
// literals (the reader defines '#' to read as zero).
func dropMarks(r rune) rune {
	if r == '#' {
		return '0'
	}
	return r
}

// randomLiteral emits a literal from the shared base-10 grammar, biased
// toward the interesting regimes: short/long significands, deep
// fractions, exponents across the full table span.
func randomLiteral(rng *rand.Rand) string {
	var sb strings.Builder
	if rng.Intn(2) == 0 {
		sb.WriteByte('-')
	}
	nd := 1 + rng.Intn(21)
	dot := -1
	if rng.Intn(4) > 0 {
		dot = rng.Intn(nd)
	}
	for i := 0; i < nd; i++ {
		if i == dot {
			sb.WriteByte('.')
		}
		sb.WriteByte(byte('0' + rng.Intn(10)))
	}
	if rng.Intn(2) == 0 {
		sb.WriteByte('e')
		if rng.Intn(2) == 0 {
			sb.WriteByte('-')
		}
		fmt.Fprintf(&sb, "%d", rng.Intn(330))
	}
	return sb.String()
}

func BenchmarkParse64(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	strs := make([]string, 1024)
	for i := range strs {
		strs[i] = strconv.FormatFloat(rng.NormFloat64()*math.Pow(10, float64(rng.Intn(60)-30)), 'g', -1, 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Parse64(strs[i&1023])
	}
}
