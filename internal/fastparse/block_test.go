package fastparse

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"floatprint/internal/schryer"
)

func TestIsEightDigits(t *testing.T) {
	load := func(s string) uint64 { return binary.LittleEndian.Uint64([]byte(s)) }
	if !isEightDigits(load("01234567")) || !isEightDigits(load("99999999")) || !isEightDigits(load("00000000")) {
		t.Fatalf("isEightDigits rejected all-digit input")
	}
	// Flip each position in turn to every non-digit neighbor of the
	// digit range, plus a few characters the scanner actually meets.
	for pos := 0; pos < 8; pos++ {
		for _, c := range []byte{'0' - 1, '9' + 1, '.', 'e', '-', '+', 0x00, 0xFF, ' '} {
			b := []byte("13579246")
			b[pos] = c
			if isEightDigits(binary.LittleEndian.Uint64(b)) {
				t.Fatalf("isEightDigits accepted %q (byte %#x at %d)", b, c, pos)
			}
		}
	}
}

func TestEightDigitsValue(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 10000; i++ {
		want := uint64(rng.Intn(100000000))
		s := fmt.Sprintf("%08d", want)
		if got := eightDigitsValue(binary.LittleEndian.Uint64([]byte(s))); got != want {
			t.Fatalf("eightDigitsValue(%q) = %d, want %d", s, got, want)
		}
	}
}

// blockScanInputs is the shared stimulus set: handcrafted edge cases
// around every dp/trunc/19-digit branch, plus deterministic random
// literals that exercise long digit runs and exponents.
func blockScanInputs() []string {
	in := []string{
		"0", "-0", "+0", "000", "0.0", "-0.000", "1", "-1", "12345678",
		"123456789", "1234567890123456789", "12345678901234567890",
		"99999999999999999999999999", "10000000000000000001",
		"0.1", ".5", "-.5", "1.", "1.e5", "0.00123", "000.00123",
		"123.000", "1234567890123456789.05", "1234567890123456789.50",
		"3.141592653589793", "2.2250738585072014e-308", "1.7976931348623157e308",
		"5e-324", "4.9e-324", "1e23", "-1e23", "8.98846567431158e307",
		"1e0", "1e+0", "1e-0", "1E10", "1e-10", "123e45", "123E-45",
		"0.000000000000000000000000000000001", "1000000000000000000000000",
		// Grammar the block scanner must decline (per-value path covers it).
		"", "+", "-", ".", "-.", "1e", "1e+", "1e-", "1ex", "1.2.3",
		"1x", "x1", "1 ", " 1", "nan", "inf", "-inf", "NaN", "Infinity",
		"1#", "12##", "1#.#", "1@5", "12@-3", "1e99999999", "1e16777217",
		"--1", "++1", "1..", "..1", "1e5e5", "0x10", "1_000",
	}
	rng := rand.New(rand.NewSource(64))
	digits := "0123456789"
	for i := 0; i < 4000; i++ {
		var b []byte
		if rng.Intn(2) == 0 {
			b = append(b, "+-"[rng.Intn(2)])
		}
		for n := rng.Intn(28); n > 0; n-- {
			b = append(b, digits[rng.Intn(10)])
		}
		if rng.Intn(2) == 0 {
			b = append(b, '.')
			for n := rng.Intn(28); n > 0; n-- {
				b = append(b, digits[rng.Intn(10)])
			}
		}
		if rng.Intn(3) == 0 {
			b = append(b, "eE"[rng.Intn(2)])
			if rng.Intn(2) == 0 {
				b = append(b, "+-"[rng.Intn(2)])
			}
			for n := 1 + rng.Intn(3); n > 0; n-- {
				b = append(b, digits[rng.Intn(10)])
			}
		}
		in = append(in, string(b))
	}
	return in
}

// TestScanTokenVsScan pins the subset contract: every token the fused
// block scanner accepts, the per-value scanner accepts with the
// identical decimal — same significand, scale, digit count, sign, and
// truncation flag — so a chunked scan can never diverge from the
// certified path.  The comparison is over the consumed prefix s[:n],
// since scanToken stops at stream separators the per-value grammar
// rejects.
func TestScanTokenVsScan(t *testing.T) {
	accepted := 0
	for _, s := range blockScanInputs() {
		bd, n, bok := scanToken([]byte(s))
		if !bok {
			continue
		}
		accepted++
		if n < len(s) && !IsSep(s[n]) {
			t.Fatalf("scanToken(%q) stopped at %d on non-separator %q", s, n, s[n])
		}
		sd, sok := scan(s[:n])
		if !sok {
			t.Fatalf("scanToken accepted %q but scan declined", s[:n])
		}
		if bd != sd {
			t.Fatalf("scanToken(%q) = %+v, scan = %+v", s[:n], bd, sd)
		}
	}
	if accepted < 1000 {
		t.Fatalf("stimulus too weak: only %d accepted tokens", accepted)
	}
}

// TestParseToken64StopsAtSeparators pins the fused tokenizer contract:
// the token ends exactly at the first separator byte.
func TestParseToken64StopsAtSeparators(t *testing.T) {
	for _, c := range []struct {
		in   string
		want float64
		n    int
	}{
		{"1.5\n2.5", 1.5, 3},
		{"1.5,2.5", 1.5, 3},
		{"-7e2 8", -700, 4},
		{"3\t4", 3, 1},
		{"0.25\r\n", 0.25, 4},
		{"9", 9, 1},
	} {
		f, n, ok := ParseToken64([]byte(c.in))
		if !ok || f != c.want || n != c.n {
			t.Fatalf("ParseToken64(%q) = (%v, %d, %v), want (%v, %d, true)",
				c.in, f, n, ok, c.want, c.n)
		}
	}
	// A non-separator terminator declines the whole token.
	for _, in := range []string{"1.5x", "1.5#2", "12@3", "1e5e5"} {
		if _, _, ok := ParseToken64([]byte(in)); ok {
			t.Fatalf("ParseToken64(%q) certified, want decline", in)
		}
	}
}

// TestParseBytes64VsStrconv certifies the end-to-end block kernel
// against the strconv oracle on the grammar intersection.
func TestParseBytes64VsStrconv(t *testing.T) {
	for _, s := range blockScanInputs() {
		f, ok := ParseBytes64([]byte(s))
		if !ok {
			continue
		}
		want, err := strconv.ParseFloat(s, 64)
		if err != nil {
			// scanBytes accepts "1." / ".5"-style forms strconv also
			// accepts; anything else here would be a grammar leak.
			t.Fatalf("ParseBytes64 accepted %q but strconv rejects: %v", s, err)
		}
		if math.Float64bits(f) != math.Float64bits(want) {
			t.Fatalf("ParseBytes64(%q) = %x, strconv = %x",
				s, math.Float64bits(f), math.Float64bits(want))
		}
	}
}

func TestParseBytes64Corpus(t *testing.T) {
	vals := schryer.Corpus()
	if testing.Short() {
		vals = schryer.CorpusN(20000)
	}
	declined := 0
	for _, v := range vals {
		s := strconv.FormatFloat(v, 'g', -1, 64)
		f, ok := ParseBytes64([]byte(s))
		if !ok {
			declined++
			continue
		}
		if math.Float64bits(f) != math.Float64bits(v) {
			t.Fatalf("ParseBytes64(%q) = %x, want %x",
				s, math.Float64bits(f), math.Float64bits(v))
		}
	}
	// The decline rate must stay in the same band as the per-value fast
	// path (0.0104% over the corpus): ties and near-subnormals only.
	if max := len(vals) / 1000; declined > max {
		t.Fatalf("%d/%d declines, want <= %d", declined, len(vals), max)
	}
}

func BenchmarkParseBytes64(b *testing.B) {
	tok := []byte("3.141592653589793")
	b.SetBytes(int64(len(tok)))
	for i := 0; i < b.N; i++ {
		if _, ok := ParseBytes64(tok); !ok {
			b.Fatal("declined")
		}
	}
}
