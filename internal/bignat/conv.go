package bignat

import (
	"fmt"
	"math/bits"
)

const digitAlphabet = "0123456789abcdefghijklmnopqrstuvwxyz"

// String returns the decimal representation of n.
func (n Nat) String() string { return n.Text(10) }

// Text returns the representation of n in the given base, 2 <= base <= 36,
// using lower-case letters for digits >= 10.
func (n Nat) Text(base int) string {
	if base < 2 || base > 36 {
		panic(fmt.Sprintf("bignat: illegal base %d", base))
	}
	if len(n) == 0 {
		return "0"
	}

	// Power-of-two bases convert limb-by-limb without division.
	if base&(base-1) == 0 {
		return n.textPow2(uint(bits.TrailingZeros(uint(base))))
	}

	// Chunked repeated division: divide by the largest power of base that
	// fits in a Word so each DivModWord peels off many digits at once.
	chunkDigits, chunkValue := chunkFor(base)
	var out []byte
	x := n
	for !x.IsZero() {
		var r Word
		x, r = DivModWord(x, chunkValue)
		for i := 0; i < chunkDigits; i++ {
			out = append(out, digitAlphabet[r%Word(base)])
			r /= Word(base)
		}
	}
	// Trim the leading zeros introduced by the final, partial chunk.
	i := len(out) - 1
	for i > 0 && out[i] == '0' {
		i--
	}
	out = out[:i+1]
	reverse(out)
	return string(out)
}

// textPow2 converts n to base 2^shift by walking the bits directly.
func (n Nat) textPow2(shift uint) string {
	mask := Word(1)<<shift - 1
	ndigits := (n.BitLen() + int(shift) - 1) / int(shift)
	out := make([]byte, ndigits)
	for i := 0; i < ndigits; i++ {
		bitPos := uint(i) * shift
		limb, off := int(bitPos/wordBits), bitPos%wordBits
		d := n[limb] >> off
		if off+shift > wordBits && limb+1 < len(n) {
			d |= n[limb+1] << (wordBits - off)
		}
		out[ndigits-1-i] = digitAlphabet[d&mask]
	}
	return string(out)
}

// chunkFor returns the largest k and base**k such that base**k fits in a
// Word, for chunked radix conversion.
func chunkFor(base int) (digits int, value Word) {
	digits, value = 1, Word(base)
	for {
		hi, lo := bits.Mul(uint(value), uint(base))
		if hi != 0 {
			return digits, value
		}
		digits, value = digits+1, Word(lo)
	}
}

func reverse(b []byte) {
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
}

// ParseText parses a natural number in the given base, 2 <= base <= 36,
// accepting the digits 0-9 and letters in either case.  It is the inverse
// of Text and rejects empty strings and out-of-range digits.
func ParseText(s string, base int) (Nat, error) {
	if base < 2 || base > 36 {
		return nil, fmt.Errorf("bignat: illegal base %d", base)
	}
	if len(s) == 0 {
		return nil, fmt.Errorf("bignat: empty string")
	}
	chunkDigits, _ := chunkFor(base)
	var n Nat
	for start := 0; start < len(s); {
		end := min(start+chunkDigits, len(s))
		var chunk, scale Word = 0, 1
		for _, c := range []byte(s[start:end]) {
			d, err := digitValue(c)
			if err != nil {
				return nil, err
			}
			if d >= base {
				return nil, fmt.Errorf("bignat: digit %q out of range for base %d", c, base)
			}
			chunk = chunk*Word(base) + Word(d)
			scale *= Word(base)
		}
		n = MulAddWord(n, scale, chunk)
		start = end
	}
	return n, nil
}

func digitValue(c byte) (int, error) {
	switch {
	case '0' <= c && c <= '9':
		return int(c - '0'), nil
	case 'a' <= c && c <= 'z':
		return int(c-'a') + 10, nil
	case 'A' <= c && c <= 'Z':
		return int(c-'A') + 10, nil
	}
	return 0, fmt.Errorf("bignat: invalid digit %q", c)
}
