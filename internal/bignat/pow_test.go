package bignat

import (
	"math/rand"
	"sync"
	"testing"
)

// TestPowCacheConcurrentGrow exercises the lock-free read path and the
// copy-on-grow publication under many goroutines racing to extend the
// table in interleaved order.  Run under -race to certify the atomic
// snapshot discipline.
func TestPowCacheConcurrentGrow(t *testing.T) {
	c := NewPowCache(7)
	want := make([]Nat, 301)
	want[0] = Nat{1}
	for i := 1; i <= 300; i++ {
		want[i] = Mul(want[i-1], Nat{7})
	}

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				n := uint(rng.Intn(301))
				if got := c.Pow(n); Cmp(got, want[n]) != 0 {
					t.Errorf("Pow(%d) wrong under concurrency", n)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()

	if c.Cached() != 301 {
		t.Errorf("Cached() = %d, want 301", c.Cached())
	}
}

// TestPowCachePreload pins the steady-state guarantee: after Preload(n),
// every Pow up to n is served from the existing snapshot without growth.
func TestPowCachePreload(t *testing.T) {
	c := NewPowCache(10)
	c.Preload(50)
	if got := c.Cached(); got != 51 {
		t.Fatalf("Cached() after Preload(50) = %d, want 51", got)
	}
	snap := c.Pow(50)
	for i := uint(0); i <= 50; i++ {
		c.Pow(i)
	}
	if c.Cached() != 51 {
		t.Errorf("reads below the preload grew the cache to %d entries", c.Cached())
	}
	// The returned Nat must be the shared snapshot entry, not a copy per
	// call (the read path allocates nothing).
	if again := c.Pow(50); &again[0] != &snap[0] {
		t.Errorf("Pow(50) returned a fresh copy; read path should share the snapshot")
	}
}
