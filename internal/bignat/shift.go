package bignat

// Shl returns x << s.
func Shl(x Nat, s uint) Nat {
	if len(x) == 0 || s == 0 {
		return x.Clone()
	}
	limbs, off := int(s/wordBits), s%wordBits
	z := make(Nat, len(x)+limbs+1)
	if off == 0 {
		copy(z[limbs:], x)
	} else {
		var carry Word
		for i, xi := range x {
			z[limbs+i] = xi<<off | carry
			carry = xi >> (wordBits - off)
		}
		z[limbs+len(x)] = carry
	}
	return norm(z)
}

// Shr returns x >> s.
func Shr(x Nat, s uint) Nat {
	limbs, off := int(s/wordBits), s%wordBits
	if limbs >= len(x) {
		return nil
	}
	z := make(Nat, len(x)-limbs)
	if off == 0 {
		copy(z, x[limbs:])
	} else {
		for i := 0; i < len(z); i++ {
			z[i] = x[limbs+i] >> off
			if limbs+i+1 < len(x) {
				z[i] |= x[limbs+i+1] << (wordBits - off)
			}
		}
	}
	return norm(z)
}
