// Package bignat implements arbitrary-precision natural-number arithmetic.
//
// It is the "high-precision integer arithmetic" substrate that Section 3 of
// Burger & Dybvig (PLDI 1996) converts the floating-point printing algorithm
// to use, replacing exact rational arithmetic.  The package is deliberately
// self-contained (it does not use math/big except in its tests, where
// math/big serves as an oracle) and provides exactly the operation mix the
// printing and reading algorithms need: addition, subtraction, comparison,
// shifts, multiplication (schoolbook and Karatsuba), division with remainder
// (Knuth's Algorithm D), exponentiation, and radix conversion.
//
// Values are immutable from the caller's perspective: every operation
// returns a fresh Nat and never modifies its operands.  A Nat is a
// little-endian slice of Words with no high zero limbs; the canonical zero
// is the nil (or empty) slice.
package bignat

import "math/bits"

// A Word is a single limb of a Nat.  It is the platform's native unsigned
// word so that math/bits carry/borrow intrinsics apply directly.
type Word = uint

// wordBits is the size of a Word in bits.
const wordBits = bits.UintSize

// A Nat is an arbitrary-precision natural number stored as little-endian
// limbs: the value is sum over i of n[i] << (i*wordBits).  The slice never
// has trailing (most-significant) zero limbs; zero is len(n) == 0.
type Nat []Word

// norm removes high zero limbs, restoring the canonical representation.
func norm(n Nat) Nat {
	i := len(n)
	for i > 0 && n[i-1] == 0 {
		i--
	}
	return n[:i]
}

// FromUint64 returns the Nat representing x.
func FromUint64(x uint64) Nat {
	if x == 0 {
		return nil
	}
	if wordBits == 64 || x <= 1<<32-1 {
		return Nat{Word(x)}
	}
	// 32-bit platform with a value that needs two limbs.
	return norm(Nat{Word(x), Word(x >> 32)})
}

// Uint64 returns the value of n and whether it fits in a uint64.
func (n Nat) Uint64() (uint64, bool) {
	switch len(n) {
	case 0:
		return 0, true
	case 1:
		return uint64(n[0]), true
	case 2:
		if wordBits == 32 {
			return uint64(n[1])<<32 | uint64(n[0]), true
		}
	}
	return 0, false
}

// IsZero reports whether n == 0.
func (n Nat) IsZero() bool { return len(n) == 0 }

// IsOne reports whether n == 1.
func (n Nat) IsOne() bool { return len(n) == 1 && n[0] == 1 }

// Clone returns a copy of n that shares no storage with it.
func (n Nat) Clone() Nat {
	if len(n) == 0 {
		return nil
	}
	c := make(Nat, len(n))
	copy(c, n)
	return c
}

// BitLen returns the length of n in bits: the smallest k such that
// n < 2^k.  BitLen(0) == 0.
func (n Nat) BitLen() int {
	if len(n) == 0 {
		return 0
	}
	return (len(n)-1)*wordBits + bits.Len(n[len(n)-1])
}

// Bit returns bit i of n (0 or 1).  Bits beyond BitLen are zero.
func (n Nat) Bit(i int) uint {
	if i < 0 {
		panic("bignat: negative bit index")
	}
	limb, off := i/wordBits, i%wordBits
	if limb >= len(n) {
		return 0
	}
	return uint(n[limb]>>off) & 1
}

// TrailingZeroBits returns the number of consecutive zero bits at the low
// end of n.  TrailingZeroBits(0) == 0 by convention.
func (n Nat) TrailingZeroBits() int {
	for i, w := range n {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros(w)
		}
	}
	return 0
}

// Cmp compares x and y, returning -1 if x < y, 0 if x == y, +1 if x > y.
func Cmp(x, y Nat) int {
	switch {
	case len(x) < len(y):
		return -1
	case len(x) > len(y):
		return 1
	}
	for i := len(x) - 1; i >= 0; i-- {
		switch {
		case x[i] < y[i]:
			return -1
		case x[i] > y[i]:
			return 1
		}
	}
	return 0
}

// CmpWord compares x with the single word w.
func CmpWord(x Nat, w Word) int {
	switch {
	case len(x) > 1:
		return 1
	case len(x) == 0:
		if w == 0 {
			return 0
		}
		return -1
	}
	switch {
	case x[0] < w:
		return -1
	case x[0] > w:
		return 1
	}
	return 0
}
