package bignat

import "math/bits"

// In-place variants of the hot-loop operations.
//
// The digit-generation loop of the printing algorithm performs a handful
// of operations per digit (r ×= B, m± ×= B, r divmod s); with the
// functional API each allocates.  The *InPlace functions below mutate
// their first operand instead, under an explicit ownership contract: the
// caller must hold the only reference to that Nat (in particular it must
// not come from a PowCache).  They return the resulting Nat because the
// backing array may still need to grow by one limb.

// MulWordInPlace multiplies x by w in place and returns the result, which
// reuses x's storage when the product fits.
func MulWordInPlace(x Nat, w Word) Nat {
	if len(x) == 0 || w == 0 {
		return x[:0]
	}
	if w == 1 {
		return x
	}
	carry := mulAddVWW(x, x, w, 0)
	if carry != 0 {
		x = append(x, carry)
	}
	return x
}

// AddWordInPlace adds w to x in place.
func AddWordInPlace(x Nat, w Word) Nat {
	carry := w
	for i := range x {
		if carry == 0 {
			return x
		}
		x[i], carry = addWW(x[i], carry, 0)
	}
	if carry != 0 {
		x = append(x, carry)
	}
	return x
}

// SubInPlace computes x -= y in place (x must be >= y) and returns the
// normalized result.
func SubInPlace(x, y Nat) Nat {
	if len(x) < len(y) {
		panic("bignat: SubInPlace underflow")
	}
	var borrow Word
	i := 0
	for ; i < len(y); i++ {
		x[i], borrow = subWW(x[i], y[i], borrow)
	}
	for ; i < len(x) && borrow != 0; i++ {
		x[i], borrow = subWW(x[i], 0, borrow)
	}
	if borrow != 0 {
		panic("bignat: SubInPlace underflow")
	}
	return norm(x)
}

// AddInto computes x + y into dst's storage (growing it as needed) and
// returns the result.  dst must not alias y; dst may alias x.
func AddInto(dst, x, y Nat) Nat {
	if len(x) < len(y) {
		x, y = y, x
	}
	n := len(x) + 1
	if cap(dst) < n {
		dst = make(Nat, n)
	} else {
		dst = dst[:n]
	}
	var carry Word
	i := 0
	for ; i < len(y); i++ {
		dst[i], carry = addWW(x[i], y[i], carry)
	}
	for ; i < len(x); i++ {
		dst[i], carry = addWW(x[i], 0, carry)
	}
	dst[len(x)] = carry
	return norm(dst)
}

// MulInto computes x * y into dst's storage (growing it as needed) and
// returns the normalized result.  dst must alias neither x nor y.  Operands
// at or above the Karatsuba threshold fall back to the allocating Mul —
// the printing hot loop never reaches that size, and correctness there
// matters more than buffer reuse.
func MulInto(dst, x, y Nat) Nat {
	if len(x) == 0 || len(y) == 0 {
		return dst[:0]
	}
	if len(y) > len(x) {
		x, y = y, x
	}
	if len(y) >= karatsubaThreshold {
		return Mul(x, y)
	}
	n := len(x) + len(y)
	if cap(dst) < n {
		dst = make(Nat, n)
	} else {
		dst = dst[:n]
	}
	if len(y) == 1 {
		dst[len(x)] = mulAddVWW(dst[:len(x)], x, y[0], 0)
		return norm(dst)
	}
	for i := range dst {
		dst[i] = 0
	}
	for j, yj := range y {
		if yj == 0 {
			continue
		}
		dst[j+len(x)] += addMulVVW(dst[j:j+len(x)], x, yj)
	}
	return norm(dst)
}

// CopyInto copies x into dst's storage (growing it as needed) and returns
// the result, which shares no limbs with x.
func CopyInto(dst, x Nat) Nat {
	return append(dst[:0], x...)
}

// subMulVW computes x -= y*w in place, returning the final borrow (nonzero
// when y*w > x, in which case x holds the two's-complement-style residue
// and the caller must add back).  len(x) must be >= len(y).
func subMulVW(x, y Nat, w Word) (borrow Word) {
	var mulCarry uint
	var subBorrow Word
	i := 0
	for ; i < len(y); i++ {
		hi, lo := bits.Mul(uint(y[i]), uint(w))
		lo, c := bits.Add(lo, mulCarry, 0)
		mulCarry = hi + c
		x[i], subBorrow = subWW(x[i], Word(lo), subBorrow)
	}
	for ; i < len(x); i++ {
		x[i], subBorrow = subWW(x[i], Word(mulCarry), subBorrow)
		mulCarry = 0
	}
	return subBorrow + Word(mulCarry)
}

// addVVInPlace computes x += y in place (len(x) >= len(y) required) and
// returns the final carry.
func addVVInPlace(x, y Nat) (carry Word) {
	i := 0
	for ; i < len(y); i++ {
		x[i], carry = addWW(x[i], y[i], carry)
	}
	for ; i < len(x) && carry != 0; i++ {
		x[i], carry = addWW(x[i], 0, carry)
	}
	return carry
}

// DivModSmallQuotientInPlace divides x by y under the small-quotient
// guarantee of DivModSmallQuotient, storing the remainder in x's storage
// (x is consumed) and returning the quotient word with the remainder.
func DivModSmallQuotientInPlace(x, y Nat) (q Word, r Nat) {
	if len(y) == 0 {
		panic("bignat: division by zero")
	}
	if Cmp(x, y) < 0 {
		return 0, x
	}
	ex := x.BitLen()
	if ex-y.BitLen() >= wordBits-1 {
		panic("bignat: DivModSmallQuotientInPlace quotient does not fit in a Word")
	}
	est := topBitsAt(x, ex) / topBitsAt(y, ex)
	if est == 0 {
		est = 1
	}
	// x -= est*y; an overestimate (by at most a couple of units) shows up
	// as outstanding borrow, repaid by adding y back — each add-back whose
	// carry reaches the top cancels one unit of borrow.
	work := x
	borrow := subMulVW(work, y, Word(est))
	for borrow != 0 {
		est--
		borrow -= addVVInPlace(work, y)
	}
	r = norm(work)
	for Cmp(r, y) >= 0 {
		r = SubInPlace(r, y)
		est++
	}
	return Word(est), r
}
