package bignat

import (
	"math/rand"
	"testing"
)

func TestMulWordInPlaceMatchesMulWord(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for i := 0; i < 3000; i++ {
		x := randNat(r, r.Intn(6))
		w := Word(r.Uint64())
		want := MulWord(x, w)
		got := MulWordInPlace(x.Clone(), w)
		if Cmp(got, want) != 0 {
			t.Fatalf("MulWordInPlace(%v, %d) = %v, want %v", toBig(x), w, toBig(got), toBig(want))
		}
	}
}

func TestMulWordInPlaceReusesStorage(t *testing.T) {
	x := make(Nat, 2, 4)
	x[0], x[1] = 7, 9
	got := MulWordInPlace(x, 3)
	if &got[0] != &x[0] {
		t.Errorf("storage not reused")
	}
	if Cmp(got, MulWord(Nat{7, 9}, 3)) != 0 {
		t.Errorf("wrong product")
	}
	// Identity and zero fast paths.
	if y := MulWordInPlace(Nat{5}, 1); len(y) != 1 || y[0] != 5 {
		t.Errorf("×1 wrong")
	}
	if y := MulWordInPlace(Nat{5}, 0); len(y) != 0 {
		t.Errorf("×0 wrong")
	}
}

func TestAddWordInPlace(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 2000; i++ {
		x := randNat(r, r.Intn(5))
		w := Word(r.Uint64())
		want := AddWord(x, w)
		got := AddWordInPlace(x.Clone(), w)
		if Cmp(got, want) != 0 {
			t.Fatalf("AddWordInPlace mismatch")
		}
	}
	// Carry ripple through all-ones limbs.
	x := Nat{^Word(0), ^Word(0)}
	got := AddWordInPlace(x.Clone(), 1)
	if Cmp(got, AddWord(x, 1)) != 0 {
		t.Errorf("ripple carry wrong")
	}
}

func TestSubInPlace(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for i := 0; i < 3000; i++ {
		y := randNat(r, r.Intn(5))
		x := Add(y, randNat(r, r.Intn(5)))
		want := Sub(x, y)
		got := SubInPlace(x.Clone(), y)
		if Cmp(got, want) != 0 {
			t.Fatalf("SubInPlace mismatch")
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("SubInPlace underflow did not panic")
		}
	}()
	SubInPlace(Nat{1}, Nat{2})
}

func TestAddInto(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 3000; i++ {
		x := randNat(r, r.Intn(5))
		y := randNat(r, r.Intn(5))
		want := Add(x, y)
		var dst Nat
		switch r.Intn(3) {
		case 0: // nil dst
		case 1: // spare capacity
			dst = make(Nat, 0, 12)
		case 2: // dst aliases x
			x = x.Clone()
			dst = x
		}
		got := AddInto(dst, x, y)
		if Cmp(got, want) != 0 {
			t.Fatalf("AddInto mismatch: %v + %v", toBig(x), toBig(y))
		}
	}
}

func TestAddIntoReusesCapacity(t *testing.T) {
	dst := make(Nat, 0, 8)
	got := AddInto(dst, Nat{1, 2}, Nat{3})
	if &got[0] != &dst[:1][0] {
		t.Errorf("AddInto did not reuse dst storage")
	}
}

func TestDivModSmallQuotientInPlace(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	for i := 0; i < 5000; i++ {
		y := randNat(r, 1+r.Intn(6))
		q := Word(r.Intn(100))
		rem := randSmaller(r, y)
		x := Add(MulWord(y, q), rem)
		gotQ, gotR := DivModSmallQuotientInPlace(x.Clone(), y)
		if gotQ != q || Cmp(gotR, rem) != 0 {
			t.Fatalf("in-place divmod: got q=%d r=%v, want q=%d r=%v (y=%v)",
				gotQ, toBig(gotR), q, toBig(rem), toBig(y))
		}
	}
}

func TestDivModSmallQuotientInPlaceEdges(t *testing.T) {
	// x < y leaves x untouched with q=0.
	x := Nat{5}
	q, r := DivModSmallQuotientInPlace(x, Nat{9})
	if q != 0 || Cmp(r, Nat{5}) != 0 {
		t.Errorf("x<y case wrong: %d %v", q, r)
	}
	// Exact multiples leave zero remainders.
	y := Nat{^Word(0), 3}
	q, r = DivModSmallQuotientInPlace(MulWord(y, 35), y)
	if q != 35 || !r.IsZero() {
		t.Errorf("exact multiple: q=%d r=%v", q, toBig(r))
	}
	// Divide by zero panics.
	defer func() {
		if recover() == nil {
			t.Errorf("divide by zero did not panic")
		}
	}()
	DivModSmallQuotientInPlace(Nat{1}, nil)
}

func TestDivModSmallQuotientInPlaceStress(t *testing.T) {
	// Divisors with extreme top words push the estimate to its worst case
	// and force the add-back path.
	r := rand.New(rand.NewSource(25))
	for i := 0; i < 5000; i++ {
		y := randNat(r, 2+r.Intn(3))
		switch r.Intn(3) {
		case 0:
			y[len(y)-1] = 1
		case 1:
			y[len(y)-1] = ^Word(0)
		}
		y = norm(y)
		if y.IsZero() {
			continue
		}
		q := Word(r.Intn(37))
		rem := randSmaller(r, y)
		x := Add(MulWord(y, q), rem)
		gotQ, gotR := DivModSmallQuotientInPlace(x.Clone(), y)
		if gotQ != q || Cmp(gotR, rem) != 0 {
			t.Fatalf("stress divmod mismatch: y=%v q=%d", toBig(y), q)
		}
	}
}

func BenchmarkDivModSmallQuotientInPlace(b *testing.B) {
	r := rand.New(rand.NewSource(26))
	y := randNat(r, 20)
	x := Add(MulWord(y, 7), randSmaller(r, y))
	buf := make(Nat, len(x), len(x)+1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:len(x)]
		copy(buf, x)
		DivModSmallQuotientInPlace(buf, y)
	}
}
