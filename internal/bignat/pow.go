package bignat

import (
	"sync"
	"sync/atomic"
)

// Pow returns x**n computed by binary exponentiation.
// Pow(0, 0) == 1, matching the usual convention for integer powers.
func Pow(x Nat, n uint) Nat {
	result := Nat{1}
	base := x.Clone()
	for n > 0 {
		if n&1 == 1 {
			result = Mul(result, base)
		}
		n >>= 1
		if n > 0 {
			base = Mul(base, base)
		}
	}
	return result
}

// PowUint returns b**n for a single-word base.
func PowUint(b uint64, n uint) Nat {
	return Pow(FromUint64(b), n)
}

// PowCache memoizes successive powers of a fixed base, mirroring the
// expt-t lookup table from Figure 2 of the paper ("a table to look up the
// value of 10^k for 0 <= k <= 325").  Unlike the paper's fixed-size vector
// it grows on demand and works for any base, so it also serves bases 2-36
// and the wider synthetic formats.  The zero value is not usable; call
// NewPowCache.
//
// The cache is safe for concurrent use and its read path is lock-free: the
// table of known powers is an immutable snapshot published through an
// atomic pointer.  Growing the table copies the slice of (shared, already
// immutable) power values, extends the copy, and atomically publishes it;
// only concurrent growers serialize on a mutex.  A cache preloaded past
// the largest power its workload needs (see Preload) therefore never takes
// a lock in steady state.
type PowCache struct {
	base Nat
	snap atomic.Pointer[[]Nat] // (*snap)[i] == base**i; immutable once published
	mu   sync.Mutex            // serializes growth only; readers never take it
}

// NewPowCache returns a cache of powers of base.
func NewPowCache(base uint64) *PowCache {
	c := &PowCache{base: FromUint64(base)}
	p := []Nat{{1}}
	c.snap.Store(&p)
	return c
}

// Pow returns base**n, computing and caching any powers not yet known.
// The returned Nat is shared with the cache and must not be modified;
// all bignat operations treat operands as read-only, so normal use is safe.
func (c *PowCache) Pow(n uint) Nat {
	p := *c.snap.Load()
	if n < uint(len(p)) {
		return p[n]
	}
	return c.grow(n)
}

// grow extends the table to cover n under the grow lock and publishes the
// extended copy.  The previous snapshot's entries are shared, not copied:
// a Nat in the table is immutable for its lifetime.
func (c *PowCache) grow(n uint) Nat {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := *c.snap.Load()
	if n < uint(len(p)) {
		return p[n] // another grower got here first
	}
	np := make([]Nat, n+1)
	copy(np, p)
	for i := len(p); i <= int(n); i++ {
		np[i] = Mul(np[i-1], c.base)
	}
	c.snap.Store(&np)
	return np[n]
}

// Preload ensures every power up to and including n is cached, so that
// later Pow calls up to n are lock-free reads.  Callers that know their
// workload's largest exponent (e.g. base-10 conversion of binary64 values)
// preload once at startup and never pay the grow lock again.
func (c *PowCache) Preload(n uint) {
	c.Pow(n)
}

// Cached reports how many powers (exponents 0..Cached()-1) are currently
// available without growing.
func (c *PowCache) Cached() int {
	return len(*c.snap.Load())
}

// Base returns the cache's base as a Nat (shared, read-only).
func (c *PowCache) Base() Nat { return c.base }
