package bignat

// Pow returns x**n computed by binary exponentiation.
// Pow(0, 0) == 1, matching the usual convention for integer powers.
func Pow(x Nat, n uint) Nat {
	result := Nat{1}
	base := x.Clone()
	for n > 0 {
		if n&1 == 1 {
			result = Mul(result, base)
		}
		n >>= 1
		if n > 0 {
			base = Mul(base, base)
		}
	}
	return result
}

// PowUint returns b**n for a single-word base.
func PowUint(b uint64, n uint) Nat {
	return Pow(FromUint64(b), n)
}

// PowCache memoizes successive powers of a fixed base, mirroring the
// expt-t lookup table from Figure 2 of the paper ("a table to look up the
// value of 10^k for 0 <= k <= 325").  Unlike the paper's fixed-size vector
// it grows on demand and works for any base, so it also serves bases 2-36
// and the wider synthetic formats.  The zero value is not usable; call
// NewPowCache.
type PowCache struct {
	base   Nat
	powers []Nat // powers[i] == base**i
}

// NewPowCache returns a cache of powers of base.
func NewPowCache(base uint64) *PowCache {
	return &PowCache{
		base:   FromUint64(base),
		powers: []Nat{{1}},
	}
}

// Pow returns base**n, computing and caching any powers not yet known.
// The returned Nat is shared with the cache and must not be modified;
// all bignat operations treat operands as read-only, so normal use is safe.
func (c *PowCache) Pow(n uint) Nat {
	for uint(len(c.powers)) <= n {
		last := c.powers[len(c.powers)-1]
		c.powers = append(c.powers, Mul(last, c.base))
	}
	return c.powers[n]
}

// Base returns the cache's base as a Nat (shared, read-only).
func (c *PowCache) Base() Nat { return c.base }
