package bignat

import "math/bits"

// karatsubaThreshold is the operand length (in limbs) above which Mul
// switches from schoolbook multiplication to Karatsuba's algorithm.  The
// printing algorithm's operands are small (a double's scaled numerator is at
// most ~40 limbs), so schoolbook usually wins; the threshold mainly matters
// for the bignat ablation benchmark and for users with huge exponent powers.
var karatsubaThreshold = 24

// MulWord returns x * w.
func MulWord(x Nat, w Word) Nat {
	if len(x) == 0 || w == 0 {
		return nil
	}
	if w == 1 {
		return x.Clone()
	}
	z := make(Nat, len(x)+1)
	z[len(x)] = mulAddVWW(z[:len(x)], x, w, 0)
	return norm(z)
}

// MulAddWord returns x*w + a in a single pass.
func MulAddWord(x Nat, w, a Word) Nat {
	if len(x) == 0 {
		return FromUint64(uint64(a))
	}
	z := make(Nat, len(x)+1)
	z[len(x)] = mulAddVWW(z[:len(x)], x, w, a)
	return norm(z)
}

// mulAddVWW computes z = x*w + a, storing the low len(x) words into z and
// returning the carry word.  z and x must have equal length; z may alias x.
func mulAddVWW(z, x Nat, w, a Word) (carry Word) {
	carry = a
	for i, xi := range x {
		hi, lo := bits.Mul(uint(xi), uint(w))
		lo, c := bits.Add(lo, uint(carry), 0)
		z[i] = Word(lo)
		carry = Word(hi + c)
	}
	return carry
}

// addMulVVW computes z += x*w in place and returns the final carry.
// len(z) must be >= len(x).
func addMulVVW(z, x Nat, w Word) (carry Word) {
	for i, xi := range x {
		hi, lo := bits.Mul(uint(xi), uint(w))
		lo, c1 := bits.Add(lo, uint(z[i]), 0)
		lo, c2 := bits.Add(lo, uint(carry), 0)
		z[i] = Word(lo)
		carry = Word(hi + c1 + c2)
	}
	return carry
}

// Mul returns x * y.
func Mul(x, y Nat) Nat {
	if len(x) == 0 || len(y) == 0 {
		return nil
	}
	if len(x) == 1 {
		return MulWord(y, x[0])
	}
	if len(y) == 1 {
		return MulWord(x, y[0])
	}
	if len(x) >= karatsubaThreshold && len(y) >= karatsubaThreshold {
		return karatsuba(x, y)
	}
	return mulSchoolbook(x, y)
}

// mulSchoolbook is the O(n*m) textbook multiplication.
func mulSchoolbook(x, y Nat) Nat {
	z := make(Nat, len(x)+len(y))
	for j, yj := range y {
		if yj == 0 {
			continue
		}
		z[j+len(x)] += addMulVVW(z[j:j+len(x)], x, yj)
	}
	return norm(z)
}

// karatsuba multiplies x and y by splitting each at half the length of the
// shorter operand: x = x1*2^(m*W) + x0, y likewise, and
// x*y = x1*y1*2^(2mW) + ((x0+x1)*(y0+y1) - x1*y1 - x0*y0)*2^(mW) + x0*y0,
// reducing one multiplication to three of half size.
func karatsuba(x, y Nat) Nat {
	n := min(len(x), len(y))
	m := n / 2

	x0, x1 := norm(x[:m].Clone()), x[m:].Clone()
	y0, y1 := norm(y[:m].Clone()), y[m:].Clone()

	z0 := Mul(x0, y0)
	z2 := Mul(x1, y1)
	mid := Mul(Add(x0, x1), Add(y0, y1))
	mid = Sub(Sub(mid, z0), z2)

	z := Add(z0, shlLimbs(mid, m))
	return Add(z, shlLimbs(z2, 2*m))
}

// shlLimbs returns x shifted left by n whole limbs (x * 2^(n*wordBits)).
func shlLimbs(x Nat, n int) Nat {
	if len(x) == 0 || n == 0 {
		return x
	}
	z := make(Nat, len(x)+n)
	copy(z[n:], x)
	return z
}

// Sqr returns x * x.  It currently delegates to Mul; the symmetric fast
// path is not needed by the printing algorithms but the entry point keeps
// call sites readable.
func Sqr(x Nat) Nat { return Mul(x, x) }
