package bignat

import "math/bits"

// DivModWord returns the quotient and remainder of x / w.
// It panics if w == 0.
func DivModWord(x Nat, w Word) (q Nat, r Word) {
	if w == 0 {
		panic("bignat: division by zero")
	}
	if len(x) == 0 {
		return nil, 0
	}
	q = make(Nat, len(x))
	var rem uint
	for i := len(x) - 1; i >= 0; i-- {
		var qi uint
		qi, rem = bits.Div(rem, uint(x[i]), uint(w))
		q[i] = Word(qi)
	}
	return norm(q), Word(rem)
}

// DivMod returns the quotient and remainder of x / y using Knuth's
// Algorithm D (TAOCP vol. 2, 4.3.1).  It panics if y == 0.
func DivMod(x, y Nat) (q, r Nat) {
	switch {
	case len(y) == 0:
		panic("bignat: division by zero")
	case len(y) == 1:
		q, rw := DivModWord(x, y[0])
		return q, FromUint64(uint64(rw))
	case Cmp(x, y) < 0:
		return nil, x.Clone()
	}

	n := len(y)
	m := len(x) - n

	// D1: normalize so that the divisor's top bit is set, which keeps the
	// quotient-digit estimate within one of the true digit.
	shift := uint(bits.LeadingZeros(uint(y[n-1])))
	vn := Shl(y, shift)
	un := make(Nat, len(x)+1)
	copy(un, Shl(x, shift))
	// Shl trims high zeros; re-extend to exactly len(x)+1 limbs.
	// (copy above already zero-fills the remainder of un.)

	q = make(Nat, m+1)
	vTop := uint(vn[n-1])
	vNext := uint(vn[n-2])

	for j := m; j >= 0; j-- {
		// D3: estimate q̂ = (un[j+n]·B + un[j+n-1]) / vn[n-1], then refine
		// until q̂·vn[n-2] <= r̂·B + un[j+n-2].
		var qhat, rhat uint
		if uint(un[j+n]) == vTop {
			qhat = ^uint(0) // B-1
			rhat = uint(un[j+n-1]) + vTop
			// If rhat overflowed past B the test below is vacuously
			// satisfied, which the overflow check handles.
			if rhat < vTop {
				goto haveQhat
			}
		} else {
			qhat, rhat = bits.Div(uint(un[j+n]), uint(un[j+n-1]), vTop)
		}
		for {
			hi, lo := bits.Mul(qhat, vNext)
			if hi < rhat || (hi == rhat && lo <= uint(un[j+n-2])) {
				break
			}
			qhat--
			rhat += vTop
			if rhat < vTop { // rhat >= B: test can no longer fail
				break
			}
		}
	haveQhat:

		// D4: multiply and subtract: un[j..j+n] -= qhat * vn.
		var borrow Word
		var mulCarry uint
		for i := 0; i < n; i++ {
			hi, lo := bits.Mul(qhat, uint(vn[i]))
			lo, c := bits.Add(lo, mulCarry, 0)
			mulCarry = hi + c
			un[j+i], borrow = subWW(un[j+i], Word(lo), borrow)
		}
		un[j+n], borrow = subWW(un[j+n], Word(mulCarry), borrow)

		// D5/D6: the estimate was one too large (probability ~2/B): add the
		// divisor back and decrement the quotient digit.
		if borrow != 0 {
			qhat--
			var carry Word
			for i := 0; i < n; i++ {
				un[j+i], carry = addWW(un[j+i], vn[i], carry)
			}
			un[j+n] += carry
		}
		q[j] = Word(qhat)
	}

	// D8: denormalize the remainder.
	r = Shr(norm(un[:n]), shift)
	return norm(q), r
}

// Div returns x / y, discarding the remainder.
func Div(x, y Nat) Nat {
	q, _ := DivMod(x, y)
	return q
}

// Mod returns x mod y.
func Mod(x, y Nat) Nat {
	_, r := DivMod(x, y)
	return r
}

// DivModSmallQuotient returns (q, r) for x / y under the caller's guarantee
// that the quotient is small (in the digit-generation loop of the printing
// algorithm the quotient is a base-B digit, B <= 36).  It estimates the
// quotient from the top word-width bits of both operands and corrects by at
// most a few single subtractions, replacing the full Algorithm D
// bookkeeping with one MulWord and one Sub in the common case.  It panics
// if the quotient does not fit in a Word.
func DivModSmallQuotient(x, y Nat) (q Word, r Nat) {
	if len(y) == 0 {
		panic("bignat: division by zero")
	}
	if Cmp(x, y) < 0 {
		return 0, x.Clone()
	}
	ex := x.BitLen()
	if ex-y.BitLen() >= wordBits-1 {
		panic("bignat: DivModSmallQuotient quotient does not fit in a Word")
	}
	// Align both operands to the same absolute bit position ex and compare
	// their top words.  xt/yt are floor(x / 2^(ex-W)) and floor(y / 2^(ex-W)),
	// so xt/(yt+1) <= q <= xt/yt + 1: the estimate is off by at most ~1 in
	// each direction for the small quotients we care about.
	xt := topBitsAt(x, ex)
	yt := topBitsAt(y, ex)
	est := xt / yt
	if est == 0 {
		est = 1
	}
	t := MulWord(y, Word(est))
	for Cmp(t, x) > 0 {
		est--
		t = Sub(t, y)
	}
	r = Sub(x, t)
	for Cmp(r, y) >= 0 {
		est++
		r = Sub(r, y)
	}
	return Word(est), r
}

// topBitsAt returns the word-width bits of n that end at absolute bit
// position pos, i.e. floor(n / 2^(pos-wordBits)), assuming pos >= n.BitLen()
// and pos >= 1.  When pos < wordBits the value is shifted up so all callers
// compare at the same scale.
func topBitsAt(n Nat, pos int) uint {
	if pos <= wordBits {
		var v uint
		if len(n) > 0 {
			v = uint(n[0])
		}
		if len(n) > 1 {
			panic("bignat: topBitsAt position below operand length")
		}
		return v << (wordBits - pos)
	}
	shift := uint(pos - wordBits)
	limb, off := int(shift/wordBits), shift%wordBits
	var lo, hi uint
	if limb < len(n) {
		lo = uint(n[limb])
	}
	if limb+1 < len(n) {
		hi = uint(n[limb+1])
	}
	if off == 0 {
		return lo
	}
	return lo>>off | hi<<(wordBits-off)
}
