package bignat

import "math/bits"

// Add returns x + y.
func Add(x, y Nat) Nat {
	if len(x) < len(y) {
		x, y = y, x
	}
	z := make(Nat, len(x)+1)
	var carry Word
	i := 0
	for ; i < len(y); i++ {
		z[i], carry = addWW(x[i], y[i], carry)
	}
	for ; i < len(x); i++ {
		z[i], carry = addWW(x[i], 0, carry)
	}
	z[len(x)] = carry
	return norm(z)
}

// AddWord returns x + w.
func AddWord(x Nat, w Word) Nat {
	if w == 0 {
		return x.Clone()
	}
	z := make(Nat, len(x)+1)
	carry := w
	for i, xi := range x {
		z[i], carry = addWW(xi, carry, 0)
	}
	z[len(x)] = carry
	return norm(z)
}

// Sub returns x - y.  It panics if x < y, since Nats are non-negative;
// callers in the printing algorithms always know the ordering.
func Sub(x, y Nat) Nat {
	if len(x) < len(y) {
		panic("bignat: Sub underflow")
	}
	z := make(Nat, len(x))
	var borrow Word
	i := 0
	for ; i < len(y); i++ {
		z[i], borrow = subWW(x[i], y[i], borrow)
	}
	for ; i < len(x); i++ {
		z[i], borrow = subWW(x[i], 0, borrow)
	}
	if borrow != 0 {
		panic("bignat: Sub underflow")
	}
	return norm(z)
}

// SubWord returns x - w, panicking on underflow.
func SubWord(x Nat, w Word) Nat {
	if w == 0 {
		return x.Clone()
	}
	if len(x) == 0 {
		panic("bignat: SubWord underflow")
	}
	z := make(Nat, len(x))
	borrow := w
	for i, xi := range x {
		z[i], borrow = subWW(xi, borrow, 0)
	}
	if borrow != 0 {
		panic("bignat: SubWord underflow")
	}
	return norm(z)
}

// addWW computes x + y + carry, returning the sum word and carry-out.
// carry must be 0 or 1.
func addWW(x, y, carry Word) (sum, carryOut Word) {
	s, c := bits.Add(uint(x), uint(y), uint(carry))
	return Word(s), Word(c)
}

// subWW computes x - y - borrow, returning the difference word and
// borrow-out.  borrow must be 0 or 1.
func subWW(x, y, borrow Word) (diff, borrowOut Word) {
	d, b := bits.Sub(uint(x), uint(y), uint(borrow))
	return Word(d), Word(b)
}
