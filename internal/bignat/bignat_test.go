package bignat

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// toBig converts a Nat to a math/big.Int for oracle comparisons.
func toBig(n Nat) *big.Int {
	z := new(big.Int)
	for i := len(n) - 1; i >= 0; i-- {
		z.Lsh(z, wordBits)
		z.Or(z, new(big.Int).SetUint64(uint64(n[i])))
	}
	return z
}

// fromBig converts a non-negative math/big.Int to a Nat.
func fromBig(z *big.Int) Nat {
	if z.Sign() < 0 {
		panic("fromBig: negative")
	}
	var n Nat
	t := new(big.Int).Set(z)
	mask := new(big.Int).SetUint64(uint64(^Word(0)))
	for t.Sign() > 0 {
		limb := new(big.Int).And(t, mask)
		n = append(n, Word(limb.Uint64()))
		t.Rsh(t, wordBits)
	}
	return n
}

// randNat returns a random Nat with the given number of limbs (the top limb
// is forced nonzero unless limbs == 0).
func randNat(r *rand.Rand, limbs int) Nat {
	if limbs == 0 {
		return nil
	}
	n := make(Nat, limbs)
	for i := range n {
		n[i] = Word(r.Uint64())
	}
	for n[limbs-1] == 0 {
		n[limbs-1] = Word(r.Uint64())
	}
	return n
}

func TestFromUint64RoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 2, 9, 1 << 31, 1<<32 - 1, 1 << 32, 1<<64 - 1}
	for _, x := range cases {
		n := FromUint64(x)
		got, ok := n.Uint64()
		if !ok || got != x {
			t.Errorf("FromUint64(%d).Uint64() = %d, %v", x, got, ok)
		}
	}
}

func TestUint64Overflow(t *testing.T) {
	n := Shl(FromUint64(1), 64)
	if _, ok := n.Uint64(); ok {
		t.Errorf("2^64 reported as fitting in uint64")
	}
}

func TestIsZeroIsOne(t *testing.T) {
	if !FromUint64(0).IsZero() || FromUint64(1).IsZero() {
		t.Errorf("IsZero wrong")
	}
	if !FromUint64(1).IsOne() || FromUint64(0).IsOne() || FromUint64(2).IsOne() {
		t.Errorf("IsOne wrong")
	}
	if Shl(FromUint64(1), 64).IsOne() {
		t.Errorf("2^64 reported as one")
	}
}

func TestBitLen(t *testing.T) {
	cases := []struct {
		x    Nat
		want int
	}{
		{nil, 0},
		{FromUint64(1), 1},
		{FromUint64(2), 2},
		{FromUint64(255), 8},
		{FromUint64(256), 9},
		{Shl(FromUint64(1), 100), 101},
	}
	for _, c := range cases {
		if got := c.x.BitLen(); got != c.want {
			t.Errorf("BitLen(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestBitAndTrailingZeros(t *testing.T) {
	x := Shl(FromUint64(0b1011), 70)
	if x.Bit(70) != 1 || x.Bit(71) != 1 || x.Bit(72) != 0 || x.Bit(73) != 1 {
		t.Errorf("Bit values wrong: %v", x)
	}
	if x.Bit(500) != 0 {
		t.Errorf("Bit beyond length should be 0")
	}
	if got := x.TrailingZeroBits(); got != 70 {
		t.Errorf("TrailingZeroBits = %d, want 70", got)
	}
	if got := Nat(nil).TrailingZeroBits(); got != 0 {
		t.Errorf("TrailingZeroBits(0) = %d, want 0", got)
	}
}

func TestCmp(t *testing.T) {
	a, b := FromUint64(5), FromUint64(7)
	if Cmp(a, b) != -1 || Cmp(b, a) != 1 || Cmp(a, a) != 0 {
		t.Errorf("Cmp small values wrong")
	}
	big1 := Shl(FromUint64(1), 64)
	if Cmp(big1, b) != 1 || Cmp(b, big1) != -1 {
		t.Errorf("Cmp across lengths wrong")
	}
}

func TestCmpWord(t *testing.T) {
	if CmpWord(nil, 0) != 0 || CmpWord(nil, 1) != -1 {
		t.Errorf("CmpWord zero cases wrong")
	}
	if CmpWord(FromUint64(5), 5) != 0 || CmpWord(FromUint64(5), 6) != -1 || CmpWord(FromUint64(5), 4) != 1 {
		t.Errorf("CmpWord single-limb cases wrong")
	}
	if CmpWord(Shl(FromUint64(1), 64), ^Word(0)) != 1 {
		t.Errorf("CmpWord multi-limb case wrong")
	}
}

func TestAddSubOracle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		x := randNat(r, r.Intn(6))
		y := randNat(r, r.Intn(6))
		sum := Add(x, y)
		wantSum := new(big.Int).Add(toBig(x), toBig(y))
		if toBig(sum).Cmp(wantSum) != 0 {
			t.Fatalf("Add(%v, %v) = %v, want %v", toBig(x), toBig(y), toBig(sum), wantSum)
		}
		back := Sub(sum, y)
		if Cmp(back, x) != 0 {
			t.Fatalf("Sub(Add(x,y), y) != x for x=%v y=%v", toBig(x), toBig(y))
		}
	}
}

func TestSubUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Sub(1, 2) did not panic")
		}
	}()
	Sub(FromUint64(1), FromUint64(2))
}

func TestSubWordUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("SubWord(0, 1) did not panic")
		}
	}()
	SubWord(nil, 1)
}

func TestAddWordSubWordOracle(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		x := randNat(r, r.Intn(5))
		w := Word(r.Uint64())
		got := AddWord(x, w)
		want := new(big.Int).Add(toBig(x), new(big.Int).SetUint64(uint64(w)))
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("AddWord(%v, %d) = %v, want %v", toBig(x), w, toBig(got), want)
		}
		if Cmp(SubWord(got, w), x) != 0 {
			t.Fatalf("SubWord(AddWord(x,w), w) != x")
		}
	}
}

func TestShiftOracle(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		x := randNat(r, r.Intn(5))
		s := uint(r.Intn(200))
		shl := Shl(x, s)
		wantShl := new(big.Int).Lsh(toBig(x), s)
		if toBig(shl).Cmp(wantShl) != 0 {
			t.Fatalf("Shl(%v, %d) = %v, want %v", toBig(x), s, toBig(shl), wantShl)
		}
		shr := Shr(x, s)
		wantShr := new(big.Int).Rsh(toBig(x), s)
		if toBig(shr).Cmp(wantShr) != 0 {
			t.Fatalf("Shr(%v, %d) = %v, want %v", toBig(x), s, toBig(shr), wantShr)
		}
		if Cmp(Shr(shl, s), x) != 0 {
			t.Fatalf("Shr(Shl(x,s),s) != x")
		}
	}
}

func TestShiftEdgeCases(t *testing.T) {
	if !Shl(nil, 100).IsZero() || !Shr(nil, 100).IsZero() {
		t.Errorf("shifting zero should stay zero")
	}
	x := FromUint64(0xdeadbeef)
	if Cmp(Shl(x, 0), x) != 0 || Cmp(Shr(x, 0), x) != 0 {
		t.Errorf("shift by 0 should be identity")
	}
	if !Shr(x, 64).IsZero() {
		t.Errorf("Shr past the top should be zero")
	}
	// Whole-limb shift boundary.
	if got := Shl(FromUint64(1), wordBits); got.BitLen() != wordBits+1 {
		t.Errorf("Shl(1, wordBits).BitLen() = %d", got.BitLen())
	}
}

func TestMulOracle(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 1500; i++ {
		x := randNat(r, r.Intn(8))
		y := randNat(r, r.Intn(8))
		got := Mul(x, y)
		want := new(big.Int).Mul(toBig(x), toBig(y))
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("Mul(%v, %v) = %v, want %v", toBig(x), toBig(y), toBig(got), want)
		}
	}
}

func TestMulWordOracle(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		x := randNat(r, r.Intn(6))
		w := Word(r.Uint64())
		got := MulWord(x, w)
		want := new(big.Int).Mul(toBig(x), new(big.Int).SetUint64(uint64(w)))
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("MulWord(%v, %d) wrong", toBig(x), w)
		}
	}
}

func TestMulAddWordOracle(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 1000; i++ {
		x := randNat(r, r.Intn(6))
		w, a := Word(r.Uint64()), Word(r.Uint64())
		got := MulAddWord(x, w, a)
		want := new(big.Int).Mul(toBig(x), new(big.Int).SetUint64(uint64(w)))
		want.Add(want, new(big.Int).SetUint64(uint64(a)))
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("MulAddWord(%v, %d, %d) wrong", toBig(x), w, a)
		}
	}
}

func TestKaratsubaMatchesSchoolbook(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		x := randNat(r, karatsubaThreshold+r.Intn(40))
		y := randNat(r, karatsubaThreshold+r.Intn(40))
		fast := Mul(x, y)
		slow := mulSchoolbook(x, y)
		if Cmp(fast, slow) != 0 {
			t.Fatalf("karatsuba != schoolbook for %d x %d limbs", len(x), len(y))
		}
	}
}

func TestKaratsubaUnbalanced(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	x := randNat(r, karatsubaThreshold)
	y := randNat(r, karatsubaThreshold*5)
	if Cmp(Mul(x, y), mulSchoolbook(x, y)) != 0 {
		t.Fatalf("unbalanced karatsuba wrong")
	}
}

func TestMulIdentities(t *testing.T) {
	x := FromUint64(12345)
	if !Mul(x, nil).IsZero() || !Mul(nil, x).IsZero() {
		t.Errorf("x*0 != 0")
	}
	if Cmp(Mul(x, Nat{1}), x) != 0 {
		t.Errorf("x*1 != x")
	}
	if Cmp(Sqr(x), Mul(x, x)) != 0 {
		t.Errorf("Sqr != Mul(x,x)")
	}
}

func TestDivModOracle(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 3000; i++ {
		x := randNat(r, 1+r.Intn(8))
		y := randNat(r, 1+r.Intn(4))
		q, rem := DivMod(x, y)
		wantQ, wantR := new(big.Int).QuoRem(toBig(x), toBig(y), new(big.Int))
		if toBig(q).Cmp(wantQ) != 0 || toBig(rem).Cmp(wantR) != 0 {
			t.Fatalf("DivMod(%v, %v) = (%v, %v), want (%v, %v)",
				toBig(x), toBig(y), toBig(q), toBig(rem), wantQ, wantR)
		}
	}
}

// TestDivModAddBackPath exercises Algorithm D's rare D6 add-back correction
// by using divisors crafted to make the first quotient-digit estimate too
// large: x just below q*y for a q whose top estimate overshoots.
func TestDivModAddBackPath(t *testing.T) {
	// Classic add-back trigger (from Hacker's Delight / Knuth): dividend
	// with max-value high words and divisor with a high word of 2^(W-1).
	half := Word(1) << (wordBits - 1)
	x := Nat{0, 0, ^Word(0) - 1, half - 1}
	y := Nat{^Word(0), half}
	q, rem := DivMod(norm(x), norm(y))
	wantQ, wantR := new(big.Int).QuoRem(toBig(norm(x)), toBig(norm(y)), new(big.Int))
	if toBig(q).Cmp(wantQ) != 0 || toBig(rem).Cmp(wantR) != 0 {
		t.Fatalf("add-back case: got (%v, %v), want (%v, %v)", toBig(q), toBig(rem), wantQ, wantR)
	}
}

func TestDivModStress(t *testing.T) {
	// Structured divisors: powers of two plus/minus small deltas, repeated
	// top words — the shapes that break naive quotient estimation.
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 2000; i++ {
		y := randNat(r, 2+r.Intn(3))
		switch r.Intn(3) {
		case 0:
			y[len(y)-1] = ^Word(0)
		case 1:
			y[len(y)-1] = 1 << (wordBits - 1)
		}
		q := randNat(r, 1+r.Intn(3))
		extra := randNat(r, r.Intn(len(y)+1))
		if Cmp(extra, y) >= 0 {
			_, extraN := DivMod(extra, y)
			extra = extraN
		}
		x := Add(Mul(q, y), extra)
		gotQ, gotR := DivMod(x, y)
		if Cmp(gotQ, q) != 0 || Cmp(gotR, extra) != 0 {
			t.Fatalf("DivMod reconstruction failed: x=%v y=%v", toBig(x), toBig(y))
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	for _, f := range []func(){
		func() { DivMod(FromUint64(1), nil) },
		func() { DivModWord(FromUint64(1), 0) },
		func() { DivModSmallQuotient(FromUint64(1), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("division by zero did not panic")
				}
			}()
			f()
		}()
	}
}

func TestDivModWordOracle(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		x := randNat(r, r.Intn(6))
		w := Word(r.Uint64())
		if w == 0 {
			w = 1
		}
		q, rem := DivModWord(x, w)
		wb := new(big.Int).SetUint64(uint64(w))
		wantQ, wantR := new(big.Int).QuoRem(toBig(x), wb, new(big.Int))
		if toBig(q).Cmp(wantQ) != 0 || uint64(rem) != wantR.Uint64() {
			t.Fatalf("DivModWord(%v, %d) wrong", toBig(x), w)
		}
	}
}

func TestDivModSmallQuotient(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 3000; i++ {
		y := randNat(r, 1+r.Intn(6))
		q := Word(r.Intn(100))
		var rem Nat
		if !y.IsZero() {
			rem = randNat(r, r.Intn(len(y)+1))
			if Cmp(rem, y) >= 0 {
				_, rem = DivMod(rem, y)
			}
		}
		x := Add(MulWord(y, q), rem)
		gotQ, gotR := DivModSmallQuotient(x, y)
		if gotQ != q || Cmp(gotR, rem) != 0 {
			t.Fatalf("DivModSmallQuotient: got q=%d r=%v, want q=%d r=%v (x=%v y=%v)",
				gotQ, toBig(gotR), q, toBig(rem), toBig(x), toBig(y))
		}
	}
}

func TestDivModSmallQuotientAgainstDivMod(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 2000; i++ {
		y := randNat(r, 1+r.Intn(5))
		x := Add(MulWord(y, Word(r.Intn(37))), randSmaller(r, y))
		q1, r1 := DivModSmallQuotient(x, y)
		q2, r2 := DivMod(x, y)
		q2w, _ := q2.Uint64()
		if uint64(q1) != q2w || Cmp(r1, r2) != 0 {
			t.Fatalf("DivModSmallQuotient disagrees with DivMod")
		}
	}
}

// randSmaller returns a uniform-ish random Nat strictly less than y (y > 0).
func randSmaller(r *rand.Rand, y Nat) Nat {
	c := randNat(r, len(y))
	_, rem := DivMod(c, y)
	return rem
}

func TestPow(t *testing.T) {
	cases := []struct {
		b    uint64
		n    uint
		want string
	}{
		{10, 0, "1"},
		{10, 1, "10"},
		{10, 19, "10000000000000000000"},
		{10, 30, "1000000000000000000000000000000"},
		{2, 100, new(big.Int).Lsh(big.NewInt(1), 100).String()},
		{0, 0, "1"},
		{0, 5, "0"},
		{1, 1000, "1"},
	}
	for _, c := range cases {
		if got := PowUint(c.b, c.n).String(); got != c.want {
			t.Errorf("PowUint(%d, %d) = %s, want %s", c.b, c.n, got, c.want)
		}
	}
}

func TestPowOracle(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for i := 0; i < 200; i++ {
		b := uint64(r.Intn(1000))
		n := uint(r.Intn(64))
		got := PowUint(b, n)
		want := new(big.Int).Exp(new(big.Int).SetUint64(b), new(big.Int).SetUint64(uint64(n)), nil)
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("PowUint(%d, %d) wrong", b, n)
		}
	}
}

func TestPowCache(t *testing.T) {
	c := NewPowCache(10)
	for _, n := range []uint{0, 5, 3, 325, 100} {
		got := c.Pow(n)
		want := PowUint(10, n)
		if Cmp(got, want) != 0 {
			t.Errorf("PowCache.Pow(%d) wrong", n)
		}
	}
	if Cmp(c.Base(), FromUint64(10)) != 0 {
		t.Errorf("PowCache.Base wrong")
	}
}

func TestTextRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for i := 0; i < 300; i++ {
		x := randNat(r, r.Intn(6))
		for _, base := range []int{2, 3, 8, 10, 16, 17, 36} {
			s := x.Text(base)
			want := toBig(x).Text(base)
			if s != want {
				t.Fatalf("Text(%v, %d) = %q, want %q", toBig(x), base, s, want)
			}
			back, err := ParseText(s, base)
			if err != nil {
				t.Fatalf("ParseText(%q, %d): %v", s, base, err)
			}
			if Cmp(back, x) != 0 {
				t.Fatalf("ParseText(Text(x)) != x in base %d", base)
			}
		}
	}
}

func TestTextZero(t *testing.T) {
	if Nat(nil).String() != "0" {
		t.Errorf("String(0) = %q", Nat(nil).String())
	}
	if Nat(nil).Text(2) != "0" {
		t.Errorf("Text(0, 2) = %q", Nat(nil).Text(2))
	}
}

func TestParseTextErrors(t *testing.T) {
	for _, c := range []struct {
		s    string
		base int
	}{
		{"", 10}, {"12x", 10}, {"19", 8}, {"z", 35}, {"-3", 10}, {" 3", 10},
	} {
		if _, err := ParseText(c.s, c.base); err == nil {
			t.Errorf("ParseText(%q, %d) unexpectedly succeeded", c.s, c.base)
		}
	}
	if _, err := ParseText("10", 1); err == nil {
		t.Errorf("ParseText base 1 unexpectedly succeeded")
	}
	if got, err := ParseText("FF", 16); err != nil || Cmp(got, FromUint64(255)) != 0 {
		t.Errorf("ParseText upper-case hex failed: %v %v", got, err)
	}
}

func TestTextIllegalBasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Text(x, 37) did not panic")
		}
	}()
	FromUint64(1).Text(37)
}

// Property: (x+y)-y == x for arbitrary values via testing/quick.
func TestQuickAddSubInverse(t *testing.T) {
	f := func(xs, ys []uint64) bool {
		x, y := natFromUint64s(xs), natFromUint64s(ys)
		return Cmp(Sub(Add(x, y), y), x) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: multiplication is commutative and distributes over addition.
func TestQuickMulProperties(t *testing.T) {
	f := func(xs, ys, zs []uint64) bool {
		x, y, z := natFromUint64s(xs), natFromUint64s(ys), natFromUint64s(zs)
		if Cmp(Mul(x, y), Mul(y, x)) != 0 {
			return false
		}
		lhs := Mul(x, Add(y, z))
		rhs := Add(Mul(x, y), Mul(x, z))
		return Cmp(lhs, rhs) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: x == q*y + r with r < y after DivMod.
func TestQuickDivModInvariant(t *testing.T) {
	f := func(xs, ys []uint64) bool {
		x, y := natFromUint64s(xs), natFromUint64s(ys)
		if y.IsZero() {
			y = Nat{1}
		}
		q, r := DivMod(x, y)
		if Cmp(r, y) >= 0 {
			return false
		}
		return Cmp(Add(Mul(q, y), r), x) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: shifting left then right by the same amount is the identity.
func TestQuickShiftInverse(t *testing.T) {
	f := func(xs []uint64, s uint16) bool {
		x := natFromUint64s(xs)
		return Cmp(Shr(Shl(x, uint(s%512)), uint(s%512)), x) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func natFromUint64s(xs []uint64) Nat {
	var n Nat
	for _, x := range xs {
		n = Add(Shl(n, 64), FromUint64(x))
	}
	return n
}

func TestCloneIndependence(t *testing.T) {
	x := FromUint64(42)
	c := x.Clone()
	c[0] = 43
	if x[0] != 42 {
		t.Errorf("Clone shares storage")
	}
	if Nat(nil).Clone() != nil {
		t.Errorf("Clone(0) should be nil")
	}
}

func BenchmarkMulSchoolbook16(b *testing.B) { benchMulN(b, 16) }
func BenchmarkMul64(b *testing.B)           { benchMulN(b, 64) }
func BenchmarkMul256(b *testing.B)          { benchMulN(b, 256) }

func benchMulN(b *testing.B, limbs int) {
	r := rand.New(rand.NewSource(99))
	x, y := randNat(r, limbs), randNat(r, limbs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

// BenchmarkAblationKaratsubaThreshold compares schoolbook and Karatsuba at
// several sizes around the threshold (DESIGN.md Ablation C).
func BenchmarkAblationKaratsubaThreshold(b *testing.B) {
	r := rand.New(rand.NewSource(100))
	for _, limbs := range []int{16, 24, 32, 64, 128} {
		x, y := randNat(r, limbs), randNat(r, limbs)
		b.Run("schoolbook/"+itoa(limbs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mulSchoolbook(x, y)
			}
		})
		b.Run("karatsuba/"+itoa(limbs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				karatsuba(x, y)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func BenchmarkDivMod(b *testing.B) {
	r := rand.New(rand.NewSource(101))
	x, y := randNat(r, 40), randNat(r, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DivMod(x, y)
	}
}

func BenchmarkDivModSmallQuotient(b *testing.B) {
	r := rand.New(rand.NewSource(102))
	y := randNat(r, 20)
	x := Add(MulWord(y, 7), randSmaller(r, y))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DivModSmallQuotient(x, y)
	}
}
