package decimal

import "math"

// ShortestFloat64 converts a positive finite v to its shortest decimal
// form for a round-to-nearest-even reader, by walking the exact decimal
// expansions of v and its rounding-range midpoints until the prefix
// distinguishes them (the strconv-legacy realization of Steele & White's
// idea).  Ties round up, matching the paper's Figure 1, so the output is
// digit-identical to internal/core's free format under ReaderNearestEven.
// It returns digit values and K with V = 0.d₁…dₙ × 10ᴷ, or nil for
// non-positive or non-finite input.
func ShortestFloat64(v float64) (digits []byte, k int) {
	if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return nil, 0
	}
	bits := math.Float64bits(v)
	mant := bits & (1<<52 - 1)
	be := int(bits >> 52 & 0x7ff)
	var f uint64
	var e int
	if be == 0 {
		f, e = mant, -1074
	} else {
		f, e = mant|1<<52, be-1075
	}

	// Exact decimal expansions of the value and the two midpoints.
	d := FromUint64(f)
	d.Shift(e)
	upper := FromUint64(2*f + 1)
	upper.Shift(e - 1)
	var lower *Dec
	if mant == 0 && be > 1 { // binade boundary: narrower gap below
		lower = FromUint64(4*f - 1)
		lower.Shift(e - 2)
	} else {
		lower = FromUint64(2*f - 1)
		lower.Shift(e - 1)
	}
	inclusive := f%2 == 0 // nearest-even reader owns even-mantissa endpoints

	// Walk digits (aligned at upper, whose expansion starts no later than
	// the others) until v's prefix can be rounded down and/or up into the
	// open (or half-open) interval (lower, upper).  upperdelta tracks how
	// far upper has diverged from v: 1 means only by a trailing 9→0 carry
	// chain — rounding up would then land exactly ON upper, which is legal
	// only for an admissible endpoint (this distinction is the historical
	// strconv bug golang.org/issue/29491).
	upperdelta := 0
	for ui := 0; ; ui++ {
		li := ui - upper.DP + lower.DP
		mi := ui - upper.DP + d.DP

		var l byte
		if li >= 0 {
			l = lower.DigitAt(li)
		}
		var m byte
		if mi >= 0 {
			m = d.DigitAt(mi)
		}
		u := upper.DigitAt(ui)

		// Round down (truncate at mi+1 digits) when lower has diverged, or
		// when lower ends at this digit — the truncation then equals lower
		// exactly — and the endpoint is admissible.
		okdown := l != m || inclusive && li+1 == len(lower.D)

		switch {
		case upperdelta == 0 && m+1 < u:
			upperdelta = 2 // upper clearly exceeds the round-up result
		case upperdelta == 0 && m != u:
			upperdelta = 1 // exceeds only if the carry chain breaks
		case upperdelta == 1 && (m != 9 || u != 0):
			upperdelta = 2
		}
		// Round up when upper has diverged and either the endpoint is
		// admissible, or upper is strictly bigger than the round-up result
		// (divergence beyond a carry chain, or more upper digits follow).
		okup := upperdelta > 0 && (inclusive || upperdelta > 1 || ui+1 < len(upper.D))

		switch {
		case okdown && okup:
			d.Round(mi+1, TieUp)
		case okdown:
			d.roundDown(mi + 1)
		case okup:
			d.roundUp(mi + 1)
		default:
			continue
		}
		out := make([]byte, len(d.D))
		copy(out, d.D)
		return out, d.DP
	}
}

// FixedFloat64 converts a positive finite v to exactly n significant
// decimal digits, correctly rounded with the given tie rule, via the
// exact decimal expansion.  With TieEven it is digit-identical to
// baseline.FixedDigits.
func FixedFloat64(v float64, n int, tie TieRule) (digits []byte, k int) {
	if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) || n <= 0 {
		return nil, 0
	}
	bits := math.Float64bits(v)
	mant := bits & (1<<52 - 1)
	be := int(bits >> 52 & 0x7ff)
	var f uint64
	var e int
	if be == 0 {
		f, e = mant, -1074
	} else {
		f, e = mant|1<<52, be-1075
	}
	d := FromUint64(f)
	d.Shift(e)
	d.Round(n, tie)
	out := make([]byte, n)
	copy(out, d.D) // trailing zeros (trimmed by Round) read back as zero values
	return out, d.DP
}
