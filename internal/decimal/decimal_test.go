package decimal

import (
	"math"
	"math/big"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"floatprint/internal/baseline"
	"floatprint/internal/core"
	"floatprint/internal/fpformat"
	"floatprint/internal/schryer"
)

func digitsString(digits []byte) string {
	var sb strings.Builder
	for _, d := range digits {
		sb.WriteByte('0' + d)
	}
	return sb.String()
}

func TestFromUint64(t *testing.T) {
	cases := []struct {
		m    uint64
		want string
	}{
		{0, "0"},
		{1, "0.1e1"},
		{10, "0.1e2"}, // trailing zero trimmed, exponent carries the scale
		{12345, "0.12345e5"},
		{math.MaxUint64, "0.18446744073709551615e20"},
	}
	for _, c := range cases {
		if got := FromUint64(c.m).String(); got != c.want {
			t.Errorf("FromUint64(%d) = %s, want %s", c.m, got, c.want)
		}
	}
}

// TestShiftAgainstBigRat: shifting by 2^k must agree with exact rational
// arithmetic for both signs of k.
func TestShiftAgainstBigRat(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 400; i++ {
		m := uint64(r.Int63())
		k := r.Intn(240) - 120
		d := FromUint64(m)
		d.Shift(k)

		want := new(big.Rat).SetInt64(int64(m))
		two := big.NewRat(2, 1)
		for j := 0; j < k; j++ {
			want.Mul(want, two)
		}
		for j := 0; j < -k; j++ {
			want.Quo(want, two)
		}
		// Rebuild the decimal's value as a rational.
		got := new(big.Rat)
		ten := big.NewRat(10, 1)
		for _, dig := range d.D {
			got.Mul(got, ten)
			got.Add(got, new(big.Rat).SetInt64(int64(dig)))
		}
		// got = digits as integer; value = got × 10^(DP-len).
		scale := d.DP - len(d.D)
		for j := 0; j < scale; j++ {
			got.Mul(got, ten)
		}
		for j := 0; j < -scale; j++ {
			got.Quo(got, ten)
		}
		if !d.Truncated && got.Cmp(want) != 0 {
			t.Fatalf("Shift(%d) of %d: got %s, want %s", k, m, got, want)
		}
	}
}

func TestShiftZero(t *testing.T) {
	d := FromUint64(0)
	d.Shift(100)
	d.Shift(-100)
	if !d.IsZero() || d.String() != "0" {
		t.Errorf("zero shift wrong: %s", d.String())
	}
}

func TestTruncationFlag(t *testing.T) {
	// 2^-1074 has a 767-significant-digit expansion that fits; shifting a
	// large odd mantissa far down eventually exceeds the cap.
	d := FromUint64(1)
	d.Shift(-1074)
	if d.Truncated {
		t.Errorf("2^-1074 should fit exactly in %d digits (needs 767)", maxDigits)
	}
	big := FromUint64(1<<53 - 1)
	big.Shift(-1074)
	if !big.Truncated && len(big.D) > maxDigits {
		t.Errorf("cap not enforced")
	}
}

func TestRoundTieRules(t *testing.T) {
	mk := func() *Dec { return FromUint64(125) } // 0.125e3
	d := mk()
	d.Round(2, TieUp)
	if d.String() != "0.13e3" {
		t.Errorf("TieUp: %s", d.String())
	}
	d = mk()
	d.Round(2, TieEven)
	if d.String() != "0.12e3" {
		t.Errorf("TieEven: %s", d.String())
	}
	// Not a tie: digit 6 rounds up under both rules.
	d = FromUint64(126)
	d.Round(2, TieEven)
	if d.String() != "0.13e3" {
		t.Errorf("round 126: %s", d.String())
	}
	// 999 rolls over.
	d = FromUint64(999)
	d.Round(2, TieUp)
	if d.String() != "0.1e4" {
		t.Errorf("rollover: %s", d.String())
	}
	// Truncated halves always round up.
	d = FromUint64(1255)
	d.D = d.D[:3]
	d.Truncated = true
	d.Round(2, TieEven)
	if d.String() != "0.13e4" {
		t.Errorf("truncated tie: %s", d.String())
	}
}

// TestShortestMatchesCoreExactly: the decimal-walk shortest conversion and
// the paper's integer-scaling one share the tie rule, so they must agree
// digit-for-digit with NO tolerance.
func TestShortestMatchesCoreExactly(t *testing.T) {
	check := func(v float64) {
		t.Helper()
		digits, k := ShortestFloat64(v)
		exact, err := core.FreeFormat(fpformat.DecodeFloat64(v), 10, core.ScalingEstimate, core.ReaderNearestEven)
		if err != nil {
			t.Fatal(err)
		}
		if digitsString(digits) != digitsString(exact.Digits) || k != exact.K {
			t.Fatalf("decimal(%g [%x]) = %q K=%d, core = %q K=%d",
				v, math.Float64bits(v), digitsString(digits), k,
				digitsString(exact.Digits), exact.K)
		}
	}
	for _, v := range []float64{
		1, 0.3, 0.1, math.Pi, 1e23, 5e-324, math.MaxFloat64, 0x1p-1022,
		math.Nextafter(1, 2), math.Nextafter(1, 0), 2.2250738585072011e-308,
	} {
		check(v)
	}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 4000; i++ {
		v := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		check(v)
	}
	for _, v := range schryer.CorpusN(4000) {
		check(v)
	}
}

func TestShortestRoundTrips(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		v := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		digits, k := ShortestFloat64(v)
		s := "0." + digitsString(digits) + "e" + strconv.Itoa(k)
		back, err := strconv.ParseFloat(s, 64)
		if err != nil || back != v {
			t.Fatalf("decimal shortest %q of %g reads back %v (%v)", s, v, back, err)
		}
	}
}

func TestShortestSpecials(t *testing.T) {
	for _, v := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if d, _ := ShortestFloat64(v); d != nil {
			t.Errorf("ShortestFloat64(%v) = %v, want nil", v, d)
		}
	}
}

// TestFixedMatchesBaseline: with TieEven the decimal fixed conversion
// equals the big-integer straightforward baseline exactly.
func TestFixedMatchesBaseline(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		v := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		n := 1 + r.Intn(20)
		digits, k := FixedFloat64(v, n, TieEven)
		want, err := baseline.FixedDigits(fpformat.DecodeFloat64(v), 10, n)
		if err != nil {
			t.Fatal(err)
		}
		if digitsString(digits) != digitsString(want.Digits) || k != want.K {
			t.Fatalf("FixedFloat64(%g, %d) = %q K=%d, baseline %q K=%d",
				v, n, digitsString(digits), k, digitsString(want.Digits), want.K)
		}
	}
}

func TestFixedSpecials(t *testing.T) {
	if d, _ := FixedFloat64(-1, 5, TieEven); d != nil {
		t.Errorf("negative accepted")
	}
	if d, _ := FixedFloat64(1, 0, TieEven); d != nil {
		t.Errorf("zero digits accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := FromUint64(12345)
	c := d.Clone()
	c.Round(2, TieUp)
	if d.String() != "0.12345e5" {
		t.Errorf("Clone shares storage: %s", d.String())
	}
}

func BenchmarkDecimalShortest(b *testing.B) {
	corpus := schryer.CorpusN(2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ShortestFloat64(corpus[i%len(corpus)])
	}
}

// TestUpperCarryChainRegression pins the case the fuzzer caught (the same
// shape as golang.org/issue/29491): the round-up candidate lands exactly
// on the EXCLUSIVE upper midpoint via a 9→0 carry chain, so the shorter
// form must be rejected.
func TestUpperCarryChainRegression(t *testing.T) {
	for _, bits := range []uint64{
		0x4350000000000001, // 18014398509481988: upper midpoint ...990
		0x4360000000000001,
		0x435587d2a7851bef,
	} {
		v := math.Float64frombits(bits)
		digits, k := ShortestFloat64(v)
		s := "0." + digitsString(digits) + "e" + strconv.Itoa(k)
		back, err := strconv.ParseFloat(s, 64)
		if err != nil || math.Float64bits(back) != bits {
			t.Errorf("regression %x: %q reads back %x", bits, s, math.Float64bits(back))
		}
		want := strconv.FormatFloat(v, 'e', -1, 64)
		wantDigits := strings.TrimRight(strings.Replace(strings.Split(want, "e")[0], ".", "", 1), "0")
		if digitsString(digits) != wantDigits {
			t.Errorf("regression %x: digits %q, strconv %q", bits, digitsString(digits), wantDigits)
		}
	}
}
