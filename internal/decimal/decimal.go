// Package decimal implements exact binary-to-decimal conversion using an
// arbitrary-precision decimal digit array — the approach Go's strconv used
// for shortest formatting before Grisu/Ryū, and conceptually the closest
// relative of Steele & White's original Dragon: instead of scaling big
// *binary* integers (Burger & Dybvig) it maintains the decimal digit
// string itself and shifts it by powers of two.
//
// The package provides a complete fourth implementation of shortest
// printing (after internal/core, internal/grisu, and internal/ryu) and a
// third fixed-precision one, used by the differential test suite: four
// independently derived implementations agreeing digit-for-digit over
// millions of values is the repository's strongest correctness evidence.
package decimal

import "fmt"

// A Dec is a positive decimal number 0.d₀d₁…dₙ₋₁ × 10^DP with digit
// values (not ASCII) and no leading zero digit (unless the value is 0,
// represented by an empty digit slice).  Truncated records whether
// nonzero digits have been discarded beyond the stored ones (needed for
// correct rounding after precision capping).
type Dec struct {
	D         []byte
	DP        int
	Truncated bool
}

// maxDigits caps the stored digits; doubles need at most 767 significant
// decimal digits (the longest exact expansion, 2^-1074's tail), plus slack.
const maxDigits = 800

// FromUint64 returns the exact decimal of m.
func FromUint64(m uint64) *Dec {
	d := &Dec{}
	if m == 0 {
		return d
	}
	var buf [20]byte
	n := 0
	for m > 0 {
		buf[n] = byte(m % 10)
		m /= 10
		n++
	}
	d.D = make([]byte, 0, maxDigits)
	for i := n - 1; i >= 0; i-- {
		d.D = append(d.D, buf[i])
	}
	d.DP = n
	d.trim()
	return d
}

// trim removes trailing zero digits (the value is unchanged).
func (d *Dec) trim() {
	for len(d.D) > 0 && d.D[len(d.D)-1] == 0 {
		d.D = d.D[:len(d.D)-1]
	}
	if len(d.D) == 0 {
		d.DP = 0
		d.Truncated = false
	}
}

// Shift multiplies the value by 2ᵏ (k of either sign), exactly up to the
// digit cap.
func (d *Dec) Shift(k int) {
	const batch = 50 // 9·2⁵⁰ and rem·10 both fit comfortably in uint64
	for k > 0 {
		b := min(k, batch)
		d.mulPow2(uint(b))
		k -= b
	}
	for k < 0 {
		b := min(-k, batch)
		d.divPow2(uint(b))
		k += b
	}
}

// mulPow2 multiplies by 2ᵇ in one right-to-left pass.
func (d *Dec) mulPow2(b uint) {
	if len(d.D) == 0 {
		return
	}
	var carry uint64
	for i := len(d.D) - 1; i >= 0; i-- {
		acc := uint64(d.D[i])<<b + carry
		d.D[i] = byte(acc % 10)
		carry = acc / 10
	}
	// Prepend the carry digits.
	var lead []byte
	for carry > 0 {
		lead = append(lead, byte(carry%10))
		carry /= 10
	}
	if len(lead) > 0 {
		reversed := make([]byte, 0, len(lead)+len(d.D))
		for i := len(lead) - 1; i >= 0; i-- {
			reversed = append(reversed, lead[i])
		}
		d.D = append(reversed, d.D...)
		d.DP += len(lead)
	}
	d.cap()
	d.trim()
}

// divPow2 divides by 2ᵇ in one left-to-right pass, extending the digit
// string as the quotient develops.
func (d *Dec) divPow2(b uint) {
	if len(d.D) == 0 {
		return
	}
	var rem uint64
	mask := uint64(1)<<b - 1
	out := make([]byte, 0, len(d.D)+int(b))
	read := 0
	// Consume existing digits.
	for ; read < len(d.D); read++ {
		acc := rem*10 + uint64(d.D[read])
		out = append(out, byte(acc>>b))
		rem = acc & mask
	}
	// Flush the remainder.
	for rem > 0 {
		acc := rem * 10
		out = append(out, byte(acc>>b))
		rem = acc & mask
	}
	// Renormalize: drop leading zeros, adjusting the exponent.
	lead := 0
	for lead < len(out) && out[lead] == 0 {
		lead++
	}
	d.D = out[lead:]
	d.DP -= lead
	d.cap()
	d.trim()
}

// cap enforces the digit limit, recording truncation.
func (d *Dec) cap() {
	if len(d.D) > maxDigits {
		for _, x := range d.D[maxDigits:] {
			if x != 0 {
				d.Truncated = true
				break
			}
		}
		d.D = d.D[:maxDigits]
	}
}

// TieRule selects how an exact halfway case rounds.
type TieRule int

const (
	// TieUp rounds halves away from zero (the paper's Figure 1 choice).
	TieUp TieRule = iota
	// TieEven rounds halves to the even digit (C library convention).
	TieEven
)

// shouldRoundUp decides the rounding at digit index nd.
func (d *Dec) shouldRoundUp(nd int, tie TieRule) bool {
	if nd < 0 || nd >= len(d.D) {
		return false
	}
	if d.D[nd] == 5 && nd+1 == len(d.D) && !d.Truncated {
		// Exactly halfway.
		if tie == TieUp {
			return true
		}
		return nd > 0 && d.D[nd-1]%2 != 0
	}
	return d.D[nd] >= 5
}

// Round rounds the value to nd significant digits in place.
func (d *Dec) Round(nd int, tie TieRule) {
	if nd < 0 || nd >= len(d.D) {
		return
	}
	if d.shouldRoundUp(nd, tie) {
		d.roundUp(nd)
	} else {
		d.roundDown(nd)
	}
}

func (d *Dec) roundDown(nd int) {
	d.D = d.D[:nd]
	d.trim()
}

func (d *Dec) roundUp(nd int) {
	for i := nd - 1; i >= 0; i-- {
		if d.D[i] < 9 {
			d.D = d.D[:i+1]
			d.D[i]++
			d.trim()
			return
		}
	}
	// 999… rolls over to 1 with a higher exponent.
	d.D = d.D[:1]
	d.D[0] = 1
	d.DP++
	d.trim()
}

// DigitAt returns the digit at index i of the canonical expansion
// (0 when i is beyond the stored digits).
func (d *Dec) DigitAt(i int) byte {
	if i < 0 || i >= len(d.D) {
		return 0
	}
	return d.D[i]
}

// IsZero reports whether the value is zero.
func (d *Dec) IsZero() bool { return len(d.D) == 0 }

// String renders the decimal for diagnostics.
func (d *Dec) String() string {
	if d.IsZero() {
		return "0"
	}
	digits := make([]byte, len(d.D))
	for i, x := range d.D {
		digits[i] = '0' + x
	}
	return fmt.Sprintf("0.%se%d", digits, d.DP)
}

// Clone returns an independent copy.
func (d *Dec) Clone() *Dec {
	return &Dec{D: append([]byte(nil), d.D...), DP: d.DP, Truncated: d.Truncated}
}
