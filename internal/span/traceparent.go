package span

import "encoding/hex"

// W3C Trace Context `traceparent` interop (https://www.w3.org/TR/trace-context/):
//
//	version "-" trace-id "-" parent-id "-" trace-flags
//	   00   -  32 lowhex  -  16 lowhex -   2 lowhex
//
// Parsing follows the spec's forward-compatibility rule: any version
// except the reserved "ff" is accepted as long as the four known
// fields are well-formed (a future version may append fields after
// the flags, separated by another dash).  All-zero trace or parent
// IDs are invalid and reject the header, falling back to a fresh
// trace — a malformed upstream must not be able to alias every
// request onto trace 0.

// sampledFlag is the only trace-flags bit the spec defines.
const sampledFlag = 0x01

// ParseTraceParent parses a traceparent header value.  ok is false —
// and the other returns zero — for anything malformed, in which case
// the caller starts a fresh trace.
func ParseTraceParent(h string) (tid TraceID, parent SpanID, sampled bool, ok bool) {
	// Fixed layout: 2+1+32+1+16+1+2 = 55 bytes minimum; longer is
	// only valid for future versions with a dash-separated suffix.
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, SpanID{}, false, false
	}
	ver, err := hex.DecodeString(h[0:2])
	if err != nil || ver[0] == 0xff {
		return TraceID{}, SpanID{}, false, false
	}
	if ver[0] == 0 && len(h) != 55 {
		return TraceID{}, SpanID{}, false, false // version 00 has no suffix
	}
	if len(h) > 55 && h[55] != '-' {
		return TraceID{}, SpanID{}, false, false
	}
	if !isLowerHex(h[3:35]) || !isLowerHex(h[36:52]) || !isLowerHex(h[53:55]) {
		return TraceID{}, SpanID{}, false, false
	}
	hex.Decode(tid[:], []byte(h[3:35]))
	hex.Decode(parent[:], []byte(h[36:52]))
	var flags [1]byte
	hex.Decode(flags[:], []byte(h[53:55]))
	if tid.IsZero() || parent.IsZero() {
		return TraceID{}, SpanID{}, false, false
	}
	return tid, parent, flags[0]&sampledFlag != 0, true
}

// FormatTraceParent renders a version-00 traceparent value for
// outgoing propagation.
func FormatTraceParent(tid TraceID, sid SpanID, sampled bool) string {
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = hex.AppendEncode(b, tid[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, sid[:])
	if sampled {
		b = append(b, "-01"...)
	} else {
		b = append(b, "-00"...)
	}
	return string(b)
}

// isLowerHex reports whether s is entirely lowercase hex digits (the
// spec forbids uppercase in traceparent).
func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
