package span

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSpanLifecycle covers the basic shape: a root with two nested
// children publishes one trace whose records carry the shared trace
// ID, correct parent links, names, and positive durations, root
// first.
func TestSpanLifecycle(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Seed: 42})
	root, ctx := tr.StartRequest(context.Background(), "/v1/shortest", "")
	if got := FromContext(ctx); got != root {
		t.Fatalf("FromContext = %p, want the root span %p", got, root)
	}
	root.SetAttr("http.method", "GET")

	child := FromContext(ctx).StartChild("convert")
	child.SetAttrInt("digits", 17)
	grand := child.StartChild("render")
	grand.End()
	child.End()

	if reason := root.EndRequest(200); reason != "head" {
		t.Fatalf("EndRequest reason = %q, want head (SampleEvery=1)", reason)
	}

	traces, total := tr.Ring().Snapshot()
	if total != 1 || len(traces) != 1 {
		t.Fatalf("ring total=%d len=%d, want 1 and 1", total, len(traces))
	}
	tc := traces[0]
	if tc.Route != "/v1/shortest" || tc.Reason != "head" || tc.TraceID != root.TraceID() {
		t.Fatalf("trace = %+v, want route /v1/shortest reason head id %s", tc, root.TraceID())
	}
	if len(tc.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(tc.Spans))
	}
	rootRec := tc.Spans[0]
	if rootRec.Name != "/v1/shortest" || rootRec.ParentID != "" || rootRec.SpanID != root.ID() {
		t.Fatalf("first record %+v is not the root span", rootRec)
	}
	if len(rootRec.Attrs) == 0 || rootRec.Attrs[0] != (Attr{"http.method", "GET"}) {
		t.Fatalf("root attrs = %v, want http.method=GET first", rootRec.Attrs)
	}
	byName := map[string]Record{}
	for _, r := range tc.Spans {
		if r.TraceID != tc.TraceID {
			t.Fatalf("span %s carries trace %s, want %s", r.Name, r.TraceID, tc.TraceID)
		}
		if r.DurationMS < 0 {
			t.Fatalf("span %s has negative duration %v", r.Name, r.DurationMS)
		}
		byName[r.Name] = r
	}
	if byName["convert"].ParentID != rootRec.SpanID {
		t.Errorf("convert parent = %s, want root %s", byName["convert"].ParentID, rootRec.SpanID)
	}
	if byName["render"].ParentID != byName["convert"].SpanID {
		t.Errorf("render parent = %s, want convert %s", byName["render"].ParentID, byName["convert"].SpanID)
	}
	if byName["convert"].Attrs[0] != (Attr{"digits", "17"}) {
		t.Errorf("convert attrs = %v, want digits=17", byName["convert"].Attrs)
	}
}

// TestNilSpanSafety: every method on a nil span (the tracing-off
// path) must be a no-op, and an untraced context yields exactly that
// nil.
func TestNilSpanSafety(t *testing.T) {
	var s *Span
	if s.Recording() || s.TraceID() != "" || s.ID() != "" || s.TraceParent() != "" {
		t.Fatal("nil span reports live state")
	}
	s.SetAttr("k", "v")
	s.SetAttrInt("n", 1)
	s.End()
	if reason := s.EndRequest(500); reason != "" {
		t.Fatalf("nil EndRequest reason = %q, want empty", reason)
	}
	if c := s.StartChild("x"); c != nil {
		t.Fatalf("nil StartChild = %v, want nil", c)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext on bare context = %v, want nil", got)
	}
}

// TestSamplingDeterministic: the head decision is a pure function of
// (seed, trace ID) — two tracers sharing a seed agree on every ID,
// rerunning is stable, and a different seed picks a different subset.
// The 1-in-N rate must land near N over many IDs.
func TestSamplingDeterministic(t *testing.T) {
	const n = 8
	a := New(Config{SampleEvery: n, Seed: 7})
	b := New(Config{SampleEvery: n, Seed: 7})
	c := New(Config{SampleEvery: n, Seed: 8})

	ids := make([]TraceID, 4096)
	gen := New(Config{Seed: 99})
	for i := range ids {
		ids[i] = gen.newTraceID()
	}

	sampled, differs := 0, 0
	for _, id := range ids {
		if a.Sampled(id) != a.Sampled(id) || a.Sampled(id) != b.Sampled(id) {
			t.Fatalf("decision for %s is not deterministic across same-seed tracers", id)
		}
		if a.Sampled(id) {
			sampled++
		}
		if a.Sampled(id) != c.Sampled(id) {
			differs++
		}
	}
	// 4096 trials at p=1/8: expect 512, allow a wide ±50% band — this
	// checks the rate is wired through, not the mixer's quality.
	if sampled < 256 || sampled > 768 {
		t.Errorf("sampled %d of 4096 at 1-in-%d, want roughly 512", sampled, n)
	}
	if differs == 0 {
		t.Error("seeds 7 and 8 made identical decisions on all 4096 IDs")
	}

	// SampleEvery 1 keeps everything; 0 keeps nothing at the head.
	if !New(Config{SampleEvery: 1}).Sampled(ids[0]) {
		t.Error("SampleEvery=1 did not sample")
	}
	if New(Config{SampleEvery: 0}).Sampled(ids[0]) {
		t.Error("SampleEvery=0 head-sampled")
	}
}

// TestAlwaysCaptureSlowAndError: with head sampling effectively off,
// slow and 5xx requests still publish, tagged with the right reason;
// a fast 2xx does not.
func TestAlwaysCaptureSlowAndError(t *testing.T) {
	tr := New(Config{SampleEvery: 0, SlowRequest: time.Nanosecond, Seed: 1})
	root, _ := tr.StartRequest(context.Background(), "/slow", "")
	time.Sleep(time.Microsecond)
	if reason := root.EndRequest(200); reason != "slow" {
		t.Fatalf("slow request reason = %q, want slow", reason)
	}

	tr2 := New(Config{SampleEvery: 0, Seed: 1}) // no slow trigger
	root, _ = tr2.StartRequest(context.Background(), "/err", "")
	if reason := root.EndRequest(503); reason != "error" {
		t.Fatalf("5xx request reason = %q, want error", reason)
	}
	root, _ = tr2.StartRequest(context.Background(), "/ok", "")
	if reason := root.EndRequest(200); reason != "" {
		t.Fatalf("fast 2xx reason = %q, want discarded", reason)
	}
	if _, total := tr2.Ring().Snapshot(); total != 1 {
		t.Fatalf("ring total = %d, want only the error trace", total)
	}
}

// TestSpanAndAttrBounds: the per-trace span cap and per-span attr cap
// hold, with the overflow counted in Dropped rather than grown.
func TestSpanAndAttrBounds(t *testing.T) {
	tr := New(Config{SampleEvery: 1, MaxSpans: 4, MaxAttrs: 2, Seed: 3})
	root, _ := tr.StartRequest(context.Background(), "/", "")
	for i := 0; i < 10; i++ {
		c := root.StartChild(fmt.Sprintf("c%d", i))
		for j := 0; j < 10; j++ {
			c.SetAttrInt("k", int64(j))
		}
		c.End()
	}
	root.EndRequest(200)
	traces, _ := tr.Ring().Snapshot()
	tc := traces[0]
	if len(tc.Spans) != 5 { // root + MaxSpans children
		t.Fatalf("kept %d spans, want 5", len(tc.Spans))
	}
	if tc.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", tc.Dropped)
	}
	for _, r := range tc.Spans[1:] {
		if len(r.Attrs) != 2 {
			t.Fatalf("span %s kept %d attrs, want cap 2", r.Name, len(r.Attrs))
		}
	}
}

// TestDoubleEnd: ending a span twice records it once; EndRequest
// after End is a no-op.
func TestDoubleEnd(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Seed: 5})
	root, _ := tr.StartRequest(context.Background(), "/", "")
	c := root.StartChild("c")
	c.End()
	c.End()
	if reason := root.EndRequest(200); reason == "" {
		t.Fatal("first EndRequest discarded")
	}
	if reason := root.EndRequest(200); reason != "" {
		t.Fatalf("second EndRequest republished (%q)", reason)
	}
	traces, total := tr.Ring().Snapshot()
	if total != 1 || len(traces[0].Spans) != 2 {
		t.Fatalf("total=%d spans=%d, want 1 trace with 2 spans", total, len(traces[0].Spans))
	}
}

// TestRingEviction: the ring keeps exactly the newest Cap traces,
// newest-first, and Total keeps counting past the wrap.
func TestRingEviction(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 11; i++ {
		r.Add(&Trace{Route: fmt.Sprintf("/t%d", i)})
	}
	traces, total := r.Snapshot()
	if total != 11 {
		t.Fatalf("total = %d, want 11", total)
	}
	if len(traces) != 4 {
		t.Fatalf("kept %d, want ring cap 4", len(traces))
	}
	for i, tc := range traces {
		if want := fmt.Sprintf("/t%d", 10-i); tc.Route != want {
			t.Errorf("snapshot[%d] = %s, want %s (newest first)", i, tc.Route, want)
		}
	}
}

// TestRingConcurrent is the -race twin: many goroutines publishing
// complete traces while others snapshot.  Every snapshot must be
// consistent — non-nil traces only, each at most once, never more
// than Cap.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(8)
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Add(&Trace{Route: fmt.Sprintf("/w%d/%d", w, i)})
			}
		}(w)
	}
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				traces, _ := r.Snapshot()
				if len(traces) > r.Cap() {
					t.Errorf("snapshot len %d > cap %d", len(traces), r.Cap())
					return
				}
				seen := map[*Trace]bool{}
				for _, tc := range traces {
					if tc == nil {
						t.Error("snapshot contains nil trace")
						return
					}
					if seen[tc] {
						t.Error("snapshot contains duplicate trace")
						return
					}
					seen[tc] = true
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := r.Total(); got != writers*perWriter {
		t.Fatalf("total = %d, want %d", got, writers*perWriter)
	}
}

// TestConcurrentChildSpans is the -race twin for the per-request
// trace buffer: children ended from several goroutines (a handler
// fanning work out) all land in the published trace.
func TestConcurrentChildSpans(t *testing.T) {
	tr := New(Config{SampleEvery: 1, MaxSpans: 64, Seed: 11})
	root, _ := tr.StartRequest(context.Background(), "/fan", "")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := root.StartChild(fmt.Sprintf("shard%d", i))
			c.SetAttrInt("i", int64(i))
			c.End()
		}(i)
	}
	wg.Wait()
	root.EndRequest(200)
	traces, _ := tr.Ring().Snapshot()
	if len(traces[0].Spans) != 17 {
		t.Fatalf("published %d spans, want 17", len(traces[0].Spans))
	}
}

// TestIDUniqueness: IDs from one tracer never repeat or go zero over
// a large draw (the generator is a counter walk through a bijective
// mixer, so this is exact, not probabilistic).
func TestIDUniqueness(t *testing.T) {
	tr := New(Config{Seed: 1})
	seenT := map[TraceID]bool{}
	seenS := map[SpanID]bool{}
	for i := 0; i < 10000; i++ {
		tid, sid := tr.newTraceID(), tr.newSpanID()
		if tid.IsZero() || sid.IsZero() {
			t.Fatal("zero ID minted")
		}
		if seenT[tid] || seenS[sid] {
			t.Fatal("duplicate ID minted")
		}
		seenT[tid], seenS[sid] = true, true
	}
}
