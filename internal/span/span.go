// Package span is the request-level tracing layer: spans with IDs,
// parent links, start/duration, and bounded attributes, propagated
// through context.Context from the HTTP edge down to the conversion
// kernels, and collected — per W3C Trace Context identity — into
// bounded in-memory traces.
//
// The package is deliberately self-contained (stdlib only, no
// OpenTelemetry dependency): the serving layer needs exactly four
// things from a tracing system — W3C `traceparent` interop so an
// upstream proxy's trace ID survives into this process, cheap
// context-carried child spans so handlers can attribute time to
// decode/convert/encode stages, deterministic head sampling so
// capture cost is bounded and reproducible, and a bounded ring of
// completed traces an operator can read without a collector sidecar.
// Everything else a full tracing SDK adds (exporters, batch
// processors, resource detection) is weight this process does not
// carry.
//
// Cost model: when a Tracer is not installed (or a request is handled
// without one), every Span method is a nil-receiver no-op, so
// instrumented code paths pay one pointer test.  When tracing is on,
// spans for *every* request are recorded into a small per-request
// buffer — not just head-sampled ones — because the capture decision
// is partly retrospective: a request that turns out slow or ends 5xx
// is always published, whatever the sampling rate said at its start.
// The per-request buffer is bounded (MaxSpans, MaxAttrs), so the
// worst-case cost per request is a few hundred bytes and a handful of
// appends.
//
// Sampling is deterministic given (Seed, TraceID): the head decision
// hashes the trace ID with the seeded mix rather than consulting a
// global RNG, so a replayed request with the same traceparent gets
// the same decision, two replicas sharing a seed agree on which
// traces to keep, and tests can pin decisions exactly.  An incoming
// traceparent with the `sampled` flag set forces capture — the
// upstream already decided this trace matters.
package span

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is the W3C 16-byte trace identity shared by every span of
// one request's trace.
type TraceID [16]byte

// SpanID is the W3C 8-byte span identity.
type SpanID [8]byte

// IsZero reports the all-zero (invalid per W3C) trace ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports the all-zero (invalid per W3C) span ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// Attr is one span attribute.  Values are strings: the set of facts a
// span carries (route, backend name, digit count) is small and
// human-destined, so a typed value union would buy nothing.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Record is one finished span, shaped for JSON at /debug/traces.
type Record struct {
	TraceID    string    `json:"trace_id"`
	SpanID     string    `json:"span_id"`
	ParentID   string    `json:"parent_id,omitempty"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Attrs      []Attr    `json:"attrs,omitempty"`
}

// Trace is one completed, published request trace: the root span
// first, children in end order after it.
type Trace struct {
	TraceID string `json:"trace_id"`
	// Route is the root span's name, duplicated here so ring readers
	// can filter without walking spans.
	Route string `json:"route"`
	// DurationMS is the root span's duration.
	DurationMS float64 `json:"duration_ms"`
	// Reason says why the trace was kept: "head" (sampled at the
	// start), "slow" (>= the slow threshold), or "error" (5xx).
	Reason string `json:"reason"`
	// Dropped counts spans discarded past the per-trace cap.
	Dropped int      `json:"dropped_spans,omitempty"`
	Spans   []Record `json:"spans"`
}

// Config tunes a Tracer.  The zero value of every field gets a
// default from New except SampleEvery, which callers choose.
type Config struct {
	// SampleEvery is the head-sampling rate: 1 keeps every trace, N>1
	// keeps roughly 1 in N (decided deterministically per trace ID).
	// Zero or negative keeps none at the head — slow and error
	// captures still fire.
	SampleEvery int
	// SlowRequest is the root-span duration at or above which a trace
	// is always published, sampled or not.  Zero disables the slow
	// trigger.
	SlowRequest time.Duration
	// RingCap bounds the completed-trace ring.  Zero means 64.
	RingCap int
	// MaxSpans bounds spans kept per trace; later spans are counted
	// in Trace.Dropped instead of stored.  Zero means 64.
	MaxSpans int
	// MaxAttrs bounds attributes kept per span; later SetAttr calls
	// are dropped.  Zero means 16.
	MaxAttrs int
	// Seed drives ID generation and the sampling decision.  Zero
	// means a random seed; tests and replica fleets set it for
	// reproducible decisions.
	Seed uint64
}

// Tracer owns the ID generator, the sampling decision, and the
// completed-trace ring.  All methods are safe for concurrent use.
type Tracer struct {
	cfg   Config
	seed  uint64
	state atomic.Uint64 // ID-generator walk, advanced per 8 bytes
	ring  *Ring
}

// New builds a Tracer, applying defaults.
func New(cfg Config) *Tracer {
	if cfg.RingCap <= 0 {
		cfg.RingCap = 64
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = 64
	}
	if cfg.MaxAttrs <= 0 {
		cfg.MaxAttrs = 16
	}
	seed := cfg.Seed
	if seed == 0 {
		var b [8]byte
		rand.Read(b[:]) // per crypto/rand docs, never fails
		seed = binary.LittleEndian.Uint64(b[:])
	}
	t := &Tracer{cfg: cfg, seed: seed, ring: NewRing(cfg.RingCap)}
	t.state.Store(seed)
	return t
}

// Ring returns the completed-trace ring for readers (/debug/traces).
func (t *Tracer) Ring() *Ring { return t.ring }

// SampleEvery reports the configured head-sampling rate.
func (t *Tracer) SampleEvery() int { return t.cfg.SampleEvery }

// splitmix64 is the SplitMix64 output function: a full-avalanche
// mixer, used both to walk the ID generator and to hash trace IDs
// into sampling decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// next8 yields the next 8 pseudo-random ID bytes.
func (t *Tracer) next8() uint64 { return splitmix64(t.state.Add(0x9e3779b97f4a7c15)) }

// newTraceID mints a non-zero trace ID.
func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:8], t.next8())
		binary.BigEndian.PutUint64(id[8:], t.next8())
	}
	return id
}

// newSpanID mints a non-zero span ID.
func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:], t.next8())
	}
	return id
}

// Sampled is the deterministic head decision for a trace ID: keep
// when the seeded hash of the ID lands in the 1-in-SampleEvery slice.
// The same (seed, ID) pair always decides the same way.
func (t *Tracer) Sampled(id TraceID) bool {
	n := t.cfg.SampleEvery
	if n <= 0 {
		return false
	}
	if n == 1 {
		return true
	}
	h := splitmix64(t.seed ^ binary.BigEndian.Uint64(id[:8]) ^ binary.BigEndian.Uint64(id[8:]))
	return h%uint64(n) == 0
}

// activeTrace accumulates one request's finished spans until the root
// ends and the publish decision is made.
type activeTrace struct {
	mu      sync.Mutex
	spans   []Record
	dropped int
	max     int
}

func (a *activeTrace) add(r Record) {
	a.mu.Lock()
	if len(a.spans) < a.max {
		a.spans = append(a.spans, r)
	} else {
		a.dropped++
	}
	a.mu.Unlock()
}

// Span is one live span.  A nil *Span is valid everywhere: every
// method no-ops, so instrumentation points cost one pointer test when
// tracing is off.  A Span's mutating methods (SetAttr, End) are meant
// for the goroutine that started it; the cross-goroutine handoff
// happens at publication through the ring.
type Span struct {
	tracer  *Tracer
	trace   *activeTrace
	traceID TraceID
	id      SpanID
	parent  SpanID
	name    string
	start   time.Time
	attrs   []Attr
	sampled bool // head decision, root only
	ended   bool
}

// StartRequest opens a request root span named name (by convention
// the route).  traceparent, when it parses as a W3C header, donates
// the trace ID and remote parent — and its sampled flag forces
// capture; otherwise a fresh trace ID is minted.  The returned
// context carries the span for FromContext.
func (t *Tracer) StartRequest(ctx context.Context, name, traceparent string) (*Span, context.Context) {
	var traceID TraceID
	var parent SpanID
	forced := false
	if tid, psid, sampled, ok := ParseTraceParent(traceparent); ok {
		traceID, parent, forced = tid, psid, sampled
	} else {
		traceID = t.newTraceID()
	}
	s := &Span{
		tracer:  t,
		trace:   &activeTrace{max: t.cfg.MaxSpans},
		traceID: traceID,
		id:      t.newSpanID(),
		parent:  parent,
		name:    name,
		start:   time.Now(),
		sampled: forced || t.Sampled(traceID),
	}
	return s, ContextWithSpan(ctx, s)
}

// StartChild opens a child span under s.  Nil-safe.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tracer:  s.tracer,
		trace:   s.trace,
		traceID: s.traceID,
		id:      s.tracer.newSpanID(),
		parent:  s.id,
		name:    name,
		start:   time.Now(),
	}
}

// Recording reports whether the span is live (non-nil), i.e. whether
// building attributes for it does anything.
func (s *Span) Recording() bool { return s != nil }

// TraceID returns the span's trace identity as 32 hex digits, "" for
// a nil span.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID.String()
}

// ID returns the span's identity as 16 hex digits, "" for nil.
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id.String()
}

// TraceParent renders the span as an outgoing W3C traceparent header
// value (for handlers that call further services), "" for nil.
func (s *Span) TraceParent() string {
	if s == nil {
		return ""
	}
	return FormatTraceParent(s.traceID, s.id, s.sampled)
}

// SetAttr attaches one key/value fact, up to the tracer's per-span
// cap.  Nil-safe.
func (s *Span) SetAttr(key, value string) {
	if s == nil || len(s.attrs) >= s.tracer.cfg.MaxAttrs {
		return
	}
	s.attrs = append(s.attrs, Attr{key, value})
}

// SetAttrInt is SetAttr for integer facts.
func (s *Span) SetAttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, itoa(v))
}

// itoa avoids strconv for the package's only int formatting need.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// record converts the span to its finished Record.
func (s *Span) record(end time.Time) Record {
	r := Record{
		TraceID:    s.traceID.String(),
		SpanID:     s.id.String(),
		Name:       s.name,
		Start:      s.start,
		DurationMS: float64(end.Sub(s.start)) / 1e6,
		Attrs:      s.attrs,
	}
	if !s.parent.IsZero() {
		r.ParentID = s.parent.String()
	}
	return r
}

// End finishes a child span, folding it into the request's trace
// buffer.  Ending twice is a no-op.  Nil-safe.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.trace.add(s.record(time.Now()))
}

// EndRequest finishes a root span and decides publication: the trace
// lands in the ring when the head decision sampled it, when the
// request ran at or over the tracer's slow threshold, or when status
// is a 5xx.  It returns the publish reason ("head", "slow", "error")
// or "" when the trace was discarded.  Nil-safe.
func (s *Span) EndRequest(status int) string {
	if s == nil || s.ended {
		return ""
	}
	s.ended = true
	end := time.Now()
	dur := end.Sub(s.start)

	reason := ""
	switch {
	case s.sampled:
		reason = "head"
	case status >= 500:
		reason = "error"
	case s.tracer.cfg.SlowRequest > 0 && dur >= s.tracer.cfg.SlowRequest:
		reason = "slow"
	}
	if reason == "" {
		return ""
	}

	root := s.record(end)
	s.trace.mu.Lock()
	spans := make([]Record, 0, len(s.trace.spans)+1)
	spans = append(spans, root)
	spans = append(spans, s.trace.spans...)
	dropped := s.trace.dropped
	s.trace.mu.Unlock()

	s.tracer.ring.Add(&Trace{
		TraceID:    root.TraceID,
		Route:      root.Name,
		DurationMS: root.DurationMS,
		Reason:     reason,
		Dropped:    dropped,
		Spans:      spans,
	})
	return reason
}

// ctxKey keys the span context value.
type ctxKey struct{}

// ContextWithSpan stores s on the context.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the context's span, nil when the request is not
// traced — the nil flows safely into every Span method.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
