package span

import (
	"context"
	"testing"
)

func TestParseTraceParent(t *testing.T) {
	tid, parent, sampled, ok := ParseTraceParent(
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok {
		t.Fatal("canonical spec example rejected")
	}
	if tid.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %s", tid)
	}
	if parent.String() != "00f067aa0ba902b7" {
		t.Errorf("parent id = %s", parent)
	}
	if !sampled {
		t.Error("flags 01 not read as sampled")
	}

	if _, _, sampled, ok = ParseTraceParent(
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00"); !ok || sampled {
		t.Errorf("flags 00: ok=%v sampled=%v, want accepted unsampled", ok, sampled)
	}

	// A future version may append dash-separated fields.
	if _, _, _, ok = ParseTraceParent(
		"cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok {
		t.Error("future-version suffix rejected")
	}

	for _, bad := range []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // version 00 has no suffix
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // reserved version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // zero parent id
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",   // uppercase forbidden
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // wrong separator
		"0g-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // bad version hex
		"00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01",   // bad id hex
	} {
		if _, _, _, ok := ParseTraceParent(bad); ok {
			t.Errorf("malformed %q accepted", bad)
		}
	}
}

func TestFormatTraceParentRoundTrip(t *testing.T) {
	tr := New(Config{Seed: 17})
	tid, sid := tr.newTraceID(), tr.newSpanID()
	for _, sampled := range []bool{true, false} {
		h := FormatTraceParent(tid, sid, sampled)
		gt, gp, gs, ok := ParseTraceParent(h)
		if !ok || gt != tid || gp != sid || gs != sampled {
			t.Fatalf("round trip of %q: ok=%v tid=%s parent=%s sampled=%v", h, ok, gt, gp, gs)
		}
	}
}

// TestPropagationAdoptsUpstreamIdentity: a request arriving with a
// valid traceparent continues that trace — same trace ID, remote
// parent on the root span — and the sampled flag forces capture even
// with head sampling off.
func TestPropagationAdoptsUpstreamIdentity(t *testing.T) {
	tr := New(Config{SampleEvery: 0, Seed: 9})
	const upstream = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	root, _ := tr.StartRequest(context.Background(), "/v1/parse", upstream)
	if root.TraceID() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id = %s, want the upstream's", root.TraceID())
	}
	if reason := root.EndRequest(200); reason != "head" {
		t.Fatalf("reason = %q, want head (upstream sampled flag forces capture)", reason)
	}
	traces, _ := tr.Ring().Snapshot()
	if got := traces[0].Spans[0].ParentID; got != "00f067aa0ba902b7" {
		t.Fatalf("root parent = %s, want the upstream span id", got)
	}

	// The outgoing header hands the trace on with this span as parent.
	root2, _ := tr.StartRequest(context.Background(), "/v1/parse", upstream)
	if want := "00-4bf92f3577b34da6a3ce929d0e0e4736-" + root2.ID() + "-01"; root2.TraceParent() != want {
		t.Fatalf("outgoing traceparent = %q, want %q", root2.TraceParent(), want)
	}

	// An unsampled upstream header with sampling off: identity adopted,
	// trace discarded.
	root3, _ := tr.StartRequest(context.Background(), "/v1/parse",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	if reason := root3.EndRequest(200); reason != "" {
		t.Fatalf("unsampled upstream captured (%q)", reason)
	}
}
