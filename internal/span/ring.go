package span

import "sync/atomic"

// Ring is the bounded store of completed traces, written once per
// published trace and read by the /debug/traces endpoint.
//
// Reads are lock-free: each slot is an atomic pointer to an immutable
// Trace, and a snapshot is a cursor load followed by per-slot pointer
// loads.  A writer that laps the reader mid-snapshot can only replace
// a slot's trace with a *newer* one — the reader never sees a torn
// trace, only (rarely) a near-duplicate of the freshest entries,
// which the snapshot filters by publication index.  Writers
// coordinate solely through the cursor fetch-add, so concurrent
// publications never block each other either.
type Ring struct {
	slots []slot
	// cursor counts publications; slot i%len holds publication i.
	cursor atomic.Uint64
}

// slot pairs the trace with the publication index that wrote it, so
// snapshot readers can discard entries a concurrent writer replaced
// out from under them.
type slot struct {
	seq atomic.Uint64 // publication index + 1 (0 = empty)
	t   atomic.Pointer[Trace]
}

// NewRing builds a ring holding the last n traces (n >= 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{slots: make([]slot, n)}
}

// Add publishes one completed trace.
func (r *Ring) Add(t *Trace) {
	i := r.cursor.Add(1) - 1
	s := &r.slots[i%uint64(len(r.slots))]
	s.t.Store(t)
	s.seq.Store(i + 1)
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Total returns the all-time publication count, overwritten entries
// included.
func (r *Ring) Total() uint64 { return r.cursor.Load() }

// Snapshot returns the retained traces newest-first, plus the
// all-time publication count.  It takes no locks; entries observed
// mid-overwrite (their publication index no longer matches the
// snapshot's window) are skipped rather than misordered.
func (r *Ring) Snapshot() ([]*Trace, uint64) {
	n := uint64(len(r.slots))
	end := r.cursor.Load()
	start := uint64(0)
	if end > n {
		start = end - n
	}
	out := make([]*Trace, 0, end-start)
	for i := end; i > start; i-- {
		s := &r.slots[(i-1)%n]
		t := s.t.Load()
		if t == nil || s.seq.Load() != i {
			continue // empty, or overwritten by a writer racing this read
		}
		out = append(out, t)
	}
	return out, end
}
