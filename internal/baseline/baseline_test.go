package baseline

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"floatprint/internal/core"
	"floatprint/internal/fpformat"
	"floatprint/internal/schryer"
)

func digitsString(digits []byte) string {
	var sb strings.Builder
	for _, d := range digits {
		sb.WriteByte("0123456789abcdefghijklmnopqrstuvwxyz"[d])
	}
	return sb.String()
}

func TestSteeleWhiteMatchesEstimateScaling(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		v := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		val := fpformat.DecodeFloat64(v)
		sw, err := SteeleWhite(val, 10)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := core.FreeFormat(val, 10, core.ScalingEstimate, core.ReaderUnknown)
		if err != nil {
			t.Fatal(err)
		}
		if digitsString(sw.Digits) != digitsString(fast.Digits) || sw.K != fast.K {
			t.Fatalf("SteeleWhite(%g) differs from fast scaling", v)
		}
	}
}

func TestFixedDigitsAgainstStrconvE(t *testing.T) {
	// strconv 'e' with prec digits after the point = prec+1 significant
	// digits, correctly rounded with the same ties-to-even rule.
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		v := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		n := 1 + r.Intn(20)
		res, err := FixedDigits(fpformat.DecodeFloat64(v), 10, n)
		if err != nil {
			t.Fatalf("FixedDigits(%g, %d): %v", v, n, err)
		}
		s := strconv.FormatFloat(v, 'e', n-1, 64)
		mant, expStr, _ := strings.Cut(s, "e")
		exp, _ := strconv.Atoi(expStr)
		want := strings.Replace(mant, ".", "", 1)
		if digitsString(res.Digits) != want || res.K != exp+1 {
			t.Fatalf("FixedDigits(%g, %d) = %q K=%d, strconv %%e says %q K=%d",
				v, n, digitsString(res.Digits), res.K, want, exp+1)
		}
	}
}

func TestFixedDigits17DistinguishesDoubles(t *testing.T) {
	// 17 significant digits are guaranteed to round-trip.
	for _, v := range schryer.CorpusN(4000) {
		res, err := FixedDigits(fpformat.DecodeFloat64(v), 10, 17)
		if err != nil {
			t.Fatal(err)
		}
		s := "0." + digitsString(res.Digits) + "e" + strconv.Itoa(res.K)
		back, err := strconv.ParseFloat(s, 64)
		if err != nil || back != v {
			t.Fatalf("17-digit %q reads back %v (%v), want %v", s, back, err, v)
		}
	}
}

func TestFixedDigitsCarry(t *testing.T) {
	res, err := FixedDigits(fpformat.DecodeFloat64(9.9999), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if digitsString(res.Digits) != "100" || res.K != 2 {
		t.Errorf("9.9999@3 = %q K=%d, want \"100\" K=2", digitsString(res.Digits), res.K)
	}
}

func TestFixedDigitsTieToEven(t *testing.T) {
	// 0.5 exactly, one digit at the units position means scientific 5e-1;
	// two significant digits of 0.125 (exact) are "12" (ties to even), and
	// of 0.375 are "38".
	res, err := FixedDigits(fpformat.DecodeFloat64(0.125), 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if digitsString(res.Digits) != "12" || res.K != 0 {
		t.Errorf("0.125@2 = %q K=%d, want \"12\" K=0", digitsString(res.Digits), res.K)
	}
	res, err = FixedDigits(fpformat.DecodeFloat64(0.375), 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if digitsString(res.Digits) != "38" || res.K != 0 {
		t.Errorf("0.375@2 = %q K=%d, want \"38\" K=0", digitsString(res.Digits), res.K)
	}
}

func TestFixedDigitsOtherBases(t *testing.T) {
	res, err := FixedDigits(fpformat.DecodeFloat64(255), 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if digitsString(res.Digits) != "ff00" || res.K != 2 {
		t.Errorf("255 base16@4 = %q K=%d, want \"ff00\" K=2", digitsString(res.Digits), res.K)
	}
	res, err = FixedDigits(fpformat.DecodeFloat64(1.0/3.0), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if digitsString(res.Digits) != "10101011" || res.K != -1 {
		t.Errorf("1/3 base2@8 = %q K=%d, want \"10101011\" K=-1", digitsString(res.Digits), res.K)
	}
}

func TestFixedDigitsErrors(t *testing.T) {
	good := fpformat.DecodeFloat64(1.5)
	if _, err := FixedDigits(good, 1, 5); err == nil {
		t.Errorf("base 1 accepted")
	}
	if _, err := FixedDigits(good, 10, 0); err == nil {
		t.Errorf("zero digits accepted")
	}
	if _, err := FixedDigits(fpformat.DecodeFloat64(-2), 10, 5); err == nil {
		t.Errorf("negative value accepted")
	}
	if _, err := FixedDigits(fpformat.DecodeFloat64(math.Inf(1)), 10, 5); err == nil {
		t.Errorf("Inf accepted")
	}
}

func TestFixedDigitsDenormal(t *testing.T) {
	res, err := FixedDigits(fpformat.DecodeFloat64(5e-324), 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 4.9406564584124654e-324: five digits are 49407.
	if digitsString(res.Digits) != "49407" || res.K != -323 {
		t.Errorf("smallest denormal@5 = %q K=%d", digitsString(res.Digits), res.K)
	}
}

func TestNaivePrintfUsuallyCorrectSometimesNot(t *testing.T) {
	// The naive printer must agree with exact rounding on most inputs and
	// disagree on a nonzero fraction — that is its purpose.  Run over a
	// corpus slice and require 0 < incorrect < 5%.
	corpus := schryer.CorpusN(20000)
	incorrect := 0
	for _, v := range corpus {
		nd, nk := NaivePrintf(v, 17)
		res, err := FixedDigits(fpformat.DecodeFloat64(v), 10, 17)
		if err != nil {
			t.Fatal(err)
		}
		if digitsString(nd) != digitsString(res.Digits) || nk != res.K {
			incorrect++
		}
	}
	if incorrect == 0 {
		t.Errorf("naive printf was always correct; it must exhibit rounding errors")
	}
	if incorrect > len(corpus)/20 {
		t.Errorf("naive printf incorrect on %d/%d (>5%%): too broken to be a plausible printf",
			incorrect, len(corpus))
	}
	t.Logf("naive printf incorrect on %d of %d corpus values", incorrect, len(corpus))
}

func TestNaivePrintfEasyValues(t *testing.T) {
	for _, c := range []struct {
		v    float64
		n    int
		want string
		k    int
	}{
		{1, 3, "100", 1},
		{123.456, 6, "123456", 3},
		{0.25, 2, "25", 0},
	} {
		d, k := NaivePrintf(c.v, c.n)
		if digitsString(d) != c.want || k != c.k {
			t.Errorf("NaivePrintf(%g, %d) = %q K=%d, want %q K=%d",
				c.v, c.n, digitsString(d), k, c.want, c.k)
		}
	}
	if d, _ := NaivePrintf(-1, 5); d != nil {
		t.Errorf("NaivePrintf(-1) should return nil")
	}
	if d, _ := NaivePrintf(1, 0); d != nil {
		t.Errorf("NaivePrintf(n=0) should return nil")
	}
}
