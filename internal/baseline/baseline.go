// Package baseline implements the comparison systems of the paper's
// evaluation (Tables 2 and 3):
//
//   - SteeleWhite: free-format conversion with Steele & White's iterative
//     scaling (reference [5]), the slow baseline of Table 2.
//   - FixedDigits: the "straightforward fixed-format algorithm" of Table 3,
//     which prints a requested number of significant digits correctly
//     rounded using exact integer arithmetic, with none of the shortest-
//     output machinery.
//   - NaivePrintf: a simulation of a 1996-era C library printf that
//     extracts digits with ordinary floating-point arithmetic.  Modern
//     libraries round correctly, so the paper's "incorrectly rounded
//     printf output" counts cannot be reproduced against a real libc; this
//     routine exhibits exactly the failure mode those printfs had (error
//     accumulation in repeated multiply-by-ten), letting the Table 3
//     "Incorrect" column be regenerated.  See DESIGN.md.
package baseline

import (
	"fmt"
	"math"

	"floatprint/internal/bignat"
	"floatprint/internal/core"
	"floatprint/internal/extfloat"
	"floatprint/internal/fpformat"
)

// SteeleWhite converts v to shortest-form digits using the iterative
// scaling search of Steele & White's Dragon algorithm.  Their algorithm
// does not account for the reader's rounding mode, which corresponds to
// the conservative ReaderUnknown setting.
func SteeleWhite(v fpformat.Value, base int) (core.Result, error) {
	return core.FreeFormat(v, base, core.ScalingIterative, core.ReaderUnknown)
}

// FixedDigits prints exactly n significant base-B digits of the positive
// finite value v, correctly rounded (ties to even, as modern C libraries
// round), returning digit values and K with V = 0.d₁…dₙ × Bᴷ.  It performs
// the conversion with exact integer arithmetic but no rounding-range
// logic, so its digits may include "garbage" beyond the value's precision
// — which is the point of the baseline.
func FixedDigits(v fpformat.Value, base, n int) (core.Result, error) {
	if err := checkValue(v, base); err != nil {
		return core.Result{}, err
	}
	if n <= 0 {
		return core.Result{}, fmt.Errorf("baseline: digit count %d must be positive", n)
	}
	r, s := valueRatio(v) // v = r/s exactly

	// Find k, the smallest integer with v < B^k, starting from a bit-length
	// estimate and correcting exactly.  Maintain v/Bᵏ as num/den so
	// negative k needs no inexact division.
	k := int(math.Ceil(logB(v, base) + 1e-10))
	bw := bignat.Word(base)
	num, den := r, s
	if k >= 0 {
		den = bignat.Mul(den, core.PowersOf(base).Pow(uint(k)))
	} else {
		num = bignat.Mul(num, core.PowersOf(base).Pow(uint(-k)))
	}
	for bignat.Cmp(num, den) >= 0 { // v >= B^k: k too low
		den = bignat.MulWord(den, bw)
		k++
	}
	for {
		nb := bignat.MulWord(num, bw)
		if bignat.Cmp(nb, den) >= 0 {
			break
		}
		num = nb // v < B^(k-1): k too high
		k--
	}

	// Generate n digits of num/den ∈ [1/B, 1).  The working numerator is
	// cloned once (num may share storage with the caller's mantissa) and
	// then mutated in place, matching the allocation discipline of the
	// free-format loop so the Table 3 time ratio compares algorithms, not
	// memory-management styles.
	digits := make([]byte, 0, n)
	cur := make(bignat.Nat, len(num), len(num)+2)
	copy(cur, num)
	for i := 0; i < n; i++ {
		cur = bignat.MulWordInPlace(cur, bw)
		var d bignat.Word
		d, cur = bignat.DivModSmallQuotientInPlace(cur, den)
		digits = append(digits, byte(d))
	}
	// Round at the last digit on the exact remainder.
	switch bignat.Cmp(bignat.Shl(cur, 1), den) {
	case 1:
		digits, k = roundUpDigits(digits, base, k, n)
	case 0:
		if digits[n-1]%2 == 1 { // ties to even
			digits, k = roundUpDigits(digits, base, k, n)
		}
	}
	return core.Result{Digits: digits, K: k, NSig: n}, nil
}

// roundUpDigits increments the last digit with carry; on ripple past the
// first digit the string becomes 1 followed by zeros and K rises, keeping
// exactly n digits.
func roundUpDigits(digits []byte, base, k, n int) ([]byte, int) {
	for i := n - 1; i >= 0; i-- {
		if digits[i] != byte(base-1) {
			digits[i]++
			return digits, k
		}
		digits[i] = 0
	}
	digits[0] = 1
	return digits, k + 1
}

// NaivePrintf extracts n significant decimal digits of v > 0 the way an
// x87-era C library printf did: scale into [1, 10) with one multiplication
// by a long-double power of ten from a correctly rounded constant table,
// then peel digits with truncate-and-scale in 64-bit-mantissa extended
// arithmetic (see internal/extfloat).  The accumulated error of a few
// units in 2⁻⁶⁴ flips the final digit on a small fraction of inputs, so
// the result is usually — but not always — correctly rounded, reproducing
// the defect counted in Table 3's "Incorrect" column.
func NaivePrintf(v float64, n int) (digits []byte, k int) {
	if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) || n <= 0 {
		return nil, 0
	}
	// Estimate floor(log10 v) from the binary exponent (Frexp is exact
	// even on subnormals, unlike math.Log10 on some platforms).
	frac, e2 := math.Frexp(v)
	k = int(math.Floor(float64(e2)*0.30102999566398120 + math.Log10(frac)))
	x := extfloat.FromFloat64(v).MulPow10(-k)
	for x.Cmp(10) >= 0 {
		x = x.MulPow10(-1)
		k++
	}
	for x.Cmp(1) < 0 {
		x = x.MulPow10(1)
		k--
	}
	k++ // convert floor(log10 v) to the 0.d₁…dₙ × 10ᵏ convention

	ten := extfloat.FromUint64(10)
	digits = make([]byte, n)
	for i := 0; i < n; i++ {
		d, rest := x.DigitBelow()
		if d > 9 {
			d = 9 // clamp accumulated error at the top of the range
		}
		digits[i] = byte(d)
		x = extfloat.Mul(rest, ten)
	}
	// Round on the next digit's worth of remainder.
	if x.Cmp(5) >= 0 {
		digits, k = roundUpDigits(digits, 10, k, n)
	}
	return digits, k
}

func valueRatio(v fpformat.Value) (r, s bignat.Nat) {
	pows := core.PowersOf(v.Fmt.Base)
	if v.E >= 0 {
		return bignat.Mul(v.F, pows.Pow(uint(v.E))), bignat.Nat{1}
	}
	// The denominator is mutated by neither side: sharing the cached power
	// is safe (bignat operands are read-only).
	return v.F, pows.Pow(uint(-v.E))
}

// logB approximates log_base(v) from the mantissa's bit length, accurate
// enough (within one) for the exact correction loops above.
func logB(v fpformat.Value, base int) float64 {
	lnB := math.Log(float64(base))
	lnb := math.Log(float64(v.Fmt.Base))
	return (float64(v.F.BitLen())*math.Ln2 + float64(v.E)*lnb) / lnB
}

func checkValue(v fpformat.Value, base int) error {
	if base < 2 || base > 36 {
		return fmt.Errorf("baseline: output base %d out of range [2,36]", base)
	}
	if v.Neg || (v.Class != fpformat.Normal && v.Class != fpformat.Denormal) {
		return fmt.Errorf("baseline: value must be positive and finite")
	}
	return nil
}
