// Package gay implements David Gay's scaling-factor estimator (reference
// [2] of Burger & Dybvig; the same estimate appears in his widely used
// dtoa.c).  The paper compares its own two-flop estimator against Gay's
// five-flop first-degree-Taylor estimate: Gay's is more accurate (almost
// always exact), Burger & Dybvig's is cheaper and its occasional off-by-one
// costs nothing thanks to the penalty-free fixup.  This package exists for
// that ablation (DESIGN.md, Ablation A).
package gay

import "math"

// log10of2 and related constants are those used in dtoa.c.
const (
	log10of2   = 0.301029995663981195 // log10(2)
	invLn10    = 0.434294481903251828 // 1/ln(10) — slope of the Taylor term
	taylorBias = 0.1760912590558      // log10(1.5)
)

// EstimateLog10 returns Gay's estimate of ⌊log10(v)⌋ for a positive finite
// v, using the first-degree Taylor series of log10 around 1.5 applied to
// the fraction part, plus the exponent contribution:
//
//	log10(m·2ᵉ) ≈ (m − 1.5)/(1.5·ln 10) + log10(1.5) + e·log10(2)
//
// Five floating-point operations, as the paper notes.  The estimate is
// within one of the true value; dtoa.c corrects downward cases with a
// follow-up check, as does the harness that benchmarks this estimator.
func EstimateLog10(v float64) int {
	m, e := math.Frexp(v) // v = m·2ᵉ, m ∈ [0.5, 1)
	// Rebase to m' ∈ [1, 2) as dtoa does: v = m'·2^(e−1).
	m *= 2
	e--
	est := (m-1.5)*(invLn10/1.5) + taylorBias + float64(e)*log10of2
	return int(math.Floor(est))
}

// EstimateCeilLog10 adapts the estimate to the quantity the printing
// algorithm needs, ⌈log10(v)⌉-style scale factors, with the paper's guard
// constant subtracted.  Note that unlike Burger & Dybvig's floor-based
// estimate this one can overshoot by one (the tangent line lies above the
// concave logarithm), so a scaler using it needs the two-sided fixup.
func EstimateCeilLog10(v float64) int {
	m, e := math.Frexp(v)
	m *= 2
	e--
	est := (m-1.5)*(invLn10/1.5) + taylorBias + float64(e)*log10of2
	return int(math.Ceil(est - 1e-10))
}
