package gay

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"floatprint/internal/schryer"
)

// floorLog10 returns the exact ⌊log10 v⌋ via strconv's scientific
// rendering (math.Log10 flushes subnormals on some platforms, so it cannot
// serve as the oracle here).
func floorLog10(v float64) int {
	s := strconv.FormatFloat(v, 'e', 17, 64)
	_, expStr, _ := strings.Cut(s, "e")
	e, _ := strconv.Atoi(expStr)
	return e
}

func TestEstimateLog10WithinOne(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		v := math.Abs(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			continue
		}
		est := EstimateLog10(v)
		truth := floorLog10(v)
		if d := est - truth; d < -1 || d > 1 {
			t.Fatalf("EstimateLog10(%g) = %d, truth %d", v, est, truth)
		}
	}
}

func TestEstimateLog10Denormals(t *testing.T) {
	for bits := uint64(1); bits < 1<<52; bits = bits*5 + 3 {
		v := math.Float64frombits(bits)
		est := EstimateLog10(v)
		truth := floorLog10(v)
		if d := est - truth; d < -1 || d > 1 {
			t.Fatalf("EstimateLog10(denormal %g) = %d, truth %d", v, est, truth)
		}
	}
}

func TestEstimateLog10MostlyExact(t *testing.T) {
	// Gay's estimate is "almost always" exact — require > 90% on the
	// Schryer corpus (the tangent-line bias costs accuracy near binade
	// edges).
	corpus := schryer.CorpusN(50000)
	exact := 0
	for _, v := range corpus {
		if EstimateLog10(v) == floorLog10(v) {
			exact++
		}
	}
	if exact*100 < len(corpus)*90 {
		t.Fatalf("Gay estimate exact on only %d/%d", exact, len(corpus))
	}
	t.Logf("Gay estimate exact on %d of %d (%.2f%%)", exact, len(corpus),
		100*float64(exact)/float64(len(corpus)))
}

func TestEstimateCeilLog10WithinOne(t *testing.T) {
	for _, v := range schryer.CorpusN(50000) {
		est := EstimateCeilLog10(v)
		// ceil(log10 v) is floorLog10+1 except at exact powers of ten
		// (which cannot occur in the corpus's binary patterns beyond 1).
		truth := floorLog10(v) + 1
		if v == 1 {
			truth = 0
		}
		if d := est - truth; d < -1 || d > 1 {
			t.Fatalf("EstimateCeilLog10(%g) = %d, truth %d", v, est, truth)
		}
	}
}

func TestEstimateKnownValues(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{1, 0}, {10, 1}, {0.1, -1}, {1e100, 100}, {1e-100, -100},
		// 9.99 shows the tangent-line overestimate: the raw estimate says
		// 1 where the truth is 0 — exactly why dtoa.c re-checks.
		{9.99, 1},
	}
	for _, c := range cases {
		if got := EstimateLog10(c.v); got != c.want {
			t.Errorf("EstimateLog10(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}
