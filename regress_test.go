package floatprint

import (
	"math"
	"strings"
	"testing"
)

// Regression: ShortestDigits32 used to enter the grisu fast path before
// classifying specials, relying on the fast path's internal guards to
// reject ±0, ±Inf, and NaN.  Specials must be classified first, exactly as
// shortestValue does for float64.
func TestShortestDigits32SpecialsBeforeFastPath(t *testing.T) {
	cases := []struct {
		in    float32
		class Class
		neg   bool
		str   string
	}{
		{float32(math.Copysign(0, -1)), IsZero, true, "-0"},
		{0, IsZero, false, "0"},
		{float32(math.Inf(1)), IsInf, false, "+Inf"},
		{float32(math.Inf(-1)), IsInf, true, "-Inf"},
		{float32(math.NaN()), IsNaN, false, "NaN"},
	}
	for _, c := range cases {
		d, err := ShortestDigits32(c.in, nil)
		if err != nil {
			t.Fatalf("ShortestDigits32(%v): %v", c.in, err)
		}
		if d.Class != c.class || d.Neg != c.neg {
			t.Errorf("ShortestDigits32(%v) = {Class:%v Neg:%v}, want {Class:%v Neg:%v}",
				c.in, d.Class, d.Neg, c.class, c.neg)
		}
		if got := d.String(); got != c.str {
			t.Errorf("ShortestDigits32(%v).String() = %q, want %q", c.in, got, c.str)
		}
		// The specials must also survive non-default (non-fast-path) options.
		d2, err := ShortestDigits32(c.in, &Options{Base: 16})
		if err != nil {
			t.Fatalf("ShortestDigits32(%v, base 16): %v", c.in, err)
		}
		if d2.Class != c.class || d2.Base != 16 {
			t.Errorf("ShortestDigits32(%v, base 16) = {Class:%v Base:%d}, want {Class:%v Base:16}",
				c.in, d2.Class, d2.Base, c.class)
		}
	}
}

// Regression: Digits.render used to call opts.norm itself and, on error,
// silently patch up the half-initialized Options and keep rendering.
// Validation now happens once at the API boundary; rendering is driven by
// the (already validated) Digits value, so a Digits carrying a non-default
// base prints correctly from plain String().
func TestStringOnNonDefaultBaseDigits(t *testing.T) {
	d, err := ShortestDigits(255.5, &Options{Base: 16})
	if err != nil {
		t.Fatal(err)
	}
	if d.Base != 16 {
		t.Fatalf("Base = %d, want 16", d.Base)
	}
	if got := d.String(); got != "ff.8" {
		t.Errorf("String() = %q, want %q", got, "ff.8")
	}
	// Base 36 digits must use the '@' exponent marker ('e' is a digit).
	d36, err := ShortestDigits(1e30, &Options{Base: 36, Notation: NotationScientific})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := d36.Append(nil, &Options{Base: 36, Notation: NotationScientific}); err != nil {
		t.Fatal(err)
	} else if !strings.Contains(string(got), "@") {
		t.Errorf("base-36 scientific rendering %q missing '@' exponent marker", got)
	}
}

// Regression companion: invalid options are rejected at the Append API
// boundary and never reach rendering; dst comes back unchanged.
func TestAppendRejectsInvalidOptions(t *testing.T) {
	d, err := ShortestDigits(1.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := []byte("prefix:")
	out, err := d.Append(dst, &Options{Base: 99})
	if err == nil {
		t.Fatal("Append with base 99 did not error")
	}
	if string(out) != "prefix:" {
		t.Errorf("dst mutated on error: %q", out)
	}
}

// Regression: FixedDigits/Fixed used to pass n <= 0 straight through —
// the zero-value path silently produced an empty Digits and nonzero values
// leaked an internal core error.  The count is now validated at the public
// boundary for every value class.
func TestFixedDigitsRejectsNonPositiveCount(t *testing.T) {
	for _, n := range []int{0, -1, -17} {
		for _, v := range []float64{0, math.Copysign(0, -1), 1.5, math.Inf(1), math.NaN()} {
			if _, err := FixedDigits(v, n, nil); err == nil {
				t.Errorf("FixedDigits(%v, %d) did not error", v, n)
			} else if !strings.Contains(err.Error(), "must be positive") {
				t.Errorf("FixedDigits(%v, %d) error %q lacks a clear message", v, n, err)
			}
		}
		if _, err := FixedDigits32(1.5, n, nil); err == nil {
			t.Errorf("FixedDigits32(1.5, %d) did not error", n)
		}
		if _, err := FormatFixed(1.5, n, nil); err == nil {
			t.Errorf("FormatFixed(1.5, %d) did not error", n)
		}
	}
	// The zero-value path with a positive count still pads as before.
	d, err := FixedDigits(0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Class != IsZero || len(d.Digits) != 3 || d.NSig != 3 {
		t.Errorf("FixedDigits(0, 3) = %+v, want 3 zero positions", d)
	}
	if got := d.String(); got != "0.00" {
		t.Errorf("FixedDigits(0, 3).String() = %q, want %q", got, "0.00")
	}
}

// Fixed (string form) documents a panic on invalid counts; pin it so the
// behavior stays deliberate rather than an accident of the error path.
func TestFixedPanicsOnNonPositiveCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Fixed(1.5, 0) did not panic")
		}
	}()
	Fixed(1.5, 0)
}

// AppendShortest must agree byte-for-byte with Shortest across finite
// values, specials, and both signs, while sharing dst storage correctly.
func TestAppendShortestMatchesShortest(t *testing.T) {
	vals := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.1, -0.1, math.Pi, 5e-324,
		math.MaxFloat64, 1e21, 1e22, 123456.789, -2.2250738585072011e-308,
		math.Inf(1), math.Inf(-1), math.NaN(),
		// Values known to fail grisu certification exercise the fallback.
		3.5844466002796428e298, 8.988465674311579e307,
	}
	buf := make([]byte, 0, 64)
	for _, v := range vals {
		buf = AppendShortest(buf[:0], v)
		if got, want := string(buf), Shortest(v); got != want {
			t.Errorf("AppendShortest(%g) = %q, want %q", v, got, want)
		}
	}
	// Appending must preserve existing dst content.
	out := AppendShortest([]byte("x="), 2.5)
	if string(out) != "x=2.5" {
		t.Errorf("AppendShortest with prefix = %q", out)
	}
}

// Digits.Append must agree with String/render for every class and with
// explicit options.
func TestDigitsAppendMatchesString(t *testing.T) {
	vals := []float64{0, -0.25, 1.0 / 3, 6.02214076e23, math.Inf(-1), math.NaN(), 1e-7}
	for _, v := range vals {
		d, err := ShortestDigits(v, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.Append(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != d.String() {
			t.Errorf("Append(%g) = %q, String() = %q", v, got, d.String())
		}
	}
	// Fixed-format digits with marks, positional forcing, and NoMarks.
	d, err := FixedDigits(1234.5, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []*Options{nil, {Notation: NotationScientific}, {NoMarks: true}, {Notation: NotationPositional, NoMarks: true}} {
		got, err := d.Append(nil, o)
		if err != nil {
			t.Fatal(err)
		}
		var want string
		if o == nil {
			want = d.String()
		} else {
			oo, _ := o.norm()
			want = d.render(oo)
		}
		if string(got) != want {
			t.Errorf("Append(%+v) = %q, want %q", o, got, want)
		}
	}
}

// AppendFixed is the fixed-format twin of AppendShortest.
func TestAppendFixed(t *testing.T) {
	got := AppendFixed(nil, 1234.5678, 6)
	if string(got) != Fixed(1234.5678, 6) {
		t.Errorf("AppendFixed = %q, want %q", got, Fixed(1234.5678, 6))
	}
}
