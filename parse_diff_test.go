package floatprint

// Differential coverage for the read side: the Eisel–Lemire fast path
// against the exact big-integer reader over the full Schryer corpus,
// the base-aware special-name sweep ("inf" is a perfectly good number
// in base 24), and the parse path-mix counters.

import (
	"math"
	"testing"

	"floatprint/internal/fastparse"
	"floatprint/internal/fpformat"
	"floatprint/internal/reader"
	"floatprint/internal/schryer"
)

// TestParseFastVsExactCorpus is the acceptance differential: for every
// corpus value, the shortest rendering must (a) read back bit-exactly
// through the full Parse pipeline and (b) whenever the fast path
// certifies it, yield the very same bits the exact reader produces.
// The fast path declining is always allowed; disagreeing never is.
func TestParseFastVsExactCorpus(t *testing.T) {
	values := schryer.Corpus()
	if testing.Short() {
		values = schryer.CorpusN(20000)
	}
	var hits, misses int
	buf := make([]byte, 0, 32)
	for _, v := range values {
		buf = AppendShortest(buf[:0], v)
		for _, s := range []string{string(buf), "-" + string(buf)} {
			want := v
			if s[0] == '-' {
				want = -v
			}
			got, err := Parse(s, nil)
			if err != nil || math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("Parse(%q) = %g (%#x), err=%v; want %g (%#x)",
					s, got, math.Float64bits(got), err, want, math.Float64bits(want))
			}
			fast, _, ok := fastparse.Parse64(s)
			if !ok {
				misses++
				continue
			}
			hits++
			if math.Float64bits(fast) != math.Float64bits(want) {
				t.Fatalf("fastparse.Parse64(%q) certified %g (%#x); exact reader says %g (%#x)",
					s, fast, math.Float64bits(fast), want, math.Float64bits(want))
			}
		}
	}
	total := hits + misses
	t.Logf("fast path certified %d/%d shortest strings (%.1f%%)",
		hits, total, 100*float64(hits)/float64(total))
	// Shortest strings are short decimals well inside the pow10 table;
	// only ties and near-subnormals should decline.
	if hits < total*9/10 {
		t.Fatalf("fast-path hit rate %d/%d below 90%% on shortest strings", hits, total)
	}
}

// TestParseFastVsExactReader32 runs the same differential at binary32
// geometry, against reader.Parse directly.
func TestParseFastVsExactReader32(t *testing.T) {
	n := 50000
	if testing.Short() {
		n = 5000
	}
	for _, v := range schryer.CorpusN(n) {
		w := float32(v)
		if math.IsInf(float64(w), 0) {
			continue
		}
		s := Shortest32(w)
		fast, _, ok := fastparse.Parse32(s)
		if !ok {
			continue
		}
		ev, err := reader.Parse(s, 10, fpformat.Binary32, reader.NearestEven)
		if err != nil {
			t.Fatalf("reader.Parse(%q): %v", s, err)
		}
		want, err := ev.Float32()
		if err != nil {
			t.Fatalf("exact value of %q: %v", s, err)
		}
		if math.Float32bits(fast) != math.Float32bits(want) {
			t.Fatalf("fastparse.Parse32(%q) certified %g (%#x); exact reader says %g (%#x)",
				s, fast, math.Float32bits(fast), want, math.Float32bits(want))
		}
	}
}

// TestParseSpecialsBaseAware pins the satellite bugfix: "inf", "nan",
// and "infinity" are special names only while they contain at least one
// rune that is not a digit of the requested base.  In base 24 and up,
// i/n/f are digits and "inf" denotes 18·24²+23·24+15; pre-fix, the
// special check fired before the base was consulted and swallowed these.
func TestParseSpecialsBaseAware(t *testing.T) {
	digitVal := func(s string, base int) float64 {
		v := 0.0
		for i := 0; i < len(s); i++ {
			d := int(s[i] - 'a' + 10)
			if s[i] <= '9' {
				d = int(s[i] - '0')
			}
			if d >= base {
				t.Fatalf("digitVal: %q is not a base-%d numeral", s, base)
			}
			v = v*float64(base) + float64(d)
		}
		return v
	}

	// Below base 24 (or 35 for "infinity"), the names stay special.
	for _, base := range []int{10, 16, 23} {
		for _, in := range []string{"inf", "+inf", "infinity"} {
			got, err := Parse(in, &Options{Base: base})
			if err != nil || !math.IsInf(got, 1) {
				t.Fatalf("Parse(%q, base=%d) = %g, %v; want +Inf", in, base, got, err)
			}
		}
		if got, err := Parse("-inf", &Options{Base: base}); err != nil || !math.IsInf(got, -1) {
			t.Fatalf("Parse(%q, base=%d) = %g, %v; want -Inf", "-inf", base, got, err)
		}
		if got, err := Parse("nan", &Options{Base: base}); err != nil || !math.IsNaN(got) {
			t.Fatalf("Parse(%q, base=%d) = %g, %v; want NaN", "nan", base, got, err)
		}
	}

	// At base 24+ every rune of "inf"/"nan" is a digit: numbers, not names.
	for _, base := range []int{24, 30, 36} {
		for _, name := range []string{"inf", "nan"} {
			want := digitVal(name, base)
			got, err := Parse(name, &Options{Base: base})
			if err != nil || got != want {
				t.Fatalf("Parse(%q, base=%d) = %g, %v; want the numeral %g", name, base, got, err, want)
			}
			if got, err := Parse("-"+name, &Options{Base: base}); err != nil || got != -want {
				t.Fatalf("Parse(%q, base=%d) = %g, %v; want %g", "-"+name, base, got, err, -want)
			}
		}
	}

	// "infinity" needs 'y' (=34) and 't' (=29): digits only from base 35.
	if got, err := Parse("infinity", &Options{Base: 34}); err != nil || !math.IsInf(got, 1) {
		t.Fatalf("Parse(\"infinity\", base=34) = %g, %v; want +Inf ('y' is not a digit)", got, err)
	}
	for _, base := range []int{35, 36} {
		want := digitVal("infinity", base)
		got, err := Parse("infinity", &Options{Base: base})
		if err != nil || got != want {
			t.Fatalf("Parse(\"infinity\", base=%d) = %g, %v; want the numeral %g", base, got, err, want)
		}
	}

	// Float32 read side shares parseSpecial; spot-check both regimes.
	if got, err := Parse32("inf", &Options{Base: 16}); err != nil || !math.IsInf(float64(got), 1) {
		t.Fatalf("Parse32(\"inf\", base=16) = %g, %v; want +Inf", got, err)
	}
	if got, err := Parse32("inf", &Options{Base: 36}); err != nil || got != float32(digitVal("inf", 36)) {
		t.Fatalf("Parse32(\"inf\", base=36) = %g, %v; want the numeral", got, err)
	}
}

// TestParseStatsPathMix checks that the parse counters partition the
// traffic the way the implementation routes it: fast hits for certified
// base-10 parses, fast misses for declines (which then also count as
// exact parses), and exact-only for traffic the gate never offers to
// the fast path (non-decimal bases, directed rounding).
func TestParseStatsPathMix(t *testing.T) {
	prev := SetStatsEnabled(true)
	defer SetStatsEnabled(prev)

	before := Snapshot()
	for _, s := range []string{"0.3", "1.5", "-2.25"} { // certifiable
		if _, err := Parse(s, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range []string{"1e23", "5e-324"} { // declined: tie, subnormal
		if _, err := Parse(s, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Parse("ff.8", &Options{Base: 16}); err != nil { // gate skipped
		t.Fatal(err)
	}
	if _, err := Parse("0.3", &Options{Reader: ReaderNearestAway}); err != nil { // gate skipped
		t.Fatal(err)
	}
	d := Snapshot().Sub(before)

	if d.ParseFastHits != 3 {
		t.Errorf("ParseFastHits = %d, want 3", d.ParseFastHits)
	}
	if d.ParseFastMisses != 2 {
		t.Errorf("ParseFastMisses = %d, want 2", d.ParseFastMisses)
	}
	// Exact parses: the two declines plus the two gate-skipped parses.
	if d.ParseExact != 4 {
		t.Errorf("ParseExact = %d, want 4", d.ParseExact)
	}
}
