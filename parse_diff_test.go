package floatprint

// Differential coverage for the read side: the Eisel–Lemire fast path
// against the exact big-integer reader over the full Schryer corpus,
// the base-aware special-name sweep ("inf" is a perfectly good number
// in base 24), and the parse path-mix counters.

import (
	"errors"
	"math"
	"testing"

	"floatprint/internal/fastparse"
	"floatprint/internal/fpformat"
	"floatprint/internal/reader"
	"floatprint/internal/schryer"
)

// TestParseFastVsExactCorpus is the acceptance differential: for every
// corpus value, the shortest rendering must (a) read back bit-exactly
// through the full Parse pipeline and (b) whenever the fast path
// certifies it, yield the very same bits the exact reader produces.
// The fast path declining is always allowed; disagreeing never is.
func TestParseFastVsExactCorpus(t *testing.T) {
	values := schryer.Corpus()
	if testing.Short() {
		values = schryer.CorpusN(20000)
	}
	var hits, misses int
	buf := make([]byte, 0, 32)
	for _, v := range values {
		buf = AppendShortest(buf[:0], v)
		for _, s := range []string{string(buf), "-" + string(buf)} {
			want := v
			if s[0] == '-' {
				want = -v
			}
			got, err := Parse(s, nil)
			if err != nil || math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("Parse(%q) = %g (%#x), err=%v; want %g (%#x)",
					s, got, math.Float64bits(got), err, want, math.Float64bits(want))
			}
			fast, _, ok := fastparse.Parse64(s)
			if !ok {
				misses++
				continue
			}
			hits++
			if math.Float64bits(fast) != math.Float64bits(want) {
				t.Fatalf("fastparse.Parse64(%q) certified %g (%#x); exact reader says %g (%#x)",
					s, fast, math.Float64bits(fast), want, math.Float64bits(want))
			}
		}
	}
	total := hits + misses
	t.Logf("fast path certified %d/%d shortest strings (%.1f%%)",
		hits, total, 100*float64(hits)/float64(total))
	// Shortest strings are short decimals well inside the pow10 table;
	// only ties and near-subnormals should decline.
	if hits < total*9/10 {
		t.Fatalf("fast-path hit rate %d/%d below 90%% on shortest strings", hits, total)
	}
}

// TestParseFastVsExactReader32 runs the same differential at binary32
// geometry, against reader.Parse directly.
func TestParseFastVsExactReader32(t *testing.T) {
	n := 50000
	if testing.Short() {
		n = 5000
	}
	for _, v := range schryer.CorpusN(n) {
		w := float32(v)
		if math.IsInf(float64(w), 0) {
			continue
		}
		s := Shortest32(w)
		fast, _, ok := fastparse.Parse32(s)
		if !ok {
			continue
		}
		ev, err := reader.Parse(s, 10, fpformat.Binary32, reader.NearestEven)
		if err != nil {
			t.Fatalf("reader.Parse(%q): %v", s, err)
		}
		want, err := ev.Float32()
		if err != nil {
			t.Fatalf("exact value of %q: %v", s, err)
		}
		if math.Float32bits(fast) != math.Float32bits(want) {
			t.Fatalf("fastparse.Parse32(%q) certified %g (%#x); exact reader says %g (%#x)",
				s, fast, math.Float32bits(fast), want, math.Float32bits(want))
		}
	}
}

// TestParseSpecialsBaseAware pins the satellite bugfix: "inf", "nan",
// and "infinity" are special names only while they contain at least one
// rune that is not a digit of the requested base.  In base 24 and up,
// i/n/f are digits and "inf" denotes 18·24²+23·24+15; pre-fix, the
// special check fired before the base was consulted and swallowed these.
func TestParseSpecialsBaseAware(t *testing.T) {
	digitVal := func(s string, base int) float64 {
		v := 0.0
		for i := 0; i < len(s); i++ {
			d := int(s[i] - 'a' + 10)
			if s[i] <= '9' {
				d = int(s[i] - '0')
			}
			if d >= base {
				t.Fatalf("digitVal: %q is not a base-%d numeral", s, base)
			}
			v = v*float64(base) + float64(d)
		}
		return v
	}

	// Below base 24 (or 35 for "infinity"), the names stay special.
	for _, base := range []int{10, 16, 23} {
		for _, in := range []string{"inf", "+inf", "infinity"} {
			got, err := Parse(in, &Options{Base: base})
			if err != nil || !math.IsInf(got, 1) {
				t.Fatalf("Parse(%q, base=%d) = %g, %v; want +Inf", in, base, got, err)
			}
		}
		if got, err := Parse("-inf", &Options{Base: base}); err != nil || !math.IsInf(got, -1) {
			t.Fatalf("Parse(%q, base=%d) = %g, %v; want -Inf", "-inf", base, got, err)
		}
		if got, err := Parse("nan", &Options{Base: base}); err != nil || !math.IsNaN(got) {
			t.Fatalf("Parse(%q, base=%d) = %g, %v; want NaN", "nan", base, got, err)
		}
	}

	// At base 24+ every rune of "inf"/"nan" is a digit: numbers, not names.
	for _, base := range []int{24, 30, 36} {
		for _, name := range []string{"inf", "nan"} {
			want := digitVal(name, base)
			got, err := Parse(name, &Options{Base: base})
			if err != nil || got != want {
				t.Fatalf("Parse(%q, base=%d) = %g, %v; want the numeral %g", name, base, got, err, want)
			}
			if got, err := Parse("-"+name, &Options{Base: base}); err != nil || got != -want {
				t.Fatalf("Parse(%q, base=%d) = %g, %v; want %g", "-"+name, base, got, err, -want)
			}
		}
	}

	// "infinity" needs 'y' (=34) and 't' (=29): digits only from base 35.
	if got, err := Parse("infinity", &Options{Base: 34}); err != nil || !math.IsInf(got, 1) {
		t.Fatalf("Parse(\"infinity\", base=34) = %g, %v; want +Inf ('y' is not a digit)", got, err)
	}
	for _, base := range []int{35, 36} {
		want := digitVal("infinity", base)
		got, err := Parse("infinity", &Options{Base: base})
		if err != nil || got != want {
			t.Fatalf("Parse(\"infinity\", base=%d) = %g, %v; want the numeral %g", base, got, err, want)
		}
	}

	// Float32 read side shares parseSpecial; spot-check both regimes.
	if got, err := Parse32("inf", &Options{Base: 16}); err != nil || !math.IsInf(float64(got), 1) {
		t.Fatalf("Parse32(\"inf\", base=16) = %g, %v; want +Inf", got, err)
	}
	if got, err := Parse32("inf", &Options{Base: 36}); err != nil || got != float32(digitVal("inf", 36)) {
		t.Fatalf("Parse32(\"inf\", base=36) = %g, %v; want the numeral", got, err)
	}
}

// TestDirectedParseErrorIdentity is the satellite differential for the
// directed parse fast path, pinning error *identity*, not just value
// identity: for every adversarial input, the default-dispatch parse and
// the forced-exact parse must agree on the returned bits, on whether an
// error occurred, and on the error text byte for byte.  The deliberate
// focus is the PR-8 bug class — a value just above MaxFloat64 under the
// truncating direction saturates at MaxFloat64 *with* ErrRange, so a
// fast path that truncates to the same bits but drops the error would
// pass any value-only differential.
func TestDirectedParseErrorIdentity(t *testing.T) {
	inputs := []string{
		// Overflow frontier: saturates (MaxFloat64 + ErrRange) under the
		// truncating direction, ±Inf + ErrRange under the outward one.
		"1.7976931348623158e308", "-1.7976931348623158e308",
		"1.7976931348623157e308", "-1.7976931348623157e308",
		"1e309", "-1e309", "2e308", "1e999", "-1e999", "1e99999",
		"179769313486231580793728971405303415261810836789423e258",
		// Underflow frontier: denormals and the sub-denormal band (rounds
		// to ±0 or the smallest denormal depending on direction, no error).
		"5e-324", "-5e-324", "1e-323", "4.9e-324", "1e-324", "1e-400",
		"2.2250738585072014e-308", "2.2250738585072011e-308",
		// Ordinary traffic, ties, truncated significands.
		"0.3", "-0.1", "1.5", "1e23", "9007199254740993",
		"3.141592653589793238462643383279502884197169399375105820974944",
		"123456789012345678901234567890e-10",
		// Syntax errors: identical error text required.
		"", "+", "-", "1e", "e5", "1.2.3", "0x10", "12#.#", " 1", "1 ",
		// Marks and '@' exponents from the paper's grammar.
		"1#2", "12##e-2", "1@5", "-3@-2",
		// Specials.
		"inf", "-inf", "nan", "Infinity",
	}
	modes := []ReaderRounding{ReaderTowardNegInf, ReaderTowardPosInf}
	for _, mode := range modes {
		fastOpts := &Options{Reader: mode}
		exactOpts := &Options{Reader: mode, Backend: BackendExact}
		for _, s := range inputs {
			fv, ferr := Parse(s, fastOpts)
			ev, eerr := Parse(s, exactOpts)
			if math.Float64bits(fv) != math.Float64bits(ev) {
				t.Errorf("Parse(%q, %v): fast %g (%#x), exact %g (%#x)",
					s, mode, fv, math.Float64bits(fv), ev, math.Float64bits(ev))
			}
			if (ferr == nil) != (eerr == nil) {
				t.Errorf("Parse(%q, %v): fast err %v, exact err %v", s, mode, ferr, eerr)
				continue
			}
			if ferr != nil && ferr.Error() != eerr.Error() {
				t.Errorf("Parse(%q, %v): error text diverged\nfast:  %q\nexact: %q",
					s, mode, ferr.Error(), eerr.Error())
			}
		}
	}
	// The headline case, pinned absolutely rather than differentially: an
	// overflow toward the truncating direction keeps both the saturated
	// value and the range error.
	v, err := Parse("1e309", &Options{Reader: ReaderTowardNegInf})
	if v != math.MaxFloat64 || !errors.Is(err, ErrRange) {
		t.Errorf("Parse(1e309, TowardNegInf) = %g, %v; want MaxFloat64 with ErrRange", v, err)
	}
	v, err = Parse("-1e309", &Options{Reader: ReaderTowardPosInf})
	if v != -math.MaxFloat64 || !errors.Is(err, ErrRange) {
		t.Errorf("Parse(-1e309, TowardPosInf) = %g, %v; want -MaxFloat64 with ErrRange", v, err)
	}
}

// TestDirectedParseStatsAndGuards pins the dispatch gate for the
// directed fast parse: base-10 directed parses attempt it (hit or miss),
// while non-decimal bases, nearest modes, and BackendExact never do.
func TestDirectedParseStatsAndGuards(t *testing.T) {
	ResetStats()
	prev := SetStatsEnabled(true)
	defer SetStatsEnabled(prev)

	before := Snapshot()
	down := &Options{Reader: ReaderTowardNegInf}
	up := &Options{Reader: ReaderTowardPosInf}
	for _, s := range []string{"0.3", "1.5", "-2.25"} { // certifiable
		if _, err := Parse(s, down); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Parse("5e-324", up); err != nil { // declined: subnormal
		t.Fatal(err)
	}
	if _, err := Parse("ff.8", &Options{Base: 16, Reader: ReaderTowardNegInf}); err != nil {
		t.Fatal(err) // gate skipped: base
	}
	if _, err := Parse("0.3", &Options{Reader: ReaderTowardNegInf, Backend: BackendExact}); err != nil {
		t.Fatal(err) // gate skipped: forced exact
	}
	if _, err := Parse("0.3", nil); err != nil {
		t.Fatal(err) // nearest traffic lands on the nearest counters
	}
	d := Snapshot().Sub(before)
	if d.DirectedFastHits != 3 {
		t.Errorf("DirectedFastHits = %d, want 3", d.DirectedFastHits)
	}
	if d.DirectedFastMisses != 1 {
		t.Errorf("DirectedFastMisses = %d, want 1", d.DirectedFastMisses)
	}
	// Exact parses: the one decline plus the two gate-skipped parses.
	if d.ParseExact != 3 {
		t.Errorf("ParseExact = %d, want 3", d.ParseExact)
	}
	if d.ParseFastHits != 1 {
		t.Errorf("ParseFastHits = %d, want 1 (the nearest parse)", d.ParseFastHits)
	}
}

// TestParseStatsPathMix checks that the parse counters partition the
// traffic the way the implementation routes it: fast hits for certified
// base-10 parses, fast misses for declines (which then also count as
// exact parses), and exact-only for traffic the gate never offers to
// the fast path (non-decimal bases, directed rounding).
func TestParseStatsPathMix(t *testing.T) {
	prev := SetStatsEnabled(true)
	defer SetStatsEnabled(prev)

	before := Snapshot()
	for _, s := range []string{"0.3", "1.5", "-2.25"} { // certifiable
		if _, err := Parse(s, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range []string{"1e23", "5e-324"} { // declined: tie, subnormal
		if _, err := Parse(s, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Parse("ff.8", &Options{Base: 16}); err != nil { // gate skipped
		t.Fatal(err)
	}
	if _, err := Parse("0.3", &Options{Reader: ReaderNearestAway}); err != nil { // gate skipped
		t.Fatal(err)
	}
	d := Snapshot().Sub(before)

	if d.ParseFastHits != 3 {
		t.Errorf("ParseFastHits = %d, want 3", d.ParseFastHits)
	}
	if d.ParseFastMisses != 2 {
		t.Errorf("ParseFastMisses = %d, want 2", d.ParseFastMisses)
	}
	// Exact parses: the two declines plus the two gate-skipped parses.
	if d.ParseExact != 4 {
		t.Errorf("ParseExact = %d, want 4", d.ParseExact)
	}
}
