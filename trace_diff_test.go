package floatprint

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// TestTracingNeverPerturbsOutput is the tracing subsystem's acceptance
// invariant: across a large corpus, every base and reader mode, the
// traced conversion is byte-identical to the untraced one — with the
// aggregate recorder both off and on.  Tracing observes the algorithm;
// it must never steer it.
func TestTracingNeverPerturbsOutput(t *testing.T) {
	floats, _ := benchCorpus()
	corpus := floats[:3000]
	modes := []ReaderRounding{
		ReaderNearestEven, ReaderUnknown, ReaderNearestAway, ReaderNearestTowardZero,
	}
	bases := []int{2, 8, 10, 16, 36}

	prev := SetStatsEnabled(false)
	defer SetStatsEnabled(prev)

	check := func(t *testing.T, label string, plain, traced Digits, perr, terr error) {
		t.Helper()
		if (perr == nil) != (terr == nil) {
			t.Fatalf("%s: error mismatch: untraced %v, traced %v", label, perr, terr)
		}
		if perr != nil {
			return
		}
		ps, ts := plain.String(), traced.String()
		if ps != ts {
			t.Fatalf("%s: untraced %q != traced %q", label, ps, ts)
		}
	}

	run := func(t *testing.T) {
		var tr Trace
		for _, base := range bases {
			for _, mode := range modes {
				opts := &Options{Base: base, Reader: mode}
				for i, v := range corpus {
					label := fmt.Sprintf("v=%x base=%d mode=%d", v, base, mode)
					p, perr := ShortestDigits(v, opts)
					q, qerr := ShortestDigitsTraced(v, opts, &tr)
					check(t, "shortest "+label, p, q, perr, qerr)
					if i%7 == 0 { // fixed formats on a slice: they are ~10x slower
						p, perr = FixedDigits(v, 12, opts)
						q, qerr = FixedDigitsTraced(v, 12, opts, &tr)
						check(t, "fixed "+label, p, q, perr, qerr)
						p, perr = FixedPositionDigits(v, -3, opts)
						q, qerr = FixedPositionDigitsTraced(v, -3, opts, &tr)
						check(t, "fixedpos "+label, p, q, perr, qerr)
					}
				}
			}
		}
	}

	t.Run("collection-off", run)

	SetStatsEnabled(true)
	t.Run("collection-on", run)
}

// TestTracedSpecials: specials never reach digit generation; the trace
// must say so (backend none) for every entry point, and the outputs must
// match the untraced ones.
func TestTracedSpecials(t *testing.T) {
	var tr Trace
	for _, v := range []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN()} {
		tr.Backend = TraceBackendGrisu // stale garbage the reset must clear
		d, err := ShortestDigitsTraced(v, nil, &tr)
		if err != nil {
			t.Fatal(err)
		}
		u, _ := ShortestDigits(v, nil)
		if d.String() != u.String() {
			t.Errorf("special %v: traced %q != untraced %q", v, d.String(), u.String())
		}
		if tr.Backend != TraceBackendNone || tr.Iterations != 0 {
			t.Errorf("special %v: trace = %+v, want reset with backend none", v, tr)
		}
	}
}

// TestConcurrentTracedConversions is the -race twin for the trace
// recorder: many goroutines convert with per-goroutine Trace records
// while the shared aggregate recorder is enabled, interleaved with
// snapshot reads.  Runs under the CI race step (go test -race .).
func TestConcurrentTracedConversions(t *testing.T) {
	floats, _ := benchCorpus()
	ResetStats()
	prev := SetStatsEnabled(true)
	defer SetStatsEnabled(prev)

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			var tr Trace
			for i := 0; i < perWorker; i++ {
				v := floats[(off+i)%len(floats)]
				if _, err := ShortestDigitsTraced(v, nil, &tr); err != nil {
					t.Error(err)
					return
				}
				if i%5 == 0 {
					if _, err := FixedDigits(v, 9, nil); err != nil {
						t.Error(err)
						return
					}
				}
				if i%100 == 0 {
					_ = Snapshot() // concurrent reads of the aggregate
				}
			}
		}(w * 251)
	}
	wg.Wait()

	// The untraced public calls (FixedDigits) fold into the aggregate;
	// the explicitly traced ones do not (the caller owns the record).
	s := Snapshot()
	wantFixed := uint64(workers * perWorker / 5)
	if s.TraceConversions != wantFixed {
		t.Errorf("TraceConversions = %d, want %d (one per untraced FixedDigits)",
			s.TraceConversions, wantFixed)
	}
}
