package floatprint

import (
	"floatprint/internal/core"
	"floatprint/internal/fpformat"
	"floatprint/internal/ryu"
	"floatprint/internal/stats"
)

// Directed (one-sided) shortest conversion: the printing half of interval
// I/O.  Where ShortestDigits emits the shortest string anywhere inside v's
// rounding range, ShortestBelowDigits confines the output to the lower
// half-gap (v−m⁻, v] and ShortestAboveDigits to the upper half-gap
// [v, v+m⁺).  Three properties follow, and the interval package is built
// on all of them:
//
//   - One-sidedness: the Below output never exceeds v and the Above output
//     is never less than v, so a printed [Below(lo), Above(hi)] interval
//     always encloses [lo, hi].
//   - Identification: the output is strictly nearer v than either
//     neighbor's midpoint, so every round-to-nearest reader recovers
//     exactly v; a directed reader recovers v or the neighbor on the
//     bound's own outward side, never the wrong side.
//   - Tightness: the output is within half an ulp-gap of v, so shifting
//     its last digit one unit toward v overshoots to the far side — the
//     printed bound cannot be shrunk without losing enclosure.

// ShortestBelowDigits converts v to the shortest digit string whose exact
// value is ≤ v while still identifying v (it lies in v's lower half-gap).
// Specials pass through: ±0, ±Inf, and NaN format as in ShortestDigits —
// zero and the infinities are their own exact bounds, and NaN has no
// ordered bound, which the interval layer rejects.
func ShortestBelowDigits(v float64, opts *Options) (Digits, error) {
	o, err := opts.norm()
	if err != nil {
		return Digits{}, err
	}
	d, _, err := directedValue(fpformat.DecodeFloat64(v), o, false)
	return d, err
}

// ShortestAboveDigits converts v to the shortest digit string whose exact
// value is ≥ v while still identifying v (it lies in v's upper half-gap).
func ShortestAboveDigits(v float64, opts *Options) (Digits, error) {
	o, err := opts.norm()
	if err != nil {
		return Digits{}, err
	}
	d, _, err := directedValue(fpformat.DecodeFloat64(v), o, true)
	return d, err
}

// ShortestBelow renders ShortestBelowDigits under default options.
func ShortestBelow(v float64) string {
	d, err := ShortestBelowDigits(v, nil)
	if err != nil {
		panic("floatprint: " + err.Error()) // unreachable with default options
	}
	return d.String()
}

// ShortestAbove renders ShortestAboveDigits under default options.
func ShortestAbove(v float64) string {
	d, err := ShortestAboveDigits(v, nil)
	if err != nil {
		panic("floatprint: " + err.Error())
	}
	return d.String()
}

// directedValue is the directed analog of shortestValue: specials first,
// then the one-sided Ryū kernels when the request shape admits them, then
// the one-sided exact core on the magnitude.  above selects the bound in
// *value* order; for a negative value the magnitude rounding flips (the
// largest decimal ≤ v is the negation of the smallest decimal ≥ |v|).
// fast reports whether a one-sided kernel served the result (trace
// attribution); the kernels follow the decline-don't-error contract, so a
// decline falls through to the exact core and the output never depends on
// the path taken.
func directedValue(val fpformat.Value, o Options, above bool) (d Digits, fast bool, err error) {
	if d, done := specialDigits(val, o.Base); done {
		return d, false, nil
	}
	if directedFastpath(o, val) {
		if v, verr := abs(val).Float64(); verr == nil {
			var buf [fastBufLen]byte
			var n, k int
			var ok bool
			if above != val.Neg {
				n, k, ok = ryu.ShortestAboveInto(buf[:], v)
			} else {
				n, k, ok = ryu.ShortestBelowInto(buf[:], v)
			}
			if ok {
				stats.DirectedRyuHits.Inc()
				digits := make([]byte, n)
				for i := 0; i < n; i++ {
					digits[i] = buf[i] - '0' // ASCII back to digit values
				}
				return Digits{
					Class: Finite, Neg: val.Neg,
					Digits: digits, K: k, NSig: n, Base: 10,
				}, true, nil
			}
			stats.DirectedRyuMisses.Inc()
		}
	}
	var res core.Result
	if above != val.Neg {
		res, err = core.CeilFormat(abs(val), o.Base, o.Scaling.core())
	} else {
		res, err = core.FloorFormat(abs(val), o.Base, o.Scaling.core())
	}
	if err != nil {
		return Digits{}, false, err
	}
	stats.ExactFree.Inc()
	return fromResult(res, val.Neg, o.Base), false, nil
}
