package floatprint

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"

	"floatprint/internal/core"
	"floatprint/internal/fpformat"
	"floatprint/internal/ryu"
	"floatprint/internal/schryer"
)

// findRyuDecline returns a corpus value the Ryū backend declines (an
// exact-halfway tie), failing the test if the corpus contains none.
func findRyuDecline(t *testing.T) float64 {
	t.Helper()
	for _, v := range schryer.CorpusN(schryer.CorpusSize) {
		if _, _, ok := ryu.Shortest(v); !ok {
			return v
		}
	}
	t.Fatal("no ryu tie decline in the Schryer corpus")
	return 0
}

var backendList = []Backend{BackendAuto, BackendGrisu, BackendRyu, BackendExact}

func TestParseBackend(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Backend
	}{
		{"", BackendAuto}, {"auto", BackendAuto}, {"grisu", BackendGrisu},
		{"ryu", BackendRyu}, {"exact", BackendExact},
	} {
		got, err := ParseBackend(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if got.String() == "" {
			t.Errorf("Backend(%v).String() empty", got)
		}
	}
	if _, err := ParseBackend("dragon4"); err == nil {
		t.Error("ParseBackend(dragon4) succeeded, want error")
	}
	if _, err := ShortestDigits(1.5, &Options{Backend: Backend(99)}); err == nil {
		t.Error("out-of-range Options.Backend accepted")
	}
}

// TestBackendsByteIdentical is the registry's core contract: every
// backend selection yields byte-identical Digits for the same value, on
// random values and on the values Ryū declines.
func TestBackendsByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	values := make([]float64, 0, 2064)
	for i := 0; i < 2000; i++ {
		values = append(values, randomFinite(rng))
	}
	values = append(values, findRyuDecline(t), 0.3, math.Pi, 1e23, 5e-324,
		math.MaxFloat64, 0x1p-1022)
	for _, v := range values {
		ref, err := ShortestDigits(v, &Options{Backend: BackendExact})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range backendList {
			d, err := ShortestDigits(v, &Options{Backend: b})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(d.Digits, ref.Digits) || d.K != ref.K || d.NSig != ref.NSig {
				t.Fatalf("backend %v for %g [%x]: %v ×10^%d, exact %v ×10^%d",
					b, v, math.Float64bits(v), d.Digits, d.K, ref.Digits, ref.K)
			}
			if got, want := string(AppendShortestWith(nil, v, &Options{Backend: b})), ref.String(); got != want {
				t.Fatalf("AppendShortestWith(%v, %g) = %q, want %q", b, v, got, want)
			}
		}
	}
}

// TestBackendsAllReaderModes is the satellite-3 mode guard: under every
// reader mode × backend selection the output must equal the exact core's
// for that mode.  Ryū only carries a proof for nearest-even, so the
// registry must route the other three modes to the exact core (for
// BackendRyu) or Grisu3 (for BackendAuto) — never through Ryū.
func TestBackendsAllReaderModes(t *testing.T) {
	modes := []ReaderRounding{
		ReaderNearestEven, ReaderUnknown, ReaderNearestAway, ReaderNearestTowardZero,
	}
	rng := rand.New(rand.NewSource(8))
	values := make([]float64, 0, 516)
	for i := 0; i < 500; i++ {
		values = append(values, randomFinite(rng))
	}
	values = append(values, findRyuDecline(t), 0.3, 1e23, 5e-324)
	for _, v := range values {
		val := fpformat.DecodeFloat64(v)
		for _, mode := range modes {
			exact, err := core.FreeFormat(val, 10, core.ScalingEstimate,
				Options{Reader: mode}.Reader.core())
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range backendList {
				d, err := ShortestDigits(v, &Options{Reader: mode, Backend: b})
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(d.Digits, exact.Digits) || d.K != exact.K {
					t.Fatalf("backend %v, mode %v, %g [%x]: %v ×10^%d, exact %v ×10^%d",
						b, mode, v, math.Float64bits(v), d.Digits, d.K, exact.Digits, exact.K)
				}
			}
		}
	}
}

// TestRyuDeclinesNonNearestEven pins the static dispatch decision: an
// explicit BackendRyu request under a non-nearest-even reader must route
// to the exact core (no fast-path counters move), and under nearest-even
// it must serve on Ryū.
func TestRyuDeclinesNonNearestEven(t *testing.T) {
	ResetStats()
	prev := SetStatsEnabled(true)
	defer SetStatsEnabled(prev)

	for _, mode := range []ReaderRounding{ReaderUnknown, ReaderNearestAway, ReaderNearestTowardZero} {
		ResetStats()
		if _, err := ShortestDigits(0.3, &Options{Reader: mode, Backend: BackendRyu}); err != nil {
			t.Fatal(err)
		}
		s := Snapshot()
		if s.RyuHits != 0 || s.RyuMisses != 0 || s.GrisuHits != 0 || s.ExactFree != 1 {
			t.Errorf("mode %v: %+v, want exact only", mode, s)
		}
	}
	ResetStats()
	if _, err := ShortestDigits(0.3, &Options{Backend: BackendRyu}); err != nil {
		t.Fatal(err)
	}
	if s := Snapshot(); s.RyuHits != 1 || s.ExactFree != 0 {
		t.Errorf("nearest-even: %+v, want 1 ryu hit", s)
	}
}

// TestRyuVsExactCorpus is the acceptance-criteria differential: over the
// full 250,680-value Schryer corpus, every value Ryū serves must be
// byte-identical to the exact Burger & Dybvig core, and the decline rate
// must stay a rounding error.
func TestRyuVsExactCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus differential in -short mode")
	}
	corpus := schryer.CorpusN(schryer.CorpusSize)
	if len(corpus) != schryer.CorpusSize {
		t.Fatalf("corpus size %d, want %d", len(corpus), schryer.CorpusSize)
	}
	declines := 0
	for _, v := range corpus {
		digits, k, ok := ryu.Shortest(v)
		if !ok {
			declines++
			continue
		}
		exact, err := core.FreeFormat(fpformat.DecodeFloat64(v), 10,
			core.ScalingEstimate, core.ReaderNearestEven)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(digits, exact.Digits) || k != exact.K {
			t.Fatalf("ryu(%g [%x]) = %v ×10^%d, exact %v ×10^%d",
				v, math.Float64bits(v), digits, k, exact.Digits, exact.K)
		}
	}
	rate := float64(declines) / float64(len(corpus))
	t.Logf("ryu declines: %d of %d (%.4f%%)", declines, len(corpus), 100*rate)
	if rate > 0.001 {
		t.Errorf("decline rate %.4f%% implausibly high", 100*rate)
	}
}

// TestRyuSubnormalFrontier pins the subnormal boundary region where the
// decode branches (ieeeExponent == 0, the mmShift special case) change:
// the smallest subnormal, the largest subnormal, the smallest normal, and
// a walk across the frontier, each against the exact core.
func TestRyuSubnormalFrontier(t *testing.T) {
	var values []float64
	for delta := -50; delta <= 50; delta++ {
		bits := uint64(1)<<52 + uint64(delta) // around the smallest normal
		values = append(values, math.Float64frombits(bits))
	}
	values = append(values, 5e-324, math.Float64frombits(1<<52-1), 0x1p-1022)
	for _, v := range values {
		ref, err := ShortestDigits(v, &Options{Backend: BackendExact})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ShortestDigits(v, &Options{Backend: BackendRyu})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Digits, ref.Digits) || got.K != ref.K {
			t.Fatalf("subnormal frontier %x: ryu %v ×10^%d, exact %v ×10^%d",
				math.Float64bits(v), got.Digits, got.K, ref.Digits, ref.K)
		}
	}
}

// TestBackendSelectionConcurrent is the -race twin for the registry: many
// goroutines converting through different backend selections and reader
// modes concurrently, with telemetry enabled, must agree with the exact
// core and trip no data races.
func TestBackendSelectionConcurrent(t *testing.T) {
	prev := SetStatsEnabled(true)
	defer SetStatsEnabled(prev)

	corpus := schryer.CorpusN(2000)
	tie := findRyuDecline(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			opts := &Options{
				Backend: backendList[w%len(backendList)],
			}
			if w >= 4 {
				opts.Reader = ReaderNearestAway
			}
			buf := make([]byte, 0, 64)
			for i, v := range corpus {
				if i%97 == 0 {
					v = tie
				}
				buf = AppendShortestWith(buf[:0], v, opts)
				d, err := ShortestDigits(v, opts)
				if err != nil {
					t.Error(err)
					return
				}
				if string(buf) != d.String() {
					t.Errorf("append/digits mismatch for %g under %+v", v, *opts)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
