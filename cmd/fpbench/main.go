// Command fpbench regenerates the paper's evaluation tables (Burger &
// Dybvig, PLDI 1996) on this machine:
//
//	fpbench -table 2     Table 2: relative cost of the three scaling algorithms
//	fpbench -table 3     Table 3: free vs fixed vs printf, mis-rounding count
//	fpbench -stats       §5 statistic: mean shortest-digit count (paper: 15.2)
//	                     plus the path-hit telemetry (grisu/Gay/exact mix)
//	fpbench -ablation    estimator accuracy: Burger-Dybvig vs Gay
//	fpbench -parallel    concurrent-conversion scaling with goroutine count
//	fpbench -batch       batch-engine corpus throughput, 1 shard vs NumCPU
//	fpbench -all         everything
//	fpbench -n 50000     corpus size (default: the paper's full 250,680)
//
// Results print with the paper's reference numbers alongside for direct
// comparison; see EXPERIMENTS.md for a recorded run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"floatprint"
	"floatprint/internal/harness"
	"floatprint/internal/schryer"
)

func main() {
	table := flag.Int("table", 0, "reproduce one table (2 or 3)")
	stats := flag.Bool("stats", false, "mean shortest-digit statistic and path-hit telemetry")
	ablation := flag.Bool("ablation", false, "estimator accuracy ablation")
	successors := flag.Bool("successors", false, "compare with Grisu3 and Ryu (follow-on work)")
	parallel := flag.Bool("parallel", false, "concurrent shortest-conversion scaling")
	batchF := flag.Bool("batch", false, "batch-engine corpus throughput (1 shard vs NumCPU)")
	all := flag.Bool("all", false, "run every experiment")
	n := flag.Int("n", schryer.CorpusSize, "corpus size (max 250680)")
	flag.Parse()

	if !*all && *table == 0 && !*stats && !*ablation && !*successors && !*parallel && !*batchF {
		flag.Usage()
		os.Exit(2)
	}
	corpus := schryer.CorpusN(*n)
	fmt.Printf("Schryer-style corpus: %d positive normalized doubles\n\n", len(corpus))

	if *all || *table == 2 {
		if err := runTable2(corpus); err != nil {
			fatal(err)
		}
	}
	if *all || *table == 3 {
		if err := runTable3(corpus); err != nil {
			fatal(err)
		}
	}
	if *all || *stats {
		if err := runStats(corpus); err != nil {
			fatal(err)
		}
	}
	if *all || *ablation {
		runAblation(corpus)
	}
	if *all || *successors {
		if err := runSuccessors(corpus); err != nil {
			fatal(err)
		}
	}
	if *all || *parallel {
		runParallel(corpus)
	}
	if *all || *batchF {
		if err := runBatch(corpus); err != nil {
			fatal(err)
		}
	}
}

// runBatch reports batch-engine throughput over the corpus for one
// shard and NumCPU shards, then verifies the acceptance invariant that
// the packed output is byte-identical to per-value AppendShortest.
func runBatch(corpus []float64) error {
	shardCounts := []int{1}
	if cpus := runtime.NumCPU(); cpus > 1 {
		shardCounts = append(shardCounts, cpus)
	}
	fmt.Println("== Batch engine: corpus throughput by shard count ==")
	rows, err := harness.RunBatch(corpus, shardCounts)
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderBatch(rows, len(corpus)))
	if err := harness.VerifyBatch(corpus, shardCounts); err != nil {
		return err
	}
	fmt.Println("batch output verified byte-identical to per-value AppendShortest")
	fmt.Println()
	return nil
}

// runParallel measures aggregate shortest-conversion throughput as the
// goroutine count rises from 1 to 2×GOMAXPROCS.  With the lock-free power
// cache, the pooled conversion state, and the zero-allocation append path,
// throughput should track core count nearly linearly up to GOMAXPROCS and
// then flatten; a sub-linear curve indicates contention (the regime the
// old global power-table mutex serialized outright).
func runParallel(corpus []float64) {
	procs := runtime.GOMAXPROCS(0)
	fmt.Println("== Concurrent conversion scaling (AppendShortest, reused buffers) ==")
	fmt.Printf("GOMAXPROCS=%d; per-row: goroutines, aggregate conversions/s, speedup vs 1\n", procs)
	var base float64
	for g := 1; g <= 2*procs; g *= 2 {
		rate := parallelRate(corpus, g)
		if g == 1 {
			base = rate
		}
		fmt.Printf("  g=%-3d  %12.0f conv/s   %5.2fx\n", g, rate, rate/base)
	}
	fmt.Println()
}

func parallelRate(corpus []float64, g int) float64 {
	const perG = 200000
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			buf := make([]byte, 0, 64)
			for i := 0; i < perG; i++ {
				buf = floatprint.AppendShortest(buf[:0], corpus[(off+i)%len(corpus)])
			}
		}(w * 127)
	}
	wg.Wait()
	return float64(g*perG) / time.Since(start).Seconds()
}

func runSuccessors(corpus []float64) error {
	fmt.Println("== Follow-on work: three generations of shortest printing ==")
	fmt.Println("(Burger-Dybvig 1996 exact; Grisu3 2010 certified + fallback; Ryu 2018)")
	rows, err := harness.RunSuccessors(corpus)
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderSuccessors(rows, len(corpus)))
	fmt.Println()
	return nil
}

func runTable2(corpus []float64) error {
	fmt.Println("== Table 2: scaling algorithm relative CPU time ==")
	fmt.Println("(paper, DEC AXP 8420: iterative 145.2x, float-log 1.2x, estimate 1.0x)")
	rows, err := harness.RunTable2(corpus)
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderTable2(rows))
	fmt.Println()
	return nil
}

func runTable3(corpus []float64) error {
	fmt.Println("== Table 3: free vs fixed vs printf ==")
	res, err := harness.RunTable3(corpus)
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderTable3(res))
	fmt.Println()
	return nil
}

func runStats(corpus []float64) error {
	fmt.Println("== §5 statistic: shortest-output digit counts ==")
	res, err := harness.RunTable3(corpus[:min(len(corpus), 100000)])
	if err != nil {
		return err
	}
	fmt.Printf("mean shortest digits: %.2f (paper: 15.2 over its corpus)\n\n", res.MeanDigits)

	// Path-hit telemetry: drive the public hot paths over the corpus with
	// collection enabled and report which algorithm decided each value, so
	// the throughput tables above are interpretable (a run where grisu
	// certifies ~99.5% measures fixed-point arithmetic; the rest is the
	// exact big-integer algorithm).
	fmt.Println("== Path-hit telemetry (floatprint.Snapshot) ==")
	prev := floatprint.SetStatsEnabled(true)
	before := floatprint.Snapshot()
	buf := make([]byte, 0, 64)
	for _, v := range corpus {
		buf = floatprint.AppendShortest(buf[:0], v)
	}
	// 15 digits keeps Gay's heuristic in its intended regime ("when the
	// requested number of digits is small"); at 16-17 the accumulated
	// extended-float error always spans a boundary and every value falls
	// back to the exact algorithm.
	for _, v := range corpus[:min(len(corpus), 20000)] {
		buf = floatprint.AppendFixed(buf[:0], v, 15)
	}
	delta := floatprint.Snapshot().Sub(before)
	floatprint.SetStatsEnabled(prev)
	fmt.Printf("shortest over %d values, fixed(15) over %d values:\n",
		len(corpus), min(len(corpus), 20000))
	fmt.Print(delta.String())
	fmt.Println()
	return nil
}

func runAblation(corpus []float64) {
	fmt.Println("== Ablation: scale-factor estimator accuracy ==")
	fmt.Println("(paper: our 2-flop estimate is 'frequently k-1' but costs nothing;")
	fmt.Println(" Gay's 5-flop Taylor estimate is more accurate but more expensive)")
	stats := harness.RunEstimatorAblation(corpus)
	fmt.Print(harness.RenderEstimatorStats(stats, len(corpus)))
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpbench:", err)
	os.Exit(1)
}
