// Command fpbench regenerates the paper's evaluation tables (Burger &
// Dybvig, PLDI 1996) on this machine:
//
//	fpbench -table 2     Table 2: relative cost of the three scaling algorithms
//	fpbench -table 3     Table 3: free vs fixed vs printf, mis-rounding count
//	fpbench -stats       §5 statistic: mean shortest-digit count (paper: 15.2)
//	fpbench -ablation    estimator accuracy: Burger-Dybvig vs Gay
//	fpbench -parallel    concurrent-conversion scaling with goroutine count
//	fpbench -all         everything
//	fpbench -n 50000     corpus size (default: the paper's full 250,680)
//
// Results print with the paper's reference numbers alongside for direct
// comparison; see EXPERIMENTS.md for a recorded run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"floatprint"
	"floatprint/internal/harness"
	"floatprint/internal/schryer"
)

func main() {
	table := flag.Int("table", 0, "reproduce one table (2 or 3)")
	stats := flag.Bool("stats", false, "mean shortest-digit statistic")
	ablation := flag.Bool("ablation", false, "estimator accuracy ablation")
	successors := flag.Bool("successors", false, "compare with Grisu3 and Ryu (follow-on work)")
	parallel := flag.Bool("parallel", false, "concurrent shortest-conversion scaling")
	all := flag.Bool("all", false, "run every experiment")
	n := flag.Int("n", schryer.CorpusSize, "corpus size (max 250680)")
	flag.Parse()

	if !*all && *table == 0 && !*stats && !*ablation && !*successors && !*parallel {
		flag.Usage()
		os.Exit(2)
	}
	corpus := schryer.CorpusN(*n)
	fmt.Printf("Schryer-style corpus: %d positive normalized doubles\n\n", len(corpus))

	if *all || *table == 2 {
		if err := runTable2(corpus); err != nil {
			fatal(err)
		}
	}
	if *all || *table == 3 {
		if err := runTable3(corpus); err != nil {
			fatal(err)
		}
	}
	if *all || *stats {
		if err := runStats(corpus); err != nil {
			fatal(err)
		}
	}
	if *all || *ablation {
		runAblation(corpus)
	}
	if *all || *successors {
		if err := runSuccessors(corpus); err != nil {
			fatal(err)
		}
	}
	if *all || *parallel {
		runParallel(corpus)
	}
}

// runParallel measures aggregate shortest-conversion throughput as the
// goroutine count rises from 1 to 2×GOMAXPROCS.  With the lock-free power
// cache, the pooled conversion state, and the zero-allocation append path,
// throughput should track core count nearly linearly up to GOMAXPROCS and
// then flatten; a sub-linear curve indicates contention (the regime the
// old global power-table mutex serialized outright).
func runParallel(corpus []float64) {
	procs := runtime.GOMAXPROCS(0)
	fmt.Println("== Concurrent conversion scaling (AppendShortest, reused buffers) ==")
	fmt.Printf("GOMAXPROCS=%d; per-row: goroutines, aggregate conversions/s, speedup vs 1\n", procs)
	var base float64
	for g := 1; g <= 2*procs; g *= 2 {
		rate := parallelRate(corpus, g)
		if g == 1 {
			base = rate
		}
		fmt.Printf("  g=%-3d  %12.0f conv/s   %5.2fx\n", g, rate, rate/base)
	}
	fmt.Println()
}

func parallelRate(corpus []float64, g int) float64 {
	const perG = 200000
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			buf := make([]byte, 0, 64)
			for i := 0; i < perG; i++ {
				buf = floatprint.AppendShortest(buf[:0], corpus[(off+i)%len(corpus)])
			}
		}(w * 127)
	}
	wg.Wait()
	return float64(g*perG) / time.Since(start).Seconds()
}

func runSuccessors(corpus []float64) error {
	fmt.Println("== Follow-on work: three generations of shortest printing ==")
	fmt.Println("(Burger-Dybvig 1996 exact; Grisu3 2010 certified + fallback; Ryu 2018)")
	rows, err := harness.RunSuccessors(corpus)
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderSuccessors(rows, len(corpus)))
	fmt.Println()
	return nil
}

func runTable2(corpus []float64) error {
	fmt.Println("== Table 2: scaling algorithm relative CPU time ==")
	fmt.Println("(paper, DEC AXP 8420: iterative 145.2x, float-log 1.2x, estimate 1.0x)")
	rows, err := harness.RunTable2(corpus)
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderTable2(rows))
	fmt.Println()
	return nil
}

func runTable3(corpus []float64) error {
	fmt.Println("== Table 3: free vs fixed vs printf ==")
	res, err := harness.RunTable3(corpus)
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderTable3(res))
	fmt.Println()
	return nil
}

func runStats(corpus []float64) error {
	fmt.Println("== §5 statistic: shortest-output digit counts ==")
	res, err := harness.RunTable3(corpus[:min(len(corpus), 100000)])
	if err != nil {
		return err
	}
	fmt.Printf("mean shortest digits: %.2f (paper: 15.2 over its corpus)\n\n", res.MeanDigits)
	return nil
}

func runAblation(corpus []float64) {
	fmt.Println("== Ablation: scale-factor estimator accuracy ==")
	fmt.Println("(paper: our 2-flop estimate is 'frequently k-1' but costs nothing;")
	fmt.Println(" Gay's 5-flop Taylor estimate is more accurate but more expensive)")
	stats := harness.RunEstimatorAblation(corpus)
	fmt.Print(harness.RenderEstimatorStats(stats, len(corpus)))
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpbench:", err)
	os.Exit(1)
}
