// Command fpbench regenerates the paper's evaluation tables (Burger &
// Dybvig, PLDI 1996) on this machine:
//
//	fpbench -table 2     Table 2: relative cost of the three scaling algorithms
//	fpbench -table 3     Table 3: free vs fixed vs printf, mis-rounding count
//	fpbench -stats       §5 statistic: mean shortest-digit count (paper: 15.2)
//	                     plus the path-hit telemetry (grisu/Gay/exact mix)
//	fpbench -ablation    estimator accuracy: Burger-Dybvig vs Gay
//	fpbench -parallel    concurrent-conversion scaling with goroutine count
//	fpbench -batch       batch-engine corpus throughput, 1 shard vs NumCPU
//	fpbench -batchparse  ingestion: batch-parse MB/s, block engine vs
//	                     per-value Parse vs strconv, with bit-identity
//	                     verification (-parse-floor N fails below N MB/s)
//	fpbench -parse       read side: fast-path Parse vs the exact reader,
//	                     with byte-identity verification and fallback rate
//	fpbench -interval    interval I/O: outward-rounded print and
//	                     enclosure-guaranteed parse throughput in
//	                     intervals/s, with corpus-wide enclosure
//	                     verification
//	fpbench -shootout    backend head-to-head: grisu vs ryu vs exact vs
//	                     strconv over the corpus, with decline rates and
//	                     byte-identity verification
//	fpbench -all         everything
//	fpbench -n 50000     corpus size (default: the paper's full 250,680)
//	fpbench -json out    also write results as a BENCH_*.json artifact
//	                     ("-" for stdout), comparable with fpbenchjson
//
// Results print with the paper's reference numbers alongside for direct
// comparison; see EXPERIMENTS.md for a recorded run.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"floatprint"
	"floatprint/internal/core"
	"floatprint/internal/fpformat"
	"floatprint/internal/harness"
	"floatprint/internal/reader"
	"floatprint/internal/schryer"
	"floatprint/internal/trace"
)

func main() {
	table := flag.Int("table", 0, "reproduce one table (2 or 3)")
	stats := flag.Bool("stats", false, "mean shortest-digit statistic and path-hit telemetry")
	ablation := flag.Bool("ablation", false, "estimator accuracy ablation")
	successors := flag.Bool("successors", false, "compare with Grisu3 and Ryu (follow-on work)")
	parallel := flag.Bool("parallel", false, "concurrent shortest-conversion scaling")
	batchF := flag.Bool("batch", false, "batch-engine corpus throughput (1 shard vs NumCPU)")
	batchParseF := flag.Bool("batchparse", false, "batch-parse ingestion throughput in MB/s: block engine vs per-value Parse vs strconv")
	parseFloor := flag.Float64("parse-floor", 0, "with -batchparse: fail unless the block engine sustains this many MB/s")
	parseF := flag.Bool("parse", false, "fast-path Parse vs exact reader, with fallback rate")
	intervalF := flag.Bool("interval", false, "interval print/parse throughput with enclosure verification")
	shootout := flag.Bool("shootout", false, "backend head-to-head: grisu vs ryu vs exact vs strconv")
	all := flag.Bool("all", false, "run every experiment")
	n := flag.Int("n", schryer.CorpusSize, "corpus size (max 250680)")
	jsonOut := flag.String("json", "", "write results as a BENCH JSON artifact to this path (\"-\" for stdout)")
	flag.Parse()

	if !*all && *table == 0 && !*stats && !*ablation && !*successors && !*parallel && !*batchF && !*batchParseF && !*parseF && !*intervalF && !*shootout {
		flag.Usage()
		os.Exit(2)
	}
	var art *harness.Artifact
	if *jsonOut != "" {
		art = &harness.Artifact{}
	}
	corpus := schryer.CorpusN(*n)
	fmt.Printf("Schryer-style corpus: %d positive normalized doubles\n\n", len(corpus))

	if *all || *table == 2 {
		if err := runTable2(corpus, art); err != nil {
			fatal(err)
		}
	}
	if *all || *table == 3 {
		if err := runTable3(corpus, art); err != nil {
			fatal(err)
		}
	}
	if *all || *stats {
		if err := runStats(corpus); err != nil {
			fatal(err)
		}
	}
	if *all || *ablation {
		runAblation(corpus)
	}
	if *all || *successors {
		if err := runSuccessors(corpus, art); err != nil {
			fatal(err)
		}
	}
	if *all || *parallel {
		runParallel(corpus, art)
	}
	if *all || *batchF {
		if err := runBatch(corpus, art); err != nil {
			fatal(err)
		}
	}
	if *all || *batchParseF {
		if err := runBatchParse(corpus, *parseFloor, art); err != nil {
			fatal(err)
		}
	}
	if *all || *parseF {
		if err := runParse(corpus, art); err != nil {
			fatal(err)
		}
	}
	if *all || *intervalF {
		if err := runInterval(corpus, art); err != nil {
			fatal(err)
		}
	}
	if *all || *shootout {
		if err := runShootout(corpus, art); err != nil {
			fatal(err)
		}
	}
	if art != nil {
		if err := writeArtifact(art, *jsonOut); err != nil {
			fatal(err)
		}
	}
}

// writeArtifact emits the collected experiment timings in the shared
// internal/harness bench-JSON schema, so a run of fpbench can feed the
// same regression gate as `go test -bench` output converted with
// fpbenchjson.
func writeArtifact(art *harness.Artifact, path string) error {
	if path == "-" {
		return art.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := art.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// record folds one experiment timing into the artifact as per-value
// ns/op (nil-safe: recording is off unless -json was given).
func record(art *harness.Artifact, name string, nsPerOp float64, metrics map[string][]float64) {
	if art == nil {
		return
	}
	art.Append("fpbench/"+name, []float64{nsPerOp}, metrics)
}

// nsPerValue converts an elapsed whole-corpus time to per-value ns/op.
func nsPerValue(elapsed time.Duration, values int) float64 {
	if values == 0 {
		return 0
	}
	return elapsed.Seconds() * 1e9 / float64(values)
}

// slug turns a human experiment label into a benchmark-name segment:
// non-alphanumeric runs collapse to single underscores.
func slug(s string) string {
	var sb strings.Builder
	pend := false
	for _, r := range s {
		alnum := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9'
		if !alnum {
			pend = sb.Len() > 0
			continue
		}
		if pend {
			sb.WriteByte('_')
			pend = false
		}
		sb.WriteRune(r)
	}
	return sb.String()
}

// runBatch reports batch-engine throughput over the corpus for one
// shard and NumCPU shards, then verifies the acceptance invariant that
// the packed output is byte-identical to per-value AppendShortest.
func runBatch(corpus []float64, art *harness.Artifact) error {
	shardCounts := []int{1}
	if cpus := runtime.NumCPU(); cpus > 1 {
		shardCounts = append(shardCounts, cpus)
	}
	fmt.Println("== Batch engine: corpus throughput by shard count ==")
	rows, err := harness.RunBatch(corpus, shardCounts)
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderBatch(rows, len(corpus)))
	for _, r := range rows {
		record(art, fmt.Sprintf("Batch/shards=%d", r.Shards), nsPerValue(r.Elapsed, len(corpus)),
			map[string][]float64{"values/s": {r.ValuesPerSec}, "MB/s": {r.MBPerSec}})
	}
	if err := harness.VerifyBatch(corpus, shardCounts); err != nil {
		return err
	}
	fmt.Println("batch output verified byte-identical to per-value AppendShortest")
	fmt.Println()
	return nil
}

// runBatchParse reports batch-parse ingestion throughput in MB/s —
// the Lemire figure of merit — for the block engine, a per-value Parse
// loop, and strconv, then verifies the acceptance invariant that the
// packed output is bit-identical to per-value Parse on every token.
// With floor > 0 the run fails unless the block engine sustains that
// many MB/s, which is how CI pins an absolute ingestion bar.
func runBatchParse(corpus []float64, floor float64, art *harness.Artifact) error {
	fmt.Println("== Batch-parse engine: NDJSON ingestion throughput ==")
	rows, err := harness.RunBatchParse(corpus)
	if err != nil {
		return err
	}
	in := harness.BatchParseNDJSON(corpus)
	fmt.Print(harness.RenderBatchParse(rows, len(in), len(corpus)))
	for _, r := range rows {
		record(art, "BatchParse/"+slug(r.Name), nsPerValue(r.Elapsed, len(corpus)),
			map[string][]float64{"MB/s": {r.MBPerSec}, "speedup": {r.Speedup}})
	}
	if err := harness.VerifyBatchParse(corpus); err != nil {
		return err
	}
	fmt.Println("batch-parse output verified bit-identical to per-value Parse")
	if floor > 0 {
		block := rows[0].MBPerSec
		if block < floor {
			return fmt.Errorf("batch-parse floor: block engine sustained %.1f MB/s, floor is %.1f", block, floor)
		}
		fmt.Printf("floor: block engine %.1f MB/s >= %.1f MB/s\n", block, floor)
	}
	fmt.Println()
	return nil
}

// runParse measures the read side: the public Parse (Eisel–Lemire fast
// path with exact fallback) against the exact big-integer reader alone,
// over the shortest rendering of every corpus value.  Before timing it
// verifies the acceptance invariant — Parse must return exactly the
// bits the exact reader returns, for every string — and afterwards it
// reports the fast path's measured fallback rate from the telemetry
// counters.
func runParse(corpus []float64, art *harness.Artifact) error {
	fmt.Println("== Read side: fast-path Parse vs exact reader (shortest corpus strings) ==")
	strs := make([]string, len(corpus))
	for i, v := range corpus {
		strs[i] = floatprint.Shortest(v)
	}

	for i, s := range strs {
		got, err := floatprint.Parse(s, nil)
		if err != nil {
			return fmt.Errorf("parse verify: Parse(%q): %w", s, err)
		}
		ev, err := reader.Parse(s, 10, fpformat.Binary64, reader.NearestEven)
		if err != nil {
			return fmt.Errorf("parse verify: exact reader on %q: %w", s, err)
		}
		want, err := ev.Float64()
		if err != nil {
			return fmt.Errorf("parse verify: %q: %w", s, err)
		}
		if math.Float64bits(got) != math.Float64bits(want) || got != corpus[i] {
			return fmt.Errorf("parse verify: %q: fast pipeline %x, exact reader %x, printed from %x",
				s, math.Float64bits(got), math.Float64bits(want), math.Float64bits(corpus[i]))
		}
	}
	fmt.Printf("verified: Parse bit-identical to the exact reader over %d strings\n", len(strs))

	prev := floatprint.SetStatsEnabled(true)
	before := floatprint.Snapshot()
	start := time.Now()
	for _, s := range strs {
		if _, err := floatprint.Parse(s, nil); err != nil {
			return err
		}
	}
	fastElapsed := time.Since(start)
	delta := floatprint.Snapshot().Sub(before)
	floatprint.SetStatsEnabled(prev)

	// The exact reader is ~25x slower; a subsample keeps -all runs quick.
	exactN := min(len(strs), 25000)
	start = time.Now()
	for _, s := range strs[:exactN] {
		if _, err := reader.Parse(s, 10, fpformat.Binary64, reader.NearestEven); err != nil {
			return err
		}
	}
	exactElapsed := time.Since(start)

	fastNs := nsPerValue(fastElapsed, len(strs))
	exactNs := nsPerValue(exactElapsed, exactN)
	attempts := delta.ParseFastHits + delta.ParseFastMisses
	fallback := 0.0
	if attempts > 0 {
		fallback = 100 * float64(delta.ParseFastMisses) / float64(attempts)
	}
	fmt.Printf("  fast-path Parse   %10.1f ns/op\n", fastNs)
	fmt.Printf("  exact reader      %10.1f ns/op   (%d-value subsample)\n", exactNs, exactN)
	fmt.Printf("  speedup           %10.1fx\n", exactNs/fastNs)
	fmt.Printf("  fallback rate     %10.4f%%   (%d of %d attempts declined to the exact reader)\n",
		fallback, delta.ParseFastMisses, attempts)
	record(art, "Parse/fast", fastNs, map[string][]float64{"fallback-pct": {fallback}})
	record(art, "Parse/exact", exactNs, nil)
	fmt.Println()
	return nil
}

// runInterval measures the interval workload — outward-rounded printing
// and enclosure-guaranteed reading of degenerate corpus intervals — in
// intervals per second, fast-path and forced-exact configurations of
// each direction, after verifying over the whole corpus that the two
// configurations are byte-identical and that the enclosure contract
// holds (each endpoint may widen at most one ulp outward through a
// print/parse round trip, never inward).
func runInterval(corpus []float64, art *harness.Artifact) error {
	fmt.Println("== Interval I/O: outward print / enclosure parse throughput ==")
	if err := harness.VerifyInterval(corpus); err != nil {
		return err
	}
	fmt.Printf("verified: fast == exact both directions; Parse(print([x,x])) encloses within one ulp per side over %d values\n", len(corpus))
	rows, err := harness.RunInterval(corpus)
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderInterval(rows, len(corpus)))
	for _, r := range rows {
		metrics := map[string][]float64{"intervals/s": {r.IntervalsPerSec}}
		if attempts := r.FastHits + r.FastMisses; attempts > 0 {
			metrics["fast-hit-pct"] = []float64{100 * float64(r.FastHits) / float64(attempts)}
		}
		record(art, "Interval/"+slug(r.Name), nsPerValue(r.Elapsed, len(corpus)), metrics)
	}
	fmt.Println()
	return nil
}

// runParallel measures aggregate shortest-conversion throughput as the
// goroutine count rises from 1 to 2×GOMAXPROCS.  With the lock-free power
// cache, the pooled conversion state, and the zero-allocation append path,
// throughput should track core count nearly linearly up to GOMAXPROCS and
// then flatten; a sub-linear curve indicates contention (the regime the
// old global power-table mutex serialized outright).
func runParallel(corpus []float64, art *harness.Artifact) {
	procs := runtime.GOMAXPROCS(0)
	fmt.Println("== Concurrent conversion scaling (AppendShortest, reused buffers) ==")
	fmt.Printf("GOMAXPROCS=%d; per-row: goroutines, aggregate conversions/s, speedup vs 1\n", procs)
	var base float64
	for g := 1; g <= 2*procs; g *= 2 {
		rate := parallelRate(corpus, g)
		if g == 1 {
			base = rate
		}
		fmt.Printf("  g=%-3d  %12.0f conv/s   %5.2fx\n", g, rate, rate/base)
		record(art, fmt.Sprintf("Parallel/g=%d", g), 1e9/rate,
			map[string][]float64{"conv/s": {rate}})
	}
	fmt.Println()
}

func parallelRate(corpus []float64, g int) float64 {
	const perG = 200000
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			buf := make([]byte, 0, 64)
			for i := 0; i < perG; i++ {
				buf = floatprint.AppendShortest(buf[:0], corpus[(off+i)%len(corpus)])
			}
		}(w * 127)
	}
	wg.Wait()
	return float64(g*perG) / time.Since(start).Seconds()
}

func runSuccessors(corpus []float64, art *harness.Artifact) error {
	fmt.Println("== Follow-on work: three generations of shortest printing ==")
	fmt.Println("(Burger-Dybvig 1996 exact; Grisu3 2010 certified + fallback; Ryu 2018)")
	rows, err := harness.RunSuccessors(corpus)
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderSuccessors(rows, len(corpus)))
	for _, r := range rows {
		record(art, "Successors/"+slug(r.Name), nsPerValue(r.Elapsed, len(corpus)),
			map[string][]float64{"relative": {r.Relative}})
	}
	fmt.Println()
	return nil
}

// shootoutPasses is the timed-pass count per contender: enough samples
// for a stable median without making -all crawl.
const shootoutPasses = 5

func runShootout(corpus []float64, art *harness.Artifact) error {
	fmt.Println("== Backend shootout: grisu vs ryu vs exact vs strconv ==")
	fmt.Println("(Gareau-Lemire style head-to-head on the production append path)")
	rows, err := harness.RunShootout(corpus, shootoutPasses)
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderShootout(rows, len(corpus), shootoutPasses))
	for _, r := range rows {
		if art == nil {
			continue
		}
		art.Append("Shootout/"+slug(r.Name), r.NsPerOp,
			map[string][]float64{"decline_rate": {r.Rate}})
	}
	fmt.Println()
	return nil
}

func runTable2(corpus []float64, art *harness.Artifact) error {
	fmt.Println("== Table 2: scaling algorithm relative CPU time ==")
	fmt.Println("(paper, DEC AXP 8420: iterative 145.2x, float-log 1.2x, estimate 1.0x)")
	rows, err := harness.RunTable2(corpus)
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderTable2(rows))
	for _, r := range rows {
		record(art, "Table2/"+slug(r.Name), nsPerValue(r.Elapsed, len(corpus)),
			map[string][]float64{"relative": {r.Relative}, "scale-ops": {r.MeanScaleOps}})
	}
	fmt.Println()
	return nil
}

func runTable3(corpus []float64, art *harness.Artifact) error {
	fmt.Println("== Table 3: free vs fixed vs printf ==")
	res, err := harness.RunTable3(corpus)
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderTable3(res))
	record(art, "Table3/free", nsPerValue(res.Free, res.Corpus),
		map[string][]float64{"mean-digits": {res.MeanDigits}})
	record(art, "Table3/fixed17", nsPerValue(res.Fixed17, res.Corpus), nil)
	record(art, "Table3/printf17", nsPerValue(res.Printf, res.Corpus),
		map[string][]float64{"incorrect": {float64(res.Incorrect)}})
	fmt.Println()
	return nil
}

func runStats(corpus []float64) error {
	fmt.Println("== §5 statistic: shortest-output digit counts ==")
	res, err := harness.RunTable3(corpus[:min(len(corpus), 100000)])
	if err != nil {
		return err
	}
	fmt.Printf("mean shortest digits: %.2f (paper: 15.2 over its corpus)\n\n", res.MeanDigits)

	// Path-hit telemetry: drive the public hot paths over the corpus with
	// collection enabled and report which algorithm decided each value, so
	// the throughput tables above are interpretable (a run where grisu
	// certifies ~99.5% measures fixed-point arithmetic; the rest is the
	// exact big-integer algorithm).
	fmt.Println("== Path-hit telemetry (floatprint.Snapshot) ==")
	prev := floatprint.SetStatsEnabled(true)
	before := floatprint.Snapshot()
	buf := make([]byte, 0, 64)
	for _, v := range corpus {
		buf = floatprint.AppendShortest(buf[:0], v)
	}
	// Per-backend decline rates: drive the registered fast backends
	// explicitly so the snapshot shows each one's hit/miss mix (the
	// default AppendShortest loop above only exercises the auto
	// selection, Ryū on this corpus).
	grisuOpts := &floatprint.Options{Backend: floatprint.BackendGrisu}
	for _, v := range corpus {
		buf = floatprint.AppendShortestWith(buf[:0], v, grisuOpts)
	}
	// 15 digits keeps Gay's heuristic in its intended regime ("when the
	// requested number of digits is small"); at 16-17 the accumulated
	// extended-float error always spans a boundary and every value falls
	// back to the exact algorithm.
	for _, v := range corpus[:min(len(corpus), 20000)] {
		buf = floatprint.AppendFixed(buf[:0], v, 15)
	}
	// Read side: parse each value's shortest rendering back, so the
	// fast-path hit/fallback mix shows up in the same snapshot.
	parseN := min(len(corpus), 20000)
	for _, v := range corpus[:parseN] {
		if _, err := floatprint.Parse(floatprint.Shortest(v), nil); err != nil {
			return err
		}
	}
	delta := floatprint.Snapshot().Sub(before)
	floatprint.SetStatsEnabled(prev)
	fmt.Printf("shortest over %d values (auto backend, then grisu), fixed(15) over %d values, Parse over %d shortest strings:\n",
		len(corpus), min(len(corpus), 20000), parseN)
	fmt.Print(delta.String())
	fmt.Println()

	// Estimator behavior on the exact path, measured corpus-wide: the
	// public API above routes ~99.5% of values through grisu, so the §3.2
	// scale estimator's fixup rate must be measured by driving the exact
	// algorithm directly over every value.
	fmt.Println("== Conversion traces: §3.2 estimator fixup rate (exact path, whole corpus) ==")
	var estimates, fixups, iterations, digits, roundUps uint64
	var tr trace.Conversion
	for _, v := range corpus {
		if _, err := core.FreeFormatTraced(fpformat.DecodeFloat64(v), 10,
			core.ScalingEstimate, core.ReaderNearestEven, &tr); err != nil {
			return err
		}
		estimates++
		if tr.FixupSteps > 0 {
			fixups++
		}
		iterations += uint64(tr.Iterations)
		digits += uint64(tr.Digits)
		if tr.RoundedUp {
			roundUps++
		}
	}
	fmt.Printf("values                %12d\n", estimates)
	fmt.Printf("fixups (estimate k-1) %12d  (%.2f%%; paper: 'frequently one too small')\n",
		fixups, 100*float64(fixups)/float64(estimates))
	fmt.Printf("mean loop iterations  %12.2f\n", float64(iterations)/float64(estimates))
	fmt.Printf("mean output digits    %12.2f\n", float64(digits)/float64(estimates))
	fmt.Printf("round-ups             %12d  (%.2f%%)\n",
		roundUps, 100*float64(roundUps)/float64(estimates))
	fmt.Println()
	return nil
}

func runAblation(corpus []float64) {
	fmt.Println("== Ablation: scale-factor estimator accuracy ==")
	fmt.Println("(paper: our 2-flop estimate is 'frequently k-1' but costs nothing;")
	fmt.Println(" Gay's 5-flop Taylor estimate is more accurate but more expensive)")
	stats := harness.RunEstimatorAblation(corpus)
	fmt.Print(harness.RenderEstimatorStats(stats, len(corpus)))
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpbench:", err)
	os.Exit(1)
}
