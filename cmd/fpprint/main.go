// Command fpprint converts floating-point numbers using the Burger-Dybvig
// algorithms.  Each argument (or stdin line) is parsed as a base-10
// float64 and reprinted.
//
//	fpprint 0.3 1e23                     shortest form
//	fpprint -base 16 255.5               shortest form in another base
//	fpprint -digits 10 1e23              fixed format, 10 significant digits
//	fpprint -pos -2 1234.5678            fixed format, stop at hundredths
//	fpprint -mode unknown 1e23           conservative reader assumption
//	fpprint -notation sci 1234.5         force scientific notation
//	fpprint -no-marks -digits 30 0.1     render insignificant digits as 0
//
// Fixed-format output uses '#' marks for digits beyond the value's
// precision, exactly as in the paper.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"floatprint"
)

func main() {
	base := flag.Int("base", 10, "output base (2..36)")
	mode := flag.String("mode", "even", "reader rounding: even, unknown, away, zero")
	digits := flag.Int("digits", 0, "fixed format: significant digit count")
	pos := flag.String("pos", "", "fixed format: absolute digit position (e.g. -2)")
	notation := flag.String("notation", "auto", "auto, sci, pos")
	noMarks := flag.Bool("no-marks", false, "render insignificant digits as 0, not '#'")
	flag.Parse()

	opts := &floatprint.Options{Base: *base, NoMarks: *noMarks}
	switch *mode {
	case "even":
		opts.Reader = floatprint.ReaderNearestEven
	case "unknown":
		opts.Reader = floatprint.ReaderUnknown
	case "away":
		opts.Reader = floatprint.ReaderNearestAway
	case "zero":
		opts.Reader = floatprint.ReaderNearestTowardZero
	default:
		fatal(fmt.Errorf("unknown reader mode %q", *mode))
	}
	switch *notation {
	case "auto":
		opts.Notation = floatprint.NotationAuto
	case "sci":
		opts.Notation = floatprint.NotationScientific
	case "pos":
		opts.Notation = floatprint.NotationPositional
	default:
		fatal(fmt.Errorf("unknown notation %q", *notation))
	}

	convert := func(arg string) {
		v, err := strconv.ParseFloat(arg, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fpprint: %q: %v\n", arg, err)
			return
		}
		var out string
		switch {
		case *digits > 0:
			out, err = floatprint.FormatFixed(v, *digits, opts)
		case *pos != "":
			p, perr := strconv.Atoi(*pos)
			if perr != nil {
				fatal(fmt.Errorf("bad -pos %q: %v", *pos, perr))
			}
			out, err = floatprint.FormatFixedPosition(v, p, opts)
		default:
			out, err = floatprint.Format(v, opts)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fpprint: %q: %v\n", arg, err)
			return
		}
		fmt.Println(out)
	}

	if flag.NArg() > 0 {
		for _, arg := range flag.Args() {
			convert(arg)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			convert(line)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpprint:", err)
	os.Exit(1)
}
