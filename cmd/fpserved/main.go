// Command fpserved runs the floatprint conversion service: shortest
// and fixed-format conversion of single values, number parsing through
// the certified fast-path reader, outward-rounded interval printing and
// enclosure-guaranteed interval reading, streaming batch conversion
// over the sharded pool, bulk ingestion through the block-at-a-time
// batch parse engine (text in, packed little-endian float64 out), and
// Prometheus metrics, with explicit load-shedding at a configurable
// in-flight cap.
//
//	fpserved -addr :8080 -inflight 64
//
//	curl 'localhost:8080/v1/shortest?v=1e23'
//	curl 'localhost:8080/v1/parse?s=1.25e-3'
//	curl 'localhost:8080/v1/interval?lo=0.1&hi=0.3'
//	curl 'localhost:8080/v1/interval?s=%5B0.1,0.3%5D'
//	curl 'localhost:8080/v1/fixed?v=3.14159&n=3'
//	seq 1 10000 | awk '{print $1 * 0.1}' | curl -s --data-binary @- localhost:8080/v1/batch
//	seq 1 10000 | awk '{print $1 * 0.1}' | curl -s --data-binary @- localhost:8080/v1/batch-parse >packed.bin
//	curl localhost:8080/metrics
//
// Every conversion request gets a structured access-log line on stderr
// (log/slog: request_id, method, path, status, bytes, duration) and an
// X-Request-Id response header.  With -debug, /debug/pprof/* and
// /debug/exemplars (recent requests slower than -slow-request) are
// mounted too:
//
//	fpserved -debug -slow-request 100ms
//	go tool pprof http://localhost:8080/debug/pprof/profile?seconds=10
//	curl localhost:8080/debug/exemplars
//
// With -trace-sample N, every request runs under a W3C-propagated
// request span (incoming traceparent identities are adopted, and the
// trace id is echoed in X-Trace-Id); roughly 1 in N traces — plus every
// slow or 5xx request — lands in a bounded ring at /debug/traces:
//
//	fpserved -trace-sample 100
//	curl -H 'traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01' localhost:8080/v1/shortest?v=0.3
//	curl 'localhost:8080/debug/traces?route=/v1/shortest&min_ms=1'
//
// SIGINT/SIGTERM starts a graceful shutdown: the listener closes, and
// in-flight requests (streaming batches included) drain for up to
// -drain before the process exits — 0 on a clean drain, 1 if the
// deadline passed with work still running.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"floatprint"
	"floatprint/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (use 127.0.0.1:0 for a random port)")
	inflight := flag.Int("inflight", 64, "max concurrent conversion requests before shedding 429s")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on shed responses")
	maxBatch := flag.Int64("max-batch-bytes", 1<<30, "request-body cap for /v1/batch and /v1/batch-parse")
	shards := flag.Int("shards", 0, "batch pool shards (0 = GOMAXPROCS)")
	chunk := flag.Int("chunk", 0, "batch pool chunk size in values (0 = 4096)")
	statsOn := flag.Bool("stats", true, "collect conversion-path telemetry for /metrics")
	debug := flag.Bool("debug", false, "mount /debug/pprof/* and /debug/exemplars")
	slowReq := flag.Duration("slow-request", 250*time.Millisecond, "capture requests at least this slow into /debug/exemplars")
	jsonLog := flag.Bool("log-json", false, "emit the access log as JSON instead of logfmt-style text")
	traceSample := flag.Int("trace-sample", 0, "request tracing: 1 traces every request, N keeps 1 in N; 0 disables (slow and 5xx requests are always kept when on)")
	traceRing := flag.Int("trace-ring", 0, "completed traces kept for /debug/traces (0 = 64)")
	flag.Parse()

	logger := log.New(os.Stderr, "fpserved: ", log.LstdFlags)
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *jsonLog {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	floatprint.SetStatsEnabled(*statsOn)

	srv := serve.New(serve.Config{
		Addr:           *addr,
		InFlight:       *inflight,
		RequestTimeout: *timeout,
		RetryAfter:     *retryAfter,
		MaxBatchBytes:  *maxBatch,
		BatchShards:    *shards,
		BatchChunk:     *chunk,
		Logger:         logger,
		Slog:           slog.New(handler),
		Debug:          *debug,
		SlowRequest:    *slowReq,
		TraceSample:    *traceSample,
		TraceRing:      *traceRing,
	})
	if err := srv.Listen(); err != nil {
		logger.Fatal(err)
	}
	// The listen line goes to stdout in a fixed shape: scripts booting
	// fpserved on a random port (CI's e2e job) parse it for the address.
	fmt.Printf("fpserved listening on %s\n", srv.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errCh:
		if err != nil {
			logger.Fatal(err)
		}
		return
	case sig := <-sigCh:
		logger.Printf("received %s, draining in-flight requests (deadline %s)", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("drain deadline exceeded: %v", err)
		os.Exit(1)
	}
	if err := <-errCh; err != nil {
		logger.Fatal(err)
	}
	logger.Print("drained cleanly")
}
