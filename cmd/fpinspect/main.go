// Command fpinspect dissects a floating-point number the way the paper
// reasons about one: bit fields, the (f, e) mantissa/exponent form, the
// neighbors v⁻ and v⁺, the rounding range, and the shortest output under
// each reader rounding assumption.
//
//	fpinspect 0.3
//	fpinspect 1e23
//	fpinspect -bits 0x3fd3333333333333
//	fpinspect -trace 9007199254740993
//
// With -trace, fpinspect prints the conversion's explain plan instead:
// which backend decided the digits, the Table-1 initialization case, the
// §3.2 scale estimate versus the final scale (whether the penalty-free
// fixup fired), the generate-loop iteration count, and the final
// rounding decision.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"

	"floatprint"
	"floatprint/internal/core"
	"floatprint/internal/fpformat"
	"floatprint/internal/trace"
)

func main() {
	bits := flag.String("bits", "", "inspect a raw IEEE bit pattern (hex) instead of a parsed value")
	traceF := flag.Bool("trace", false, "print the conversion's explain plan (trace) instead of the bit dissection")
	flag.Parse()

	show := inspect
	if *traceF {
		show = explain
	}
	if *bits != "" {
		u, err := strconv.ParseUint(*bits, 0, 64)
		if err != nil {
			fatal(err)
		}
		show(math.Float64frombits(u))
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: fpinspect [-trace] [-bits 0x...] number...")
		os.Exit(2)
	}
	for _, arg := range flag.Args() {
		v, err := strconv.ParseFloat(arg, 64)
		if err != nil {
			fatal(err)
		}
		show(v)
	}
}

func inspect(v float64) {
	u := math.Float64bits(v)
	fmt.Printf("value    %v\n", v)
	fmt.Printf("bits     0x%016x  (sign=%d biased-exp=%d mantissa=0x%013x)\n",
		u, u>>63, (u>>52)&0x7ff, u&(1<<52-1))

	val := fpformat.DecodeFloat64(v)
	fmt.Printf("class    %v\n", val.Class)
	if !val.IsFinite() || val.Class == fpformat.Zero {
		fmt.Println()
		return
	}
	fmt.Printf("f × bᵉ   %s × 2^%d   (even mantissa: %v, binade boundary: %v)\n",
		val.F, val.E, val.MantissaEven(), val.IsBoundary())

	if prev, err := fpformat.Prev(val).Float64(); err == nil {
		fmt.Printf("v⁻       %v  (gap below: %v)\n", prev, v-prev)
	}
	next := fpformat.Next(val)
	if next.Class == fpformat.Inf {
		fmt.Printf("v⁺       +Inf\n")
	} else if nf, err := next.Float64(); err == nil {
		fmt.Printf("v⁺       %v  (gap above: %v)\n", nf, nf-v)
	}

	modes := []struct {
		name string
		mode floatprint.ReaderRounding
	}{
		{"nearest-even reader", floatprint.ReaderNearestEven},
		{"unknown reader     ", floatprint.ReaderUnknown},
		{"ties-away reader   ", floatprint.ReaderNearestAway},
		{"ties-to-zero reader", floatprint.ReaderNearestTowardZero},
	}
	for _, m := range modes {
		s, err := floatprint.Format(v, &floatprint.Options{Reader: m.mode})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("shortest (%s)  %s\n", m.name, s)
	}
	fmt.Printf("17 digits          %s\n", floatprint.Fixed(v, 17))
	fmt.Printf("25 digits          %s\n", floatprint.Fixed(v, 25))
	fmt.Println()
}

// explain prints the conversion's execution trace: first what the public
// API actually did (which usually means the certified Grisu3 fast path),
// then the exact algorithm's plan for the same value, which is where the
// paper's machinery — Table-1 case, scale estimate and fixup, loop
// termination — lives even when a fast path short-circuited it.
func explain(v float64) {
	var tr floatprint.Trace
	d, err := floatprint.ShortestDigitsTraced(v, nil, &tr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("value     %v\n", v)
	if d.Class != floatprint.Finite {
		fmt.Printf("path      none (special: %s)\n\n", d.String())
		return
	}
	fmt.Printf("shortest  %s\n", d.String())
	fmt.Printf("path      %s", tr.Backend)
	if tr.Backend == floatprint.TraceBackendGrisu {
		fmt.Printf(" (certified fast path: %d digits in %d loop iterations, exact algorithm skipped)\n",
			tr.Digits, tr.Iterations)
	} else {
		if tr.FastPathMiss {
			fmt.Printf(" (grisu3 attempted, failed certification)")
		}
		fmt.Println()
	}

	// The exact algorithm's plan, forced even when a fast path decided the
	// public conversion above.
	val := fpformat.DecodeFloat64(v)
	val.Neg = false
	var etr trace.Conversion
	res, err := core.FreeFormatTraced(val, 10, core.ScalingEstimate, core.ReaderNearestEven, &etr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("exact algorithm plan (nearest-even reader):\n")
	fmt.Printf("  table-1 case      %d  (e>=0: %v, binade boundary: %v)\n",
		etr.Table1Case, val.E >= 0, val.IsBoundary())
	fmt.Printf("  scale estimate    k=%d (%s)\n", etr.EstimateK, etr.ScaleMethod)
	if etr.FixupSteps > 0 {
		fmt.Printf("  scale fixup       fired: final k=%d (+%d)\n", etr.ScaleK, etr.FixupSteps)
	} else {
		fmt.Printf("  scale fixup       not needed: final k=%d\n", etr.ScaleK)
	}
	fmt.Printf("  generate loop     %d iterations -> %d digits\n", etr.Iterations, etr.Digits)
	fmt.Printf("  termination       low=%v high=%v", etr.TC1, etr.TC2)
	if etr.TieBreak {
		fmt.Printf(" (both: closest-candidate tie-break)")
	}
	fmt.Println()
	switch {
	case etr.RoundedUp && etr.CarriedK:
		fmt.Printf("  rounding          up, carry rippled into a new leading digit (K raised)\n")
	case etr.RoundedUp:
		fmt.Printf("  rounding          last digit incremented (round up)\n")
	default:
		fmt.Printf("  rounding          down (digits kept as generated)\n")
	}
	fmt.Printf("  result            0.%s x 10^%d (%d bignum ops)\n",
		digitString(res.Digits), res.K, etr.Ops)
	fmt.Println()
}

// digitString renders base-10 digit values as ASCII.
func digitString(digits []byte) string {
	b := make([]byte, len(digits))
	for i, d := range digits {
		b[i] = '0' + d
	}
	return string(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpinspect:", err)
	os.Exit(1)
}
