// Command fpinspect dissects a floating-point number the way the paper
// reasons about one: bit fields, the (f, e) mantissa/exponent form, the
// neighbors v⁻ and v⁺, the rounding range, and the shortest output under
// each reader rounding assumption.
//
//	fpinspect 0.3
//	fpinspect 1e23
//	fpinspect -bits 0x3fd3333333333333
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"

	"floatprint"
	"floatprint/internal/fpformat"
)

func main() {
	bits := flag.String("bits", "", "inspect a raw IEEE bit pattern (hex) instead of a parsed value")
	flag.Parse()

	if *bits != "" {
		u, err := strconv.ParseUint(*bits, 0, 64)
		if err != nil {
			fatal(err)
		}
		inspect(math.Float64frombits(u))
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: fpinspect [-bits 0x...] number...")
		os.Exit(2)
	}
	for _, arg := range flag.Args() {
		v, err := strconv.ParseFloat(arg, 64)
		if err != nil {
			fatal(err)
		}
		inspect(v)
	}
}

func inspect(v float64) {
	u := math.Float64bits(v)
	fmt.Printf("value    %v\n", v)
	fmt.Printf("bits     0x%016x  (sign=%d biased-exp=%d mantissa=0x%013x)\n",
		u, u>>63, (u>>52)&0x7ff, u&(1<<52-1))

	val := fpformat.DecodeFloat64(v)
	fmt.Printf("class    %v\n", val.Class)
	if !val.IsFinite() || val.Class == fpformat.Zero {
		fmt.Println()
		return
	}
	fmt.Printf("f × bᵉ   %s × 2^%d   (even mantissa: %v, binade boundary: %v)\n",
		val.F, val.E, val.MantissaEven(), val.IsBoundary())

	if prev, err := fpformat.Prev(val).Float64(); err == nil {
		fmt.Printf("v⁻       %v  (gap below: %v)\n", prev, v-prev)
	}
	next := fpformat.Next(val)
	if next.Class == fpformat.Inf {
		fmt.Printf("v⁺       +Inf\n")
	} else if nf, err := next.Float64(); err == nil {
		fmt.Printf("v⁺       %v  (gap above: %v)\n", nf, nf-v)
	}

	modes := []struct {
		name string
		mode floatprint.ReaderRounding
	}{
		{"nearest-even reader", floatprint.ReaderNearestEven},
		{"unknown reader     ", floatprint.ReaderUnknown},
		{"ties-away reader   ", floatprint.ReaderNearestAway},
		{"ties-to-zero reader", floatprint.ReaderNearestTowardZero},
	}
	for _, m := range modes {
		s, err := floatprint.Format(v, &floatprint.Options{Reader: m.mode})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("shortest (%s)  %s\n", m.name, s)
	}
	fmt.Printf("17 digits          %s\n", floatprint.Fixed(v, 17))
	fmt.Printf("25 digits          %s\n", floatprint.Fixed(v, 25))
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpinspect:", err)
	os.Exit(1)
}
