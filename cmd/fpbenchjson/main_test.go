package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"floatprint/internal/harness"
)

// The parsing and comparison logic is tested in internal/harness; this
// exercises the file-level plumbing the CLI's compare mode rides on.
func TestCompareArtifactFilesThroughDisk(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, ns float64) string {
		var a harness.Artifact
		a.Append("BenchmarkShortest", []float64{ns}, nil)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := a.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
		return f.Name()
	}
	base := write("base.json", 100)
	head := write("head.json", 150)

	regressions, report, err := harness.CompareArtifactFiles(base, head, 10)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 1 || !strings.Contains(report, "REGRESSION") {
		t.Fatalf("regressions = %d, report:\n%s", regressions, report)
	}

	if _, _, err := harness.CompareArtifactFiles(base, filepath.Join(dir, "missing.json"), 10); err == nil {
		t.Fatal("missing head artifact compared without error")
	}
}
