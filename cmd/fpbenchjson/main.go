// Command fpbenchjson turns `go test -bench` text output into a stable
// JSON artifact and compares two such artifacts against a regression
// threshold.  It is the core of the CI bench gate:
//
//	go test -run '^$' -bench Shortest -count 8 . | fpbenchjson > BENCH_head.json
//	fpbenchjson -base BENCH_base.json -head BENCH_head.json -max-regress 10
//	fpbenchjson -head BENCH_head.json -floor "BatchParse/block:MB/s:300"
//
// Convert mode reads benchmark lines from stdin and writes JSON to
// stdout.  Compare mode loads two JSON artifacts, matches benchmarks by
// name, compares median ns/op, and exits 1 when any benchmark present
// in both is more than -max-regress percent slower in head; medians
// over repeated -count runs make the gate robust to a single noisy
// pass.
//
// -floor adds an absolute acceptance bar on the head artifact alone:
// every benchmark whose name contains the substring must report a
// median for the named metric of at least the minimum, or the exit
// status is 1.  It composes with compare mode (floor first, then the
// relative gate) or runs standalone with just -head.
//
// The schema and comparison logic live in internal/harness, shared with
// `fpbench -json`, so the gate consumes artifacts from either tool.
package main

import (
	"flag"
	"fmt"
	"os"

	"floatprint/internal/harness"
)

func main() {
	base := flag.String("base", "", "baseline BENCH JSON (enables compare mode)")
	head := flag.String("head", "", "head BENCH JSON (compare mode)")
	maxRegress := flag.Float64("max-regress", 10, "max allowed median ns/op regression, percent")
	floor := flag.String("floor", "", `absolute floor check "substr:metric:min" on -head (e.g. "BatchParse/block:MB/s:300")`)
	flag.Parse()

	if *floor != "" {
		if *head == "" {
			fatal(fmt.Errorf("-floor needs -head"))
		}
		substr, metric, min, err := harness.ParseFloorSpec(*floor)
		if err != nil {
			fatal(err)
		}
		art, err := harness.LoadArtifact(*head)
		if err != nil {
			fatal(err)
		}
		failures, report, err := harness.CheckFloor(art, substr, metric, min)
		if err != nil {
			fatal(err)
		}
		fmt.Print(report)
		if failures > 0 {
			os.Exit(1)
		}
		if *base == "" {
			return
		}
	}

	if *base != "" || *head != "" {
		if *base == "" || *head == "" {
			fatal(fmt.Errorf("compare mode needs both -base and -head"))
		}
		regressions, report, err := harness.CompareArtifactFiles(*base, *head, *maxRegress)
		if err != nil {
			fatal(err)
		}
		fmt.Print(report)
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}

	art, err := harness.ParseBenchOutput(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if err := art.WriteJSON(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpbenchjson:", err)
	os.Exit(1)
}
