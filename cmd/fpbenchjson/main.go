// Command fpbenchjson turns `go test -bench` text output into a stable
// JSON artifact and compares two such artifacts against a regression
// threshold.  It is the core of the CI bench gate:
//
//	go test -run '^$' -bench Shortest -count 8 . | fpbenchjson > BENCH_head.json
//	fpbenchjson -base BENCH_base.json -head BENCH_head.json -max-regress 10
//
// Convert mode reads benchmark lines from stdin and writes JSON to
// stdout.  Compare mode loads two JSON artifacts, matches benchmarks by
// name, compares median ns/op, and exits 1 when any benchmark present
// in both is more than -max-regress percent slower in head; medians
// over repeated -count runs make the gate robust to a single noisy
// pass.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's aggregated runs.
type Benchmark struct {
	Name          string               `json:"name"` // GOMAXPROCS suffix stripped
	Runs          int                  `json:"runs"`
	NsPerOp       []float64            `json:"ns_per_op"`
	MedianNsPerOp float64              `json:"median_ns_per_op"`
	Metrics       map[string][]float64 `json:"metrics,omitempty"` // B/op, allocs/op, custom units
}

// Artifact is the JSON file layout (BENCH_*.json).
type Artifact struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	base := flag.String("base", "", "baseline BENCH JSON (enables compare mode)")
	head := flag.String("head", "", "head BENCH JSON (compare mode)")
	maxRegress := flag.Float64("max-regress", 10, "max allowed median ns/op regression, percent")
	flag.Parse()

	if *base != "" || *head != "" {
		if *base == "" || *head == "" {
			fatal(fmt.Errorf("compare mode needs both -base and -head"))
		}
		regressions, report, err := compareFiles(*base, *head, *maxRegress)
		if err != nil {
			fatal(err)
		}
		fmt.Print(report)
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}

	art, err := Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		fatal(err)
	}
}

// procSuffix matches the trailing -N GOMAXPROCS tag on benchmark names.
var procSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` output and aggregates per-benchmark
// runs.  Lines that are not benchmark results (headers, PASS, ok) are
// ignored, so raw `go test` output pipes straight in.
func Parse(r io.Reader) (*Artifact, error) {
	byName := map[string]*Benchmark{}
	var order []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count: some other Benchmark-prefixed text
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		b := byName[name]
		if b == nil {
			b = &Benchmark{Name: name, Metrics: map[string][]float64{}}
			byName[name] = b
			order = append(order, name)
		}
		b.Runs++
		// The rest of the line is value/unit pairs: `123 ns/op 0 allocs/op ...`.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q", name, fields[i])
			}
			if unit := fields[i+1]; unit == "ns/op" {
				b.NsPerOp = append(b.NsPerOp, v)
			} else {
				b.Metrics[unit] = append(b.Metrics[unit], v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	art := &Artifact{}
	for _, name := range order {
		b := byName[name]
		b.MedianNsPerOp = median(b.NsPerOp)
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		art.Benchmarks = append(art.Benchmarks, *b)
	}
	if len(art.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return art, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Compare matches benchmarks by name and reports every pair whose head
// median ns/op exceeds the base median by more than maxRegress percent.
// Benchmarks present on only one side are listed but never fail the
// gate (new benchmarks have no baseline; removed ones have no head).
func Compare(base, head *Artifact, maxRegress float64) (regressions int, report string) {
	baseBy := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-52s %14s %14s %9s\n", "benchmark", "base ns/op", "head ns/op", "delta")
	for _, h := range head.Benchmarks {
		b, ok := baseBy[h.Name]
		if !ok {
			fmt.Fprintf(&sb, "%-52s %14s %14.1f %9s\n", h.Name, "(new)", h.MedianNsPerOp, "")
			continue
		}
		delete(baseBy, h.Name)
		if b.MedianNsPerOp == 0 {
			continue
		}
		deltaPct := 100 * (h.MedianNsPerOp - b.MedianNsPerOp) / b.MedianNsPerOp
		mark := ""
		if deltaPct > maxRegress {
			regressions++
			mark = "  REGRESSION"
		}
		fmt.Fprintf(&sb, "%-52s %14.1f %14.1f %+8.1f%%%s\n",
			h.Name, b.MedianNsPerOp, h.MedianNsPerOp, deltaPct, mark)
	}
	for _, b := range base.Benchmarks {
		if _, still := baseBy[b.Name]; still {
			fmt.Fprintf(&sb, "%-52s %14.1f %14s %9s\n", b.Name, b.MedianNsPerOp, "(removed)", "")
		}
	}
	if regressions > 0 {
		fmt.Fprintf(&sb, "FAIL: %d benchmark(s) regressed more than %.0f%%\n", regressions, maxRegress)
	} else {
		fmt.Fprintf(&sb, "ok: no benchmark regressed more than %.0f%%\n", maxRegress)
	}
	return regressions, sb.String()
}

func compareFiles(basePath, headPath string, maxRegress float64) (int, string, error) {
	base, err := loadArtifact(basePath)
	if err != nil {
		return 0, "", err
	}
	head, err := loadArtifact(headPath)
	if err != nil {
		return 0, "", err
	}
	regressions, report := Compare(base, head, maxRegress)
	return regressions, report, nil
}

func loadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &art, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpbenchjson:", err)
	os.Exit(1)
}
