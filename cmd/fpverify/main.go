// Command fpverify checks this repository's conversion algorithms against
// Go's strconv (itself correctly rounded) and against internal invariants:
//
//   - shortest output round-trips and is never longer than strconv's
//   - our Parse agrees bit-for-bit with strconv.ParseFloat
//   - print(mode)/parse(mode) round-trips for every reader mode and base
//
// It sweeps the Schryer corpus, random doubles, a stratified float32
// sweep, and the denormal range.  Exit status 0 means no discrepancies.
//
//	fpverify -n 200000 -seed 42
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"floatprint"
	"floatprint/internal/schryer"
)

var failures int

func main() {
	n := flag.Int("n", 100000, "number of random float64 trials")
	seed := flag.Int64("seed", 1, "random seed")
	injectFailure := flag.Bool("inject-failure", false,
		"record one synthetic mismatch (exercises the failure summary and exit status)")
	flag.Parse()

	r := rand.New(rand.NewSource(*seed))

	// The CI contract of this tool is its exit status: any mismatch must
	// end the process non-zero with a FAILURES summary.  -inject-failure
	// lets the e2e suite prove that path without a real conversion bug.
	if *injectFailure {
		report("injected failure (requested via -inject-failure)", 0, "synthetic", nil)
	}

	fmt.Println("fpverify: shortest round-trip + minimality vs strconv")
	count := 0
	check := func(v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return
		}
		count++
		s := floatprint.Shortest(v)
		back, err := strconv.ParseFloat(s, 64)
		if err != nil || math.Float64bits(back) != math.Float64bits(v) {
			report("shortest round-trip", v, s, err)
			return
		}
		want := strconv.FormatFloat(v, 'e', -1, 64)
		if sig(s) > sig(want) {
			report("minimality", v, fmt.Sprintf("%s vs %s", s, want), nil)
		}
		ours, err := floatprint.Parse(want, nil)
		if err != nil || math.Float64bits(ours) != math.Float64bits(v) {
			report("parse agreement", v, want, err)
		}
	}
	for _, v := range schryer.CorpusN(50000) {
		check(v)
	}
	for i := 0; i < *n; i++ {
		check(math.Float64frombits(r.Uint64()))
	}
	for bits := uint64(1); bits < 1<<52; bits = bits*5 + 7 { // denormals
		check(math.Float64frombits(bits))
	}
	fmt.Printf("  %d float64 values checked\n", count)

	fmt.Println("fpverify: float32 stratified sweep vs strconv")
	count32 := 0
	for bits := uint32(0); bits < 1<<31; bits += 0x9241 {
		v := math.Float32frombits(bits)
		if v != v || math.IsInf(float64(v), 0) {
			continue
		}
		count32++
		s := floatprint.Shortest32(v)
		back, err := strconv.ParseFloat(s, 32)
		if err != nil || float32(back) != v {
			report("float32 round-trip", float64(v), s, err)
		}
	}
	fmt.Printf("  %d float32 values checked\n", count32)

	fmt.Println("fpverify: mode/base matrix round-trips")
	modes := []floatprint.ReaderRounding{
		floatprint.ReaderNearestEven, floatprint.ReaderUnknown,
		floatprint.ReaderNearestAway, floatprint.ReaderNearestTowardZero,
	}
	bases := []int{2, 3, 10, 16, 36}
	matrix := 0
	for i := 0; i < 2000; i++ {
		v := math.Float64frombits(r.Uint64())
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		for _, base := range bases {
			for _, mode := range modes {
				o := &floatprint.Options{Base: base, Reader: mode}
				s, err := floatprint.Format(v, o)
				if err != nil {
					report("format", v, s, err)
					continue
				}
				back, err := floatprint.Parse(s, o)
				if err != nil || math.Float64bits(back) != math.Float64bits(v) {
					report(fmt.Sprintf("mode %v base %d", mode, base), v, s, err)
				}
				matrix++
			}
		}
	}
	fmt.Printf("  %d mode/base conversions checked\n", matrix)

	if failures > 0 {
		fmt.Printf("fpverify: %d FAILURES\n", failures)
		os.Exit(1)
	}
	fmt.Println("fpverify: all checks passed")
}

// sig counts significant digits of a rendered number.
func sig(s string) int {
	if i := strings.IndexAny(s, "eE"); i >= 0 {
		s = s[:i]
	}
	keep := strings.Map(func(r rune) rune {
		if r >= '0' && r <= '9' {
			return r
		}
		return -1
	}, s)
	keep = strings.Trim(keep, "0")
	if keep == "" {
		return 1
	}
	return len(keep)
}

func report(what string, v float64, detail string, err error) {
	failures++
	if failures <= 20 {
		fmt.Fprintf(os.Stderr, "  FAIL %s: v=%x (%g) %s err=%v\n",
			what, math.Float64bits(v), v, detail, err)
	}
}
