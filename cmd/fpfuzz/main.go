// Command fpfuzz cross-checks every conversion implementation in this
// repository against the others and against Go's strconv, on structured
// random inputs designed to hit the hard cases: binade boundaries, decimal
// midpoints, denormals, and values with long shared digit prefixes.
//
// Implementations compared per value:
//
//	exact Burger-Dybvig (internal/core)  — the paper, big integers
//	basic §2 algorithm (rationals)       — sampled (slow)
//	decimal digit-walk (internal/decimal)— strconv-legacy approach
//	Grisu3 (internal/grisu)              — when certified
//	Ryū (internal/ryu)                   — always
//	strconv.FormatFloat                  — reference
//	Parse / strconv.ParseFloat           — reading side
//
//	fpfuzz -n 200000 -seed 7 -basic-every 997
//
// Exit status 0 means every comparison agreed (exact ties between
// round-up and round-even shortest forms are verified to round-trip and
// counted, not failed).
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"floatprint"
	"floatprint/internal/core"
	"floatprint/internal/decimal"
	"floatprint/internal/fpformat"
	"floatprint/internal/grisu"
	"floatprint/internal/ryu"
)

var (
	failures int
	ties     int
)

func main() {
	n := flag.Int("n", 100000, "values per generator class")
	seed := flag.Int64("seed", 1, "random seed")
	basicEvery := flag.Int("basic-every", 499, "check the rational reference every Nth value (0 = never)")
	flag.Parse()

	r := rand.New(rand.NewSource(*seed))
	classes := []struct {
		name string
		gen  func() float64
	}{
		{"uniform-bits", func() float64 {
			return math.Float64frombits(r.Uint64())
		}},
		{"binade-edges", func() float64 {
			be := uint64(1 + r.Intn(2046))
			mant := uint64(0)
			switch r.Intn(4) {
			case 0: // power of two (boundary case)
			case 1:
				mant = 1
			case 2:
				mant = 1<<52 - 1
			case 3:
				mant = uint64(r.Int63()) & (1<<52 - 1)
			}
			return math.Float64frombits(be<<52 | mant)
		}},
		{"denormals", func() float64 {
			return math.Float64frombits(uint64(r.Int63()) & (1<<52 - 1))
		}},
		{"decimal-neighbors", func() float64 {
			// A short decimal, then a few ulp steps away: values whose
			// shortest form is near a rounding boundary.
			d := float64(r.Intn(1_000_000_000))
			e := r.Intn(60) - 30
			v := d * math.Pow(10, float64(e))
			for s := r.Intn(5); s > 0; s-- {
				v = math.Nextafter(v, math.Inf(1))
			}
			return v
		}},
		{"long-prefixes", func() float64 {
			// Mantissas of the form 10…0 / 01…1 after random shifts create
			// long runs of 9s/0s in decimal.
			base := uint64(1) << uint(r.Intn(52))
			mant := (base - 1) ^ (uint64(r.Int63()) & 0xff)
			be := uint64(1 + r.Intn(2046))
			return math.Float64frombits(be<<52 | mant&(1<<52-1))
		}},
	}

	count := 0
	for _, class := range classes {
		for i := 0; i < *n; i++ {
			v := math.Abs(class.gen())
			if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
				continue
			}
			count++
			checkValue(v, *basicEvery > 0 && count%*basicEvery == 0)
		}
		fmt.Printf("  %-18s done\n", class.name)
	}

	fmt.Printf("fpfuzz: %d values, %d exact ties tolerated, %d failures\n",
		count, ties, failures)
	if failures > 0 {
		os.Exit(1)
	}
}

func checkValue(v float64, checkBasic bool) {
	val := fpformat.DecodeFloat64(v)

	exact, err := core.FreeFormat(val, 10, core.ScalingEstimate, core.ReaderNearestEven)
	if err != nil {
		report("core error", v, err.Error())
		return
	}
	exactStr := render(exact.Digits, exact.K)

	// strconv (Ryū inside Go) vs our Ryū: bit-identical when served.  A
	// decline is an exact-halfway tie ceded to the exact core; both
	// renderings must still round-trip.
	if rd, rk, ok := ryu.Shortest(v); ok {
		ryuStr := render(rd, rk)
		scDigits, scK := strconvShortest(v)
		if ryuStr != render(scDigits, scK) {
			report("ryu vs strconv", v, ryuStr)
		}
		// Served results must equal the exact Burger-Dybvig output byte
		// for byte: the tie cases are exactly the declines.
		if exactStr != ryuStr {
			report("exact vs ryu", v, exactStr+" / "+ryuStr)
		}
	} else {
		ties++
		scDigits, scK := strconvShortest(v)
		scStr := render(scDigits, scK)
		if !roundTrips(exactStr, v) || !roundTrips(scStr, v) {
			report("tie decline round-trip", v, exactStr+" / "+scStr)
		}
	}

	// Grisu certified results must equal the exact output byte for byte.
	if gd, gk, ok := grisu.Shortest(v); ok {
		if render(gd, gk) != exactStr {
			report("grisu vs exact", v, render(gd, gk)+" / "+exactStr)
		}
	}

	// The decimal-walk implementation shares core's tie rule: exact match.
	if dd, dk := decimal.ShortestFloat64(v); render(dd, dk) != exactStr {
		report("decimal vs exact", v, render(dd, dk)+" / "+exactStr)
	}

	// Public API output parses back through both readers.
	s := floatprint.Shortest(v)
	if got, err := floatprint.Parse(s, nil); err != nil || got != v {
		report("public round-trip", v, s)
	}
	if got, err := strconv.ParseFloat(s, 64); err != nil || got != v {
		report("strconv reads ours", v, s)
	}
	if got, err := floatprint.Parse(strconv.FormatFloat(v, 'e', -1, 64), nil); err != nil || got != v {
		report("we read strconv", v, s)
	}

	// The §2 rational reference, sampled.
	if checkBasic {
		basic, err := core.BasicFreeFormat(val, 10, core.ReaderNearestEven)
		if err != nil {
			report("basic error", v, err.Error())
			return
		}
		if render(basic.Digits, basic.K) != exactStr {
			report("basic vs optimized", v, render(basic.Digits, basic.K)+" / "+exactStr)
		}
	}
}

func render(digits []byte, k int) string {
	var sb strings.Builder
	sb.WriteString("0.")
	for _, d := range digits {
		sb.WriteByte('0' + d)
	}
	sb.WriteString("e")
	sb.WriteString(strconv.Itoa(k))
	return sb.String()
}

func roundTrips(s string, v float64) bool {
	got, err := strconv.ParseFloat(s, 64)
	return err == nil && got == v
}

func strconvShortest(v float64) ([]byte, int) {
	s := strconv.FormatFloat(v, 'e', -1, 64)
	mant, expStr, _ := strings.Cut(s, "e")
	exp, _ := strconv.Atoi(expStr)
	t := strings.TrimRight(strings.Replace(mant, ".", "", 1), "0")
	if t == "" {
		t = "0"
	}
	digits := make([]byte, len(t))
	for i := 0; i < len(t); i++ {
		digits[i] = t[i] - '0'
	}
	return digits, exp + 1
}

func report(what string, v float64, detail string) {
	failures++
	if failures <= 25 {
		fmt.Fprintf(os.Stderr, "FAIL %-18s v=%x (%g): %s\n", what, math.Float64bits(v), v, detail)
	}
}
