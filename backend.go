package floatprint

import (
	"math"

	"floatprint/internal/fpformat"
	"floatprint/internal/grisu"
	"floatprint/internal/ryu"
	"floatprint/internal/stats"
	"floatprint/internal/trace"
)

// This file is the shortest-path backend registry: the one place that
// decides which digit-generation algorithm a free-format conversion
// attempts first.  Every fast path follows the decline-don't-error
// contract — a backend either serves a request with output byte-identical
// to the exact Burger & Dybvig core or declines, and a decline always
// falls through to the exact core — so the registry affects speed and the
// path mix, never the answer.
//
// Applicability is two-layered.  The static layer below rules a backend
// out per request shape: every fast path needs base 10, the default
// scale estimator, and a binary64 value; Ryū additionally carries a
// proof only under the nearest-even reader, where Grisu3's certification
// is valid under all four reader modes.  The dynamic layer is the
// backend's own runtime decline (Grisu3 certification failure, Ryū's
// exact-halfway ties), which surfaces as ok == false at the call site.

// shortestFastpath returns the fast backend the registry selects for a
// normalized request, or trace.BackendNone when only the exact core
// applies.  o must be normalized (o.norm) so Base and Backend are valid.
func shortestFastpath(o Options, val fpformat.Value) trace.Backend {
	if val.Fmt != fpformat.Binary64 {
		return trace.BackendNone
	}
	return shortestFastpath64(o)
}

// shortestFastpath64 is shortestFastpath for a value already known to be
// binary64 — the allocation-free form the float64 append path uses
// (decoding the value just to learn its format costs a mantissa
// allocation).
func shortestFastpath64(o Options) trace.Backend {
	if o.Base != 10 || o.Scaling != ScalingEstimate {
		return trace.BackendNone
	}
	if o.Reader.directed() {
		// The directed reader modes print one-sided half-gap output, a
		// different acceptance test than the nearest-range backends here
		// certify.  They have their own fast kernels — directedValue
		// dispatches through directedFastpath to the one-sided Ryū loops —
		// so this registry hands the request to the exact-path entry, which
		// routes it there.
		return trace.BackendNone
	}
	switch o.Backend {
	case BackendAuto:
		if o.Reader == ReaderNearestEven {
			return trace.BackendRyu
		}
		return trace.BackendGrisu
	case BackendGrisu:
		return trace.BackendGrisu
	case BackendRyu:
		// Ryū's correctness proof assumes a nearest-even reader; under
		// the other three modes its output would be wrong-but-plausible,
		// so the registry routes those to the exact core instead.
		if o.Reader == ReaderNearestEven {
			return trace.BackendRyu
		}
		return trace.BackendNone
	default: // BackendExact
		return trace.BackendNone
	}
}

// directedFastpath reports whether the one-sided Ryū kernels
// (ryu.ShortestBelowInto / ShortestAboveInto) may serve a directed
// shortest conversion.  The static guards mirror the nearest registry's:
// binary64 only, base 10 only, the default scale estimator only — the
// kernels hard-code decimal arithmetic and the estimator's K convention,
// so a base-16 or ScalingFloatLog request must reach the exact core
// untouched.  An explicit BackendGrisu or BackendExact selection also
// routes to the exact core: Grisu3 has no one-sided variant, and
// BackendExact is the documented way to force the certified-fast paths
// off (corpus tests diff the two).
func directedFastpath(o Options, val fpformat.Value) bool {
	return val.Fmt == fpformat.Binary64 &&
		o.Base == 10 && o.Scaling == ScalingEstimate &&
		(o.Backend == BackendAuto || o.Backend == BackendRyu)
}

// shortestFastAttempt runs the selected fast backend for positive finite
// v, bumping the hit/miss telemetry.  fb must be BackendRyu or
// BackendGrisu.  The digits land in buf as ASCII bytes '0'..'9', which
// must hold fastBufLen bytes (ryu emits ASCII natively; grisu's digit
// values are converted here so callers see one contract).
func shortestFastAttempt(fb trace.Backend, buf []byte, v float64) (n, k int, ok bool) {
	if fb == trace.BackendRyu {
		n, k, ok = ryu.ShortestInto(buf, v)
		if ok {
			stats.RyuHits.Inc()
		} else {
			stats.RyuMisses.Inc()
		}
		return n, k, ok
	}
	n, k, ok = grisu.ShortestInto(buf, v)
	if ok {
		stats.GrisuHits.Inc()
		for i := 0; i < n; i++ {
			buf[i] += '0'
		}
	} else {
		stats.GrisuMisses.Inc()
	}
	return n, k, ok
}

// fastBufLen is the digit-buffer size every registered fast backend
// accepts for its in-place entry point.
const fastBufLen = 20

// The in-place entry points share one buffer size; if either package ever
// grows its requirement this stops compiling.
var _ [fastBufLen - grisu.BufLen]struct{}
var _ [fastBufLen - ryu.BufLen]struct{}

// AppendShortestWith is AppendShortest under explicit options: it appends
// the shortest rendering of v to dst using the options' backend, reader
// assumption, and notation.  Like AppendShortest it performs no heap
// allocation beyond growing dst when a fast backend serves the value.  It
// panics on invalid options; use ShortestDigits plus Digits.Append to
// handle the error instead.
func AppendShortestWith(dst []byte, v float64, opts *Options) []byte {
	o, err := opts.norm()
	if err != nil {
		panic("floatprint: " + err.Error())
	}
	return appendShortestOpts(dst, v, o)
}

// appendShortestOpts is the shared allocation-free append path under
// normalized options: specials inline, then the registry's fast backend
// into a stack buffer, then the exact fallback for everything declined.
func appendShortestOpts(dst []byte, v float64, o Options) []byte {
	// Specials, inline: these never reach digit generation.
	switch {
	case math.IsNaN(v):
		return append(dst, "NaN"...)
	case math.IsInf(v, 1):
		return append(dst, "+Inf"...)
	case math.IsInf(v, -1):
		return append(dst, "-Inf"...)
	case v == 0:
		if math.Signbit(v) {
			return append(dst, '-', '0')
		}
		return append(dst, '0')
	}
	if fb := shortestFastpath64(o); fb != trace.BackendNone {
		var buf [fastBufLen]byte
		if n, k, ok := shortestFastAttempt(fb, buf[:], math.Abs(v)); ok {
			if stats.Enabled() {
				stats.Traces.RecordFast(fb, n)
			}
			return appendFastRender(dst, math.Signbit(v), buf[:], n, k, o)
		}
		// The registry's fast attempt declined: run the exact core
		// directly rather than re-entering through shortestValue, so the
		// miss above stays counted exactly once.
		o.Backend = BackendExact
	}
	d, err := shortestValue(fpformat.DecodeFloat64(v), o)
	if err != nil {
		panic("floatprint: " + err.Error()) // unreachable: options validated
	}
	return d.appendRender(dst, o)
}

// appendFastRender renders a fast-backend result — ASCII digits in
// buf[:n], all significant, base 10 — without building a Digits value.
// It is Digits.appendRender specialized to that shape: marks can never
// apply (NSig == n), the base-36 alphabet degenerates to ASCII decimal,
// and bulk slice appends replace the per-digit loop.  Output is
// byte-identical to the general renderer; TestFastRenderMatchesDigits
// pins that.
func appendFastRender(dst []byte, neg bool, buf []byte, n, k int, o Options) []byte {
	if neg {
		dst = append(dst, '-')
	}
	notation := o.Notation
	if notation == NotationAuto {
		// Same band as the general renderer; the marked-result clause
		// there (NSig < len) is unreachable here.
		if k < -3 || k > 21 {
			notation = NotationScientific
		} else {
			notation = NotationPositional
		}
	}
	if notation == NotationScientific {
		dst = append(dst, buf[0])
		if n > 1 {
			dst = append(dst, '.')
			dst = append(dst, buf[1:n]...)
		}
		dst = append(dst, 'e')
		// Binary64 exponents span [-324, 308]: at most three digits,
		// rendered directly (the general renderer's strconv.AppendInt
		// produces the same bytes, minus the call).
		e := k - 1
		if e < 0 {
			dst = append(dst, '-')
			e = -e
		}
		switch {
		case e < 10:
			return append(dst, byte('0'+e))
		case e < 100:
			return append(dst, byte('0'+e/10), byte('0'+e%10))
		default:
			return append(dst, byte('0'+e/100), byte('0'+e/10%10), byte('0'+e%10))
		}
	}
	switch {
	case k <= 0:
		dst = append(dst, '0', '.')
		for i := 0; i < -k; i++ {
			dst = append(dst, '0')
		}
		return append(dst, buf[:n]...)
	case k >= n:
		dst = append(dst, buf[:n]...)
		for i := n; i < k; i++ {
			dst = append(dst, '0')
		}
		return dst
	default:
		dst = append(dst, buf[:k]...)
		dst = append(dst, '.')
		return append(dst, buf[k:n]...)
	}
}
