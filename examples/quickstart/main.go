// Quickstart: the floatprint API in one minute.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"

	"floatprint"
)

func main() {
	// Free format: the shortest string that reads back to the same value.
	fmt.Println("-- free format (shortest round-tripping output) --")
	for _, v := range []float64{0.3, 1.0 / 3.0, math.Pi, 1e23, 5e-324} {
		fmt.Printf("%-24g -> %s\n", v, floatprint.Shortest(v))
	}

	// Fixed format: correctly rounded to a digit budget, with '#' marks on
	// digits the value cannot actually pin down.
	fmt.Println("\n-- fixed format --")
	fmt.Println("pi to 4 digits:          ", floatprint.Fixed(math.Pi, 4))
	fmt.Println("100 to the 20th decimal: ", floatprint.FixedPosition(100, -20))
	fmt.Println("1234.5678 to hundredths: ", floatprint.FixedPosition(1234.5678, -2))
	fmt.Println("9.97 to two digits:      ", floatprint.Fixed(9.97, 2))

	// Other bases.
	fmt.Println("\n-- other output bases --")
	hex, _ := floatprint.Format(255.5, &floatprint.Options{Base: 16})
	bin, _ := floatprint.Format(0.625, &floatprint.Options{Base: 2})
	fmt.Println("255.5 in hex:   ", hex)
	fmt.Println("0.625 in binary:", bin)

	// Parsing: the exact inverse, with selectable rounding.
	fmt.Println("\n-- parsing --")
	v, _ := floatprint.Parse("0.3", nil)
	fmt.Println(`Parse("0.3") == 0.3:`, v == 0.3)
	v, _ = floatprint.Parse("100.000000000000000#####", nil) // marks read as zeros
	fmt.Println(`Parse("100.000000000000000#####") ==`, v)
}
