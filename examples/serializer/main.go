// Serializer: why shortest output matters for data interchange.
//
// A number serializer must never lose information (readers must recover
// the same float64) and wants the fewest bytes.  The historical options —
// "%.17e" always round-trips but is verbose and full of garbage digits;
// "%g" with fewer digits is short but lossy — are exactly the tension the
// paper resolves: shortest *and* round-tripping.
//
// This example serializes a batch of measurements three ways, verifies
// round-trips, and compares encoded sizes.
//
//	go run ./examples/serializer
package main

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"floatprint"
)

func main() {
	r := rand.New(rand.NewSource(7))
	batch := make([]float64, 1000)
	for i := range batch {
		switch i % 4 {
		case 0: // sensor-style decimals
			batch[i] = math.Round(r.Float64()*1e6) / 1e4
		case 1: // wide dynamic range
			batch[i] = r.Float64() * math.Pow(10, float64(r.Intn(60)-30))
		case 2: // accumulated sums (messy binary fractions)
			batch[i] = r.Float64() + r.Float64() + r.Float64()
		default:
			batch[i] = r.NormFloat64()
		}
	}

	encoders := []struct {
		name   string
		encode func(float64) string
	}{
		{"%.17e (always safe)", func(v float64) string { return fmt.Sprintf("%.17e", v) }},
		{"%.6g (short, lossy)", func(v float64) string { return fmt.Sprintf("%.6g", v) }},
		{"floatprint.Shortest", floatprint.Shortest},
	}

	fmt.Printf("%-22s %12s %10s %8s\n", "encoder", "total bytes", "mean len", "lossy")
	for _, enc := range encoders {
		total, lossy := 0, 0
		for _, v := range batch {
			s := enc.encode(v)
			total += len(s)
			back, err := strconv.ParseFloat(s, 64)
			if err != nil || back != v {
				lossy++
			}
		}
		fmt.Printf("%-22s %12d %10.1f %8d\n",
			enc.name, total, float64(total)/float64(len(batch)), lossy)
	}

	fmt.Println("\nsample encodings of 0.1 + 0.2:")
	// Computed through variables: constant folding would otherwise produce
	// the double nearest 0.3 rather than the runtime sum.
	tenth, fifth := 0.1, 0.2
	v := tenth + fifth
	fmt.Printf("  %%.17e              -> %.17e\n", v)
	fmt.Printf("  %%.6g               -> %.6g\n", v)
	fmt.Printf("  floatprint.Shortest-> %s\n", floatprint.Shortest(v))
	fmt.Println("  (note: not \"0.3\" — 0.1+0.2 is a different float64 than 0.3,")
	fmt.Println("   and shortest output faithfully preserves the distinction)")

	// A JSON-ish record built with AppendShortest, allocation-friendly.
	buf := []byte(`{"series":[`)
	for i, v := range batch[:5] {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = floatprint.AppendShortest(buf, v)
	}
	buf = append(buf, "]}"...)
	fmt.Println("\nrecord:", strings.TrimSpace(string(buf)))
}
