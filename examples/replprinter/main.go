// REPL printer: the paper's motivating application.
//
// Burger & Dybvig built their algorithm for Chez Scheme, whose REPL must
// echo every computed value both *accurately* (reading the printed text
// back yields the identical float) and *minimally* (no
// 0.30000000000000004-style noise unless the value really differs from
// 0.3).  This example is a tiny RPN calculator REPL that prints every
// result with the free-format algorithm.
//
//	echo "1 3 / 0.1 0.2 + 2 sqrt" | go run ./examples/replprinter
//
// Enter numbers and operators (+ - * / sqrt) separated by spaces; each
// remaining stack value is echoed shortest-form.
package main

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"strings"

	"floatprint"
)

func main() {
	sc := bufio.NewScanner(os.Stdin)
	interactive := false
	if fi, err := os.Stdin.Stat(); err == nil && fi.Mode()&os.ModeCharDevice != 0 {
		interactive = true
	}
	if interactive {
		fmt.Println("rpn> enter numbers and + - * / sqrt; ctrl-d to exit")
		fmt.Print("rpn> ")
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			eval(line)
		}
		if interactive {
			fmt.Print("rpn> ")
		}
	}
}

func eval(line string) {
	var stack []float64
	pop2 := func() (a, b float64, ok bool) {
		if len(stack) < 2 {
			fmt.Println("error: stack underflow")
			return 0, 0, false
		}
		a, b = stack[len(stack)-2], stack[len(stack)-1]
		stack = stack[:len(stack)-2]
		return a, b, true
	}
	for _, tok := range strings.Fields(line) {
		switch tok {
		case "+", "-", "*", "/":
			a, b, ok := pop2()
			if !ok {
				return
			}
			switch tok {
			case "+":
				stack = append(stack, a+b)
			case "-":
				stack = append(stack, a-b)
			case "*":
				stack = append(stack, a*b)
			case "/":
				stack = append(stack, a/b)
			}
		case "sqrt":
			if len(stack) < 1 {
				fmt.Println("error: stack underflow")
				return
			}
			stack[len(stack)-1] = math.Sqrt(stack[len(stack)-1])
		default:
			// The REPL's reader is this package's own correctly rounded
			// parser — the printer assumes nearest-even, and the reader
			// delivers it, closing the paper's print/read contract.
			v, err := floatprint.Parse(tok, nil)
			if err != nil {
				fmt.Printf("error: %q is not a number or operator\n", tok)
				return
			}
			stack = append(stack, v)
		}
	}
	for _, v := range stack {
		fmt.Println(floatprint.Shortest(v))
	}
}
