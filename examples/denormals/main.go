// Denormals and '#' marks: printing at the edge of precision.
//
// Fixed-format printing is asked for a digit budget; denormalized numbers
// may have only a handful of significant bits, so most of those digits are
// unknowable.  The paper's '#' marks say so explicitly — "useful when
// printing denormalized numbers, which may have only a few digits of
// precision, or when printing to a large number of digits."
//
//	go run ./examples/denormals
package main

import (
	"fmt"
	"math"

	"floatprint"
)

func main() {
	fmt.Println("-- denormal ladder, 12 requested digits each --")
	v := math.SmallestNonzeroFloat64
	for i := 0; i < 8; i++ {
		fmt.Printf("%-28s %s\n", floatprint.Shortest(v), floatprint.Fixed(v, 12))
		v *= 947 // climb through the denormal range
	}

	fmt.Println("\n-- float32 1/3: only 24 bits of precision --")
	third := float32(1.0) / 3
	for _, n := range []int{5, 8, 10, 14} {
		d, err := floatprint.FixedDigits32(third, n, nil)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%2d digits: %-18s (%d significant)\n", n, d.String(), d.NSig)
	}

	fmt.Println("\n-- the paper's example: 100 printed to 20 decimal places --")
	fmt.Println(floatprint.FixedPosition(100, -20))
	fmt.Println("(15 significant zero decimals, then marks: a double pins 100")
	fmt.Println(" down only to ±2⁻⁴⁷ ≈ ±7.1e-15)")

	fmt.Println("\n-- marks disappear once the value has enough precision --")
	for _, x := range []float64{100, 100.5, 100.0625} {
		fmt.Printf("%-10g %s\n", x, floatprint.FixedPosition(x, -8))
	}

	fmt.Println("\n-- every marked output still reads back exactly --")
	s := floatprint.Fixed(math.SmallestNonzeroFloat64, 10)
	back, err := floatprint.Parse(s, nil)
	fmt.Printf("Parse(%q) recovered smallest denormal: %v (err %v)\n",
		s, back == math.SmallestNonzeroFloat64, err)
}
