// Generations: thirty years of shortest float printing in one program.
//
// Burger & Dybvig's 1996 algorithm defined the specification — the
// shortest string an accurate reader maps back to the same float — and
// every later algorithm implements the same contract faster:
//
//	1996  Burger & Dybvig   exact big-integer scaling (this repository's core)
//	2010  Grisu3            64-bit fixed point, certified or fall back
//	2018  Ryū               precomputed powers of five, total
//
// This example converts the same values through all of them (plus the
// strconv-legacy decimal digit-walk) and shows that the digits agree,
// then times a small batch.
//
//	go run ./examples/generations
package main

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"floatprint/internal/core"
	"floatprint/internal/decimal"
	"floatprint/internal/fpformat"
	"floatprint/internal/grisu"
	"floatprint/internal/ryu"
	"floatprint/internal/schryer"
)

func text(digits []byte, k int) string {
	var sb strings.Builder
	for i, d := range digits {
		if i == 1 {
			sb.WriteByte('.')
		}
		sb.WriteByte('0' + d)
	}
	sb.WriteString("e")
	sb.WriteString(strconv.Itoa(k - 1))
	return sb.String()
}

func main() {
	values := []float64{0.3, math.Pi, 1e23, 5e-324, 2.2250738585072011e-308}
	fmt.Printf("%-26s %-24s %-24s %-24s %-24s\n", "value", "Burger-Dybvig 1996", "decimal walk", "Grisu3 2010", "Ryu 2018")
	for _, v := range values {
		exact, err := core.FreeFormat(fpformat.DecodeFloat64(v), 10, core.ScalingEstimate, core.ReaderNearestEven)
		if err != nil {
			panic(err)
		}
		dd, dk := decimal.ShortestFloat64(v)
		gs := "(fallback)"
		if gd, gk, ok := grisu.Shortest(v); ok {
			gs = text(gd, gk)
		}
		rs := "(fallback)"
		if rd, rk, ok := ryu.Shortest(v); ok {
			rs = text(rd, rk)
		}
		fmt.Printf("%-26g %-24s %-24s %-24s %-24s\n",
			v, text(exact.Digits, exact.K), text(dd, dk), gs, rs)
	}

	fmt.Println("\ntiming 50,000 conversions (Schryer corpus):")
	corpus := schryer.CorpusN(50000)
	vals := make([]fpformat.Value, len(corpus))
	for i, f := range corpus {
		vals[i] = fpformat.DecodeFloat64(f)
	}

	start := time.Now()
	for _, v := range vals {
		if _, err := core.FreeFormat(v, 10, core.ScalingEstimate, core.ReaderNearestEven); err != nil {
			panic(err)
		}
	}
	tDragon := time.Since(start)

	start = time.Now()
	for _, f := range corpus {
		decimal.ShortestFloat64(f)
	}
	tDecimal := time.Since(start)

	start = time.Now()
	fallbacks := 0
	for i, f := range corpus {
		if _, _, ok := grisu.Shortest(f); !ok {
			fallbacks++
			if _, err := core.FreeFormat(vals[i], 10, core.ScalingEstimate, core.ReaderNearestEven); err != nil {
				panic(err)
			}
		}
	}
	tGrisu := time.Since(start)

	start = time.Now()
	ryuFallbacks := 0
	for i, f := range corpus {
		if _, _, ok := ryu.Shortest(f); !ok {
			ryuFallbacks++
			if _, err := core.FreeFormat(vals[i], 10, core.ScalingEstimate, core.ReaderNearestEven); err != nil {
				panic(err)
			}
		}
	}
	tRyu := time.Since(start)

	fmt.Printf("  Burger-Dybvig exact:   %8v\n", tDragon.Round(time.Millisecond))
	fmt.Printf("  decimal digit-walk:    %8v\n", tDecimal.Round(time.Millisecond))
	fmt.Printf("  Grisu3 + fallback:     %8v   (%d fallbacks, %.2f%%)\n",
		tGrisu.Round(time.Millisecond), fallbacks, 100*float64(fallbacks)/float64(len(corpus)))
	fmt.Printf("  Ryu + exact fallback:  %8v   (%d fallbacks, %.2f%%)\n",
		tRyu.Round(time.Millisecond), ryuFallbacks, 100*float64(ryuFallbacks)/float64(len(corpus)))
	fmt.Println("\nsame digits, three decades of speedups — the specification is the paper's.")
}
