// Bases: the algorithm is generic over the output radix.
//
// The paper's algorithm converts from an input base b (2 for IEEE) to any
// output base B; nothing in it is decimal-specific.  This example prints
// values across the radix spectrum and closes the loop with the matching
// correctly rounded reader in each base.
//
//	go run ./examples/bases
package main

import (
	"fmt"
	"math"

	"floatprint"
)

func main() {
	fmt.Println("-- 1/3 in many bases (shortest form) --")
	third := 1.0 / 3.0
	for _, base := range []int{2, 3, 7, 10, 12, 16, 20, 36} {
		s, err := floatprint.Format(third, &floatprint.Options{Base: base})
		if err != nil {
			panic(err)
		}
		note := ""
		if base%3 == 0 {
			note = "  <- base divisible by 3: short!"
		}
		fmt.Printf("base %2d: %-60s%s\n", base, s, note)
	}

	fmt.Println("\n-- 0.1 is exact in no binary-friendly base, exact in 10 and 20 --")
	for _, base := range []int{2, 10, 16, 20} {
		s, _ := floatprint.Format(0.1, &floatprint.Options{Base: base})
		fmt.Printf("base %2d: %s\n", base, s)
	}
	fmt.Println("(these digit strings all denote the SAME double, the one")
	fmt.Println(" nearest 1/10; shortness depends on the radix)")

	fmt.Println("\n-- machine constants in hex --")
	hexOpts := &floatprint.Options{Base: 16}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"pi", math.Pi}, {"e", math.E}, {"max float64", math.MaxFloat64},
		{"min normal", 0x1p-1022},
	} {
		s, _ := floatprint.Format(c.v, hexOpts)
		fmt.Printf("%-12s %s\n", c.name, s)
	}

	fmt.Println("\n-- round-trip in every base 2..36 --")
	ok := 0
	for base := 2; base <= 36; base++ {
		opts := &floatprint.Options{Base: base}
		good := true
		for _, v := range []float64{math.Pi, 1e23, 5e-324, 0.1, math.MaxFloat64} {
			s, err := floatprint.Format(v, opts)
			if err != nil {
				panic(err)
			}
			back, err := floatprint.Parse(s, opts)
			if err != nil || back != v {
				good = false
			}
		}
		if good {
			ok++
		}
	}
	fmt.Printf("%d of 35 bases round-tripped five stress values exactly\n", ok)
}
