package floatprint

import "strconv"

const digitAlphabet = "0123456789abcdefghijklmnopqrstuvwxyz"

// String renders d with automatic notation and '#' marks, the package's
// canonical textual form.  Rendering is driven by the Digits value itself
// (in particular its Base), so a Digits produced under non-default options
// prints correctly here.
func (d Digits) String() string {
	return d.render(defaultOptions())
}

// Append appends the rendering of d under opts to dst and returns the
// extended slice.  Invalid options are rejected here, at the API boundary,
// before any rendering state is touched; on error dst is returned
// unchanged.  Append performs no allocation beyond growing dst, so callers
// that reuse a buffer render with zero allocations per call.
func (d Digits) Append(dst []byte, opts *Options) ([]byte, error) {
	o, err := opts.norm()
	if err != nil {
		return dst, err
	}
	return d.appendRender(dst, o), nil
}

// render returns the textual form of d under already-normalized options.
// Validation happens in the public entry points (Options.norm at the API
// boundary); render itself can no longer observe an invalid Options value.
func (d Digits) render(o Options) string {
	return string(d.appendRender(make([]byte, 0, 32), o))
}

// appendRender applies the options' notation, appending to dst.
func (d Digits) appendRender(dst []byte, o Options) []byte {
	switch d.Class {
	case IsNaN:
		return append(dst, "NaN"...)
	case IsInf:
		if d.Neg {
			return append(dst, "-Inf"...)
		}
		return append(dst, "+Inf"...)
	case IsZero:
		return d.appendZero(dst)
	}

	notation := o.Notation
	if notation == NotationAuto {
		// Positional for moderate scales (strconv %g uses the same band);
		// marks interleaved with positional padding would be ambiguous, so
		// marked results falling past their own digits go scientific too.
		if d.K < -3 || d.K > 21 || (d.NSig < len(d.Digits) && d.K > len(d.Digits)) {
			notation = NotationScientific
		} else {
			notation = NotationPositional
		}
	}
	if d.Neg {
		dst = append(dst, '-')
	}
	if notation == NotationScientific {
		return d.appendScientific(dst, o)
	}
	return d.appendPositional(dst, o)
}

func (d Digits) appendZero(dst []byte) []byte {
	if d.Neg {
		dst = append(dst, '-')
	}
	dst = append(dst, '0')
	// Fixed-format zeros carry digit positions: render the fraction when
	// the positions extend below the radix point.
	if n := len(d.Digits); n > 1 || (n == 1 && d.K <= 0) {
		frac := n - d.K
		if frac > 0 {
			dst = append(dst, '.')
			for i := 0; i < frac; i++ {
				dst = append(dst, '0')
			}
		}
	}
	return dst
}

// digitChar renders one digit, using '#' for insignificant positions.
func (d Digits) digitChar(i int, o Options) byte {
	if i >= d.NSig && !o.NoMarks {
		return '#'
	}
	return digitAlphabet[d.Digits[i]]
}

// appendScientific writes d₁.d₂…dₙ followed by the exponent marker and
// K−1 (the exponent of the leading digit).
func (d Digits) appendScientific(dst []byte, o Options) []byte {
	dst = append(dst, d.digitChar(0, o))
	if len(d.Digits) > 1 {
		dst = append(dst, '.')
		for i := 1; i < len(d.Digits); i++ {
			dst = append(dst, d.digitChar(i, o))
		}
	}
	if d.Base <= 10 {
		dst = append(dst, 'e')
	} else {
		dst = append(dst, '@') // 'e' is a digit in bases over 10
	}
	return strconv.AppendInt(dst, int64(d.K-1), 10)
}

// appendPositional writes the digits around a radix point at position K.
func (d Digits) appendPositional(dst []byte, o Options) []byte {
	n := len(d.Digits)
	switch {
	case d.K <= 0:
		dst = append(dst, '0', '.')
		for i := 0; i < -d.K; i++ {
			dst = append(dst, '0')
		}
		for i := 0; i < n; i++ {
			dst = append(dst, d.digitChar(i, o))
		}
	case d.K >= n:
		for i := 0; i < n; i++ {
			dst = append(dst, d.digitChar(i, o))
		}
		for i := n; i < d.K; i++ {
			dst = append(dst, '0') // value padding below the last digit position
		}
	default:
		for i := 0; i < d.K; i++ {
			dst = append(dst, d.digitChar(i, o))
		}
		dst = append(dst, '.')
		for i := d.K; i < n; i++ {
			dst = append(dst, d.digitChar(i, o))
		}
	}
	return dst
}
