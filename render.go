package floatprint

import (
	"strconv"
	"strings"
)

const digitAlphabet = "0123456789abcdefghijklmnopqrstuvwxyz"

// String renders d with automatic notation and '#' marks, the package's
// canonical textual form.
func (d Digits) String() string {
	return d.render(nil)
}

// render applies the options' notation.
func (d Digits) render(opts *Options) string {
	o, err := opts.norm()
	if err != nil {
		o.Notation = NotationAuto
	}
	switch d.Class {
	case IsNaN:
		return "NaN"
	case IsInf:
		if d.Neg {
			return "-Inf"
		}
		return "+Inf"
	case IsZero:
		return d.renderZero(o)
	}

	notation := o.Notation
	if notation == NotationAuto {
		// Positional for moderate scales (strconv %g uses the same band);
		// marks interleaved with positional padding would be ambiguous, so
		// marked results falling past their own digits go scientific too.
		if d.K < -3 || d.K > 21 || (d.NSig < len(d.Digits) && d.K > len(d.Digits)) {
			notation = NotationScientific
		} else {
			notation = NotationPositional
		}
	}
	var sb strings.Builder
	if d.Neg {
		sb.WriteByte('-')
	}
	if notation == NotationScientific {
		d.renderScientific(&sb, o)
	} else {
		d.renderPositional(&sb, o)
	}
	return sb.String()
}

func (d Digits) renderZero(o Options) string {
	var sb strings.Builder
	if d.Neg {
		sb.WriteByte('-')
	}
	sb.WriteByte('0')
	// Fixed-format zeros carry digit positions: render the fraction when
	// the positions extend below the radix point.
	if n := len(d.Digits); n > 1 || (n == 1 && d.K <= 0) {
		frac := n - d.K
		if frac > 0 {
			sb.WriteByte('.')
			for i := 0; i < frac; i++ {
				sb.WriteByte('0')
			}
		}
	}
	return sb.String()
}

// digitChar renders one digit, using '#' for insignificant positions.
func (d Digits) digitChar(i int, o Options) byte {
	if i >= d.NSig && !o.NoMarks {
		return '#'
	}
	return digitAlphabet[d.Digits[i]]
}

// renderScientific writes d₁.d₂…dₙ followed by the exponent marker and
// K−1 (the exponent of the leading digit).
func (d Digits) renderScientific(sb *strings.Builder, o Options) {
	sb.WriteByte(d.digitChar(0, o))
	if len(d.Digits) > 1 {
		sb.WriteByte('.')
		for i := 1; i < len(d.Digits); i++ {
			sb.WriteByte(d.digitChar(i, o))
		}
	}
	if d.Base <= 10 {
		sb.WriteByte('e')
	} else {
		sb.WriteByte('@') // 'e' is a digit in bases over 10
	}
	sb.WriteString(strconv.Itoa(d.K - 1))
}

// renderPositional writes the digits around a radix point at position K.
func (d Digits) renderPositional(sb *strings.Builder, o Options) {
	n := len(d.Digits)
	switch {
	case d.K <= 0:
		sb.WriteString("0.")
		for i := 0; i < -d.K; i++ {
			sb.WriteByte('0')
		}
		for i := 0; i < n; i++ {
			sb.WriteByte(d.digitChar(i, o))
		}
	case d.K >= n:
		for i := 0; i < n; i++ {
			sb.WriteByte(d.digitChar(i, o))
		}
		for i := n; i < d.K; i++ {
			sb.WriteByte('0') // value padding below the last digit position
		}
	default:
		for i := 0; i < d.K; i++ {
			sb.WriteByte(d.digitChar(i, o))
		}
		sb.WriteByte('.')
		for i := d.K; i < n; i++ {
			sb.WriteByte(d.digitChar(i, o))
		}
	}
}
