package floatprint

import (
	"os/exec"
	"strings"
	"testing"
)

// runTool builds and runs a command from cmd/ with the given arguments,
// returning combined output.  Skipped in -short mode (compilation cost).
func runTool(t *testing.T, tool string, args ...string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping CLI end-to-end test in short mode")
	}
	cmd := exec.Command("go", append([]string{"run", "./cmd/" + tool}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v failed: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

func TestCLIFpprint(t *testing.T) {
	out := runTool(t, "fpprint", "0.3", "1e23")
	if !strings.Contains(out, "0.3") || !strings.Contains(out, "1e23") {
		t.Errorf("fpprint output:\n%s", out)
	}
	out = runTool(t, "fpprint", "-pos", "-20", "100")
	if !strings.Contains(out, "100.000000000000000#####") {
		t.Errorf("fpprint marks output:\n%s", out)
	}
	out = runTool(t, "fpprint", "-base", "16", "255.5")
	if !strings.Contains(out, "ff.8") {
		t.Errorf("fpprint hex output:\n%s", out)
	}
	out = runTool(t, "fpprint", "-mode", "unknown", "1e23")
	if !strings.Contains(out, "9.999999999999999e22") {
		t.Errorf("fpprint unknown-mode output:\n%s", out)
	}
}

func TestCLIFpbenchSmall(t *testing.T) {
	out := runTool(t, "fpbench", "-table", "2", "-n", "3000")
	for _, want := range []string{"Steele & White", "estimate", "Relative"} {
		if !strings.Contains(out, want) {
			t.Errorf("fpbench table 2 missing %q:\n%s", want, out)
		}
	}
	out = runTool(t, "fpbench", "-successors", "-n", "3000")
	if !strings.Contains(out, "Ryu") || !strings.Contains(out, "Grisu3") {
		t.Errorf("fpbench successors output:\n%s", out)
	}
}

// runToolExpectError is runTool for invocations that must exit
// non-zero; it fails the test if the command succeeds.
func runToolExpectError(t *testing.T, tool string, args ...string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping CLI end-to-end test in short mode")
	}
	cmd := exec.Command("go", append([]string{"run", "./cmd/" + tool}, args...)...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v exited 0, want failure\n%s", tool, args, out)
	}
	return string(out)
}

func TestCLIFpverifySmall(t *testing.T) {
	out := runTool(t, "fpverify", "-n", "2000")
	if !strings.Contains(out, "all checks passed") {
		t.Errorf("fpverify output:\n%s", out)
	}
}

// TestCLIFpverifyFailureExit pins the CI contract: when any mismatch is
// recorded, fpverify must exit non-zero and print a FAILURES summary
// line (checked here via the synthetic -inject-failure mismatch).
func TestCLIFpverifyFailureExit(t *testing.T) {
	out := runToolExpectError(t, "fpverify", "-n", "1", "-inject-failure")
	if !strings.Contains(out, "1 FAILURES") {
		t.Errorf("fpverify failure summary missing:\n%s", out)
	}
	if strings.Contains(out, "all checks passed") {
		t.Errorf("fpverify claimed success while failing:\n%s", out)
	}
}

func TestCLIFpbenchBatch(t *testing.T) {
	out := runTool(t, "fpbench", "-batch", "-n", "3000")
	for _, want := range []string{"shards", "values/s", "verified byte-identical"} {
		if !strings.Contains(out, want) {
			t.Errorf("fpbench -batch missing %q:\n%s", want, out)
		}
	}
}

func TestCLIFpbenchStats(t *testing.T) {
	out := runTool(t, "fpbench", "-stats", "-n", "2000")
	for _, want := range []string{"mean shortest digits", "grisu hit rate", "exact free-format"} {
		if !strings.Contains(out, want) {
			t.Errorf("fpbench -stats missing %q:\n%s", want, out)
		}
	}
}

func TestCLIFpfuzzSmall(t *testing.T) {
	out := runTool(t, "fpfuzz", "-n", "1500", "-basic-every", "200")
	if !strings.Contains(out, "0 failures") {
		t.Errorf("fpfuzz output:\n%s", out)
	}
}

func TestCLIFpinspect(t *testing.T) {
	out := runTool(t, "fpinspect", "1e23")
	for _, want := range []string{"even mantissa: true", "shortest", "1e23"} {
		if !strings.Contains(out, want) {
			t.Errorf("fpinspect missing %q:\n%s", want, out)
		}
	}
}
