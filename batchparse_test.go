package floatprint

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// parseBatchRef is the per-value oracle: tokenize with BatchSep, Parse
// each token under default options accepting ErrRange, and stop at the
// first real error with the same Record/Offset bookkeeping ParseBatch
// promises.
func parseBatchRef(data []byte) ([]float64, error) {
	var out []float64
	i := 0
	for {
		for i < len(data) && BatchSep(data[i]) {
			i++
		}
		if i >= len(data) {
			return out, nil
		}
		start := i
		for i < len(data) && !BatchSep(data[i]) {
			i++
		}
		f, err := Parse(string(data[start:i]), nil)
		if err != nil && !errors.Is(err, ErrRange) {
			return out, &BatchParseError{Record: len(out), Offset: start, Err: err}
		}
		out = append(out, f)
	}
}

// assertBatchMatchesRef runs both engines and requires bit-identical
// values and identical error position and text.
func assertBatchMatchesRef(t *testing.T, data []byte) {
	t.Helper()
	got, gotErr := ParseBatch(data)
	want, wantErr := parseBatchRef(data)
	if len(got) != len(want) {
		t.Fatalf("ParseBatch(%q): %d values, reference %d", data, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("ParseBatch(%q): value %d = %x, reference %x",
				data, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
	switch {
	case gotErr == nil && wantErr == nil:
	case gotErr == nil || wantErr == nil:
		t.Fatalf("ParseBatch(%q): err %v, reference err %v", data, gotErr, wantErr)
	default:
		var ge, we *BatchParseError
		if !errors.As(gotErr, &ge) || !errors.As(wantErr, &we) {
			t.Fatalf("ParseBatch(%q): non-BatchParseError: %v / %v", data, gotErr, wantErr)
		}
		if ge.Record != we.Record || ge.Offset != we.Offset || ge.Err.Error() != we.Err.Error() {
			t.Fatalf("ParseBatch(%q): error %v, reference %v", data, gotErr, wantErr)
		}
	}
}

func TestParseBatchBasic(t *testing.T) {
	got, err := ParseBatch([]byte("1.5\n-2.25\n1e23\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, -2.25, 1e23}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestParseBatchMalformedPins pins the issue's malformed-input corpus:
// truncated final line, embedded NUL, overlong digit runs, CRLF vs LF
// equivalence, plus specials and range semantics, all against the
// per-value reference.
func TestParseBatchMalformedPins(t *testing.T) {
	long := strings.Repeat("9", 400)
	cases := []string{
		"",
		"\n\n\n",
		",, ,\t,",
		"1.5\n2.5",                // truncated final line (no trailing separator)
		"1.5\n2.5\n",              // same with the separator, same values
		"1\x002\n3\n",             // embedded NUL: token "1\x002" is malformed
		"\x00",                    // NUL-only token
		long + "\n1\n",            // overlong digit run (falls back, huge but finite? no: 1e400-ish -> ErrRange)
		"0." + long + "\n",        // overlong fraction, certifiable by man+1 agreement or fallback
		"1e999\n-1e999\n2\n",      // ErrRange keeps IEEE semantics: +/-Inf, parsing continues
		"1e-999\n",                // underflow to zero, exact reader decides
		"2.01e16777215\n3\n",      // astronomical exponent: O(1) ErrRange, not minutes of bignat powering
		"-1e-16777215\n3\n",       // astronomical underflow: O(1) -0
		"1.5\r\n2.5\r\n",          // CRLF
		"1.5\n2.5\n",              // LF twin of the CRLF case
		"1,2\r\n3 4\t5\n",         // mixed separators
		"nan\nInf\n-infinity\n",   // specials take the per-value fallback
		"1##\n12#.#e3\n",          // '#' marks (fixed-format round-trips)
		"12@-3\n",                 // '@' exponent
		"3..4\n5\n",               // malformed mid-stream: error after one value
		"abc\n",                   // malformed first token
		"1.5\nxyz\n2.5\n",         // values before the failure are returned
		"+\n",                     // sign-only token
		"1e\n",                    // missing exponent digits
		"0.3\n1e23\n5e-324\n-0\n", // fast path, tie fallback, subnormal, negative zero
	}
	for _, c := range cases {
		assertBatchMatchesRef(t, []byte(c))
	}
}

func TestParseBatchCRLFvsLF(t *testing.T) {
	crlf, err1 := ParseBatch([]byte("1.25\r\n-7e5\r\n0.001\r\n"))
	lf, err2 := ParseBatch([]byte("1.25\n-7e5\n0.001\n"))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(crlf) != len(lf) || len(crlf) != 3 {
		t.Fatalf("CRLF %d values, LF %d", len(crlf), len(lf))
	}
	for i := range crlf {
		if math.Float64bits(crlf[i]) != math.Float64bits(lf[i]) {
			t.Fatalf("value %d differs: CRLF %v, LF %v", i, crlf[i], lf[i])
		}
	}
}

func TestParseBatchErrorPosition(t *testing.T) {
	_, err := ParseBatch([]byte("1.5 2.5\nbogus\n3.5\n"))
	var be *BatchParseError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BatchParseError", err)
	}
	if be.Record != 2 || be.Offset != 8 {
		t.Fatalf("error at record %d offset %d, want record 2 offset 8", be.Record, be.Offset)
	}
	if !strings.Contains(err.Error(), "record 2") || !strings.Contains(err.Error(), "offset 8") {
		t.Fatalf("error text %q missing position", err)
	}
}

func TestParseBatchStats(t *testing.T) {
	ResetStats()
	prev := SetStatsEnabled(true)
	defer SetStatsEnabled(prev)

	before := Snapshot()
	data := []byte("0.3\n1.5\nnan\n1e999\n")
	vals, err := ParseBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 4 {
		t.Fatalf("got %d values, want 4", len(vals))
	}
	d := Snapshot().Sub(before)
	if d.BatchParseBlocks != 1 {
		t.Errorf("BatchParseBlocks = %d, want 1", d.BatchParseBlocks)
	}
	if d.BatchParseValues != 4 {
		t.Errorf("BatchParseValues = %d, want 4", d.BatchParseValues)
	}
	if d.BatchParseBytes != uint64(len(data)) {
		t.Errorf("BatchParseBytes = %d, want %d", d.BatchParseBytes, len(data))
	}
	// "nan" and "1e999" both decline the block scanner.
	if d.BatchParseFallbacks != 2 {
		t.Errorf("BatchParseFallbacks = %d, want 2", d.BatchParseFallbacks)
	}
	out := d.String()
	for _, want := range []string{"batch-parse blocks", "batch-parse fallbacks"} {
		if !strings.Contains(out, want) {
			t.Errorf("Stats.String() missing %q:\n%s", want, out)
		}
	}
}
