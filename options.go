package floatprint

import (
	"fmt"

	"floatprint/internal/core"
	"floatprint/internal/reader"
)

// ReaderRounding describes how the program that will eventually read the
// printed number back rounds values that fall exactly halfway between two
// floating-point numbers.  Knowing the reader lets the printer use the
// endpoints of the rounding range and sometimes save a digit (the paper's
// Section 3); when in doubt, ReaderUnknown is always safe.
type ReaderRounding int

const (
	// ReaderNearestEven assumes an IEEE round-to-nearest-even reader, the
	// behavior of strconv.ParseFloat, C strtod, and this package's Parse
	// default.  This is the package default.
	ReaderNearestEven ReaderRounding = iota
	// ReaderUnknown assumes nothing about the reader; output round-trips
	// under any reasonable round-to-nearest reader.
	ReaderUnknown
	// ReaderNearestAway assumes the reader rounds ties away from zero.
	ReaderNearestAway
	// ReaderNearestTowardZero assumes the reader rounds ties toward zero.
	ReaderNearestTowardZero
	// ReaderTowardNegInf selects IEEE directed rounding toward −∞.  For
	// Parse it rounds every inexact input down — the outward rounding an
	// interval *lower* bound needs — saturating positive overflow at
	// MaxFloat64 and stopping positive underflow at the smallest
	// denormal.  For printing it emits the shortest string in v's upper
	// half-gap [v, v+m⁺) (ShortestAboveDigits): such a string reads back
	// as exactly v under a toward-negative reader, and under any nearest
	// reader as well.
	ReaderTowardNegInf
	// ReaderTowardPosInf selects IEEE directed rounding toward +∞, the
	// mirror of ReaderTowardNegInf: Parse rounds every inexact input up,
	// and printing emits the shortest string in the lower half-gap
	// (v−m⁻, v] (ShortestBelowDigits).
	ReaderTowardPosInf
)

func (r ReaderRounding) String() string {
	if r.directed() {
		return r.reader().String()
	}
	return r.core().String()
}

// directed reports whether r is one of the two directed (interval) modes,
// which take a one-sided printing path instead of the nearest-range core.
func (r ReaderRounding) directed() bool {
	return r == ReaderTowardNegInf || r == ReaderTowardPosInf
}

// core maps r to the exact core's nearest-range reader assumption.  The
// directed modes never reach the free-format core (shortestValue routes
// them to Floor/CeilFormat first); where a nearest-range assumption is
// still needed — the fixed-format significance analysis — they fall back
// to the conservative ReaderUnknown, whose output is valid under every
// reader.
func (r ReaderRounding) core() core.ReaderMode {
	switch r {
	case ReaderUnknown, ReaderTowardNegInf, ReaderTowardPosInf:
		return core.ReaderUnknown
	case ReaderNearestAway:
		return core.ReaderNearestAway
	case ReaderNearestTowardZero:
		return core.ReaderNearestTowardZero
	default:
		return core.ReaderNearestEven
	}
}

func (r ReaderRounding) reader() reader.RoundMode {
	switch r {
	case ReaderNearestAway:
		return reader.NearestAway
	case ReaderNearestTowardZero:
		return reader.NearestTowardZero
	case ReaderTowardNegInf:
		return reader.TowardNegInf
	case ReaderTowardPosInf:
		return reader.TowardPosInf
	default:
		return reader.NearestEven
	}
}

// Backend selects which algorithm generates shortest (free-format)
// digits.  Every backend produces byte-identical output: the fast paths
// follow the decline-don't-error contract, falling through to the exact
// Burger & Dybvig core whenever they cannot certifiably serve a request
// (non-base-10, non-default scaling, reader modes outside a backend's
// proof, Ryū's exact-halfway ties, Grisu3 certification failures).
// Selecting a backend therefore changes the path mix and the speed, never
// the answer.
//
// Backend also gates Parse's certified fast paths: BackendExact forces
// every parse through the exact big-integer reader, where any other value
// lets the Eisel–Lemire paths (nearest-even and directed) serve what they
// can certify.  Parsed values and errors are identical either way — the
// knob exists so differential tests and benchmarks can pin the exact
// path.
type Backend int

const (
	// BackendAuto picks the fastest applicable backend per call: Ryū for
	// base-10 nearest-even binary64 requests, Grisu3 for the other reader
	// modes, and the exact core otherwise.  This is the default.
	BackendAuto Backend = iota
	// BackendGrisu prefers the certified Grisu3 fast path (~0.5% exact
	// fallback on certification failure).
	BackendGrisu
	// BackendRyu prefers the Ryū fast path (nearest-even reader only;
	// exact fallback on halfway ties and unsupported modes).
	BackendRyu
	// BackendExact always runs the paper's exact big-integer algorithm,
	// and for Parse the exact big-integer reader.
	BackendExact
)

func (b Backend) String() string {
	switch b {
	case BackendGrisu:
		return "grisu"
	case BackendRyu:
		return "ryu"
	case BackendExact:
		return "exact"
	}
	return "auto"
}

// ParseBackend converts a backend name ("auto", "grisu", "ryu", "exact";
// "" means auto) to its Backend value.  The serving layer and CLIs use it
// to accept backend selections as text.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "auto":
		return BackendAuto, nil
	case "grisu":
		return BackendGrisu, nil
	case "ryu":
		return BackendRyu, nil
	case "exact":
		return BackendExact, nil
	}
	return BackendAuto, fmt.Errorf("floatprint: unknown backend %q (want auto, grisu, ryu, or exact)", s)
}

// Notation selects how digit results are rendered as text.
type Notation int

const (
	// NotationAuto uses positional notation for moderate scale factors and
	// scientific notation otherwise, like Go's %g.
	NotationAuto Notation = iota
	// NotationScientific always renders d.ddd…e±x.
	NotationScientific
	// NotationPositional always renders plain digits around a radix point.
	NotationPositional
)

// Scaling selects the scale-factor strategy from the paper's Table 2.  The
// default, ScalingEstimate, is the paper's contribution and is always the
// right choice outside benchmarks.
type Scaling int

const (
	// ScalingEstimate is the paper's two-flop estimator with penalty-free
	// fixup.
	ScalingEstimate Scaling = iota
	// ScalingIterative is Steele & White's search (slow; for comparison).
	ScalingIterative
	// ScalingFloatLog estimates with a floating-point logarithm call.
	ScalingFloatLog
)

func (s Scaling) core() core.Scaling {
	switch s {
	case ScalingIterative:
		return core.ScalingIterative
	case ScalingFloatLog:
		return core.ScalingFloatLog
	default:
		return core.ScalingEstimate
	}
}

// Options configures conversions.  The zero value is ready to use: base
// 10, a nearest-even reader, automatic notation, and the fast estimator.
type Options struct {
	// Base is the output (or input, for Parse) base, 2 to 36.
	// Zero means 10.
	Base int
	// Reader is the assumed rounding behavior of whoever reads the output.
	Reader ReaderRounding
	// Notation controls text rendering.
	Notation Notation
	// Scaling selects the scale-factor algorithm (benchmarking only).
	Scaling Scaling
	// Backend selects the shortest-digit generation backend.  Zero
	// (BackendAuto) picks the fastest applicable fast path per call.
	// Output never depends on the choice; only speed does.
	Backend Backend
	// NoMarks renders insignificant trailing digits as '0' instead of the
	// paper's '#' marks.  The digits still read back correctly; only the
	// explicit insignificance annotation is lost.
	NoMarks bool
}

// defaultOptions is the normalized form of a nil *Options: base 10,
// nearest-even reader, automatic notation, the fast estimator, marks on.
func defaultOptions() Options {
	return Options{Base: 10}
}

// norm returns o with defaults applied, validating the base and backend.
// Error construction lives in normErr so norm itself stays within the
// inlining budget: it runs on every call of the append fast paths, where
// an out-of-line call plus two fmt.Errorf bodies would cost more than
// the conversion's rendering.
func (o *Options) norm() (Options, error) {
	var v Options
	if o != nil {
		v = *o
	}
	if v.Base == 0 {
		v.Base = 10
	}
	if v.Base < 2 || v.Base > 36 || v.Backend < BackendAuto || v.Backend > BackendExact {
		return v, v.normErr()
	}
	return v, nil
}

// normErr builds the validation error for a norm failure.
func (o Options) normErr() error {
	if o.Base < 2 || o.Base > 36 {
		return fmt.Errorf("floatprint: base %d out of range [2,36]", o.Base)
	}
	return fmt.Errorf("floatprint: unknown backend %d", o.Backend)
}
