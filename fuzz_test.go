package floatprint

// Native Go fuzz targets, grown out of cmd/fpfuzz's structured
// generators: the seed corpus below reproduces one representative of
// each fpfuzz value class (uniform bits, binade edges, denormals,
// decimal neighbors, long 9/0 runs), and the fuzzer mutates from there.
// CI runs each target as a short smoke on every PR and for 60 seconds
// in the nightly scheduled job; `go test ./...` exercises just the
// seeds.

import (
	"errors"
	"math"
	"strconv"
	"strings"
	"testing"

	"floatprint/internal/core"
	"floatprint/internal/fpformat"
	"floatprint/internal/ryu"
)

// fuzzSeeds is one representative per fpfuzz generator class, as raw
// float64 bits.
var fuzzSeeds = []uint64{
	0x3FD5555555555555,                   // uniform-bits: 1/3
	math.Float64bits(1.0),                // binade edge: power of two
	math.Float64bits(1.0) | 1,            // binade edge: successor
	0x3FF << 52,                          // binade edge again, explicit
	(0x3FF << 52) | (1<<52 - 1),          // binade edge: all-ones mantissa
	1,                                    // smallest denormal
	0xFFFFFFFFFFFFF,                      // largest denormal
	math.Float64bits(5e-324),             // denormal, decimal form
	math.Float64bits(1e23),               // decimal neighbor: the paper's 1e23
	math.Float64bits(1e23) + 2,           // a few ulps up
	math.Float64bits(9.109383632e-31),    // decimal neighbor, small scale
	(0x3FF << 52) | ((1<<30 - 1) << 22),  // long-prefix: run of ones
	(0x3FF << 52) | ((1<<52 - 1) ^ 0xAB), // long-prefix: nines run
	math.Float64bits(math.MaxFloat64),    // extremes
	math.Float64bits(math.SmallestNonzeroFloat64),
	math.Float64bits(0.3), // short decimal
}

// sigDigits counts significant digits in a rendered decimal (the
// minimality metric fpverify uses).
func sigDigits(s string) int {
	if i := strings.IndexAny(s, "eE"); i >= 0 {
		s = s[:i]
	}
	keep := strings.Map(func(r rune) rune {
		if r >= '0' && r <= '9' {
			return r
		}
		return -1
	}, s)
	keep = strings.Trim(keep, "0")
	if keep == "" {
		return 1
	}
	return len(keep)
}

// FuzzShortestRoundTrip checks, for any float64 bit pattern, that the
// shortest output round-trips bit-exactly through strconv, is never
// longer than strconv's own shortest form, and that our reader agrees
// with strconv's on strconv's rendering.
func FuzzShortestRoundTrip(f *testing.F) {
	for _, bits := range fuzzSeeds {
		f.Add(bits)
	}
	f.Fuzz(func(t *testing.T, bits uint64) {
		v := math.Float64frombits(bits)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Skip()
		}
		s := Shortest(v)
		back, err := strconv.ParseFloat(s, 64)
		if err != nil || math.Float64bits(back) != math.Float64bits(v) {
			t.Fatalf("round-trip: v=%x %g printed %q read back %g err=%v",
				bits, v, s, back, err)
		}
		want := strconv.FormatFloat(v, 'e', -1, 64)
		if sigDigits(s) > sigDigits(want) {
			t.Fatalf("minimality: v=%x %q has more digits than strconv's %q", bits, s, want)
		}
		ours, err := Parse(want, nil)
		if err != nil || math.Float64bits(ours) != math.Float64bits(v) {
			t.Fatalf("parse agreement: v=%x strconv prints %q, our Parse reads %g err=%v",
				bits, want, ours, err)
		}
	})
}

// FuzzRyuVsStrconv differences the ryu backend against strconv's own
// Ryū implementation on every value the kernel serves: the digits and
// exponent must match strconv's shortest scientific form exactly.  On a
// decline the exact-core fallback must still round-trip — exact-halfway
// ties are precisely where the round-up core may legitimately render
// different digits than strconv's round-to-even, so byte comparison
// would be wrong there and round-trip identity is the real invariant.
func FuzzRyuVsStrconv(f *testing.F) {
	for _, bits := range fuzzSeeds {
		f.Add(bits)
	}
	// One exact-halfway decline representative so the fallback arm is
	// seeded too: 2.9802322387695312e-08 (2^-25) is a genuine tie where
	// round-to-even keeps ...12 but the exact core rounds up to ...13.
	f.Add(uint64(0x3e60000000000000))
	f.Fuzz(func(t *testing.T, bits uint64) {
		v := math.Abs(math.Float64frombits(bits))
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			t.Skip()
		}
		var buf [ryu.BufLen]byte
		n, k, ok := ryu.ShortestInto(buf[:], v)
		if !ok {
			out := AppendShortest(nil, v)
			back, err := strconv.ParseFloat(string(out), 64)
			if err != nil || math.Float64bits(back) != math.Float64bits(v) {
				t.Fatalf("decline fallback: v=%x rendered %q, read back %g, err=%v",
					bits, out, back, err)
			}
			return
		}
		want := strconv.FormatFloat(v, 'e', -1, 64)
		mant, expPart, found := strings.Cut(want, "e")
		if !found {
			t.Fatalf("strconv %q has no exponent", want)
		}
		mant = strings.ReplaceAll(mant, ".", "")
		e, err := strconv.Atoi(expPart)
		if err != nil {
			t.Fatalf("strconv %q exponent: %v", want, err)
		}
		if got := string(buf[:n]); got != mant || k != e+1 {
			t.Fatalf("ryu vs strconv: v=%x ryu %q K=%d, strconv %q (digits %q K=%d)",
				bits, got, k, want, mant, e+1)
		}
	})
}

// inCommonParseGrammar reports whether s lies in the intersection of
// this package's base-10 grammar and strconv.ParseFloat's: an optional
// sign, decimal digits with at most one point (at least one digit), and
// an optional e/E exponent of at most 7 decimal digits (both readers
// accept it without tripping internal caps; strconv also takes hex
// floats and underscores, the reader also takes '@' and '#', so the
// differential only runs where both grammars agree on what the string
// means).
func inCommonParseGrammar(s string) bool {
	i := 0
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		i++
	}
	digits, sawDot := 0, false
	for ; i < len(s); i++ {
		c := s[i]
		switch {
		case '0' <= c && c <= '9':
			digits++
		case c == '.' && !sawDot:
			sawDot = true
		default:
			goto exponent
		}
	}
exponent:
	if digits == 0 {
		return false
	}
	if i == len(s) {
		return true
	}
	if s[i] != 'e' && s[i] != 'E' {
		return false
	}
	i++
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		i++
	}
	expDigits := 0
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
		expDigits++
	}
	return expDigits >= 1 && expDigits <= 7
}

// FuzzParseVsStrconv differences Parse (base 10, nearest-even — the
// certified Eisel–Lemire fast path with exact fallback) against
// strconv.ParseFloat over the shared grammar: bit-identical values,
// and range errors on exactly the same inputs.
func FuzzParseVsStrconv(f *testing.F) {
	for _, bits := range fuzzSeeds {
		f.Add(strconv.FormatFloat(math.Float64frombits(bits), 'g', -1, 64))
	}
	for _, s := range []string{
		"1e23", "-1e23", "9007199254740993", "0.1", "-0", "1e309", "-1e309",
		"1e-325", "2.2250738585072011e-308", "4.9406564584124654e-324",
		"123456789012345678901234567890e-20", "00000000000000000000.3",
		"9999999999999999999999999999999999999999e-10", "1.e5", ".5e1",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if !inCommonParseGrammar(s) {
			t.Skip()
		}
		want, werr := strconv.ParseFloat(s, 64)
		got, gerr := Parse(s, nil)
		if werr != nil {
			if !errors.Is(werr, strconv.ErrRange) {
				t.Fatalf("oracle rejects in-grammar input %q: %v", s, werr)
			}
			if !errors.Is(gerr, ErrRange) {
				t.Fatalf("Parse(%q): strconv reports range, we report %v", s, gerr)
			}
		} else if gerr != nil {
			t.Fatalf("Parse(%q) = %v, strconv accepts with %g", s, gerr, want)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Parse(%q) = %g (%#x), strconv = %g (%#x)",
				s, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	})
}

// FuzzFixedVsExact checks that FixedDigits — Gay's certified fast path
// plus exact fallback — always equals the exact big-integer
// fixed-format algorithm, for any value and any digit count 1..17.
// A certified fast-path result that differed from the exact output
// would be the fast path lying, the one thing its certificate must
// make impossible.
func FuzzFixedVsExact(f *testing.F) {
	for i, bits := range fuzzSeeds {
		f.Add(bits, uint8(i+1))
	}
	f.Fuzz(func(t *testing.T, bits uint64, nRaw uint8) {
		n := int(nRaw)%17 + 1
		v := math.Float64frombits(bits)
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			t.Skip()
		}
		got, err := FixedDigits(v, n, nil)
		if err != nil {
			t.Fatalf("FixedDigits(%x, %d): %v", bits, n, err)
		}
		val := fpformat.DecodeFloat64(v)
		res, err := core.FixedFormatRelative(abs(val), 10, core.ReaderNearestEven, n)
		if err != nil {
			t.Fatalf("exact FixedFormatRelative(%x, %d): %v", bits, n, err)
		}
		want := fromResult(res, val.Neg, 10)
		if got.Class != want.Class || got.Neg != want.Neg ||
			got.K != want.K || got.NSig != want.NSig ||
			string(got.Digits) != string(want.Digits) {
			t.Fatalf("fixed(%x, n=%d): fast-path result %+v, exact %+v", bits, n, got, want)
		}
	})
}

// FuzzDirectedPrintVsExact differences the one-sided Ryū kernels against
// the exact one-sided core through the public dispatch, for any bit
// pattern and both bounds: the default options (fast-eligible) and the
// forced-exact backend must render identical bytes.  The outputs also
// get an enclosure sanity check — Below reads back ≤ v and Above ≥ v
// under strconv — so a coordinated bug in both paths still has to fight
// an independent oracle.
func FuzzDirectedPrintVsExact(f *testing.F) {
	for _, bits := range fuzzSeeds {
		f.Add(bits)
	}
	f.Fuzz(func(t *testing.T, bits uint64) {
		v := math.Float64frombits(bits)
		exact := &Options{Backend: BackendExact}
		for _, above := range []bool{false, true} {
			get := ShortestBelowDigits
			if above {
				get = ShortestAboveDigits
			}
			fd, err := get(v, nil)
			if err != nil {
				t.Fatalf("directed(%x, above=%v): %v", bits, above, err)
			}
			ed, err := get(v, exact)
			if err != nil {
				t.Fatalf("exact directed(%x, above=%v): %v", bits, above, err)
			}
			if fd.String() != ed.String() {
				t.Fatalf("directed(%x, above=%v): fast %q, exact %q", bits, above, fd.String(), ed.String())
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			back, perr := strconv.ParseFloat(fd.String(), 64)
			if perr != nil {
				t.Fatalf("strconv rejects directed output %q: %v", fd.String(), perr)
			}
			if above && back < v || !above && back > v {
				t.Fatalf("enclosure: v=%x above=%v printed %q which reads back %g on the wrong side",
					bits, above, fd.String(), back)
			}
		}
	})
}

// FuzzDirectedParseVsExact differences the directed Eisel–Lemire fast
// path against the exact directed reader through the public Parse
// dispatch, for arbitrary strings and both directions: identical bits,
// identical error presence, identical error text.  Error identity is the
// load-bearing half — a fast path that truncates overflow onto
// MaxFloat64 but forgets ErrRange produces correct-looking values with
// the wrong contract.
func FuzzDirectedParseVsExact(f *testing.F) {
	for _, bits := range fuzzSeeds {
		f.Add(strconv.FormatFloat(math.Float64frombits(bits), 'g', -1, 64))
	}
	for _, s := range []string{
		"1e309", "-1e309", "1.7976931348623158e308", "5e-324", "1e-400",
		"9007199254740993", "123456789012345678901234567890e-20",
		"1#5", "12@-3", "inf", "nan", "1e", "..", "0.5", "7450580596923828125e-27",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		for _, mode := range []ReaderRounding{ReaderTowardNegInf, ReaderTowardPosInf} {
			fv, ferr := Parse(s, &Options{Reader: mode})
			ev, eerr := Parse(s, &Options{Reader: mode, Backend: BackendExact})
			if math.Float64bits(fv) != math.Float64bits(ev) {
				t.Fatalf("Parse(%q, %v): fast %g (%#x), exact %g (%#x)",
					s, mode, fv, math.Float64bits(fv), ev, math.Float64bits(ev))
			}
			if (ferr == nil) != (eerr == nil) {
				t.Fatalf("Parse(%q, %v): fast err %v, exact err %v", s, mode, ferr, eerr)
			}
			if ferr != nil && ferr.Error() != eerr.Error() {
				t.Fatalf("Parse(%q, %v): error text diverged\nfast:  %q\nexact: %q",
					s, mode, ferr.Error(), eerr.Error())
			}
		}
	})
}

// FuzzBatchParseVsParse feeds arbitrary byte streams through the
// block-at-a-time batch engine and the per-value oracle (BatchSep
// tokenization + Parse under default options): the engines must agree
// on every value bit for bit, and on the first error's record index,
// byte offset, and message.  This is the whole-engine form of the SWAR
// kernel's subset contract — the block scanner may decline any token,
// but it may never certify a value, or locate a failure, differently
// from the per-value path.
func FuzzBatchParseVsParse(f *testing.F) {
	for _, bits := range fuzzSeeds {
		f.Add([]byte(strconv.FormatFloat(math.Float64frombits(bits), 'g', -1, 64) + "\n"))
	}
	for _, s := range []string{
		"1.5 2.5\nbogus\n3.5\n", "1,2\r\n3\t4 ", "1e999\n-1e999\n", "nan inf -inf",
		"", "\n\n,,  ", "00000000000000000000.3\n", "1234567890123456789012345\n",
		"3..4\n", "1\x002\n", "1e\n", "+ - .\n", "1#5\n12@-3\n",
		"9007199254740993,9007199254740993", "2.2250738585072011e-308 4.9e-324\n",
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		assertBatchMatchesRef(t, data)
	})
}
