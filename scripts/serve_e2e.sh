#!/usr/bin/env bash
# End-to-end exercise of the fpserved conversion service: boot on a
# random port with the debug surface enabled, hit every endpoint, check
# the 10k-value batch stream byte-for-byte against the fpprint
# reference, round-trip that output through the /v1/batch-parse
# ingestion engine and back, round-trip interval text through
# /v1/interval with an enclosure assertion, scrape /metrics (including
# the conversion-trace, batch-parse, and interval gauges),
# exercise /debug/pprof and /debug/exemplars, verify request ids tie
# responses to the structured access log, and verify graceful shutdown
# drains and exits 0 within the drain deadline.
#
# Run from the repository root:  ./scripts/serve_e2e.sh
set -euo pipefail

workdir="$(mktemp -d)"
pid=""
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() { echo "serve_e2e: FAIL: $*" >&2; exit 1; }

echo "== build =="
go build -o "$workdir/fpserved" ./cmd/fpserved
go build -o "$workdir/fpprint" ./cmd/fpprint

echo "== boot on a random port =="
# -slow-request 1ns makes every request an exemplar, so the ring is
# guaranteed non-empty by the time /debug/exemplars is checked.
"$workdir/fpserved" -addr 127.0.0.1:0 -drain 10s -debug -slow-request 1ns >"$workdir/serve.log" 2>&1 &
pid=$!

addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/^fpserved listening on //p' "$workdir/serve.log" | head -n1)"
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { cat "$workdir/serve.log" >&2; fail "fpserved exited during startup"; }
  sleep 0.1
done
[ -n "$addr" ] || fail "no listening line within 10s"
base="http://$addr"
echo "fpserved up at $base (pid $pid)"

echo "== /healthz =="
got="$(curl -fsS "$base/healthz")"
[ "$got" = "ok" ] || fail "/healthz = $got, want ok"

echo "== /v1/shortest =="
got="$(curl -fsS "$base/v1/shortest?v=1e23")"
[ "$got" = "1e23" ] || fail "/v1/shortest?v=1e23 = $got, want 1e23"
got="$(curl -fsS "$base/v1/shortest?v=1e23&mode=unknown")"
[ "$got" = "9.999999999999999e22" ] || fail "mode=unknown = $got"

echo "== /v1/shortest: backend selection =="
got="$(curl -fsS "$base/v1/shortest?v=0.3&backend=ryu")"
[ "$got" = "0.3" ] || fail "backend=ryu v=0.3 = $got, want 0.3"
got="$(curl -fsS "$base/v1/shortest?v=0.3&backend=exact")"
[ "$got" = "0.3" ] || fail "backend=exact v=0.3 = $got, want 0.3"
# An unknown backend is a client error, not a conversion.
code="$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/shortest?v=0.3&backend=bogus")"
[ "$code" = "400" ] || fail "backend=bogus returned HTTP $code, want 400"

echo "== /v1/fixed =="
got="$(curl -fsS "$base/v1/fixed?v=3.14159&n=3")"
[ "$got" = "3.14" ] || fail "/v1/fixed?v=3.14159&n=3 = $got, want 3.14"

echo "== /v1/parse =="
got="$(curl -fsS "$base/v1/parse?s=0.3")"
[ "$got" = "0.3" ] || fail "/v1/parse?s=0.3 = $got, want 0.3"
# 1e23 is the classic nearest-even tie the fast path cannot certify: it
# must fall back to the exact reader and still answer correctly.
got="$(curl -fsS "$base/v1/parse?s=1e23")"
[ "$got" = "1e23" ] || fail "/v1/parse?s=1e23 = $got, want 1e23"
# Out-of-range input keeps IEEE semantics: ErrRange maps to +/-Inf.
got="$(curl -fsS "$base/v1/parse?s=-1e999")"
[ "$got" = "-Inf" ] || fail "/v1/parse?s=-1e999 = $got, want -Inf"

echo "== /v1/interval: outward print, enclosure parse =="
got="$(curl -fsS "$base/v1/interval?lo=0.1&hi=0.3")"
[ "$got" = "[0.1,0.3]" ] || fail "/v1/interval?lo=0.1&hi=0.3 = $got"
# Degenerate interval: both endpoints are one-sided conversions of the
# same float, outward-rounded so the decimal interval encloses it.
printed="$(curl -fsS "$base/v1/interval?lo=0.3&hi=0.3")"
[ "$printed" = "[0.29999999999999998,0.3]" ] || fail "/v1/interval?lo=0.3&hi=0.3 = $printed"
# Parse form: read the printed text back with outward rounding; the
# response is the enclosing rendering of the parsed endpoints, so its
# numeric endpoints must bracket the ones that went in.
parsed="$(curl -fsS --get --data-urlencode "s=$printed" "$base/v1/interval")"
[ "$parsed" = "[0.29999999999999993,0.30000000000000005]" ] || fail "interval parse of $printed = $parsed"
echo "$printed $parsed" | tr -d '[]' | tr ', ' '  ' \
  | awk '{ if ($3 > $1 || $4 < $2) exit 1 }' \
  || fail "parsed interval $parsed does not enclose printed $printed"

echo "== request ids: response header ties to the structured access log =="
req_id="$(curl -fsS -D - -o /dev/null "$base/v1/shortest?v=0.5" \
  | tr -d '\r' | sed -n 's/^X-Request-Id: //pI' | head -n1)"
[ -n "$req_id" ] || fail "no X-Request-Id header on /v1/shortest"
# The access-log line is written after the handler returns, so the
# response can arrive a beat before the line hits the log: retry briefly.
found=""
for _ in $(seq 1 50); do
  if grep -q "request_id=$req_id" "$workdir/serve.log"; then found=1; break; fi
  sleep 0.1
done
[ -n "$found" ] || { cat "$workdir/serve.log" >&2; fail "request_id=$req_id not in access log"; }
grep "request_id=$req_id" "$workdir/serve.log" | grep -q "path=/v1/shortest" \
  || fail "access log line for $req_id missing path"

echo "== /v1/batch: 10k values, byte-identical to the fpprint reference =="
awk 'BEGIN { srand(7); for (i = 0; i < 10000; i++) printf "%.17g\n", (rand() - 0.5) * exp((rand() - 0.5) * 200) }' \
  >"$workdir/input.txt"
"$workdir/fpprint" <"$workdir/input.txt" >"$workdir/want.txt"
curl -fsS -X POST --data-binary "@$workdir/input.txt" "$base/v1/batch" >"$workdir/got.txt"
cmp "$workdir/want.txt" "$workdir/got.txt" || fail "batch output differs from per-value reference"
[ "$(wc -l <"$workdir/got.txt")" -eq 10000 ] || fail "batch returned $(wc -l <"$workdir/got.txt") lines"

echo "== /v1/batch-parse: round-trip through the ingestion engine =="
# Parse the batch output (10k shortest renderings) into packed
# little-endian float64s, then print the packed values back through
# /v1/batch: a bit-exact parse must reproduce got.txt byte for byte.
curl -fsS -X POST --data-binary "@$workdir/got.txt" "$base/v1/batch-parse" >"$workdir/parsed.bin"
[ "$(wc -c <"$workdir/parsed.bin")" -eq 80000 ] || fail "batch-parse returned $(wc -c <"$workdir/parsed.bin") bytes, want 80000"
curl -fsS -X POST -H 'Content-Type: application/octet-stream' \
  --data-binary "@$workdir/parsed.bin" "$base/v1/batch" >"$workdir/roundtrip.txt"
cmp "$workdir/got.txt" "$workdir/roundtrip.txt" || fail "batch-parse round trip is not bit-identical"
# A malformed token before any output is a mapped 400 with coordinates.
code="$(printf '1.5\nbogus\n' | curl -s -o "$workdir/badparse.txt" -w '%{http_code}' --data-binary @- "$base/v1/batch-parse")"
[ "$code" = "400" ] || fail "malformed batch-parse returned HTTP $code, want 400"
grep -q "record 1" "$workdir/badparse.txt" || fail "batch-parse 400 lacks record coordinates: $(cat "$workdir/badparse.txt")"

echo "== /metrics =="
curl -fsS "$base/metrics" >"$workdir/metrics.txt"
batch_values="$(awk '$1 == "floatprint_batch_values_total" { print $2 }' "$workdir/metrics.txt")"
[ -n "$batch_values" ] || fail "floatprint_batch_values_total missing from /metrics"
[ "$batch_values" -ge 10000 ] || fail "floatprint_batch_values_total = $batch_values, want >= 10000"
requests="$(awk '$1 == "fpserved_requests_total" { print $2 }' "$workdir/metrics.txt")"
[ -n "$requests" ] || fail "fpserved_requests_total missing from /metrics"
# Seventeen conversion requests so far (six shortest — including the
# two backend selections and the rejected backend=bogus, counted at
# receipt — one fixed, three parse, three interval, one batch, two
# batch-parse, and the round-trip batch); /healthz, /metrics, and
# /debug bypass the instrumented chain and are deliberately not
# counted.
[ "$requests" -eq 17 ] || fail "fpserved_requests_total = $requests, want 17"

echo "== /metrics: batch-parse engine counters =="
bp_values="$(awk '$1 == "floatprint_batch_parse_values_total" { print $2 }' "$workdir/metrics.txt")"
[ -n "$bp_values" ] || fail "floatprint_batch_parse_values_total missing from /metrics"
[ "$bp_values" -ge 10000 ] || fail "floatprint_batch_parse_values_total = $bp_values, want >= 10000"
bp_blocks="$(awk '$1 == "floatprint_batch_parse_blocks_total" { print $2 }' "$workdir/metrics.txt")"
[ -n "$bp_blocks" ] || fail "floatprint_batch_parse_blocks_total missing from /metrics"
[ "$bp_blocks" -ge 1 ] || fail "floatprint_batch_parse_blocks_total = $bp_blocks, want >= 1"
bp_bytes="$(awk '$1 == "floatprint_batch_parse_bytes_total" { print $2 }' "$workdir/metrics.txt")"
[ -n "$bp_bytes" ] || fail "floatprint_batch_parse_bytes_total missing from /metrics"
[ "$bp_bytes" -ge 10000 ] || fail "floatprint_batch_parse_bytes_total = $bp_bytes, want >= 10000"
grep -q '^floatprint_batch_parse_fallbacks_total' "$workdir/metrics.txt" \
  || fail "floatprint_batch_parse_fallbacks_total missing from /metrics"

echo "== /metrics: interval counters =="
iv_prints="$(awk '$1 == "floatprint_interval_prints_total" { print $2 }' "$workdir/metrics.txt")"
[ -n "$iv_prints" ] || fail "floatprint_interval_prints_total missing from /metrics"
# Three formatted intervals: the two print-form requests plus the
# enclosing rendering of the parse-form response.
[ "$iv_prints" -eq 3 ] || fail "floatprint_interval_prints_total = $iv_prints, want 3"
iv_parses="$(awk '$1 == "floatprint_interval_parses_total" { print $2 }' "$workdir/metrics.txt")"
[ -n "$iv_parses" ] || fail "floatprint_interval_parses_total missing from /metrics"
[ "$iv_parses" -eq 1 ] || fail "floatprint_interval_parses_total = $iv_parses, want 1"

echo "== /metrics: parse path counters =="
parse_hits="$(awk '$1 == "floatprint_parse_fast_hits_total" { print $2 }' "$workdir/metrics.txt")"
[ -n "$parse_hits" ] || fail "floatprint_parse_fast_hits_total missing from /metrics"
[ "$parse_hits" -ge 1 ] || fail "floatprint_parse_fast_hits_total = $parse_hits, want >= 1"
parse_exact="$(awk '$1 == "floatprint_parse_exact_total" { print $2 }' "$workdir/metrics.txt")"
[ -n "$parse_exact" ] || fail "floatprint_parse_exact_total missing from /metrics"
# The 1e23 tie and the 1e999 overflow both took the exact reader.
[ "$parse_exact" -ge 2 ] || fail "floatprint_parse_exact_total = $parse_exact, want >= 2"

echo "== /metrics: ryu backend counters =="
ryu_hits="$(awk '$1 == "floatprint_ryu_hits_total" { print $2 }' "$workdir/metrics.txt")"
[ -n "$ryu_hits" ] || fail "floatprint_ryu_hits_total missing from /metrics"
# The default registry routes nearest-even shortest conversions to ryu,
# so nearly all of the 10k batch lands here (less the rare exact-halfway
# declines and specials, well under 1%).
[ "$ryu_hits" -ge 9900 ] || fail "floatprint_ryu_hits_total = $ryu_hits, want >= 9900"
grep -q '^floatprint_ryu_misses_total' "$workdir/metrics.txt" \
  || fail "floatprint_ryu_misses_total missing from /metrics"

echo "== /metrics: conversion-trace telemetry =="
trace_conv="$(awk '$1 == "floatprint_trace_conversions_total" { print $2 }' "$workdir/metrics.txt")"
[ -n "$trace_conv" ] || fail "floatprint_trace_conversions_total missing from /metrics"
[ "$trace_conv" -ge 1 ] || fail "floatprint_trace_conversions_total = $trace_conv, want >= 1"
grep -q '^floatprint_trace_backend_total{backend="grisu3"}' "$workdir/metrics.txt" \
  || fail "labeled backend mix missing grisu3 from /metrics"
# The default-mode shortest conversions above ran on the ryu backend.
grep -q '^floatprint_trace_backend_total{backend="ryu"}' "$workdir/metrics.txt" \
  || fail "labeled backend mix missing ryu from /metrics"
grep -q '^floatprint_digit_length_bucket{le="17"}' "$workdir/metrics.txt" \
  || fail "digit-length histogram missing from /metrics"

echo "== /debug/pprof and /debug/exemplars (enabled by -debug) =="
curl -fsS "$base/debug/pprof/" | grep -q goroutine || fail "/debug/pprof/ index missing profiles"
curl -fsS "$base/debug/exemplars" >"$workdir/exemplars.json"
grep -q '"id"' "$workdir/exemplars.json" || fail "/debug/exemplars has no captured requests"
grep -q '"path":"/v1/batch"' "$workdir/exemplars.json" \
  || fail "/debug/exemplars missing the batch request exemplar"
grep -q "\"id\":\"$req_id\"" "$workdir/exemplars.json" \
  || fail "/debug/exemplars missing exemplar for request $req_id"

echo "== graceful shutdown =="
kill -TERM "$pid"
deadline=$((SECONDS + 15))
while kill -0 "$pid" 2>/dev/null; do
  [ "$SECONDS" -lt "$deadline" ] || fail "fpserved still running 15s after SIGTERM"
  sleep 0.1
done
rc=0
wait "$pid" || rc=$?
pid=""
[ "$rc" -eq 0 ] || { cat "$workdir/serve.log" >&2; fail "fpserved exited $rc, want 0"; }
grep -q "drained cleanly" "$workdir/serve.log" || fail "missing 'drained cleanly' in server log"

echo "serve_e2e: PASS"
