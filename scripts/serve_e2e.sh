#!/usr/bin/env bash
# End-to-end exercise of the fpserved conversion service: boot on a
# random port with the debug surface and request tracing enabled, hit
# every endpoint, check the 10k-value batch stream byte-for-byte
# against the fpprint reference, round-trip that output through the
# /v1/batch-parse ingestion engine and back, round-trip interval text
# through /v1/interval with an enclosure assertion, propagate a W3C
# traceparent end to end (response header, access log, and
# /debug/traces), scrape /metrics (including the per-route RED
# metrics, the runtime collector, and the conversion-trace,
# batch-parse, and interval gauges), exercise /debug/pprof and
# /debug/exemplars, verify request ids tie responses to the structured
# access log, and verify graceful shutdown drains and exits 0 within
# the drain deadline.
#
# Run from the repository root:  ./scripts/serve_e2e.sh
set -euo pipefail

workdir="$(mktemp -d)"
pid=""
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() { echo "serve_e2e: FAIL: $*" >&2; exit 1; }

echo "== build =="
go build -o "$workdir/fpserved" ./cmd/fpserved
go build -o "$workdir/fpprint" ./cmd/fpprint

echo "== boot on a random port =="
# -slow-request 1ns makes every request an exemplar, so the ring is
# guaranteed non-empty by the time /debug/exemplars is checked;
# -trace-sample 1 traces every request so /debug/traces is populated.
"$workdir/fpserved" -addr 127.0.0.1:0 -drain 10s -debug -slow-request 1ns -trace-sample 1 -trace-ring 128 >"$workdir/serve.log" 2>&1 &
pid=$!

addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/^fpserved listening on //p' "$workdir/serve.log" | head -n1)"
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { cat "$workdir/serve.log" >&2; fail "fpserved exited during startup"; }
  sleep 0.1
done
[ -n "$addr" ] || fail "no listening line within 10s"
base="http://$addr"
echo "fpserved up at $base (pid $pid)"

echo "== /healthz =="
got="$(curl -fsS "$base/healthz")"
[ "$got" = "ok" ] || fail "/healthz = $got, want ok"

echo "== /v1/shortest =="
got="$(curl -fsS "$base/v1/shortest?v=1e23")"
[ "$got" = "1e23" ] || fail "/v1/shortest?v=1e23 = $got, want 1e23"
got="$(curl -fsS "$base/v1/shortest?v=1e23&mode=unknown")"
[ "$got" = "9.999999999999999e22" ] || fail "mode=unknown = $got"

echo "== /v1/shortest: backend selection =="
got="$(curl -fsS "$base/v1/shortest?v=0.3&backend=ryu")"
[ "$got" = "0.3" ] || fail "backend=ryu v=0.3 = $got, want 0.3"
got="$(curl -fsS "$base/v1/shortest?v=0.3&backend=exact")"
[ "$got" = "0.3" ] || fail "backend=exact v=0.3 = $got, want 0.3"
# An unknown backend is a client error, not a conversion.
code="$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/shortest?v=0.3&backend=bogus")"
[ "$code" = "400" ] || fail "backend=bogus returned HTTP $code, want 400"

echo "== /v1/fixed =="
got="$(curl -fsS "$base/v1/fixed?v=3.14159&n=3")"
[ "$got" = "3.14" ] || fail "/v1/fixed?v=3.14159&n=3 = $got, want 3.14"

echo "== /v1/parse =="
got="$(curl -fsS "$base/v1/parse?s=0.3")"
[ "$got" = "0.3" ] || fail "/v1/parse?s=0.3 = $got, want 0.3"
# 1e23 is the classic nearest-even tie the fast path cannot certify: it
# must fall back to the exact reader and still answer correctly.
got="$(curl -fsS "$base/v1/parse?s=1e23")"
[ "$got" = "1e23" ] || fail "/v1/parse?s=1e23 = $got, want 1e23"
# Out-of-range input keeps IEEE semantics: ErrRange maps to +/-Inf.
got="$(curl -fsS "$base/v1/parse?s=-1e999")"
[ "$got" = "-Inf" ] || fail "/v1/parse?s=-1e999 = $got, want -Inf"

echo "== /v1/interval: outward print, enclosure parse =="
got="$(curl -fsS "$base/v1/interval?lo=0.1&hi=0.3")"
[ "$got" = "[0.1,0.3]" ] || fail "/v1/interval?lo=0.1&hi=0.3 = $got"
# Degenerate interval: both endpoints are one-sided conversions of the
# same float, outward-rounded so the decimal interval encloses it.
printed="$(curl -fsS "$base/v1/interval?lo=0.3&hi=0.3")"
[ "$printed" = "[0.29999999999999998,0.3]" ] || fail "/v1/interval?lo=0.3&hi=0.3 = $printed"
# Parse form: read the printed text back with outward rounding; the
# response is the enclosing rendering of the parsed endpoints, so its
# numeric endpoints must bracket the ones that went in.
parsed="$(curl -fsS --get --data-urlencode "s=$printed" "$base/v1/interval")"
[ "$parsed" = "[0.29999999999999993,0.30000000000000005]" ] || fail "interval parse of $printed = $parsed"
echo "$printed $parsed" | tr -d '[]' | tr ', ' '  ' \
  | awk '{ if ($3 > $1 || $4 < $2) exit 1 }' \
  || fail "parsed interval $parsed does not enclose printed $printed"

echo "== request ids: response header ties to the structured access log =="
req_id="$(curl -fsS -D - -o /dev/null "$base/v1/shortest?v=0.5" \
  | tr -d '\r' | sed -n 's/^X-Request-Id: //pI' | head -n1)"
[ -n "$req_id" ] || fail "no X-Request-Id header on /v1/shortest"
# The access-log line is written after the handler returns, so the
# response can arrive a beat before the line hits the log: retry briefly.
found=""
for _ in $(seq 1 50); do
  if grep -q "request_id=$req_id" "$workdir/serve.log"; then found=1; break; fi
  sleep 0.1
done
[ -n "$found" ] || { cat "$workdir/serve.log" >&2; fail "request_id=$req_id not in access log"; }
grep "request_id=$req_id" "$workdir/serve.log" | grep -q "path=/v1/shortest" \
  || fail "access log line for $req_id missing path"
grep "request_id=$req_id" "$workdir/serve.log" | grep -q "trace_id=" \
  || fail "access log line for $req_id missing trace_id"

echo "== W3C traceparent: propagation into header, log, and /debug/traces =="
upstream_trace="4bf92f3577b34da6a3ce929d0e0e4736"
upstream_span="00f067aa0ba902b7"
trace_id="$(curl -fsS -D - -o /dev/null \
  -H "traceparent: 00-$upstream_trace-$upstream_span-01" \
  "$base/v1/shortest?v=0.25" \
  | tr -d '\r' | sed -n 's/^X-Trace-Id: //pI' | head -n1)"
[ "$trace_id" = "$upstream_trace" ] || fail "X-Trace-Id = $trace_id, want adopted upstream $upstream_trace"
# The trace publishes when the root span ends; give the ring a beat.
found=""
for _ in $(seq 1 50); do
  curl -fsS "$base/debug/traces?route=/v1/shortest" >"$workdir/traces.json"
  if grep -q "$upstream_trace" "$workdir/traces.json"; then found=1; break; fi
  sleep 0.1
done
[ -n "$found" ] || { cat "$workdir/traces.json" >&2; fail "upstream trace id not in /debug/traces"; }
grep -q "\"parent_id\":\"$upstream_span\"" "$workdir/traces.json" \
  || fail "/debug/traces root span not parented on upstream span $upstream_span"
for span_name in decode convert encode; do
  grep -q "\"name\":\"$span_name\"" "$workdir/traces.json" \
    || fail "/debug/traces missing $span_name child span"
done
grep -q '"key":"backend"' "$workdir/traces.json" \
  || fail "/debug/traces convert span missing backend attribute"
grep "trace_id=$upstream_trace" "$workdir/serve.log" | grep -q "path=/v1/shortest" \
  || fail "access log missing trace_id=$upstream_trace line"

echo "== /v1/batch: 10k values, byte-identical to the fpprint reference =="
awk 'BEGIN { srand(7); for (i = 0; i < 10000; i++) printf "%.17g\n", (rand() - 0.5) * exp((rand() - 0.5) * 200) }' \
  >"$workdir/input.txt"
"$workdir/fpprint" <"$workdir/input.txt" >"$workdir/want.txt"
curl -fsS -X POST --data-binary "@$workdir/input.txt" "$base/v1/batch" >"$workdir/got.txt"
cmp "$workdir/want.txt" "$workdir/got.txt" || fail "batch output differs from per-value reference"
[ "$(wc -l <"$workdir/got.txt")" -eq 10000 ] || fail "batch returned $(wc -l <"$workdir/got.txt") lines"

echo "== /v1/batch-parse: round-trip through the ingestion engine =="
# Parse the batch output (10k shortest renderings) into packed
# little-endian float64s, then print the packed values back through
# /v1/batch: a bit-exact parse must reproduce got.txt byte for byte.
curl -fsS -X POST --data-binary "@$workdir/got.txt" "$base/v1/batch-parse" >"$workdir/parsed.bin"
[ "$(wc -c <"$workdir/parsed.bin")" -eq 80000 ] || fail "batch-parse returned $(wc -c <"$workdir/parsed.bin") bytes, want 80000"
curl -fsS -X POST -H 'Content-Type: application/octet-stream' \
  --data-binary "@$workdir/parsed.bin" "$base/v1/batch" >"$workdir/roundtrip.txt"
cmp "$workdir/got.txt" "$workdir/roundtrip.txt" || fail "batch-parse round trip is not bit-identical"
# A malformed token before any output is a mapped 400 with coordinates.
code="$(printf '1.5\nbogus\n' | curl -s -o "$workdir/badparse.txt" -w '%{http_code}' --data-binary @- "$base/v1/batch-parse")"
[ "$code" = "400" ] || fail "malformed batch-parse returned HTTP $code, want 400"
grep -q "record 1" "$workdir/badparse.txt" || fail "batch-parse 400 lacks record coordinates: $(cat "$workdir/badparse.txt")"

echo "== /metrics =="
curl -fsS "$base/metrics" >"$workdir/metrics.txt"
batch_values="$(awk '$1 == "floatprint_batch_values_total" { print $2 }' "$workdir/metrics.txt")"
[ -n "$batch_values" ] || fail "floatprint_batch_values_total missing from /metrics"
[ "$batch_values" -ge 10000 ] || fail "floatprint_batch_values_total = $batch_values, want >= 10000"
# fpserved_requests_total is labeled by route; sum the samples for the
# process total and pin the per-route breakdown exactly.
requests="$(awk '/^fpserved_requests_total\{/ { sum += $2 } END { print sum+0 }' "$workdir/metrics.txt")"
# Eighteen conversion requests so far (seven shortest — including the
# two backend selections, the rejected backend=bogus counted at
# receipt, and the traceparent-propagation request — one fixed, three
# parse, three interval, one batch, two batch-parse, and the
# round-trip batch); /healthz, /metrics, and /debug bypass the
# instrumented chain and are deliberately not counted.
[ "$requests" -eq 18 ] || fail "fpserved_requests_total sums to $requests, want 18"

echo "== /metrics: per-route RED breakdown =="
grep -q 'fpserved_requests_total{route="/v1/shortest"} 7' "$workdir/metrics.txt" \
  || fail "per-route requests_total for /v1/shortest wrong: $(grep 'fpserved_requests_total{route="/v1/shortest"}' "$workdir/metrics.txt")"
grep -q 'fpserved_requests_total{route="/v1/batch"} 2' "$workdir/metrics.txt" \
  || fail "per-route requests_total for /v1/batch wrong"
# backend=bogus was the one 4xx on the shortest route; batch-parse saw
# the malformed-token 400.
grep -q 'fpserved_request_errors_total{route="/v1/shortest",class="4xx"} 1' "$workdir/metrics.txt" \
  || fail "per-route 4xx for /v1/shortest wrong"
grep -q 'fpserved_request_errors_total{route="/v1/batch-parse",class="4xx"} 1' "$workdir/metrics.txt" \
  || fail "per-route 4xx for /v1/batch-parse wrong"
grep -q 'fpserved_request_errors_total{route="/v1/shortest",class="5xx"} 0' "$workdir/metrics.txt" \
  || fail "per-route 5xx for /v1/shortest wrong"
grep -q 'fpserved_request_seconds_count{route="/v1/shortest"} 7' "$workdir/metrics.txt" \
  || fail "per-route latency histogram count for /v1/shortest wrong"
grep -q 'fpserved_request_seconds_bucket{route="/v1/batch",le="+Inf"} 2' "$workdir/metrics.txt" \
  || fail "per-route latency histogram for /v1/batch wrong"

echo "== /metrics: runtime collector =="
goroutines="$(awk '$1 == "fpserved_goroutines" { print $2 }' "$workdir/metrics.txt")"
[ -n "$goroutines" ] && [ "$goroutines" -ge 1 ] || fail "fpserved_goroutines missing or zero"
heap="$(awk '$1 == "fpserved_heap_alloc_bytes" { print $2 }' "$workdir/metrics.txt")"
[ -n "$heap" ] && [ "$heap" -ge 1 ] || fail "fpserved_heap_alloc_bytes missing or zero"
grep -q '^fpserved_gomaxprocs ' "$workdir/metrics.txt" || fail "fpserved_gomaxprocs missing"
grep -q '^fpserved_gc_cycles_total ' "$workdir/metrics.txt" || fail "fpserved_gc_cycles_total missing"
grep -q '^fpserved_uptime_seconds ' "$workdir/metrics.txt" || fail "fpserved_uptime_seconds missing"
grep -q '^fpserved_build_info{go_version="go' "$workdir/metrics.txt" \
  || fail "fpserved_build_info missing go_version label"
grep -q 'instance="' "$workdir/metrics.txt" || fail "fpserved_build_info missing instance label"

echo "== /metrics: batch-parse engine counters =="
bp_values="$(awk '$1 == "floatprint_batch_parse_values_total" { print $2 }' "$workdir/metrics.txt")"
[ -n "$bp_values" ] || fail "floatprint_batch_parse_values_total missing from /metrics"
[ "$bp_values" -ge 10000 ] || fail "floatprint_batch_parse_values_total = $bp_values, want >= 10000"
bp_blocks="$(awk '$1 == "floatprint_batch_parse_blocks_total" { print $2 }' "$workdir/metrics.txt")"
[ -n "$bp_blocks" ] || fail "floatprint_batch_parse_blocks_total missing from /metrics"
[ "$bp_blocks" -ge 1 ] || fail "floatprint_batch_parse_blocks_total = $bp_blocks, want >= 1"
bp_bytes="$(awk '$1 == "floatprint_batch_parse_bytes_total" { print $2 }' "$workdir/metrics.txt")"
[ -n "$bp_bytes" ] || fail "floatprint_batch_parse_bytes_total missing from /metrics"
[ "$bp_bytes" -ge 10000 ] || fail "floatprint_batch_parse_bytes_total = $bp_bytes, want >= 10000"
grep -q '^floatprint_batch_parse_fallbacks_total' "$workdir/metrics.txt" \
  || fail "floatprint_batch_parse_fallbacks_total missing from /metrics"

echo "== /metrics: interval counters =="
iv_prints="$(awk '$1 == "floatprint_interval_prints_total" { print $2 }' "$workdir/metrics.txt")"
[ -n "$iv_prints" ] || fail "floatprint_interval_prints_total missing from /metrics"
# Three formatted intervals: the two print-form requests plus the
# enclosing rendering of the parse-form response.
[ "$iv_prints" -eq 3 ] || fail "floatprint_interval_prints_total = $iv_prints, want 3"
iv_parses="$(awk '$1 == "floatprint_interval_parses_total" { print $2 }' "$workdir/metrics.txt")"
[ -n "$iv_parses" ] || fail "floatprint_interval_parses_total missing from /metrics"
[ "$iv_parses" -eq 1 ] || fail "floatprint_interval_parses_total = $iv_parses, want 1"

echo "== /metrics: parse path counters =="
parse_hits="$(awk '$1 == "floatprint_parse_fast_hits_total" { print $2 }' "$workdir/metrics.txt")"
[ -n "$parse_hits" ] || fail "floatprint_parse_fast_hits_total missing from /metrics"
[ "$parse_hits" -ge 1 ] || fail "floatprint_parse_fast_hits_total = $parse_hits, want >= 1"
parse_exact="$(awk '$1 == "floatprint_parse_exact_total" { print $2 }' "$workdir/metrics.txt")"
[ -n "$parse_exact" ] || fail "floatprint_parse_exact_total missing from /metrics"
# The 1e23 tie and the 1e999 overflow both took the exact reader.
[ "$parse_exact" -ge 2 ] || fail "floatprint_parse_exact_total = $parse_exact, want >= 2"

echo "== /metrics: ryu backend counters =="
ryu_hits="$(awk '$1 == "floatprint_ryu_hits_total" { print $2 }' "$workdir/metrics.txt")"
[ -n "$ryu_hits" ] || fail "floatprint_ryu_hits_total missing from /metrics"
# The default registry routes nearest-even shortest conversions to ryu,
# so nearly all of the 10k batch lands here (less the rare exact-halfway
# declines and specials, well under 1%).
[ "$ryu_hits" -ge 9900 ] || fail "floatprint_ryu_hits_total = $ryu_hits, want >= 9900"
grep -q '^floatprint_ryu_misses_total' "$workdir/metrics.txt" \
  || fail "floatprint_ryu_misses_total missing from /metrics"

echo "== /metrics: conversion-trace telemetry =="
trace_conv="$(awk '$1 == "floatprint_trace_conversions_total" { print $2 }' "$workdir/metrics.txt")"
[ -n "$trace_conv" ] || fail "floatprint_trace_conversions_total missing from /metrics"
[ "$trace_conv" -ge 1 ] || fail "floatprint_trace_conversions_total = $trace_conv, want >= 1"
grep -q '^floatprint_trace_backend_total{backend="grisu3"}' "$workdir/metrics.txt" \
  || fail "labeled backend mix missing grisu3 from /metrics"
# The default-mode shortest conversions above ran on the ryu backend.
grep -q '^floatprint_trace_backend_total{backend="ryu"}' "$workdir/metrics.txt" \
  || fail "labeled backend mix missing ryu from /metrics"
grep -q '^floatprint_digit_length_bucket{le="17"}' "$workdir/metrics.txt" \
  || fail "digit-length histogram missing from /metrics"

echo "== /debug/pprof and /debug/exemplars (enabled by -debug) =="
curl -fsS "$base/debug/pprof/" | grep -q goroutine || fail "/debug/pprof/ index missing profiles"
curl -fsS "$base/debug/exemplars" >"$workdir/exemplars.json"
grep -q '"id"' "$workdir/exemplars.json" || fail "/debug/exemplars has no captured requests"
grep -q '"path":"/v1/batch"' "$workdir/exemplars.json" \
  || fail "/debug/exemplars missing the batch request exemplar"
grep -q "\"id\":\"$req_id\"" "$workdir/exemplars.json" \
  || fail "/debug/exemplars missing exemplar for request $req_id"
grep -q "\"trace_id\":\"$upstream_trace\"" "$workdir/exemplars.json" \
  || fail "/debug/exemplars missing trace_id link for the traced request"

echo "== graceful shutdown =="
kill -TERM "$pid"
deadline=$((SECONDS + 15))
while kill -0 "$pid" 2>/dev/null; do
  [ "$SECONDS" -lt "$deadline" ] || fail "fpserved still running 15s after SIGTERM"
  sleep 0.1
done
rc=0
wait "$pid" || rc=$?
pid=""
[ "$rc" -eq 0 ] || { cat "$workdir/serve.log" >&2; fail "fpserved exited $rc, want 0"; }
grep -q "drained cleanly" "$workdir/serve.log" || fail "missing 'drained cleanly' in server log"

echo "serve_e2e: PASS"
