package floatprint

import (
	"errors"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestShortestKnownStrings(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0.3, "0.3"},
		{1e23, "1e23"},
		{math.Pi, "3.141592653589793"},
		{1.0, "1"},
		{-1.5, "-1.5"},
		{100.0, "100"},
		{0.1, "0.1"},
		{5e-324, "5e-324"},
		{math.MaxFloat64, "1.7976931348623157e308"},
		{0, "0"},
		{math.Copysign(0, -1), "-0"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{math.NaN(), "NaN"},
		{1e21, "1e21"}, // K=22: first scientific K
		{1e20, "100000000000000000000"},
		{0.001, "0.001"},
		{0.0001, "0.0001"}, // K=-3: last positional scale, like %g
		{0.00001, "1e-5"},
		{1234.5678, "1234.5678"},
	}
	for _, c := range cases {
		if got := Shortest(c.v); got != c.want {
			t.Errorf("Shortest(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestShortestMatchesStrconvSemantics(t *testing.T) {
	// Same digits and exponent as strconv's shortest form (rendering
	// differs cosmetically), verified by parsing back and by digit count.
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		v := math.Float64frombits(r.Uint64())
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		s := Shortest(v)
		back, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("strconv cannot parse Shortest(%g) = %q: %v", v, s, err)
		}
		if math.Float64bits(back) != math.Float64bits(v) {
			t.Fatalf("Shortest(%g) = %q parses to %g", v, s, back)
		}
		want := strconv.FormatFloat(v, 'g', -1, 64)
		if countDigits(s) > countDigits(want) {
			t.Fatalf("Shortest(%g) = %q has more digits than strconv's %q", v, s, want)
		}
	}
}

// countDigits counts significant mantissa digits, so positional and
// scientific renderings of the same value compare equal.
func countDigits(s string) int {
	if i := strings.IndexAny(s, "eE"); i >= 0 {
		s = s[:i]
	}
	var digits []byte
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			digits = append(digits, s[i])
		}
	}
	t := strings.Trim(string(digits), "0")
	if t == "" {
		return 1
	}
	return len(t)
}

func TestShortest32(t *testing.T) {
	cases := []struct {
		v    float32
		want string
	}{
		{0.1, "0.1"},
		{1.0 / 3.0, "0.33333334"},
		{16777216, "16777216"}, // 2^24
	}
	for _, c := range cases {
		if got := Shortest32(c.v); got != c.want {
			t.Errorf("Shortest32(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		v := math.Float32frombits(r.Uint32())
		if v != v || math.IsInf(float64(v), 0) {
			continue
		}
		s := Shortest32(v)
		back, err := strconv.ParseFloat(s, 32)
		if err != nil || float32(back) != v {
			t.Fatalf("Shortest32(%g) = %q round-trip failed (%v)", v, s, err)
		}
	}
}

func TestAppendShortest(t *testing.T) {
	buf := AppendShortest([]byte("x="), 2.5)
	if string(buf) != "x=2.5" {
		t.Errorf("AppendShortest = %q", buf)
	}
}

func TestFixedStrings(t *testing.T) {
	cases := []struct {
		v    float64
		n    int
		want string
	}{
		{math.Pi, 4, "3.142"},
		{9.97, 2, "10"},
		{100, 5, "100.00"},
		{0.00125, 2, "0.0013"},
		{1.0 / 3.0, 5, "0.33333"},
		{0, 4, "0.000"},
	}
	for _, c := range cases {
		if got := Fixed(c.v, c.n); got != c.want {
			t.Errorf("Fixed(%v, %d) = %q, want %q", c.v, c.n, got, c.want)
		}
	}
}

func TestFixedPositionStrings(t *testing.T) {
	cases := []struct {
		v    float64
		pos  int
		want string
	}{
		{math.Pi, -2, "3.14"},
		{1234.5678, -2, "1234.57"},
		{1234.5678, 0, "1235"},
		{1234.5678, 2, "1200"},
		{949, 3, "1000"},
		{5, 2, "0"},
		{80, 2, "100"},
		{0, -3, "0.000"},
	}
	for _, c := range cases {
		if got := FixedPosition(c.v, c.pos); got != c.want {
			t.Errorf("FixedPosition(%v, %d) = %q, want %q", c.v, c.pos, got, c.want)
		}
	}
}

func TestFixedMarksExamples(t *testing.T) {
	// The paper's examples: insignificant digits render as '#'.
	got := FixedPosition(100.0, -20)
	want := "100." + strings.Repeat("0", 15) + strings.Repeat("#", 5)
	if got != want {
		t.Errorf("FixedPosition(100, -20) = %q, want %q", got, want)
	}
	d, err := FixedDigits32(float32(1.0)/3, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := d.String(); s != "0.33333334##" {
		t.Errorf("float32 third at 10 digits = %q", s)
	}
	// NoMarks renders zeros instead.
	s, err := FormatFixedPosition(100.0, -20, &Options{NoMarks: true})
	if err != nil {
		t.Fatal(err)
	}
	if s != "100."+strings.Repeat("0", 20) {
		t.Errorf("NoMarks rendering = %q", s)
	}
}

func TestFormatBases(t *testing.T) {
	cases := []struct {
		v    float64
		base int
		want string
	}{
		{255, 16, "ff"},
		{0.5, 2, "0.1"},
		{10, 16, "a"},
		{1295, 36, "zz"},
		{0.625, 2, "0.101"},
	}
	for _, c := range cases {
		got, err := Format(c.v, &Options{Base: c.base})
		if err != nil {
			t.Fatalf("Format(%v, base %d): %v", c.v, c.base, err)
		}
		if got != c.want {
			t.Errorf("Format(%v, base %d) = %q, want %q", c.v, c.base, got, c.want)
		}
	}
	// Scientific in bases over 10 uses '@' (since 'e' is a digit).
	got, err := Format(math.Ldexp(1, 100), &Options{Base: 16, Notation: NotationScientific})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "@") {
		t.Errorf("base-16 scientific %q should use '@'", got)
	}
}

func TestFormatErrors(t *testing.T) {
	if _, err := Format(1.5, &Options{Base: 1}); err == nil {
		t.Errorf("base 1 accepted")
	}
	if _, err := Format(1.5, &Options{Base: 37}); err == nil {
		t.Errorf("base 37 accepted")
	}
	if _, err := FormatFixed(1.5, 0, nil); err == nil {
		t.Errorf("0 digits accepted")
	}
	if _, err := Parse("1", &Options{Base: 99}); err == nil {
		t.Errorf("Parse base 99 accepted")
	}
}

func TestParseBasics(t *testing.T) {
	cases := []struct {
		s    string
		want float64
	}{
		{"0.3", 0.3},
		{"1e23", 1e23},
		{"-2.5", -2.5},
		{"100.000000000000000#####", 100},
		{"3.141592653589793", math.Pi},
		{"0", 0},
	}
	for _, c := range cases {
		got, err := Parse(c.s, nil)
		if err != nil || got != c.want {
			t.Errorf("Parse(%q) = %v, %v; want %v", c.s, got, err, c.want)
		}
	}
	for _, s := range []string{"NaN", "nan", "-NAN"} {
		if got, err := Parse(s, nil); err != nil || !math.IsNaN(got) {
			t.Errorf("Parse(%q) = %v, %v", s, got, err)
		}
	}
	for _, c := range []struct {
		s    string
		sign int
	}{{"Inf", 1}, {"+Infinity", 1}, {"-inf", -1}} {
		if got, err := Parse(c.s, nil); err != nil || !math.IsInf(got, c.sign) {
			t.Errorf("Parse(%q) = %v, %v", c.s, got, err)
		}
	}
	if got, err := Parse("1e999", nil); !errors.Is(err, ErrRange) || !math.IsInf(got, 1) {
		t.Errorf("Parse(1e999) = %v, %v", got, err)
	}
	if _, err := Parse("bogus", nil); err == nil {
		t.Errorf("Parse(bogus) accepted")
	}
}

func TestParse32(t *testing.T) {
	got, err := Parse32("0.1", nil)
	if err != nil || got != float32(0.1) {
		t.Errorf("Parse32(0.1) = %v, %v", got, err)
	}
	if got, err := Parse32("1e39", nil); !errors.Is(err, ErrRange) || !math.IsInf(float64(got), 1) {
		t.Errorf("Parse32(1e39) = %v, %v", got, err)
	}
	// Single rounding: this decimal rounds differently via float64.
	// 7.038531e-26 is the classic double-rounding witness for float32.
	s := "7.038531e-26"
	want, _ := strconv.ParseFloat(s, 32)
	if got, err := Parse32(s, nil); err != nil || got != float32(want) {
		t.Errorf("Parse32(%q) = %v, want %v", s, got, float32(want))
	}
}

func TestRoundTripPropertyAllBasesAndModes(t *testing.T) {
	modes := []ReaderRounding{ReaderNearestEven, ReaderUnknown, ReaderNearestAway, ReaderNearestTowardZero}
	bases := []int{2, 7, 10, 16, 36}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		v := math.Float64frombits(r.Uint64())
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		for _, base := range bases {
			for _, mode := range modes {
				o := &Options{Base: base, Reader: mode}
				s, err := Format(v, o)
				if err != nil {
					t.Fatal(err)
				}
				back, err := Parse(s, o)
				if err != nil {
					t.Fatalf("Parse(Format(%g, base %d, %v) = %q): %v", v, base, mode, s, err)
				}
				if math.Float64bits(back) != math.Float64bits(v) {
					t.Fatalf("round trip %g -> %q -> %g (base %d, %v)", v, s, back, base, mode)
				}
			}
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(bits uint64) bool {
		v := math.Float64frombits(bits)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		back, err := Parse(Shortest(v), nil)
		return err == nil && math.Float64bits(back) == math.Float64bits(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestQuickFixedReadsBackWithinHalfULP(t *testing.T) {
	// Fixed output (significant portion) is within half a unit of its last
	// significant digit OR within the value's own rounding range; reading
	// it back with marks as zeros must recover v whenever enough digits
	// are significant to pin the value (17 always suffices for float64).
	f := func(bits uint64) bool {
		v := math.Float64frombits(bits)
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			return true
		}
		s := Fixed(v, 17)
		back, err := Parse(s, nil)
		return err == nil && math.Float64bits(back) == math.Float64bits(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDigitsValue(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		v := math.Float64frombits(r.Uint64())
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		d, err := ShortestDigits(v, nil)
		if err != nil {
			t.Fatal(err)
		}
		back, err := d.Value()
		if err != nil || math.Float64bits(back) != math.Float64bits(v) {
			t.Fatalf("Digits.Value() round trip failed for %g: %v %v", v, back, err)
		}
	}
	// Specials.
	for _, v := range []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1)} {
		d, err := ShortestDigits(v, nil)
		if err != nil {
			t.Fatal(err)
		}
		back, err := d.Value()
		if err != nil || math.Float64bits(back) != math.Float64bits(v) {
			t.Fatalf("special Value() failed for %v", v)
		}
	}
	dn, _ := ShortestDigits(math.NaN(), nil)
	if back, _ := dn.Value(); !math.IsNaN(back) {
		t.Errorf("NaN Value() = %v", back)
	}
}

func TestNotationForcing(t *testing.T) {
	s, err := Format(1234.5, &Options{Notation: NotationScientific})
	if err != nil || s != "1.2345e3" {
		t.Errorf("forced scientific = %q (%v)", s, err)
	}
	s, err = Format(1e25, &Options{Notation: NotationPositional})
	if err != nil || s != "10000000000000000000000000" {
		t.Errorf("forced positional = %q (%v)", s, err)
	}
	s, err = Format(5e-324, &Options{Notation: NotationScientific})
	if err != nil || s != "5e-324" {
		t.Errorf("denormal scientific = %q (%v)", s, err)
	}
}

func TestReaderModeChangesOutput(t *testing.T) {
	even, err := Format(1e23, &Options{Reader: ReaderNearestEven})
	if err != nil || even != "1e23" {
		t.Fatalf("nearest-even 1e23 = %q (%v)", even, err)
	}
	unknown, err := Format(1e23, &Options{Reader: ReaderUnknown})
	if err != nil {
		t.Fatal(err)
	}
	if unknown == even {
		t.Errorf("unknown-reader output should be longer than %q", even)
	}
	if got, _ := Parse(unknown, nil); got != 1e23 {
		t.Errorf("unknown-reader output %q does not round-trip", unknown)
	}
}

func TestScalingOptionsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 400; i++ {
		v := math.Float64frombits(r.Uint64())
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		a, err := Format(v, &Options{Scaling: ScalingEstimate})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Format(v, &Options{Scaling: ScalingIterative})
		if err != nil {
			t.Fatal(err)
		}
		c, err := Format(v, &Options{Scaling: ScalingFloatLog})
		if err != nil {
			t.Fatal(err)
		}
		if a != b || b != c {
			t.Fatalf("scaling strategies disagree for %g: %q %q %q", v, a, b, c)
		}
	}
}

func TestReaderRoundingString(t *testing.T) {
	if ReaderNearestEven.String() != "nearest-even" || ReaderUnknown.String() != "unknown" {
		t.Errorf("ReaderRounding strings wrong")
	}
}
