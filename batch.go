package floatprint

import (
	"io"

	"floatprint/internal/stats"
)

// meanShortestBytes is the capacity estimate per value for batch output
// buffers: the longest shortest-form rendering of a float64
// ("-1.2345678901234567e-308") is 24 bytes, and typical corpus values
// average well under that, so one up-front allocation usually suffices.
const meanShortestBytes = 24

// BatchShardStats is one shard's contribution to a batch conversion.
type BatchShardStats struct {
	Values int // values this shard converted
	Bytes  int // output bytes this shard produced
}

// BatchResult is a packed batch conversion: every value's shortest
// rendering concatenated into one buffer, delimited by offsets.  Value i
// occupies Buf[Offsets[i]:Offsets[i+1]]; the bytes are exactly what
// AppendShortest would have produced for that value, so the packed form
// is byte-identical to per-value conversion.
//
// A BatchResult is immutable once returned and safe to share between
// goroutines.
type BatchResult struct {
	Buf     []byte
	Offsets []int // len(values)+1 entries; Offsets[0] == 0
	Shards  []BatchShardStats
}

// Len returns the number of values in the result.
func (r *BatchResult) Len() int { return len(r.Offsets) - 1 }

// Value returns the rendering of value i as a subslice of Buf (do not
// modify it).
func (r *BatchResult) Value(i int) []byte {
	return r.Buf[r.Offsets[i]:r.Offsets[i+1]]
}

// WriteTo writes the packed buffer to w, implementing io.WriterTo.
func (r *BatchResult) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(r.Buf)
	return int64(n), err
}

// BatchShortest converts values to their shortest renderings in one
// pass, reusing a single output buffer so the per-call overhead of the
// conversion amortizes across the whole batch: on the certified Grisu3
// path the entire batch costs two allocations (buffer and offsets)
// regardless of length.  It is the single-shard engine; the
// floatprint/batch package runs the same conversion sharded across a
// worker pool with cancellation.
func BatchShortest(values []float64) *BatchResult {
	buf := make([]byte, 0, len(values)*meanShortestBytes)
	offsets := make([]int, len(values)+1)
	for i, v := range values {
		buf = AppendShortest(buf, v)
		offsets[i+1] = len(buf)
	}
	stats.BatchValues.Add(uint64(len(values)))
	stats.BatchBytes.Add(uint64(len(buf)))
	return &BatchResult{
		Buf:     buf,
		Offsets: offsets,
		Shards:  []BatchShardStats{{Values: len(values), Bytes: len(buf)}},
	}
}
