package serve

// limiter is the admission controller: a counting semaphore sized to
// the in-flight cap, probed without blocking.  Load is shed at the
// door, never queued — a queued conversion request is memory (its body
// buffers, its connection) held hostage to work the server has already
// promised to others, and under sustained overload a queue converts a
// latency problem into an OOM.  Shedding keeps the server's memory
// proportional to the cap, and the 429 tells a well-behaved client
// exactly when to come back.
type limiter struct {
	sem chan struct{}
}

func newLimiter(n int) *limiter {
	return &limiter{sem: make(chan struct{}, n)}
}

// tryAcquire claims a slot if one is free, without waiting.
func (l *limiter) tryAcquire() bool {
	select {
	case l.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// release returns a slot claimed by tryAcquire.
func (l *limiter) release() { <-l.sem }

// inFlight reports currently held slots.
func (l *limiter) inFlight() int { return len(l.sem) }

// limit reports the cap.
func (l *limiter) limit() int { return cap(l.sem) }
