package serve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// statusWriter records the status code and byte count a handler
// produced, for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming batch responses
// keep flushing through the middleware wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.NewResponseController reach the real writer through
// the metrics wrapper (the timed middleware sets per-request read
// deadlines on it).
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// recovered converts handler panics into 500s and counts them.  The
// net/http abort sentinel is re-raised: it is how a streaming handler
// deliberately breaks a connection mid-response (e.g. a batch input
// error after bytes have been written), and swallowing it would turn a
// visibly broken stream into a silently truncated "success".
func (s *Server) recovered(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			s.metrics.panics.Inc()
			s.log.Printf("serve: panic in %s %s: %v", r.Method, r.URL.Path, p)
			// Best effort: if the handler already wrote, this is a no-op
			// on the wire, but the connection still dies with the panic.
			http.Error(w, "internal server error", http.StatusInternalServerError)
		}()
		h.ServeHTTP(w, r)
	})
}

// instrumented counts every arrival and times every response,
// sheds included: the latency histogram under overload shows the cheap
// 429s next to the admitted work, which is exactly the shape an
// operator needs to see.  It also assigns the request id (header,
// context, and access log) and captures slow requests into the
// exemplar ring.
func (s *Server) instrumented(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.requests.Inc()
		id := s.reqIDs.next()
		w.Header().Set("X-Request-Id", id)
		r = r.WithContext(withRequestID(r.Context(), id))
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r)
		dur := time.Since(start)
		s.metrics.latency.Observe(dur.Seconds())
		s.metrics.bytesOut.Add(uint64(sw.bytes))
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		switch {
		case status >= 500:
			s.metrics.code5xx.Inc()
		case status >= 400:
			s.metrics.code4xx.Inc()
		default:
			s.metrics.code2xx.Inc()
		}
		if s.slog != nil {
			level := slog.LevelInfo
			if status >= 500 {
				level = slog.LevelWarn
			}
			s.slog.LogAttrs(r.Context(), level, "request",
				slog.String("request_id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("duration", dur),
			)
		}
		if dur >= s.cfg.SlowRequest {
			s.exemplars.add(exemplar{
				ID: id, Method: r.Method, Path: r.URL.Path,
				Status: status, Bytes: sw.bytes,
				DurationMS: float64(dur) / 1e6, Time: start.UTC(),
			})
		}
	})
}

// admitted enforces the in-flight cap: claim a slot or shed with 429
// and a Retry-After hint.
func (s *Server) admitted(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.limiter.tryAcquire() {
			s.metrics.sheds.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
			http.Error(w, fmt.Sprintf("in-flight cap %d reached, retry later", s.limiter.limit()),
				http.StatusTooManyRequests)
			return
		}
		defer s.limiter.release()
		h.ServeHTTP(w, r)
	})
}

// timed bounds the request with the configured timeout.  The deadline
// reaches the handler two ways: as context cancellation (the batch
// engine checks it every chunk while converting) and as a connection
// read deadline (a client that stalls mid-body fails its next Read
// instead of pinning an admission slot forever).
func (s *Server) timed(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		// Best effort: httptest's plain ResponseRecorder has no
		// deadline support, and the ctx deadline still applies there.
		rc := http.NewResponseController(w)
		_ = rc.SetReadDeadline(time.Now().Add(s.cfg.RequestTimeout))
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}
