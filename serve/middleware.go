package serve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"floatprint/internal/span"
)

// statusWriter records the status code and byte count a handler
// produced, for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming batch responses
// keep flushing through the middleware wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.NewResponseController reach the real writer through
// the metrics wrapper (the timed middleware sets per-request read
// deadlines on it).
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// recovered converts handler panics into 500s and counts them.  The
// net/http abort sentinel is re-raised: it is how a streaming handler
// deliberately breaks a connection mid-response (e.g. a batch input
// error after bytes have been written), and swallowing it would turn a
// visibly broken stream into a silently truncated "success".
func (s *Server) recovered(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			s.metrics.panics.Inc()
			s.log.Printf("serve: panic in %s %s: %v", r.Method, r.URL.Path, p)
			// Best effort: if the handler already wrote, this is a no-op
			// on the wire, but the connection still dies with the panic.
			http.Error(w, "internal server error", http.StatusInternalServerError)
		}()
		h.ServeHTTP(w, r)
	})
}

// instrumented is the observability middleware of one route: it counts
// every arrival and times every response, sheds included — the latency
// histogram under overload shows the cheap 429s next to the admitted
// work, which is exactly the shape an operator needs to see.  It
// assigns the request id and, when tracing is on, opens the request's
// root span (adopting an upstream W3C traceparent identity when the
// client sent one) and carries it down via the request context.
//
// Identity is echoed before the handler runs: X-Request-Id and
// X-Trace-Id are response headers on every outcome — 429 sheds, 400s,
// and panic 500s included — because the error responses are the ones a
// client most needs to correlate with server-side telemetry.
//
// All post-request accounting runs in a deferred block that also
// observes panics: a panicking handler still lands in the per-route
// metrics, access log, exemplar ring, and trace ring as a 500 before
// the panic is re-raised for the outer recovered middleware to turn
// into the wire response.  (The net/http abort sentinel keeps the
// status the handler already committed: an aborted stream is a
// deliberate mid-response failure, not a 500.)
func (s *Server) instrumented(route string, h http.Handler) http.Handler {
	rm := s.metrics.route(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rm.requests.Inc()
		id := s.reqIDs.next()
		w.Header().Set("X-Request-Id", id)
		ctx := withRequestID(r.Context(), id)

		var sp *span.Span
		if s.tracer != nil {
			sp, ctx = s.tracer.StartRequest(ctx, route, r.Header.Get("traceparent"))
			w.Header().Set("X-Trace-Id", sp.TraceID())
			sp.SetAttr("request_id", id)
			sp.SetAttr("method", r.Method)
		}
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			p := recover()
			dur := time.Since(start)
			status := sw.status
			if p != nil && p != http.ErrAbortHandler {
				status = http.StatusInternalServerError
			}
			if status == 0 {
				status = http.StatusOK
			}
			s.metrics.observe(rm, status, dur.Seconds(), sw.bytes)

			traceID := sp.TraceID()
			sp.SetAttrInt("status", int64(status))
			sp.SetAttrInt("bytes", sw.bytes)
			sp.EndRequest(status)

			if s.slog != nil {
				level := slog.LevelInfo
				if status >= 500 {
					level = slog.LevelWarn
				}
				attrs := []slog.Attr{
					slog.String("request_id", id),
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.Int("status", status),
					slog.Int64("bytes", sw.bytes),
					slog.Duration("duration", dur),
				}
				if traceID != "" {
					attrs = append(attrs, slog.String("trace_id", traceID))
				}
				s.slog.LogAttrs(r.Context(), level, "request", attrs...)
			}
			if dur >= s.cfg.SlowRequest || status >= 500 {
				s.exemplars.add(exemplar{
					ID: id, TraceID: traceID, Method: r.Method, Path: r.URL.Path,
					Status: status, Bytes: sw.bytes,
					DurationMS: float64(dur) / 1e6, Time: start.UTC(),
				})
			}
			if p != nil {
				panic(p)
			}
		}()
		h.ServeHTTP(sw, r)
	})
}

// admitted enforces the in-flight cap: claim a slot or shed with 429
// and a Retry-After hint.
func (s *Server) admitted(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.limiter.tryAcquire() {
			s.metrics.sheds.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
			http.Error(w, fmt.Sprintf("in-flight cap %d reached, retry later", s.limiter.limit()),
				http.StatusTooManyRequests)
			return
		}
		defer s.limiter.release()
		h.ServeHTTP(w, r)
	})
}

// timed bounds the request with the configured timeout.  The deadline
// reaches the handler two ways: as context cancellation (the batch
// engine checks it every chunk while converting) and as a connection
// read deadline (a client that stalls mid-body fails its next Read
// instead of pinning an admission slot forever).
func (s *Server) timed(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		// Best effort: httptest's plain ResponseRecorder has no
		// deadline support, and the ctx deadline still applies there.
		rc := http.NewResponseController(w)
		_ = rc.SetReadDeadline(time.Now().Add(s.cfg.RequestTimeout))
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}
