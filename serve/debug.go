package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// ctxKey keys the serve package's context values.
type ctxKey int

const requestIDKey ctxKey = iota

// requestIDs mints process-unique request ids: a random 4-byte hex
// prefix (so ids from different server instances or restarts never
// collide in aggregated logs) plus an atomic per-process counter.
type requestIDs struct {
	prefix string
	n      atomic.Uint64
}

func newRequestIDs() *requestIDs {
	var b [4]byte
	rand.Read(b[:]) // per crypto/rand docs, never fails
	return &requestIDs{prefix: hex.EncodeToString(b[:])}
}

func (g *requestIDs) next() string {
	return fmt.Sprintf("%s-%08x", g.prefix, g.n.Add(1))
}

// withRequestID stores the id on the context for handlers and the batch
// abort path.
func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the request id assigned by the instrumented
// middleware, or "" outside a conversion request.  Handlers and
// downstream code use it to tie their own log lines to the access log.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// exemplar is one captured slow or failed (5xx) request, shaped for
// JSON at /debug/exemplars.  It deliberately carries only what an
// operator needs to go find the full story elsewhere (the request id
// links it to the structured log, the trace id — when tracing is on —
// to /debug/traces; the path, status, and duration say why it was
// captured).
type exemplar struct {
	ID         string    `json:"id"`
	TraceID    string    `json:"trace_id,omitempty"`
	Method     string    `json:"method"`
	Path       string    `json:"path"`
	Status     int       `json:"status"`
	Bytes      int64     `json:"bytes"`
	DurationMS float64   `json:"duration_ms"`
	Time       time.Time `json:"time"`
}

// exemplarCap bounds the ring: memory stays fixed no matter how long the
// process runs or how slow its traffic gets.
const exemplarCap = 64

// exemplarRing is a bounded mutex-protected ring of the most recent slow
// requests.  A mutex (not a lock-free structure) is the right tool: the
// ring is written at most once per slow request — by definition a rare
// event — and read only by the debug endpoint.
type exemplarRing struct {
	mu    sync.Mutex
	buf   [exemplarCap]exemplar
	n     int    // filled entries, <= exemplarCap
	next  int    // ring cursor
	total uint64 // all-time captures, including overwritten ones
}

func (r *exemplarRing) add(e exemplar) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = e
	r.next = (r.next + 1) % exemplarCap
	if r.n < exemplarCap {
		r.n++
	}
	r.total++
}

// snapshot returns the captured exemplars newest-first, plus the
// all-time capture count.
func (r *exemplarRing) snapshot() ([]exemplar, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]exemplar, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+exemplarCap)%exemplarCap])
	}
	return out, r.total
}

// handleExemplars serves GET /debug/exemplars: the slow-request ring as
// JSON, newest first.  Mounted only when Config.Debug is set.
func (s *Server) handleExemplars(w http.ResponseWriter, _ *http.Request) {
	exemplars, total := s.exemplars.snapshot()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		ThresholdMS float64    `json:"threshold_ms"`
		Total       uint64     `json:"total"`
		Exemplars   []exemplar `json:"exemplars"`
	}{float64(s.cfg.SlowRequest) / 1e6, total, exemplars})
}

// mountDebug registers the opt-in debug surface: net/http/pprof's
// profiling handlers and the slow-request exemplar ring.  These bypass
// the limiter like the other ops endpoints — a pprof profile is most
// valuable exactly when the service is saturated — but are only mounted
// when Config.Debug is set, so a production deployment does not expose
// profiling to anyone who can reach the port unless asked to.
func (s *Server) mountDebug(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/exemplars", s.handleExemplars)
}
