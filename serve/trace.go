package serve

import (
	"encoding/json"
	"net/http"
	"strconv"

	"floatprint"
	"floatprint/internal/span"
)

// newTracer builds the request tracer from cfg, or nil when tracing is
// off (TraceSample <= 0).  A nil tracer short-circuits every
// instrumentation point to one pointer test — the tracing-disabled
// overhead budget in CI leans on this.
func newTracer(cfg Config) *span.Tracer {
	if cfg.TraceSample <= 0 {
		return nil
	}
	return span.New(span.Config{
		SampleEvery: cfg.TraceSample,
		SlowRequest: cfg.SlowRequest,
		RingCap:     cfg.TraceRing,
		Seed:        cfg.TraceSeed,
	})
}

// attachConversion copies the interesting parts of a per-conversion
// algorithm record onto the conversion span: the backend that produced
// the digits and the digit count as first-class attributes (the two
// facts trace queries filter on), and the full record as one compact
// algorithm= line.  This is the join point between the two telemetry
// layers — the request trace says where the time went, the algorithm
// record says which paper path ran and why.
func attachConversion(sp *span.Span, rec *floatprint.Trace) {
	if sp == nil || rec == nil {
		return
	}
	sp.SetAttr("backend", rec.Backend.String())
	sp.SetAttrInt("digits", int64(rec.Digits))
	sp.SetAttr("algorithm", rec.Summary())
}

// handleTraces serves GET /debug/traces: the completed-trace ring as
// JSON, newest first, filterable by route (?route=/v1/shortest) and
// minimum root duration (?min_ms=5).  Mounted only when tracing is on;
// like the other ops endpoints it bypasses the limiter, because traces
// of an overloaded service are exactly what the ring is for.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	route := q.Get("route")
	var minMS float64
	if ms := q.Get("min_ms"); ms != "" {
		v, err := strconv.ParseFloat(ms, 64)
		if err != nil {
			http.Error(w, "bad min_ms "+strconv.Quote(ms), http.StatusBadRequest)
			return
		}
		minMS = v
	}
	all, total := s.tracer.Ring().Snapshot()
	traces := make([]*span.Trace, 0, len(all))
	for _, t := range all {
		if route != "" && t.Route != route {
			continue
		}
		if t.DurationMS < minMS {
			continue
		}
		traces = append(traces, t)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		SampleEvery int           `json:"sample_every"`
		Total       uint64        `json:"total"`
		Traces      []*span.Trace `json:"traces"`
	}{s.tracer.SampleEvery(), total, traces})
}
