package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"regexp"
	"sync"
	"testing"
	"time"
)

// syncBuffer serializes writes so the slog handler can be driven from
// the server's concurrent request goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestIDAndAccessLog: every conversion request gets a
// process-unique X-Request-Id, and the structured access log carries the
// same id with method, path, and status.
func TestRequestIDAndAccessLog(t *testing.T) {
	var logBuf syncBuffer
	_, ts := newTestServer(t, Config{
		Slog: slog.New(slog.NewTextHandler(&logBuf, nil)),
	})

	idPattern := regexp.MustCompile(`^[0-9a-f]{8}-[0-9a-f]{8}$`)
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/shortest?v=0.3")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Request-Id")
		if !idPattern.MatchString(id) {
			t.Fatalf("X-Request-Id = %q, want hex prefix-counter shape", id)
		}
		if seen[id] {
			t.Fatalf("duplicate request id %q", id)
		}
		seen[id] = true

		log := logBuf.String()
		for _, want := range []string{
			"request_id=" + id, "method=GET", "path=/v1/shortest", "status=200",
		} {
			if !bytes.Contains([]byte(log), []byte(want)) {
				t.Errorf("access log missing %q:\n%s", want, log)
			}
		}
	}
}

// TestAccessLogWarnsOn5xx: a 5xx response surfaces as a Warn-level
// access record, so failures stand out of an Info-level stream.
func TestAccessLogWarnsOn5xx(t *testing.T) {
	var logBuf syncBuffer
	s, _ := newTestServer(t, Config{
		Slog: slog.New(slog.NewTextHandler(&logBuf, nil)),
	})
	h := s.instrumented("/v1/shortest", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "deliberate failure", http.StatusInternalServerError)
	}))
	req, _ := http.NewRequest(http.MethodGet, "/v1/shortest?v=1", nil)
	rec := newRecorder()
	h.ServeHTTP(rec, req)
	if rec.status != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.status)
	}
	log := logBuf.String()
	if !bytes.Contains([]byte(log), []byte("level=WARN")) ||
		!bytes.Contains([]byte(log), []byte("status=500")) {
		t.Errorf("5xx access log not WARN/500:\n%s", log)
	}
}

// newRecorder is a minimal ResponseWriter for driving middleware without
// a network hop.
type recorder struct {
	header http.Header
	status int
	bytes  int
}

func newRecorder() *recorder { return &recorder{header: http.Header{}} }

func (r *recorder) Header() http.Header { return r.header }
func (r *recorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
}
func (r *recorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	r.bytes += len(p)
	return len(p), nil
}

// TestDebugEndpointsGated: the profiling surface must not exist unless
// asked for.
func TestDebugEndpointsGated(t *testing.T) {
	_, off := newTestServer(t, Config{})
	for _, path := range []string{"/debug/pprof/", "/debug/exemplars"} {
		if code, _ := get(t, off.URL+path); code != http.StatusNotFound {
			t.Errorf("without Debug, GET %s = %d, want 404", path, code)
		}
	}

	_, on := newTestServer(t, Config{Debug: true})
	if code, body := get(t, on.URL+"/debug/pprof/"); code != http.StatusOK ||
		!bytes.Contains([]byte(body), []byte("goroutine")) {
		t.Errorf("with Debug, GET /debug/pprof/ = %d, want 200 with profile index", code)
	}
	if code, _ := get(t, on.URL+"/debug/exemplars"); code != http.StatusOK {
		t.Errorf("with Debug, GET /debug/exemplars = %d, want 200", code)
	}
}

// TestExemplarCapture: with the slow threshold at its floor, every
// request is an exemplar; the ring returns them newest-first with ids
// matching the response headers.
func TestExemplarCapture(t *testing.T) {
	_, ts := newTestServer(t, Config{Debug: true, SlowRequest: time.Nanosecond})

	var ids []string
	for i := 0; i < 3; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/shortest?v=%d.5", ts.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ids = append(ids, resp.Header.Get("X-Request-Id"))
	}

	_, body := get(t, ts.URL+"/debug/exemplars")
	var got struct {
		ThresholdMS float64    `json:"threshold_ms"`
		Total       uint64     `json:"total"`
		Exemplars   []exemplar `json:"exemplars"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("exemplars JSON: %v\n%s", err, body)
	}
	if got.Total != 3 || len(got.Exemplars) != 3 {
		t.Fatalf("total=%d len=%d, want 3 and 3:\n%s", got.Total, len(got.Exemplars), body)
	}
	for i, e := range got.Exemplars { // newest first
		want := ids[len(ids)-1-i]
		if e.ID != want {
			t.Errorf("exemplar[%d].ID = %q, want %q", i, e.ID, want)
		}
		if e.Path != "/v1/shortest" || e.Status != http.StatusOK || e.DurationMS <= 0 {
			t.Errorf("exemplar[%d] = %+v, want /v1/shortest 200 with positive duration", i, e)
		}
	}
}

// TestExemplarRingBounded: the ring never grows past its capacity and
// keeps the newest entries; concurrent writers and readers are safe
// (this is the -race twin for the exemplar ring).
func TestExemplarRingBounded(t *testing.T) {
	var ring exemplarRing
	const writers, perWriter = 8, 3 * exemplarCap
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				ring.add(exemplar{ID: fmt.Sprintf("w%d-%d", w, i), Status: 200})
				if i%16 == 0 {
					ring.snapshot() // concurrent reads while writing
				}
			}
		}(w)
	}
	wg.Wait()

	exemplars, total := ring.snapshot()
	if total != writers*perWriter {
		t.Errorf("total = %d, want %d", total, writers*perWriter)
	}
	if len(exemplars) != exemplarCap {
		t.Errorf("len = %d, want ring capacity %d", len(exemplars), exemplarCap)
	}
	seen := map[string]bool{}
	for _, e := range exemplars {
		if e.ID == "" || seen[e.ID] {
			t.Fatalf("ring holds empty or duplicate entry %q", e.ID)
		}
		seen[e.ID] = true
	}
}
