package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"floatprint"
	"floatprint/internal/schryer"
	"floatprint/interval"
)

// newTestServer boots a Server over a real listener (httptest) so
// streaming, deadlines, and connection aborts behave as in production.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestShortestEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		query, want string
	}{
		{"v=0.3", "0.3\n"},
		{"v=1e23", "1e23\n"},
		{"v=-0.25", "-0.25\n"},
		{"v=NaN", "NaN\n"},
		{"v=255.5&base=16", "ff.8\n"},
		{"v=1e23&mode=unknown", "9.999999999999999e22\n"},
		{"v=1234.5&notation=sci", "1.2345e3\n"},
		{"v=0.1&bits=32", "0.1\n"},
	} {
		code, body := get(t, ts.URL+"/v1/shortest?"+tc.query)
		if code != http.StatusOK || body != tc.want {
			t.Errorf("shortest?%s = %d %q, want 200 %q", tc.query, code, body, tc.want)
		}
	}
	for _, q := range []string{"", "v=abc", "v=1&base=99", "v=1&mode=bogus", "v=1&notation=x", "v=1&nomarks=maybe"} {
		if code, _ := get(t, ts.URL+"/v1/shortest?"+q); code != http.StatusBadRequest {
			t.Errorf("shortest?%s = %d, want 400", q, code)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/shortest", "text/plain", strings.NewReader("1"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST shortest = %d, want 405", resp.StatusCode)
	}
}

func TestParseEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		query, want string
	}{
		{"s=0.3", "0.3\n"},
		{"s=1e23", "1e23\n"},
		{"s=-2.5", "-2.5\n"},
		{"s=" + url.QueryEscape("100.000000000000000#####"), "100\n"},
		{"s=1e23&mode=unknown", "9.999999999999999e22\n"},
		{"s=ff.8&base=16", "ff.8\n"},
		{"s=1e999", "+Inf\n"},  // out of range keeps IEEE semantics
		{"s=-1e999", "-Inf\n"}, //
		{"s=0.1&bits=32", "0.1\n"},
		{"s=1234.5&notation=sci", "1.2345e3\n"},
		{"s=%2Binf", "+Inf\n"},
		{"s=inf&base=36", "inf\n"}, // base 36: "inf" is a digit string (24171)
	} {
		code, body := get(t, ts.URL+"/v1/parse?"+tc.query)
		if code != http.StatusOK || body != tc.want {
			t.Errorf("parse?%s = %d %q, want 200 %q", tc.query, code, body, tc.want)
		}
	}
	for _, q := range []string{"", "s=bogus", "s=1..2", "s=1&base=99", "s=1&mode=bogus", "s=ff&base=10"} {
		if code, _ := get(t, ts.URL+"/v1/parse?"+q); code != http.StatusBadRequest {
			t.Errorf("parse?%s = %d, want 400", q, code)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/parse", "text/plain", strings.NewReader("1"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/parse = %d, want 405", resp.StatusCode)
	}
}

func TestIntervalEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		query, want string
	}{
		// Print form: shortest decimal interval enclosing [lo, hi].
		{"lo=0.1&hi=0.3", "[0.1,0.3]\n"},
		{"lo=0.3&hi=0.3", "[0.29999999999999998,0.3]\n"},
		{"lo=-0&hi=0", "[-0,0]\n"},
		{"lo=1&hi=2&notation=sci", "[1e0,2e0]\n"},
		// Parse form: outward read, then the enclosing rendering of the
		// parsed endpoints.  Out-of-range endpoints widen, not fail.
		{"s=" + url.QueryEscape("[0.5,0.5]"), "[0.5,0.5]\n"},
		{"s=" + url.QueryEscape("[1e999,1e999]"), "[1.7976931348623157e308,+Inf]\n"},
		{"s=" + url.QueryEscape("[-Inf,+Inf]"), "[-Inf,+Inf]\n"},
	} {
		code, body := get(t, ts.URL+"/v1/interval?"+tc.query)
		if code != http.StatusOK || body != tc.want {
			t.Errorf("interval?%s = %d %q, want 200 %q", tc.query, code, body, tc.want)
		}
	}

	// The parse form's response must enclose what it parsed; pin the
	// inexact-endpoint case against the library's own contract.
	want, err := interval.Parse("[0.1,0.3]", nil)
	if err != nil {
		t.Fatal(err)
	}
	code, body := get(t, ts.URL+"/v1/interval?s="+url.QueryEscape("[0.1,0.3]"))
	if code != http.StatusOK || body != want.String()+"\n" {
		t.Errorf("interval?s=[0.1,0.3] = %d %q, want 200 %q", code, body, want.String()+"\n")
	}
	echoed, err := interval.Parse(strings.TrimSuffix(body, "\n"), nil)
	if err != nil {
		t.Fatalf("response %q is not parseable interval text: %v", body, err)
	}
	if !echoed.Encloses(want) || !want.Contains(0.1) || !want.Contains(0.3) {
		t.Errorf("response %v does not enclose parsed %v", echoed, want)
	}

	for _, q := range []string{
		"", "lo=1", "hi=1", "lo=1&hi=2&s=%5B1,2%5D", // wrong form mix
		"lo=2&hi=1", "lo=NaN&hi=1", "lo=x&hi=1", // bad endpoints
		"s=%5B2,1%5D", "s=0.1", "s=%5B1;2%5D", "s=%5BNaN,1%5D", // bad text
		"lo=1&hi=2&base=99", "lo=1&hi=2&mode=bogus",
	} {
		if code, _ := get(t, ts.URL+"/v1/interval?"+q); code != http.StatusBadRequest {
			t.Errorf("interval?%s = %d, want 400", q, code)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/interval", "text/plain", strings.NewReader("1"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/interval = %d, want 405", resp.StatusCode)
	}
}

// TestIntervalEndpointNonDecimalGuard pins the satellite guard at the
// service boundary: a /v1/interval request in a non-decimal base (or a
// non-default scaling) flows through optionsFromQuery into the library,
// where the static dispatch guards must route it to the exact one-sided
// core — the base-10 directed kernels must never even be attempted, in
// either direction.  A kernel reached with base=16 would emit
// well-formed decimal garbage, so the telemetry is the test: zero
// directed attempts, nonzero exact work.
func TestIntervalEndpointNonDecimalGuard(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	floatprint.ResetStats()
	prev := floatprint.SetStatsEnabled(true)
	defer floatprint.SetStatsEnabled(prev)

	// Print form: 0.5 is exactly 0.8 in hex, its own one-sided bound.
	code, body := get(t, ts.URL+"/v1/interval?lo=0.5&hi=0.5&base=16")
	if code != http.StatusOK || body != "[0.8,0.8]\n" {
		t.Errorf("interval?lo=0.5&hi=0.5&base=16 = %d %q, want 200 %q", code, body, "[0.8,0.8]\n")
	}
	// Parse form: hex interval text read outward, re-rendered in hex.
	code, body = get(t, ts.URL+"/v1/interval?base=16&s="+url.QueryEscape("[0.8,0.8]"))
	if code != http.StatusOK || body != "[0.8,0.8]\n" {
		t.Errorf("interval?s=[0.8,0.8]&base=16 = %d %q, want 200 %q", code, body, "[0.8,0.8]\n")
	}

	d := floatprint.Snapshot()
	if d.DirectedRyuHits+d.DirectedRyuMisses != 0 {
		t.Errorf("base-16 interval requests reached the directed print kernels: hits=%d misses=%d",
			d.DirectedRyuHits, d.DirectedRyuMisses)
	}
	if d.DirectedFastHits+d.DirectedFastMisses != 0 {
		t.Errorf("base-16 interval requests reached the directed parse fast path: hits=%d misses=%d",
			d.DirectedFastHits, d.DirectedFastMisses)
	}
	if d.ExactFree == 0 || d.ParseExact == 0 {
		t.Errorf("base-16 interval requests did not run the exact paths: %+v", d)
	}

	// The complementary pin: the same requests in base 10 do use the
	// directed fast paths end to end.
	floatprint.ResetStats()
	get(t, ts.URL+"/v1/interval?lo=0.1&hi=0.3")
	get(t, ts.URL+"/v1/interval?s="+url.QueryEscape("[0.1,0.3]"))
	d = floatprint.Snapshot()
	if d.DirectedRyuHits == 0 {
		t.Errorf("base-10 interval print did not use the directed kernels: %+v", d)
	}
	if d.DirectedFastHits == 0 {
		t.Errorf("base-10 interval parse did not use the directed fast path: %+v", d)
	}
}

func TestFixedEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		query, want string
	}{
		{"v=3.14159&n=3", "3.14\n"},
		{"v=100&pos=-2", "100.00\n"},
		{"v=0.1&n=20", "0.10000000000000000###\n"},
		{"v=0.1&n=20&nomarks=1", "0.10000000000000000000\n"},
		{"v=0.1&n=10&bits=32", "0.100000000#\n"},
	} {
		code, body := get(t, ts.URL+"/v1/fixed?"+tc.query)
		if code != http.StatusOK || body != tc.want {
			t.Errorf("fixed?%s = %d %q, want 200 %q", tc.query, code, body, tc.want)
		}
	}
	for _, q := range []string{"v=1", "v=1&n=3&pos=2", "v=1&n=abc", "v=1&n=0", "v=1&pos=x"} {
		if code, _ := get(t, ts.URL+"/v1/fixed?"+q); code != http.StatusBadRequest {
			t.Errorf("fixed?%s = %d, want 400", q, code)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz = %d %q", code, body)
	}
}

// wantNDJSON is the reference byte stream a batch response must equal:
// AppendShortest per value, newline-terminated — the batch package's
// own byte-identity invariant carried over the wire.
func wantNDJSON(values []float64) []byte {
	buf := make([]byte, 0, len(values)*24)
	for _, v := range values {
		buf = floatprint.AppendShortest(buf, v)
		buf = append(buf, '\n')
	}
	return buf
}

func postBatch(t *testing.T, url, contentType string, body io.Reader) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/batch", contentType, body)
	if err != nil {
		t.Fatalf("POST /v1/batch: %v", err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read batch response: %v", err)
	}
	return resp.StatusCode, out
}

func TestBatchNDJSONByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	values := schryer.CorpusN(10000)
	var in bytes.Buffer
	for i, v := range values {
		if i%3 == 1 {
			v = -v
			values[i] = v
		}
		fmt.Fprintf(&in, "%s\n", strconv.FormatFloat(v, 'g', -1, 64))
	}
	code, out := postBatch(t, ts.URL, "application/x-ndjson", &in)
	if code != http.StatusOK {
		t.Fatalf("batch = %d: %s", code, out)
	}
	if want := wantNDJSON(values); !bytes.Equal(out, want) {
		t.Fatalf("batch response differs from per-value AppendShortest (%d vs %d bytes)", len(out), len(want))
	}
}

func TestBatchBinary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	values := append(schryer.CorpusN(3000), math.NaN(), math.Inf(1), math.Copysign(0, -1))
	in := make([]byte, 8*len(values))
	for i, v := range values {
		binary.LittleEndian.PutUint64(in[8*i:], math.Float64bits(v))
	}
	code, out := postBatch(t, ts.URL, "application/octet-stream", bytes.NewReader(in))
	if code != http.StatusOK {
		t.Fatalf("binary batch = %d: %s", code, out)
	}
	if want := wantNDJSON(values); !bytes.Equal(out, want) {
		t.Fatalf("binary batch response differs from per-value AppendShortest")
	}

	code, out = postBatch(t, ts.URL, "application/octet-stream", bytes.NewReader(in[:17]))
	if code != http.StatusBadRequest {
		t.Fatalf("truncated binary batch = %d %q, want 400", code, out)
	}
}

func TestBatchEmptyAndErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, out := postBatch(t, ts.URL, "application/x-ndjson", strings.NewReader(""))
	if code != http.StatusOK || len(out) != 0 {
		t.Fatalf("empty batch = %d %q, want 200 empty", code, out)
	}
	code, _ = postBatch(t, ts.URL, "application/x-ndjson", strings.NewReader("1.5\nnot-a-number\n"))
	if code != http.StatusBadRequest {
		t.Fatalf("bad line batch = %d, want 400", code)
	}
	resp, err := http.Get(ts.URL + "/v1/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET batch = %d, want 405", resp.StatusCode)
	}
}

// TestBatchAbortAfterStreamStart pins the honesty contract: an input
// error after output has started must break the connection, not end a
// 200 stream early as if the response were complete.
func TestBatchAbortAfterStreamStart(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var in bytes.Buffer
	for i := 0; i < batchBlockValues+10; i++ {
		in.WriteString("1.5\n")
	}
	in.WriteString("garbage\n")
	resp, err := http.Post(ts.URL+"/v1/batch", "application/x-ndjson", &in)
	if err == nil {
		defer resp.Body.Close()
		if _, rerr := io.ReadAll(resp.Body); rerr == nil {
			t.Fatal("mid-stream input error produced a clean response, want aborted connection")
		}
	}
}

// TestBatchBodyCap checks MaxBatchBytes produces 413, not unbounded
// buffering.
func TestBatchBodyCap(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchBytes: 64})
	code, _ := postBatch(t, ts.URL, "application/x-ndjson",
		strings.NewReader(strings.Repeat("1.25\n", 1000)))
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch = %d, want 413", code)
	}
}

func postBatchParse(t *testing.T, url string, body io.Reader) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/batch-parse", "text/plain", body)
	if err != nil {
		t.Fatalf("POST /v1/batch-parse: %v", err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read batch-parse response: %v", err)
	}
	return resp.StatusCode, out
}

// TestBatchParseRoundTrip is the endpoint's bit-identity contract: the
// packed little-endian output decodes to exactly the floats whose
// shortest renderings went in, value for value, in input order.
func TestBatchParseRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	values := schryer.CorpusN(10000)
	for i := range values {
		if i%3 == 1 {
			values[i] = -values[i]
		}
	}
	code, out := postBatchParse(t, ts.URL, bytes.NewReader(wantNDJSON(values)))
	if code != http.StatusOK {
		t.Fatalf("batch-parse = %d, want 200", code)
	}
	if len(out) != 8*len(values) {
		t.Fatalf("got %d output bytes, want %d", len(out), 8*len(values))
	}
	for i, v := range values {
		got := binary.LittleEndian.Uint64(out[8*i:])
		if got != math.Float64bits(v) {
			t.Fatalf("value %d: got bits %#x, want %#x (%v)", i, got, math.Float64bits(v), v)
		}
	}
}

// TestBatchParseGrammarAndErrors covers the pre-stream error mapping
// and the small-response shapes: empty input is a committed empty
// octet-stream, mixed separators parse as one stream, out-of-range
// tokens follow IEEE semantics, malformed tokens are located 400s, and
// non-POST methods are 405.
func TestBatchParseGrammarAndErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Post(ts.URL+"/v1/batch-parse", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 0 {
		t.Fatalf("empty input = %d with %d bytes, want empty 200", resp.StatusCode, len(body))
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("empty input Content-Type = %q, want octet-stream", ct)
	}

	code, out := postBatchParse(t, ts.URL, strings.NewReader("1.5, 2.5\r\n1e999\t-0\n"))
	if code != http.StatusOK || len(out) != 32 {
		t.Fatalf("mixed separators = %d with %d bytes, want 200 with 32", code, len(out))
	}
	for i, want := range []float64{1.5, 2.5, math.Inf(1), math.Copysign(0, -1)} {
		if got := binary.LittleEndian.Uint64(out[8*i:]); got != math.Float64bits(want) {
			t.Fatalf("value %d: got bits %#x, want %v", i, got, want)
		}
	}

	code, out = postBatchParse(t, ts.URL, strings.NewReader("1.5\nbogus\n2.5\n"))
	if code != http.StatusBadRequest {
		t.Fatalf("malformed token = %d, want 400", code)
	}
	if !strings.Contains(string(out), "record 1") || !strings.Contains(string(out), "byte offset 4") {
		t.Fatalf("malformed-token body %q lacks record/offset coordinates", out)
	}

	resp, err = http.Get(ts.URL + "/v1/batch-parse")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET batch-parse = %d, want 405", resp.StatusCode)
	}
}

// TestBatchParseAbortAfterStreamStart pins the same honesty contract
// as /v1/batch: once packed output has started streaming, a malformed
// token must abort the connection rather than truncate a 200.
func TestBatchParseAbortAfterStreamStart(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var in bytes.Buffer
	// The parse engine cuts blocks at 1 MiB of input; two blocks' worth
	// of good values guarantees output is committed before the garbage.
	for in.Len() < 2<<20 {
		in.WriteString("1.5\n2.25\n-3e5\n")
	}
	in.WriteString("garbage\n")
	resp, err := http.Post(ts.URL+"/v1/batch-parse", "text/plain", &in)
	if err == nil {
		defer resp.Body.Close()
		if _, rerr := io.ReadAll(resp.Body); rerr == nil {
			t.Fatal("mid-stream parse error produced a clean response, want aborted connection")
		}
	}
}

// TestBatchParseBodyCap checks MaxBatchBytes guards the parse side too.
func TestBatchParseBodyCap(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchBytes: 64})
	code, _ := postBatchParse(t, ts.URL, strings.NewReader(strings.Repeat("1.25\n", 1000)))
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch-parse = %d, want 413", code)
	}
}

// TestBatchParseMetrics checks the new engine counters surface in the
// /metrics scrape after traffic.
func TestBatchParseMetrics(t *testing.T) {
	floatprint.ResetStats()
	prev := floatprint.SetStatsEnabled(true)
	defer floatprint.SetStatsEnabled(prev)
	_, ts := newTestServer(t, Config{})
	code, _ := postBatchParse(t, ts.URL, strings.NewReader("1.5\n2.5\n3.5\n"))
	if code != http.StatusOK {
		t.Fatalf("batch-parse = %d, want 200", code)
	}
	_, scrape := get(t, ts.URL+"/metrics")
	if got := metricValue(t, scrape, "floatprint_batch_parse_values_total"); got != 3 {
		t.Fatalf("batch_parse_values_total = %d, want 3", got)
	}
	if got := metricValue(t, scrape, "floatprint_batch_parse_blocks_total"); got < 1 {
		t.Fatalf("batch_parse_blocks_total = %d, want >= 1", got)
	}
}

// metricSum sums every sample of a metric family across its label
// sets (and accepts an unlabeled sample), for totals over the
// per-route families.
func metricSum(t *testing.T, scrape, name string) uint64 {
	t.Helper()
	var sum uint64
	found := false
	sc := bufio.NewScanner(strings.NewReader(scrape))
	for sc.Scan() {
		line := sc.Text()
		rest, ok := strings.CutPrefix(line, name)
		if !ok {
			continue
		}
		if strings.HasPrefix(rest, "{") {
			i := strings.Index(rest, "} ")
			if i < 0 {
				continue
			}
			rest = rest[i+2:]
		} else if !strings.HasPrefix(rest, " ") {
			continue // a longer name sharing the prefix (_bucket, _sum)
		} else {
			rest = rest[1:]
		}
		v, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			t.Fatalf("metric %s: bad value %q", name, rest)
		}
		sum += v
		found = true
	}
	if !found {
		t.Fatalf("metric %s not found in scrape:\n%s", name, scrape)
	}
	return sum
}

// metricValue extracts an unlabeled counter/gauge value from a
// Prometheus text scrape.
func metricValue(t *testing.T, scrape, name string) uint64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(scrape))
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in scrape:\n%s", name, scrape)
	return 0
}

// TestLoadShedBurst is the acceptance check: with in-flight cap N, a
// burst of 4N concurrent batch requests yields only 200s and 429s —
// exactly N admitted, 3N shed, nothing queued or timed out — and the
// /metrics scrape reports the shed count and batch byte totals
// consistent with floatprint.Snapshot().
func TestLoadShedBurst(t *testing.T) {
	const capN = 4
	floatprint.ResetStats()
	prev := floatprint.SetStatsEnabled(true)
	defer floatprint.SetStatsEnabled(prev)

	s, ts := newTestServer(t, Config{InFlight: capN, RequestTimeout: 30 * time.Second})

	type result struct {
		code int
		body string
	}
	results := make(chan result, 4*capN)
	writers := make(chan *io.PipeWriter, 4*capN)
	var wg sync.WaitGroup
	for i := 0; i < 4*capN; i++ {
		pr, pw := io.Pipe()
		writers <- pw
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/batch", "application/x-ndjson", pr)
			pr.Close()
			if err != nil {
				t.Errorf("burst request: %v", err)
				results <- result{code: -1}
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			results <- result{resp.StatusCode, string(body)}
		}()
	}

	// The admitted requests block reading their pipes, holding their
	// slots; everyone else must shed.  Wait for the dust to settle.
	deadline := time.Now().Add(10 * time.Second)
	for s.metrics.sheds.Load() < 3*capN || s.limiter.inFlight() < capN {
		if time.Now().After(deadline) {
			t.Fatalf("burst did not settle: sheds=%d inflight=%d",
				s.metrics.sheds.Load(), s.limiter.inFlight())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Release the admitted requests: one value each, then EOF.
	close(writers)
	for pw := range writers {
		go func(pw *io.PipeWriter) {
			io.WriteString(pw, "0.3\n")
			pw.Close()
		}(pw)
	}
	wg.Wait()
	close(results)

	counts := map[int]int{}
	for r := range results {
		counts[r.code]++
		if r.code == http.StatusOK && r.body != "0.3\n" {
			t.Errorf("admitted batch body = %q, want \"0.3\\n\"", r.body)
		}
	}
	if counts[http.StatusOK] != capN || counts[http.StatusTooManyRequests] != 3*capN || len(counts) != 2 {
		t.Fatalf("burst status mix = %v, want %d×200 and %d×429 only", counts, capN, 3*capN)
	}

	// The scrape must agree with the library's own snapshot.
	_, scrape := get(t, ts.URL+"/metrics")
	snap := floatprint.Snapshot()
	if got := metricValue(t, scrape, "fpserved_shed_total"); got != 3*capN {
		t.Errorf("fpserved_shed_total = %d, want %d", got, 3*capN)
	}
	if got := metricSum(t, scrape, "fpserved_requests_total"); got != 4*capN {
		t.Errorf("fpserved_requests_total = %d, want %d", got, 4*capN)
	}
	if got := metricValue(t, scrape, "floatprint_batch_values_total"); got != snap.BatchValues {
		t.Errorf("floatprint_batch_values_total = %d, Snapshot().BatchValues = %d", got, snap.BatchValues)
	}
	if got := metricValue(t, scrape, "floatprint_batch_bytes_total"); got != snap.BatchBytes {
		t.Errorf("floatprint_batch_bytes_total = %d, Snapshot().BatchBytes = %d", got, snap.BatchBytes)
	}
	if snap.BatchValues < capN {
		t.Errorf("BatchValues = %d, want at least %d (one per admitted request)", snap.BatchValues, capN)
	}
}

// TestOpsEndpointsBypassLimiter: with every slot held, the service
// must still answer health checks and scrapes.
func TestOpsEndpointsBypassLimiter(t *testing.T) {
	s, ts := newTestServer(t, Config{InFlight: 1, RequestTimeout: 30 * time.Second})

	pr, pw := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/v1/batch", "application/x-ndjson", pr)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.limiter.inFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("holder request never admitted")
		}
		time.Sleep(2 * time.Millisecond)
	}

	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz under full load = %d, want 200", code)
	}
	if code, scrape := get(t, ts.URL+"/metrics"); code != http.StatusOK {
		t.Errorf("metrics under full load = %d, want 200", code)
	} else if got := metricValue(t, scrape, "fpserved_in_flight"); got != 1 {
		t.Errorf("fpserved_in_flight = %d, want 1", got)
	}
	if code, _ := get(t, ts.URL+"/v1/shortest?v=1.5"); code != http.StatusTooManyRequests {
		t.Errorf("shortest under full load = %d, want 429", code)
	}

	pw.Close()
	<-done
}

// TestStalledBodyTimesOut: a client that stops sending mid-body cannot
// hold an admission slot past the request timeout.
func TestStalledBodyTimesOut(t *testing.T) {
	s, ts := newTestServer(t, Config{InFlight: 1, RequestTimeout: 300 * time.Millisecond})

	pr, pw := io.Pipe()
	go io.WriteString(pw, "1.5\n") // a valid prefix, then silence
	resp, err := http.Post(ts.URL+"/v1/batch", "application/x-ndjson", pr)
	// Either a clean timeout status or a broken connection is
	// acceptable; holding the slot forever is not.
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	pw.Close()

	deadline := time.Now().Add(5 * time.Second)
	for s.limiter.inFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled request still holds its slot after timeout")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGracefulShutdownDrains boots a real listener, starts a batch
// mid-stream, shuts down, and checks the in-flight request completes
// and the server exits cleanly within the drain deadline.
func TestGracefulShutdownDrains(t *testing.T) {
	s := New(Config{Addr: "127.0.0.1:0", RequestTimeout: 30 * time.Second,
		Logger: log.New(io.Discard, "", 0)})
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()

	pr, pw := io.Pipe()
	respDone := make(chan error, 1)
	go func() {
		resp, err := http.Post("http://"+s.Addr()+"/v1/batch", "application/x-ndjson", pr)
		if err != nil {
			respDone <- err
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err == nil && string(body) != "0.5\n1.5\n" {
			err = fmt.Errorf("drained body = %q", body)
		}
		respDone <- err
	}()
	io.WriteString(pw, "0.5\n")
	time.Sleep(50 * time.Millisecond) // let the request reach the handler

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	time.Sleep(50 * time.Millisecond) // shutdown must wait for the stream
	io.WriteString(pw, "1.5\n")
	pw.Close()

	if err := <-respDone; err != nil {
		t.Fatalf("in-flight request during shutdown: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after graceful shutdown, want nil", err)
	}
}

// TestMetricsExposition is the per-route exposition golden test: after
// a known request mix, the scrape must carry exact labeled samples for
// the touched routes, explicit zeros for the untouched ones (absent
// series are indistinguishable from broken collection), and the
// runtime-collector families.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	get(t, ts.URL+"/v1/shortest?v=0.3")
	get(t, ts.URL+"/v1/shortest?v=bogus")
	get(t, ts.URL+"/v1/parse?s=1.25")
	_, scrape := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"# TYPE floatprint_grisu_hits_total counter",
		"# TYPE fpserved_requests_total counter",
		"# TYPE fpserved_request_seconds histogram",
		`fpserved_requests_total{route="/v1/shortest"} 2`,
		`fpserved_requests_total{route="/v1/parse"} 1`,
		`fpserved_requests_total{route="/v1/batch"} 0`,
		`fpserved_request_errors_total{route="/v1/shortest",class="4xx"} 1`,
		`fpserved_request_errors_total{route="/v1/shortest",class="5xx"} 0`,
		`fpserved_request_errors_total{route="/v1/parse",class="4xx"} 0`,
		`fpserved_request_seconds_bucket{route="/v1/shortest",le="+Inf"} 2`,
		`fpserved_request_seconds_count{route="/v1/shortest"} 2`,
		`fpserved_request_seconds_count{route="/v1/parse"} 1`,
		`fpserved_request_seconds_count{route="/v1/fixed"} 0`,
		"fpserved_responses_total{class=\"2xx\"} 2",
		"fpserved_responses_total{class=\"4xx\"} 1",
		"fpserved_in_flight_limit 64",
		"# TYPE fpserved_goroutines gauge",
		"# TYPE fpserved_heap_alloc_bytes gauge",
		"# TYPE fpserved_gc_cycles_total counter",
		"# TYPE fpserved_uptime_seconds gauge",
		`fpserved_build_info{go_version="` + runtime.Version() + `",instance=`,
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q:\n%s", want, scrape)
		}
	}
	if got := metricValue(t, scrape, "fpserved_gomaxprocs"); got != uint64(runtime.GOMAXPROCS(0)) {
		t.Errorf("fpserved_gomaxprocs = %d, want %d", got, runtime.GOMAXPROCS(0))
	}
}

// TestPanicRecovery: a handler panic becomes a 500 and a counter, not
// a dead server — and the deferred accounting in instrumented records
// the panic as a 500 in the per-route metrics before re-raising.
func TestPanicRecovery(t *testing.T) {
	s := New(Config{Logger: log.New(io.Discard, "", 0)})
	mux := http.NewServeMux()
	mux.Handle("/boom", s.instrumented("/v1/shortest", http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	})))
	ts := httptest.NewServer(s.recovered(mux))
	defer ts.Close()
	code, _ := get(t, ts.URL+"/boom")
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", code)
	}
	if got := s.metrics.panics.Load(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}
	rm := s.metrics.route("/v1/shortest")
	if got := rm.err5xx.Load(); got != 1 {
		t.Fatalf("route 5xx counter = %d, want 1 (panic accounted before re-raise)", got)
	}
	if got := rm.latency.Count(); got != 1 {
		t.Fatalf("route latency count = %d, want 1", got)
	}
}

// benchServeShortest measures single-value request throughput over a
// real loopback connection — the serving tax on top of the ~tens of
// nanoseconds the conversion itself costs.
func benchServeShortest(b *testing.B, cfg Config) {
	cfg.Logger = log.New(io.Discard, "", 0)
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	url := ts.URL + "/v1/shortest?v=0.3"
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := client.Get(url)
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServeShortest is the historical name CI's regression gate
// tracks release over release; tracing is off, so it doubles as the
// tracing-disabled budget check against pre-tracing baselines.
func BenchmarkServeShortest(b *testing.B) { benchServeShortest(b, Config{}) }

// The TraceOff/TraceOn pair measures the tracing tax directly: same
// request, nil tracer versus a root span plus decode/convert/encode
// children and ring publication on every request.
func BenchmarkServeShortest_TraceOff(b *testing.B) { benchServeShortest(b, Config{}) }

func BenchmarkServeShortest_TraceOn(b *testing.B) {
	benchServeShortest(b, Config{TraceSample: 1})
}

// TraceSampled is the production-shaped middle ground: spans are built
// for every request (the capture decision is retrospective) but only
// ~1 in 100 traces publishes to the ring.
func BenchmarkServeShortest_TraceSampled(b *testing.B) {
	benchServeShortest(b, Config{TraceSample: 100})
}

// BenchmarkServeBatchNDJSON measures end-to-end streaming batch
// throughput (parse + convert + write) over loopback.
func BenchmarkServeBatchNDJSON(b *testing.B) {
	s := New(Config{Logger: log.New(io.Discard, "", 0)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	values := schryer.CorpusN(65536)
	var in bytes.Buffer
	for _, v := range values {
		fmt.Fprintf(&in, "%s\n", strconv.FormatFloat(v, 'g', -1, 64))
	}
	payload := in.Bytes()
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/batch", "application/x-ndjson", bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	b.ReportMetric(float64(len(values))*float64(b.N)/b.Elapsed().Seconds(), "values/s")
}
