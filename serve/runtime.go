package serve

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"floatprint/internal/stats"
)

// runtimeStats is the process-level collector behind /metrics: the
// Go-runtime vitals an operator reads next to the request metrics when
// deciding whether a latency regression is the workload or the
// process.  It holds no state beyond the start time and the instance
// label — every scrape reads the runtime fresh, so the numbers are as
// current as the scrape itself.
type runtimeStats struct {
	start    time.Time
	instance string
}

func newRuntimeStats(instance string) *runtimeStats {
	return &runtimeStats{start: time.Now(), instance: instance}
}

// writePrometheus emits the runtime families.  ReadMemStats
// stop-the-worlds briefly; at scrape frequency (seconds) that cost is
// noise, and it is the price of heap numbers that are actually
// coherent with each other.
func (rs *runtimeStats) writePrometheus(w io.Writer) error {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for _, g := range []struct {
		name, help string
		v          int64
	}{
		{"fpserved_goroutines", "Live goroutines.", int64(runtime.NumGoroutine())},
		{"fpserved_gomaxprocs", "Scheduler parallelism (GOMAXPROCS).", int64(runtime.GOMAXPROCS(0))},
		{"fpserved_heap_alloc_bytes", "Bytes of live heap objects.", int64(ms.HeapAlloc)},
		{"fpserved_heap_sys_bytes", "Heap memory obtained from the OS.", int64(ms.HeapSys)},
		{"fpserved_heap_objects", "Live heap objects.", int64(ms.HeapObjects)},
	} {
		if err := stats.WriteGauge(w, g.name, g.help, g.v); err != nil {
			return err
		}
	}
	if err := stats.WriteCounter(w, "fpserved_gc_cycles_total",
		"Completed GC cycles.", uint64(ms.NumGC)); err != nil {
		return err
	}
	if err := stats.WriteGaugeFloat(w, "fpserved_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause.", float64(ms.PauseTotalNs)/1e9); err != nil {
		return err
	}
	if err := stats.WriteGaugeFloat(w, "fpserved_uptime_seconds",
		"Seconds since the server was constructed.", time.Since(rs.start).Seconds()); err != nil {
		return err
	}
	// The build-info pseudo-gauge: always 1, the facts live in the
	// labels.  instance is the request-id prefix, so a log line, an
	// exemplar, and a scrape from the same process tie together.
	_, err := fmt.Fprintf(w,
		"# HELP fpserved_build_info Build and instance identity; value is always 1.\n"+
			"# TYPE fpserved_build_info gauge\n"+
			"fpserved_build_info{go_version=%q,instance=%q} 1\n",
		runtime.Version(), rs.instance)
	return err
}
