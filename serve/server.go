// Package serve is the network front end: it exposes the library's
// conversion paths — single-value shortest and fixed format, and the
// batch engine's ordered streaming — over HTTP, production-shaped.
//
// "Production-shaped" means the parts a toy mux omits:
//
//   - Admission control.  At most Config.InFlight conversion requests
//     run at once; excess load is shed immediately with 429 and a
//     Retry-After hint instead of queueing unboundedly (a conversion
//     service's queue is pure memory growth: every queued batch holds
//     its body buffers while it waits).
//   - Per-request timeouts, propagated as context cancellation into
//     batch.Pool.WriteAll, so a stuck client cannot pin a worker set.
//   - Panic recovery that converts handler panics to 500s and counts
//     them, without masking net/http's own abort sentinel.
//   - Graceful shutdown: Shutdown stops accepting and drains in-flight
//     batches up to the caller's deadline.
//   - Observability: /metrics exposes the library's conversion-path
//     telemetry (floatprint.Stats.WritePrometheus), per-route RED
//     metrics (request/error counters and a latency histogram labeled
//     by route), and a runtime collector (goroutines, heap, GC, build
//     info) through one Prometheus text scrape, so the path mix and
//     the traffic that produced it are read together.  Request-span
//     tracing (Config.TraceSample) captures sampled, slow, and failing
//     requests as W3C-propagated traces served at /debug/traces.
//
// Endpoints:
//
//	GET  /v1/shortest?v=0.3[&base=16&mode=unknown&notation=sci&nomarks=1&bits=32]
//	GET  /v1/parse?s=1.25e-3            read with the library's certified
//	                                    fast-path reader (same base/mode
//	                                    options); responds with the value's
//	                                    shortest rendering
//	GET  /v1/interval?lo=0.1&hi=0.3     shortest decimal interval enclosing
//	                                    [lo, hi]; or ?s=[0.1,0.3] to read
//	                                    interval text with outward rounding
//	                                    and respond with the enclosing
//	                                    rendering of the parsed endpoints
//	GET  /v1/fixed?v=3.14159&n=3        (or &pos=-2 for absolute position)
//	POST /v1/batch                      NDJSON lines, or packed little-endian
//	                                    float64s with Content-Type
//	                                    application/octet-stream; responds with
//	                                    NDJSON shortest renderings, streamed
//	POST /v1/batch-parse                separator-delimited decimal text in,
//	                                    packed little-endian float64s out,
//	                                    streamed through the block-at-a-time
//	                                    batch parse engine in bounded memory
//	GET  /healthz
//	GET  /metrics
//	GET  /debug/pprof/*      (opt-in: Config.Debug)
//	GET  /debug/exemplars    (opt-in: Config.Debug; recent slow/5xx requests)
//	GET  /debug/traces       (opt-in: Config.TraceSample > 0; completed
//	                          request traces, newest first, filterable by
//	                          ?route= and ?min_ms=)
//
// Every conversion request is assigned a process-unique request id,
// returned in the X-Request-Id header and logged (when Config.Slog is
// set) in a structured access-log record; when tracing is enabled the
// trace id rides alongside it (X-Trace-Id header, trace_id log attr),
// so one slow exemplar, one log line, one trace, and one
// client-observed response tie together by id.
//
// The batch response is byte-identical to floatprint.AppendShortest on
// each value followed by '\n', whatever the shard count — the same
// invariant the batch package maintains.
package serve

import (
	"context"
	"errors"
	"log"
	"log/slog"
	"net"
	"net/http"
	"time"

	"floatprint/batch"
	"floatprint/internal/span"
)

// Config tunes a Server.  The zero value is ready to use.
type Config struct {
	// Addr is the listen address ("127.0.0.1:0" picks a random port).
	// Empty means ":8080".
	Addr string
	// InFlight caps concurrently admitted conversion requests; arrivals
	// past the cap are shed with 429 + Retry-After.  Zero or negative
	// means 64.  /healthz and /metrics are exempt so the service stays
	// observable under pressure.
	InFlight int
	// RequestTimeout bounds each conversion request; it reaches the
	// batch engine as context cancellation.  Zero means 30s.
	RequestTimeout time.Duration
	// RetryAfter is the hint returned with shed responses.  Zero
	// means 1s.
	RetryAfter time.Duration
	// MaxBatchBytes caps a /v1/batch or /v1/batch-parse request body.
	// Zero means 1 GiB.
	MaxBatchBytes int64
	// BatchShards and BatchChunk configure the underlying batch.Pool
	// (zero means the pool's defaults: GOMAXPROCS shards, 4096-value
	// chunks).
	BatchShards int
	BatchChunk  int
	// Logger receives shed, panic, and lifecycle lines.  Nil means the
	// standard logger.
	Logger *log.Logger
	// Slog, when non-nil, receives one structured access-log record per
	// conversion request (request_id, method, path, status, bytes,
	// duration; level Warn for 5xx).  The request id is also returned in
	// the X-Request-Id response header and available to handlers via
	// RequestID(ctx).  Nil disables access logging; request ids are
	// still assigned.
	Slog *slog.Logger
	// Debug mounts the profiling surface: /debug/pprof/* (net/http/pprof)
	// and /debug/exemplars (the slow-request ring).  Off by default —
	// profiling endpoints should be a deployment decision, not a given.
	Debug bool
	// SlowRequest is the duration at or above which a finished request is
	// captured into the exemplar ring — and, when tracing is on, always
	// published to the trace ring whatever the sampling rate said.  Zero
	// means 250ms.
	SlowRequest time.Duration
	// TraceSample turns on request-span tracing and sets the head
	// sampling rate: 1 traces every request, N keeps roughly 1 in N
	// (decided deterministically per W3C trace ID, so replicas sharing
	// TraceSeed agree).  Zero or negative disables tracing entirely —
	// handlers then pay one nil-pointer test per instrumentation point.
	// Slow and 5xx requests are always captured when tracing is on,
	// whatever the rate.
	TraceSample int
	// TraceRing bounds the completed-trace ring behind /debug/traces.
	// Zero means 64.
	TraceRing int
	// TraceSeed seeds trace-ID generation and the sampling decision.
	// Zero means random; set it to make sampling reproducible across
	// restarts or consistent across a replica fleet.
	TraceSeed uint64
}

// Server is the fpserved HTTP service.
type Server struct {
	cfg       Config
	pool      *batch.Pool
	limiter   *limiter
	metrics   *metrics
	httpSrv   *http.Server
	ln        net.Listener
	log       *log.Logger
	slog      *slog.Logger
	reqIDs    *requestIDs
	exemplars *exemplarRing
	tracer    *span.Tracer // nil when Config.TraceSample <= 0
	runtime   *runtimeStats
}

// New builds a Server from cfg, applying defaults.
func New(cfg Config) *Server {
	if cfg.Addr == "" {
		cfg.Addr = ":8080"
	}
	if cfg.InFlight <= 0 {
		cfg.InFlight = 64
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = 1 << 30
	}
	if cfg.SlowRequest <= 0 {
		cfg.SlowRequest = 250 * time.Millisecond
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.Default()
	}
	s := &Server{
		cfg: cfg,
		pool: batch.New(batch.Config{
			Shards:    cfg.BatchShards,
			ChunkSize: cfg.BatchChunk,
			Sep:       []byte{'\n'},
		}),
		limiter:   newLimiter(cfg.InFlight),
		metrics:   newMetrics(),
		log:       logger,
		slog:      cfg.Slog,
		reqIDs:    newRequestIDs(),
		exemplars: &exemplarRing{},
		tracer:    newTracer(cfg),
	}
	s.runtime = newRuntimeStats(s.reqIDs.prefix)
	s.httpSrv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          logger,
	}
	return s
}

// Handler returns the full middleware-wrapped route set.  It is what
// the listener serves; tests drive it directly through httptest.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Conversion endpoints go through the full stack; the ops
	// endpoints skip the limiter (and the request metrics, so scraping
	// does not pollute the request counters it reports).  The route
	// string given to limited is the span name and the metrics label,
	// so it must match the pattern registered on the mux — and must be
	// one of the routes newMetrics pre-registered, which route()
	// enforces at wiring time.
	mux.Handle("/v1/shortest", s.limited("/v1/shortest", http.HandlerFunc(s.handleShortest)))
	mux.Handle("/v1/parse", s.limited("/v1/parse", http.HandlerFunc(s.handleParse)))
	mux.Handle("/v1/interval", s.limited("/v1/interval", http.HandlerFunc(s.handleInterval)))
	mux.Handle("/v1/fixed", s.limited("/v1/fixed", http.HandlerFunc(s.handleFixed)))
	mux.Handle("/v1/batch", s.limited("/v1/batch", http.HandlerFunc(s.handleBatch)))
	mux.Handle("/v1/batch-parse", s.limited("/v1/batch-parse", http.HandlerFunc(s.handleBatchParse)))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	if s.tracer != nil {
		// Enabling tracing is itself the opt-in for the trace reader,
		// independent of the pprof surface: there is no point capturing
		// traces nobody can read.
		mux.HandleFunc("/debug/traces", s.handleTraces)
	}
	if s.cfg.Debug {
		s.mountDebug(mux)
	}
	return s.recovered(mux)
}

// limited wraps a conversion handler with the request middleware, from
// the outside in: instrumentation (every arrival counts, sheds
// included; the root span opens here), then admission, then the
// per-request timeout.
func (s *Server) limited(route string, h http.Handler) http.Handler {
	return s.instrumented(route, s.admitted(s.timed(h)))
}

// Listen binds the configured address.  After Listen, Addr reports the
// actual address (useful with ":0").
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listen address, or the configured one before
// Listen.
func (s *Server) Addr() string {
	if s.ln != nil {
		return s.ln.Addr().String()
	}
	return s.cfg.Addr
}

// Serve accepts connections on the listener until Shutdown.  It
// returns nil on graceful shutdown (http.ErrServerClosed is the normal
// exit, not an error).
func (s *Server) Serve() error {
	if s.ln == nil {
		if err := s.Listen(); err != nil {
			return err
		}
	}
	err := s.httpSrv.Serve(s.ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown stops accepting new connections and drains in-flight
// requests — including streaming batches — until they finish or ctx
// expires, whichever comes first.  A non-nil return means the drain
// deadline passed with work still in flight.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.httpSrv.Shutdown(ctx)
}
