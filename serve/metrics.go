package serve

import (
	"fmt"
	"io"
	"net/http"

	"floatprint"
	"floatprint/internal/stats"
)

// metrics is the server-side counter set, built on the same primitives
// as the library's conversion telemetry (internal/stats) so both halves
// of a /metrics scrape come off one pipeline: cache-line-padded atomic
// counters, written out in Prometheus text format.  Unlike the
// library's gated path-mix counters, these are Raw — request accounting
// is always on.
type metrics struct {
	requests stats.Raw // every arrival at a conversion endpoint
	sheds    stats.Raw // arrivals rejected 429 at the in-flight cap
	panics   stats.Raw // handler panics converted to 500s
	bytesOut stats.Raw // response bytes written by conversion endpoints
	code2xx  stats.Raw
	code4xx  stats.Raw
	code5xx  stats.Raw
	latency  *stats.Histogram
}

func newMetrics() *metrics {
	return &metrics{
		latency: stats.NewHistogram(
			0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
			0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
		),
	}
}

// writePrometheus emits the server counters.
func (m *metrics) writePrometheus(w io.Writer, inFlight, limit int) error {
	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"fpserved_requests_total", "Requests received at conversion endpoints, sheds included.", m.requests.Load()},
		{"fpserved_shed_total", "Requests shed with 429 at the in-flight cap.", m.sheds.Load()},
		{"fpserved_panics_total", "Handler panics recovered into 500s.", m.panics.Load()},
		{"fpserved_response_bytes_total", "Response bytes written by conversion endpoints.", m.bytesOut.Load()},
	} {
		if err := stats.WriteCounter(w, c.name, c.help, c.v); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w,
		"# HELP fpserved_responses_total Responses by status class.\n"+
			"# TYPE fpserved_responses_total counter\n"+
			"fpserved_responses_total{class=\"2xx\"} %d\n"+
			"fpserved_responses_total{class=\"4xx\"} %d\n"+
			"fpserved_responses_total{class=\"5xx\"} %d\n",
		m.code2xx.Load(), m.code4xx.Load(), m.code5xx.Load()); err != nil {
		return err
	}
	if err := stats.WriteGauge(w, "fpserved_in_flight",
		"Conversion requests currently admitted.", int64(inFlight)); err != nil {
		return err
	}
	if err := stats.WriteGauge(w, "fpserved_in_flight_limit",
		"Admission cap; arrivals past it are shed.", int64(limit)); err != nil {
		return err
	}
	return m.latency.WritePrometheus(w, "fpserved_request_seconds",
		"Conversion request latency, sheds included.")
}

// handleMetrics serves the combined exposition: the library's
// conversion-path counters (floatprint.Snapshot — grisu/Gay/exact mix,
// batch value and byte totals, trace aggregates), the labeled trace
// telemetry (backend mix, digit-length histogram), and the server's
// request counters.  It bypasses the limiter: observability must
// survive the very overload it is there to explain.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := floatprint.Snapshot().WritePrometheus(w); err != nil {
		return
	}
	if err := floatprint.WriteTraceMetrics(w); err != nil {
		return
	}
	s.metrics.writePrometheus(w, s.limiter.inFlight(), s.limiter.limit())
}
