package serve

import (
	"fmt"
	"io"
	"net/http"

	"floatprint"
	"floatprint/internal/stats"
)

// routes is the fixed conversion-route set.  Per-route metrics and
// request-span names key off it; the set is closed at build time, so
// the label cardinality of every fpserved_* family is known and an
// aggregating scraper can pre-size its series.
var routes = []string{
	"/v1/shortest",
	"/v1/parse",
	"/v1/interval",
	"/v1/fixed",
	"/v1/batch",
	"/v1/batch-parse",
}

// latencyBounds is the request-latency bucket layout, shared by every
// route so per-route histograms aggregate cleanly across a fleet.
var latencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// routeMetrics is one route's RED triple: request rate (requests),
// errors (by status class), and duration (the latency histogram).
// "Which endpoint is slow, and how often does it fail" is answerable
// per route instead of per process.
type routeMetrics struct {
	requests stats.Raw // arrivals, sheds included
	err4xx   stats.Raw
	err5xx   stats.Raw
	latency  *stats.Histogram
}

// metrics is the server-side counter set, built on the same
// primitives as the library's conversion telemetry (internal/stats)
// so both halves of a /metrics scrape come off one pipeline.  Unlike
// the library's gated path-mix counters, these are Raw — request
// accounting is always on.
type metrics struct {
	sheds    stats.Raw // arrivals rejected 429 at the in-flight cap
	panics   stats.Raw // handler panics converted to 500s
	bytesOut stats.Raw // response bytes written by conversion endpoints
	code2xx  stats.Raw
	code4xx  stats.Raw
	code5xx  stats.Raw
	byRoute  map[string]*routeMetrics
}

func newMetrics() *metrics {
	m := &metrics{byRoute: make(map[string]*routeMetrics, len(routes))}
	for _, r := range routes {
		m.byRoute[r] = &routeMetrics{latency: stats.NewHistogram(latencyBounds...)}
	}
	return m
}

// route returns a route's metric set.  The map is fixed after
// newMetrics, so concurrent lookups are safe; an unknown route is a
// programming error caught at wiring time, not a runtime fallback.
func (m *metrics) route(r string) *routeMetrics {
	rm, ok := m.byRoute[r]
	if !ok {
		panic("serve: unregistered route " + r)
	}
	return rm
}

// observe folds one finished request into the RED set: latency into
// the route histogram, status into the route error counters and the
// process-wide class counters, bytes into the output total.
func (m *metrics) observe(rm *routeMetrics, status int, seconds float64, bytes int64) {
	m.bytesOut.Add(uint64(bytes))
	rm.latency.Observe(seconds)
	switch {
	case status >= 500:
		m.code5xx.Inc()
		rm.err5xx.Inc()
	case status >= 400:
		m.code4xx.Inc()
		rm.err4xx.Inc()
	default:
		m.code2xx.Inc()
	}
}

// writePrometheus emits the server metrics: the per-route RED
// families first, then the process-wide counters and gauges.  Every
// labeled family is declared once and emits one sample per route (and
// per class), in the fixed route order, so the exposition is
// deterministic and golden-testable.
func (m *metrics) writePrometheus(w io.Writer, inFlight, limit int) error {
	if err := stats.WriteMetricHead(w, "fpserved_requests_total", "counter",
		"Requests received, by route, sheds included."); err != nil {
		return err
	}
	for _, r := range routes {
		if err := stats.WriteSample(w, "fpserved_requests_total",
			fmt.Sprintf("route=%q", r), m.byRoute[r].requests.Load()); err != nil {
			return err
		}
	}
	if err := stats.WriteMetricHead(w, "fpserved_request_errors_total", "counter",
		"Error responses, by route and status class."); err != nil {
		return err
	}
	for _, r := range routes {
		rm := m.byRoute[r]
		for _, c := range []struct {
			class string
			v     uint64
		}{{"4xx", rm.err4xx.Load()}, {"5xx", rm.err5xx.Load()}} {
			if err := stats.WriteSample(w, "fpserved_request_errors_total",
				fmt.Sprintf("route=%q,class=%q", r, c.class), c.v); err != nil {
				return err
			}
		}
	}
	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"fpserved_shed_total", "Requests shed with 429 at the in-flight cap.", m.sheds.Load()},
		{"fpserved_panics_total", "Handler panics recovered into 500s.", m.panics.Load()},
		{"fpserved_response_bytes_total", "Response bytes written by conversion endpoints.", m.bytesOut.Load()},
	} {
		if err := stats.WriteCounter(w, c.name, c.help, c.v); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w,
		"# HELP fpserved_responses_total Responses by status class.\n"+
			"# TYPE fpserved_responses_total counter\n"+
			"fpserved_responses_total{class=\"2xx\"} %d\n"+
			"fpserved_responses_total{class=\"4xx\"} %d\n"+
			"fpserved_responses_total{class=\"5xx\"} %d\n",
		m.code2xx.Load(), m.code4xx.Load(), m.code5xx.Load()); err != nil {
		return err
	}
	if err := stats.WriteGauge(w, "fpserved_in_flight",
		"Conversion requests currently admitted.", int64(inFlight)); err != nil {
		return err
	}
	if err := stats.WriteGauge(w, "fpserved_in_flight_limit",
		"Admission cap; arrivals past it are shed.", int64(limit)); err != nil {
		return err
	}
	if err := stats.WriteMetricHead(w, "fpserved_request_seconds", "histogram",
		"Request latency by route, sheds included."); err != nil {
		return err
	}
	for _, r := range routes {
		if err := m.byRoute[r].latency.WriteBuckets(w, "fpserved_request_seconds",
			fmt.Sprintf("route=%q", r)); err != nil {
			return err
		}
	}
	return nil
}

// handleMetrics serves the combined exposition: the library's
// conversion-path counters (floatprint.Snapshot — grisu/Gay/exact mix,
// batch value and byte totals, trace aggregates), the labeled trace
// telemetry (backend mix, digit-length histogram), the server's
// per-route RED metrics, and the runtime collector.  It bypasses the
// limiter: observability must survive the very overload it is there
// to explain.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := floatprint.Snapshot().WritePrometheus(w); err != nil {
		return
	}
	if err := floatprint.WriteTraceMetrics(w); err != nil {
		return
	}
	if err := s.metrics.writePrometheus(w, s.limiter.inFlight(), s.limiter.limit()); err != nil {
		return
	}
	s.runtime.writePrometheus(w)
}
