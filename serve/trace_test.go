package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"floatprint/internal/span"
)

// getTraces fetches and decodes /debug/traces.
func getTraces(t *testing.T, url string) (int, struct {
	SampleEvery int           `json:"sample_every"`
	Total       uint64        `json:"total"`
	Traces      []*span.Trace `json:"traces"`
}) {
	t.Helper()
	var out struct {
		SampleEvery int           `json:"sample_every"`
		Total       uint64        `json:"total"`
		Traces      []*span.Trace `json:"traces"`
	}
	code, body := get(t, url)
	if code == http.StatusOK {
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatalf("traces JSON: %v\n%s", err, body)
		}
	}
	return code, out
}

// TestTraceparentPropagation: an upstream W3C traceparent identity
// survives through the middleware into the response header and the
// published trace — root span parented on the upstream span, handler
// children parented on the root, and the conversion span carrying the
// algorithm record.
func TestTraceparentPropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceSample: 1})

	const upstreamTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const upstreamSpan = "00f067aa0ba902b7"
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/shortest?v=0.3", nil)
	req.Header.Set("traceparent", "00-"+upstreamTrace+"-"+upstreamSpan+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "0.3\n" {
		t.Fatalf("traced shortest = %d %q, want 200 \"0.3\\n\"", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != upstreamTrace {
		t.Fatalf("X-Trace-Id = %q, want adopted upstream id %q", got, upstreamTrace)
	}

	code, got := getTraces(t, ts.URL+"/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces = %d, want 200", code)
	}
	if got.SampleEvery != 1 || got.Total != 1 || len(got.Traces) != 1 {
		t.Fatalf("traces = sample_every=%d total=%d len=%d, want 1/1/1",
			got.SampleEvery, got.Total, len(got.Traces))
	}
	tr := got.Traces[0]
	if tr.TraceID != upstreamTrace || tr.Route != "/v1/shortest" || tr.Reason != "head" {
		t.Fatalf("trace = %+v, want upstream id, /v1/shortest, reason head", tr)
	}
	if len(tr.Spans) != 4 {
		t.Fatalf("got %d spans, want root + decode/convert/encode:\n%+v", len(tr.Spans), tr.Spans)
	}
	root := tr.Spans[0]
	if root.Name != "/v1/shortest" || root.ParentID != upstreamSpan || root.TraceID != upstreamTrace {
		t.Fatalf("root span = %+v, want route name parented on upstream span", root)
	}
	byName := map[string]span.Record{}
	for _, sp := range tr.Spans[1:] {
		byName[sp.Name] = sp
		if sp.ParentID != root.SpanID {
			t.Errorf("span %s parent = %q, want root %q", sp.Name, sp.ParentID, root.SpanID)
		}
		if sp.TraceID != upstreamTrace {
			t.Errorf("span %s trace = %q, want %q", sp.Name, sp.TraceID, upstreamTrace)
		}
	}
	for _, name := range []string{"decode", "convert", "encode"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("missing %s span in %+v", name, tr.Spans)
		}
	}
	attrs := map[string]string{}
	for _, a := range byName["convert"].Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["backend"] == "" || attrs["digits"] != "1" ||
		!strings.HasPrefix(attrs["algorithm"], "backend=") {
		t.Errorf("convert span attrs = %v, want backend/digits/algorithm", attrs)
	}

	// Filters: a non-matching route yields an empty (non-null) list; a
	// bad min_ms is a 400.
	if _, empty := getTraces(t, ts.URL+"/debug/traces?route=/v1/parse"); len(empty.Traces) != 0 {
		t.Errorf("route filter leaked %d traces", len(empty.Traces))
	}
	if code, _ := get(t, ts.URL+"/debug/traces?min_ms=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad min_ms = %d, want 400", code)
	}
	if _, all := getTraces(t, ts.URL+"/debug/traces?route=/v1/shortest&min_ms=0"); len(all.Traces) != 1 {
		t.Errorf("matching filter returned %d traces, want 1", len(all.Traces))
	}
}

// TestTraceIDEchoOnErrors is the middleware-ordering pin: the request
// id and trace id must come back on every error shape — 400s, 429
// sheds, and panic 500s — because instrumented sets both headers
// before admission, timeout, or the handler run.
func TestTraceIDEchoOnErrors(t *testing.T) {
	s, ts := newTestServer(t, Config{TraceSample: 1, InFlight: 1, RequestTimeout: 30 * time.Second})

	checkIDs := func(t *testing.T, h http.Header, where string) {
		t.Helper()
		if h.Get("X-Request-Id") == "" {
			t.Errorf("%s: no X-Request-Id", where)
		}
		if len(h.Get("X-Trace-Id")) != 32 {
			t.Errorf("%s: X-Trace-Id = %q, want 32 hex digits", where, h.Get("X-Trace-Id"))
		}
	}

	// 400: malformed query.
	resp, err := http.Get(ts.URL + "/v1/shortest?v=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad value = %d, want 400", resp.StatusCode)
	}
	checkIDs(t, resp.Header, "400")

	// 429: hold the only slot, then get shed.
	pr, pw := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		holder, herr := http.Post(ts.URL+"/v1/batch", "application/x-ndjson", pr)
		if herr == nil {
			io.Copy(io.Discard, holder.Body)
			holder.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.limiter.inFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("holder request never admitted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err = http.Get(ts.URL + "/v1/shortest?v=1.5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed = %d, want 429", resp.StatusCode)
	}
	checkIDs(t, resp.Header, "429")
	pw.Close()
	<-done
}

// TestPanicTraceAndHeaders drives a panicking handler through the full
// instrumented+recovered stack: the 500 carries both ids, and — with
// head sampling effectively off — the trace is still published, with
// reason "error" (retrospective capture).
func TestPanicTraceAndHeaders(t *testing.T) {
	s := New(Config{TraceSample: 1 << 30, TraceSeed: 42, Logger: log.New(io.Discard, "", 0)})
	mux := http.NewServeMux()
	mux.Handle("/boom", s.instrumented("/v1/shortest", http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	})))
	ts := httptest.NewServer(s.recovered(mux))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-Id") == "" || len(resp.Header.Get("X-Trace-Id")) != 32 {
		t.Fatalf("panic 500 headers = %v, want X-Request-Id and X-Trace-Id", resp.Header)
	}

	traces, _ := s.tracer.Ring().Snapshot()
	if len(traces) != 1 || traces[0].Reason != "error" {
		t.Fatalf("trace ring after panic = %+v, want one trace with reason error", traces)
	}
	attrs := map[string]string{}
	for _, a := range traces[0].Spans[0].Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["status"] != "500" {
		t.Fatalf("root span attrs = %v, want status=500", attrs)
	}

	// The converse: a healthy fast request under the same (effectively
	// never head-sampling) tracer must not publish.
	s2 := New(Config{TraceSample: 1 << 30, TraceSeed: 42, Logger: log.New(io.Discard, "", 0)})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if code, _ := get(t, ts2.URL+"/v1/shortest?v=0.3"); code != http.StatusOK {
		t.Fatal("healthy request failed")
	}
	if traces, _ := s2.tracer.Ring().Snapshot(); len(traces) != 0 {
		t.Fatalf("fast 200 published a trace: %+v", traces)
	}
}

// TestTracedResponsesByteIdentical is the observability contract:
// turning tracing on must not change a single response byte on any
// endpoint, only add headers.
func TestTracedResponsesByteIdentical(t *testing.T) {
	_, off := newTestServer(t, Config{})
	_, on := newTestServer(t, Config{TraceSample: 1})

	fetch := func(t *testing.T, base, method, path, body string) (int, string, string) {
		t.Helper()
		var req *http.Request
		var err error
		if method == http.MethodPost {
			req, err = http.NewRequest(method, base+path, strings.NewReader(body))
		} else {
			req, err = http.NewRequest(method, base+path, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(out), resp.Header.Get("Content-Type")
	}

	for _, tc := range []struct {
		method, path, body string
	}{
		{http.MethodGet, "/v1/shortest?v=0.3", ""},
		{http.MethodGet, "/v1/shortest?v=1e23&mode=unknown", ""},
		{http.MethodGet, "/v1/shortest?v=0.1&bits=32", ""},
		{http.MethodGet, "/v1/shortest?v=bogus", ""},
		{http.MethodGet, "/v1/parse?s=1.25e-3", ""},
		{http.MethodGet, "/v1/interval?lo=0.1&hi=0.3", ""},
		{http.MethodGet, "/v1/fixed?v=3.14159&n=3", ""},
		{http.MethodGet, "/v1/fixed?v=100&pos=-2", ""},
		{http.MethodPost, "/v1/batch", "0.1\n0.2\n0.3\n"},
		{http.MethodPost, "/v1/batch-parse", "1.5,2.5\n"},
	} {
		codeOff, bodyOff, ctOff := fetch(t, off.URL, tc.method, tc.path, tc.body)
		codeOn, bodyOn, ctOn := fetch(t, on.URL, tc.method, tc.path, tc.body)
		if codeOff != codeOn || !bytes.Equal([]byte(bodyOff), []byte(bodyOn)) || ctOff != ctOn {
			t.Errorf("%s %s diverges traced vs untraced: (%d,%q,%s) vs (%d,%q,%s)",
				tc.method, tc.path, codeOff, bodyOff, ctOff, codeOn, bodyOn, ctOn)
		}
	}
}

// TestTracesEndpointGating: without tracing there is no trace reader;
// with it, /debug/traces exists even when the pprof surface is off.
func TestTracesEndpointGating(t *testing.T) {
	_, off := newTestServer(t, Config{})
	if code, _ := get(t, off.URL+"/debug/traces"); code != http.StatusNotFound {
		t.Errorf("tracing off: /debug/traces = %d, want 404", code)
	}
	_, on := newTestServer(t, Config{TraceSample: 1})
	if code, _ := get(t, on.URL+"/debug/traces"); code != http.StatusOK {
		t.Errorf("tracing on: /debug/traces = %d, want 200", code)
	}
}

// TestExemplarCarriesTraceID: with tracing on, captured exemplars link
// to their trace.
func TestExemplarCarriesTraceID(t *testing.T) {
	_, ts := newTestServer(t, Config{Debug: true, SlowRequest: time.Nanosecond, TraceSample: 1})
	resp, err := http.Get(ts.URL + "/v1/shortest?v=0.3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := resp.Header.Get("X-Trace-Id")

	_, body := get(t, ts.URL+"/debug/exemplars")
	var got struct {
		Exemplars []exemplar `json:"exemplars"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Exemplars) != 1 || got.Exemplars[0].TraceID != want {
		t.Fatalf("exemplars = %+v, want one entry with trace id %q", got.Exemplars, want)
	}
}

// TestExemplarCaptures5xx: error responses land in the exemplar ring
// even when they are fast (satellite of the slow-capture rule).
func TestExemplarCaptures5xx(t *testing.T) {
	s := New(Config{Debug: true, Logger: log.New(io.Discard, "", 0)})
	mux := http.NewServeMux()
	mux.Handle("/boom", s.instrumented("/v1/shortest", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "deliberate", http.StatusInternalServerError)
	})))
	ts := httptest.NewServer(s.recovered(mux))
	defer ts.Close()
	if code, _ := get(t, ts.URL+"/boom"); code != http.StatusInternalServerError {
		t.Fatal("handler did not 500")
	}
	exemplars, total := s.exemplars.snapshot()
	if total != 1 || len(exemplars) != 1 || exemplars[0].Status != http.StatusInternalServerError {
		t.Fatalf("exemplars after fast 5xx = %+v (total %d), want one 500 capture", exemplars, total)
	}
}
